package repro

// The GC-scheduling tail benchmark behind `make bench-gc`: the same bursty
// write-heavy replay against greedy foreground-only GC versus the
// preemptible scheduler collecting in the trace's idle windows. Replay is
// fully deterministic (simulated time end to end), so the P99/P99.9
// response deltas recorded in BENCH_PR10.json are stable run to run.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// BenchmarkGCSchedTail replays a bursty SRC1_2-shaped trace against a
// small, nearly-full device with destage back-pressure — the regime where
// foreground GC erases stall admissions and dominate the response tail.
// gc=greedy collects only when a plane runs out; gc=sched pre-collects in
// the arrival gaps (idle slices only, pacing off — paced copies in the
// host program path cost more here than the mandatory GC they avoid) so
// bursts land on planes already above the watermark.
func BenchmarkGCSchedTail(b *testing.B) {
	profile := workload.SRC12()
	profile.Burstiness = 10
	tr := workload.MustGenerate(profile, workload.Options{Scale: 0.05})
	modes := []struct {
		name   string
		budget int64
	}{
		{"gc=greedy", 0},
		{"gc=sched", 1_000_000_000}, // capped per-window at the actual gap
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := ssd.ScaledParams(64)
				p.Precondition = 0.98 // nearly full: every burst is GC pressure
				if mode.budget > 0 {
					p.GCSched = ftl.GCSchedConfig{Enabled: true, PaceSteps: -1}
				}
				dev, err := ssd.New(p)
				if err != nil {
					b.Fatal(err)
				}
				m, err := replay.Run(tr, core.New(512), dev, replay.Options{
					IdleFlushNs:       2_000_000,
					BackPressureDepth: 4,
					GCBudgetNs:        mode.budget,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					if m.Device.GCRuns == 0 {
						b.Fatal("no GC pressure — the benchmark measures nothing")
					}
					b.ReportMetric(m.Response.Mean()/1e6, "mean-ms")
					b.ReportMetric(m.ResponseP99.Value()/1e6, "p99-ms")
					b.ReportMetric(m.ResponseP999.Value()/1e6, "p999-ms")
					// Total die-busy GC time: scheduled mode does MORE total
					// collection work (early victims carry more valid pages)
					// yet cuts the tail — the win is placement, not volume.
					b.ReportMetric(float64(m.Device.GCPauseNs)/1e6, "gc-pause-ms")
					if mode.budget > 0 && m.GCSched.JobsCompleted == 0 {
						b.Fatal("scheduled mode never completed a collection")
					}
				}
			}
		})
	}
}
