// Custom policy: the cache.Policy interface is the extension point of this
// library — anything that maps requests to hits, read misses and eviction
// batches plugs into the replayer and the experiment harness. This example
// implements a new policy from scratch (2Q-lite: probationary FIFO in
// front of a protected LRU) and benchmarks it against LRU and Req-block.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// twoQ is a simplified 2Q write buffer: new pages enter a probationary
// FIFO; a hit promotes a page to the protected LRU segment. Evictions
// drain the probationary segment first, so one-touch stream data never
// displaces proven-hot pages — a page-granularity cousin of what Req-block
// achieves with request blocks.
type twoQ struct {
	capacity  int
	probCap   int // probationary segment capacity
	pages     map[int64]*list.Node[twoQEntry]
	probation list.List[twoQEntry]
	protected list.List[twoQEntry]
}

type twoQEntry struct {
	lpn       int64
	protected bool
}

func newTwoQ(capacityPages int) *twoQ {
	cache.ValidateCapacity(capacityPages)
	probCap := capacityPages / 4
	if probCap < 1 {
		probCap = 1
	}
	return &twoQ{
		capacity: capacityPages,
		probCap:  probCap,
		pages:    make(map[int64]*list.Node[twoQEntry], capacityPages),
	}
}

func (c *twoQ) Name() string       { return "2Q-lite" }
func (c *twoQ) Len() int           { return len(c.pages) }
func (c *twoQ) CapacityPages() int { return c.capacity }
func (c *twoQ) NodeBytes() int     { return 13 }
func (c *twoQ) NodeCount() int     { return c.probation.Len() + c.protected.Len() }

func (c *twoQ) Access(req cache.Request) cache.Result {
	cache.CheckRequest(req)
	var res cache.Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		if n, ok := c.pages[lpn]; ok {
			res.Hits++
			if n.Value.protected {
				c.protected.MoveToHead(n)
			} else {
				// Promote probation → protected.
				c.probation.Remove(n)
				n.Value.protected = true
				c.protected.PushHead(n)
			}
		} else {
			res.Misses++
			if req.Write {
				for len(c.pages) >= c.capacity {
					res.Evictions = append(res.Evictions, c.evict())
				}
				n := &list.Node[twoQEntry]{Value: twoQEntry{lpn: lpn}}
				c.probation.PushHead(n)
				c.pages[lpn] = n
				res.Inserted++
			} else {
				res.ReadMisses = append(res.ReadMisses, lpn)
			}
		}
		lpn++
	}
	return res
}

// evict drains the probationary FIFO first; only when it is empty does the
// protected LRU tail go.
func (c *twoQ) evict() cache.Eviction {
	n := c.probation.PopTail()
	if n == nil {
		n = c.protected.PopTail()
	}
	if n == nil {
		panic("2Q: evict on empty cache")
	}
	delete(c.pages, n.Value.lpn)
	return cache.Eviction{LPNs: []int64{n.Value.lpn}}
}

var _ cache.Policy = (*twoQ)(nil)

func main() {
	tr := workload.MustGenerate(workload.PROJ0(), workload.Options{Scale: 0.02})
	const cachePages = 16 * 256

	for _, pol := range []cache.Policy{
		cache.NewLRU(cachePages),
		newTwoQ(cachePages),
		core.New(cachePages),
	} {
		dev, err := ssd.New(ssd.ScaledParams(16))
		if err != nil {
			log.Fatal(err)
		}
		m, err := replay.Run(tr, pol, dev, replay.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s hit ratio %5.1f%%  mean response %7.3f ms\n",
			pol.Name(), m.HitRatio()*100, m.Response.Mean()/1e6)
	}
	fmt.Println("\n2Q-lite already closes part of the gap to Req-block by protecting")
	fmt.Println("re-referenced pages; Req-block adds request-granularity batching on top.")
}
