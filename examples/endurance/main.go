// Endurance: how a cache policy's flush behavior translates into device
// lifetime. Replays a write-heavy workload on a nearly full (95%) device
// where garbage collection works hard, then projects wear-out from the
// observed write amplification and erase distribution.
//
//	go run ./examples/endurance
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	tr := workload.MustGenerate(workload.PROJ0(), workload.Options{Scale: 0.05})

	params := ssd.ScaledParams(64)
	params.Precondition = 0.95 // aged device: GC must work for every write
	pagesPerBlock := params.Flash.PagesPerBlock
	const cachePages = 16 * 256

	fmt.Println("proj_0 on a 95 percent full device, 16 MB cache:")
	fmt.Printf("%-10s %9s %8s %9s %12s %14s\n",
		"policy", "write amp", "erases", "wear σ", "energy (J)", "life left (GB)")
	for _, mk := range []func() cache.Policy{
		func() cache.Policy { return cache.NewLRU(cachePages) },
		func() cache.Policy { return cache.NewBPLRU(cachePages, pagesPerBlock) },
		func() cache.Policy { return core.New(cachePages) },
	} {
		pol := mk()
		dev, err := ssd.New(params)
		if err != nil {
			log.Fatal(err)
		}
		m, err := replay.Run(tr, pol, dev, replay.Options{})
		if err != nil {
			log.Fatal(err)
		}
		e := dev.Endurance(0) // QLC budget: 500 P/E cycles
		fmt.Printf("%-10s %9.3f %8d %9.2f %12.1f %14.1f\n",
			pol.Name(),
			m.Device.WriteAmplification(),
			m.Device.Erases,
			e.Wear.StdDev,
			(m.Energy.TotalUJ+m.DRAMEnergyUJ)/1e6,
			float64(e.ProjectedHostPages)*4096/1e9)
	}
	fmt.Println("\nBPLRU's block-aligned flushes cluster invalidations (lowest write")
	fmt.Println("amplification); Req-block matches LRU's endurance while winning on")
	fmt.Println("latency — batch eviction is endurance-neutral, as §4.2.4 argues.")
}
