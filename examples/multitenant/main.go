// Multi-tenant: consolidate two very different tenants — a write-hammering
// time server (ts_0) and a read-mostly monitor (hm_1) — onto one SSD and
// compare how the buffer policies referee them. workload.Mix stacks the
// tenants' address spaces and interleaves their arrivals.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	tenants := []workload.Profile{workload.TS0(), workload.HM1()}
	tr, err := workload.Mix("ts_0+hm_1", workload.Options{Scale: 0.05}, tenants...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed trace: %d requests over %d pages of footprint\n\n",
		tr.Len(), workload.TotalFootprintPages(tenants...))

	params := ssd.ScaledParams(16)
	const cachePages = 16 * 256
	boundaries := []int64{
		tenants[0].FootprintPages,
		tenants[0].FootprintPages + tenants[1].FootprintPages,
	}
	for _, mk := range []func() cache.Policy{
		func() cache.Policy { return cache.NewLRU(cachePages) },
		func() cache.Policy { return cache.NewVBBMS(cachePages) },
		func() cache.Policy { return core.New(cachePages) },
	} {
		pol := mk()
		dev, err := ssd.New(params)
		if err != nil {
			log.Fatal(err)
		}
		m, err := replay.Run(tr, pol, dev, replay.Options{
			TenantBoundaries: boundaries,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s hit %5.1f%%  mean %7.3f ms  P99 %7.3f ms",
			pol.Name(), m.HitRatio()*100,
			m.Response.Mean()/1e6, m.ResponseP99.Value()/1e6)
		for i, tm := range m.Tenants {
			fmt.Printf("  [%s %4.1f%%]", tenants[i].Name, tm.HitRatio()*100)
		}
		fmt.Println()
	}
	fmt.Println("\nthe mixed stream interleaves hot small writes with bulk data from")
	fmt.Println("another tenant — exactly the shape request-granularity sifting targets.")
}
