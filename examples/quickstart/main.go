// Quickstart: simulate an SSD with the Req-block write buffer and replay a
// synthetic workload through it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	// 1. A workload: the paper's src1_2 stand-in at 1/100 length.
	tr := workload.MustGenerate(workload.SRC12(), workload.Options{Scale: 0.02})

	// 2. A device: Table 1 geometry, scaled 16× down (ratios preserved).
	dev, err := ssd.New(ssd.ScaledParams(16))
	if err != nil {
		log.Fatal(err)
	}

	// 3. The paper's policy: a 16 MB Req-block buffer (4096 × 4 KB pages).
	buffer := core.New(16 * 256)

	// 4. Replay and report.
	m, err := replay.Run(tr, buffer, dev, replay.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d requests of %s\n", m.Requests, m.Trace)
	fmt.Printf("  hit ratio      %.1f%%\n", m.HitRatio()*100)
	fmt.Printf("  mean response  %.3f ms\n", m.Response.Mean()/1e6)
	fmt.Printf("  flash writes   %d pages\n", m.Device.FlashWrites)
	fmt.Printf("  evictions      %.1f pages per batch\n", m.MeanEvictionPages())
}
