// VDI scenario: the paper's lun_1 trace comes from an enterprise virtual
// desktop infrastructure — a low-locality workload where most addresses are
// touched once. This example walks the full trace tooling path: synthesize
// the VDI workload, export it in MSR Cambridge CSV format, parse it back,
// verify its Table 2 statistics, then sweep cache sizes with Req-block to
// show how little extra DRAM buys on a reuse-poor workload.
//
//	go run ./examples/vdi
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Synthesize the VDI workload and round-trip it through the MSR
	// Cambridge format, exactly as one would with the real trace files.
	tr := workload.MustGenerate(workload.LUN1(), workload.Options{Scale: 0.05})
	var buf bytes.Buffer
	if err := trace.WriteMSR(&buf, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d requests as %d bytes of MSR CSV\n", tr.Len(), buf.Len())

	parsed, err := trace.ReadMSR(&buf, "lun_1")
	if err != nil {
		log.Fatal(err)
	}
	s := trace.ComputeStats(parsed, 4096)
	fmt.Printf("parsed back: %d requests, write ratio %.1f%%, frequent addresses %.1f%%\n\n",
		s.Requests, s.WriteRatio*100, s.FrequentRatio*100)

	// Sweep the cache sizes from the paper's Table 1.
	fmt.Println("Req-block on the VDI workload:")
	for _, mb := range []int{16, 32, 64} {
		dev, err := ssd.New(ssd.ScaledParams(16))
		if err != nil {
			log.Fatal(err)
		}
		m, err := replay.Run(parsed, core.New(mb*256), dev, replay.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d MB cache: hit ratio %5.1f%%, mean response %.3f ms\n",
			mb, m.HitRatio()*100, m.Response.Mean()/1e6)
	}
	fmt.Println("\nlow address reuse caps what any buffer can do on VDI traffic —")
	fmt.Println("compare with `go run ./examples/policycompare src1_2`.")
}
