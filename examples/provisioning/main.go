// Provisioning: how much DRAM cache does a workload deserve? The paper
// sweeps 16/32/64 MB; this example computes the entire exact LRU
// miss-ratio curve with Mattson's stack algorithm (internal/mrc), finds
// the working-set knee, and then verifies one point of the curve against
// the full device simulation.
//
//	go run ./examples/provisioning [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/mrc"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	name := "usr_0"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	profile, ok := workload.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q", name)
	}
	tr := workload.MustGenerate(profile, workload.Options{Scale: 0.1})

	curve, err := mrc.Compute(tr, mrc.Options{WriteBuffer: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact LRU miss-ratio curve for %s (%d page accesses):\n\n", name, curve.Total)
	fmt.Printf("%8s  %9s  %9s\n", "cache", "hit", "miss")
	for _, mb := range []int{2, 4, 8, 16, 32, 64, 128} {
		pages := mb * 256
		fmt.Printf("%5d MB  %8.1f%%  %8.1f%%\n",
			mb, curve.HitRatio(pages)*100, curve.MissRatio(pages)*100)
	}
	fmt.Printf("\nworking set (99%% of max hits): %.1f MB\n", float64(curve.WorkingSet(0.99))/256)
	fmt.Printf("compulsory miss floor:         %.1f%%\n\n",
		float64(curve.ColdMisses)/float64(curve.Total)*100)

	// Cross-check one point against the full simulation.
	const mb = 16
	dev, err := ssd.New(ssd.ScaledParams(16))
	if err != nil {
		log.Fatal(err)
	}
	m, err := replay.Run(tr, cache.NewLRU(mb*256), dev, replay.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-check at %d MB: curve %.3f vs simulated LRU %.3f\n",
		mb, curve.HitRatio(mb*256), m.HitRatio())
	fmt.Println("(exact on write-only traffic; reads that miss make the curve a close approximation)")
}
