// Policy comparison: run every implemented write-buffer policy — the
// paper's four plus the related-work baselines — over one workload and
// print a ranking, reproducing in miniature what Figs. 8-9 show.
//
//	go run ./examples/policycompare [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	name := "src1_2"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	profile, ok := workload.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q", name)
	}
	tr := workload.MustGenerate(profile, workload.Options{Scale: 0.05})

	params := ssd.ScaledParams(16)
	pagesPerBlock := params.Flash.PagesPerBlock
	const cachePages = 16 * 256 // 16 MB

	policies := []cache.Policy{
		cache.NewLRU(cachePages),
		cache.NewFIFO(cachePages),
		cache.NewLFU(cachePages),
		cache.NewCFLRU(cachePages),
		cache.NewFAB(cachePages, pagesPerBlock),
		cache.NewBPLRU(cachePages, pagesPerBlock),
		cache.NewVBBMS(cachePages),
		cache.NewPUDLRU(cachePages, pagesPerBlock),
		core.New(cachePages),
	}

	type row struct {
		name     string
		hitRatio float64
		meanMs   float64
		writes   int64
	}
	var rows []row
	for _, pol := range policies {
		dev, err := ssd.New(params)
		if err != nil {
			log.Fatal(err)
		}
		m, err := replay.Run(tr, pol, dev, replay.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{pol.Name(), m.HitRatio(), m.Response.Mean() / 1e6, m.Device.FlashWrites})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].meanMs < rows[j].meanMs })

	fmt.Printf("workload %s, 16 MB cache — ranked by mean response time\n\n", name)
	fmt.Printf("%-10s  %9s  %12s  %12s\n", "policy", "hit ratio", "response/ms", "flash writes")
	for _, r := range rows {
		fmt.Printf("%-10s  %8.1f%%  %12.3f  %12d\n", r.name, r.hitRatio*100, r.meanMs, r.writes)
	}
}
