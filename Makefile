# Convenience targets; everything is plain `go` underneath.

.PHONY: all check fmt-check test race test-race race-sharded fuzz-smoke ssdcheck-quick ssdcheck-nightly soak-serve soak-gc obs-smoke bench bench-smoke bench-json bench-sharded bench-capacity bench-capacity-smoke bench-gc experiments experiments-full lint

all: test

# check is the full pre-merge gate: formatting, build + vet + tests, the
# race detector over the whole tree, a short fuzz pass over the trace
# parsers and differential targets, then the quick model-based
# differential campaign (fast implementations vs paper-literal oracles;
# see docs/TESTING.md).
check: fmt-check test test-race race-sharded fuzz-smoke ssdcheck-quick

# fmt-check fails (listing the offenders) when any file needs gofmt;
# `gofmt -l` alone exits 0 even with findings, so wrap it.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	go build ./... && go vet ./... && go test ./...

race:
	go test -race ./...

test-race: race

# race-sharded soaks the concurrent code specifically under the race
# detector: the splitter/shard/merger pipeline plus the service front-end
# (admission queues, window waits, drain) get their own longer pass
# beyond `race`.
race-sharded:
	go test -race -run 'Sharded|ShardTelemetry' ./internal/replay ./internal/obs .
	go test -race -count=1 ./internal/serve ./internal/load

# soak-serve is the CI open-loop saturation soak: ssdload's generator
# drives an in-process ssdserve through a ramp crossing saturation for
# ~30s under the race detector, asserting the overload ladder engages,
# goodput survives, and the drain is clean. The -timeout is the hard
# wall-clock bound against deadlocks.
soak-serve:
	SSDSOAK=1 go test -race -count=1 -run 'TestOpenLoopSoak' -timeout 300s -v ./internal/load

# soak-gc is the GC-scheduling saturation soak: the same open-loop ramp
# against preconditioned scheduler-enabled devices with light fault
# injection, asserting queue-empty windows grant budgeted GC slices that
# actually collect victims, light-load deadlines hold, and the drain is
# clean with collections split across slices throughout. Set
# SSDSOAK_FLIGHTDIR to also capture flight-recorder dumps for upload.
soak-gc:
	SSDSOAK_GC=1 go test -race -count=1 -run 'TestGCSchedSoak' -timeout 300s -v ./internal/load

# obs-smoke exercises the tail-latency attribution plane end to end: a
# small replay with the blame table, Perfetto export, and flight
# recorder armed, then cmd/tracecheck validates the export against the
# trace-event format and the run-end flight dump is required to exist.
# Outputs land in obs-smoke/ (kept for artifact upload on CI).
obs-smoke:
	@rm -rf obs-smoke && mkdir -p obs-smoke
	go run ./cmd/ssdreplay -workload src1_2 -scale 0.02 -policy reqblock \
		-cache-mb 8 -backpressure 4 -blame \
		-perfetto obs-smoke/trace.json -trace-sample 64 \
		-flight-recorder obs-smoke > obs-smoke/report.txt
	go run ./cmd/tracecheck obs-smoke/trace.json
	@ls obs-smoke/flightrec-*-run-end.ndjson > /dev/null || \
		{ echo "obs-smoke: no run-end flight dump"; exit 1; }
	@grep -q '^P99' obs-smoke/report.txt || \
		{ echo "obs-smoke: no blame table in report"; exit 1; }
	@echo obs-smoke ok

# fuzz-smoke runs each fuzz target briefly: not a soak, just proof that
# the targets still build and survive a short adversarial pass.
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzParseTrace$$' -fuzztime 10s ./internal/trace
	go test -run '^$$' -fuzz '^FuzzReadMSR$$' -fuzztime 10s ./internal/trace
	go test -run '^$$' -fuzz '^FuzzPageSet$$' -fuzztime 10s ./internal/cache
	go test -run '^$$' -fuzz '^FuzzReqBlockOps$$' -fuzztime 10s ./internal/core

# ssdcheck-quick is the CI differential gate: 64 seeds × 4 policies of
# randomized workloads replayed through the fast implementations and the
# internal/oracle reference models in lockstep; any divergence is
# delta-debugged to a minimal repro before being reported.
ssdcheck-quick:
	go run ./cmd/ssdcheck -quick -repro-dir internal/oracle/testdata/failures

# ssdcheck-nightly is the scheduled randomized campaign: fresh seed
# ranges for a fixed wall-clock budget, minimized repros saved for
# upload, then the same treatment for the scheduled-vs-greedy GC
# differential (budgeted idle slices against the stamped oracle FTL).
ssdcheck-nightly:
	go run ./cmd/ssdcheck -duration 10m -seeds 512 -requests 384 -v \
		-repro-dir internal/oracle/testdata/failures
	go run ./cmd/ssdcheck -gcsched -duration 5m -seeds 512 -requests 384 -v \
		-repro-dir internal/oracle/testdata/failures

bench:
	go test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark for 10 iterations: fast
# sanity that the bench harness itself still works.
bench-smoke:
	go test -run '^$$' -bench . -benchtime=10x -benchmem ./...

# bench-json regenerates the checked-in benchmark baseline (see
# docs/PERFORMANCE.md for the workflow and how to diff against it). Each
# PR's baseline diffs against the previous one via benchjson -old.
bench-json:
	go test -run '^$$' -bench 'BenchmarkPolicy|BenchmarkFigure8ResponseTime|BenchmarkStreamingReplay|BenchmarkMSRScan' -benchmem . \
		| go run ./cmd/benchjson -old BENCH_PR3.json > BENCH_PR4.json
	@echo wrote BENCH_PR4.json

# bench-sharded regenerates the sharded-replay scaling baseline: the
# shards=1,2,4,8 × shared/equal sweep with benchjson's derived
# speedup-vs-1shard column (see docs/PERFORMANCE.md).
bench-sharded:
	go test -run '^$$' -bench 'BenchmarkShardedReplay' -benchtime 3x -benchmem . \
		| go run ./cmd/benchjson > BENCH_PR6.json
	@echo wrote BENCH_PR6.json

# bench-capacity regenerates the victim-selection capacity-scaling
# baseline: every switchable-scan policy, indexed vs linear, 64 MB → 4 GB
# (see docs/PERFORMANCE.md). The linear 4 GB points are the slow part —
# they are the baseline the index is beating.
# The intermediate .out file (instead of a pipe) makes a benchmark
# failure fail the target — POSIX sh has no pipefail, and a pipe would
# report benchjson's exit status, not go test's.
bench-capacity:
	go test -run '^$$' -bench 'BenchmarkCapacityEviction' -benchtime 300ms -benchmem . > bench-capacity.out
	go run ./cmd/benchjson < bench-capacity.out > BENCH_PR8.json
	@rm -f bench-capacity.out
	@echo wrote BENCH_PR8.json

# bench-capacity-smoke is the CI slice: the indexed 64 MB capacity
# points, gated at 10% pages/s regression against the committed baseline.
# Only the indexed rows are gated — they are the surface this PR protects
# and they run enough iterations to be stable; the linear reference scans
# iterate too few times at this benchtime to gate that tightly.
bench-capacity-smoke:
	go test -run '^$$' -bench 'BenchmarkCapacityEviction/.*/indexed/cap=64MB$$' -benchtime 300ms -benchmem . > bench-capacity-smoke.out
	go run ./cmd/benchjson -old BENCH_PR8.json -gate 'pages/s=0.9' < bench-capacity-smoke.out > /dev/null
	@rm -f bench-capacity-smoke.out

# bench-gc regenerates the GC-scheduling tail baseline: the bursty
# open-loop step with greedy foreground-only GC versus the preemptible
# scheduler, P99/P99.9 response as the headline metrics (see
# docs/PERFORMANCE.md and docs/GC.md). load.Run paces wall-clock
# arrivals, so each of the 3 iterations costs its 3 s step.
bench-gc:
	go test -run '^$$' -bench 'BenchmarkGCSchedTail' -benchtime 3x -benchmem . > bench-gc.out
	go run ./cmd/benchjson < bench-gc.out > BENCH_PR10.json
	@rm -f bench-gc.out
	@echo wrote BENCH_PR10.json

experiments:
	go run ./cmd/experiments

experiments-full:
	go run ./cmd/experiments -full

lint: fmt-check
	go vet ./...
