# Convenience targets; everything is plain `go` underneath.

.PHONY: all test race bench experiments experiments-full lint

all: test

test:
	go build ./... && go vet ./... && go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/experiments

experiments-full:
	go run ./cmd/experiments -full

lint:
	gofmt -l . && go vet ./...
