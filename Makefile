# Convenience targets; everything is plain `go` underneath.

.PHONY: all test race bench bench-smoke bench-json experiments experiments-full lint

all: test

test:
	go build ./... && go vet ./... && go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark for 10 iterations: fast
# sanity that the bench harness itself still works.
bench-smoke:
	go test -run '^$$' -bench . -benchtime=10x -benchmem ./...

# bench-json regenerates the checked-in benchmark baseline (see
# docs/PERFORMANCE.md for the workflow and how to diff against it).
bench-json:
	go test -run '^$$' -bench 'BenchmarkPolicy|BenchmarkFigure8ResponseTime' -benchmem . \
		| go run ./cmd/benchjson > BENCH_PR1.json
	@echo wrote BENCH_PR1.json

experiments:
	go run ./cmd/experiments

experiments-full:
	go run ./cmd/experiments -full

lint:
	gofmt -l . && go vet ./...
