package core

import "repro/internal/cache"

// AdaptiveReqBlock wraps Req-block with an online δ controller — the
// extension the paper's sensitivity study (§4.2.1) implies: δ=5 is chosen
// offline from a sweep, but the best bound differs per workload, so a
// deployed device should find it itself.
//
// The controller hill-climbs: it measures the hit ratio over fixed-size
// epochs of page accesses and nudges δ one step in the direction that
// last improved it, reversing on regression. Because δ only influences
// *future* upgrade decisions (existing blocks keep their list placement),
// retuning is cheap and safe at any moment.
type AdaptiveReqBlock struct {
	*ReqBlock

	epochAccesses int64 // epoch length in page accesses

	// Controller state.
	accesses, hits int64   // within the current epoch
	lastRatio      float64 // previous epoch's hit ratio
	direction      int     // +1 or -1: current search direction
	haveBaseline   bool
	// History of (delta, hitRatio) pairs for diagnostics.
	epochs []EpochStat
}

// EpochStat records one adaptation epoch.
type EpochStat struct {
	Delta    int
	HitRatio float64
}

// DeltaBounds clamp the search: δ=1 degenerates to page-granular SRL and
// very large δ stops separating small from large requests.
const (
	MinDelta = 1
	MaxDelta = 16
)

// NewAdaptive returns an adaptive Req-block buffer. epochAccesses is the
// adaptation period in page accesses (e.g. a few times the cache size);
// values below 1 default to 4× the capacity.
func NewAdaptive(capacityPages int, epochAccesses int64) *AdaptiveReqBlock {
	if epochAccesses < 1 {
		epochAccesses = int64(4 * capacityPages)
	}
	return &AdaptiveReqBlock{
		ReqBlock:      New(capacityPages),
		epochAccesses: epochAccesses,
		direction:     +1,
	}
}

// Name implements cache.Policy.
func (c *AdaptiveReqBlock) Name() string { return "Req-block-adaptive" }

// Access implements cache.Policy, delegating to Req-block and running the
// δ controller on epoch boundaries.
func (c *AdaptiveReqBlock) Access(req cache.Request) cache.Result {
	res := c.ReqBlock.Access(req)
	c.accesses += int64(res.Hits + res.Misses)
	c.hits += int64(res.Hits)
	if c.accesses >= c.epochAccesses {
		c.adapt()
	}
	return res
}

// adapt closes the epoch and moves δ by one step.
func (c *AdaptiveReqBlock) adapt() {
	ratio := 0.0
	if c.accesses > 0 {
		ratio = float64(c.hits) / float64(c.accesses)
	}
	c.epochs = append(c.epochs, EpochStat{Delta: c.cfg.Delta, HitRatio: ratio})
	switch {
	case !c.haveBaseline:
		c.haveBaseline = true
	case ratio < c.lastRatio:
		// The last move hurt: reverse.
		c.direction = -c.direction
	}
	next := c.cfg.Delta + c.direction
	if next < MinDelta {
		next, c.direction = MinDelta, +1
	}
	if next > MaxDelta {
		next, c.direction = MaxDelta, -1
	}
	c.cfg.Delta = next
	c.lastRatio = ratio
	c.accesses, c.hits = 0, 0
}

// Epochs returns the adaptation history (diagnostics and tests).
func (c *AdaptiveReqBlock) Epochs() []EpochStat { return c.epochs }

var _ cache.Policy = (*AdaptiveReqBlock)(nil)
