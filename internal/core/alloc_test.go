package core

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
)

// TestReqBlockSteadyStateAllocs: once the block/page-node pools and the
// result buffers are warm, Access must not allocate — inserts take nodes
// from the pool, splits relink intrusive page lists, and eviction batches
// are carved from the policy-owned LPN buffer. The small budget covers
// incompressible map-bucket churn on the LPN index.
func TestReqBlockSteadyStateAllocs(t *testing.T) {
	c := New(4096)
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	step := func() {
		now += 1000
		req := cache.Request{
			Time:  now,
			Write: rng.Intn(10) < 7,
			LPN:   int64(rng.Intn(20000)),
			Pages: 1 + rng.Intn(12),
		}
		res := c.Access(req)
		for _, ev := range res.Evictions {
			_ = ev.LPNs[0]
		}
	}
	for i := 0; i < 30000; i++ {
		step()
	}
	if got := testing.AllocsPerRun(2000, step); got > 0.05 {
		t.Fatalf("Req-block steady-state allocs/req = %v, want ~0", got)
	}
}
