package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
)

// Golden transcript for Req-block itself: the exact eviction history of a
// scripted stream, locking Algorithm 1's behavior end to end (insertion
// grouping, SRL upgrades, DRL splits, Eq. 1 victim selection, merging).

func reqblockStream() []cache.Request {
	var reqs []cache.Request
	add := func(wr bool, lpn int64, pages int) {
		reqs = append(reqs, cache.Request{
			Time:  int64(len(reqs)+1) * 1_000_000,
			Write: wr, LPN: lpn, Pages: pages,
		})
	}
	add(true, 0, 2)    // A: small hot pair
	add(true, 100, 8)  // B: large block
	add(true, 0, 2)    // hit A → SRL
	add(false, 102, 2) // hit two pages of B → split into DRL
	add(true, 200, 4)  // C
	add(true, 300, 6)  // D: overflows capacity 16 ⇒ evictions begin
	add(true, 400, 3)  // E
	add(false, 0, 1)   // hit A again
	add(true, 500, 5)  // F
	return reqs
}

func TestGoldenReqBlockTranscript(t *testing.T) {
	c := New(16) // δ = 5
	var b strings.Builder
	for _, req := range reqblockStream() {
		res := c.Access(req)
		for _, ev := range res.Evictions {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			for i, lpn := range ev.LPNs {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprint(&b, lpn)
			}
		}
	}
	// Recorded transcript, verified by hand against Algorithm 1:
	//   - at request D (300,6) the cache holds 16 pages; the IRL tail is
	//     B's remainder {100,101,104..107} (6 pages, cnt 3, oldest) — its
	//     Eq. 1 score is the lowest, and it is NOT a split block, so it
	//     leaves alone;
	//   - by request F the next-lowest tail is C {200..203}; the split
	//     {102,103} in DRL survives longer (2 pages, younger), and A stays
	//     pinned in SRL throughout.
	got := b.String()
	want := "100,101,104,105,106,107 200,201,202,203 300,301,302,303,304,305"
	if got != want {
		t.Fatalf("Req-block transcript changed:\n got: %s\nwant: %s", got, want)
	}
	// A's pages survive in SRL; the split pages of B survive in DRL.
	if c.WhereIs(0) != "SRL" || c.WhereIs(102) != "DRL" {
		t.Fatalf("survivors misplaced: %s/%s", c.WhereIs(0), c.WhereIs(102))
	}
	mustInv(t, c)
}
