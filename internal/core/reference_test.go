package core

// A second, deliberately naive implementation of Algorithm 1, written
// directly from the paper's pseudocode with plain slices and linear scans
// — no shared code with the optimized ReqBlock beyond the package's test
// files. The property test drives both with identical request streams and
// demands bit-identical behavior: hits, list placement, and every eviction
// batch. Two independent derivations of the same spec agreeing is the
// strongest correctness evidence this package has.

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

// refBlock is a request block in the reference implementation.
type refBlock struct {
	reqID      uint64
	pages      []int64 // unsorted, unique
	accessCnt  int64
	insertTime int64
	origin     *refBlock
}

func (b *refBlock) remove(lpn int64) {
	for i, p := range b.pages {
		if p == lpn {
			b.pages = append(b.pages[:i], b.pages[i+1:]...)
			return
		}
	}
}

// refCache is the literal Algorithm 1 machine. Lists are slices with the
// head at index 0.
type refCache struct {
	capacity int
	delta    int
	merge    bool
	recency  bool
	irl      []*refBlock
	srl      []*refBlock
	drl      []*refBlock
	nextReq  uint64
}

func newRef(capacity int, cfg Config) *refCache {
	return &refCache{capacity: capacity, delta: cfg.Delta, merge: cfg.Merge, recency: cfg.Recency}
}

func (c *refCache) pageCount() int {
	n := 0
	for _, l := range [][]*refBlock{c.irl, c.srl, c.drl} {
		for _, b := range l {
			n += len(b.pages)
		}
	}
	return n
}

// find returns the block holding lpn and which list it is in.
func (c *refCache) find(lpn int64) (*refBlock, int) {
	for li, l := range [][]*refBlock{c.irl, c.srl, c.drl} {
		for _, b := range l {
			for _, p := range b.pages {
				if p == lpn {
					return b, li
				}
			}
		}
	}
	return nil, -1
}

func removeBlock(l []*refBlock, b *refBlock) []*refBlock {
	for i, x := range l {
		if x == b {
			return append(l[:i], l[i+1:]...)
		}
	}
	return l
}

func pushHead(l []*refBlock, b *refBlock) []*refBlock {
	return append([]*refBlock{b}, l...)
}

func (c *refCache) freq(b *refBlock, now int64) float64 {
	age := now - b.insertTime
	if !c.recency {
		age = 1
	} else if age < 1 {
		age = 1
	}
	return float64(b.accessCnt) / (float64(len(b.pages)) * float64(age))
}

// access implements Algorithm 1's main routine, returning per-request
// (hits, evicted batches).
func (c *refCache) access(req cache.Request) (hits int, evictions [][]int64) {
	c.nextReq++
	reqID := c.nextReq
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		if blk, li := c.find(lpn); blk != nil {
			hits++
			blk.accessCnt++
			if len(blk.pages) <= c.delta {
				// Move whole block to SRL head.
				switch li {
				case 0:
					c.irl = removeBlock(c.irl, blk)
				case 1:
					c.srl = removeBlock(c.srl, blk)
				case 2:
					c.drl = removeBlock(c.drl, blk)
				}
				c.srl = pushHead(c.srl, blk)
			} else {
				// Divide: move the page into this request's DRL head block.
				var dst *refBlock
				if len(c.drl) > 0 && c.drl[0].reqID == reqID {
					dst = c.drl[0]
				} else {
					origin := blk
					if li != 0 {
						origin = blk.origin
					}
					dst = &refBlock{reqID: reqID, accessCnt: 1, insertTime: req.Time, origin: origin}
					c.drl = pushHead(c.drl, dst)
				}
				if dst != blk {
					blk.remove(lpn)
					dst.pages = append(dst.pages, lpn)
					if len(blk.pages) == 0 {
						switch li {
						case 0:
							c.irl = removeBlock(c.irl, blk)
						case 1:
							c.srl = removeBlock(c.srl, blk)
						case 2:
							c.drl = removeBlock(c.drl, blk)
						}
					}
				}
			}
		} else if req.Write {
			for c.pageCount() >= c.capacity {
				evictions = append(evictions, c.evict(req.Time))
			}
			var dst *refBlock
			if len(c.irl) > 0 && c.irl[0].reqID == reqID {
				dst = c.irl[0]
			} else {
				dst = &refBlock{reqID: reqID, accessCnt: 1, insertTime: req.Time}
				c.irl = pushHead(c.irl, dst)
			}
			dst.pages = append(dst.pages, lpn)
		}
		lpn++
	}
	return hits, evictions
}

// evict implements get_victim + flush: compare the three tails, evict the
// minimum-Freq block, merging a split victim with its IRL origin.
func (c *refCache) evict(now int64) []int64 {
	type cand struct {
		blk  *refBlock
		list int
	}
	var cands []cand
	if n := len(c.irl); n > 0 {
		cands = append(cands, cand{c.irl[n-1], 0})
	}
	if n := len(c.drl); n > 0 {
		cands = append(cands, cand{c.drl[n-1], 2})
	}
	if n := len(c.srl); n > 0 {
		cands = append(cands, cand{c.srl[n-1], 1})
	}
	victim := cands[0]
	for _, cd := range cands[1:] {
		if c.freq(cd.blk, now) < c.freq(victim.blk, now) {
			victim = cd
		}
	}
	out := append([]int64(nil), victim.blk.pages...)
	switch victim.list {
	case 0:
		c.irl = removeBlock(c.irl, victim.blk)
	case 1:
		c.srl = removeBlock(c.srl, victim.blk)
	case 2:
		c.drl = removeBlock(c.drl, victim.blk)
	}
	if c.merge && victim.list == 2 && victim.blk.origin != nil {
		// Merge only if the origin still sits in IRL.
		for _, b := range c.irl {
			if b == victim.blk.origin {
				out = append(out, b.pages...)
				c.irl = removeBlock(c.irl, b)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestReqBlockMatchesReference drives both implementations with identical
// random streams and demands identical hits and eviction batches.
func TestReqBlockMatchesReference(t *testing.T) {
	f := func(seed int64, deltaRaw uint8, merge, recency bool) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Delta: 1 + int(deltaRaw%7), Merge: merge, Recency: recency}
		fast := NewConfig(20, cfg)
		ref := newRef(20, cfg)
		now := int64(0)
		for op := 0; op < 300; op++ {
			now += int64(rng.Intn(5000)) + 1
			req := cache.Request{
				Time:  now,
				Write: rng.Intn(10) < 8,
				LPN:   rng.Int63n(96),
				Pages: 1 + rng.Intn(9),
			}
			fres := fast.Access(req)
			rhits, revs := ref.access(req)
			if fres.Hits != rhits {
				t.Logf("seed %d op %d: hits %d vs ref %d", seed, op, fres.Hits, rhits)
				return false
			}
			if len(fres.Evictions) != len(revs) {
				t.Logf("seed %d op %d: %d evictions vs ref %d", seed, op, len(fres.Evictions), len(revs))
				return false
			}
			for i := range revs {
				a, b := fres.Evictions[i].LPNs, revs[i]
				if len(a) != len(b) {
					t.Logf("seed %d op %d ev %d: %v vs ref %v", seed, op, i, a, b)
					return false
				}
				for j := range a {
					if a[j] != b[j] {
						t.Logf("seed %d op %d ev %d: %v vs ref %v", seed, op, i, a, b)
						return false
					}
				}
			}
			if fast.Len() != ref.pageCount() {
				t.Logf("seed %d op %d: len %d vs ref %d", seed, op, fast.Len(), ref.pageCount())
				return false
			}
			if err := fast.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
			// Occasionally exercise idle eviction on both models: the fast
			// path's EvictIdle must equal the reference's evict under the
			// same more-than-half-full gating.
			if op%37 == 0 {
				ev, ok := fast.EvictIdle(now)
				refShould := ref.pageCount() > 20/2
				if ok != refShould {
					t.Logf("seed %d op %d: EvictIdle gating %v vs ref %v", seed, op, ok, refShould)
					return false
				}
				if ok {
					rev := ref.evict(now)
					if len(ev.LPNs) != len(rev) {
						t.Logf("seed %d op %d: idle eviction %v vs ref %v", seed, op, ev.LPNs, rev)
						return false
					}
					for j := range rev {
						if ev.LPNs[j] != rev[j] {
							t.Logf("seed %d op %d: idle eviction %v vs ref %v", seed, op, ev.LPNs, rev)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
