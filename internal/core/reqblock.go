// Package core implements Req-block, the paper's contribution: a DRAM
// write-buffer replacement scheme for SSDs that manages cached data at
// write-request granularity (§3, Algorithm 1).
//
// Every write request's pages form one "request block". Three linked lists
// sift blocks by size and hotness:
//
//   - IRL (Inserted Request List): every new request block starts here.
//   - SRL (Small Request List): a block of at most δ pages moves to the SRL
//     head when any of its pages is hit (Fig. 5b).
//   - DRL (Divided Request List): when a page of a *large* block (> δ
//     pages) is hit, the hit page is split off into a fresh block at the
//     DRL head (Fig. 5a); consecutive hit pages of the same request share
//     that block.
//
// Eviction compares the three tail blocks by the access-frequency estimate
// of Eq. 1, Freq = AccessCnt / (PageNum × (Tcur − Tinsert)), and evicts the
// lowest. A split victim whose original block still sits in IRL is merged
// with it and the union is evicted in one batch ("downgraded merging",
// Fig. 6), recovering spatial locality for the flush.
//
// Implementation note: the request path is allocation-free in steady
// state. Each buffered page is one pageNode — simultaneously the value of
// the global LPN index and an intrusive member of its block's page list —
// so hits, splits and evictions relink pointers instead of churning a
// map[int64]bool per block. Blocks and page nodes are pooled; a
// generation counter on each block keeps recycled memory from
// resurrecting stale origin links (downgraded merging must only merge
// with the *same* original block, not whatever block reuses its storage).
package core

import (
	"fmt"
	"slices"

	"repro/internal/cache"
	"repro/internal/list"
	"repro/internal/vindex"
)

// DefaultDelta is the small-request bound the paper selects in its
// sensitivity study (§4.2.1): blocks of at most 5 pages are "small".
const DefaultDelta = 5

// listID identifies which of the three lists a block lives in.
type listID uint8

const (
	inIRL listID = iota
	inSRL
	inDRL
)

func (l listID) String() string {
	switch l {
	case inIRL:
		return "IRL"
	case inSRL:
		return "SRL"
	case inDRL:
		return "DRL"
	}
	return "?"
}

// pageNode is one buffered page: the value of the global LPN index and an
// intrusive node of its block's doubly linked page list.
type pageNode struct {
	lpn        int64
	blk        *reqBlock
	prev, next *pageNode
}

// reqBlock is one cached request block. The paper's Fig. 12 charges its
// list node 32 bytes: forward/backward pointers, page count, access count,
// insert time and the origin link.
type reqBlock struct {
	reqID      uint64    // identity of the originating write request
	pageHead   *pageNode // intrusive list of the pages currently held
	pageCnt    int
	accessCnt  int64 // hits since insertion, initialized to 1 (Eq. 1)
	insertTime int64 // Tinsert of Eq. 1, ns
	where      listID
	node       *list.Node[*reqBlock]
	// origin links a split (DRL) block back to the large block it was
	// divided from, enabling downgraded merging at eviction. It may go
	// stale (origin evicted, upgraded, or recycled); users must
	// re-validate against originGen and the block's current list.
	origin    *reqBlock
	originGen uint64
	// gen is bumped every time the block is returned to the pool, so a
	// stale origin pointer into recycled storage can be detected.
	gen      uint64
	nextFree *reqBlock // pool link
}

// pageNum returns the block's current page count (PageNum of Eq. 1).
func (b *reqBlock) pageNum() int { return b.pageCnt }

// addPage links a detached page node at the head of the block's page list.
func (b *reqBlock) addPage(pn *pageNode) {
	pn.blk = b
	pn.prev = nil
	pn.next = b.pageHead
	if b.pageHead != nil {
		b.pageHead.prev = pn
	}
	b.pageHead = pn
	b.pageCnt++
}

// removePage unlinks a page node from the block's page list.
func (b *reqBlock) removePage(pn *pageNode) {
	if pn.prev != nil {
		pn.prev.next = pn.next
	} else {
		b.pageHead = pn.next
	}
	if pn.next != nil {
		pn.next.prev = pn.prev
	}
	pn.prev, pn.next, pn.blk = nil, nil, nil
	b.pageCnt--
}

// Config carries Req-block's tunables; the zero value is not valid, use
// DefaultConfig.
type Config struct {
	// Delta is the small-request bound δ in pages.
	Delta int
	// Merge enables downgraded merging of split victims with their IRL
	// originals (Fig. 6). The ablation bench switches it off.
	Merge bool
	// Recency enables the (Tcur − Tinsert) term of Eq. 1. With it off the
	// victim score degrades to AccessCnt / PageNum (ablation).
	Recency bool
}

// DefaultConfig returns the paper's configuration: δ = 5, merging and the
// recency term enabled.
func DefaultConfig() Config {
	return Config{Delta: DefaultDelta, Merge: true, Recency: true}
}

// ReqBlock is the Req-block write buffer. It implements cache.Policy.
type ReqBlock struct {
	capacity  int
	cfg       Config
	pageCount int
	index     map[int64]*pageNode // lpn -> its page node (node.blk = holder)
	irl       list.List[*reqBlock]
	srl       list.List[*reqBlock]
	drl       list.List[*reqBlock]
	listPages [3]int // buffered pages per list (Fig. 13 gauge)
	nextReq   uint64

	buf      cache.ResultBuffers
	freeBlk  *reqBlock // block pool
	freePage *pageNode // page-node pool

	sink cache.TransitionSink // list-transition annotations, nil = off

	// scoreBuf/candBuf back the vindex.BestF victim selection; struct
	// fields rather than locals so the slices never escape to the heap
	// (the request path is allocation-free in steady state).
	scoreBuf [3]float64
	candBuf  [3]*reqBlock
	scanCost int64
}

var (
	_ cache.Policy             = (*ReqBlock)(nil)
	_ cache.OccupancyReporter  = (*ReqBlock)(nil)
	_ cache.OccupancySampler   = (*ReqBlock)(nil)
	_ cache.TransitionSource   = (*ReqBlock)(nil)
	_ cache.VictimScanReporter = (*ReqBlock)(nil)
)

// New returns a Req-block buffer with the paper's default configuration.
func New(capacityPages int) *ReqBlock {
	return NewConfig(capacityPages, DefaultConfig())
}

// NewConfig returns a Req-block buffer with an explicit configuration.
func NewConfig(capacityPages int, cfg Config) *ReqBlock {
	cache.ValidateCapacity(capacityPages)
	if cfg.Delta < 1 {
		panic(fmt.Sprintf("core: delta %d, need >= 1", cfg.Delta))
	}
	return &ReqBlock{
		capacity: capacityPages,
		cfg:      cfg,
		index:    make(map[int64]*pageNode, capacityPages),
	}
}

// Name implements cache.Policy.
func (c *ReqBlock) Name() string { return "Req-block" }

// Len implements cache.Policy.
func (c *ReqBlock) Len() int { return c.pageCount }

// CapacityPages implements cache.Policy.
func (c *ReqBlock) CapacityPages() int { return c.capacity }

// NodeBytes implements cache.Policy per the paper's Fig. 12 accounting.
func (c *ReqBlock) NodeBytes() int { return 32 }

// NodeCount implements cache.Policy.
func (c *ReqBlock) NodeCount() int {
	return c.irl.Len() + c.srl.Len() + c.drl.Len()
}

// Delta returns the configured small-request bound.
func (c *ReqBlock) Delta() int { return c.cfg.Delta }

// ListPages implements cache.OccupancyReporter: buffered pages per list.
func (c *ReqBlock) ListPages() map[string]int {
	return map[string]int{
		"IRL": c.listPages[inIRL],
		"SRL": c.listPages[inSRL],
		"DRL": c.listPages[inDRL],
	}
}

// reqBlockListNames is the fixed OccupancyNames order, shared by all
// instances.
var reqBlockListNames = []string{"IRL", "SRL", "DRL"}

// OccupancyNames implements cache.OccupancySampler.
func (c *ReqBlock) OccupancyNames() []string { return reqBlockListNames }

// AppendOccupancy implements cache.OccupancySampler.
func (c *ReqBlock) AppendOccupancy(dst []int) []int {
	return append(dst, c.listPages[inIRL], c.listPages[inSRL], c.listPages[inDRL])
}

// SetTransitionSink implements cache.TransitionSource: the sink receives
// one annotation per list transition (IRL→SRL upgrade, large-block split
// into the DRL, downgraded merge at eviction). All names are constant
// strings, so annotating stays allocation-free.
func (c *ReqBlock) SetTransitionSink(s cache.TransitionSink) { c.sink = s }

// listOf returns the list a block currently belongs to.
func (c *ReqBlock) listOf(id listID) *list.List[*reqBlock] {
	switch id {
	case inIRL:
		return &c.irl
	case inSRL:
		return &c.srl
	default:
		return &c.drl
	}
}

// newPageNode takes a page node from the pool, or allocates one.
func (c *ReqBlock) newPageNode(lpn int64) *pageNode {
	pn := c.freePage
	if pn != nil {
		c.freePage = pn.next
		pn.next = nil
	} else {
		pn = &pageNode{}
	}
	pn.lpn = lpn
	return pn
}

// freePageNode returns a detached page node to the pool.
func (c *ReqBlock) freePageNode(pn *pageNode) {
	pn.blk, pn.prev = nil, nil
	pn.next = c.freePage
	c.freePage = pn
}

// newBlock takes a block from the pool (or allocates one, together with
// its list node) and initializes it per Algorithm 1's create_req_blk.
func (c *ReqBlock) newBlock(reqID uint64, now int64, where listID) *reqBlock {
	blk := c.freeBlk
	if blk != nil {
		c.freeBlk = blk.nextFree
		blk.nextFree = nil
	} else {
		blk = &reqBlock{}
		blk.node = &list.Node[*reqBlock]{Value: blk}
	}
	blk.reqID = reqID
	blk.pageHead = nil
	blk.pageCnt = 0
	blk.accessCnt = 1
	blk.insertTime = now
	blk.where = where
	blk.origin = nil
	blk.originGen = 0
	return blk
}

// freeBlock returns a detached, empty block to the pool, bumping its
// generation so stale origin links to it can never validate again.
func (c *ReqBlock) freeBlock(blk *reqBlock) {
	blk.gen++
	blk.origin = nil
	blk.pageHead = nil
	blk.nextFree = c.freeBlk
	c.freeBlk = blk
}

// Access implements cache.Policy, following Algorithm 1's main routine
// page by page.
func (c *ReqBlock) Access(req cache.Request) cache.Result {
	cache.CheckRequest(req)
	c.buf.Reset()
	c.nextReq++
	reqID := c.nextReq
	var res cache.Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		if pn, ok := c.index[lpn]; ok {
			res.Hits++
			c.onHit(pn, reqID, req.Time)
		} else {
			res.Misses++
			if req.Write {
				for c.pageCount >= c.capacity {
					c.buf.Evictions = append(c.buf.Evictions, c.evict(req.Time))
				}
				c.insertNew(lpn, reqID, req.Time)
				res.Inserted++
			} else {
				c.buf.Reads = append(c.buf.Reads, lpn)
			}
		}
		lpn++
	}
	c.buf.Finish(&res)
	return res
}

// onHit applies Algorithm 1 lines 19-28: small blocks move to the SRL head;
// a hit page of a large block is split off into the DRL head block of the
// current request.
func (c *ReqBlock) onHit(pn *pageNode, reqID uint64, now int64) {
	blk := pn.blk
	blk.accessCnt++
	if blk.pageNum() <= c.cfg.Delta {
		// Small block (wherever it lives): upgrade to SRL head.
		c.moveBlock(blk, inSRL)
		return
	}
	// Large block: divide. Remove the hit page and re-home it in the DRL
	// head block belonging to the current request.
	dst := c.drlHeadFor(reqID, now, blk)
	if dst == blk {
		return // the page already sits in the current request's DRL block
	}
	if c.sink != nil {
		c.sink.OnListTransition(cache.ListTransition{
			LPN: pn.lpn, Pages: 1, From: blk.where.String(), To: dst.where.String(),
		})
	}
	c.removePageFromBlock(blk, pn)
	dst.addPage(pn)
	c.listPages[dst.where]++
}

// drlHeadFor returns the DRL head block if it belongs to the current
// request, otherwise creates one (Algorithm 1's create_req_blk). The new
// block records its origin (plus the origin's generation) for downgraded
// merging.
func (c *ReqBlock) drlHeadFor(reqID uint64, now int64, src *reqBlock) *reqBlock {
	if h := c.drl.Head(); h != nil && h.Value.reqID == reqID {
		return h.Value
	}
	blk := c.newBlock(reqID, now, inDRL)
	// Resolve the IRL block a split descends from: the source itself when
	// it lives in IRL, else the source's own origin (splitting a split).
	if src.where == inIRL {
		blk.origin, blk.originGen = src, src.gen
	} else {
		blk.origin, blk.originGen = src.origin, src.originGen
	}
	c.drl.PushHead(blk.node)
	return blk
}

// insertNew adds a missed write page to the IRL head block of the current
// request, creating it if the head belongs to another request.
func (c *ReqBlock) insertNew(lpn int64, reqID uint64, now int64) {
	var blk *reqBlock
	if h := c.irl.Head(); h != nil && h.Value.reqID == reqID {
		blk = h.Value
	} else {
		blk = c.newBlock(reqID, now, inIRL)
		c.irl.PushHead(blk.node)
	}
	pn := c.newPageNode(lpn)
	blk.addPage(pn)
	c.index[lpn] = pn
	c.listPages[inIRL]++
	c.pageCount++
}

// moveBlock relocates a block to the head of the target list, keeping the
// per-list page gauges consistent.
func (c *ReqBlock) moveBlock(blk *reqBlock, to listID) {
	from := blk.where
	if from == to {
		c.listOf(to).MoveToHead(blk.node)
		return
	}
	if c.sink != nil && blk.pageHead != nil {
		c.sink.OnListTransition(cache.ListTransition{
			LPN: blk.pageHead.lpn, Pages: blk.pageNum(), From: from.String(), To: to.String(),
		})
	}
	c.listOf(from).Remove(blk.node)
	c.listPages[from] -= blk.pageNum()
	blk.where = to
	c.listOf(to).PushHead(blk.node)
	c.listPages[to] += blk.pageNum()
}

// removePageFromBlock detaches one page from a block, recycling the block
// when it empties. The caller re-homes the page (or deletes it from the
// index).
func (c *ReqBlock) removePageFromBlock(blk *reqBlock, pn *pageNode) {
	blk.removePage(pn)
	c.listPages[blk.where]--
	if blk.pageNum() == 0 {
		c.listOf(blk.where).Remove(blk.node)
		c.freeBlock(blk)
	}
}

// freq computes Eq. 1 for a block at time now. A zero or negative age is
// clamped to one nanosecond so brand-new blocks score high rather than
// dividing by zero.
func (c *ReqBlock) freq(blk *reqBlock, now int64) float64 {
	age := now - blk.insertTime
	if !c.cfg.Recency {
		age = 1
	} else if age < 1 {
		age = 1
	}
	return float64(blk.accessCnt) / (float64(blk.pageNum()) * float64(age))
}

// evict implements Algorithm 1's get_victim plus the flush: the tail block
// with the minimum Freq across the three lists is evicted; a split victim
// is first merged with its original block if that block still sits in IRL
// (Fig. 6), and the union is flushed as one batch.
func (c *ReqBlock) evict(now int64) cache.Eviction {
	victim := c.pickVictim(now)
	if victim == nil {
		panic("core: evict on empty cache")
	}
	// Capture the origin link before the victim's storage is recycled.
	origin, originGen := victim.origin, victim.originGen
	fromDRL := victim.where == inDRL
	mark := c.buf.Mark()
	c.detachBlock(victim)
	if c.cfg.Merge && fromDRL {
		if o := origin; o != nil && o.gen == originGen && o.node.Attached() && o.where == inIRL {
			if c.sink != nil && o.pageHead != nil {
				c.sink.OnListTransition(cache.ListTransition{
					LPN: o.pageHead.lpn, Pages: o.pageNum(), From: o.where.String(), To: "merge",
				})
			}
			c.detachBlock(o)
		}
	}
	lpns := c.buf.Carve(mark)
	slices.Sort(lpns)
	return cache.Eviction{LPNs: lpns}
}

// pickVictim compares the three tail blocks by Eq. 1 and returns the
// lowest-frequency one via the shared vindex selector (first-wins on
// equal score). Ties prefer IRL, then DRL, then SRL — the candidate
// order — matching the design's bias toward keeping small hot blocks.
func (c *ReqBlock) pickVictim(now int64) *reqBlock {
	k := 0
	tails := [3]*list.Node[*reqBlock]{c.irl.Tail(), c.drl.Tail(), c.srl.Tail()}
	for _, t := range tails {
		if t == nil {
			continue
		}
		c.candBuf[k] = t.Value
		c.scoreBuf[k] = c.freq(t.Value, now)
		k++
	}
	c.scanCost += int64(k)
	if i := vindex.BestF(c.scoreBuf[:k]); i >= 0 {
		return c.candBuf[i]
	}
	return nil
}

// VictimScanCost implements cache.VictimScanReporter.
func (c *ReqBlock) VictimScanCost() int64 { return c.scanCost }

// detachBlock unlinks a block and all its pages from the cache, appending
// the page LPNs to the shared eviction buffer and recycling both the page
// nodes and the block itself.
func (c *ReqBlock) detachBlock(blk *reqBlock) {
	for pn := blk.pageHead; pn != nil; {
		next := pn.next
		c.buf.LPNs = append(c.buf.LPNs, pn.lpn)
		delete(c.index, pn.lpn)
		c.freePageNode(pn)
		pn = next
	}
	c.listOf(blk.where).Remove(blk.node)
	c.listPages[blk.where] -= blk.pageCnt
	c.pageCount -= blk.pageCnt
	c.freeBlock(blk)
}

// EvictIdle implements cache.IdleEvictor: during idle time the same Eq. 1
// victim selection runs proactively, as long as the buffer is more than
// half full. Small hot SRL blocks keep their priority, so idle flushing
// drains exactly the cold large blocks the paper wants gone early
// (§4.2.4: "evicting more cold data pages earlier can make more room for
// hot data").
func (c *ReqBlock) EvictIdle(now int64) (cache.Eviction, bool) {
	if c.pageCount <= c.capacity/2 {
		return cache.Eviction{}, false
	}
	c.buf.Reset()
	return c.evict(now), true
}

// Contains reports whether a page is buffered (tests).
func (c *ReqBlock) Contains(lpn int64) bool {
	_, ok := c.index[lpn]
	return ok
}

// WhereIs returns "IRL", "SRL", "DRL" or "" for a page (tests).
func (c *ReqBlock) WhereIs(lpn int64) string {
	pn, ok := c.index[lpn]
	if !ok {
		return ""
	}
	return pn.blk.where.String()
}

// BlockOf returns the page count and access count of the block holding a
// page (tests); ok is false when the page is absent.
func (c *ReqBlock) BlockOf(lpn int64) (pages int, accessCnt int64, ok bool) {
	pn, found := c.index[lpn]
	if !found {
		return 0, 0, false
	}
	return pn.blk.pageNum(), pn.blk.accessCnt, true
}

// CheckInvariants validates the cross-structure bookkeeping: every indexed
// page belongs to exactly one attached block, per-list page gauges match
// recounts, page totals match, and list structures are sound. Tests and
// property checks call it after every operation.
func (c *ReqBlock) CheckInvariants() error {
	if !c.irl.Validate() || !c.srl.Validate() || !c.drl.Validate() {
		return fmt.Errorf("core: list structure corrupt")
	}
	var gauge [3]int
	total := 0
	seen := make(map[int64]bool, len(c.index))
	for id, l := range map[listID]*list.List[*reqBlock]{inIRL: &c.irl, inSRL: &c.srl, inDRL: &c.drl} {
		for n := l.Head(); n != nil; n = n.Next() {
			blk := n.Value
			if blk.where != id {
				return fmt.Errorf("core: block tagged %v found in %v", blk.where, id)
			}
			if blk.pageNum() == 0 {
				return fmt.Errorf("core: empty block left in %v", id)
			}
			if blk.node != n {
				return fmt.Errorf("core: block node back-pointer broken")
			}
			count := 0
			var prev *pageNode
			for pn := blk.pageHead; pn != nil; pn = pn.next {
				if pn.blk != blk {
					return fmt.Errorf("core: page %d back-pointer does not name its block", pn.lpn)
				}
				if pn.prev != prev {
					return fmt.Errorf("core: page list prev/next asymmetry at lpn %d", pn.lpn)
				}
				if seen[pn.lpn] {
					return fmt.Errorf("core: lpn %d in two blocks", pn.lpn)
				}
				seen[pn.lpn] = true
				if c.index[pn.lpn] != pn {
					return fmt.Errorf("core: index[%d] does not point at holder", pn.lpn)
				}
				prev = pn
				count++
				if count > blk.pageCnt {
					return fmt.Errorf("core: page list longer than pageCnt in %v", id)
				}
			}
			if count != blk.pageCnt {
				return fmt.Errorf("core: block pageCnt %d, recounted %d", blk.pageCnt, count)
			}
			gauge[id] += blk.pageNum()
			total += blk.pageNum()
		}
	}
	if total != c.pageCount || total != len(c.index) {
		return fmt.Errorf("core: page accounting: listed %d, pageCount %d, index %d",
			total, c.pageCount, len(c.index))
	}
	for i, g := range gauge {
		if g != c.listPages[i] {
			return fmt.Errorf("core: listPages[%v] = %d, recounted %d", listID(i), c.listPages[i], g)
		}
	}
	if c.pageCount > c.capacity {
		return fmt.Errorf("core: pageCount %d exceeds capacity %d", c.pageCount, c.capacity)
	}
	return nil
}
