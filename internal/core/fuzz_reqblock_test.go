package core_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/oracle"
)

// FuzzReqBlockOps feeds fuzzer-shaped request streams through the fast
// Req-block implementation and the paper-literal oracle in lockstep —
// the differential checker with the fuzzer, rather than a seeded PRNG,
// choosing the workload. The fuzzer gets to pick δ, the merge/recency
// ablations, capacity and every request, so it can steer straight at
// boundary conditions (δ-sized blocks, re-split chains, merge-after-
// recycle) that random campaigns only sample.
func FuzzReqBlockOps(f *testing.F) {
	f.Add(uint8(3), uint8(16), true, true, []byte{0x12, 0x34, 0x56, 0x78})
	f.Add(uint8(1), uint8(4), false, false, []byte{0xff, 0x00, 0xff, 0x00, 0x81})
	f.Add(uint8(7), uint8(60), true, false, []byte{})
	f.Fuzz(func(t *testing.T, deltaB, capB uint8, merge, recency bool, ops []byte) {
		delta := 1 + int(deltaB)%8
		capacity := 2 + int(capB)%63
		spec := oracle.Spec{
			Policy:        "req-block",
			CapacityPages: capacity,
			Delta:         delta,
			Merge:         merge,
			Recency:       recency,
		}
		// Two bytes per request: flags+pages, then the LPN. Times advance
		// by a flag-controlled stride so the recency term gets exercised
		// with both dense and sparse arrivals.
		now := int64(0)
		for i := 0; i+1 < len(ops); i += 2 {
			a, b := ops[i], ops[i+1]
			if a&0x40 != 0 {
				now += 1000
			} else {
				now++
			}
			spec.Requests = append(spec.Requests, cache.Request{
				Time:  now,
				Write: a&0x80 == 0, // bias toward writes
				LPN:   int64(b) % 80,
				Pages: 1 + int(a&0x0f),
			})
		}
		if d := oracle.Run(spec); d != nil {
			t.Fatalf("fast/oracle divergence: %v", d)
		}
	})
}
