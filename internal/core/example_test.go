package core_test

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// The basic lifecycle: small request blocks are promoted to the SRL on a
// hit; hit pages of large blocks are divided into the DRL.
func Example() {
	buf := core.New(1024) // 1024 pages = 4 MB of 4 KB pages

	// A small write request (2 pages ≤ δ=5) forms one request block.
	buf.Access(cache.Request{Time: 0, Write: true, LPN: 100, Pages: 2})
	fmt.Println("after insert:", buf.WhereIs(100))

	// Re-writing it is a hit: the block moves to the Small Request List.
	res := buf.Access(cache.Request{Time: 1, Write: true, LPN: 100, Pages: 2})
	fmt.Println("hits:", res.Hits, "now in:", buf.WhereIs(100))

	// A large request (8 pages) stays in IRL; hitting one page divides it.
	buf.Access(cache.Request{Time: 2, Write: true, LPN: 500, Pages: 8})
	buf.Access(cache.Request{Time: 3, Write: false, LPN: 502, Pages: 1})
	fmt.Println("hit page:", buf.WhereIs(502), "remainder:", buf.WhereIs(500))

	// Output:
	// after insert: IRL
	// hits: 2 now in: SRL
	// hit page: DRL remainder: IRL
}

// Configuring the δ bound and the ablation switches.
func ExampleNewConfig() {
	buf := core.NewConfig(1024, core.Config{Delta: 2, Merge: false, Recency: true})
	buf.Access(cache.Request{Time: 0, Write: true, LPN: 0, Pages: 3})
	buf.Access(cache.Request{Time: 1, Write: true, LPN: 0, Pages: 1})
	// 3 pages > δ=2, so the hit page was divided rather than promoted.
	fmt.Println(buf.WhereIs(0), buf.Delta())
	// Output: DRL 2
}
