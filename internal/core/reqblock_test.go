package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func w(time, lpn int64, pages int) cache.Request {
	return cache.Request{Time: time, Write: true, LPN: lpn, Pages: pages}
}

func r(time, lpn int64, pages int) cache.Request {
	return cache.Request{Time: time, Write: false, LPN: lpn, Pages: pages}
}

func mustInv(t *testing.T, c *ReqBlock) {
	t.Helper()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func evictedLPNs(res cache.Result) []int64 {
	var out []int64
	for _, ev := range res.Evictions {
		out = append(out, ev.LPNs...)
	}
	return out
}

func TestInsertCreatesIRLBlockPerRequest(t *testing.T) {
	c := New(64)
	res := c.Access(w(0, 10, 3))
	if res.Inserted != 3 || res.Misses != 3 {
		t.Fatalf("result %+v", res)
	}
	for lpn := int64(10); lpn < 13; lpn++ {
		if c.WhereIs(lpn) != "IRL" {
			t.Fatalf("page %d in %q, want IRL", lpn, c.WhereIs(lpn))
		}
	}
	// All three pages share one request block.
	if n, _, _ := c.BlockOf(10); n != 3 {
		t.Fatalf("block pages = %d, want 3", n)
	}
	if c.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d, want 1", c.NodeCount())
	}
	mustInv(t, c)
}

func TestSeparateRequestsSeparateBlocks(t *testing.T) {
	c := New(64)
	c.Access(w(0, 0, 2))
	c.Access(w(1, 100, 2))
	if c.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d, want 2", c.NodeCount())
	}
	mustInv(t, c)
}

func TestSmallBlockHitUpgradesToSRL(t *testing.T) {
	c := New(64) // delta = 5
	c.Access(w(0, 0, 3))
	res := c.Access(w(1, 0, 1)) // hit one page of a 3-page (small) block
	if res.Hits != 1 {
		t.Fatalf("result %+v", res)
	}
	// The whole block moves to SRL (Fig. 5b).
	for lpn := int64(0); lpn < 3; lpn++ {
		if c.WhereIs(lpn) != "SRL" {
			t.Fatalf("page %d in %q, want SRL", lpn, c.WhereIs(lpn))
		}
	}
	if _, cnt, _ := c.BlockOf(0); cnt != 2 {
		t.Fatalf("accessCnt = %d, want 2 (init 1 + 1 hit)", cnt)
	}
	mustInv(t, c)
}

func TestReadHitAlsoUpgrades(t *testing.T) {
	c := New(64)
	c.Access(w(0, 0, 2))
	res := c.Access(r(1, 1, 1))
	if res.Hits != 1 {
		t.Fatalf("read hit missed: %+v", res)
	}
	if c.WhereIs(0) != "SRL" {
		t.Fatal("read hit did not upgrade small block")
	}
	mustInv(t, c)
}

func TestLargeBlockHitSplitsToDRL(t *testing.T) {
	c := New(64)
	c.Access(w(0, 0, 8)) // large block (8 > delta 5)
	res := c.Access(w(1, 2, 1))
	if res.Hits != 1 {
		t.Fatalf("result %+v", res)
	}
	if c.WhereIs(2) != "DRL" {
		t.Fatalf("hit page in %q, want DRL", c.WhereIs(2))
	}
	// The remainder stays in IRL with 7 pages.
	if c.WhereIs(0) != "IRL" {
		t.Fatal("remainder moved unexpectedly")
	}
	if n, _, _ := c.BlockOf(0); n != 7 {
		t.Fatalf("remainder pages = %d, want 7", n)
	}
	if n, cnt, _ := c.BlockOf(2); n != 1 || cnt != 1 {
		t.Fatalf("split block pages=%d cnt=%d, want 1/1", n, cnt)
	}
	mustInv(t, c)
}

func TestConsecutiveHitPagesShareOneDRLBlock(t *testing.T) {
	c := New(64)
	c.Access(w(0, 0, 10))
	c.Access(w(1, 2, 3)) // hits pages 2,3,4 of the large block in one request
	if c.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d, want 2 (remainder + one DRL block)", c.NodeCount())
	}
	if n, _, _ := c.BlockOf(2); n != 3 {
		t.Fatalf("DRL block pages = %d, want 3", n)
	}
	mustInv(t, c)
}

func TestSeparateRequestsSeparateDRLBlocks(t *testing.T) {
	c := New(64)
	c.Access(w(0, 0, 10))
	c.Access(w(1, 2, 1))
	c.Access(w(2, 5, 1))
	// Two distinct hit requests -> two DRL blocks.
	lp := c.ListPages()
	if lp["DRL"] != 2 {
		t.Fatalf("DRL pages = %d, want 2", lp["DRL"])
	}
	if c.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d, want 3", c.NodeCount())
	}
	mustInv(t, c)
}

func TestSmallSplitBlockHitMovesToSRL(t *testing.T) {
	// Fig. 5b: a split block in DRL that is small moves to SRL when hit.
	c := New(64)
	c.Access(w(0, 0, 10))
	c.Access(w(1, 4, 1)) // split page 4 into DRL (1-page block)
	if c.WhereIs(4) != "DRL" {
		t.Fatal("setup failed")
	}
	c.Access(w(2, 4, 1)) // hit the small DRL block
	if c.WhereIs(4) != "SRL" {
		t.Fatalf("page 4 in %q, want SRL", c.WhereIs(4))
	}
	mustInv(t, c)
}

func TestLargeDRLBlockSplitsAgain(t *testing.T) {
	// A DRL block that grew beyond delta is itself divided on a hit.
	c := NewConfig(64, Config{Delta: 2, Merge: true, Recency: true})
	c.Access(w(0, 0, 10))
	c.Access(w(1, 3, 3)) // pages 3,4,5 split into one 3-page DRL block (> delta 2)
	if n, _, _ := c.BlockOf(3); n != 3 {
		t.Fatalf("setup: DRL block has %d pages", n)
	}
	c.Access(w(2, 4, 1)) // hit inside the large DRL block -> divide again
	if c.WhereIs(4) != "DRL" {
		t.Fatalf("re-split page in %q", c.WhereIs(4))
	}
	if n, _, _ := c.BlockOf(4); n != 1 {
		t.Fatalf("re-split block pages = %d, want 1", n)
	}
	if n, _, _ := c.BlockOf(3); n != 2 {
		t.Fatalf("old DRL block pages = %d, want 2", n)
	}
	mustInv(t, c)
}

func TestExactlyDeltaPagesIsSmall(t *testing.T) {
	c := New(64) // delta 5
	c.Access(w(0, 0, 5))
	c.Access(w(1, 0, 1))
	if c.WhereIs(0) != "SRL" {
		t.Fatalf("5-page block treated as large (in %q)", c.WhereIs(4))
	}
	mustInv(t, c)
}

func TestDeltaOneDegeneratesToPageGranularSRL(t *testing.T) {
	c := NewConfig(64, Config{Delta: 1, Merge: true, Recency: true})
	c.Access(w(0, 0, 1))
	c.Access(w(1, 0, 1))
	if c.WhereIs(0) != "SRL" {
		t.Fatal("single-page block not upgraded")
	}
	c.Access(w(2, 10, 4))
	c.Access(w(3, 11, 1)) // 4-page block is large under delta 1 -> split
	if c.WhereIs(11) != "DRL" {
		t.Fatal("page of large block not split under delta 1")
	}
	mustInv(t, c)
}

func TestEvictionPicksLowestFreqTail(t *testing.T) {
	c := New(8)
	// Block A: 4 pages, never hit, old.
	c.Access(w(0, 0, 4))
	// Block B: 2 pages, hit once (lands in SRL).
	c.Access(w(1, 100, 2))
	c.Access(w(2, 100, 1))
	// Cache holds 6 pages. Insert 4 more: must evict block A
	// (freq = 1/(4·age)) rather than B (freq = 2/(2·age)).
	res := c.Access(w(1000, 200, 4))
	got := evictedLPNs(res)
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("evicted %v, want block A's pages 0-3", got)
	}
	if !c.Contains(100) || !c.Contains(101) {
		t.Fatal("hot small block evicted")
	}
	mustInv(t, c)
}

func TestEvictionIsWholeBlockBatch(t *testing.T) {
	c := New(8)
	c.Access(w(0, 0, 8))
	res := c.Access(w(1, 100, 1))
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions = %d", len(res.Evictions))
	}
	ev := res.Evictions[0]
	if len(ev.LPNs) != 8 || ev.BlockBound {
		t.Fatalf("eviction %+v, want striped 8-page batch", ev)
	}
	// LPNs must be sorted for deterministic flushing.
	for i := 1; i < len(ev.LPNs); i++ {
		if ev.LPNs[i] < ev.LPNs[i-1] {
			t.Fatalf("unsorted eviction %v", ev.LPNs)
		}
	}
	mustInv(t, c)
}

// mergeScenario builds the shared fixture for the downgraded-merging tests
// (recency off so Eq. 1 reduces to AccessCnt/PageNum and scores are exact):
//
//	w(0,0,4)   A = {0,1,2,3} in IRL, cnt 1
//	w(1,1,2)   hits pages 1,2 of A (4 > δ=2): both split into D = {1,2}
//	           in DRL with origin A; A = {0,3}, cnt 3 → score 1.5
//	w(2..5)    two 1-page blocks F{50}, G{60}, each hit once → SRL, score 2
//	w(6..7)    two 1-page IRL fillers H{70}, I{80}, score 1
//
// Cache then holds 8 pages (capacity 8). The next insert compares tails:
// IRL tail A = 1.5, DRL tail D = 0.5, SRL tail F = 2.0 → victim is D.
func mergeScenario(t *testing.T, merge bool) *ReqBlock {
	t.Helper()
	c := NewConfig(8, Config{Delta: 2, Merge: merge, Recency: false})
	c.Access(w(0, 0, 4))
	c.Access(w(1, 1, 2))
	if c.WhereIs(1) != "DRL" || c.WhereIs(2) != "DRL" {
		t.Fatal("setup: split block not in DRL")
	}
	if n, cnt, _ := c.BlockOf(0); n != 2 || cnt != 3 {
		t.Fatalf("setup: origin has %d pages cnt %d, want 2/3", n, cnt)
	}
	c.Access(w(2, 50, 1))
	c.Access(w(3, 50, 1))
	c.Access(w(4, 60, 1))
	c.Access(w(5, 60, 1))
	c.Access(w(6, 70, 1))
	c.Access(w(7, 80, 1))
	if c.Len() != 8 {
		t.Fatalf("setup: cache holds %d pages, want 8", c.Len())
	}
	mustInv(t, c)
	return c
}

func TestDowngradedMergeEvictsSplitWithOrigin(t *testing.T) {
	// Fig. 6: the DRL victim {1,2} merges with its IRL origin {0,3} and
	// the union is flushed as one batch.
	c := mergeScenario(t, true)
	res := c.Access(w(8, 90, 1))
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions: %+v", res.Evictions)
	}
	got := res.Evictions[0].LPNs
	want := []int64{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("merged eviction %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged eviction %v, want %v", got, want)
		}
	}
	if c.Contains(0) || c.Contains(3) {
		t.Fatal("origin pages survived the merged eviction")
	}
	mustInv(t, c)
}

func TestMergeDisabledEvictsSplitAlone(t *testing.T) {
	c := mergeScenario(t, false)
	res := c.Access(w(8, 90, 1))
	got := res.Evictions[0].LPNs
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("merge-off eviction %v, want [1 2] alone", got)
	}
	if !c.Contains(0) || !c.Contains(3) {
		t.Fatal("origin pages must survive when merging is disabled")
	}
	mustInv(t, c)
}

func TestStaleOriginNotMerged(t *testing.T) {
	// As mergeScenario, but the origin is upgraded to SRL before eviction
	// (a small-block hit): the split victim must then be evicted alone.
	c := NewConfig(8, Config{Delta: 2, Merge: true, Recency: false})
	c.Access(w(0, 0, 4))
	c.Access(w(1, 1, 2)) // D = {1,2} in DRL, origin A = {0,3}
	c.Access(w(2, 0, 1)) // hit A: 2 pages ≤ δ → SRL, cnt 4 → score 2.0
	if c.WhereIs(0) != "SRL" {
		t.Fatal("setup: origin not in SRL")
	}
	c.Access(w(3, 50, 1))
	c.Access(w(4, 50, 1)) // F → SRL, score 2
	c.Access(w(5, 60, 1))
	c.Access(w(6, 70, 1))
	c.Access(w(7, 80, 1)) // G{60}, H{70}, I{80} in IRL, score 1 each
	if c.Len() != 8 {
		t.Fatalf("setup: cache holds %d pages, want 8", c.Len())
	}
	// Tails: IRL G (score 1, pushed first → tail), DRL D (0.5), SRL A (2).
	res := c.Access(w(8, 90, 1))
	got := res.Evictions[0].LPNs
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("stale-origin eviction %v, want [1 2] alone", got)
	}
	if !c.Contains(0) || !c.Contains(3) {
		t.Fatal("SRL origin must not be dragged into the eviction")
	}
	mustInv(t, c)
}

func TestReadMissesBypass(t *testing.T) {
	c := New(8)
	res := c.Access(r(0, 5, 3))
	if len(res.ReadMisses) != 3 || c.Len() != 0 {
		t.Fatalf("read misses mishandled: %+v", res)
	}
	mustInv(t, c)
}

func TestRequestLargerThanCapacity(t *testing.T) {
	c := New(4)
	res := c.Access(w(0, 0, 12))
	if res.Inserted != 12 {
		t.Fatalf("Inserted = %d", res.Inserted)
	}
	if c.Len() > 4 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
	mustInv(t, c)
}

func TestListPagesGauges(t *testing.T) {
	c := New(64)
	c.Access(w(0, 0, 8))   // IRL: 8
	c.Access(w(1, 100, 2)) // IRL: 10
	c.Access(w(2, 100, 1)) // -> SRL: 2, IRL: 8
	c.Access(w(3, 3, 1))   // split -> DRL: 1, IRL: 7
	lp := c.ListPages()
	if lp["IRL"] != 7 || lp["SRL"] != 2 || lp["DRL"] != 1 {
		t.Fatalf("ListPages = %v", lp)
	}
	mustInv(t, c)
}

func TestFreqClampsZeroAge(t *testing.T) {
	c := New(2)
	c.Access(w(1000, 0, 2))
	// Evicting at the same timestamp must not divide by zero.
	res := c.Access(w(1000, 10, 1))
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions: %+v", res.Evictions)
	}
	mustInv(t, c)
}

func TestSmallRequestsSurviveLargeStreams(t *testing.T) {
	// The headline behavior (Observations 1-2): hot small requests stay
	// cached while cold large streams wash through.
	c := New(64)
	// Hot small working set: 8 requests of 2 pages, re-hit periodically.
	for round := 0; round < 20; round++ {
		now := int64(round) * 1000
		for i := int64(0); i < 8; i++ {
			c.Access(w(now+i, 1000+i*2, 2))
		}
		// Cold large stream: 3 requests of 16 pages each round.
		for i := int64(0); i < 3; i++ {
			c.Access(w(now+100+i, 10_000+int64(round)*48+i*16, 16))
		}
	}
	// Every hot page must still be resident.
	for i := int64(0); i < 8; i++ {
		if !c.Contains(1000 + i*2) {
			t.Fatalf("hot page %d evicted", 1000+i*2)
		}
	}
	// The hot set sits in SRL.
	if lp := c.ListPages(); lp["SRL"] < 16 {
		t.Fatalf("SRL pages = %d, want >= 16", lp["SRL"])
	}
	mustInv(t, c)
}

func TestNodeAccounting(t *testing.T) {
	c := New(64)
	if c.NodeBytes() != 32 {
		t.Fatalf("NodeBytes = %d, want 32 (Fig. 12)", c.NodeBytes())
	}
	if c.Name() != "Req-block" || c.Delta() != 5 {
		t.Fatal("identity wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { NewConfig(8, Config{Delta: 0, Merge: true, Recency: true}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestRandomWorkloadInvariants drives Req-block with random mixed
// workloads, checking the full invariant set after every request.
func TestRandomWorkloadInvariants(t *testing.T) {
	f := func(seed int64, deltaRaw uint8, merge, recency bool) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Delta: 1 + int(deltaRaw%8), Merge: merge, Recency: recency}
		c := NewConfig(24, cfg)
		now := int64(0)
		for i := 0; i < 500; i++ {
			now += int64(rng.Intn(1000)) + 1
			req := cache.Request{
				Time:  now,
				Write: rng.Intn(10) < 7,
				LPN:   rng.Int63n(128),
				Pages: 1 + rng.Intn(12),
			}
			res := c.Access(req)
			if res.Hits+res.Misses != req.Pages {
				return false
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEvictedPagesWereResident: every evicted page was either previously
// buffered or inserted by the in-flight request.
func TestEvictedPagesWereResident(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(16)
	resident := map[int64]bool{}
	now := int64(0)
	for i := 0; i < 2000; i++ {
		now += int64(rng.Intn(100)) + 1
		req := w(now, rng.Int63n(64), 1+rng.Intn(10))
		res := c.Access(req)
		for _, ev := range res.Evictions {
			for _, lpn := range ev.LPNs {
				inFlight := lpn >= req.LPN && lpn < req.LPN+int64(req.Pages)
				if !resident[lpn] && !inFlight {
					t.Fatalf("op %d: evicted unknown page %d", i, lpn)
				}
				delete(resident, lpn)
			}
		}
		for lpn := req.LPN; lpn < req.LPN+int64(req.Pages); lpn++ {
			if c.Contains(lpn) {
				resident[lpn] = true
			} else {
				delete(resident, lpn)
			}
		}
		if len(resident) != c.Len() {
			t.Fatalf("op %d: model %d != len %d", i, len(resident), c.Len())
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	reqs := make([]cache.Request, 500)
	now := int64(0)
	for i := range reqs {
		now += int64(rng.Intn(500)) + 1
		reqs[i] = cache.Request{
			Time: now, Write: rng.Intn(10) < 8,
			LPN: rng.Int63n(96), Pages: 1 + rng.Intn(10),
		}
	}
	a, b := New(32), New(32)
	for i, req := range reqs {
		ra, rb := a.Access(req), b.Access(req)
		if ra.Hits != rb.Hits || len(ra.Evictions) != len(rb.Evictions) {
			t.Fatalf("nondeterministic at %d", i)
		}
		for j := range ra.Evictions {
			if len(ra.Evictions[j].LPNs) != len(rb.Evictions[j].LPNs) {
				t.Fatalf("eviction mismatch at %d", i)
			}
			for k := range ra.Evictions[j].LPNs {
				if ra.Evictions[j].LPNs[k] != rb.Evictions[j].LPNs[k] {
					t.Fatalf("eviction contents differ at %d", i)
				}
			}
		}
	}
}
