package core

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
)

func TestAdaptiveDefaults(t *testing.T) {
	c := NewAdaptive(256, 0)
	if c.epochAccesses != 4*256 {
		t.Fatalf("default epoch = %d", c.epochAccesses)
	}
	if c.Name() != "Req-block-adaptive" || c.Delta() != DefaultDelta {
		t.Fatal("identity wrong")
	}
}

func TestAdaptiveEpochBoundaries(t *testing.T) {
	c := NewAdaptive(64, 10)
	for i := int64(0); i < 35; i++ {
		c.Access(cache.Request{Time: i, Write: true, LPN: i % 16, Pages: 1})
	}
	// 35 accesses with epoch 10 → 3 completed epochs.
	if got := len(c.Epochs()); got != 3 {
		t.Fatalf("epochs = %d, want 3", got)
	}
	for _, e := range c.Epochs() {
		if e.Delta < MinDelta || e.Delta > MaxDelta {
			t.Fatalf("epoch delta %d out of bounds", e.Delta)
		}
		if e.HitRatio < 0 || e.HitRatio > 1 {
			t.Fatalf("epoch hit ratio %v out of range", e.HitRatio)
		}
	}
}

func TestAdaptiveDeltaStaysInBounds(t *testing.T) {
	c := NewAdaptive(32, 5)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		c.Access(cache.Request{
			Time:  int64(i) * 100,
			Write: rng.Intn(10) < 8,
			LPN:   rng.Int63n(256),
			Pages: 1 + rng.Intn(12),
		})
		if d := c.Delta(); d < MinDelta || d > MaxDelta {
			t.Fatalf("delta %d escaped bounds at op %d", d, i)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if len(c.Epochs()) == 0 {
		t.Fatal("controller never adapted")
	}
}

func TestAdaptiveReversesOnRegression(t *testing.T) {
	c := NewAdaptive(64, 4)
	c.haveBaseline = true
	c.lastRatio = 0.9
	c.direction = +1
	startDelta := c.cfg.Delta
	// Feed an all-miss epoch: ratio 0 < 0.9 → direction must flip and δ
	// move the other way.
	for i := int64(0); i < 4; i++ {
		c.Access(cache.Request{Time: i, Write: true, LPN: 1000 + i*10, Pages: 1})
	}
	if c.direction != -1 {
		t.Fatalf("direction = %d, want -1 after regression", c.direction)
	}
	if c.cfg.Delta != startDelta-1 {
		t.Fatalf("delta = %d, want %d", c.cfg.Delta, startDelta-1)
	}
}

func TestAdaptiveConvergesTowardGoodDelta(t *testing.T) {
	// A workload where small-request protection matters (hot 2-page
	// requests + cold 12-page streams): the controller must not wander to
	// the extremes and stay there while hit ratio suffers; after many
	// epochs its δ should sit in the useful band for 2-page requests.
	c := NewAdaptive(128, 512)
	rng := rand.New(rand.NewSource(9))
	pos := int64(10_000)
	for i := 0; i < 60_000; i++ {
		if rng.Intn(10) < 7 {
			c.Access(cache.Request{Time: int64(i), Write: true, LPN: rng.Int63n(96) * 2, Pages: 2})
		} else {
			c.Access(cache.Request{Time: int64(i), Write: true, LPN: pos, Pages: 12})
			pos += 12
		}
	}
	es := c.Epochs()
	if len(es) < 20 {
		t.Fatalf("too few epochs: %d", len(es))
	}
	// Average δ over the last half of the run.
	var sum int
	tail := es[len(es)/2:]
	for _, e := range tail {
		sum += e.Delta
	}
	avg := float64(sum) / float64(len(tail))
	if avg < 1 || avg > 12 {
		t.Fatalf("late-run mean delta %.1f — controller stuck at an extreme", avg)
	}
}

func TestAdaptiveStillReqBlockUnderneath(t *testing.T) {
	// The wrapper must preserve all Req-block semantics.
	c := NewAdaptive(64, 1000)
	c.Access(w(0, 0, 3))
	c.Access(w(1, 0, 1))
	if c.WhereIs(0) != "SRL" {
		t.Fatal("upgrade semantics lost")
	}
	mustInv(t, c.ReqBlock)
}
