package core

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
)

// Additional Req-block scenarios beyond the Algorithm 1 basics.

func TestUpgradePreservesAccessCount(t *testing.T) {
	c := New(64)
	c.Access(w(0, 0, 3))
	c.Access(w(1, 0, 1)) // → SRL, cnt 2
	c.Access(w(2, 1, 1)) // hit again in SRL, cnt 3
	if _, cnt, ok := c.BlockOf(0); !ok || cnt != 3 {
		t.Fatalf("accessCnt = %d, want 3", cnt)
	}
	if c.WhereIs(0) != "SRL" {
		t.Fatal("block left SRL")
	}
	mustInv(t, c)
}

func TestEvictionFromSRLOnly(t *testing.T) {
	// When SRL is the only populated list, its tail must be evictable.
	c := New(4)
	c.Access(w(0, 0, 2))
	c.Access(w(1, 0, 1)) // block A → SRL
	c.Access(w(2, 10, 2))
	c.Access(w(3, 10, 1)) // block B → SRL; cache full (4 pages), IRL empty
	if lp := c.ListPages(); lp["IRL"] != 0 || lp["SRL"] != 4 {
		t.Fatalf("setup: %v", lp)
	}
	res := c.Access(w(1000, 20, 1))
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions: %+v", res.Evictions)
	}
	// Victim must be one whole SRL block (2 pages).
	if got := res.Evictions[0].LPNs; len(got) != 2 {
		t.Fatalf("evicted %v, want one 2-page SRL block", got)
	}
	mustInv(t, c)
}

func TestMixedHitMissRequest(t *testing.T) {
	c := New(64)
	c.Access(w(0, 0, 2))        // pages 0,1 cached
	res := c.Access(w(1, 0, 4)) // hits 0,1; misses 2,3
	if res.Hits != 2 || res.Misses != 2 || res.Inserted != 2 {
		t.Fatalf("result %+v", res)
	}
	// The hit pages upgraded the (small) original block to SRL; the
	// missed pages formed a new IRL block belonging to this request.
	if c.WhereIs(0) != "SRL" || c.WhereIs(2) != "IRL" {
		t.Fatalf("placement: %s / %s", c.WhereIs(0), c.WhereIs(2))
	}
	if n, _, _ := c.BlockOf(2); n != 2 {
		t.Fatalf("new block pages = %d, want 2", n)
	}
	mustInv(t, c)
}

func TestSplitOfSplitPropagatesOrigin(t *testing.T) {
	// A split block in DRL that grows beyond δ and is hit again splits
	// once more; the grand-split's origin must point at the ORIGINAL IRL
	// block (originOf chases one level), so merging still finds it.
	c := NewConfig(32, Config{Delta: 2, Merge: true, Recency: false})
	c.Access(w(0, 0, 8)) // A in IRL
	c.Access(w(1, 1, 3)) // D1 = {1,2,3} in DRL (3 > δ), origin A; A = {0,4..7}
	c.Access(w(2, 2, 1)) // hit inside large D1 → D2 = {2}, origin must be A
	if c.WhereIs(2) != "DRL" {
		t.Fatal("grand split not in DRL")
	}
	blk := c.index[2].blk
	if blk.origin == nil || blk.origin != c.index[0].blk {
		t.Fatal("grand split's origin does not point at the IRL original")
	}
	mustInv(t, c)
}

func TestOriginEvictedBeforeSplitNotMerged(t *testing.T) {
	// The origin is evicted first; when the split later becomes the
	// victim, the stale pointer must not resurrect freed pages.
	c := NewConfig(8, Config{Delta: 2, Merge: true, Recency: false})
	c.Access(w(0, 0, 8)) // A = {0..7}, cnt 1
	c.Access(w(1, 1, 2)) // D = {1,2} origin A (score 0.5); A = {0,3..7} cnt 3 → 0.5
	// Cache full at 8. Next insert evicts: IRL tail A ties D at 0.5 and
	// IRL wins ties → A (the origin) leaves first, alone.
	res := c.Access(w(2, 20, 1))
	if got := evictedLPNs(res); len(got) != 6 || got[0] != 0 || got[5] != 7 {
		t.Fatalf("first eviction %v, want A's remainder [0 3 4 5 6 7]", got)
	}
	// Fill with singles, then force D's eviction; its origin is gone.
	c.Access(w(3, 21, 1))
	c.Access(w(4, 22, 1))
	c.Access(w(5, 23, 1))
	c.Access(w(6, 24, 1))
	c.Access(w(7, 25, 1)) // cache back to 8 pages
	res = c.Access(w(8, 30, 1))
	// Victim comparison: IRL tail {20} scores 1.0, DRL tail D 0.5 → D.
	got := evictedLPNs(res)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("eviction %v, want the split [1 2] alone (origin gone)", got)
	}
	mustInv(t, c)
}

func TestHugeDeltaMakesEverythingSmall(t *testing.T) {
	c := NewConfig(64, Config{Delta: 1000, Merge: true, Recency: true})
	c.Access(w(0, 0, 32))
	c.Access(w(1, 5, 1))
	if c.WhereIs(5) != "SRL" || c.WhereIs(0) != "SRL" {
		t.Fatal("huge delta: every hit block must upgrade whole to SRL")
	}
	if lp := c.ListPages(); lp["DRL"] != 0 {
		t.Fatal("DRL must stay empty with a huge delta")
	}
	mustInv(t, c)
}

func TestListPagesSumEqualsLen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New(32)
	for i := 0; i < 1000; i++ {
		c.Access(cache.Request{
			Time:  int64(i) * 100,
			Write: rng.Intn(10) < 8,
			LPN:   rng.Int63n(128),
			Pages: 1 + rng.Intn(10),
		})
		sum := 0
		for _, v := range c.ListPages() {
			sum += v
		}
		if sum != c.Len() {
			t.Fatalf("op %d: list pages %d != Len %d", i, sum, c.Len())
		}
	}
	mustInv(t, c)
}

func TestReadOnlyWorkloadNeverMutates(t *testing.T) {
	c := New(16)
	for i := int64(0); i < 100; i++ {
		res := c.Access(r(i, i*3, 2))
		if res.Inserted != 0 || len(res.Evictions) != 0 {
			t.Fatalf("read mutated the cache: %+v", res)
		}
	}
	if c.Len() != 0 || c.NodeCount() != 0 {
		t.Fatal("cache not empty after read-only workload")
	}
}

func TestFreqPrefersRecentOverOld(t *testing.T) {
	// Same size and count: the recently inserted block survives (Eq. 1's
	// aging term).
	c := New(4)
	c.Access(w(0, 0, 2))          // old
	c.Access(w(1_000_000, 10, 2)) // young
	res := c.Access(w(2_000_000, 20, 1))
	if got := evictedLPNs(res); got[0] != 0 {
		t.Fatalf("evicted %v, want the old block's pages", got)
	}
	mustInv(t, c)
}

func TestRecencyOffIgnoresAge(t *testing.T) {
	// Without the aging term, equal score blocks tie and the tie breaks
	// by tail position (the older block): same outcome, different path;
	// but a higher-count old block must now WIN against a young one.
	c := NewConfig(4, Config{Delta: 5, Merge: true, Recency: false})
	c.Access(w(0, 0, 2))
	c.Access(w(1, 0, 1))  // old block cnt 3 → score 1.5... (2 pages, cnt 2→ wait)
	c.Access(w(2, 10, 2)) // young block cnt 1 → 0.5
	res := c.Access(w(1_000_000, 20, 1))
	if got := evictedLPNs(res); got[0] != 10 {
		t.Fatalf("evicted %v, want the low-count young block despite its youth", got)
	}
	mustInv(t, c)
}

func TestDRLBlockGrowthAcrossPages(t *testing.T) {
	// One request hitting many pages of a large block builds one DRL
	// block whose page count equals the hits.
	c := New(64)
	c.Access(w(0, 0, 12))
	res := c.Access(w(1, 2, 6))
	if res.Hits != 6 {
		t.Fatalf("hits = %d", res.Hits)
	}
	if n, _, _ := c.BlockOf(2); n != 6 {
		t.Fatalf("DRL block pages = %d, want 6", n)
	}
	if n, _, _ := c.BlockOf(0); n != 6 {
		t.Fatalf("IRL remainder pages = %d, want 6", n)
	}
	mustInv(t, c)
}

func TestFullRehitSplitsUntilSmallThenUpgrades(t *testing.T) {
	// Re-hitting every page of a large block walks Algorithm 1's two hit
	// branches in sequence: pages split into DRL while the remainder is
	// still large; once it shrinks to δ pages, the next hit upgrades the
	// remainder whole to SRL.
	c := New(64) // δ = 5
	c.Access(w(0, 0, 8))
	c.Access(w(1, 0, 8)) // hits all 8 pages
	lp := c.ListPages()
	if lp["IRL"] != 0 {
		t.Fatalf("IRL pages = %d, want 0", lp["IRL"])
	}
	// Pages 0,1,2 split off (remainder 7,6,5 pages were large); at page 3
	// the remainder {3..7} has 5 ≤ δ pages and upgrades whole to SRL.
	if lp["DRL"] != 3 || lp["SRL"] != 5 {
		t.Fatalf("DRL/SRL = %d/%d, want 3/5", lp["DRL"], lp["SRL"])
	}
	if c.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d, want 2 (one DRL block + SRL remainder)", c.NodeCount())
	}
	mustInv(t, c)
}

func TestInterleavedRequestsDontShareBlocks(t *testing.T) {
	// Two interleaved writers: pages inserted by different requests go to
	// different request blocks even when addresses interleave.
	c := New(64)
	c.Access(w(0, 0, 2))  // req 1: pages 0,1
	c.Access(w(1, 10, 2)) // req 2: pages 10,11
	c.Access(w(2, 2, 2))  // req 3: pages 2,3 — adjacent to req 1's, separate block
	if c.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d, want 3", c.NodeCount())
	}
	n1, _, _ := c.BlockOf(0)
	n3, _, _ := c.BlockOf(2)
	if n1 != 2 || n3 != 2 {
		t.Fatalf("block sizes %d/%d, want 2/2", n1, n3)
	}
	mustInv(t, c)
}
