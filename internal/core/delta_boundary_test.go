package core_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

// δ-boundary edge cases, table-driven: each scenario scripts a few
// requests around the small-request bound and pins the exact list
// placements, transition annotations and eviction batches Algorithm 1
// requires. These are the cases a differential campaign hits only by
// luck; here they are deterministic.

// sinkRec records transition annotations for comparison.
type sinkRec struct {
	trs []cache.ListTransition
}

func (s *sinkRec) OnListTransition(tr cache.ListTransition) { s.trs = append(s.trs, tr) }

func TestDeltaBoundaryCases(t *testing.T) {
	type step struct {
		req cache.Request
		// wantEvict, when non-nil, is the concatenated eviction LPNs this
		// step must flush (empty slice = must not evict).
		wantEvict []int64
	}
	cases := []struct {
		name     string
		delta    int
		capacity int
		steps    []step
		// where maps LPN → expected list after all steps ("" = not cached).
		where map[int64]string
		// wantTrs is the exact transition stream across all steps.
		wantTrs []cache.ListTransition
	}{
		{
			// A block of exactly δ pages is small: a hit promotes the whole
			// block to the SRL. (The delta-off-by-one mutation breaks
			// precisely this case.)
			name:     "request exactly delta",
			delta:    3,
			capacity: 16,
			steps: []step{
				{req: cache.Request{Time: 1, Write: true, LPN: 0, Pages: 3}, wantEvict: []int64{}},
				{req: cache.Request{Time: 2, Write: true, LPN: 1, Pages: 1}, wantEvict: []int64{}},
			},
			where: map[int64]string{0: "SRL", 1: "SRL", 2: "SRL", 3: ""},
			// The head page (most recently inserted, LPN 2) labels the
			// whole-block move.
			wantTrs: []cache.ListTransition{{LPN: 2, Pages: 3, From: "IRL", To: "SRL"}},
		},
		{
			// One page over δ is large: the hit page splits into the DRL,
			// the remainder stays in the IRL.
			name:     "request one over delta",
			delta:    3,
			capacity: 16,
			steps: []step{
				{req: cache.Request{Time: 1, Write: true, LPN: 0, Pages: 4}, wantEvict: []int64{}},
				{req: cache.Request{Time: 2, Write: true, LPN: 1, Pages: 1}, wantEvict: []int64{}},
			},
			where:   map[int64]string{0: "IRL", 1: "DRL", 2: "IRL", 3: "IRL"},
			wantTrs: []cache.ListTransition{{LPN: 1, Pages: 1, From: "IRL", To: "DRL"}},
		},
		{
			// Single-page requests sit at the extreme small end: first hit
			// promotes to SRL, further hits reorder silently within it.
			name:     "one-page requests",
			delta:    1,
			capacity: 16,
			steps: []step{
				{req: cache.Request{Time: 1, Write: true, LPN: 7, Pages: 1}, wantEvict: []int64{}},
				{req: cache.Request{Time: 2, Write: true, LPN: 7, Pages: 1}, wantEvict: []int64{}},
				{req: cache.Request{Time: 3, Write: true, LPN: 7, Pages: 1}, wantEvict: []int64{}},
			},
			where:   map[int64]string{7: "SRL"},
			wantTrs: []cache.ListTransition{{LPN: 7, Pages: 1, From: "IRL", To: "SRL"}},
		},
		{
			// Re-hitting pages that already split into a DRL block: the DRL
			// block shrank below δ, so the re-hit upgrades it to the SRL;
			// a further hit inside the SRL stays silent.
			name:     "re-hit of split DRL block",
			delta:    3,
			capacity: 16,
			steps: []step{
				{req: cache.Request{Time: 1, Write: true, LPN: 0, Pages: 5}, wantEvict: []int64{}},
				{req: cache.Request{Time: 2, Write: true, LPN: 0, Pages: 2}, wantEvict: []int64{}}, // splits 0,1 → DRL
				{req: cache.Request{Time: 3, Write: true, LPN: 0, Pages: 1}, wantEvict: []int64{}}, // DRL block (2 pages ≤ δ) → SRL
				{req: cache.Request{Time: 4, Write: true, LPN: 1, Pages: 1}, wantEvict: []int64{}}, // SRL-internal, silent
			},
			where: map[int64]string{0: "SRL", 1: "SRL", 2: "IRL", 3: "IRL", 4: "IRL"},
			wantTrs: []cache.ListTransition{
				{LPN: 0, Pages: 1, From: "IRL", To: "DRL"},
				{LPN: 1, Pages: 1, From: "IRL", To: "DRL"},
				{LPN: 1, Pages: 2, From: "DRL", To: "SRL"}, // head of the DRL block is LPN 1
			},
		},
		{
			// Downgraded merging fires when the split victim's origin still
			// sits in IRL: evicting the DRL block {0,1} flushes the IRL
			// remainder {2,3} with it as one batch.
			name:     "merge eviction with live origin",
			delta:    2,
			capacity: 4,
			steps: []step{
				{req: cache.Request{Time: 1, Write: true, LPN: 0, Pages: 4}, wantEvict: []int64{}},
				{req: cache.Request{Time: 2, Write: true, LPN: 0, Pages: 2}, wantEvict: []int64{}}, // splits 0,1 → DRL
				// t=4: freq(DRL {1,0}) = 1/(2·2) < freq(IRL {2,3}) = 3/(2·3):
				// the DRL block is the victim and merges with its origin.
				{req: cache.Request{Time: 4, Write: true, LPN: 10, Pages: 1}, wantEvict: []int64{0, 1, 2, 3}},
			},
			where: map[int64]string{0: "", 1: "", 2: "", 3: "", 10: "IRL"},
			wantTrs: []cache.ListTransition{
				{LPN: 0, Pages: 1, From: "IRL", To: "DRL"},
				{LPN: 1, Pages: 1, From: "IRL", To: "DRL"},
				{LPN: 3, Pages: 2, From: "IRL", To: "merge"}, // origin {3,2}, head LPN 3
			},
		},
		{
			// No merge when the IRL remainder was evicted first: the origin
			// link is stale (the block was recycled), so evicting the split
			// block flushes it alone.
			name:     "merge skipped after origin evicted",
			delta:    2,
			capacity: 6,
			steps: []step{
				{req: cache.Request{Time: 1, Write: true, LPN: 0, Pages: 6}, wantEvict: []int64{}},
				{req: cache.Request{Time: 2, Write: true, LPN: 0, Pages: 1}, wantEvict: []int64{}}, // splits 0 → DRL
				// t=4: freq(IRL {1..5}) = 2/(5·3) < freq(DRL {0}) = 1/(1·2):
				// the IRL remainder is evicted first, origin gone.
				{req: cache.Request{Time: 4, Write: true, LPN: 10, Pages: 1}, wantEvict: []int64{1, 2, 3, 4, 5}},
				{req: cache.Request{Time: 5, Write: true, LPN: 11, Pages: 4}, wantEvict: []int64{}},
				// t=6: tails are IRL {11..14} (4/…), DRL {0} (oldest, lowest
				// freq): the split block is the victim, and it must flush
				// alone — its origin was recycled at t=4.
				{req: cache.Request{Time: 6, Write: true, LPN: 20, Pages: 1}, wantEvict: []int64{0}},
			},
			where: map[int64]string{0: "", 10: "IRL", 20: "IRL"},
			wantTrs: []cache.ListTransition{
				{LPN: 0, Pages: 1, From: "IRL", To: "DRL"},
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := core.NewConfig(tc.capacity, core.Config{Delta: tc.delta, Merge: true, Recency: true})
			sink := &sinkRec{}
			c.SetTransitionSink(sink)
			for si, st := range tc.steps {
				res := c.Access(st.req)
				var got []int64
				for _, ev := range res.Evictions {
					got = append(got, ev.LPNs...)
				}
				if st.wantEvict != nil && !equalLPNs(got, st.wantEvict) {
					t.Fatalf("step %d: evicted %v, want %v", si, got, st.wantEvict)
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", si, err)
				}
			}
			for lpn, want := range tc.where {
				if got := c.WhereIs(lpn); got != want {
					t.Errorf("WhereIs(%d) = %q, want %q", lpn, got, want)
				}
			}
			if len(sink.trs) != len(tc.wantTrs) {
				t.Fatalf("transitions = %+v, want %+v", sink.trs, tc.wantTrs)
			}
			for i := range sink.trs {
				if sink.trs[i] != tc.wantTrs[i] {
					t.Errorf("transition %d = %+v, want %+v", i, sink.trs[i], tc.wantTrs[i])
				}
			}
		})
	}
}

func equalLPNs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
