package ftl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFTLModelBased drives the FTL with random writes, trims and GC
// pressure while mirroring the logical state in a plain map. At every step
// the FTL's view (Mapped) must match the model, and after the run every
// mapped page must still resolve through the physical invariants. The FTL
// stores no data, so the model tracks existence, which is what mapping
// corruption would break first.
func TestFTLModelBased(t *testing.T) {
	f := func(seed int64, wearLevel bool) bool {
		rng := rand.New(rand.NewSource(seed))
		ftl, err := NewConfig(tinyParams(), wearLevel)
		if err != nil {
			return false
		}
		logical := ftl.LogicalPages()
		model := map[int64]bool{}
		now := int64(0)
		for op := 0; op < 400; op++ {
			now += int64(rng.Intn(500)) + 1
			switch rng.Intn(10) {
			case 0, 1: // trim a random range
				base := rng.Int63n(logical)
				n := int64(1 + rng.Intn(4))
				if base+n > logical {
					n = logical - base
				}
				if err := ftl.Trim(seq(base, n)); err != nil {
					t.Logf("trim: %v", err)
					return false
				}
				for p := base; p < base+n; p++ {
					delete(model, p)
				}
			case 2: // read a random mapped page (timing only)
				if len(model) == 0 {
					continue
				}
				for p := range model {
					if _, err := ftl.Read(now, []int64{p}); err != nil {
						t.Logf("read: %v", err)
						return false
					}
					break
				}
			default: // write a short run
				base := rng.Int63n(logical)
				n := int64(1 + rng.Intn(5))
				if base+n > logical {
					n = logical - base
				}
				var werr error
				if rng.Intn(4) == 0 {
					_, werr = ftl.WriteBlockBound(now, seq(base, n))
				} else {
					_, werr = ftl.WriteStriped(now, seq(base, n))
				}
				if werr != nil {
					t.Logf("write: %v", werr)
					return false
				}
				for p := base; p < base+n; p++ {
					model[p] = true
				}
			}
			// Spot-check a few pages against the model.
			for k := 0; k < 4; k++ {
				p := rng.Int63n(logical)
				if ftl.Mapped(p) != model[p] {
					t.Logf("op %d: Mapped(%d) = %v, model %v", op, p, ftl.Mapped(p), model[p])
					return false
				}
			}
		}
		if err := ftl.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		// Full sweep: the mapping must equal the model exactly.
		for p := int64(0); p < logical; p++ {
			if ftl.Mapped(p) != model[p] {
				t.Logf("final: Mapped(%d) = %v, model %v", p, ftl.Mapped(p), model[p])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
