package ftl

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// newFaulty builds a tiny FTL with an injector (and checker) attached.
func newFaulty(t *testing.T, cfg fault.Config) (*FTL, *fault.Injector, *fault.Checker) {
	t.Helper()
	f := mustNew(t, tinyParams())
	inj, err := fault.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.EnableFaults(inj)
	c := fault.NewChecker(f)
	f.SetChecker(c)
	return f, inj, c
}

func TestScriptedProgramFailRecovers(t *testing.T) {
	// The very first program fails; the write must retry on a fresh page
	// and succeed, leaving the mapping and the invariants intact.
	for _, mode := range []string{"striped", "blockbound", "channel"} {
		t.Run(mode, func(t *testing.T) {
			f, inj, c := newFaulty(t, fault.Config{FailProgramOps: []int64{1}})
			var err error
			switch mode {
			case "striped":
				_, err = f.WriteStriped(0, seq(0, 4))
			case "blockbound":
				_, err = f.WriteBlockBound(0, seq(0, 4))
			case "channel":
				_, err = f.WriteOnChannel(0, seq(0, 4), 0)
			}
			if err != nil {
				t.Fatalf("write did not recover: %v", err)
			}
			if got := f.Stats().ProgramRetries; got != 1 {
				t.Fatalf("ProgramRetries = %d, want 1", got)
			}
			if inj.Stats().ProgramFails != 1 {
				t.Fatalf("injector fails = %d", inj.Stats().ProgramFails)
			}
			for lpn := int64(0); lpn < 4; lpn++ {
				if !f.Mapped(lpn) {
					t.Fatalf("lpn %d unmapped after recovered write", lpn)
				}
			}
			// The recovery must have triggered the checker, and the suite
			// must have passed.
			if c.Checks() == 0 {
				t.Fatal("invariant checker never ran after recovery")
			}
			if c.Failure() != nil {
				t.Fatalf("invariant violation after recovery: %v", c.Failure())
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConsecutiveProgramFailsWithinRetryLimit(t *testing.T) {
	// Three consecutive failures on one logical write, retry limit 8:
	// still recovers, consuming three extra pages.
	f, _, c := newFaulty(t, fault.Config{FailProgramOps: []int64{1, 2, 3}})
	if _, err := f.WriteStriped(0, seq(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().ProgramRetries; got != 3 {
		t.Fatalf("ProgramRetries = %d, want 3", got)
	}
	if c.Failure() != nil {
		t.Fatal(c.Failure())
	}
}

func TestAllProgramsFailingErrorsCleanly(t *testing.T) {
	// pfail=1 makes recovery impossible; the write must error rather than
	// loop forever, and the FTL must stay internally consistent.
	f, _, _ := newFaulty(t, fault.Config{Seed: 1, ProgramFailProb: 1, RetryLimit: 3})
	_, err := f.WriteStriped(0, seq(0, 1))
	if err == nil {
		t.Fatal("write succeeded with pfail=1")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants broken after failed write: %v", err)
	}
}

// churnUntilError overwrites a small working set until a write fails,
// returning the error (nil if maxRounds elapsed without one).
func churnUntilError(f *FTL, maxRounds int) error {
	for round := 0; round < maxRounds; round++ {
		if _, err := f.WriteStriped(int64(round)*1_000_000, seq(0, 16)); err != nil {
			return err
		}
	}
	return nil
}

func TestEraseFailuresRetireBlocksAndDegrade(t *testing.T) {
	// Every erase fails: each GC victim is retired and GC re-selects.
	// After the reserve budget is exhausted the device degrades to
	// read-only; reads must keep working.
	f, inj, c := newFaulty(t, fault.Config{EraseFailProb: 1, ReserveBlocks: 2})
	err := churnUntilError(f, 200)
	if err == nil {
		t.Fatal("device never degraded with efail=1")
	}
	if !errors.Is(err, fault.ErrReadOnly) {
		t.Fatalf("error = %v, want ErrReadOnly", err)
	}
	if !f.Degraded() {
		t.Fatal("Degraded() false after ErrReadOnly")
	}
	st := f.Stats()
	if st.RetiredBlocks != 3 {
		t.Fatalf("RetiredBlocks = %d, want reserve+1 = 3", st.RetiredBlocks)
	}
	if st.DegradedEntries != 1 {
		t.Fatalf("DegradedEntries = %d, want 1", st.DegradedEntries)
	}
	if inj.Stats().EraseFails == 0 {
		t.Fatal("no erase failures recorded")
	}
	if f.Array().BadBlocks() != f.RetiredBlocks() {
		t.Fatalf("array bad blocks %d != ftl retired %d", f.Array().BadBlocks(), f.RetiredBlocks())
	}
	// Reads of surviving mappings still work in read-only mode.
	for lpn := int64(0); lpn < 16; lpn++ {
		if f.Mapped(lpn) {
			if _, err := f.Read(0, []int64{lpn}); err != nil {
				t.Fatalf("read of lpn %d failed in degraded mode: %v", lpn, err)
			}
		}
	}
	// Writes keep being refused.
	if _, err := f.WriteStriped(0, seq(0, 1)); !errors.Is(err, fault.ErrReadOnly) {
		t.Fatalf("degraded write error = %v, want ErrReadOnly", err)
	}
	if c.Failure() != nil {
		t.Fatalf("invariant violation during retirement: %v", c.Failure())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrownBadRetirement(t *testing.T) {
	// Erases succeed but post-erase wear detection always retires the
	// block — same recovery path, different fault class.
	f, inj, c := newFaulty(t, fault.Config{GrownBadProb: 1, ReserveBlocks: 1})
	err := churnUntilError(f, 200)
	if !errors.Is(err, fault.ErrReadOnly) {
		t.Fatalf("error = %v, want ErrReadOnly", err)
	}
	if inj.Stats().GrownBad == 0 {
		t.Fatal("no grown-bad draws recorded")
	}
	if f.Stats().Erases == 0 {
		t.Fatal("no erase completed — grown-bad path never exercised")
	}
	if c.Failure() != nil {
		t.Fatal(c.Failure())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// runChurn drives a fixed workload until it completes or the device gives
// out, returning the FTL, the round the first error hit (-1 if none), and
// the error text. A heavily faulted tiny device legitimately wears out
// mid-churn; determinism means two runs wear out identically.
func runChurn(t *testing.T, cfg fault.Config, rounds int) (*FTL, int, string) {
	t.Helper()
	f, _, _ := newFaulty(t, cfg)
	for round := 0; round < rounds; round++ {
		lpns := seq(int64(round%5)*8, 16)
		if _, err := f.WriteStriped(int64(round)*1_000_000, lpns); err != nil {
			return f, round, err.Error()
		}
	}
	return f, -1, ""
}

func TestProbabilisticFaultsAreDeterministic(t *testing.T) {
	cfg := fault.Config{Seed: 11, ProgramFailProb: 0.02, GrownBadProb: 0.05, ReserveBlocks: 100}
	a, roundA, errA := runChurn(t, cfg, 60)
	b, roundB, errB := runChurn(t, cfg, 60)
	if roundA != roundB || errA != errB {
		t.Fatalf("runs ended differently: round %d (%s) vs round %d (%s)", roundA, errA, roundB, errB)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("two identical fault runs diverged:\n%+v\n%+v", a.Stats(), b.Stats())
	}
	if a.Array().BadBlocks() != b.Array().BadBlocks() {
		t.Fatal("bad-block counts diverged")
	}
	if a.Stats().ProgramRetries == 0 {
		t.Fatal("workload too small: no faults were injected, determinism untested")
	}
	// Consistency must hold even at the point of wear-out.
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHarnessOnlyInjectorIsTransparent(t *testing.T) {
	// An injector with no fault sources (only the checker enabled) must
	// leave the FTL bit-identical to a run without any injector.
	plain := mustNew(t, tinyParams())
	for round := 0; round < 40; round++ {
		if _, err := plain.WriteStriped(int64(round)*1_000_000, seq(0, 16)); err != nil {
			t.Fatal(err)
		}
	}
	faulty, _, c := newFaulty(t, fault.Config{CheckInvariants: true})
	for round := 0; round < 40; round++ {
		if _, err := faulty.WriteStriped(int64(round)*1_000_000, seq(0, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if plain.Stats() != faulty.Stats() {
		t.Fatalf("harness-only injector perturbed the run:\n%+v\n%+v", plain.Stats(), faulty.Stats())
	}
	if c.Failure() != nil {
		t.Fatal(c.Failure())
	}
}
