package ftl

import (
	"testing"

	"repro/internal/flash"
)

// churnWear hammers a tiny working set and returns the wear distribution,
// with or without dynamic wear leveling.
func churnWear(t *testing.T, wearLevel bool) flash.Wear {
	t.Helper()
	p := tinyParams()
	f, err := NewConfig(p, wearLevel)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the same four pages over and over: without wear leveling,
	// the recycled blocks come back LIFO and absorb all the erases.
	for round := 0; round < 400; round++ {
		if _, err := f.WriteStriped(int64(round)*1000, seq(0, 4)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	return f.Array().WearStats()
}

func TestWearLevelingReducesImbalance(t *testing.T) {
	with := churnWear(t, true)
	without := churnWear(t, false)
	if with.TotalErases == 0 || without.TotalErases == 0 {
		t.Fatal("workload did not trigger GC erases")
	}
	// Same work, so total erase counts should be in the same ballpark.
	ratio := float64(with.TotalErases) / float64(without.TotalErases)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("erase totals diverge too much: %d vs %d", with.TotalErases, without.TotalErases)
	}
	// Leveling must spread the cycles: strictly lower max-min spread or
	// standard deviation.
	spreadWith := with.MaxErase - with.MinErase
	spreadWithout := without.MaxErase - without.MinErase
	if spreadWith > spreadWithout && with.StdDev >= without.StdDev {
		t.Fatalf("wear leveling did not help: spread %d vs %d, sd %.2f vs %.2f",
			spreadWith, spreadWithout, with.StdDev, without.StdDev)
	}
}

func TestWearStatsOnFreshArray(t *testing.T) {
	f := mustNew(t, tinyParams())
	w := f.Array().WearStats()
	if w.MinErase != 0 || w.MaxErase != 0 || w.MeanErase != 0 || w.StdDev != 0 || w.TotalErases != 0 {
		t.Fatalf("fresh array wear not zero: %+v", w)
	}
}

func TestWearStatsCountsErases(t *testing.T) {
	p := tinyParams()
	f := mustNew(t, p)
	for round := 0; round < 60; round++ {
		if _, err := f.WriteStriped(0, seq(0, 8)); err != nil {
			t.Fatal(err)
		}
	}
	w := f.Array().WearStats()
	if w.TotalErases != f.Array().Erases() {
		t.Fatalf("WearStats total %d != array erases %d", w.TotalErases, f.Array().Erases())
	}
	if w.MeanErase <= 0 || w.MaxErase < 1 {
		t.Fatalf("wear stats wrong: %+v", w)
	}
}
