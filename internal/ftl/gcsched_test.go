package ftl

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/flash"
)

// onePlaneParams: 1 channel × 1 chip × 1 plane × 8 blocks × 4 pages,
// 25% over-provisioning → 24 logical pages over 32 physical. Every write
// lands on plane 0, so GC trigger points are exact.
func onePlaneParams() flash.Params {
	p := tinyParams()
	p.Channels = 1
	p.ChipsPerChannel = 1
	return p
}

func TestMaybeGCTriggerThresholds(t *testing.T) {
	// gcLow derivation table: int(BlocksPerPlane × GCThreshold), floor 1.
	for _, tc := range []struct {
		blocks    int
		threshold float64
		want      int
	}{
		{8, 0.25, 2},
		{8, 0.10, 1}, // floor: 0.8 truncates to 0, clamped up
		{8, 0.50, 4},
		{16, 0.25, 4},
		{4, 0.75, 3},
	} {
		p := tinyParams()
		p.BlocksPerPlane = tc.blocks
		p.GCThreshold = tc.threshold
		f := mustNew(t, p)
		if f.gcLow != tc.want {
			t.Errorf("blocks=%d threshold=%v: gcLow = %d, want %d",
				tc.blocks, tc.threshold, f.gcLow, tc.want)
		}
	}

	// Behavioral edge: GC triggers strictly below gcLow, not at it. On the
	// one-plane device (gcLow 2), 24 sequential writes fill 6 blocks and
	// leave exactly 2 free — no GC. The first overwrite opens a 7th block
	// (free drops to 1) still without GC; the next allocation sees
	// free < gcLow and must collect.
	f := mustNew(t, onePlaneParams())
	if _, err := f.WriteStriped(0, seq(0, 24)); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().GCRuns; got != 0 {
		t.Fatalf("GC ran during sequential fill: GCRuns = %d", got)
	}
	if free := f.FreeBlocks(0); free != 2 {
		t.Fatalf("free blocks after fill = %d, want gcLow = 2", free)
	}
	if _, err := f.WriteStriped(1, seq(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().GCRuns; got != 0 {
		t.Fatalf("GC ran at free == gcLow: GCRuns = %d", got)
	}
	if _, err := f.WriteStriped(2, seq(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().GCRuns; got != 1 {
		t.Fatalf("GC did not run at free < gcLow: GCRuns = %d, want 1", got)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCOnceReselectsAfterEraseFault(t *testing.T) {
	// The first erase ever issued fails mid-GC: the victim is retired,
	// gcOnce reports progress, and the maybeGC loop re-selects the
	// next-best victim until the pool recovers — without degrading (the
	// default reserve tolerates it) and without losing any mapping.
	f, inj, c := newFaulty(t, fault.Config{FailEraseOps: []int64{1}})
	if err := churnUntilError(f, 60); err != nil {
		t.Fatalf("churn failed: %v", err)
	}
	if inj.Stats().EraseFails != 1 {
		t.Fatalf("injector erase fails = %d, want 1", inj.Stats().EraseFails)
	}
	st := f.Stats()
	if st.RetiredBlocks != 1 {
		t.Fatalf("RetiredBlocks = %d, want 1", st.RetiredBlocks)
	}
	if st.GCRuns == 0 {
		t.Fatal("no successful GC run after the faulted victim was retired")
	}
	if f.Degraded() {
		t.Fatal("device degraded on a single retirement within reserve")
	}
	for lpn := int64(0); lpn < 16; lpn++ {
		if !f.Mapped(lpn) {
			t.Fatalf("lpn %d lost its mapping across the faulted collection", lpn)
		}
	}
	if c.Failure() != nil {
		t.Fatal(c.Failure())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRichestPlaneTieBreak(t *testing.T) {
	// All planes equal: the first plane wins (strict > comparison).
	// Block-bound batches walk the channel-major stripe order 0,2,1,3, so
	// successive single-page writes dent planes in that order and the tie
	// among the untouched planes always breaks to the lowest index.
	f := mustNew(t, tinyParams())
	if got := f.richestPlane(); got != 0 {
		t.Fatalf("fresh device richestPlane = %d, want 0", got)
	}
	if _, err := f.WriteBlockBound(0, seq(0, 1)); err != nil { // plane 0
		t.Fatal(err)
	}
	if got := f.richestPlane(); got != 1 {
		t.Fatalf("after one page on plane 0, richestPlane = %d, want 1", got)
	}
	if _, err := f.WriteBlockBound(0, seq(1, 1)); err != nil { // plane 2
		t.Fatal(err)
	}
	if got := f.richestPlane(); got != 1 {
		t.Fatalf("after pages on planes 0 and 2, richestPlane = %d, want 1", got)
	}
	if _, err := f.WriteBlockBound(0, seq(2, 1)); err != nil { // plane 1
		t.Fatal(err)
	}
	if got := f.richestPlane(); got != 3 {
		t.Fatalf("after pages on planes 0, 2 and 1, richestPlane = %d, want 3", got)
	}
}

func TestRetireBlockReserveExhaustion(t *testing.T) {
	// Direct unit for the retirement fuse: the budget'th retirement is
	// tolerated, the one after trips read-only exactly once.
	f := mustNew(t, tinyParams())
	f.reserveBudget = 1
	f.retireBlock(0)
	if f.Degraded() {
		t.Fatal("degraded within reserve budget")
	}
	f.retireBlock(1)
	if !f.Degraded() {
		t.Fatal("not degraded after exceeding reserve budget")
	}
	f.retireBlock(2)
	st := f.Stats()
	if st.DegradedEntries != 1 {
		t.Fatalf("DegradedEntries = %d, want exactly 1", st.DegradedEntries)
	}
	if st.RetiredBlocks != 3 || f.RetiredBlocks() != 3 {
		t.Fatalf("RetiredBlocks = %d/%d, want 3", st.RetiredBlocks, f.RetiredBlocks())
	}
}

func TestScheduleGCDisabledIsNoOp(t *testing.T) {
	// Three devices run the same workload: no scheduler call at all,
	// EnableGCScheduler(Enabled: false), and enabled-but-idle (pacing off,
	// no ScheduleGC calls). The first two must be bit-identical throughout;
	// the third may count mandatory victims in its scheduler stats but must
	// leave every FTL-level stat and the logical state untouched.
	plain := mustNew(t, tinyParams())
	disabled := mustNew(t, tinyParams())
	disabled.EnableGCScheduler(GCSchedConfig{Enabled: false})
	idle := mustNew(t, tinyParams())
	idle.EnableGCScheduler(GCSchedConfig{Enabled: true, PaceSteps: -1})

	if n := plain.ScheduleGC(0, 1_000_000_000); n != 0 {
		t.Fatalf("ScheduleGC on scheduler-less FTL collected %d", n)
	}
	if n := disabled.ScheduleGC(0, 1_000_000_000); n != 0 {
		t.Fatalf("ScheduleGC on disabled FTL collected %d", n)
	}

	for round := 0; round < 40; round++ {
		now := int64(round) * 1_000_000
		lpns := seq(int64(round%5)*8, 16)
		for _, f := range []*FTL{plain, disabled, idle} {
			if _, err := f.WriteStriped(now, lpns); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	if plain.Stats() != disabled.Stats() {
		t.Fatalf("Enabled:false perturbed the run:\n%+v\n%+v", plain.Stats(), disabled.Stats())
	}
	if plain.Stats() != idle.Stats() {
		t.Fatalf("enabled-but-never-scheduled perturbed FTL stats:\n%+v\n%+v", plain.Stats(), idle.Stats())
	}
	for lpn := int64(0); lpn < plain.LogicalPages(); lpn++ {
		if plain.Mapped(lpn) != disabled.Mapped(lpn) || plain.Mapped(lpn) != idle.Mapped(lpn) {
			t.Fatalf("lpn %d liveness diverged across scheduler configs", lpn)
		}
	}
	if idle.GCJobInFlight() {
		t.Fatal("job in flight with pacing disabled and no slices granted")
	}
}

func TestScheduleGCIdleSliceCollectsCheapVictim(t *testing.T) {
	// One full block with 1 valid / 3 invalid pages is the cheapest
	// possible victim (~17 ms projected). A 2 ms slice must defer it on
	// the cost gate; a 30 ms slice must collect it completely.
	f := mustNew(t, onePlaneParams())
	f.EnableGCScheduler(GCSchedConfig{Enabled: true})
	if _, err := f.WriteStriped(0, seq(0, 4)); err != nil { // block 0 fills
		t.Fatal(err)
	}
	if _, err := f.WriteStriped(1, seq(0, 3)); err != nil { // 3 pages go stale
		t.Fatal(err)
	}
	if n := f.ScheduleGC(2, 2_000_000); n != 0 {
		t.Fatalf("2ms slice collected %d victims, want 0 (cost gate)", n)
	}
	st := f.GCSchedStats()
	if st.CostDeferred != 1 || st.JobsStarted != 0 {
		t.Fatalf("cost gate stats = %+v, want 1 deferral and no job", st)
	}
	n := f.ScheduleGC(3, 30_000_000)
	if n != 1 {
		t.Fatalf("30ms slice collected %d victims, want 1", n)
	}
	st = f.GCSchedStats()
	if st.JobsStarted != 1 || st.JobsCompleted != 1 || st.VictimsIdle != 1 {
		t.Fatalf("idle collection stats = %+v", st)
	}
	if f.GCJobInFlight() {
		t.Fatal("job still in flight after a completing slice")
	}
	if got := f.Stats().GCMigrations; got != 1 {
		t.Fatalf("GCMigrations = %d, want 1 (one valid page)", got)
	}
	for lpn := int64(0); lpn < 4; lpn++ {
		if !f.Mapped(lpn) {
			t.Fatalf("lpn %d lost across the scheduled collection", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// parkPacedJob builds the canonical background-tier state on a one-plane
// scheduler device and parks a job mid-victim: 20 sequential pages fill
// blocks 0–4 (free = 3, inside the [gcLow, softLow) window), trimming two
// pages makes block 0 a 2-valid victim, and the next host program paces
// exactly one copy before preempting — leaving the job parked with one
// copy plus the erase outstanding.
func parkPacedJob(t *testing.T, f *FTL) {
	t.Helper()
	if _, err := f.WriteStriped(0, seq(0, 20)); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim(seq(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteStriped(1, seq(20, 1)); err != nil {
		t.Fatal(err)
	}
	if !f.GCJobInFlight() {
		t.Fatalf("no job parked: %+v", f.GCSchedStats())
	}
	st := f.GCSchedStats()
	if st.JobsStarted != 1 || st.VictimsBackground != 1 || st.PacedSteps != 1 || st.Preempts != 1 {
		t.Fatalf("parked-state stats = %+v", st)
	}
	// The parked victim stays full and off the free list: the full
	// invariant suite must hold with the job mid-victim.
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants with parked job: %v", err)
	}
}

func TestPacedGCPreemptsAndResumes(t *testing.T) {
	f := mustNew(t, onePlaneParams())
	f.EnableGCScheduler(GCSchedConfig{Enabled: true}) // pace default 1
	parkPacedJob(t, f)
	// An idle slice resumes the parked job and drains it: the remaining
	// copy, then the erase, one completed collection.
	if n := f.ScheduleGC(2, 30_000_000); n != 1 {
		t.Fatalf("resuming slice collected %d victims, want 1", n)
	}
	if f.GCJobInFlight() {
		t.Fatal("full-budget slice left the job in flight")
	}
	st := f.GCSchedStats()
	if st.Resumes != 1 || st.JobsCompleted != 1 {
		t.Fatalf("resume stats = %+v", st)
	}
	// lpns 0 and 1 were trimmed; everything else must have survived the
	// split collection.
	for lpn := int64(2); lpn < 21; lpn++ {
		if !f.Mapped(lpn) {
			t.Fatalf("lpn %d lost across the preempted collection", lpn)
		}
	}
	if f.Mapped(0) || f.Mapped(1) {
		t.Fatal("trimmed lpn came back to life")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduledFinalizeRetiresOnEraseFault(t *testing.T) {
	// The job's finalize erase fails: the victim must be retired (not
	// freed), the job completes, and the mapping survives — the scheduled
	// mirror of gcOnce's retirement tail.
	f, inj, c := newFaulty(t, fault.Config{FailEraseOps: []int64{1}})
	// newFaulty uses tinyParams; rebuild on the one-plane geometry so the
	// victim layout is exact.
	f = mustNew(t, onePlaneParams())
	inj, err := fault.NewInjector(fault.Config{FailEraseOps: []int64{1}, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	f.EnableFaults(inj)
	c = fault.NewChecker(f)
	f.SetChecker(c)
	f.EnableGCScheduler(GCSchedConfig{Enabled: true})

	if _, err := f.WriteStriped(0, seq(0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteStriped(1, seq(0, 3)); err != nil {
		t.Fatal(err)
	}
	if n := f.ScheduleGC(2, 30_000_000); n != 1 {
		t.Fatalf("collected %d, want 1 (a retirement is progress)", n)
	}
	if got := f.Stats().RetiredBlocks; got != 1 {
		t.Fatalf("RetiredBlocks = %d, want 1", got)
	}
	if got := f.GCSchedStats().JobsCompleted; got != 1 {
		t.Fatalf("JobsCompleted = %d, want 1", got)
	}
	if inj.Stats().EraseFails != 1 {
		t.Fatalf("injector erase fails = %d", inj.Stats().EraseFails)
	}
	for lpn := int64(0); lpn < 4; lpn++ {
		if !f.Mapped(lpn) {
			t.Fatalf("lpn %d lost when the finalize erase faulted", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleGCDegradedReturnsZero(t *testing.T) {
	f := mustNew(t, onePlaneParams())
	f.EnableGCScheduler(GCSchedConfig{Enabled: true})
	if _, err := f.WriteStriped(0, seq(0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteStriped(1, seq(0, 3)); err != nil {
		t.Fatal(err)
	}
	f.ForceDegrade()
	if n := f.ScheduleGC(2, 1_000_000_000); n != 0 {
		t.Fatalf("degraded ScheduleGC collected %d victims", n)
	}
	if f.GCSchedStats().JobsStarted != 0 {
		t.Fatal("degraded ScheduleGC opened a job")
	}
	// Writes stay refused; the state must remain readable and consistent.
	if _, err := f.WriteStriped(3, seq(0, 1)); !errors.Is(err, fault.ErrReadOnly) {
		t.Fatalf("degraded write error = %v, want ErrReadOnly", err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMandatoryAdoptionFinishesParkedJob(t *testing.T) {
	// Park a job mid-victim, then write again with the free pool already
	// below gcLow: no ScheduleGC slice is ever granted and pacing never
	// finalizes (the erase is never paced), so the only way the job can
	// complete is maybeGC adopting and finishing it under mandatory
	// pressure — the excluded victim must re-enter circulation instead of
	// deadlocking the plane.
	f := mustNew(t, onePlaneParams())
	f.EnableGCScheduler(GCSchedConfig{Enabled: true})
	parkPacedJob(t, f)
	if _, err := f.WriteStriped(2, seq(21, 1)); err != nil {
		t.Fatal(err)
	}
	if f.GCJobInFlight() {
		t.Fatal("mandatory pressure left the job parked")
	}
	st := f.GCSchedStats()
	if st.JobsCompleted != 1 {
		t.Fatalf("adoption did not finish the job: %+v", st)
	}
	if st.PacedSteps != 2 {
		t.Fatalf("PacedSteps = %d, want 2 (one per host program)", st.PacedSteps)
	}
	if st.Resumes == 0 {
		t.Fatalf("adoption never resumed the job: %+v", st)
	}
	for lpn := int64(2); lpn < 22; lpn++ {
		if !f.Mapped(lpn) {
			t.Fatalf("lpn %d lost across the adopted collection", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
