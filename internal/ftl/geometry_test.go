package ftl

import (
	"math/rand"
	"testing"

	"repro/internal/flash"
)

// Multi-geometry conformance: the FTL must behave identically well across
// plane counts and asymmetric shapes, not just the 1-plane test geometry.

func geometries() []flash.Params {
	base := flash.DefaultParams()
	shape := func(ch, chips, planes, blocks, pages int) flash.Params {
		p := base
		p.Channels, p.ChipsPerChannel, p.PlanesPerChip = ch, chips, planes
		p.BlocksPerPlane, p.PagesPerBlock = blocks, pages
		p.OverProvision = 0.25
		p.GCThreshold = 0.25
		return p
	}
	return []flash.Params{
		shape(1, 1, 1, 8, 4),  // minimal
		shape(2, 2, 2, 8, 4),  // multi-plane
		shape(4, 1, 4, 8, 4),  // plane-heavy
		shape(3, 2, 1, 8, 8),  // odd channel count
		shape(8, 2, 1, 16, 8), // Table 1 shape, shrunk
	}
}

func TestFTLAcrossGeometries(t *testing.T) {
	for gi, p := range geometries() {
		p := p
		t.Run("", func(t *testing.T) {
			f, err := New(p)
			if err != nil {
				t.Fatalf("geometry %d: %v", gi, err)
			}
			logical := f.LogicalPages()
			rng := rand.New(rand.NewSource(int64(gi)))
			for op := 0; op < 400; op++ {
				base := rng.Int63n(logical)
				n := int64(1 + rng.Intn(6))
				if base+n > logical {
					n = logical - base
				}
				switch op % 5 {
				case 0:
					if _, err := f.WriteBlockBound(int64(op)*1000, seq(base, n)); err != nil {
						t.Fatalf("geometry %d op %d: %v", gi, op, err)
					}
				case 1:
					ch := op % p.Channels
					if _, err := f.WriteOnChannel(int64(op)*1000, seq(base, n), ch); err != nil {
						t.Fatalf("geometry %d op %d: %v", gi, op, err)
					}
				default:
					if _, err := f.WriteStriped(int64(op)*1000, seq(base, n)); err != nil {
						t.Fatalf("geometry %d op %d: %v", gi, op, err)
					}
				}
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("geometry %d: %v", gi, err)
			}
		})
	}
}

func TestWriteOnChannelStaysOnChannel(t *testing.T) {
	for _, p := range geometries() {
		f := mustNew(t, p)
		for ch := 0; ch < p.Channels; ch++ {
			if _, err := f.WriteOnChannel(0, seq(int64(ch*8), 4), ch); err != nil {
				t.Fatal(err)
			}
		}
		arr := f.Array()
		// Every valid block must sit on the channel it was pinned to:
		// map each written lpn's block back and verify.
		for b := 0; b < p.Blocks(); b++ {
			if arr.ValidCount(b) == 0 {
				continue
			}
			// Each channel wrote lpns [ch*8, ch*8+4): find which channel's
			// data this block holds by reading the reverse map through the
			// public surface: re-write detection is overkill; instead
			// verify per-channel page counts match.
			_ = b
		}
		// Aggregate check: each channel's planes hold exactly 4 pages.
		planesPerChannel := p.ChipsPerChannel * p.PlanesPerChip
		for ch := 0; ch < p.Channels; ch++ {
			var pages int
			for pl := ch * planesPerChannel; pl < (ch+1)*planesPerChannel; pl++ {
				first := p.FirstBlockOfPlane(pl)
				for b := first; b < first+p.BlocksPerPlane; b++ {
					pages += arr.ValidCount(b)
				}
			}
			if pages != 4 {
				t.Fatalf("channel %d holds %d pages, want 4", ch, pages)
			}
		}
	}
}

func TestWriteOnChannelRejectsBadChannel(t *testing.T) {
	f := mustNew(t, tinyParams())
	if _, err := f.WriteOnChannel(0, seq(0, 2), -1); err == nil {
		t.Fatal("negative channel accepted")
	}
	if _, err := f.WriteOnChannel(0, seq(0, 2), f.Params().Channels); err == nil {
		t.Fatal("out-of-range channel accepted")
	}
}
