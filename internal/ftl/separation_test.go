package ftl

import (
	"math/rand"
	"testing"
)

// churnWA drives a skewed overwrite workload on a nearly full device and
// returns the resulting write amplification.
func churnWA(t *testing.T, separateGC bool) float64 {
	t.Helper()
	p := tinyParams()
	p.BlocksPerPlane = 16
	p.PagesPerBlock = 8
	p.OverProvision = 0.2
	f, err := NewConfigFull(p, true, separateGC)
	if err != nil {
		t.Fatal(err)
	}
	logical := f.LogicalPages()
	if err := f.Precondition(0.9); err != nil {
		t.Fatal(err)
	}
	// 80% of writes hammer 10% of the space; the rest spread out. The
	// skew is what separation exploits: GC survivors are cold, and
	// keeping them out of hot blocks concentrates future invalidations.
	rng := rand.New(rand.NewSource(42))
	hot := logical / 10
	for i := 0; i < 6000; i++ {
		var lpn int64
		if rng.Intn(10) < 8 {
			lpn = rng.Int63n(hot)
		} else {
			lpn = hot + rng.Int63n(logical-hot)
		}
		if _, err := f.WriteStriped(int64(i)*1000, []int64{lpn}); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.HostPrograms == 0 {
		t.Fatal("no host writes")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return float64(st.HostPrograms+st.GCMigrations) / float64(st.HostPrograms)
}

func TestGCStreamSeparationReducesWA(t *testing.T) {
	with := churnWA(t, true)
	without := churnWA(t, false)
	if with <= 1 || without <= 1 {
		t.Fatalf("workload produced no GC: %v / %v", with, without)
	}
	if with > without*1.02 {
		t.Fatalf("separation raised WA: %.3f vs %.3f", with, without)
	}
	t.Logf("WA with separation %.3f, without %.3f", with, without)
}

func TestSeparationKeepsStreamsInDistinctBlocks(t *testing.T) {
	p := tinyParams()
	f, err := NewConfigFull(p, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// Fill enough to trigger GC, then check the two frontiers differ.
	for round := 0; round < 40; round++ {
		if _, err := f.WriteStriped(int64(round)*1000, seq(0, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().GCMigrations == 0 {
		t.Skip("no migrations on this geometry")
	}
	for pl := range f.activeBlock {
		a, g := f.activeBlock[pl], f.gcActive[pl]
		if a >= 0 && g >= 0 && a == g {
			t.Fatalf("plane %d: host and GC streams share block %d", pl, a)
		}
	}
}
