// Package ftl implements a page-level flash translation layer over the
// flash array: logical-to-physical mapping, write allocation, and greedy
// garbage collection, matching the "Page level" FTL scheme of the paper's
// Table 1.
//
// Two allocation modes exist because the cache policies under study differ
// exactly there:
//
//   - Striped (dynamic) allocation sends consecutive pages of a flush batch
//     to different channels, exploiting internal parallelism. This is what
//     page-level evictions (LRU et al.), VBBMS virtual blocks and Req-block
//     request blocks use.
//   - Block-bound allocation places a whole batch on one plane, back to
//     back in the same physical block(s). This models BPLRU, which flushes
//     a logical block onto a single SSD block and therefore serializes on
//     one channel (paper §4.2.2).
package ftl

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/flash"
)

// unmapped marks an absent translation.
const unmapped = int32(-1)

// Stats aggregates the FTL's activity counters.
type Stats struct {
	// HostPrograms counts pages programmed on behalf of host flushes.
	HostPrograms int64
	// HostReads counts pages read on behalf of host requests.
	HostReads int64
	// GCMigrations counts valid pages copied during garbage collection.
	GCMigrations int64
	// GCRuns counts garbage-collection invocations (one victim each).
	GCRuns int64
	// Erases counts block erases.
	Erases int64
	// Trims counts logical pages discarded via Trim.
	Trims int64
	// ProgramRetries counts page programs re-issued to a freshly allocated
	// page after an injected program failure.
	ProgramRetries int64
	// RetiredBlocks counts blocks permanently removed from circulation
	// (erase failures, grown bad blocks).
	RetiredBlocks int64
	// DegradedEntries counts transitions into read-only degraded mode
	// (0 or 1; a counter for symmetry with the other metrics).
	DegradedEntries int64
	// GCPauseNs is the cumulative die-busy time GC collections added to
	// their victims' chips (migrations plus erase, beyond any backlog
	// already queued there) — the foreground-visible GC pause total. It is
	// accumulated whether or not a Tap is attached, so attaching telemetry
	// never changes the stat.
	GCPauseNs int64
}

// Tap receives timing observations from the FTL's operation paths. It is
// the telemetry plane's window into per-phase flash behavior: host page
// programs and reads, block erases, and whole GC victim collections. All
// times are simulated nanoseconds; latencies include die/channel queueing,
// which is exactly what tail-latency distributions care about.
//
// A nil tap is the default and costs one predictable branch per operation;
// tap implementations must not mutate FTL state (they observe a
// deterministic simulation and must not perturb it) and must not retain
// references past the call.
type Tap interface {
	// TapProgram reports one host page program: issued at `issue`, durable
	// at `done`.
	TapProgram(issue, done int64)
	// TapRead reports one host page read: issued at `issue`, data at the
	// controller at `done`.
	TapRead(issue, done int64)
	// TapErase reports one block erase: issued at `issue`, complete at
	// `done`.
	TapErase(issue, done int64)
	// TapGC reports one GC victim collection: `pause` is the die-busy time
	// the collection added to the victim's chip (migrations plus erase,
	// beyond any backlog already queued there) and `pagesMoved` the valid
	// pages migrated.
	TapGC(pause int64, pagesMoved int)
}

// FTL is a page-level flash translation layer bound to one flash array and
// timeline. It is not safe for concurrent use; the simulator is
// single-threaded by design (deterministic replay).
type FTL struct {
	p   flash.Params
	arr *flash.Array
	tl  *flash.Timeline

	mapping []int32 // LPN -> PPN (int32 is sufficient: < 2^31 pages)
	reverse []int32 // PPN -> LPN, needed to remap pages during GC

	freeBlocks  [][]int32 // per plane: stack of erased blocks
	activeBlock []int32   // per plane: block accepting host programs, -1 if none
	gcActive    []int32   // per plane: block accepting GC migrations, -1 if none
	stripeOrder []int32   // plane visit order for striped allocation (channels first)
	stripeNext  int       // cursor into stripeOrder
	boundNext   int       // cursor into stripeOrder for block-bound flushes
	chanCursor  []int     // per channel: plane rotation for channel-bound flushes

	gcLow      int  // free-block count per plane that triggers GC
	wearLevel  bool // pick least-erased free blocks (dynamic wear leveling)
	separateGC bool // keep GC migrations out of the host write blocks

	// Fault plane (all zero/nil on a fault-free device).
	retryLimit    int            // program retries per logical page write
	reserveBudget int            // retirements tolerated before read-only
	retired       int            // blocks retired so far
	degraded      bool           // read-only mode
	checker       *fault.Checker // invariant checker, run after recoveries
	pendingCheck  bool           // a recovery happened in the current op

	tap      Tap        // timing observations, nil unless telemetry is attached
	schedTap TapGCSched // tap's optional scheduler extension, cached at SetTap

	// Preemptible GC scheduler (see gcsched.go; all zero when disabled).
	gcSched   bool         // scheduler enabled
	gcSoftLow int          // free-block watermark below which pacing engages
	gcPace    int          // copy steps piggybacked per host program
	job       gcJob        // the single in-flight victim collection
	sched     GCSchedStats // scheduler counters

	stats Stats
}

// New builds an FTL over a fresh array and timeline for the given geometry,
// with dynamic wear leveling and GC stream separation enabled.
func New(p flash.Params) (*FTL, error) {
	return NewConfig(p, true)
}

// NewConfig builds an FTL with explicit wear-leveling behavior (GC stream
// separation stays on; see NewConfigFull for the ablation).
func NewConfig(p flash.Params, wearLevel bool) (*FTL, error) {
	return NewConfigFull(p, wearLevel, true)
}

// NewConfigFull builds an FTL with explicit wear-leveling and GC-stream
// separation behavior.
func NewConfigFull(p flash.Params, wearLevel, separateGC bool) (*FTL, error) {
	f, err := newFTL(p)
	if err != nil {
		return nil, err
	}
	f.wearLevel = wearLevel
	f.separateGC = separateGC
	return f, nil
}

func newFTL(p flash.Params) (*FTL, error) {
	arr, err := flash.NewArray(p)
	if err != nil {
		return nil, err
	}
	f := &FTL{
		p:   p,
		arr: arr,
		tl:  flash.NewTimeline(p),
	}
	f.mapping = make([]int32, p.LogicalPages())
	for i := range f.mapping {
		f.mapping[i] = unmapped
	}
	f.reverse = make([]int32, p.PhysicalPages())
	for i := range f.reverse {
		f.reverse[i] = unmapped
	}
	planes := p.Planes()
	f.freeBlocks = make([][]int32, planes)
	f.activeBlock = make([]int32, planes)
	f.gcActive = make([]int32, planes)
	for pl := 0; pl < planes; pl++ {
		first := p.FirstBlockOfPlane(pl)
		blocks := make([]int32, 0, p.BlocksPerPlane)
		// Push in reverse so blocks are consumed in ascending order.
		for b := p.BlocksPerPlane - 1; b >= 0; b-- {
			blocks = append(blocks, int32(first+b))
		}
		f.freeBlocks[pl] = blocks
		f.activeBlock[pl] = -1
		f.gcActive[pl] = -1
	}
	// Visit planes cycling across channels first so that consecutive pages
	// of a striped batch land on distinct channels.
	f.stripeOrder = make([]int32, 0, planes)
	for rank := 0; rank < p.ChipsPerChannel*p.PlanesPerChip; rank++ {
		for ch := 0; ch < p.Channels; ch++ {
			chip := ch*p.ChipsPerChannel + rank/p.PlanesPerChip
			plane := chip*p.PlanesPerChip + rank%p.PlanesPerChip
			f.stripeOrder = append(f.stripeOrder, int32(plane))
		}
	}
	f.chanCursor = make([]int, p.Channels)
	f.gcLow = int(float64(p.BlocksPerPlane) * p.GCThreshold)
	if f.gcLow < 1 {
		f.gcLow = 1
	}
	return f, nil
}

// Params returns the device geometry.
func (f *FTL) Params() flash.Params { return f.p }

// Array exposes the underlying flash array (read-only use expected).
func (f *FTL) Array() *flash.Array { return f.arr }

// Timeline exposes the shared timing model.
func (f *FTL) Timeline() *flash.Timeline { return f.tl }

// Stats returns a copy of the activity counters.
func (f *FTL) Stats() Stats {
	s := f.stats
	s.Erases = f.arr.Erases()
	return s
}

// GCPauseNs returns the cumulative foreground-visible GC pause without
// materializing a full Stats copy; the hot attribution path in the engine
// diffs it around every dispatch.
func (f *FTL) GCPauseNs() int64 {
	return f.stats.GCPauseNs
}

// EnableFaults attaches a fault injector to the flash array and arms the
// FTL's recovery paths: bounded write retry, bad-block retirement against
// the reserved-block budget, and read-only degradation when the budget is
// exhausted. Limits come from the injector's config; zeros select defaults
// (8 retries, 1/64 of physical blocks reserved, at least 4).
func (f *FTL) EnableFaults(inj *fault.Injector) {
	f.arr.SetInjector(inj)
	cfg := inj.Config()
	f.retryLimit = cfg.RetryLimit
	if f.retryLimit <= 0 {
		f.retryLimit = 8
	}
	f.reserveBudget = cfg.ReserveBlocks
	if f.reserveBudget <= 0 {
		f.reserveBudget = f.p.Blocks() / 64
		if f.reserveBudget < 4 {
			f.reserveBudget = 4
		}
	}
}

// SetTap attaches a timing tap (nil detaches). Taps observe; they cannot
// alter the simulation, so attaching one keeps every metric bit-identical.
// A tap that also implements TapGCSched additionally receives GC
// preempt/resume callbacks.
func (f *FTL) SetTap(t Tap) {
	f.tap = t
	f.schedTap, _ = t.(TapGCSched)
}

// SetChecker attaches an invariant checker that runs after every operation
// in which a fault recovery occurred. A violation fails the write that
// surfaced it; the checker also retains the first failure for end-of-run
// reporting.
func (f *FTL) SetChecker(c *fault.Checker) { f.checker = c }

// Degraded reports whether the device has entered read-only mode.
func (f *FTL) Degraded() bool { return f.degraded }

// RetiredBlocks returns how many blocks have been retired.
func (f *FTL) RetiredBlocks() int { return f.retired }

// ForceDegrade trips read-only mode directly, without exhausting the
// reserve budget: every subsequent write path returns fault.ErrReadOnly
// while reads keep working. The service layer uses it as an operational
// fuse (admin-triggered read-only drills) and tests use it to reach the
// degraded state without scripting a precise fault sequence. Idempotent.
func (f *FTL) ForceDegrade() {
	if !f.degraded {
		f.degraded = true
		f.stats.DegradedEntries++
	}
}

// retireBlock accounts a block permanently removed from circulation (the
// array has already marked it bad) and degrades to read-only mode when the
// reserve budget is exhausted.
func (f *FTL) retireBlock(block int) {
	_ = block
	f.stats.RetiredBlocks++
	f.retired++
	f.pendingCheck = true
	if !f.degraded && f.retired > f.reserveBudget {
		f.degraded = true
		f.stats.DegradedEntries++
	}
}

// flushCheck runs the invariant checker if a recovery happened during the
// operation that is about to return.
func (f *FTL) flushCheck() error {
	if !f.pendingCheck {
		return nil
	}
	f.pendingCheck = false
	if f.checker == nil {
		return nil
	}
	if err := f.checker.Check(); err != nil {
		return fmt.Errorf("ftl: post-recovery invariant violation: %w", err)
	}
	return nil
}

// Mapped reports whether an LPN currently has a physical translation.
func (f *FTL) Mapped(lpn int64) bool {
	return f.mapping[lpn] != unmapped
}

// LogicalPages returns the host-visible page count.
func (f *FTL) LogicalPages() int64 { return int64(len(f.mapping)) }

func (f *FTL) checkLPN(lpn int64) error {
	if lpn < 0 || lpn >= int64(len(f.mapping)) {
		return fmt.Errorf("ftl: lpn %d out of range [0,%d)", lpn, len(f.mapping))
	}
	return nil
}

// allocPage hands out the next programmable PPN, preferring the requested
// plane. It pulls a fresh block when the active one fills and runs GC
// beforehand when the plane is low on free blocks (gcAllowed breaks
// recursion when GC itself allocates). If the plane is exhausted even after
// GC — dynamic allocation lets valid data concentrate beyond one plane's
// physical share — it falls back to the plane with the most free blocks, as
// real dynamic-allocation FTLs do.
func (f *FTL) allocPage(now int64, plane int, gcAllowed bool) (int64, int64, error) {
	stream := streamHost
	if !gcAllowed {
		// GC migrations come through the gcAllowed=false path; keep their
		// data in separate blocks (hot/cold stream separation: survivor
		// pages are colder than fresh host writes, and mixing them spreads
		// invalidations across more blocks, raising write amplification).
		if f.separateGC {
			stream = streamGC
		}
	}
	if gcAllowed {
		if f.gcSched {
			f.paceGC(now, plane)
		}
		now = f.maybeGC(now, plane)
	}
	ppn, ok := f.allocOnPlane(plane, stream)
	if !ok {
		fallback := f.richestPlane()
		if gcAllowed {
			now = f.maybeGC(now, fallback)
		}
		ppn, ok = f.allocOnPlane(fallback, stream)
		if !ok {
			if f.degraded {
				return 0, now, fmt.Errorf("ftl: %w", fault.ErrReadOnly)
			}
			return 0, now, fmt.Errorf("ftl: planes %d and %d out of free blocks", plane, fallback)
		}
	}
	return ppn, now, nil
}

// Write streams for hot/cold separation.
const (
	streamHost = iota
	streamGC
)

// allocOnPlane programs the next page of the plane's active block, opening a
// new block from the free list when needed. It reports false when the plane
// has neither an open active block nor free blocks.
//
// Opening a new block applies dynamic wear leveling: the least-erased free
// block is chosen, so erase cycles spread evenly instead of recycling the
// same few blocks (NewConfig can disable this for the ablation bench).
//
// An injected program failure consumes the failed page; the write is
// retried on the next freshly allocated page (possibly in a new block), up
// to the configured retry limit. On a fault-free device the loop body runs
// exactly once, preserving bit-identical behavior.
func (f *FTL) allocOnPlane(plane, stream int) (int64, bool) {
	for attempt := 0; ; {
		slot := &f.activeBlock[plane]
		if stream == streamGC {
			slot = &f.gcActive[plane]
			// Graceful degradation: holding a second frontier block per plane
			// is a luxury small or nearly-full planes cannot afford. If the GC
			// stream would need a fresh block while at most one remains, merge
			// into the host stream instead of deadlocking the plane.
			if a := *slot; (a < 0 || f.arr.BlockFull(int(a))) && len(f.freeBlocks[plane]) <= 1 {
				slot = &f.activeBlock[plane]
			}
		}
		active := *slot
		if active < 0 || f.arr.BlockFull(int(active)) {
			fb := f.freeBlocks[plane]
			if len(fb) == 0 {
				return 0, false
			}
			pick := len(fb) - 1
			if f.wearLevel {
				best := f.arr.EraseCount(int(fb[pick]))
				for i, b := range fb[:len(fb)-1] {
					if e := f.arr.EraseCount(int(b)); e < best {
						best, pick = e, i
					}
				}
			}
			active = fb[pick]
			fb[pick] = fb[len(fb)-1]
			f.freeBlocks[plane] = fb[:len(fb)-1]
			*slot = active
		}
		ppn, err := f.arr.Program(int(active))
		if err == nil {
			return ppn, true
		}
		if errors.Is(err, fault.ErrProgramFail) && attempt < f.retryLimit {
			attempt++
			f.stats.ProgramRetries++
			f.pendingCheck = true
			continue
		}
		return 0, false
	}
}

// richestPlane returns the plane with the most free blocks, counting a
// non-full active block as headroom.
func (f *FTL) richestPlane() int {
	best, bestFree := 0, -1
	for pl := range f.freeBlocks {
		free := len(f.freeBlocks[pl]) * f.p.PagesPerBlock
		if a := f.activeBlock[pl]; a >= 0 {
			free += f.arr.FreePagesInBlock(int(a))
		}
		if a := f.gcActive[pl]; a >= 0 {
			free += f.arr.FreePagesInBlock(int(a))
		}
		if free > bestFree {
			best, bestFree = pl, free
		}
	}
	return best
}

// BatchTiming reports when a flush batch releases its buffer frames and
// when it is durable on flash.
//
// A write buffer frees a frame as soon as the page's data has crossed the
// channel into the chip register (Transferred); the cell program continues
// on the die and completes at Durable. The host request that triggered the
// flush blocks only until Transferred — the paper's response-time effects
// come from the transfer serialization (one channel vs eight) plus the die
// occupancy that delays subsequent reads and flushes.
type BatchTiming struct {
	// Transferred is when the last page of the batch left the controller.
	Transferred int64
	// Durable is when the last page finished programming.
	Durable int64
}

// writeOne performs the mapping update and timed program of one host page
// onto the given plane, returning the channel-transfer end and the
// durability time.
func (f *FTL) writeOne(now int64, lpn int64, plane int) (int64, int64, error) {
	if err := f.checkLPN(lpn); err != nil {
		return 0, 0, err
	}
	ppn, now, err := f.allocPage(now, plane, true)
	if err != nil {
		return 0, 0, err
	}
	if old := f.mapping[lpn]; old != unmapped {
		if err := f.arr.Invalidate(int64(old)); err != nil {
			return 0, 0, err
		}
		f.reverse[old] = unmapped
	}
	f.mapping[lpn] = int32(ppn)
	f.reverse[ppn] = int32(lpn)
	block := f.p.BlockOfPPN(ppn)
	xfer, done := f.tl.Program(now, f.p.ChannelOfBlock(block), f.p.ChipOfBlock(block))
	f.stats.HostPrograms++
	if f.tap != nil {
		f.tap.TapProgram(now, done)
	}
	return xfer, done, nil
}

// WriteStriped flushes a batch of logical pages using dynamic allocation:
// page i of the batch goes to stripe plane (cursor+i), so an 8-channel
// device programs 8 pages concurrently.
func (f *FTL) WriteStriped(now int64, lpns []int64) (BatchTiming, error) {
	if f.degraded {
		return BatchTiming{}, fmt.Errorf("ftl: %w", fault.ErrReadOnly)
	}
	t := BatchTiming{Transferred: now, Durable: now}
	for _, lpn := range lpns {
		plane := int(f.stripeOrder[f.stripeNext])
		f.stripeNext = (f.stripeNext + 1) % len(f.stripeOrder)
		xfer, done, err := f.writeOne(now, lpn, plane)
		if err != nil {
			return BatchTiming{}, err
		}
		t.Transferred = max(t.Transferred, xfer)
		t.Durable = max(t.Durable, done)
	}
	if err := f.flushCheck(); err != nil {
		return BatchTiming{}, err
	}
	return t, nil
}

// WriteBlockBound flushes a batch onto a single plane, back to back in the
// same physical block(s): BPLRU's "flush the logical block onto one SSD
// block". Each call advances to the next plane so successive block flushes
// still spread wear, but pages within one call share a channel.
func (f *FTL) WriteBlockBound(now int64, lpns []int64) (BatchTiming, error) {
	if f.degraded {
		return BatchTiming{}, fmt.Errorf("ftl: %w", fault.ErrReadOnly)
	}
	t := BatchTiming{Transferred: now, Durable: now}
	if len(lpns) == 0 {
		return t, nil
	}
	plane := int(f.stripeOrder[f.boundNext])
	f.boundNext = (f.boundNext + 1) % len(f.stripeOrder)
	for _, lpn := range lpns {
		xfer, done, err := f.writeOne(now, lpn, plane)
		if err != nil {
			return BatchTiming{}, err
		}
		t.Transferred = max(t.Transferred, xfer)
		t.Durable = max(t.Durable, done)
	}
	if err := f.flushCheck(); err != nil {
		return BatchTiming{}, err
	}
	return t, nil
}

// WriteOnChannel flushes a batch onto the planes of one channel, rotating
// among that channel's chips. ECR's eviction decisions assume page→channel
// affinity, so its flushes are pinned here instead of striping everywhere.
func (f *FTL) WriteOnChannel(now int64, lpns []int64, channel int) (BatchTiming, error) {
	if f.degraded {
		return BatchTiming{}, fmt.Errorf("ftl: %w", fault.ErrReadOnly)
	}
	t := BatchTiming{Transferred: now, Durable: now}
	if channel < 0 || channel >= f.p.Channels {
		return BatchTiming{}, fmt.Errorf("ftl: channel %d out of range", channel)
	}
	planesPerChannel := f.p.ChipsPerChannel * f.p.PlanesPerChip
	for i, lpn := range lpns {
		plane := channel*planesPerChannel + (f.chanCursor[channel]+i)%planesPerChannel
		xfer, done, err := f.writeOne(now, lpn, plane)
		if err != nil {
			return BatchTiming{}, err
		}
		t.Transferred = max(t.Transferred, xfer)
		t.Durable = max(t.Durable, done)
	}
	f.chanCursor[channel] = (f.chanCursor[channel] + len(lpns)) % planesPerChannel
	if err := f.flushCheck(); err != nil {
		return BatchTiming{}, err
	}
	return t, nil
}

// Read services a batch of logical page reads and returns the time the last
// page arrives at the controller. Pages that were never written (cold data
// from before the trace started) are charged a read on the plane they would
// stripe to, mirroring SSDsim's assumption that pre-trace data exists on
// flash.
func (f *FTL) Read(now int64, lpns []int64) (int64, error) {
	var last int64 = now
	for _, lpn := range lpns {
		if err := f.checkLPN(lpn); err != nil {
			return 0, err
		}
		var block int
		if ppn := f.mapping[lpn]; ppn != unmapped {
			if err := f.arr.Read(int64(ppn)); err != nil {
				return 0, err
			}
			block = f.p.BlockOfPPN(int64(ppn))
		} else {
			// Deterministic pseudo-location for pre-trace data.
			plane := int(f.stripeOrder[int(lpn)%len(f.stripeOrder)])
			block = f.p.FirstBlockOfPlane(plane)
		}
		done := f.tl.Read(now, f.p.ChannelOfBlock(block), f.p.ChipOfBlock(block))
		f.stats.HostReads++
		if f.tap != nil {
			f.tap.TapRead(now, done)
		}
		last = max(last, done)
	}
	return last, nil
}

// Trim discards logical pages: their physical copies are invalidated and
// the translations dropped, so GC reclaims the space without migrating
// them. Trimming an unmapped page is a no-op, as in the ATA/NVMe
// specifications. Trim is a metadata operation and takes no simulated
// time (real devices execute it asynchronously).
func (f *FTL) Trim(lpns []int64) error {
	for _, lpn := range lpns {
		if err := f.checkLPN(lpn); err != nil {
			return err
		}
		ppn := f.mapping[lpn]
		if ppn == unmapped {
			continue
		}
		if err := f.arr.Invalidate(int64(ppn)); err != nil {
			return err
		}
		f.mapping[lpn] = unmapped
		f.reverse[ppn] = unmapped
		f.stats.Trims++
	}
	return nil
}

// Precondition maps the first fraction of the logical space sequentially,
// filling flash as an aged device would be, without charging any simulated
// time and without touching the activity counters. Replaying a trace
// against a preconditioned device makes GC behave realistically from the
// first request instead of after a long fill phase.
func (f *FTL) Precondition(fraction float64) error {
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("ftl: precondition fraction %v out of [0,1]", fraction)
	}
	n := int64(float64(f.LogicalPages()) * fraction)
	for lpn := int64(0); lpn < n; lpn++ {
		plane := int(f.stripeOrder[f.stripeNext])
		f.stripeNext = (f.stripeNext + 1) % len(f.stripeOrder)
		ppn, _, err := f.allocPage(0, plane, true)
		if err != nil {
			return fmt.Errorf("ftl: precondition at lpn %d: %w", lpn, err)
		}
		if old := f.mapping[lpn]; old != unmapped {
			if err := f.arr.Invalidate(int64(old)); err != nil {
				return err
			}
			f.reverse[old] = unmapped
		}
		f.mapping[lpn] = int32(ppn)
		f.reverse[ppn] = int32(lpn)
	}
	return nil
}

// maybeGC runs greedy garbage collection on a plane until its free-block
// count is back above the threshold. It returns the (possibly advanced)
// time after which new programs may be issued: GC work occupies the chip,
// so the caller's subsequent programs are delayed by the timeline itself;
// the returned time equals the input time (GC is asynchronous with respect
// to the host clock but synchronous on the chip resource).
func (f *FTL) maybeGC(now int64, plane int) int64 {
	// Each successful round erases one victim and reclaims at least one
	// invalid page, so the loop terminates: either the free pool recovers
	// or no victim with invalid pages remains and gcOnce reports failure.
	// A single round may be block-neutral (migrations filled the active
	// block), which is why we do not demand per-round free-count growth.
	// Rounds that retire a failing victim shrink the candidate pool, so
	// they too make progress toward termination.
	if f.gcSched && f.job.active && f.job.plane == plane &&
		len(f.freeBlocks[plane]) < f.gcLow && !f.degraded {
		// Mandatory pressure on the in-flight job's plane: adopt and finish
		// the job synchronously before any greedy rounds, so its excluded
		// victim re-enters circulation.
		f.noteResume(now)
		f.finishJob(now)
	}
	for len(f.freeBlocks[plane]) < f.gcLow {
		if f.degraded {
			break // read-only mode: stop burning the remaining blocks
		}
		if !f.gcOnce(now, plane) {
			break // nothing reclaimable; let allocation fail upstream
		}
		if f.gcSched {
			f.sched.VictimsMandatory++
		}
	}
	return now
}

// gcOnce selects the victim block with the fewest valid pages on the plane
// (greedy policy), migrates its valid pages via in-chip copyback into the
// plane's active block, erases it, and returns it to the free list.
//
// When the victim's erase fails (injected erase failure or grown-bad
// detection), the block is retired instead of freed and gcOnce still
// reports progress: the caller's loop re-selects the next-best victim —
// the paper-stack equivalent of GC victim re-selection under erase faults.
func (f *FTL) gcOnce(now int64, plane int) bool {
	first := f.p.FirstBlockOfPlane(plane)
	victim := -1
	best := f.p.PagesPerBlock + 1
	for b := first; b < first+f.p.BlocksPerPlane; b++ {
		if int32(b) == f.activeBlock[plane] || int32(b) == f.gcActive[plane] || !f.arr.BlockFull(b) {
			continue // skip the active frontier and still-open blocks
		}
		if f.arr.IsBad(b) {
			continue // retired blocks are out of circulation
		}
		if f.job.active && b == f.job.victim {
			continue // an in-flight scheduled job owns this victim
		}
		if v := f.arr.ValidCount(b); v < best {
			best, victim = v, b
		}
	}
	if victim < 0 || best >= f.p.PagesPerBlock {
		// Nothing reclaimable: every candidate is fully valid.
		return false
	}
	chip := f.p.ChipOfBlock(victim)
	// GC pause accounting: the collection's cost to foreground work is the
	// die-busy time it adds to the victim's chip beyond the backlog already
	// queued there (cross-plane migrations touch other chips too; the
	// victim's chip dominates and keeps the accounting allocation-free).
	// Computed unconditionally so Stats.GCPauseNs is identical with and
	// without a Tap attached — telemetry must never change the counters.
	gcStart := max(now, f.tl.ChipFree(chip))
	moved := 0
	// Migrate valid pages.
	base := f.p.PPN(victim, 0)
	for i := 0; i < f.p.PagesPerBlock; i++ {
		ppn := base + int64(i)
		if f.arr.State(ppn) != flash.PageValid {
			continue
		}
		lpn := f.reverse[ppn]
		newPPN, _, err := f.allocPage(now, plane, false)
		if err != nil {
			return false
		}
		if err := f.arr.Invalidate(ppn); err != nil {
			panic(fmt.Sprintf("ftl: gc invalidate: %v", err))
		}
		f.reverse[ppn] = unmapped
		f.mapping[lpn] = int32(newPPN)
		f.reverse[newPPN] = lpn
		if tgtChip := f.p.ChipOfPPN(newPPN); tgtChip == chip {
			// Same chip: in-place copyback, no channel traffic.
			f.tl.Copyback(now, chip)
		} else {
			// Cross-plane fallback: data moves through the controller.
			f.tl.Read(now, f.p.ChannelOfBlock(victim), chip)
			tgtBlock := f.p.BlockOfPPN(newPPN)
			f.tl.Program(now, f.p.ChannelOfBlock(tgtBlock), tgtChip)
		}
		f.stats.GCMigrations++
		moved++
	}
	if err := f.arr.Erase(victim); err != nil {
		if errors.Is(err, fault.ErrEraseFail) || errors.Is(err, fault.ErrGrownBad) {
			// The attempt occupied the die either way; the block is bad and
			// never returns to the free list. Valid pages were migrated
			// before the erase, so no data is at risk.
			eraseDone := f.tl.Erase(now, chip)
			f.retireBlock(victim)
			f.stats.GCPauseNs += f.tl.ChipFree(chip) - gcStart
			if f.tap != nil {
				f.tap.TapErase(now, eraseDone)
				f.tap.TapGC(f.tl.ChipFree(chip)-gcStart, moved)
			}
			return true // progress: candidate pool shrank, caller re-selects
		}
		panic(fmt.Sprintf("ftl: gc erase: %v", err))
	}
	eraseDone := f.tl.Erase(now, chip)
	f.freeBlocks[plane] = append(f.freeBlocks[plane], int32(victim))
	f.stats.GCRuns++
	f.stats.GCPauseNs += f.tl.ChipFree(chip) - gcStart
	if f.tap != nil {
		f.tap.TapErase(now, eraseDone)
		f.tap.TapGC(f.tl.ChipFree(chip)-gcStart, moved)
	}
	return true
}

// BackgroundGC opportunistically collects up to maxVictims blocks during
// an idle window, targeting planes whose free pool sits below softLow
// blocks — a laxer bar than the foreground gcLow, so idle time refills
// headroom before the write path ever stalls on GC. It returns the number
// of victims collected; the erases and migrations occupy the dies through
// the timeline exactly like foreground GC.
func (f *FTL) BackgroundGC(now int64, maxVictims, softLow int) int {
	if f.degraded {
		return 0 // read-only mode: preserve what is left
	}
	if softLow <= f.gcLow {
		softLow = f.gcLow * 2
	}
	collected := 0
	for pl := range f.freeBlocks {
		for collected < maxVictims && len(f.freeBlocks[pl]) < softLow {
			if !f.gcOnce(now, pl) {
				break
			}
			collected++
		}
		if collected >= maxVictims {
			break
		}
	}
	return collected
}

// FreeBlocks returns the current free-block count of a plane (tests).
func (f *FTL) FreeBlocks(plane int) int { return len(f.freeBlocks[plane]) }

// CheckInvariants validates mapping/reverse consistency, the array's
// physical invariants, the retirement rules (no LPN maps into a retired
// block, the free lists hold only healthy erased blocks), and the
// free-page accounting per plane. Run by tests and, via fault.Checker,
// after every fault recovery.
func (f *FTL) CheckInvariants() error {
	if err := f.arr.CheckInvariants(); err != nil {
		return err
	}
	for lpn, ppn := range f.mapping {
		if ppn == unmapped {
			continue
		}
		if f.arr.State(int64(ppn)) != flash.PageValid {
			return fmt.Errorf("ftl: lpn %d maps to non-valid ppn %d", lpn, ppn)
		}
		if f.arr.IsBad(f.p.BlockOfPPN(int64(ppn))) {
			return fmt.Errorf("ftl: lpn %d maps into retired block %d", lpn, f.p.BlockOfPPN(int64(ppn)))
		}
		if f.reverse[ppn] != int32(lpn) {
			return fmt.Errorf("ftl: reverse[%d] = %d, want %d", ppn, f.reverse[ppn], lpn)
		}
	}
	var valid int64
	for ppn, lpn := range f.reverse {
		if lpn == unmapped {
			continue
		}
		valid++
		if f.mapping[lpn] != int32(ppn) {
			return fmt.Errorf("ftl: mapping[%d] = %d, want %d", lpn, f.mapping[lpn], ppn)
		}
	}
	var mapped int64
	for _, ppn := range f.mapping {
		if ppn != unmapped {
			mapped++
		}
	}
	if mapped != valid {
		return fmt.Errorf("ftl: %d mapped lpns but %d reverse entries", mapped, valid)
	}
	// Free-page accounting: per plane, the pages reachable through the
	// allocator (free-listed blocks plus the open frontiers) must equal the
	// physically free pages outside retired blocks — every block that is
	// neither free-listed, active, nor retired must be full.
	for pl := range f.freeBlocks {
		var reachable int64
		for _, b := range f.freeBlocks[pl] {
			if f.arr.IsBad(int(b)) {
				return fmt.Errorf("ftl: plane %d free list holds retired block %d", pl, b)
			}
			if f.p.PlaneOfBlock(int(b)) != pl {
				return fmt.Errorf("ftl: plane %d free list holds foreign block %d", pl, b)
			}
			if free := f.arr.FreePagesInBlock(int(b)); free != f.p.PagesPerBlock {
				return fmt.Errorf("ftl: plane %d free list holds non-erased block %d (%d free pages)", pl, b, free)
			}
			reachable += int64(f.p.PagesPerBlock)
		}
		if a := f.activeBlock[pl]; a >= 0 {
			reachable += int64(f.arr.FreePagesInBlock(int(a)))
		}
		if g := f.gcActive[pl]; g >= 0 {
			reachable += int64(f.arr.FreePagesInBlock(int(g)))
		}
		var physical int64
		first := f.p.FirstBlockOfPlane(pl)
		for b := first; b < first+f.p.BlocksPerPlane; b++ {
			if f.arr.IsBad(b) {
				continue
			}
			physical += int64(f.arr.FreePagesInBlock(b))
		}
		if physical != reachable {
			return fmt.Errorf("ftl: plane %d has %d physically free pages but %d reachable by the allocator",
				pl, physical, reachable)
		}
	}
	if f.arr.BadBlocks() != f.retired {
		return fmt.Errorf("ftl: array reports %d retired blocks, ftl accounted %d", f.arr.BadBlocks(), f.retired)
	}
	// An in-flight scheduled GC job must own a legal victim: full (so it is
	// invisible to the allocator), healthy, and not an open frontier.
	if f.job.active {
		j := f.job
		if f.arr.IsBad(j.victim) || !f.arr.BlockFull(j.victim) ||
			int32(j.victim) == f.activeBlock[j.plane] || int32(j.victim) == f.gcActive[j.plane] {
			return fmt.Errorf("ftl: in-flight gc job victim %d in illegal state", j.victim)
		}
	}
	return nil
}
