// Latency-aware GC scheduling: greedy gcOnce collects a whole victim
// synchronously inside the write path, charging the full pause to whichever
// request was unlucky. The scheduler in this file splits a collection into
// resumable per-page copy steps around an explicit job state machine, so GC
// can run in budgeted slices during idle windows, be preempted mid-victim
// when foreground work arrives, and resume later — trading a little extra
// bookkeeping for a much flatter pause tail.
//
// Urgency tiers, driven by the per-plane free-block watermarks:
//
//   - idle-only (free ≥ soft low): victims are collected exclusively inside
//     ScheduleGC budget slices, and only when cheap — at most half the block
//     valid and the whole projected cost within the current slice budget.
//   - background-paced (gcLow ≤ free < soft low): in addition to idle
//     slices, a bounded number of copy steps piggyback on each host program
//     (never the erase), spreading the migration cost across many requests.
//   - mandatory (free < gcLow): maybeGC adopts and finishes any in-flight
//     job on the plane, then falls back to the greedy loop — correctness
//     and forward progress exactly as without the scheduler.
//
// Victim selection weighs projected pause cost (valid pages × copy latency
// plus the erase) against free-block pressure instead of valid count alone,
// so an expensive victim on a healthy plane loses to a slightly worse ratio
// on a starving one.
//
// Everything here is strictly opt-in: with the scheduler disabled no job is
// ever active and every hook in the legacy paths reduces to one predictable
// false branch, keeping disabled runs bit-identical to greedy GC.
package ftl

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/flash"
)

// GC urgency tiers (job attribution uses the tier at selection time).
const (
	gcTierIdle = iota
	gcTierBackground
	gcTierMandatory
)

// GCSchedConfig configures the preemptible GC scheduler.
type GCSchedConfig struct {
	// Enabled turns the scheduler on. False is the default and keeps the
	// FTL bit-identical to plain greedy GC.
	Enabled bool
	// SoftLowBlocks is the per-plane free-block watermark separating the
	// idle-only tier from background pacing. 0 (or any value ≤ gcLow)
	// selects 2× the foreground GC threshold, matching BackgroundGC.
	SoftLowBlocks int
	// PaceSteps bounds how many GC copy steps piggyback on one host page
	// program while a plane sits in the background tier. 0 selects the
	// default of 1; negative disables pacing entirely (idle slices and
	// mandatory adoption still run).
	PaceSteps int
}

// GCSchedStats counts scheduler activity. All counters are cumulative.
type GCSchedStats struct {
	// JobsStarted counts victim jobs opened (any tier).
	JobsStarted int64
	// JobsCompleted counts jobs that reached the erase (freed or retired).
	JobsCompleted int64
	// JobsAbandoned counts jobs dropped mid-victim because a migration
	// allocation failed (degraded or exhausted device). The victim stays
	// full and every completed copy is individually consistent, so
	// abandonment never risks data.
	JobsAbandoned int64
	// Preempts counts slices that ended with a job still in flight.
	Preempts int64
	// Resumes counts slices that picked an in-flight job back up.
	Resumes int64
	// PacedSteps counts copy steps piggybacked on host programs.
	PacedSteps int64
	// VictimsIdle/VictimsBackground/VictimsMandatory attribute started
	// jobs (and, for mandatory, greedy rounds run with the scheduler on)
	// to the urgency tier that selected them.
	VictimsIdle       int64
	VictimsBackground int64
	VictimsMandatory  int64
	// CostDeferred counts idle slices that found reclaimable victims but
	// deferred all of them on the cost gate (too valid, or projected cost
	// beyond the remaining budget).
	CostDeferred int64
}

// TapGCSched extends Tap with scheduler lifecycle callbacks. Tap
// implementations may optionally implement it; SetTap detects the extension
// by type assertion so existing taps keep working unchanged.
type TapGCSched interface {
	// TapGCPreempt reports a budget slice (or paced burst) ending with a
	// job still in flight; pagesMoved is the job's progress so far.
	TapGCPreempt(now int64, pagesMoved int)
	// TapGCResume reports an in-flight job being picked back up.
	TapGCResume(now int64, pagesMoved int)
}

// gcJob is the resumable state of one in-flight victim collection. At most
// one job exists per FTL; its victim block stays full (hence excluded from
// re-selection and allocation) until the finalize erase, so mapping and
// free-page invariants hold at every step boundary.
type gcJob struct {
	active  bool
	plane   int
	victim  int
	chip    int
	next    int   // next page index of the victim to examine
	moved   int   // valid pages migrated so far
	pauseNs int64 // die-busy time accrued so far (sum of step deltas)
	tier    uint8 // urgency tier at selection time
}

// EnableGCScheduler configures the preemptible GC scheduler. Calling it
// with Enabled false (or not at all) leaves the FTL on plain greedy GC.
// Must not be called while a job is in flight.
func (f *FTL) EnableGCScheduler(cfg GCSchedConfig) {
	if f.job.active {
		panic("ftl: EnableGCScheduler with a GC job in flight")
	}
	f.gcSched = cfg.Enabled
	if !cfg.Enabled {
		return
	}
	f.gcSoftLow = cfg.SoftLowBlocks
	if f.gcSoftLow <= f.gcLow {
		f.gcSoftLow = f.gcLow * 2
	}
	switch {
	case cfg.PaceSteps == 0:
		f.gcPace = 1
	case cfg.PaceSteps < 0:
		f.gcPace = 0
	default:
		f.gcPace = cfg.PaceSteps
	}
}

// GCSchedulerEnabled reports whether the preemptible scheduler is on.
func (f *FTL) GCSchedulerEnabled() bool { return f.gcSched }

// GCSchedStats returns a copy of the scheduler counters.
func (f *FTL) GCSchedStats() GCSchedStats { return f.sched }

// GCJobInFlight reports whether a preempted victim collection is pending.
func (f *FTL) GCJobInFlight() bool { return f.job.active }

// copyStepCost is the projected die time of migrating one valid page.
func (f *FTL) copyStepCost() int64 { return f.p.ReadLatency + f.p.ProgramLatency }

// ScheduleGC runs preemptible garbage collection for at most budgetNs of
// projected die time, resuming any in-flight job first and preempting
// cleanly when the next step would not fit. It returns the number of victim
// collections completed (a retirement counts: the candidate pool shrank).
// This is the budgeted evolution of BackgroundGC, driven from the engine's
// between-request gaps and the service front-end's queue-empty signal; it
// is a no-op unless EnableGCScheduler was called.
func (f *FTL) ScheduleGC(now, budgetNs int64) int {
	if !f.gcSched || f.degraded || budgetNs <= 0 {
		return 0
	}
	if f.job.active {
		f.noteResume(now)
	}
	collected := 0
	budget := budgetNs
	for !f.degraded {
		if !f.job.active && !f.startJob(budget) {
			break
		}
		step := f.nextStepCost()
		if step > budget {
			f.notePreempt(now)
			return collected
		}
		budget -= step
		done, progress := f.stepJob(now)
		if done && progress {
			collected++
		}
	}
	if f.job.active {
		// Degraded mid-slice with the job still open: leave it for the
		// mandatory path (which refuses to run degraded anyway).
		f.notePreempt(now)
	}
	return collected
}

// startJob selects a victim across all planes, weighing projected pause
// cost against free-block pressure: the candidate minimizing
// cost/pressure wins (compared cross-multiplied in integers; ties keep the
// first candidate in plane-then-block order, so selection is
// deterministic). Idle-tier candidates additionally pass a cost gate — at
// most half the block valid and projected cost within the remaining
// budget — because with no pressure there is no reason to buy expensive
// write amplification. Reports false when no candidate qualifies.
func (f *FTL) startJob(budgetNs int64) bool {
	copyCost := f.copyStepCost()
	victim, victimPlane := -1, -1
	var victimTier uint8
	var bestCost, bestPress int64
	deferred := false
	for pl := range f.freeBlocks {
		free := len(f.freeBlocks[pl])
		tier := uint8(gcTierIdle)
		if free < f.gcSoftLow {
			tier = gcTierBackground
		}
		pressure := int64(f.gcSoftLow-free) + 1
		if pressure < 1 {
			pressure = 1
		}
		first := f.p.FirstBlockOfPlane(pl)
		for b := first; b < first+f.p.BlocksPerPlane; b++ {
			if int32(b) == f.activeBlock[pl] || int32(b) == f.gcActive[pl] || !f.arr.BlockFull(b) {
				continue
			}
			if f.arr.IsBad(b) {
				continue
			}
			v := f.arr.ValidCount(b)
			if v >= f.p.PagesPerBlock {
				continue // fully valid: nothing reclaimable
			}
			cost := int64(v)*copyCost + f.p.EraseLatency
			if tier == gcTierIdle && (2*v > f.p.PagesPerBlock || cost > budgetNs) {
				deferred = true
				continue
			}
			if victim < 0 || cost*bestPress < bestCost*pressure {
				victim, victimPlane, victimTier = b, pl, tier
				bestCost, bestPress = cost, pressure
			}
		}
	}
	if victim < 0 {
		if deferred {
			f.sched.CostDeferred++
		}
		return false
	}
	f.openJob(victim, victimPlane, victimTier)
	return true
}

// startJobOnPlane opens a background-tier job on one specific plane with
// the plain greedy victim (fewest valid pages) — pressure is constant
// within a plane, so the cost/pressure score reduces to valid count.
func (f *FTL) startJobOnPlane(plane int) bool {
	first := f.p.FirstBlockOfPlane(plane)
	victim, best := -1, f.p.PagesPerBlock+1
	for b := first; b < first+f.p.BlocksPerPlane; b++ {
		if int32(b) == f.activeBlock[plane] || int32(b) == f.gcActive[plane] || !f.arr.BlockFull(b) {
			continue
		}
		if f.arr.IsBad(b) {
			continue
		}
		if v := f.arr.ValidCount(b); v < best {
			best, victim = v, b
		}
	}
	if victim < 0 || best >= f.p.PagesPerBlock {
		return false
	}
	f.openJob(victim, plane, gcTierBackground)
	return true
}

func (f *FTL) openJob(victim, plane int, tier uint8) {
	f.job = gcJob{
		active: true, plane: plane, victim: victim,
		chip: f.p.ChipOfBlock(victim), tier: tier,
	}
	f.sched.JobsStarted++
	switch tier {
	case gcTierIdle:
		f.sched.VictimsIdle++
	case gcTierBackground:
		f.sched.VictimsBackground++
	default:
		f.sched.VictimsMandatory++
	}
}

// nextStepCost is the projected die time of the job's next unit: one page
// copy while valid pages remain, otherwise the finalize erase.
func (f *FTL) nextStepCost() int64 {
	if f.jobHasCopyLeft() {
		return f.copyStepCost()
	}
	return f.p.EraseLatency
}

// jobHasCopyLeft reports whether a valid page remains to migrate.
func (f *FTL) jobHasCopyLeft() bool {
	base := f.p.PPN(f.job.victim, 0)
	for i := f.job.next; i < f.p.PagesPerBlock; i++ {
		if f.arr.State(base+int64(i)) == flash.PageValid {
			return true
		}
	}
	return false
}

// stepJob executes one unit of the in-flight job: the next valid-page copy,
// or the finalize erase when none remain. Each step charges its own
// die-busy delta to Stats.GCPauseNs (and the job's running total), so
// pauses attribute to whichever slice actually incurred them. Returns
// done=true when the job ended this step, with progress=true unless it was
// abandoned on a failed migration allocation.
func (f *FTL) stepJob(now int64) (done, progress bool) {
	j := &f.job
	base := f.p.PPN(j.victim, 0)
	for j.next < f.p.PagesPerBlock {
		ppn := base + int64(j.next)
		if f.arr.State(ppn) != flash.PageValid {
			j.next++
			continue
		}
		sliceStart := max(now, f.tl.ChipFree(j.chip))
		lpn := f.reverse[ppn]
		newPPN, _, err := f.allocPage(now, j.plane, false)
		if err != nil {
			// No destination for the migration (degraded, or the device is
			// out of free blocks). Abandon: the victim is still full and
			// every completed copy is individually consistent, so the
			// mapping stays valid — we just made no further progress.
			f.sched.JobsAbandoned++
			f.job = gcJob{}
			return true, false
		}
		if err := f.arr.Invalidate(ppn); err != nil {
			panic(fmt.Sprintf("ftl: gc invalidate: %v", err))
		}
		f.reverse[ppn] = unmapped
		f.mapping[lpn] = int32(newPPN)
		f.reverse[newPPN] = lpn
		if tgtChip := f.p.ChipOfPPN(newPPN); tgtChip == j.chip {
			f.tl.Copyback(now, j.chip)
		} else {
			f.tl.Read(now, f.p.ChannelOfBlock(j.victim), j.chip)
			tgtBlock := f.p.BlockOfPPN(newPPN)
			f.tl.Program(now, f.p.ChannelOfBlock(tgtBlock), tgtChip)
		}
		f.stats.GCMigrations++
		j.moved++
		j.next++
		pause := f.tl.ChipFree(j.chip) - sliceStart
		j.pauseNs += pause
		f.stats.GCPauseNs += pause
		return false, false
	}
	return true, f.finalizeJob(now)
}

// finalizeJob erases the job's victim, mirroring gcOnce's erase tail:
// success frees the block, an injected erase failure or grown-bad
// detection retires it (both complete the job and count as progress — the
// candidate pool shrank). TapGC fires once here with the job's cumulative
// pause and page count, so downstream GC telemetry sees one collection per
// victim whether it ran in one slice or ten.
func (f *FTL) finalizeJob(now int64) bool {
	j := &f.job
	sliceStart := max(now, f.tl.ChipFree(j.chip))
	err := f.arr.Erase(j.victim)
	if err != nil && !errors.Is(err, fault.ErrEraseFail) && !errors.Is(err, fault.ErrGrownBad) {
		panic(fmt.Sprintf("ftl: gc erase: %v", err))
	}
	eraseDone := f.tl.Erase(now, j.chip)
	if err != nil {
		// The attempt occupied the die either way; the block is bad and
		// never returns to the free list. Valid pages were migrated before
		// the erase, so no data is at risk.
		f.retireBlock(j.victim)
	} else {
		f.freeBlocks[j.plane] = append(f.freeBlocks[j.plane], int32(j.victim))
		f.stats.GCRuns++
	}
	pause := f.tl.ChipFree(j.chip) - sliceStart
	j.pauseNs += pause
	f.stats.GCPauseNs += pause
	if f.tap != nil {
		f.tap.TapErase(now, eraseDone)
		f.tap.TapGC(j.pauseNs, j.moved)
	}
	f.sched.JobsCompleted++
	f.job = gcJob{}
	return true
}

// finishJob runs the in-flight job to completion with no budget — the
// mandatory-tier adoption path used by maybeGC when the job's plane drops
// below the foreground threshold.
func (f *FTL) finishJob(now int64) {
	for f.job.active {
		f.stepJob(now)
	}
}

// paceGC piggybacks up to PaceSteps copy steps on one host page program
// while the target plane sits in the background tier, resuming an in-flight
// job on any plane first. The finalize erase is never paced — a 15 ms erase
// on the write path is exactly the pause the scheduler exists to avoid — so
// a copies-done job waits for the next idle slice or mandatory adoption.
func (f *FTL) paceGC(now int64, plane int) {
	if f.gcPace <= 0 || f.degraded {
		return
	}
	if !f.job.active {
		free := len(f.freeBlocks[plane])
		if free < f.gcLow || free >= f.gcSoftLow {
			return // mandatory is maybeGC's job; healthy planes wait for idle
		}
		if !f.startJobOnPlane(plane) {
			return
		}
	} else {
		f.noteResume(now)
	}
	for steps := f.gcPace; steps > 0 && f.job.active && f.jobHasCopyLeft(); steps-- {
		f.stepJob(now)
		f.sched.PacedSteps++
	}
	if f.job.active {
		f.notePreempt(now)
	}
}

func (f *FTL) notePreempt(now int64) {
	f.sched.Preempts++
	if f.schedTap != nil {
		f.schedTap.TapGCPreempt(now, f.job.moved)
	}
}

func (f *FTL) noteResume(now int64) {
	f.sched.Resumes++
	if f.schedTap != nil {
		f.schedTap.TapGCResume(now, f.job.moved)
	}
}
