package ftl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flash"
)

// tinyParams: 2 channels × 2 chips × 1 plane × 8 blocks × 4 pages,
// 25% over-provisioning → 96 logical pages over 128 physical.
func tinyParams() flash.Params {
	p := flash.DefaultParams()
	p.Channels = 2
	p.ChipsPerChannel = 2
	p.PlanesPerChip = 1
	p.BlocksPerPlane = 8
	p.PagesPerBlock = 4
	p.OverProvision = 0.25
	p.GCThreshold = 0.25 // GC when a plane has < 2 free blocks
	return p
}

func mustNew(t *testing.T, p flash.Params) *FTL {
	t.Helper()
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func seq(start, n int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)
	}
	return out
}

func TestWriteStripedMapsAndCompletes(t *testing.T) {
	f := mustNew(t, tinyParams())
	bt, err := f.WriteStriped(0, seq(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	p := f.Params()
	// 4 pages over 4 distinct chips on 2 channels: two transfers pipeline
	// per channel, programs overlap.
	wantDurable := 2*p.PageTransferTime() + p.ProgramLatency
	if bt.Durable != wantDurable {
		t.Fatalf("striped batch durable = %d, want %d", bt.Durable, wantDurable)
	}
	if bt.Transferred != 2*p.PageTransferTime() {
		t.Fatalf("striped batch transferred = %d, want %d", bt.Transferred, 2*p.PageTransferTime())
	}
	for lpn := int64(0); lpn < 4; lpn++ {
		if !f.Mapped(lpn) {
			t.Fatalf("lpn %d unmapped after write", lpn)
		}
	}
	if f.Stats().HostPrograms != 4 {
		t.Fatalf("HostPrograms = %d", f.Stats().HostPrograms)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteStripedSpreadsAcrossChannels(t *testing.T) {
	f := mustNew(t, tinyParams())
	if _, err := f.WriteStriped(0, seq(0, 2)); err != nil {
		t.Fatal(err)
	}
	p := f.Params()
	// With channel-major striping the first two pages must sit on
	// different channels.
	ch0 := p.ChannelOfBlock(p.FirstBlockOfPlane(0))
	var chans []int
	arr := f.Array()
	for b := 0; b < p.Blocks(); b++ {
		if arr.ValidCount(b) > 0 {
			chans = append(chans, p.ChannelOfBlock(b))
		}
	}
	if len(chans) != 2 || chans[0] == chans[1] {
		t.Fatalf("striping failed: blocks on channels %v (first plane channel %d)", chans, ch0)
	}
}

func TestWriteBlockBoundStaysOnOnePlane(t *testing.T) {
	f := mustNew(t, tinyParams())
	if _, err := f.WriteBlockBound(0, seq(0, 4)); err != nil {
		t.Fatal(err)
	}
	p := f.Params()
	arr := f.Array()
	planes := map[int]bool{}
	for b := 0; b < p.Blocks(); b++ {
		if arr.ValidCount(b) > 0 {
			planes[p.PlaneOfBlock(b)] = true
		}
	}
	if len(planes) != 1 {
		t.Fatalf("block-bound batch hit %d planes, want 1", len(planes))
	}
}

func TestBlockBoundSlowerThanStriped(t *testing.T) {
	// The core timing claim behind Fig. 8: the same batch takes longer
	// block-bound (one channel) than striped (all channels).
	fs := mustNew(t, tinyParams())
	fb := mustNew(t, tinyParams())
	lpns := seq(0, 8)
	ds, err := fs.WriteStriped(0, lpns)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fb.WriteBlockBound(0, lpns)
	if err != nil {
		t.Fatal(err)
	}
	if db.Durable <= ds.Durable || db.Transferred <= ds.Transferred {
		t.Fatalf("block-bound (%+v) not slower than striped (%+v)", db, ds)
	}
}

func TestOverwriteInvalidatesOldPage(t *testing.T) {
	f := mustNew(t, tinyParams())
	if _, err := f.WriteStriped(0, []int64{5}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteStriped(1, []int64{5}); err != nil {
		t.Fatal(err)
	}
	// Exactly one valid page may exist for lpn 5.
	arr, p := f.Array(), f.Params()
	valid := 0
	for b := 0; b < p.Blocks(); b++ {
		valid += arr.ValidCount(b)
	}
	if valid != 1 {
		t.Fatalf("valid pages = %d, want 1 after overwrite", valid)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMappedAndUnmapped(t *testing.T) {
	f := mustNew(t, tinyParams())
	if _, err := f.WriteStriped(0, []int64{7}); err != nil {
		t.Fatal(err)
	}
	now := int64(1_000_000_000)
	done, err := f.Read(now, []int64{7})
	if err != nil {
		t.Fatal(err)
	}
	p := f.Params()
	if done != now+p.ReadLatency+p.PageTransferTime() {
		t.Fatalf("mapped read done = %d", done)
	}
	// Unmapped read is still charged as flash work (pre-trace data).
	done2, err := f.Read(now*2, []int64{42})
	if err != nil {
		t.Fatal(err)
	}
	if done2 <= now*2 {
		t.Fatal("unmapped read took no time")
	}
	if f.Stats().HostReads != 2 {
		t.Fatalf("HostReads = %d, want 2", f.Stats().HostReads)
	}
}

func TestReadRejectsOutOfRangeLPN(t *testing.T) {
	f := mustNew(t, tinyParams())
	if _, err := f.Read(0, []int64{f.LogicalPages()}); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := f.WriteStriped(0, []int64{-1}); err == nil {
		t.Fatal("negative lpn write accepted")
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	f := mustNew(t, tinyParams())
	// Repeatedly overwrite a small working set; without GC the 128
	// physical pages would be exhausted after 128 programs.
	for round := 0; round < 40; round++ {
		if _, err := f.WriteStriped(int64(round)*1_000_000, seq(0, 16)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	st := f.Stats()
	if st.GCRuns == 0 || st.Erases == 0 {
		t.Fatalf("GC never ran: %+v", st)
	}
	if st.HostPrograms != 40*16 {
		t.Fatalf("HostPrograms = %d, want %d", st.HostPrograms, 40*16)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All 16 lpns must still be mapped to valid pages after GC churn.
	for lpn := int64(0); lpn < 16; lpn++ {
		if !f.Mapped(lpn) {
			t.Fatalf("lpn %d lost its mapping during GC", lpn)
		}
	}
}

func TestGCPreservesDataPlacementConsistency(t *testing.T) {
	// Property: after arbitrary write workloads, every plane keeps at
	// least one free or active block, and invariants hold.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ftl, err := New(tinyParams())
		if err != nil {
			return false
		}
		logical := ftl.LogicalPages()
		now := int64(0)
		for i := 0; i < 300; i++ {
			now += int64(rng.Intn(1000))
			n := 1 + rng.Intn(6)
			lpns := make([]int64, n)
			base := rng.Int63n(logical)
			for j := range lpns {
				lpns[j] = (base + int64(j)) % logical
			}
			if rng.Intn(4) == 0 {
				if _, err := ftl.WriteBlockBound(now, lpns); err != nil {
					return false
				}
			} else {
				if _, err := ftl.WriteStriped(now, lpns); err != nil {
					return false
				}
			}
		}
		return ftl.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGCDelaysSubsequentOpsOnChip(t *testing.T) {
	// GC work must occupy the chip timeline: after heavy churn, chip free
	// times exceed what host programs alone would produce.
	p := tinyParams()
	f := mustNew(t, p)
	for round := 0; round < 40; round++ {
		if _, err := f.WriteStriped(0, seq(0, 16)); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	hostOnly := st.HostPrograms * (p.PageTransferTime() + p.ProgramLatency) / int64(p.Chips())
	var maxChip int64
	for c := 0; c < p.Chips(); c++ {
		if v := f.Timeline().ChipFree(c); v > maxChip {
			maxChip = v
		}
	}
	if st.GCRuns > 0 && maxChip <= hostOnly {
		t.Fatalf("GC cost invisible in timeline: maxChip=%d hostOnly=%d", maxChip, hostOnly)
	}
}

func TestOutOfSpaceErrorsGracefully(t *testing.T) {
	p := tinyParams()
	p.OverProvision = 0.0 // logical == physical: GC can never win
	f := mustNew(t, p)
	var sawErr bool
	for round := 0; round < 200 && !sawErr; round++ {
		if _, err := f.WriteStriped(0, seq(0, f.LogicalPages())); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Skip("device absorbed workload without exhaustion (GC found invalid pages)")
	}
}

func TestStripeOrderCoversAllPlanesOnce(t *testing.T) {
	for _, geom := range []struct{ ch, chips, planes int }{
		{2, 2, 1}, {8, 2, 1}, {4, 2, 2}, {1, 1, 1}, {3, 3, 2},
	} {
		p := tinyParams()
		p.Channels, p.ChipsPerChannel, p.PlanesPerChip = geom.ch, geom.chips, geom.planes
		f := mustNew(t, p)
		seen := map[int32]int{}
		for _, pl := range f.stripeOrder {
			seen[pl]++
		}
		if len(seen) != p.Planes() {
			t.Fatalf("geom %+v: stripe order covers %d planes, want %d", geom, len(seen), p.Planes())
		}
		for pl, n := range seen {
			if n != 1 {
				t.Fatalf("geom %+v: plane %d visited %d times", geom, pl, n)
			}
		}
		// First Channels entries must be on distinct channels.
		chans := map[int]bool{}
		for i := 0; i < p.Channels; i++ {
			chans[p.ChannelOfBlock(p.FirstBlockOfPlane(int(f.stripeOrder[i])))] = true
		}
		if len(chans) != p.Channels {
			t.Fatalf("geom %+v: first %d stripe targets span %d channels", geom, p.Channels, len(chans))
		}
	}
}
