package ftl

import "testing"

func TestTrimInvalidatesMapping(t *testing.T) {
	f := mustNew(t, tinyParams())
	if _, err := f.WriteStriped(0, seq(0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if f.Mapped(1) || f.Mapped(2) {
		t.Fatal("trimmed pages still mapped")
	}
	if !f.Mapped(0) || !f.Mapped(3) {
		t.Fatal("untouched pages lost their mapping")
	}
	if f.Stats().Trims != 2 {
		t.Fatalf("Trims = %d", f.Stats().Trims)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrimUnmappedIsNoop(t *testing.T) {
	f := mustNew(t, tinyParams())
	if err := f.Trim([]int64{10, 11}); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Trims != 0 {
		t.Fatal("no-op trims counted")
	}
}

func TestTrimRejectsOutOfRange(t *testing.T) {
	f := mustNew(t, tinyParams())
	if err := f.Trim([]int64{f.LogicalPages()}); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
}

func TestTrimReducesGCMigrations(t *testing.T) {
	// Write a working set, trim half, then churn: GC migrates fewer
	// valid pages than without the trim.
	run := func(trim bool) int64 {
		f := mustNew(t, tinyParams())
		if _, err := f.WriteStriped(0, seq(0, 32)); err != nil {
			t.Fatal(err)
		}
		if trim {
			if err := f.Trim(seq(16, 16)); err != nil {
				t.Fatal(err)
			}
		}
		for round := 0; round < 30; round++ {
			if _, err := f.WriteStriped(int64(round)*1000, seq(0, 16)); err != nil {
				t.Fatal(err)
			}
		}
		return f.Stats().GCMigrations
	}
	with, without := run(true), run(false)
	if with > without {
		t.Fatalf("trim increased GC migrations: %d vs %d", with, without)
	}
}

func TestTrimmedPageCanBeRewritten(t *testing.T) {
	f := mustNew(t, tinyParams())
	if _, err := f.WriteStriped(0, []int64{5}); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim([]int64{5}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteStriped(1, []int64{5}); err != nil {
		t.Fatal(err)
	}
	if !f.Mapped(5) {
		t.Fatal("rewrite after trim failed")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
