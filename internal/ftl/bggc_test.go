package ftl

import "testing"

func TestBackgroundGCRefillsHeadroom(t *testing.T) {
	p := tinyParams()
	f := mustNew(t, p)
	// Dirty the device: overwrite a working set until foreground GC has
	// been near its threshold.
	for round := 0; round < 20; round++ {
		if _, err := f.WriteStriped(int64(round)*1000, seq(0, 16)); err != nil {
			t.Fatal(err)
		}
	}
	before := 0
	for pl := 0; pl < p.Planes(); pl++ {
		before += f.FreeBlocks(pl)
	}
	n := f.BackgroundGC(1_000_000, 8, 4)
	if n == 0 {
		t.Skip("nothing reclaimable on this run")
	}
	after := 0
	for pl := 0; pl < p.Planes(); pl++ {
		after += f.FreeBlocks(pl)
	}
	if after < before {
		t.Fatalf("background GC shrank the free pool: %d -> %d", before, after)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundGCRespectsBudget(t *testing.T) {
	p := tinyParams()
	f := mustNew(t, p)
	for round := 0; round < 20; round++ {
		if _, err := f.WriteStriped(0, seq(0, 16)); err != nil {
			t.Fatal(err)
		}
	}
	runsBefore := f.Stats().GCRuns
	n := f.BackgroundGC(0, 2, 8)
	if n > 2 {
		t.Fatalf("budget exceeded: %d victims", n)
	}
	if got := f.Stats().GCRuns - runsBefore; got != int64(n) {
		t.Fatalf("GCRuns moved by %d, reported %d", got, n)
	}
}

func TestBackgroundGCIdleOnCleanDevice(t *testing.T) {
	f := mustNew(t, tinyParams())
	if _, err := f.WriteStriped(0, seq(0, 4)); err != nil {
		t.Fatal(err)
	}
	// Nothing invalid: no victims collectible.
	if n := f.BackgroundGC(0, 8, 4); n != 0 {
		t.Fatalf("clean device collected %d victims", n)
	}
}

func TestBackgroundGCSoftLowFloor(t *testing.T) {
	f := mustNew(t, tinyParams())
	for round := 0; round < 20; round++ {
		if _, err := f.WriteStriped(0, seq(0, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// softLow at or below gcLow is raised to a sane floor rather than
	// making background GC a no-op.
	if n := f.BackgroundGC(0, 4, 0); n < 0 {
		t.Fatal("negative victim count")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
