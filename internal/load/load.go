// Package load is the open-loop workload generator for the service
// front-end: arrivals fire on their own schedule — Poisson or bursty —
// regardless of how many requests are still outstanding, which is what
// exposes saturation behavior (a closed loop self-throttles and hides
// it). Latency is measured from the *scheduled* arrival, not the actual
// send, so dispatcher lateness counts against the service rather than
// being silently omitted (coordinated omission).
//
// The generator drives any Submitter — the in-process serve.Server or a
// remote ssdserve via serve.Client — and reports client-side P50/P99/
// P99.9 with goodput per ramp step.
package load

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// Submitter is the request sink; serve.Server and serve.Client both
// implement it.
type Submitter interface {
	Submit(op serve.Op) (serve.Response, error)
}

// Profile shapes the offered load.
type Profile struct {
	// Arrival selects the process: "poisson" (exponential gaps) or
	// "burst" (back-to-back trains of BurstLen separated by idle gaps;
	// the train cadence preserves the mean rate).
	Arrival string
	// RatePerSec is the mean arrival rate in ops/sec at multiplier 1.
	RatePerSec float64
	// BurstLen is the ops per train for Arrival "burst" (default 32).
	BurstLen int
	// Tenants spreads ops across N disjoint LPN regions (default 1).
	Tenants int
	// RegionPages is each tenant's LPN region size (default 4096).
	RegionPages int64
	// ReadFraction in [0,1] is the probability an op is a read.
	ReadFraction float64
	// Pages per op (default 4).
	Pages int
	// DeadlineNs per op; zero uses the server default.
	DeadlineNs int64
	// StepNs is the wall-clock duration of each ramp step.
	StepNs int64
	// Ramp lists the rate multipliers, one step each; nil means a single
	// step at 1.0. A ramp crossing 1.0 upward is the saturation sweep.
	Ramp []float64
	// Seed makes the arrival schedule and op mix reproducible.
	Seed int64
	// MaxOutstanding caps concurrently in-flight ops as a safety valve
	// (default 4096); arrivals past it are counted as Skipped, not sent.
	MaxOutstanding int
}

// withDefaults fills the zero values.
func (p Profile) withDefaults() (Profile, error) {
	if p.Arrival == "" {
		p.Arrival = "poisson"
	}
	if p.Arrival != "poisson" && p.Arrival != "burst" {
		return p, fmt.Errorf("load: unknown arrival process %q", p.Arrival)
	}
	if p.RatePerSec <= 0 {
		return p, fmt.Errorf("load: rate %v must be > 0", p.RatePerSec)
	}
	if p.StepNs <= 0 {
		return p, fmt.Errorf("load: step duration %d must be > 0", p.StepNs)
	}
	if p.ReadFraction < 0 || p.ReadFraction > 1 {
		return p, fmt.Errorf("load: read fraction %v outside [0,1]", p.ReadFraction)
	}
	if p.BurstLen <= 0 {
		p.BurstLen = 32
	}
	if p.Tenants <= 0 {
		p.Tenants = 1
	}
	if p.RegionPages <= 0 {
		p.RegionPages = 4096
	}
	if p.Pages <= 0 {
		p.Pages = 4
	}
	if int64(p.Pages) > p.RegionPages {
		return p, fmt.Errorf("load: %d pages per op exceeds the %d-page tenant region", p.Pages, p.RegionPages)
	}
	if p.MaxOutstanding <= 0 {
		p.MaxOutstanding = 4096
	}
	if len(p.Ramp) == 0 {
		p.Ramp = []float64{1}
	}
	for _, m := range p.Ramp {
		if m <= 0 {
			return p, fmt.Errorf("load: ramp multiplier %v must be > 0", m)
		}
	}
	return p, nil
}

// StepResult is one ramp step's client-side view.
type StepResult struct {
	Multiplier float64 `json:"multiplier"`
	TargetRate float64 `json:"target_rate"` // ops/sec offered
	ElapsedNs  int64   `json:"elapsed_ns"`

	Sent    int64 `json:"sent"`
	Skipped int64 `json:"skipped"` // over the outstanding cap, never sent

	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`
	Rejected int64 `json:"rejected"`
	Timeout  int64 `json:"timeout"`
	ReadOnly int64 `json:"read_only"`
	Draining int64 `json:"draining"`
	Errors   int64 `json:"errors"`

	// Client-observed latency from scheduled arrival to response.
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`

	// GoodputOps counts served ops (ok + shed) per wall second;
	// GoodputMBps is the corresponding data rate.
	GoodputOps  float64 `json:"goodput_ops"`
	GoodputMBps float64 `json:"goodput_mbps"`
}

// Result is the whole run.
type Result struct {
	Steps []StepResult `json:"steps"`
}

// stepState accumulates one step under concurrency.
type stepState struct {
	sent, skipped atomic.Int64
	outcomes      [7]atomic.Int64 // indexed by serve.Outcome

	mu             sync.Mutex
	p50, p99, p999 *metrics.Quantile
}

func newStepState() *stepState {
	return &stepState{
		p50: metrics.NewQuantile(0.50), p99: metrics.NewQuantile(0.99),
		p999: metrics.NewQuantile(0.999),
	}
}

func (st *stepState) observe(latNs int64, out serve.Outcome) {
	st.outcomes[out].Add(1)
	st.mu.Lock()
	st.p50.Observe(float64(latNs))
	st.p99.Observe(float64(latNs))
	st.p999.Observe(float64(latNs))
	st.mu.Unlock()
}

// Run drives the profile against sub, one ramp step at a time, waiting
// out each step's stragglers before the next begins so every response is
// charged to the step that offered it.
func Run(sub Submitter, p Profile) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	pageBytes := float64(p.Pages) * 4096
	res := &Result{}
	for step, mult := range p.Ramp {
		rate := p.RatePerSec * mult
		// Two RNG streams: the schedule one draws per-arrival, the op one
		// draws per-op — both seeded per step so a step is reproducible in
		// isolation.
		arrivalRng := rand.New(rand.NewSource(p.Seed + int64(step)*7919))
		opRng := rand.New(rand.NewSource(p.Seed ^ (int64(step+1) * 104729)))
		st := newStepState()
		var outstanding atomic.Int64
		var wg sync.WaitGroup

		start := time.Now()
		for nextNs := int64(0); nextNs < p.StepNs; nextNs += gapNs(p, arrivalRng, rate) {
			sched := start.Add(time.Duration(nextNs))
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			op := nextOp(p, opRng)
			if outstanding.Load() >= int64(p.MaxOutstanding) {
				st.skipped.Add(1)
				continue
			}
			outstanding.Add(1)
			st.sent.Add(1)
			wg.Add(1)
			go func(sched time.Time, op serve.Op) {
				defer wg.Done()
				defer outstanding.Add(-1)
				resp, err := sub.Submit(op)
				lat := time.Since(sched).Nanoseconds()
				if err != nil {
					st.observe(lat, serve.OutcomeError)
					return
				}
				st.observe(lat, resp.Outcome)
			}(sched, op)
		}
		wg.Wait()
		elapsed := time.Since(start)

		sr := StepResult{
			Multiplier: mult, TargetRate: rate, ElapsedNs: elapsed.Nanoseconds(),
			Sent: st.sent.Load(), Skipped: st.skipped.Load(),
			OK:       st.outcomes[serve.OutcomeOK].Load(),
			Shed:     st.outcomes[serve.OutcomeShed].Load(),
			Rejected: st.outcomes[serve.OutcomeRejected].Load(),
			Timeout:  st.outcomes[serve.OutcomeTimeout].Load(),
			ReadOnly: st.outcomes[serve.OutcomeReadOnly].Load(),
			Draining: st.outcomes[serve.OutcomeDraining].Load(),
			Errors:   st.outcomes[serve.OutcomeError].Load(),
			P50Ns:    int64(st.p50.Value()), P99Ns: int64(st.p99.Value()),
			P999Ns: int64(st.p999.Value()),
		}
		served := float64(sr.OK + sr.Shed)
		secs := elapsed.Seconds()
		if secs > 0 {
			sr.GoodputOps = served / secs
			sr.GoodputMBps = served * pageBytes / secs / (1 << 20)
		}
		res.Steps = append(res.Steps, sr)
	}
	return res, nil
}

// gapNs draws the next inter-arrival gap.
func gapNs(p Profile, rng *rand.Rand, rate float64) int64 {
	switch p.Arrival {
	case "burst":
		// Trains of BurstLen back-to-back arrivals; the gap after each
		// train restores the mean rate: train period = BurstLen/rate.
		if rng.Intn(p.BurstLen) != 0 {
			return 1 // back-to-back inside the train
		}
		return int64(float64(p.BurstLen) / rate * 1e9)
	default: // poisson
		g := rng.ExpFloat64() / rate * 1e9
		if g < 1 {
			g = 1
		}
		return int64(g)
	}
}

// nextOp draws one op: a tenant, an aligned offset inside its region,
// and the read/write coin.
func nextOp(p Profile, rng *rand.Rand) serve.Op {
	tenant := rng.Intn(p.Tenants)
	slots := p.RegionPages / int64(p.Pages)
	lpn := int64(tenant)*p.RegionPages + rng.Int63n(slots)*int64(p.Pages)
	return serve.Op{
		Write: rng.Float64() >= p.ReadFraction,
		LPN:   lpn, Pages: p.Pages, DeadlineNs: p.DeadlineNs,
	}
}

// Format renders the run as an aligned table for the terminal.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %9s %8s %6s %6s %6s %6s %6s %6s %5s %9s %9s %9s %9s %8s\n",
		"mult", "rate/s", "sent", "ok", "shed", "rej", "tmo", "ro", "err", "skip",
		"p50_ms", "p99_ms", "p999_ms", "good/s", "MB/s")
	for _, s := range r.Steps {
		fmt.Fprintf(&sb, "%6.2f %9.0f %8d %6d %6d %6d %6d %6d %6d %5d %9.2f %9.2f %9.2f %9.0f %8.1f\n",
			s.Multiplier, s.TargetRate, s.Sent, s.OK, s.Shed, s.Rejected, s.Timeout,
			s.ReadOnly, s.Errors+s.Draining, s.Skipped,
			float64(s.P50Ns)/1e6, float64(s.P99Ns)/1e6, float64(s.P999Ns)/1e6,
			s.GoodputOps, s.GoodputMBps)
	}
	return sb.String()
}
