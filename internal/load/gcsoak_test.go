package load_test

import (
	"os"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// TestGCSchedSoak is the GC-scheduling saturation soak (make soak-gc): a
// bursty open-loop ramp against preconditioned scheduler-enabled devices
// with light fault injection, under the race detector. Burst gaps are the
// queue-empty windows the front-end turns into budgeted GC slices, so the
// soak asserts the idle-window coordination actually fires, deadlines
// hold under light load, the overload ladder still engages past
// saturation, and the drain is clean even with collections split across
// slices throughout the run. Gated behind SSDSOAK_GC so tier-1 stays fast.
func TestGCSchedSoak(t *testing.T) {
	if os.Getenv("SSDSOAK_GC") == "" {
		t.Skip("set SSDSOAK_GC=1 (make soak-gc) to run the GC-scheduling soak")
	}
	leakcheck.Check(t)
	tel := obs.New()
	var fr *obs.FlightRecorder
	if dir := os.Getenv("SSDSOAK_FLIGHTDIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		fr = obs.NewFlightRecorder(2, 0, dir)
	}
	cfg := serve.Config{
		Shards: 2, TotalCapacityPages: 256, QueueDepth: 64, Shed: true,
		DefaultDeadlineNs: int64(250 * time.Millisecond),
		Pace:              true, Telemetry: tel, FlightRecorder: fr,
		// One full collection (reads + programs + 15ms erase) per empty
		// queue; anything under the erase cost would defer every victim.
		GCBudgetNs: 30_000_000,
		Sharing:    sim.SharingShared,
	}
	cfg.NewPolicy = func(_, n int) cache.Policy { return cache.NewLRU(n) }
	cfg.NewDevice = func(shard int) (*ssd.Device, error) {
		p := ssd.DefaultParams()
		p.Flash.BlocksPerPlane = 512
		p.Flash.PagesPerBlock = 16
		p.Precondition = 0.9 // nearly full: scheduled slices find real victims
		p.GCSched.Enabled = true
		p.Faults = fault.Config{
			Seed:            uint64(11 + shard),
			GrownBadProb:    1e-4,
			CheckInvariants: true,
		}
		return ssd.New(p)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	res, err := load.Run(srv, load.Profile{
		Arrival: "burst", BurstLen: 16, RatePerSec: 3000, ReadFraction: 0.3,
		Tenants: 2, Pages: 4, StepNs: int64(5 * time.Second),
		Ramp: []float64{0.25, 1, 8, 32}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gc soak ramp:\n%s", res.Format())

	first, last := res.Steps[0], res.Steps[len(res.Steps)-1]
	if first.OK == 0 {
		t.Fatal("under-load step served nothing")
	}
	// Deadline pin: scheduled GC must not push light-load requests past
	// their deadline — under 1% of the under-load step may time out.
	if first.Timeout*100 > first.Sent {
		t.Fatalf("under-load deadline regression: %d of %d timed out", first.Timeout, first.Sent)
	}
	var degradedSum int64
	for _, s := range res.Steps {
		degradedSum += s.Shed + s.Rejected + s.Timeout + s.Skipped
	}
	if degradedSum == 0 {
		t.Fatal("ramp never engaged the overload ladder (no shed/reject/timeout)")
	}
	if last.OK+last.Shed == 0 {
		t.Fatal("saturated step collapsed to zero goodput")
	}

	st := srv.Stats()
	if st.GCSlices == 0 {
		t.Fatal("queue-empty windows never granted a GC slice")
	}
	if st.GCVictims == 0 {
		t.Fatal("scheduled slices never collected a victim")
	}
	t.Logf("gc slices %d, victims %d", st.GCSlices, st.GCVictims)

	rep := srv.Drain()
	if rep.Degraded {
		t.Fatal("soak drain reports degraded (fault injection exhausted the reserve?)")
	}
	if status, _, _ := srv.HealthStatus(); status != serve.StateDraining {
		t.Fatalf("post-drain health %q, want draining", status)
	}
}
