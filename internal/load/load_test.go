package load_test

import (
	"os"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/leakcheck"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// testServer builds a small in-process front-end for load runs.
func testServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.TotalCapacityPages == 0 {
		cfg.TotalCapacityPages = 512
	}
	cfg.Sharing = sim.SharingShared
	cfg.NewPolicy = func(_, n int) cache.Policy { return cache.NewLRU(n) }
	cfg.NewDevice = func(int) (*ssd.Device, error) {
		p := ssd.DefaultParams()
		p.Flash.BlocksPerPlane = 512
		p.Flash.PagesPerBlock = 16
		p.Precondition = 0
		return ssd.New(p)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestOpenLoopShort drives a brief Poisson run in-process: every arrival
// must be accounted for, latencies observed, goodput positive.
func TestOpenLoopShort(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t, serve.Config{DefaultDeadlineNs: int64(time.Minute)})
	defer srv.Close()

	res, err := load.Run(srv, load.Profile{
		Arrival: "poisson", RatePerSec: 2000, ReadFraction: 0.5,
		Pages: 2, StepNs: int64(200 * time.Millisecond), Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Fatalf("steps %d, want 1", len(res.Steps))
	}
	s := res.Steps[0]
	if s.Sent == 0 || s.OK == 0 {
		t.Fatalf("sent=%d ok=%d: nothing served", s.Sent, s.OK)
	}
	if got := s.OK + s.Shed + s.Rejected + s.Timeout + s.ReadOnly + s.Draining + s.Errors; got != s.Sent {
		t.Fatalf("outcomes %d do not partition sent %d", got, s.Sent)
	}
	if s.P50Ns <= 0 || s.P99Ns < s.P50Ns {
		t.Fatalf("quantiles p50=%d p99=%d implausible", s.P50Ns, s.P99Ns)
	}
	if s.GoodputOps <= 0 {
		t.Fatalf("goodput %v, want > 0", s.GoodputOps)
	}
	if res.Format() == "" {
		t.Fatal("empty table")
	}
}

// TestOpenLoopRampAndBurst covers the multi-step ramp bookkeeping and the
// bursty arrival process.
func TestOpenLoopRampAndBurst(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t, serve.Config{DefaultDeadlineNs: int64(time.Minute)})
	defer srv.Close()

	res, err := load.Run(srv, load.Profile{
		Arrival: "burst", BurstLen: 16, RatePerSec: 1000, ReadFraction: 0.3,
		Tenants: 3, StepNs: int64(120 * time.Millisecond),
		Ramp: []float64{0.5, 2}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps %d, want 2", len(res.Steps))
	}
	if res.Steps[0].TargetRate != 500 || res.Steps[1].TargetRate != 2000 {
		t.Fatalf("target rates %v/%v, want 500/2000",
			res.Steps[0].TargetRate, res.Steps[1].TargetRate)
	}
	for i, s := range res.Steps {
		if s.Sent == 0 || s.OK == 0 {
			t.Fatalf("step %d: sent=%d ok=%d", i, s.Sent, s.OK)
		}
	}
}

// TestProfileValidation rejects meaningless profiles.
func TestProfileValidation(t *testing.T) {
	srv := testServer(t, serve.Config{})
	defer srv.Close()
	bad := []load.Profile{
		{RatePerSec: 0, StepNs: 1},
		{RatePerSec: 100, StepNs: 0},
		{RatePerSec: 100, StepNs: 1, Arrival: "warp"},
		{RatePerSec: 100, StepNs: 1, ReadFraction: 1.5},
		{RatePerSec: 100, StepNs: 1, Ramp: []float64{1, -2}},
		{RatePerSec: 100, StepNs: 1, Pages: 64, RegionPages: 32},
	}
	for i, p := range bad {
		if _, err := load.Run(srv, p); err == nil {
			t.Errorf("profile %d accepted, want error", i)
		}
	}
}

// TestOpenLoopSoak is the CI saturation soak (make soak-serve): a ramp
// from well under to well past the paced service rate, long enough for
// the overload ladder to engage, under the race detector, with a hard
// wall-clock bound from the go test -timeout. Gated behind SSDSOAK so
// the ordinary tier-1 run stays fast.
func TestOpenLoopSoak(t *testing.T) {
	if os.Getenv("SSDSOAK") == "" {
		t.Skip("set SSDSOAK=1 (make soak-serve) to run the open-loop soak")
	}
	leakcheck.Check(t)
	tel := obs.New()
	// SSDSOAK_FLIGHTDIR arms the flight recorder at a stable path so CI
	// can upload the anomaly dumps as artifacts when the soak fails.
	var fr *obs.FlightRecorder
	if dir := os.Getenv("SSDSOAK_FLIGHTDIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		fr = obs.NewFlightRecorder(2, 0, dir)
	}
	srv := testServer(t, serve.Config{
		TotalCapacityPages: 256, QueueDepth: 64, Shed: true,
		DefaultDeadlineNs: int64(250 * time.Millisecond),
		Pace:              true, Telemetry: tel,
		FlightRecorder: fr,
	})

	res, err := load.Run(srv, load.Profile{
		Arrival: "poisson", RatePerSec: 3000, ReadFraction: 0.3,
		Tenants: 2, Pages: 4, StepNs: int64(6 * time.Second),
		Ramp: []float64{0.25, 1, 4, 16, 64}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak ramp:\n%s", res.Format())

	first, last := res.Steps[0], res.Steps[len(res.Steps)-1]
	if first.OK == 0 {
		t.Fatal("under-load step served nothing")
	}
	var degradedSum int64
	for _, s := range res.Steps {
		degradedSum += s.Shed + s.Rejected + s.Timeout + s.Skipped
	}
	if degradedSum == 0 {
		t.Fatal("ramp never engaged the overload ladder (no shed/reject/timeout)")
	}
	if last.OK+last.Shed == 0 {
		t.Fatal("saturated step collapsed to zero goodput")
	}

	rep := srv.Drain()
	if rep.Degraded {
		t.Fatal("soak drain reports degraded on a healthy device")
	}
	if status, _, _ := srv.HealthStatus(); status != serve.StateDraining {
		t.Fatalf("post-drain health %q, want draining", status)
	}
}
