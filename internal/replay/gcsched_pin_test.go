package replay

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestGCSchedulerDisabledBitIdentical pins the scheduler's central
// contract: with scheduling effectively off, every replay metric is
// bit-identical to a device that never heard of the scheduler. Three
// devices run the same trace across policies × fault configs —
//
//	A: plain device (no scheduler call at all),
//	B: EnableGCScheduler(Enabled: false),
//	C: scheduler enabled but inert (pacing off, no budget granted).
//
// A and B must produce DeepEqual Metrics outright. C may count greedy
// mandatory rounds in its scheduler stats, but after zeroing that one
// snapshot field it too must be DeepEqual — the simulation itself (every
// latency distribution, GC counter, fault recovery and invariant check)
// must not move.
func TestGCSchedulerDisabledBitIdentical(t *testing.T) {
	tr := workload.MustGenerate(workload.SRC12(), workload.Options{Scale: 0.01})
	policies := []struct {
		name string
		make func() cache.Policy
	}{
		{"lru", func() cache.Policy { return cache.NewLRU(512) }},
		{"req-block", func() cache.Policy { return core.New(512) }},
	}
	faults := []struct {
		name string
		cfg  fault.Config
	}{
		{"fault-free", fault.Config{}},
		{"faulted", fault.Config{Seed: 5, ProgramFailProb: 0.002, GrownBadProb: 0.01, CheckInvariants: true}},
	}
	for _, pol := range policies {
		for _, fc := range faults {
			run := func(variant int) *Metrics {
				t.Helper()
				p := ssd.ScaledParams(64)
				p.Precondition = 0.9 // nearly full: GC runs, the contract is stressed
				p.Faults = fc.cfg
				dev, err := ssd.New(p)
				if err != nil {
					t.Fatal(err)
				}
				switch variant {
				case 1:
					dev.EnableGCScheduler(ftl.GCSchedConfig{Enabled: false})
				case 2:
					dev.EnableGCScheduler(ftl.GCSchedConfig{Enabled: true, PaceSteps: -1})
				}
				var opts Options
				opts.ApplyFaults(fc.cfg)
				opts.IdleFlushNs = 2_000_000
				m, err := Run(tr, pol.make(), dev, opts)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			a, b, c := run(0), run(1), run(2)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: Enabled:false perturbed the replay:\nA %+v\nB %+v", pol.name, fc.name, a, b)
			}
			if !reflect.DeepEqual(a.GCSched, ftl.GCSchedStats{}) {
				t.Errorf("%s/%s: plain device reported scheduler stats: %+v", pol.name, fc.name, a.GCSched)
			}
			c.GCSched = ftl.GCSchedStats{}
			if !reflect.DeepEqual(a, c) {
				t.Errorf("%s/%s: inert enabled scheduler perturbed the replay:\nA %+v\nC %+v", pol.name, fc.name, a, c)
			}
		}
	}
}

// TestGCSchedulerBudgetedReplay is the on-switch counterpart: granting a
// budget must actually schedule collections during idle windows and
// report them, while preserving device consistency.
func TestGCSchedulerBudgetedReplay(t *testing.T) {
	profile := workload.SRC12()
	profile.Burstiness = 10
	tr := workload.MustGenerate(profile, workload.Options{Scale: 0.02})
	p := ssd.ScaledParams(64)
	p.Precondition = 0.93
	dev, err := ssd.New(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(tr, core.New(1024), dev, Options{
		IdleFlushNs: 2_000_000,
		GCBudgetNs:  10_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dev.GCSchedEnabled() {
		t.Fatal("replay did not enable the scheduler for a budgeted run")
	}
	if m.GCSched.JobsStarted == 0 {
		t.Skip("no idle GC opportunities at this scale")
	}
	if m.IdleGCRuns == 0 && m.GCSched.JobsCompleted > 0 {
		t.Fatalf("scheduled collections unreported: IdleGCRuns=%d sched=%+v", m.IdleGCRuns, m.GCSched)
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
