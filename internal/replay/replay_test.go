package replay

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testDevice builds a small but realistic device for replay tests.
func testDevice(t *testing.T) *ssd.Device {
	t.Helper()
	p := ssd.DefaultParams()
	p.Flash.BlocksPerPlane = 512 // 114688 logical pages: covers every test footprint
	p.Flash.PagesPerBlock = 16
	p.Precondition = 0
	d, err := ssd.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// microTrace builds a tiny deterministic trace.
func microTrace() *trace.Trace {
	mk := func(tm int64, wr bool, page, pages int64) trace.Request {
		return trace.Request{Time: tm, Write: wr, Offset: page * 4096, Size: pages * 4096}
	}
	return &trace.Trace{Name: "micro", Requests: []trace.Request{
		mk(0, true, 0, 2),            // insert 0,1
		mk(1_000_000, true, 0, 2),    // hit 0,1
		mk(2_000_000, false, 0, 1),   // read hit 0
		mk(3_000_000, false, 100, 2), // read miss 100,101
		mk(4_000_000, true, 200, 8),  // large insert
	}}
}

func TestRunBasicAccounting(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(4096)
	m, err := Run(microTrace(), pol, dev, Options{TrackPageFates: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 5 {
		t.Fatalf("Requests = %d", m.Requests)
	}
	if m.PageHits != 3 || m.PageMisses != 12 {
		t.Fatalf("hits/misses = %d/%d, want 3/12", m.PageHits, m.PageMisses)
	}
	if m.WritePageHits != 2 || m.ReadPageHits != 1 {
		t.Fatalf("split hits wrong: %d/%d", m.WritePageHits, m.ReadPageHits)
	}
	if got := m.HitRatio(); got < 0.19 || got > 0.21 {
		t.Fatalf("HitRatio = %v, want 0.2", got)
	}
	if m.Device.FlashReads != 2 {
		t.Fatalf("FlashReads = %d, want 2 (read misses)", m.Device.FlashReads)
	}
	if m.Device.FlashWrites != 0 {
		t.Fatalf("FlashWrites = %d, want 0 (no eviction yet)", m.Device.FlashWrites)
	}
	if m.Response.Count() != 5 || m.ReadResponse.Count() != 2 || m.WriteResponse.Count() != 3 {
		t.Fatal("response summaries wrong")
	}
}

func TestRunResponseTimes(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(4096)
	m, err := Run(microTrace(), pol, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The cache-absorbed writes must be orders of magnitude faster than
	// the flash read misses.
	if m.WriteResponse.Max() >= m.ReadResponse.Max() {
		t.Fatalf("write max %v >= read max %v", m.WriteResponse.Max(), m.ReadResponse.Max())
	}
	fp := dev.Params().Flash
	if m.ReadResponse.Max() < float64(fp.ReadLatency) {
		t.Fatalf("read response %v below device read latency", m.ReadResponse.Max())
	}
}

func TestRunEvictionFlushes(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(8) // tiny: force evictions
	tr := &trace.Trace{Name: "evict", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 8 * 4096},
		{Time: 1_000_000, Write: true, Offset: 100 * 4096, Size: 4 * 4096},
	}}
	m, err := Run(tr, pol, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.FlushedPages != 4 {
		t.Fatalf("FlushedPages = %d, want 4", m.FlushedPages)
	}
	if m.Device.FlashWrites != 4 {
		t.Fatalf("FlashWrites = %d, want 4", m.Device.FlashWrites)
	}
	if m.EvictionBatch.Total() != 4 { // LRU evicts one page at a time
		t.Fatalf("eviction ops = %d, want 4", m.EvictionBatch.Total())
	}
	if m.MeanEvictionPages() != 1 {
		t.Fatalf("mean eviction pages = %v, want 1", m.MeanEvictionPages())
	}
	// The evicting request's response covers the victims' channel
	// transfers (frames freed), but not the asynchronous cell programs.
	fp := dev.Params().Flash
	if m.WriteResponse.Max() < float64(fp.PageTransferTime()) {
		t.Fatalf("evicting write response %v did not wait for the transfer", m.WriteResponse.Max())
	}
	if m.WriteResponse.Max() >= float64(fp.ProgramLatency) {
		t.Fatalf("evicting write response %v blocked on the async program", m.WriteResponse.Max())
	}
}

func TestRunRejectsOutOfRangeTrace(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(64)
	tr := &trace.Trace{Name: "oob", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: dev.LogicalPages() * 4096, Size: 4096},
	}}
	if _, err := Run(tr, pol, dev, Options{}); err == nil {
		t.Fatal("out-of-range request accepted")
	}
}

func TestRunPageFates(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(4096)
	m, err := Run(microTrace(), pol, dev, Options{TrackPageFates: true, SmallThresholdPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Inserts: 2 pages from a 2-page request, 8 from an 8-page request.
	if m.InsertBySize.Count(2) != 2 || m.InsertBySize.Count(8) != 8 {
		t.Fatalf("InsertBySize: %v/%v", m.InsertBySize.Count(2), m.InsertBySize.Count(8))
	}
	// Hits: 3 hit events on pages inserted by the 2-page request.
	if m.HitBySize.Count(2) != 3 {
		t.Fatalf("HitBySize(2) = %d, want 3", m.HitBySize.Count(2))
	}
	// Fig. 3: 8 large pages inserted, none ever hit.
	if m.LargeInserted != 8 || m.LargeHitBeforeEviction != 0 {
		t.Fatalf("large fates: %d/%d", m.LargeInserted, m.LargeHitBeforeEviction)
	}
	if m.LargeHitFraction() != 0 {
		t.Fatal("LargeHitFraction should be 0")
	}
}

func TestRunLargeHitTracking(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(4096)
	tr := &trace.Trace{Name: "large-hit", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 8 * 4096},
		{Time: 1, Write: false, Offset: 0, Size: 4096}, // hit one large page
	}}
	m, err := Run(tr, pol, dev, Options{TrackPageFates: true, SmallThresholdPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.LargeInserted != 8 || m.LargeHitBeforeEviction != 1 {
		t.Fatalf("large fates: %d/%d, want 8/1", m.LargeInserted, m.LargeHitBeforeEviction)
	}
}

func TestRunSmallThresholdAuto(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(64)
	// Mean request size = (2+2+1+2+8)/5 = 3 pages.
	m, err := Run(microTrace(), pol, dev, Options{TrackPageFates: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.SmallThresholdPages != 3 {
		t.Fatalf("auto threshold = %d, want 3", m.SmallThresholdPages)
	}
}

func TestRunOccupancySeries(t *testing.T) {
	dev := testDevice(t)
	pol := core.New(64)
	tr := workload.MustGenerate(workload.TS0(), workload.Options{Scale: 0.005})
	m, err := Run(tr, pol, dev, Options{SeriesInterval: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"IRL", "SRL", "DRL"} {
		s, ok := m.ListSeries[name]
		if !ok {
			t.Fatalf("missing series %q", name)
		}
		if s.Len() == 0 {
			t.Fatalf("series %q has no samples", name)
		}
	}
}

func TestRunNoSeriesForFlatPolicies(t *testing.T) {
	dev := testDevice(t)
	m, err := Run(microTrace(), cache.NewLRU(64), dev, Options{SeriesInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.ListSeries != nil {
		t.Fatal("LRU should not produce occupancy series")
	}
}

func TestRunBlockBoundFlushPath(t *testing.T) {
	// BPLRU flushes block-bound; the device must still complete, and
	// flushes appear in the flash write count.
	dev := testDevice(t)
	pol := cache.NewBPLRU(8, 4)
	tr := &trace.Trace{Name: "bb", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 8 * 4096},
		{Time: 1_000_000, Write: true, Offset: 100 * 4096, Size: 4 * 4096},
	}}
	m, err := Run(tr, pol, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Device.FlashWrites == 0 {
		t.Fatal("block-bound flush missing from device counters")
	}
}

func TestRunPaddingReads(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewBPLRUWithPadding(8, 4)
	tr := &trace.Trace{Name: "pad", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 4096}, // 1 page of block 0
		{Time: 1, Write: true, Offset: 4 * 4096, Size: 4096},
		{Time: 2, Write: true, Offset: 8 * 4096, Size: 4096},
		{Time: 3, Write: true, Offset: 12 * 4096, Size: 4096},
		{Time: 4, Write: true, Offset: 16 * 4096, Size: 4096},
		{Time: 5, Write: true, Offset: 20 * 4096, Size: 4096},
		{Time: 6, Write: true, Offset: 24 * 4096, Size: 4096},
		{Time: 7, Write: true, Offset: 28 * 4096, Size: 4096},
		{Time: 8, Write: true, Offset: 32 * 4096, Size: 4096}, // evicts block 0
	}}
	m, err := Run(tr, pol, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The padded flush writes 4 pages (1 resident + 3 padded) and reads 3.
	if m.Device.FlashWrites != 4 {
		t.Fatalf("FlashWrites = %d, want 4 (padded block)", m.Device.FlashWrites)
	}
	if m.Device.FlashReads != 3 {
		t.Fatalf("FlashReads = %d, want 3 (padding)", m.Device.FlashReads)
	}
}

func TestRunCleanDropsNotFlushed(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewCFLRUWindow(4, 4, true)
	tr := &trace.Trace{Name: "clean", Requests: []trace.Request{
		{Time: 0, Write: false, Offset: 0, Size: 4 * 4096},                 // fills with clean pages
		{Time: 1_000_000, Write: true, Offset: 100 * 4096, Size: 2 * 4096}, // evicts 2 clean
	}}
	m, err := Run(tr, pol, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.CleanDrops != 2 {
		t.Fatalf("CleanDrops = %d, want 2", m.CleanDrops)
	}
	if m.Device.FlashWrites != 0 {
		t.Fatalf("clean drops caused %d flash writes", m.Device.FlashWrites)
	}
	if m.EvictionBatch.Total() != 0 {
		t.Fatal("clean drops must not count as eviction flushes")
	}
}

func TestRunWarmupExcludesEarlyRequests(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(4096)
	m, err := Run(microTrace(), pol, dev, Options{WarmupRequests: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Requests 0 and 1 (2+2 pages, 2 hits) excluded; remaining: read hit
	// on page 0, 2 read misses, 8-page insert.
	if m.Response.Count() != 3 {
		t.Fatalf("Response.Count = %d, want 3", m.Response.Count())
	}
	if m.PageHits != 1 || m.PageMisses != 10 {
		t.Fatalf("hits/misses = %d/%d, want 1/10", m.PageHits, m.PageMisses)
	}
	// The cache still warmed up: all distinct written pages are resident
	// (pages 0,1 plus the 8-page insert).
	if pol.Len() != 10 {
		t.Fatalf("cache pages = %d, want 10", pol.Len())
	}
}

func TestRunWarmupLongerThanTrace(t *testing.T) {
	dev := testDevice(t)
	m, err := Run(microTrace(), cache.NewLRU(64), dev, Options{WarmupRequests: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.Response.Count() != 0 || m.PageHits != 0 {
		t.Fatal("warmup longer than trace must leave metrics empty")
	}
	if m.Requests != 5 {
		t.Fatal("requests must still be processed")
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := workload.MustGenerate(workload.USR0(), workload.Options{Scale: 0.002})
	run := func() *Metrics {
		dev := testDevice(t)
		m, err := Run(tr, core.New(512), dev, Options{TrackPageFates: true})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.PageHits != b.PageHits || a.FlushedPages != b.FlushedPages ||
		a.Response.Sum() != b.Response.Sum() || a.Device.FlashWrites != b.Device.FlashWrites {
		t.Fatal("replay is not deterministic")
	}
}

func TestRunRealisticWorkloadAllPolicies(t *testing.T) {
	tr := workload.MustGenerate(workload.SRC12(), workload.Options{Scale: 0.002})
	pols := []cache.Policy{
		cache.NewLRU(512), cache.NewFIFO(512), cache.NewLFU(512),
		cache.NewCFLRU(512), cache.NewFAB(512, 64), cache.NewBPLRU(512, 64),
		cache.NewVBBMS(512), core.New(512),
	}
	for _, pol := range pols {
		dev := testDevice(t)
		m, err := Run(tr, pol, dev, Options{TrackPageFates: true})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if m.Requests != tr.Len() {
			t.Fatalf("%s: processed %d of %d", pol.Name(), m.Requests, tr.Len())
		}
		if m.PageHits+m.PageMisses == 0 {
			t.Fatalf("%s: no page accesses recorded", pol.Name())
		}
		if m.Response.Count() == 0 || m.Response.Min() < 0 {
			t.Fatalf("%s: response summary broken", pol.Name())
		}
		if err := dev.CheckInvariants(); err != nil {
			t.Fatalf("%s: device invariants: %v", pol.Name(), err)
		}
	}
}
