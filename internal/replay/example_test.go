package replay_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// A complete simulation in a dozen lines: device, policy, trace, replay.
func ExampleRun() {
	dev, err := ssd.New(ssd.ScaledParams(64))
	if err != nil {
		panic(err)
	}
	buffer := core.New(1024) // 4 MB Req-block write buffer

	tr := &trace.Trace{Name: "demo", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 8 * 4096},
		{Time: 1_000_000, Write: true, Offset: 0, Size: 8 * 4096}, // rewrite: hits
		{Time: 2_000_000, Write: false, Offset: 0, Size: 4096},    // read hit
	}}

	m, err := replay.Run(tr, buffer, dev, replay.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("hits=%d misses=%d flashWrites=%d\n",
		m.PageHits, m.PageMisses, m.Device.FlashWrites)
	// Output: hits=9 misses=8 flashWrites=0
}
