package replay

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// TestShardSpecValidate is the table over the sharded spec surface: every
// meaningless or contradictory spec/options combination must be rejected
// up front, including the hash-region-size-vs-explicit-boundaries
// conflict (boundaries route requests; the region size would be dead
// configuration).
func TestShardSpecValidate(t *testing.T) {
	valid := func() ShardSpec {
		return ShardSpec{
			Shards: 2, TotalCapacityPages: 64,
			NewPolicy: func(_, n int) cache.Policy { return cache.NewLRU(n) },
			NewDevice: shardTestDevice,
		}
	}
	cases := []struct {
		name    string
		mutate  func(*ShardSpec)
		opts    Options
		wantErr bool
	}{
		{"valid", func(*ShardSpec) {}, Options{}, false},
		{"valid-regions", func(s *ShardSpec) { s.TenantRegionPages = 64 }, Options{}, false},
		{"valid-boundaries", func(*ShardSpec) {}, Options{TenantBoundaries: []int64{100}}, false},
		{"zero-shards", func(s *ShardSpec) { s.Shards = 0 }, Options{}, true},
		{"negative-shards", func(s *ShardSpec) { s.Shards = -1 }, Options{}, true},
		{"nil-policy", func(s *ShardSpec) { s.NewPolicy = nil }, Options{}, true},
		{"nil-device", func(s *ShardSpec) { s.NewDevice = nil }, Options{}, true},
		{"capacity-below-shards", func(s *ShardSpec) { s.TotalCapacityPages = 1 }, Options{}, true},
		{"negative-region-pages", func(s *ShardSpec) { s.TenantRegionPages = -1 }, Options{}, true},
		{"regions-vs-boundaries", func(s *ShardSpec) { s.TenantRegionPages = 64 },
			Options{TenantBoundaries: []int64{100}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid()
			tc.mutate(&spec)
			err := spec.Validate(tc.opts)
			if tc.wantErr && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
		})
	}
}

// TestRunShardedRejectsInvalidSpec checks the validation gates the
// sharded entry point, not just the standalone method.
func TestRunShardedRejectsInvalidSpec(t *testing.T) {
	spec := ShardSpec{
		Shards: 2, TotalCapacityPages: 64, TenantRegionPages: 64,
		NewPolicy: func(_, n int) cache.Policy { return cache.NewLRU(n) },
		NewDevice: shardTestDevice,
	}
	_, err := RunSharded(churnTrace(10).Source(), spec,
		Options{TenantBoundaries: []int64{100}})
	if err == nil {
		t.Fatal("RunSharded accepted a contradictory spec/options combo")
	}
}

// twoRegionChurn alternates writes between two 128-page LPN regions so
// that, with a TenantBoundary at page 256, shard 0 and shard 1 each see a
// steady overwrite churn. Both regions fit the small 384-logical-page
// fault device (offsets are global: every shard's device spans the full
// LPN space).
func twoRegionChurn(n int) *trace.Trace {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		page := int64((i/2)*8) % 128
		if i%2 == 1 {
			page += 256 // second tenant's region
		}
		reqs[i] = trace.Request{Time: int64(i) * 1_000_000, Write: true, Offset: page * 4096, Size: 8 * 4096}
	}
	return &trace.Trace{Name: "two-region-churn", Requests: reqs}
}

// TestShardedDegradedShardPropagates pins the sharded engine's behavior
// when ONE shard's device enters read-only mode mid-run: the run must
// finish without hanging (the degraded shard's horizon drain keeps the
// splitter's backlog moving), the merged metrics must report Degraded,
// the healthy shard must keep processing, and the whole outcome must be
// deterministic run to run. The goroutine guard holds the
// splitter/relay/merger pipeline to a clean exit.
func TestShardedDegradedShardPropagates(t *testing.T) {
	leakcheck.Check(t)
	run := func() *Metrics {
		t.Helper()
		spec := ShardSpec{
			Shards: 2, Sharing: sim.SharingEqual, TotalCapacityPages: 128,
			NewPolicy: func(_, n int) cache.Policy { return cache.NewLRU(n) },
			NewDevice: func(shard int) (*ssd.Device, error) {
				p := ssd.DefaultParams()
				p.Flash.Channels = 2
				p.Flash.ChipsPerChannel = 2
				p.Flash.BlocksPerPlane = 16
				p.Flash.PagesPerBlock = 8
				p.Flash.OverProvision = 0.25
				p.Flash.GCThreshold = 0.25
				p.Precondition = 0
				if shard == 1 {
					// Only shard 1 degrades: first failed erase retires
					// past the reserve and flips read-only mode.
					p.Faults = fault.Config{EraseFailProb: 1, ReserveBlocks: 1}
				}
				return ssd.New(p)
			},
		}
		m, err := RunSharded(twoRegionChurn(800).Source(), spec,
			Options{TenantBoundaries: []int64{256}})
		if err != nil {
			t.Fatalf("one degraded shard must not fail the run: %v", err)
		}
		return m
	}

	m := run()
	if !m.Degraded {
		t.Fatal("merged metrics do not report the degraded shard")
	}
	// The healthy shard keeps serving its half of the stream: well over
	// the handful shard 1 manages before its device flips read-only.
	if m.Requests < 400 {
		t.Fatalf("only %d requests processed; healthy shard appears stalled", m.Requests)
	}
	if m.Requests >= 800 {
		t.Fatal("full trace processed despite a read-only shard")
	}
	if m.Device.DegradedEntries != 1 {
		t.Fatalf("degraded entries %d, want exactly 1 (one shard)", m.Device.DegradedEntries)
	}

	if m2 := run(); !reflect.DeepEqual(m, m2) {
		t.Fatal("degraded sharded run is not deterministic across runs")
	}
}
