package replay

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// msrText serializes a trace to MSR CSV once, so the materialized and the
// streaming replay both parse the exact same bytes (WriteMSR truncates
// times to 100 ns filetime ticks — deriving one side from the in-memory
// trace instead would compare different request sequences).
func msrText(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteMSR(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamingReplayMatchesMaterialized is the tentpole equivalence
// golden: for every policy family, replaying an MSR stream through
// RunSource (constant memory, trace.Scanner) must produce metrics
// bit-identical to materializing the same bytes and running the classic
// path — the full Metrics struct, histograms, P² quantiles and occupancy
// series included.
func TestStreamingReplayMatchesMaterialized(t *testing.T) {
	ts0, hm1 := workload.TS0(), workload.HM1()
	mix, err := workload.Mix("eq", workload.Options{Scale: 0.01}, ts0, hm1)
	if err != nil {
		t.Fatal(err)
	}
	text := msrText(t, mix)
	channels := ssd.DefaultParams().Flash.Channels
	policies := []struct {
		name string
		mk   func() cache.Policy
	}{
		{"LRU", func() cache.Policy { return cache.NewLRU(1024) }},
		{"CFLRU", func() cache.Policy { return cache.NewCFLRU(1024) }},
		{"FAB", func() cache.Policy { return cache.NewFAB(1024, 16) }},
		{"BPLRU", func() cache.Policy { return cache.NewBPLRU(1024, 16) }},
		{"VBBMS", func() cache.Policy { return cache.NewVBBMS(1024) }},
		{"PUD-LRU", func() cache.Policy { return cache.NewPUDLRU(1024, 16) }},
		{"ECR", func() cache.Policy { return cache.NewECR(1024, channels) }},
		{"Req-block", func() cache.Policy { return core.New(1024) }},
	}
	// The full option surface that streaming must reproduce; the
	// small/large threshold is explicit because RunSource cannot derive it
	// from a stream.
	opts := Options{
		TrackPageFates:      true,
		SmallThresholdPages: 4,
		SeriesInterval:      500,
		WarmupRequests:      100,
		IdleFlushNs:         2_000_000,
		QueueDepth:          8,
		TenantBoundaries: []int64{
			ts0.FootprintPages,
			ts0.FootprintPages + hm1.FootprintPages,
		},
	}
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := trace.ReadMSR(bytes.NewReader(text), "eq")
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(tr, tc.mk(), testDevice(t), opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSource(trace.Scan(bytes.NewReader(text), "eq"), tc.mk(), testDevice(t), opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("streaming replay diverged from materialized replay:\nmaterialized: %+v\nstreaming:    %+v", want, got)
			}
		})
	}
}

// TestStreamingReplayMatchesMaterializedWithFaults repeats the equivalence
// check under the PR-2 fault harness: injected program/erase failures,
// invariant checking, crash-at-request with periodic destaging, and a
// degraded (read-only) stop.
func TestStreamingReplayMatchesMaterializedWithFaults(t *testing.T) {
	text := msrText(t, churnTrace(400))
	configs := []struct {
		name string
		cfg  fault.Config
	}{
		{"seeded-faults-crash-destage", fault.Config{
			Seed:            3,
			ProgramFailProb: 0.002,
			GrownBadProb:    0.01,
			ReserveBlocks:   1000,
			CheckInvariants: true,
			CrashAtRequest:  120,
			DestageNs:       2_000_000,
		}},
		{"degraded-stop", fault.Config{
			EraseFailProb:   1,
			ReserveBlocks:   1,
			CheckInvariants: true,
		}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			// Explicit threshold: Run would auto-derive it from the
			// materialized trace, which a stream cannot reproduce.
			opts := Options{SmallThresholdPages: 8}
			opts.ApplyFaults(tc.cfg)
			tr, err := trace.ReadMSR(bytes.NewReader(text), "churn")
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(tr, cache.NewLRU(64), faultDevice(t, tc.cfg), opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSource(trace.Scan(bytes.NewReader(text), "churn"),
				cache.NewLRU(64), faultDevice(t, tc.cfg), opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("faulted streaming replay diverged:\nmaterialized: %+v\nstreaming:    %+v", want, got)
			}
		})
	}
}
