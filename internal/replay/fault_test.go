package replay

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// faultDevice builds a small device (4 planes × 16 blocks × 8 pages, 384
// logical pages) with a fault configuration attached.
func faultDevice(t *testing.T, cfg fault.Config) *ssd.Device {
	t.Helper()
	p := ssd.DefaultParams()
	p.Flash.Channels = 2
	p.Flash.ChipsPerChannel = 2
	p.Flash.BlocksPerPlane = 16
	p.Flash.PagesPerBlock = 8
	p.Flash.OverProvision = 0.25
	p.Flash.GCThreshold = 0.25
	p.Precondition = 0
	p.Faults = cfg
	d, err := ssd.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// churnTrace writes 8-page requests cycling over a 256-page footprint, one
// per millisecond — enough churn to keep a 64-page buffer evicting and the
// device garbage-collecting.
func churnTrace(n int) *trace.Trace {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		page := int64(i*8) % 256
		reqs[i] = trace.Request{Time: int64(i) * 1_000_000, Write: true, Offset: page * 4096, Size: 8 * 4096}
	}
	return &trace.Trace{Name: "churn", Requests: reqs}
}

// countersEqualIgnoringChecks compares two device counter snapshots minus
// InvariantChecks (the harness-only run performs checks, by design).
func countersEqualIgnoringChecks(a, b ssd.Counters) bool {
	a.InvariantChecks, b.InvariantChecks = 0, 0
	return a == b
}

func TestFaultFreeHarnessBitIdentical(t *testing.T) {
	// A fault config with no fault sources (only the invariant checker)
	// must reproduce the plain run bit for bit: same hits, same flushes,
	// same response times, same device counters.
	run := func(cfg fault.Config) *Metrics {
		dev := faultDevice(t, cfg)
		var opts Options
		opts.ApplyFaults(cfg)
		m, err := Run(churnTrace(300), cache.NewLRU(64), dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain := run(fault.Config{})
	checked := run(fault.Config{CheckInvariants: true})
	if plain.PageHits != checked.PageHits || plain.PageMisses != checked.PageMisses {
		t.Fatalf("hit accounting diverged: %d/%d vs %d/%d",
			plain.PageHits, plain.PageMisses, checked.PageHits, checked.PageMisses)
	}
	if plain.FlushedPages != checked.FlushedPages || plain.EvictionBatch.Total() != checked.EvictionBatch.Total() {
		t.Fatal("flush accounting diverged")
	}
	if plain.Response.Mean() != checked.Response.Mean() || plain.ResponseP99.Value() != checked.ResponseP99.Value() {
		t.Fatal("response times diverged")
	}
	if !countersEqualIgnoringChecks(plain.Device, checked.Device) {
		t.Fatalf("device counters diverged:\n%+v\n%+v", plain.Device, checked.Device)
	}
	if checked.Device.InvariantChecks == 0 {
		t.Fatal("checker enabled but never ran")
	}
}

func TestSeededFaultReplayReproducible(t *testing.T) {
	cfg := fault.Config{
		Seed:            3,
		ProgramFailProb: 0.002,
		GrownBadProb:    0.01,
		ReserveBlocks:   1000,
		CheckInvariants: true,
	}
	run := func() *Metrics {
		dev := faultDevice(t, cfg)
		var opts Options
		opts.ApplyFaults(cfg)
		m, err := Run(churnTrace(400), cache.NewLRU(64), dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Device != b.Device {
		t.Fatalf("two seeded runs diverged:\n%+v\n%+v", a.Device, b.Device)
	}
	if a.Requests != b.Requests || a.FlushedPages != b.FlushedPages ||
		a.Response.Mean() != b.Response.Mean() {
		t.Fatal("replay metrics diverged between seeded runs")
	}
	if a.Device.InjectedProgramFails == 0 && a.Device.GrownBadBlocks == 0 {
		t.Fatal("workload injected no faults; reproducibility untested")
	}
}

func TestCrashHarnessCountsLostDirtyPages(t *testing.T) {
	cfg := fault.Config{CrashAtRequest: 10}
	dev := faultDevice(t, cfg)
	pol := cache.NewLRU(64)
	var opts Options
	opts.ApplyFaults(cfg)
	m, err := Run(churnTrace(100), pol, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Crashed || m.CrashedAtRequest != 10 || m.Requests != 10 {
		t.Fatalf("crash bookkeeping wrong: %+v", m)
	}
	// LRU buffers only write data: the loss is the whole population.
	if m.LostDirtyPages == 0 || m.LostDirtyPages != int64(pol.Len()) {
		t.Fatalf("LostDirtyPages = %d, buffer holds %d", m.LostDirtyPages, pol.Len())
	}
}

func TestCrashLossUsesDirtyPagerWhenAvailable(t *testing.T) {
	// CFLRU buffers clean read data too; its crash loss must count only
	// dirty pages, not Len().
	reqs := make([]trace.Request, 40)
	for i := range reqs {
		page := int64(i * 4)
		reqs[i] = trace.Request{
			Time:   int64(i) * 1_000_000,
			Write:  i%2 == 0, // alternate writes and reads
			Offset: page * 4096, Size: 4 * 4096,
		}
	}
	tr := &trace.Trace{Name: "mixed", Requests: reqs}
	cfg := fault.Config{CrashAtRequest: 30}
	dev := faultDevice(t, cfg)
	pol := cache.NewCFLRU(64)
	var opts Options
	opts.ApplyFaults(cfg)
	m, err := Run(tr, pol, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.LostDirtyPages != int64(pol.DirtyPages()) {
		t.Fatalf("LostDirtyPages = %d, DirtyPages = %d", m.LostDirtyPages, pol.DirtyPages())
	}
	if m.LostDirtyPages >= int64(pol.Len()) {
		t.Fatalf("loss %d should be below population %d (clean pages present)",
			m.LostDirtyPages, pol.Len())
	}
}

func TestPeriodicDestageReducesCrashLoss(t *testing.T) {
	crash := func(destageNs int64) *Metrics {
		cfg := fault.Config{CrashAtRequest: 50, DestageNs: destageNs}
		dev := faultDevice(t, cfg)
		var opts Options
		opts.ApplyFaults(cfg)
		m, err := Run(churnTrace(100), cache.NewLRU(64), dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	without := crash(0)
	with := crash(2_000_000) // a destage tick every two requests
	if with.DestagedPages == 0 {
		t.Fatal("destager never flushed")
	}
	if with.LostDirtyPages >= without.LostDirtyPages {
		t.Fatalf("destage did not reduce loss: %d vs %d",
			with.LostDirtyPages, without.LostDirtyPages)
	}
}

func TestProgramFailMidEvictionLeavesPolicyStateUnaffected(t *testing.T) {
	// Scripted program failures hit the first two pages flushed by an
	// eviction batch. The device retries below the cache; every policy-side
	// decision — hits, eviction batches, node counts — must be identical to
	// the fault-free run. Table-driven over the policy shapes: page-striped
	// (LRU), block-bound (BPLRU), and grouped (FAB) flushes.
	policies := []struct {
		name string
		mk   func() cache.Policy
	}{
		{"LRU", func() cache.Policy { return cache.NewLRU(64) }},
		{"BPLRU", func() cache.Policy { return cache.NewBPLRU(64, 8) }},
		{"FAB", func() cache.Policy { return cache.NewFAB(64, 8) }},
	}
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			run := func(cfg fault.Config) *Metrics {
				dev := faultDevice(t, cfg)
				var opts Options
				opts.ApplyFaults(cfg)
				m, err := Run(churnTrace(200), tc.mk(), dev, opts)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			plain := run(fault.Config{})
			faulted := run(fault.Config{FailProgramOps: []int64{1, 2}, CheckInvariants: true})
			if faulted.Device.ProgramRetries != 2 {
				t.Fatalf("ProgramRetries = %d, want 2", faulted.Device.ProgramRetries)
			}
			if plain.PageHits != faulted.PageHits || plain.PageMisses != faulted.PageMisses {
				t.Fatal("cache hit decisions changed under device faults")
			}
			if plain.FlushedPages != faulted.FlushedPages ||
				plain.EvictionBatch.Total() != faulted.EvictionBatch.Total() {
				t.Fatal("eviction batching changed under device faults")
			}
			if plain.MaxNodes != faulted.MaxNodes || plain.Requests != faulted.Requests {
				t.Fatal("policy structure changed under device faults")
			}
			if faulted.Device.InvariantChecks == 0 {
				t.Fatal("no invariant check ran after recovery")
			}
		})
	}
}

func TestDegradedModeStopsReplayGracefully(t *testing.T) {
	cfg := fault.Config{EraseFailProb: 1, ReserveBlocks: 1, CheckInvariants: true}
	dev := faultDevice(t, cfg)
	var opts Options
	opts.ApplyFaults(cfg)
	m, err := Run(churnTrace(400), cache.NewLRU(64), dev, opts)
	if err != nil {
		t.Fatalf("degradation must stop the run, not fail it: %v", err)
	}
	if !m.Degraded {
		t.Fatal("device never degraded with efail=1")
	}
	if m.Requests >= 400 {
		t.Fatal("replay ran to completion despite read-only mode")
	}
	if m.Device.DegradedEntries != 1 || m.Device.RetiredBlocks != 2 {
		t.Fatalf("degradation counters wrong: %+v", m.Device)
	}
	if !dev.Degraded() {
		t.Fatal("device not reporting degraded")
	}
}
