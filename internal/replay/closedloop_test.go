package replay

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// burstTrace: many read misses arriving at the same instant.
func burstTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "burst"}
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: 0, Write: false, Offset: int64(i) * 4096 * 64, Size: 4096,
		})
	}
	return tr
}

func TestClosedLoopSerializesBursts(t *testing.T) {
	open, err := Run(burstTrace(32), cache.NewLRU(64), testDevice(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := Run(burstTrace(32), cache.NewLRU(64), testDevice(t), Options{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Open loop: all 32 reads queue against the device at t=0, so late
	// requests see large queueing delays. Closed loop at QD=1 issues one
	// at a time: every response is roughly one service time.
	if closed.Response.Max() >= open.Response.Max() {
		t.Fatalf("closed-loop max %v >= open-loop max %v",
			closed.Response.Max(), open.Response.Max())
	}
	// At QD=1 the response variance collapses (no queueing in view).
	if closed.Response.StdDev() >= open.Response.StdDev() {
		t.Fatalf("closed-loop sd %v >= open-loop sd %v",
			closed.Response.StdDev(), open.Response.StdDev())
	}
}

func TestClosedLoopRespectsArrivals(t *testing.T) {
	// Requests spaced far apart: the queue never fills and closed loop
	// degenerates to open loop.
	tr := &trace.Trace{Name: "spaced", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 4096},
		{Time: 1_000_000_000, Write: true, Offset: 4096, Size: 4096},
	}}
	open, err := Run(tr, cache.NewLRU(64), testDevice(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := Run(tr, cache.NewLRU(64), testDevice(t), Options{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if open.Response.Sum() != closed.Response.Sum() {
		t.Fatalf("sparse arrivals must behave identically: %v vs %v",
			open.Response.Sum(), closed.Response.Sum())
	}
}

func TestClosedLoopDeeperQueueOverlapsMore(t *testing.T) {
	// With QD=8, eight reads overlap on the 4 channels; the run finishes
	// sooner than QD=1 (sum of issue-to-completion spans shrinks).
	var last [2]float64
	for i, qd := range []int{1, 8} {
		m, err := Run(burstTrace(64), cache.NewLRU(64), testDevice(t), Options{QueueDepth: qd})
		if err != nil {
			t.Fatal(err)
		}
		// Proxy for makespan: the device read counter is equal, but the
		// per-request mean shows queueing at the deeper depth.
		last[i] = m.Response.Mean()
		if m.Device.FlashReads != 64 {
			t.Fatalf("QD=%d: reads %d", qd, m.Device.FlashReads)
		}
	}
	if last[1] <= last[0] {
		t.Fatalf("QD=8 mean response %v should exceed QD=1's %v (more in flight)",
			last[1], last[0])
	}
}

func TestClosedLoopWorksWithReqBlock(t *testing.T) {
	tr := workload.MustGenerate(workload.TS0(), workload.Options{Scale: 0.005})
	m, err := Run(tr, core.New(512), testDevice(t), Options{QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != tr.Len() || m.Response.Count() == 0 {
		t.Fatal("closed-loop replay incomplete")
	}
}
