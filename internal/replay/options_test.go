package replay

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestAllOptionsTogether exercises the full option surface in one run:
// warmup + closed loop + idle flushing + tenant attribution + page fates
// + occupancy series, on a mixed workload.
func TestAllOptionsTogether(t *testing.T) {
	ts0, hm1 := workload.TS0(), workload.HM1()
	tr, err := workload.Mix("combo", workload.Options{Scale: 0.01}, ts0, hm1)
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice(t)
	pol := core.New(1024)
	m, err := Run(tr, pol, dev, Options{
		TrackPageFates: true,
		SeriesInterval: 500,
		WarmupRequests: 100,
		IdleFlushNs:    2_000_000,
		QueueDepth:     16,
		TenantBoundaries: []int64{
			ts0.FootprintPages,
			ts0.FootprintPages + hm1.FootprintPages,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != tr.Len() {
		t.Fatalf("processed %d of %d", m.Requests, tr.Len())
	}
	// Warmup excluded exactly 100 requests from the summaries.
	if m.Response.Count() != int64(tr.Len()-100) {
		t.Fatalf("response count %d, want %d", m.Response.Count(), tr.Len()-100)
	}
	if len(m.Tenants) != 2 {
		t.Fatal("tenants missing")
	}
	// Tenant responses also respect the warmup split.
	if m.Tenants[0].Response.Count()+m.Tenants[1].Response.Count() != int64(tr.Len()-100) {
		t.Fatal("tenant responses do not partition the measured window")
	}
	if m.ListSeries == nil || m.ListSeries["SRL"].Len() == 0 {
		t.Fatal("occupancy series missing")
	}
	if m.InsertBySize == nil || m.InsertBySize.Total() == 0 {
		t.Fatal("page fates missing")
	}
	if err := pol.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
