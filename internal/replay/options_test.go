package replay

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestAllOptionsTogether exercises the full option surface in one run:
// warmup + closed loop + idle flushing + tenant attribution + page fates
// + occupancy series, on a mixed workload.
func TestAllOptionsTogether(t *testing.T) {
	ts0, hm1 := workload.TS0(), workload.HM1()
	tr, err := workload.Mix("combo", workload.Options{Scale: 0.01}, ts0, hm1)
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice(t)
	pol := core.New(1024)
	m, err := Run(tr, pol, dev, Options{
		TrackPageFates: true,
		SeriesInterval: 500,
		WarmupRequests: 100,
		IdleFlushNs:    2_000_000,
		QueueDepth:     16,
		TenantBoundaries: []int64{
			ts0.FootprintPages,
			ts0.FootprintPages + hm1.FootprintPages,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != tr.Len() {
		t.Fatalf("processed %d of %d", m.Requests, tr.Len())
	}
	// Warmup excluded exactly 100 requests from the summaries.
	if m.Response.Count() != int64(tr.Len()-100) {
		t.Fatalf("response count %d, want %d", m.Response.Count(), tr.Len()-100)
	}
	if len(m.Tenants) != 2 {
		t.Fatal("tenants missing")
	}
	// Tenant responses also respect the warmup split.
	if m.Tenants[0].Response.Count()+m.Tenants[1].Response.Count() != int64(tr.Len()-100) {
		t.Fatal("tenant responses do not partition the measured window")
	}
	if m.ListSeries == nil || m.ListSeries["SRL"].Len() == 0 {
		t.Fatal("occupancy series missing")
	}
	if m.InsertBySize == nil || m.InsertBySize.Total() == 0 {
		t.Fatal("page fates missing")
	}
	if err := pol.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsValidate is the table over the option surface: every invalid
// configuration must be rejected up front with a specific error, and the
// boundary-legal ones must pass.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string // substring; empty means valid
	}{
		{"zero-value", Options{}, ""},
		{"full-valid", Options{
			SmallThresholdPages: 8, SeriesInterval: 500, TrackPageFates: true,
			WarmupRequests: 100, IdleFlushNs: 1_000_000, IdleGC: true,
			QueueDepth: 16, TenantBoundaries: []int64{10, 20}, CrashAtRequest: 5,
			DestageNs: 1_000_000,
		}, ""},
		{"negative-threshold", Options{SmallThresholdPages: -1}, "SmallThresholdPages"},
		{"negative-series-interval", Options{SeriesInterval: -10}, "SeriesInterval"},
		{"negative-warmup", Options{WarmupRequests: -1}, "WarmupRequests"},
		{"negative-idle-flush", Options{IdleFlushNs: -1}, "IdleFlushNs"},
		{"idle-gc-without-flush", Options{IdleGC: true}, "IdleGC requires IdleFlushNs"},
		{"negative-queue-depth", Options{QueueDepth: -2}, "QueueDepth"},
		{"negative-backpressure", Options{BackPressureDepth: -1}, "BackPressureDepth"},
		{"negative-crash-point", Options{CrashAtRequest: -1}, "CrashAtRequest"},
		{"negative-destage", Options{DestageNs: -1}, "DestageNs"},
		{"tenant-boundary-zero", Options{TenantBoundaries: []int64{0, 10}}, "tenant boundaries"},
		{"tenant-boundary-negative", Options{TenantBoundaries: []int64{-5, 10}}, "tenant boundaries"},
		{"tenant-boundary-not-increasing", Options{TenantBoundaries: []int64{10, 10}}, "tenant boundaries"},
		{"tenant-boundary-decreasing", Options{TenantBoundaries: []int64{20, 10}}, "tenant boundaries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunRejectsInvalidOptions checks the validation actually gates the
// replay entry points, not just the standalone method.
func TestRunRejectsInvalidOptions(t *testing.T) {
	dev := testDevice(t)
	if _, err := Run(microTrace(), cache.NewLRU(64), dev, Options{QueueDepth: -1}); err == nil {
		t.Fatal("Run accepted a negative queue depth")
	}
	if _, err := RunSource(microTrace().Source(), cache.NewLRU(64), dev, Options{SeriesInterval: -1}); err == nil {
		t.Fatal("RunSource accepted a negative series interval")
	}
	// Streaming + fates without an explicit threshold cannot work: the
	// auto-derivation needs the whole trace.
	if _, err := RunSource(microTrace().Source(), cache.NewLRU(64), dev, Options{TrackPageFates: true}); err == nil ||
		!strings.Contains(err.Error(), "SmallThresholdPages") {
		t.Fatalf("RunSource fates without threshold: err = %v", err)
	}
}
