package replay

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestIdleFlushDrainsDuringGaps(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(8)
	// Fill the buffer, then a long idle gap, then one more write.
	tr := &trace.Trace{Name: "idle", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 8 * 4096},
		{Time: 1_000_000_000, Write: true, Offset: 100 * 4096, Size: 4096},
	}}
	m, err := Run(tr, pol, dev, Options{IdleFlushNs: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// The idle period drains down to half capacity (LRU's EvictIdle
	// stopping rule): 8 → 4 pages, i.e. 4 idle-flushed pages.
	if m.IdleFlushedPages != 4 {
		t.Fatalf("IdleFlushedPages = %d, want 4", m.IdleFlushedPages)
	}
	// The final write then inserts without evicting anything.
	if m.FlushedPages != 4 {
		t.Fatalf("FlushedPages = %d, want 4 (no request-path evictions)", m.FlushedPages)
	}
	if pol.Len() != 5 {
		t.Fatalf("cache pages = %d, want 5 (4 survivors + 1 new)", pol.Len())
	}
}

func TestIdleFlushDisabledByDefault(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(8)
	tr := &trace.Trace{Name: "noidle", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 8 * 4096},
		{Time: 1_000_000_000, Write: true, Offset: 100 * 4096, Size: 4096},
	}}
	m, err := Run(tr, pol, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.IdleFlushedPages != 0 {
		t.Fatal("idle flush ran without being enabled")
	}
}

func TestIdleFlushRespectsShortGaps(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLRU(8)
	tr := &trace.Trace{Name: "shortgaps", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 8 * 4096},
		{Time: 1000, Write: true, Offset: 100 * 4096, Size: 4096}, // 1 µs gap
	}}
	m, err := Run(tr, pol, dev, Options{IdleFlushNs: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if m.IdleFlushedPages != 0 {
		t.Fatalf("idle flush fired on a %dns gap", 1000)
	}
}

func TestIdleFlushSkipsNonEvictorPolicies(t *testing.T) {
	dev := testDevice(t)
	pol := cache.NewLFU(8) // LFU does not implement IdleEvictor
	tr := &trace.Trace{Name: "lfu", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 8 * 4096},
		{Time: 1_000_000_000, Write: true, Offset: 100 * 4096, Size: 4096},
	}}
	m, err := Run(tr, pol, dev, Options{IdleFlushNs: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if m.IdleFlushedPages != 0 {
		t.Fatal("idle flush ran on a policy without EvictIdle")
	}
}

func TestIdleFlushReqBlockKeepsHotBlocks(t *testing.T) {
	dev := testDevice(t)
	pol := core.New(16)
	tr := &trace.Trace{Name: "rb-idle", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 2 * 4096},           // small block
		{Time: 1, Write: true, Offset: 0, Size: 2 * 4096},           // hit → SRL
		{Time: 2, Write: true, Offset: 100 * 4096, Size: 12 * 4096}, // cold large
		{Time: 2_000_000_000, Write: true, Offset: 200 * 4096, Size: 4096},
	}}
	m, err := Run(tr, pol, dev, Options{IdleFlushNs: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if m.IdleFlushedPages == 0 {
		t.Fatal("idle flush never ran")
	}
	// The hot small block must survive; the cold large block is what
	// drained.
	if !pol.Contains(0) || !pol.Contains(1) {
		t.Fatal("idle flush evicted the hot SRL block")
	}
	if pol.Contains(100) {
		t.Fatal("cold large block survived idle flushing")
	}
}

// TestIdleFlushImprovesResponse is the extension's point: with idle
// draining, bursts after idle gaps find buffer space and skip the
// request-path eviction stall.
func TestIdleFlushImprovesResponse(t *testing.T) {
	run := func(idle int64) float64 {
		dev := testDevice(t)
		pol := core.New(1024)
		tr := workload.MustGenerate(workload.SRC12(), workload.Options{Scale: 0.01})
		m, err := Run(tr, pol, dev, Options{IdleFlushNs: idle})
		if err != nil {
			t.Fatal(err)
		}
		return m.WriteResponse.Mean()
	}
	withIdle := run(500_000) // flush during gaps > 0.5 ms
	without := run(0)
	if withIdle > without*1.05 {
		t.Fatalf("idle flushing worsened write response: %.0f vs %.0f ns", withIdle, without)
	}
}

// TestIdleFlushShinesOnBurstyArrivals: ON/OFF arrivals create exactly the
// idle windows Co-Active exploits; draining during OFF periods removes
// eviction stalls from the next burst.
func TestIdleFlushShinesOnBurstyArrivals(t *testing.T) {
	profile := workload.SRC12()
	profile.Burstiness = 10
	tr := workload.MustGenerate(profile, workload.Options{Scale: 0.02})
	run := func(idleNs int64) (mean float64, idlePages int64) {
		dev := testDevice(t)
		pol := core.New(1024)
		m, err := Run(tr, pol, dev, Options{IdleFlushNs: idleNs})
		if err != nil {
			t.Fatal(err)
		}
		return m.WriteResponse.Mean(), m.IdleFlushedPages
	}
	withIdle, pages := run(2_000_000)
	without, _ := run(0)
	if pages == 0 {
		t.Fatal("bursty trace produced no idle windows")
	}
	if withIdle >= without {
		t.Fatalf("idle flushing did not help on bursty arrivals: %.0f vs %.0f ns",
			withIdle, without)
	}
}

func TestIdleGCRunsDuringGaps(t *testing.T) {
	// A device under write pressure plus a bursty trace with idle gaps:
	// background GC must fire during the OFF periods.
	p := ssd.ScaledParams(64)
	p.Precondition = 0.93
	dev, err := ssd.New(p)
	if err != nil {
		t.Fatal(err)
	}
	profile := workload.PROJ0()
	profile.Burstiness = 10
	tr := workload.MustGenerate(profile, workload.Options{Scale: 0.02})
	m, err := Run(tr, core.New(1024), dev, Options{
		IdleFlushNs: 2_000_000,
		IdleGC:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.IdleGCRuns == 0 {
		t.Skip("no idle GC opportunities at this scale")
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
