package replay

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// shardTestDevice mirrors testDevice for sharded specs: every shard gets
// an identical fresh device.
func shardTestDevice(int) (*ssd.Device, error) {
	p := ssd.DefaultParams()
	p.Flash.BlocksPerPlane = 512
	p.Flash.PagesPerBlock = 16
	p.Precondition = 0
	return ssd.New(p)
}

// TestShardedOneShardMatchesRunSource is the sharded engine's anchor
// gate: with one shard, the splitter/relay/merge pipeline must reproduce
// RunSource bit for bit — full Metrics struct, histograms, P² quantiles,
// occupancy series, tenants — for every policy family and both sharing
// modes (they coincide at N=1 by construction).
func TestShardedOneShardMatchesRunSource(t *testing.T) {
	ts0, hm1 := workload.TS0(), workload.HM1()
	mix, err := workload.Mix("eq", workload.Options{Scale: 0.01}, ts0, hm1)
	if err != nil {
		t.Fatal(err)
	}
	text := msrText(t, mix)
	channels := ssd.DefaultParams().Flash.Channels
	policies := []struct {
		name string
		mk   func(capacityPages int) cache.Policy
	}{
		{"LRU", func(n int) cache.Policy { return cache.NewLRU(n) }},
		{"CFLRU", func(n int) cache.Policy { return cache.NewCFLRU(n) }},
		{"FAB", func(n int) cache.Policy { return cache.NewFAB(n, 16) }},
		{"BPLRU", func(n int) cache.Policy { return cache.NewBPLRU(n, 16) }},
		{"VBBMS", func(n int) cache.Policy { return cache.NewVBBMS(n) }},
		{"PUD-LRU", func(n int) cache.Policy { return cache.NewPUDLRU(n, 16) }},
		{"ECR", func(n int) cache.Policy { return cache.NewECR(n, channels) }},
		{"Req-block", func(n int) cache.Policy { return core.New(n) }},
	}
	opts := Options{
		TrackPageFates:      true,
		SmallThresholdPages: 4,
		SeriesInterval:      500,
		WarmupRequests:      100,
		IdleFlushNs:         2_000_000,
		QueueDepth:          8,
		TenantBoundaries: []int64{
			ts0.FootprintPages,
			ts0.FootprintPages + hm1.FootprintPages,
		},
	}
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			want, err := RunSource(trace.Scan(bytes.NewReader(text), "eq"),
				tc.mk(1024), testDevice(t), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, sharing := range []sim.SharingMode{sim.SharingShared, sim.SharingEqual} {
				got, err := RunSharded(trace.Scan(bytes.NewReader(text), "eq"), ShardSpec{
					Shards:             1,
					Sharing:            sharing,
					TotalCapacityPages: 1024,
					NewPolicy:          func(_, n int) cache.Policy { return tc.mk(n) },
					NewDevice:          shardTestDevice,
				}, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("sharded(1, %v) diverged from RunSource:\nunsharded: %+v\nsharded:   %+v",
						sharing, want, got)
				}
			}
		})
	}
}

// TestShardedOneShardMatchesRunSourceWithFaults repeats the one-shard
// equivalence gate under the fault harness: injected failures with a
// crash point and periodic destaging, and a degraded (read-only) stop.
// The crash path is the interesting one — sharding replaces the Stop-based
// crash observer with a splitter stream cut, and the two must agree on
// every metric including the lost dirty pages.
func TestShardedOneShardMatchesRunSourceWithFaults(t *testing.T) {
	text := msrText(t, churnTrace(400))
	configs := []struct {
		name string
		cfg  fault.Config
	}{
		{"seeded-faults-crash-destage", fault.Config{
			Seed:            3,
			ProgramFailProb: 0.002,
			GrownBadProb:    0.01,
			ReserveBlocks:   1000,
			CheckInvariants: true,
			CrashAtRequest:  120,
			DestageNs:       2_000_000,
		}},
		{"degraded-stop", fault.Config{
			EraseFailProb:   1,
			ReserveBlocks:   1,
			CheckInvariants: true,
		}},
	}
	newDev := func(cfg fault.Config) func(int) (*ssd.Device, error) {
		return func(int) (*ssd.Device, error) {
			p := ssd.DefaultParams()
			p.Flash.Channels = 2
			p.Flash.ChipsPerChannel = 2
			p.Flash.BlocksPerPlane = 16
			p.Flash.PagesPerBlock = 8
			p.Flash.OverProvision = 0.25
			p.Flash.GCThreshold = 0.25
			p.Precondition = 0
			p.Faults = cfg
			return ssd.New(p)
		}
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{SmallThresholdPages: 8}
			opts.ApplyFaults(tc.cfg)
			want, err := RunSource(trace.Scan(bytes.NewReader(text), "churn"),
				cache.NewLRU(64), faultDevice(t, tc.cfg), opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSharded(trace.Scan(bytes.NewReader(text), "churn"), ShardSpec{
				Shards:             1,
				Sharing:            sim.SharingEqual,
				TotalCapacityPages: 64,
				NewPolicy:          func(_, n int) cache.Policy { return cache.NewLRU(n) },
				NewDevice:          newDev(tc.cfg),
			}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("faulted sharded(1) diverged:\nunsharded: %+v\nsharded:   %+v", want, got)
			}
		})
	}
}

// TestShardedDeterministicAcrossRuns pins the sequence-number merge: a
// multi-shard replay run twice must produce DeepEqual metrics AND a
// byte-identical trace-span stream, for both sharing modes, with tenant
// routing and with hash routing. Goroutine scheduling varies between the
// runs; the merge must hide it completely.
func TestShardedDeterministicAcrossRuns(t *testing.T) {
	leakcheck.Check(t)
	ts0, hm1 := workload.TS0(), workload.HM1()
	mix, err := workload.Mix("eq", workload.Options{Scale: 0.01}, ts0, hm1)
	if err != nil {
		t.Fatal(err)
	}
	text := msrText(t, mix)
	boundaries := []int64{ts0.FootprintPages, ts0.FootprintPages + hm1.FootprintPages}

	cases := []struct {
		name    string
		shards  int
		sharing sim.SharingMode
		tenants []int64
	}{
		{"2-shards-shared-tenants", 2, sim.SharingShared, boundaries},
		{"2-shards-equal-tenants", 2, sim.SharingEqual, boundaries},
		{"4-shards-shared-hash", 4, sim.SharingShared, nil},
		{"4-shards-equal-hash", 4, sim.SharingEqual, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() (*Metrics, []byte) {
				var spans bytes.Buffer
				tracer := obs.NewTracer(&spans, 1, 42)
				opts := Options{
					TrackPageFates:      true,
					SmallThresholdPages: 4,
					SeriesInterval:      500,
					WarmupRequests:      100,
					IdleFlushNs:         2_000_000,
					QueueDepth:          8,
					TenantBoundaries:    tc.tenants,
					Observers:           []sim.Observer{tracer},
				}
				// Hash-region size only without explicit boundaries: the
				// combination is rejected as contradictory (ShardSpec.Validate).
				regionPages := int64(64)
				if len(tc.tenants) > 0 {
					regionPages = 0
				}
				m, err := RunSharded(trace.Scan(bytes.NewReader(text), "eq"), ShardSpec{
					Shards:             tc.shards,
					Sharing:            tc.sharing,
					TotalCapacityPages: 1024,
					NewPolicy:          func(_, n int) cache.Policy { return core.New(n) },
					NewDevice:          shardTestDevice,
					TenantRegionPages:  regionPages,
				}, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := tracer.Close(); err != nil {
					t.Fatal(err)
				}
				return m, spans.Bytes()
			}
			m1, spans1 := run()
			m2, spans2 := run()
			if !reflect.DeepEqual(m1, m2) {
				t.Fatalf("sharded replay not deterministic:\nrun1: %+v\nrun2: %+v", m1, m2)
			}
			if !bytes.Equal(spans1, spans2) {
				t.Fatalf("trace-span streams differ between runs (%d vs %d bytes)",
					len(spans1), len(spans2))
			}
			if m1.Requests == 0 {
				t.Fatal("sharded replay processed no requests")
			}
		})
	}
}

// TestShardedCrashDeterministic pins the splitter's global stream cut: a
// multi-shard crash run is deterministic and loses the dirty pages still
// buffered across all shards.
func TestShardedCrashDeterministic(t *testing.T) {
	leakcheck.Check(t)
	text := msrText(t, churnTrace(400))
	run := func() *Metrics {
		m, err := RunSharded(trace.Scan(bytes.NewReader(text), "churn"), ShardSpec{
			Shards:             4,
			Sharing:            sim.SharingEqual,
			TotalCapacityPages: 256,
			NewPolicy:          func(_, n int) cache.Policy { return cache.NewLRU(n) },
			NewDevice:          shardTestDevice,
			TenantRegionPages:  16,
		}, Options{CrashAtRequest: 200})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := run(), run()
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("crash run not deterministic:\nrun1: %+v\nrun2: %+v", m1, m2)
	}
	if !m1.Crashed || m1.CrashedAtRequest != 200 {
		t.Fatalf("Crashed/CrashedAtRequest = %v/%d, want true/200", m1.Crashed, m1.CrashedAtRequest)
	}
	if m1.Requests != 200 {
		t.Fatalf("Requests = %d, want 200 (stream cut at the crash ordinal)", m1.Requests)
	}
	if m1.LostDirtyPages == 0 {
		t.Fatal("LostDirtyPages = 0, want buffered dirty pages summed across shards")
	}
}

// TestShardedSharingModesDiffer checks the capacity semantics actually
// differ: under a skewed workload, SHARED lets the hot shard borrow global
// capacity (fewer flushed pages) while EQUAL caps it at capacity/N.
func TestShardedSharingModesDiffer(t *testing.T) {
	// Heavily skewed: almost all traffic lands in one hash region.
	reqs := make([]trace.Request, 600)
	for i := range reqs {
		page := int64(i*4) % 512 // hot 512-page working set → one region
		if i%16 == 15 {
			page = 4096 + int64(i) // occasional cold touch elsewhere
		}
		reqs[i] = trace.Request{Time: int64(i) * 1_000_000, Write: true, Offset: page * 4096, Size: 4 * 4096}
	}
	text := msrText(t, &trace.Trace{Name: "skew", Requests: reqs})
	run := func(sharing sim.SharingMode) *Metrics {
		m, err := RunSharded(trace.Scan(bytes.NewReader(text), "skew"), ShardSpec{
			Shards:             4,
			Sharing:            sharing,
			TotalCapacityPages: 1024,
			NewPolicy:          func(_, n int) cache.Policy { return cache.NewLRU(n) },
			NewDevice:          shardTestDevice,
			TenantRegionPages:  1024,
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	shared, equal := run(sim.SharingShared), run(sim.SharingEqual)
	if shared.HitRatio() <= equal.HitRatio() {
		t.Fatalf("SHARED hit ratio %.3f not above EQUAL %.3f on a skewed workload",
			shared.HitRatio(), equal.HitRatio())
	}
}

// TestBackPressureAdmission checks the bounded destage backlog: depth 0
// leaves the replay bit-identical, a tight depth produces admission stalls
// that delay response times, and the stall counters report it.
func TestBackPressureAdmission(t *testing.T) {
	text := msrText(t, churnTrace(400))
	run := func(depth int) *Metrics {
		m, err := RunSource(trace.Scan(bytes.NewReader(text), "churn"),
			cache.NewLRU(64), testDevice(t), Options{BackPressureDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base := run(0)
	if base.BackPressureStalls != 0 || base.BackPressureStallNs != 0 {
		t.Fatalf("depth 0 recorded stalls: %d/%dns", base.BackPressureStalls, base.BackPressureStallNs)
	}
	tight := run(1)
	if tight.BackPressureStalls == 0 || tight.BackPressureStallNs == 0 {
		t.Fatal("depth 1 recorded no stalls on a churn workload")
	}
	if tight.Response.Mean() <= base.Response.Mean() {
		t.Fatalf("back-pressure did not delay responses: %.0f <= %.0f",
			tight.Response.Mean(), base.Response.Mean())
	}
	// Back-pressure delays admissions; it never changes what gets written.
	if tight.Device.FlashWrites != base.Device.FlashWrites {
		t.Fatalf("back-pressure changed flash writes: %d vs %d",
			tight.Device.FlashWrites, base.Device.FlashWrites)
	}
}
