package replay

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/flash"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// ShardSpec describes the partitioning of a sharded replay: how many
// shards, how the global capacity divides among them, and how to build
// each shard's policy and device. Everything measurement-related stays in
// Options — a sharded run honors the same instrumentation set.
type ShardSpec struct {
	// Shards is the partition count, >= 1. One shard reproduces RunSource
	// bit-identically (the equivalence tests pin this).
	Shards int
	// Sharing divides TotalCapacityPages: sim.SharingShared gives every
	// shard the full capacity with a soft quota of capacity/N,
	// sim.SharingEqual hard-partitions into N slices.
	Sharing sim.SharingMode
	// TotalCapacityPages is the global write-buffer capacity.
	TotalCapacityPages int
	// NewPolicy builds shard k's policy with its capacity slice.
	NewPolicy func(shard, capacityPages int) cache.Policy
	// NewDevice builds shard k's device.
	NewDevice func(shard int) (*ssd.Device, error)
	// TenantRegionPages sizes the hash regions used to route requests
	// when Options.TenantBoundaries is empty (0 = sim's default).
	TenantRegionPages int64
	// ShardObservers optionally attaches extra observers to each shard's
	// engine (per-shard telemetry); they run on the shard goroutine.
	ShardObservers func(shard int, eng *sim.Engine) []sim.Observer
}

// Validate rejects shard specs that cannot mean anything, including combos
// that contradict the replay options (the options route requests when
// TenantBoundaries is set, making the spec's hash-region size dead
// configuration). RunSharded calls it first; sim.NewSharded re-checks the
// engine-level subset as defense in depth.
func (s *ShardSpec) Validate(opts Options) error {
	if s.Shards < 1 {
		return fmt.Errorf("replay: shards %d, need >= 1", s.Shards)
	}
	if s.NewPolicy == nil || s.NewDevice == nil {
		return fmt.Errorf("replay: ShardSpec needs NewPolicy and NewDevice")
	}
	if s.TotalCapacityPages < s.Shards {
		return fmt.Errorf("replay: capacity %d pages across %d shards leaves empty shards",
			s.TotalCapacityPages, s.Shards)
	}
	if s.TenantRegionPages < 0 {
		return fmt.Errorf("replay: TenantRegionPages %d is negative (0 selects the default)", s.TenantRegionPages)
	}
	if s.TenantRegionPages > 0 && len(opts.TenantBoundaries) > 0 {
		return fmt.Errorf("replay: TenantRegionPages %d conflicts with %d explicit tenant boundaries: boundaries route requests, the hash region size would be ignored",
			s.TenantRegionPages, len(opts.TenantBoundaries))
	}
	return nil
}

// RunSharded replays a streaming source across Spec.Shards parallel shard
// engines, each owning one policy instance and one device, and folds the
// deterministically merged event stream into the same Metrics RunSource
// produces. Requests route to shards by tenant (Options.TenantBoundaries)
// or by hashed address region; events re-merge in global trace order, so
// the metrics are deterministic run-to-run regardless of scheduling, and
// with Shards == 1 they are bit-identical to RunSource.
//
// Two observers change shape under sharding: the crash harness becomes a
// global stream cut (the splitter stops feeding at the crash ordinal and
// the dirty pages are summed across shards afterwards), and occupancy
// series require cache.OccupancySampler policies (per-shard samples are
// captured on the shard goroutine and summed on the merged stream).
// RunShardedTrace is Run's sharded counterpart: it derives the small/large
// threshold from the materialized trace (which needs the device page size,
// so pass it explicitly) and then streams the trace through RunSharded.
func RunShardedTrace(tr *trace.Trace, pageSize int64, spec ShardSpec, opts Options) (*Metrics, error) {
	if opts.SmallThresholdPages == 0 {
		opts.SmallThresholdPages = meanRequestPages(tr, pageSize)
	}
	return RunSharded(tr.Source(), spec, opts)
}

func RunSharded(src trace.Source, spec ShardSpec, opts Options) (*Metrics, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(opts); err != nil {
		return nil, err
	}
	if opts.TrackPageFates && opts.SmallThresholdPages == 0 {
		return nil, fmt.Errorf("replay: TrackPageFates on a streaming source needs an explicit SmallThresholdPages (Run derives it from the materialized trace)")
	}

	eng, err := sim.NewSharded(src, sim.ShardConfig{
		Shards:             spec.Shards,
		Sharing:            spec.Sharing,
		TotalCapacityPages: spec.TotalCapacityPages,
		NewPolicy:          spec.NewPolicy,
		NewDevice:          spec.NewDevice,
		TenantBoundaries:   opts.TenantBoundaries,
		TenantRegionPages:  spec.TenantRegionPages,
		BackPressureDepth:  opts.BackPressureDepth,
		Engine: sim.Config{
			WarmupRequests: opts.WarmupRequests,
			IdleFlushNs:    opts.IdleFlushNs,
			IdleGC:         opts.IdleGC,
			QueueDepth:     opts.QueueDepth,
			DestageNs:      opts.DestageNs,
		},
		StopAfterRequests: opts.CrashAtRequest,
		CaptureOccupancy:  opts.SeriesInterval > 0,
		ShardObservers:    spec.ShardObservers,
	})
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	pols := eng.ShardPolicies()

	m := &Metrics{
		Trace:               src.Name(),
		Policy:              pols[0].Name(),
		EvictionBatch:       metrics.NewHist(512),
		NodeBytes:           pols[0].NodeBytes(),
		ResponseP50:         metrics.NewQuantile(0.5),
		ResponseP99:         metrics.NewQuantile(0.99),
		ResponseP999:        metrics.NewQuantile(0.999),
		SmallThresholdPages: opts.SmallThresholdPages,
	}

	// The merged stream carries the same observer plane RunSource builds;
	// the observers cannot tell they are downstream of a merge (they get a
	// nil engine, which only the crash observer — replaced here — used).
	core := &coreObserver{m: m}
	eng.Observe(core)
	if opts.TrackPageFates {
		m.InsertBySize = metrics.NewHist(256)
		m.HitBySize = metrics.NewHist(256)
		eng.Observe(&fateObserver{m: m, fates: make(map[int64]pageFate, spec.TotalCapacityPages)})
	}
	if n := len(opts.TenantBoundaries); n > 0 {
		m.Tenants = make([]TenantMetrics, n)
		var prev int64
		for i, b := range opts.TenantBoundaries {
			m.Tenants[i] = TenantMetrics{FirstPage: prev, LastPage: b}
			prev = b
		}
		eng.Observe(&tenantObserver{m: m})
	}
	if opts.SeriesInterval > 0 {
		if obs := newShardedOccupancyObserver(m, pols, opts.SeriesInterval); obs != nil {
			eng.Observe(obs)
		}
	}
	eng.Observe(opts.Observers...)

	done, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}

	// Crash accounting: the splitter cut the stream at the crash ordinal;
	// the dirty pages still buffered anywhere are the simulated loss.
	if opts.CrashAtRequest > 0 && eng.StoppedFeeding() && done.Processed >= opts.CrashAtRequest {
		m.Crashed = true
		m.CrashedAtRequest = done.Processed
		var lost int64
		for _, pol := range pols {
			if dp, ok := pol.(cache.DirtyPager); ok {
				lost += int64(dp.DirtyPages())
			} else {
				lost += int64(pol.Len())
			}
		}
		m.LostDirtyPages = lost
	}

	aggregateShardDevices(m, eng.ShardDevices(), done, core.dramPages)
	return m, nil
}

// aggregateShardDevices folds the per-shard device snapshots into the
// single-device fields of Metrics: counters and energies sum, wear and
// utilization merge distributionally. One shard takes the exact
// single-device path so Shards == 1 stays bit-identical to RunSource.
func aggregateShardDevices(m *Metrics, devs []*ssd.Device, done sim.DoneEvent, dramPages int64) {
	ep := ssd.DefaultEnergyParams()
	horizon := int64(0)
	if done.HasRequests {
		horizon = done.LastArrival - done.FirstArrival
	}
	if len(devs) == 1 {
		dev := devs[0]
		m.Device = dev.Counters()
		m.BackPressureStalls, m.BackPressureStallNs = dev.BackPressureStalls()
		m.Endurance = dev.Endurance(0)
		m.Energy = dev.Energy(ep)
		m.DRAMEnergyUJ = float64(dramPages) * ep.DRAMAccessUJ
		if done.HasRequests {
			m.Utilization = dev.Utilization(horizon)
		}
		return
	}

	var wear flash.Wear
	var meanErase, variance float64
	var util flash.Utilization
	end := ssd.Endurance{PELimit: ssd.DefaultPELimit}
	n := float64(len(devs))
	for i, dev := range devs {
		c := dev.Counters()
		m.Device.FlashWrites += c.FlashWrites
		m.Device.FlashReads += c.FlashReads
		m.Device.GCMigrations += c.GCMigrations
		m.Device.GCRuns += c.GCRuns
		m.Device.Erases += c.Erases
		m.Device.ProgramRetries += c.ProgramRetries
		m.Device.RetiredBlocks += c.RetiredBlocks
		m.Device.InjectedProgramFails += c.InjectedProgramFails
		m.Device.InjectedEraseFails += c.InjectedEraseFails
		m.Device.GrownBadBlocks += c.GrownBadBlocks
		m.Device.DegradedEntries += c.DegradedEntries
		m.Device.InvariantChecks += c.InvariantChecks
		stalls, stallNs := dev.BackPressureStalls()
		m.BackPressureStalls += stalls
		m.BackPressureStallNs += stallNs

		e := dev.Energy(ep)
		m.Energy.ReadsUJ += e.ReadsUJ
		m.Energy.ProgramsUJ += e.ProgramsUJ
		m.Energy.ErasesUJ += e.ErasesUJ
		m.Energy.GCUJ += e.GCUJ
		m.Energy.TotalUJ += e.TotalUJ

		ed := dev.Endurance(0)
		// Worst shard bounds the fleet's life; projections sum (each
		// shard absorbs its own host stream at its own amplification).
		if ed.LifeConsumed > end.LifeConsumed {
			end.LifeConsumed = ed.LifeConsumed
		}
		end.ProjectedHostPages += ed.ProjectedHostPages
		w := ed.Wear
		if i == 0 || w.MinErase < wear.MinErase {
			wear.MinErase = w.MinErase
		}
		if w.MaxErase > wear.MaxErase {
			wear.MaxErase = w.MaxErase
		}
		wear.TotalErases += w.TotalErases
		meanErase += w.MeanErase / n
		variance += (w.StdDev*w.StdDev + w.MeanErase*w.MeanErase) / n

		if done.HasRequests {
			u := dev.Utilization(horizon)
			util.MeanChannel += u.MeanChannel / n
			util.MeanChip += u.MeanChip / n
			if u.MaxChannel > util.MaxChannel {
				util.MaxChannel = u.MaxChannel
			}
			if u.MaxChip > util.MaxChip {
				util.MaxChip = u.MaxChip
			}
		}
	}
	wear.MeanErase = meanErase
	// Pooled standard deviation over equal-sized shard arrays:
	// E[x²] − (E[x])², with E[x²] reconstructed from per-shard moments.
	if v := variance - meanErase*meanErase; v > 0 {
		wear.StdDev = math.Sqrt(v)
	}
	end.Wear = wear
	end.WriteAmplification = m.Device.WriteAmplification()
	m.Endurance = end
	m.DRAMEnergyUJ = float64(dramPages) * ep.DRAMAccessUJ
	if util.MeanChannel > 0 {
		util.ChannelImbalance = util.MaxChannel / util.MeanChannel
	}
	m.Utilization = util
}

// shardedOccupancyObserver is the sharded form of occupancyObserver: each
// shard's relay captures the policy's occupancy sample at every result
// (cache.OccupancySampler policies only), and this observer sums the
// latest sample of every shard into the global list series.
type shardedOccupancyObserver struct {
	sim.NopObserver
	slots    []*metrics.Series
	perShard [][]int // latest sample per shard, indexed by list slot
}

// newShardedOccupancyObserver returns nil when the policy does not expose
// sampled occupancy (reporter-only policies are unsupported under
// sharding: their map-based snapshots cannot be captured race-free).
func newShardedOccupancyObserver(m *Metrics, pols []cache.Policy, interval int64) *shardedOccupancyObserver {
	sampler, ok := pols[0].(cache.OccupancySampler)
	if !ok {
		return nil
	}
	names := sampler.OccupancyNames()
	m.ListSeries = make(map[string]*metrics.Series)
	o := &shardedOccupancyObserver{
		slots:    make([]*metrics.Series, len(names)),
		perShard: make([][]int, len(pols)),
	}
	for i, name := range names {
		s := metrics.NewSeries(interval)
		m.ListSeries[name] = s
		o.slots[i] = s
	}
	for k := range o.perShard {
		o.perShard[k] = make([]int, len(names))
	}
	return o
}

// OnShardResult records the producing shard's fresh sample and ticks the
// series with the cross-shard sums, exactly once per merged result — the
// same cadence occupancyObserver has on a single engine.
func (o *shardedOccupancyObserver) OnShardResult(shard int, occ []int, ev *sim.ResultEvent) {
	if len(occ) == len(o.perShard[shard]) {
		copy(o.perShard[shard], occ)
	}
	for s, slot := range o.slots {
		sum := 0
		for k := range o.perShard {
			sum += o.perShard[k][s]
		}
		slot.Tick(int64(ev.Processed), float64(sum))
	}
}
