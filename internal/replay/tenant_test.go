package replay

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestTenantMetricsSplitByBoundary(t *testing.T) {
	dev := testDevice(t)
	tr := &trace.Trace{Name: "tenants", Requests: []trace.Request{
		{Time: 0, Write: true, Offset: 0, Size: 2 * 4096},           // tenant 0
		{Time: 1, Write: true, Offset: 0, Size: 2 * 4096},           // tenant 0, hits
		{Time: 2, Write: true, Offset: 1000 * 4096, Size: 2 * 4096}, // tenant 1
	}}
	m, err := Run(tr, cache.NewLRU(64), dev, Options{
		TenantBoundaries: []int64{500, 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(m.Tenants))
	}
	t0, t1 := m.Tenants[0], m.Tenants[1]
	if t0.PageHits != 2 || t0.PageMisses != 2 {
		t.Fatalf("tenant 0: %d/%d, want 2/2", t0.PageHits, t0.PageMisses)
	}
	if t1.PageHits != 0 || t1.PageMisses != 2 {
		t.Fatalf("tenant 1: %d/%d, want 0/2", t1.PageHits, t1.PageMisses)
	}
	if t0.HitRatio() != 0.5 || t1.HitRatio() != 0 {
		t.Fatalf("hit ratios: %v/%v", t0.HitRatio(), t1.HitRatio())
	}
	if t0.Response.Count() != 2 || t1.Response.Count() != 1 {
		t.Fatalf("response counts: %d/%d", t0.Response.Count(), t1.Response.Count())
	}
}

func TestTenantMetricsRejectBadBoundaries(t *testing.T) {
	dev := testDevice(t)
	_, err := Run(microTrace(), cache.NewLRU(64), dev, Options{
		TenantBoundaries: []int64{100, 50},
	})
	if err == nil {
		t.Fatal("non-increasing boundaries accepted")
	}
}

func TestTenantMetricsWithMixedWorkload(t *testing.T) {
	ts0, hm1 := workload.TS0(), workload.HM1()
	tr, err := workload.Mix("mix", workload.Options{Scale: 0.01}, ts0, hm1)
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice(t)
	m, err := Run(tr, core.New(1024), dev, Options{
		TenantBoundaries: []int64{
			ts0.FootprintPages,
			ts0.FootprintPages + hm1.FootprintPages,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sumHits := m.Tenants[0].PageHits + m.Tenants[1].PageHits
	if sumHits != m.PageHits {
		t.Fatalf("tenant hits %d != total %d", sumHits, m.PageHits)
	}
	sumMisses := m.Tenants[0].PageMisses + m.Tenants[1].PageMisses
	if sumMisses != m.PageMisses {
		t.Fatalf("tenant misses %d != total %d", sumMisses, m.PageMisses)
	}
	if m.Tenants[0].Response.Count()+m.Tenants[1].Response.Count() != int64(m.Requests) {
		t.Fatal("tenant request counts do not partition the run")
	}
	// The write-heavy tenant must show a higher hit ratio than the
	// read-heavy one (write buffer).
	if m.Tenants[0].HitRatio() <= m.Tenants[1].HitRatio() {
		t.Logf("note: ts_0 %.3f vs hm_1 %.3f", m.Tenants[0].HitRatio(), m.Tenants[1].HitRatio())
	}
}
