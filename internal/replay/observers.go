package replay

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// This file is the replay's measurement plane: sim.Observer
// implementations that fold engine events into Metrics. The engine
// simulates, these observers measure — RunSource picks which to attach
// based on Options. All of them are allocation-free per event so the
// zero-alloc steady state of the hot path survives the instrumentation.

// coreObserver accumulates the always-on metrics: hit/miss counts,
// response summaries and quantiles, eviction-batch histogram and flush
// counters, node gauges, and the end-of-run device snapshot (counters,
// endurance, energy, utilization).
type coreObserver struct {
	m         *Metrics
	nodeSum   float64
	dramPages int64
}

func (c *coreObserver) OnRequest(*sim.Engine, *sim.RequestEvent) {}

func (c *coreObserver) OnEviction(_ *sim.Engine, ev *sim.EvictionEvent) {
	n := int64(len(ev.LPNs))
	if ev.Kind == sim.EvictClean {
		c.m.CleanDrops += n
		return
	}
	c.m.EvictionBatch.Observe(len(ev.LPNs))
	c.m.FlushedPages += n
	switch ev.Kind {
	case sim.EvictIdle:
		c.m.IdleFlushedPages += n
	case sim.EvictDestage:
		c.m.DestagedPages += n
	}
}

func (c *coreObserver) OnResult(_ *sim.Engine, ev *sim.ResultEvent) {
	m, req, res := c.m, ev.Req, ev.Res
	c.dramPages += int64(res.Hits + res.Inserted)
	m.BypassedPages += int64(len(res.Bypass))
	m.PrefetchedPages += int64(ev.Prefetched)
	if req.Warm {
		m.PageHits += int64(res.Hits)
		m.PageMisses += int64(res.Misses)
		if req.Write {
			m.WritePageHits += int64(res.Hits)
		} else {
			m.ReadPageHits += int64(res.Hits)
		}
		resp := float64(ev.Completion - req.Issue)
		m.Response.Observe(resp)
		m.ResponseP50.Observe(resp)
		m.ResponseP99.Observe(resp)
		m.ResponseP999.Observe(resp)
		if req.Write {
			m.WriteResponse.Observe(resp)
		} else {
			m.ReadResponse.Observe(resp)
		}
	}
	if ev.NodeCount > m.MaxNodes {
		m.MaxNodes = ev.NodeCount
	}
	c.nodeSum += float64(ev.NodeCount)
	m.Requests = ev.Processed
}

func (c *coreObserver) OnDone(e *sim.Engine, ev *sim.DoneEvent) {
	m := c.m
	if m.Requests > 0 {
		m.MeanNodes = c.nodeSum / float64(m.Requests)
	}
	m.Degraded = ev.Degraded
	m.DegradedAtRequest = ev.DegradedAtRequest
	m.IdleGCRuns = ev.IdleGCRuns
	dev := e.Device()
	if dev == nil {
		// Sharded run: no single device exists. RunSharded aggregates the
		// per-shard device snapshots after the merge instead.
		return
	}
	m.Device = dev.Counters()
	m.GCSched = dev.GCSchedStats()
	m.BackPressureStalls, m.BackPressureStallNs = dev.BackPressureStalls()
	m.Endurance = dev.Endurance(0)
	ep := ssd.DefaultEnergyParams()
	m.Energy = dev.Energy(ep)
	m.DRAMEnergyUJ = float64(c.dramPages) * ep.DRAMAccessUJ
	if ev.HasRequests {
		// Open-loop utilization is defined over the trace horizon — the
		// whole source's time span, even when the run stopped early.
		m.Utilization = dev.Utilization(ev.LastArrival - ev.FirstArrival)
	}
}

// pageFate tracks one resident page for the Fig. 2/3 statistics.
type pageFate struct {
	insertReqPages int32 // size (pages) of the write request that inserted it
	large          bool
	hit            bool
}

// fateObserver runs the Fig. 2/3 shadow model: a map of resident pages
// keyed by LPN, updated on every request (before the cache sees it — the
// model is policy-independent) and closed out on every eviction. The
// shadow model can diverge from the policy by at most the pages a request
// evicts of itself (requests larger than the whole buffer), which the
// experiments never produce.
type fateObserver struct {
	m     *Metrics
	fates map[int64]pageFate
}

// OnRequest updates the per-page bookkeeping. A page found in the fate map
// was resident when the request arrived, so touching it is a hit
// attributed to the size of the write request that inserted it (Fig. 2
// keys both CDFs by inserting-request size); a written page not in the map
// is a fresh insertion.
func (f *fateObserver) OnRequest(_ *sim.Engine, ev *sim.RequestEvent) {
	m := f.m
	large := ev.Pages > m.SmallThresholdPages
	lpn := ev.LPN
	for i := 0; i < ev.Pages; i++ {
		if pf, ok := f.fates[lpn]; ok {
			if !pf.hit {
				pf.hit = true
				f.fates[lpn] = pf
			}
			m.HitBySize.Observe(int(pf.insertReqPages))
		} else if ev.Write {
			f.fates[lpn] = pageFate{insertReqPages: int32(ev.Pages), large: large}
			m.InsertBySize.Observe(ev.Pages)
		}
		lpn++
	}
}

// OnEviction closes the lifetime of evicted pages, feeding Fig. 3. Every
// kind counts: clean drops and idle/destage flushes end a residency just
// like request-path evictions.
func (f *fateObserver) OnEviction(_ *sim.Engine, ev *sim.EvictionEvent) {
	m := f.m
	for _, lpn := range ev.LPNs {
		pf, ok := f.fates[lpn]
		if !ok {
			continue
		}
		if pf.large {
			m.LargeInserted++
			if pf.hit {
				m.LargeHitBeforeEviction++
			}
		}
		delete(f.fates, lpn)
	}
}

func (f *fateObserver) OnResult(*sim.Engine, *sim.ResultEvent) {}

// OnDone counts pages still resident at the end: they never got evicted;
// their fates count too.
func (f *fateObserver) OnDone(*sim.Engine, *sim.DoneEvent) {
	m := f.m
	for _, pf := range f.fates {
		if pf.large {
			m.LargeInserted++
			if pf.hit {
				m.LargeHitBeforeEviction++
			}
		}
	}
}

// tenantObserver attributes warm hits and responses to the tenant owning
// the request's first page (Options.TenantBoundaries).
type tenantObserver struct {
	m *Metrics
}

func (t *tenantObserver) tenantOf(page int64) *TenantMetrics {
	// Binary search over the sorted boundaries: tenants are contiguous
	// ranges, so the owner is the first tenant whose LastPage exceeds the
	// page. O(log tenants) per result instead of a linear scan.
	tenants := t.m.Tenants
	i := sort.Search(len(tenants), func(i int) bool { return page < tenants[i].LastPage })
	if i == len(tenants) {
		return nil
	}
	return &tenants[i]
}

func (t *tenantObserver) OnRequest(*sim.Engine, *sim.RequestEvent)   {}
func (t *tenantObserver) OnEviction(*sim.Engine, *sim.EvictionEvent) {}

func (t *tenantObserver) OnResult(_ *sim.Engine, ev *sim.ResultEvent) {
	if !ev.Req.Warm {
		return
	}
	tm := t.tenantOf(ev.Req.LPN)
	if tm == nil {
		return
	}
	tm.PageHits += int64(ev.Res.Hits)
	tm.PageMisses += int64(ev.Res.Misses)
	tm.Response.Observe(float64(ev.Completion - ev.Req.Issue))
}

func (t *tenantObserver) OnDone(*sim.Engine, *sim.DoneEvent) {}

// occupancyObserver samples each internal list's page count every
// SeriesInterval requests (Fig. 13). OccupancySampler policies expose a
// fixed name order and append into a reusable buffer, so per-sample cost
// is an indexed loop instead of a freshly allocated map (ListPages stays
// the fallback for reporter-only policies).
type occupancyObserver struct {
	m         *Metrics
	occupancy cache.OccupancyReporter
	sampler   cache.OccupancySampler
	slots     []*metrics.Series
	buf       []int
}

// newOccupancyObserver returns nil when the policy reports no occupancy.
func newOccupancyObserver(m *Metrics, pol cache.Policy, interval int64) *occupancyObserver {
	occupancy, ok := pol.(cache.OccupancyReporter)
	if !ok {
		return nil
	}
	o := &occupancyObserver{m: m, occupancy: occupancy}
	m.ListSeries = make(map[string]*metrics.Series)
	if sampler, ok := pol.(cache.OccupancySampler); ok {
		o.sampler = sampler
		names := sampler.OccupancyNames()
		o.slots = make([]*metrics.Series, len(names))
		o.buf = make([]int, 0, len(names))
		for i, name := range names {
			s := metrics.NewSeries(interval)
			m.ListSeries[name] = s
			o.slots[i] = s
		}
		return o
	}
	for name := range occupancy.ListPages() {
		m.ListSeries[name] = metrics.NewSeries(interval)
	}
	return o
}

func (o *occupancyObserver) OnRequest(*sim.Engine, *sim.RequestEvent)   {}
func (o *occupancyObserver) OnEviction(*sim.Engine, *sim.EvictionEvent) {}

func (o *occupancyObserver) OnResult(_ *sim.Engine, ev *sim.ResultEvent) {
	if o.slots != nil {
		o.buf = o.sampler.AppendOccupancy(o.buf[:0])
		for s, slot := range o.slots {
			slot.Tick(int64(ev.Processed), float64(o.buf[s]))
		}
		return
	}
	for name, pagesHeld := range o.occupancy.ListPages() {
		o.m.ListSeries[name].Tick(int64(ev.Processed), float64(pagesHeld))
	}
}

func (o *occupancyObserver) OnDone(*sim.Engine, *sim.DoneEvent) {}

// crashObserver simulates a DRAM power loss: after CrashAtRequest
// processed requests it counts the dirty pages still buffered as lost
// host data and stops the engine.
type crashObserver struct {
	m  *Metrics
	at int
}

func (c *crashObserver) OnRequest(*sim.Engine, *sim.RequestEvent)   {}
func (c *crashObserver) OnEviction(*sim.Engine, *sim.EvictionEvent) {}

func (c *crashObserver) OnResult(e *sim.Engine, ev *sim.ResultEvent) {
	if c.m.Crashed || ev.Processed < c.at {
		return
	}
	c.m.Crashed = true
	c.m.CrashedAtRequest = ev.Processed
	pol := e.Policy()
	lost := pol.Len()
	if dp, ok := pol.(cache.DirtyPager); ok {
		lost = dp.DirtyPages()
	}
	c.m.LostDirtyPages = int64(lost)
	e.Stop()
}

func (c *crashObserver) OnDone(*sim.Engine, *sim.DoneEvent) {}
