// Package replay drives a block trace through a cache policy and the
// simulated SSD, producing every metric the paper's evaluation reports:
// per-request response times (Fig. 8), page hit ratios (Fig. 9), eviction
// batch sizes (Fig. 10), flash write counts (Fig. 11), metadata space
// (Fig. 12), list occupancy series (Fig. 13), and the motivation
// statistics (Figs. 2 and 3).
//
// The replay is open-loop and deterministic: requests enter at their trace
// timestamps, the cache decides hits/evictions instantly (DRAM time), and
// flash work is scheduled on the device's channel/chip timeline. A write
// request that triggered evictions completes when the victims' buffer
// frames are free — i.e. when their data has transferred over the channels
// into the chip registers; the cell programs continue on the dies and slow
// down later reads and flushes through resource occupancy. A read completes
// when its last page arrives from flash or DRAM.
package replay

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Options tune the replay instrumentation.
type Options struct {
	// SmallThresholdPages separates small from large requests for the
	// Fig. 2/3 motivation statistics. Zero derives it from the trace's
	// mean request size, as the paper's footnote 1 specifies.
	SmallThresholdPages int
	// SeriesInterval is the request interval for occupancy sampling
	// (Fig. 13 logs every 10,000 requests). Zero disables the series.
	SeriesInterval int64
	// TrackPageFates enables the per-page bookkeeping behind Figs. 2-3
	// (insert/hit CDFs by request size and large-page hit fractions). It
	// costs one map entry per resident page.
	TrackPageFates bool
	// WarmupRequests excludes the first N requests from the hit/latency
	// metrics: they still drive the cache and the device (state warms up),
	// but a cold cache's compulsory misses do not pollute steady-state
	// numbers. Structural counters (flash writes, evictions) still cover
	// the whole run.
	WarmupRequests int
	// IdleFlushNs enables Co-Active-style proactive eviction (for
	// policies implementing cache.IdleEvictor): whenever the gap before
	// the next request exceeds this threshold, victims are flushed during
	// the idle period, as many as fit before the next arrival. Zero
	// disables.
	IdleFlushNs int64
	// IdleGC additionally runs background garbage collection during those
	// same idle windows (requires IdleFlushNs > 0), refilling free-block
	// headroom so foreground writes stall on GC less often.
	IdleGC bool
	// QueueDepth switches from open-loop replay (requests enter at their
	// trace timestamps regardless of progress) to a closed loop with this
	// many outstanding requests: request i issues at
	// max(arrival_i, completion_{i-QD}). Zero keeps the open loop.
	// Closed-loop replay answers "what does the device sustain", open
	// loop "how does it respond to this arrival process" — the paper's
	// SSDsim runs are open-loop.
	QueueDepth int
	// TenantBoundaries splits the logical address space (in pages) into
	// tenants for per-tenant metrics on mixed workloads (workload.Mix):
	// tenant i covers [boundary_{i-1}, boundary_i), with an implicit
	// leading 0. A request belongs to the tenant holding its first page.
	// Empty disables per-tenant accounting.
	TenantBoundaries []int64
	// CrashAtRequest simulates a DRAM power loss: the replay stops after
	// that many processed requests and the dirty pages still buffered are
	// counted as lost (Metrics.LostDirtyPages). Zero disables.
	CrashAtRequest int
	// DestageNs enables periodic destaging: every DestageNs of simulated
	// time the replayer drains victim batches from the write buffer
	// (policies implementing cache.IdleEvictor), bounding the dirty data a
	// crash can lose. Zero disables.
	DestageNs int64
}

// ApplyFaults copies the replay-level fields of a fault configuration
// (crash point, destage interval) into the options; the flash-level fields
// are consumed by ssd.New.
func (o *Options) ApplyFaults(cfg fault.Config) {
	if cfg.CrashAtRequest > 0 {
		o.CrashAtRequest = cfg.CrashAtRequest
	}
	if cfg.DestageNs > 0 {
		o.DestageNs = cfg.DestageNs
	}
}

// TenantMetrics is the per-tenant slice of a mixed-workload run.
type TenantMetrics struct {
	// FirstPage and LastPage delimit the tenant's address range.
	FirstPage, LastPage int64
	// PageHits / PageMisses count the tenant's cache outcomes.
	PageHits, PageMisses int64
	// Response summarizes the tenant's request response times.
	Response metrics.Summary
}

// HitRatio returns the tenant's page hit ratio.
func (tm *TenantMetrics) HitRatio() float64 {
	return metrics.Ratio(float64(tm.PageHits), float64(tm.PageHits+tm.PageMisses))
}

// Metrics aggregates one replay run.
type Metrics struct {
	// Trace and Policy identify the run.
	Trace, Policy string

	// Requests processed.
	Requests int
	// PageHits / PageMisses count page-level cache outcomes; the paper's
	// hit ratio is PageHits / (PageHits + PageMisses).
	PageHits, PageMisses int64
	// ReadPageHits and WritePageHits split PageHits by request type.
	ReadPageHits, WritePageHits int64

	// Response summarizes per-request response times in nanoseconds.
	Response metrics.Summary
	// ReadResponse / WriteResponse split Response by request type.
	ReadResponse, WriteResponse metrics.Summary
	// ResponseP50 / ResponseP99 estimate the median and 99th-percentile
	// response times (P² streaming estimators): whole-block flush bursts
	// show up in the tail long before they move the mean.
	ResponseP50, ResponseP99 *metrics.Quantile

	// EvictionBatch is the histogram of pages per eviction operation
	// (Fig. 10). Clean drops (CFLRU) are excluded: nothing was flushed.
	EvictionBatch *metrics.Hist
	// FlushedPages counts pages written to flash by evictions.
	FlushedPages int64
	// CleanDrops counts pages discarded without a flush.
	CleanDrops int64
	// IdleFlushedPages counts pages proactively flushed during idle gaps
	// (Options.IdleFlushNs); they are part of FlushedPages too.
	IdleFlushedPages int64
	// DestagedPages counts pages flushed by the periodic destager
	// (Options.DestageNs); they are part of FlushedPages too.
	DestagedPages int64
	// Crashed is true when Options.CrashAtRequest stopped the run;
	// CrashedAtRequest records where and LostDirtyPages how many dirty
	// pages the simulated power loss destroyed.
	Crashed          bool
	CrashedAtRequest int
	LostDirtyPages   int64
	// Degraded is true when the device entered read-only mode (reserve
	// blocks exhausted) and the replay stopped; DegradedAtRequest records
	// the request count at that point.
	Degraded          bool
	DegradedAtRequest int
	// IdleGCRuns counts background GC victim collections (Options.IdleGC).
	IdleGCRuns int64
	// PrefetchedPages counts background readahead pages fetched from
	// flash (prefetching policies only).
	PrefetchedPages int64
	// BypassedPages counts large-write pages that skipped the buffer and
	// streamed straight to flash (admission-control policies only).
	BypassedPages int64
	// Tenants holds per-tenant metrics when Options.TenantBoundaries was
	// set (mixed workloads).
	Tenants []TenantMetrics
	// Energy is the run's flash energy breakdown plus DRAM traffic energy
	// (extension; representative per-op energies, see ssd.EnergyParams).
	Energy ssd.EnergyBreakdown
	// DRAMEnergyUJ is the cache-side energy (hits and insertions).
	DRAMEnergyUJ float64

	// Device is the SSD counter snapshot (Fig. 11's write count is
	// Device.FlashWrites).
	Device ssd.Counters
	// Endurance is the end-of-run wear and lifetime projection at the
	// default QLC P/E budget (extension experiment; the paper motivates
	// write buffering with endurance but does not quantify it).
	Endurance ssd.Endurance
	// Utilization is the channel/die occupancy over the trace duration
	// (extension: quantifies §4.2.4's parallelism argument).
	Utilization flash.Utilization

	// NodeBytes is the per-node metadata cost of the policy; MaxNodes and
	// MeanNodes track the list population (Fig. 12: space = bytes×nodes).
	NodeBytes int
	MaxNodes  int
	MeanNodes float64

	// ListSeries samples each internal list's page count every
	// SeriesInterval requests for OccupancyReporter policies (Fig. 13).
	ListSeries map[string]*metrics.Series

	// InsertBySize / HitBySize histogram page inserts and page hits by
	// the page count of the *write request that inserted the page*
	// (Fig. 2's CDFs).
	InsertBySize, HitBySize *metrics.Hist

	// LargeInserted counts page insertions from large write requests;
	// LargeHitBeforeEviction counts how many of those received at least
	// one hit before leaving the cache (Fig. 3).
	LargeInserted, LargeHitBeforeEviction int64

	// SmallThresholdPages is the small/large boundary used (resolved).
	SmallThresholdPages int
}

// HitRatio returns page hits over all page accesses.
func (m *Metrics) HitRatio() float64 {
	return metrics.Ratio(float64(m.PageHits), float64(m.PageHits+m.PageMisses))
}

// LargeHitFraction returns Fig. 3's statistic: the fraction of pages
// inserted by large requests that were re-accessed while cached.
func (m *Metrics) LargeHitFraction() float64 {
	return metrics.Ratio(float64(m.LargeHitBeforeEviction), float64(m.LargeInserted))
}

// MeanEvictionPages returns Fig. 10's statistic.
func (m *Metrics) MeanEvictionPages() float64 { return m.EvictionBatch.Mean() }

// SpaceOverheadBytes returns Fig. 12's statistic using peak population.
func (m *Metrics) SpaceOverheadBytes() int64 {
	return int64(m.NodeBytes) * int64(m.MaxNodes)
}

// pageFate tracks one resident page for the Fig. 2/3 statistics.
type pageFate struct {
	insertReqPages int32 // size (pages) of the write request that inserted it
	large          bool
	hit            bool
}

// Run replays a trace against a policy and device.
func Run(tr *trace.Trace, pol cache.Policy, dev *ssd.Device, opts Options) (*Metrics, error) {
	m := &Metrics{
		Trace:         tr.Name,
		Policy:        pol.Name(),
		EvictionBatch: metrics.NewHist(512),
		NodeBytes:     pol.NodeBytes(),
		ResponseP50:   metrics.NewQuantile(0.5),
		ResponseP99:   metrics.NewQuantile(0.99),
	}
	if opts.TrackPageFates {
		m.InsertBySize = metrics.NewHist(256)
		m.HitBySize = metrics.NewHist(256)
	}
	m.SmallThresholdPages = opts.SmallThresholdPages
	if m.SmallThresholdPages <= 0 {
		m.SmallThresholdPages = meanRequestPages(tr, dev.PageSize())
	}

	// Occupancy sampling: OccupancySampler policies expose a fixed name
	// order and append into a reusable buffer, so per-sample cost is an
	// indexed loop instead of a freshly allocated map (ListPages stays the
	// fallback for reporter-only policies).
	occupancy, _ := pol.(cache.OccupancyReporter)
	sampler, _ := pol.(cache.OccupancySampler)
	var seriesSlots []*metrics.Series
	var occBuf []int
	if opts.SeriesInterval > 0 && occupancy != nil {
		m.ListSeries = make(map[string]*metrics.Series)
		if sampler != nil {
			names := sampler.OccupancyNames()
			seriesSlots = make([]*metrics.Series, len(names))
			occBuf = make([]int, 0, len(names))
			for i, name := range names {
				s := metrics.NewSeries(opts.SeriesInterval)
				m.ListSeries[name] = s
				seriesSlots[i] = s
			}
		} else {
			for name := range occupancy.ListPages() {
				m.ListSeries[name] = metrics.NewSeries(opts.SeriesInterval)
			}
		}
	}

	var fates map[int64]pageFate
	if opts.TrackPageFates {
		fates = make(map[int64]pageFate, pol.CapacityPages())
	}

	idler, _ := pol.(cache.IdleEvictor)
	if da, ok := pol.(cache.DeviceAware); ok {
		da.AttachDevice(dev)
	}

	// Per-tenant accounting.
	if n := len(opts.TenantBoundaries); n > 0 {
		m.Tenants = make([]TenantMetrics, n)
		var prev int64
		for i, b := range opts.TenantBoundaries {
			if b <= prev {
				return nil, fmt.Errorf("replay: tenant boundaries must be increasing")
			}
			m.Tenants[i] = TenantMetrics{FirstPage: prev, LastPage: b}
			prev = b
		}
	}
	tenantOf := func(page int64) *TenantMetrics {
		for i := range m.Tenants {
			if page < m.Tenants[i].LastPage {
				return &m.Tenants[i]
			}
		}
		return nil
	}

	// Closed-loop state: completions of the last QueueDepth requests.
	var window []int64
	var windowPos int
	if opts.QueueDepth > 0 {
		window = make([]int64, opts.QueueDepth)
	}

	var nodeSum float64
	var prevArrival int64
	var dramPages int64
	var nextDestage int64
	stopped := false
	// degradedStop records a read-only-mode stop; callers break the replay
	// loop instead of failing the run (degradation is an outcome the fault
	// experiments report, not an error).
	degradedStop := func(err error) bool {
		if !errors.Is(err, fault.ErrReadOnly) {
			return false
		}
		if !m.Degraded {
			m.Degraded = true
			m.DegradedAtRequest = m.Requests
		}
		return true
	}
	logical := dev.LogicalPages()
	for i := range tr.Requests {
		req := tr.Requests[i]
		// Proactive eviction during the idle gap before this request.
		if opts.IdleFlushNs > 0 && opts.IdleGC && i > 0 &&
			req.Time-prevArrival >= opts.IdleFlushNs {
			// One block collection per idle window keeps background GC
			// from monopolizing the dies right before the next burst.
			if n := dev.BackgroundGC(prevArrival, 1); n > 0 {
				m.IdleGCRuns += int64(n)
			}
		}
		if opts.IdleFlushNs > 0 && idler != nil && i > 0 {
			idleAt := prevArrival
			for req.Time-idleAt >= opts.IdleFlushNs {
				ev, ok := idler.EvictIdle(idleAt)
				if !ok || len(ev.LPNs) == 0 {
					break
				}
				bt, err := dev.FlushStriped(idleAt, ev.LPNs)
				if err != nil {
					if degradedStop(err) {
						stopped = true
						break
					}
					return nil, fmt.Errorf("replay: %s idle flush: %w", tr.Name, err)
				}
				m.EvictionBatch.Observe(len(ev.LPNs))
				m.FlushedPages += int64(len(ev.LPNs))
				m.IdleFlushedPages += int64(len(ev.LPNs))
				if fates != nil {
					finalizeFates(m, fates, ev.LPNs)
				}
				idleAt = bt.Transferred
			}
		}
		// Periodic destage: at every DestageNs tick up to this arrival,
		// drain victim batches (the policy's own idle-victim rule) so a
		// crash loses less dirty data.
		if opts.DestageNs > 0 && idler != nil && !stopped {
			if nextDestage == 0 {
				nextDestage = req.Time + opts.DestageNs
			}
			for req.Time >= nextDestage && !stopped {
				tick := nextDestage
				nextDestage += opts.DestageNs
				for {
					ev, ok := idler.EvictIdle(tick)
					if !ok || len(ev.LPNs) == 0 {
						break
					}
					if _, err := dev.FlushStriped(tick, ev.LPNs); err != nil {
						if degradedStop(err) {
							stopped = true
							break
						}
						return nil, fmt.Errorf("replay: %s destage: %w", tr.Name, err)
					}
					m.EvictionBatch.Observe(len(ev.LPNs))
					m.FlushedPages += int64(len(ev.LPNs))
					m.DestagedPages += int64(len(ev.LPNs))
					if fates != nil {
						finalizeFates(m, fates, ev.LPNs)
					}
				}
			}
		}
		if stopped {
			break
		}
		prevArrival = req.Time

		first, pages := req.PageSpan(dev.PageSize())
		if pages == 0 {
			continue
		}
		if first+int64(pages) > logical {
			return nil, fmt.Errorf("replay: %s request %d beyond device: lpn %d+%d > %d",
				tr.Name, i, first, pages, logical)
		}
		// Issue time: the trace arrival, or — in closed-loop mode — when a
		// queue slot frees up (the completion of the request QueueDepth
		// places back), whichever is later.
		now := req.Time
		if window != nil {
			if freeAt := window[windowPos]; freeAt > now {
				now = freeAt
			}
		}
		creq := cache.Request{Time: now, Write: req.Write, LPN: first, Pages: pages}
		res := pol.Access(creq)

		completion := dev.CacheAccess(now, res.Hits+res.Inserted)
		dramPages += int64(res.Hits + res.Inserted)
		warm := i >= opts.WarmupRequests

		// Account hits/misses and page fates.
		if warm {
			m.PageHits += int64(res.Hits)
			m.PageMisses += int64(res.Misses)
			if req.Write {
				m.WritePageHits += int64(res.Hits)
			} else {
				m.ReadPageHits += int64(res.Hits)
			}
		}
		if fates != nil {
			recordFates(m, fates, creq, res)
		}

		// Evictions: flush victims; the request waits for durability.
		for _, ev := range res.Evictions {
			if ev.CleanDrop {
				m.CleanDrops += int64(len(ev.LPNs))
				if fates != nil {
					finalizeFates(m, fates, ev.LPNs)
				}
				continue
			}
			m.EvictionBatch.Observe(len(ev.LPNs))
			m.FlushedPages += int64(len(ev.LPNs))
			flushAt := now
			if len(ev.PaddingReads) > 0 {
				padDone, err := dev.ReadPages(now, ev.PaddingReads)
				if err != nil {
					return nil, fmt.Errorf("replay: %s padding: %w", tr.Name, err)
				}
				flushAt = padDone
			}
			var bt ftl.BatchTiming
			var err error
			switch {
			case ev.BlockBound:
				bt, err = dev.FlushBlockBound(flushAt, ev.LPNs)
			case ev.HasChannelHint:
				bt, err = dev.FlushOnChannel(flushAt, ev.LPNs, ev.Channel)
			default:
				bt, err = dev.FlushStriped(flushAt, ev.LPNs)
			}
			if err != nil {
				if degradedStop(err) {
					stopped = true
					break
				}
				return nil, fmt.Errorf("replay: %s flush: %w", tr.Name, err)
			}
			// The request waits until the victims' frames are free (their
			// transfers finish); the programs continue on the dies and
			// delay later operations through the timeline.
			if bt.Transferred > completion {
				completion = bt.Transferred
			}
			if fates != nil {
				finalizeFates(m, fates, ev.LPNs)
			}
		}
		if stopped {
			break
		}

		// Bypassed large-write pages stream straight to flash; the request
		// blocks on their transfers like an eviction flush.
		if len(res.Bypass) > 0 {
			bt, err := dev.FlushStriped(now, res.Bypass)
			if err != nil {
				if degradedStop(err) {
					break
				}
				return nil, fmt.Errorf("replay: %s bypass: %w", tr.Name, err)
			}
			if bt.Transferred > completion {
				completion = bt.Transferred
			}
			m.BypassedPages += int64(len(res.Bypass))
		}

		// Read misses fetch from flash.
		if len(res.ReadMisses) > 0 {
			done, err := dev.ReadPages(now, res.ReadMisses)
			if err != nil {
				return nil, fmt.Errorf("replay: %s read: %w", tr.Name, err)
			}
			if done > completion {
				completion = done
			}
		}

		// Background prefetches load the device but never block the
		// triggering request. Readahead past the end of the logical space
		// is clipped (the policy cannot know the device size).
		if len(res.Prefetches) > 0 {
			pf := res.Prefetches[:0]
			for _, lpn := range res.Prefetches {
				if lpn < logical {
					pf = append(pf, lpn)
				}
			}
			if len(pf) > 0 {
				if _, err := dev.ReadPages(now, pf); err != nil {
					return nil, fmt.Errorf("replay: %s prefetch: %w", tr.Name, err)
				}
				m.PrefetchedPages += int64(len(pf))
			}
		}

		if window != nil {
			window[windowPos] = completion
			windowPos = (windowPos + 1) % len(window)
		}
		if warm {
			resp := float64(completion - now)
			m.Response.Observe(resp)
			m.ResponseP50.Observe(resp)
			m.ResponseP99.Observe(resp)
			if req.Write {
				m.WriteResponse.Observe(resp)
			} else {
				m.ReadResponse.Observe(resp)
			}
			if tm := tenantOf(first); tm != nil {
				tm.PageHits += int64(res.Hits)
				tm.PageMisses += int64(res.Misses)
				tm.Response.Observe(resp)
			}
		}

		// Structural gauges.
		nodes := pol.NodeCount()
		if nodes > m.MaxNodes {
			m.MaxNodes = nodes
		}
		nodeSum += float64(nodes)
		m.Requests++
		if m.ListSeries != nil {
			if seriesSlots != nil {
				occBuf = sampler.AppendOccupancy(occBuf[:0])
				for s, slot := range seriesSlots {
					slot.Tick(int64(m.Requests), float64(occBuf[s]))
				}
			} else {
				for name, pagesHeld := range occupancy.ListPages() {
					m.ListSeries[name].Tick(int64(m.Requests), float64(pagesHeld))
				}
			}
		}

		// Simulated DRAM power loss: stop here and count the dirty pages
		// still buffered as lost host data.
		if opts.CrashAtRequest > 0 && m.Requests >= opts.CrashAtRequest {
			m.Crashed = true
			m.CrashedAtRequest = m.Requests
			lost := pol.Len()
			if dp, ok := pol.(cache.DirtyPager); ok {
				lost = dp.DirtyPages()
			}
			m.LostDirtyPages = int64(lost)
			break
		}
	}
	// Pages still resident at the end never got evicted; their fates count.
	for _, f := range fates {
		if f.large {
			m.LargeInserted++
			if f.hit {
				m.LargeHitBeforeEviction++
			}
		}
	}
	if m.Requests > 0 {
		m.MeanNodes = nodeSum / float64(m.Requests)
	}
	// A device that entered read-only mode during background work (idle GC)
	// without a subsequent write failing still reports as degraded.
	if dev.Degraded() && !m.Degraded {
		m.Degraded = true
		m.DegradedAtRequest = m.Requests
	}
	// End-of-replay invariant sweep (fault.Config.CheckInvariants); runs
	// before the counter snapshot so the final check is counted.
	if c := dev.InvariantChecker(); c != nil {
		if err := c.Check(); err != nil {
			return nil, fmt.Errorf("replay: %s end-of-replay invariants: %w", tr.Name, err)
		}
	}
	m.Device = dev.Counters()
	m.Endurance = dev.Endurance(0)
	ep := ssd.DefaultEnergyParams()
	m.Energy = dev.Energy(ep)
	m.DRAMEnergyUJ = float64(dramPages) * ep.DRAMAccessUJ
	if n := len(tr.Requests); n > 0 {
		horizon := tr.Requests[n-1].Time - tr.Requests[0].Time
		m.Utilization = dev.Utilization(horizon)
	}
	return m, nil
}

// recordFates updates the per-page bookkeeping for one request. A page
// found in the fate map was resident when the request arrived, so touching
// it is a hit attributed to the size of the write request that inserted it
// (Fig. 2 keys both CDFs by inserting-request size); a written page not in
// the map is a fresh insertion. The shadow model can diverge from the
// policy by at most the pages a request evicts of itself (requests larger
// than the whole buffer), which the experiments never produce.
func recordFates(m *Metrics, fates map[int64]pageFate, req cache.Request, res cache.Result) {
	_ = res
	large := req.Pages > m.SmallThresholdPages
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		if f, ok := fates[lpn]; ok {
			if !f.hit {
				f.hit = true
				fates[lpn] = f
			}
			m.HitBySize.Observe(int(f.insertReqPages))
		} else if req.Write {
			fates[lpn] = pageFate{insertReqPages: int32(req.Pages), large: large}
			m.InsertBySize.Observe(req.Pages)
		}
		lpn++
	}
}

// finalizeFates closes the lifetime of evicted pages, feeding Fig. 3.
func finalizeFates(m *Metrics, fates map[int64]pageFate, lpns []int64) {
	for _, lpn := range lpns {
		f, ok := fates[lpn]
		if !ok {
			continue
		}
		if f.large {
			m.LargeInserted++
			if f.hit {
				m.LargeHitBeforeEviction++
			}
		}
		delete(fates, lpn)
	}
}

// meanRequestPages computes the trace's mean request size in pages, the
// paper's small/large boundary.
func meanRequestPages(tr *trace.Trace, pageSize int64) int {
	if len(tr.Requests) == 0 {
		return 1
	}
	var total int64
	for _, r := range tr.Requests {
		_, n := r.PageSpan(pageSize)
		total += int64(n)
	}
	mean := int(total / int64(len(tr.Requests)))
	if mean < 1 {
		mean = 1
	}
	return mean
}
