// Package replay drives a block trace through a cache policy and the
// simulated SSD, producing every metric the paper's evaluation reports:
// per-request response times (Fig. 8), page hit ratios (Fig. 9), eviction
// batch sizes (Fig. 10), flash write counts (Fig. 11), metadata space
// (Fig. 12), list occupancy series (Fig. 13), and the motivation
// statistics (Figs. 2 and 3).
//
// The simulation itself lives in internal/sim: a streaming engine that
// pulls requests from a trace.Source and emits observer events. This
// package assembles the paper's metric set as sim.Observer implementations
// (see observers.go) and exposes two entry points: Run replays a
// materialized *trace.Trace, RunSource replays any trace.Source — e.g. a
// trace.Scanner reading an MSR CSV file — in constant memory, never
// holding the trace.
//
// The replay is open-loop and deterministic: requests enter at their trace
// timestamps, the cache decides hits/evictions instantly (DRAM time), and
// flash work is scheduled on the device's channel/chip timeline. A write
// request that triggered evictions completes when the victims' buffer
// frames are free — i.e. when their data has transferred over the channels
// into the chip registers; the cell programs continue on the dies and slow
// down later reads and flushes through resource occupancy. A read completes
// when its last page arrives from flash or DRAM.
package replay

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Options tune the replay instrumentation.
type Options struct {
	// SmallThresholdPages separates small from large requests for the
	// Fig. 2/3 motivation statistics. Zero derives it from the trace's
	// mean request size, as the paper's footnote 1 specifies (Run only:
	// the derivation needs the whole trace, so RunSource requires an
	// explicit threshold when TrackPageFates is set).
	SmallThresholdPages int
	// SeriesInterval is the request interval for occupancy sampling
	// (Fig. 13 logs every 10,000 requests). Zero disables the series.
	SeriesInterval int64
	// TrackPageFates enables the per-page bookkeeping behind Figs. 2-3
	// (insert/hit CDFs by request size and large-page hit fractions). It
	// costs one map entry per resident page.
	TrackPageFates bool
	// WarmupRequests excludes the first N requests from the hit/latency
	// metrics: they still drive the cache and the device (state warms up),
	// but a cold cache's compulsory misses do not pollute steady-state
	// numbers. Structural counters (flash writes, evictions) still cover
	// the whole run.
	WarmupRequests int
	// IdleFlushNs enables Co-Active-style proactive eviction (for
	// policies implementing cache.IdleEvictor): whenever the gap before
	// the next request exceeds this threshold, victims are flushed during
	// the idle period, as many as fit before the next arrival. Zero
	// disables.
	IdleFlushNs int64
	// IdleGC additionally runs background garbage collection during those
	// same idle windows (requires IdleFlushNs > 0), refilling free-block
	// headroom so foreground writes stall on GC less often.
	IdleGC bool
	// GCBudgetNs grants the device's preemptible GC scheduler a budgeted
	// slice per idle window (after the idle flusher drains): see
	// sim.Config.GCBudgetNs. Requires IdleFlushNs > 0; mutually exclusive
	// with IdleGC. A device without the scheduler enabled gets it enabled
	// with defaults. Zero keeps the legacy greedy path bit-identical.
	GCBudgetNs int64
	// QueueDepth switches from open-loop replay (requests enter at their
	// trace timestamps regardless of progress) to a closed loop with this
	// many outstanding requests: request i issues at
	// max(arrival_i, completion_{i-QD}). Zero keeps the open loop.
	// Closed-loop replay answers "what does the device sustain", open
	// loop "how does it respond to this arrival process" — the paper's
	// SSDsim runs are open-loop.
	QueueDepth int
	// TenantBoundaries splits the logical address space (in pages) into
	// tenants for per-tenant metrics on mixed workloads (workload.Mix):
	// tenant i covers [boundary_{i-1}, boundary_i), with an implicit
	// leading 0. A request belongs to the tenant holding its first page.
	// Empty disables per-tenant accounting.
	TenantBoundaries []int64
	// CrashAtRequest simulates a DRAM power loss: the replay stops after
	// that many processed requests and the dirty pages still buffered are
	// counted as lost (Metrics.LostDirtyPages). Zero disables.
	CrashAtRequest int
	// DestageNs enables periodic destaging: every DestageNs of simulated
	// time the replayer drains victim batches from the write buffer
	// (policies implementing cache.IdleEvictor), bounding the dirty data a
	// crash can lose. Zero disables.
	DestageNs int64
	// BackPressureDepth bounds the destage backlog between the cache and
	// the flash backend (MQSim's back_pressure_buffer_max_depth): once
	// this many flush batches are outstanding, the next request is not
	// admitted until the oldest becomes durable. Zero disables (the
	// default; replays are then bit-identical to builds without the
	// back-pressure plane).
	BackPressureDepth int
	// Observers attach additional measurement observers to the engine,
	// after the replay's own (telemetry, progress reporting, request
	// tracing — see internal/obs). Observers measure; they cannot change
	// the simulation, so attaching any leaves Metrics bit-identical.
	Observers []sim.Observer
}

// Validate rejects option combinations the replay cannot honor. Run and
// RunSource call it first, so a bad configuration fails loudly up front
// instead of silently skewing a long run.
func (o *Options) Validate() error {
	if o.SmallThresholdPages < 0 {
		return fmt.Errorf("replay: SmallThresholdPages %d is negative (0 means auto-derive)", o.SmallThresholdPages)
	}
	if o.SeriesInterval < 0 {
		return fmt.Errorf("replay: SeriesInterval %d is negative (0 disables the series)", o.SeriesInterval)
	}
	if o.WarmupRequests < 0 {
		return fmt.Errorf("replay: WarmupRequests %d is negative", o.WarmupRequests)
	}
	if o.IdleFlushNs < 0 {
		return fmt.Errorf("replay: IdleFlushNs %d is negative (0 disables idle flushing)", o.IdleFlushNs)
	}
	if o.IdleGC && o.IdleFlushNs == 0 {
		return fmt.Errorf("replay: IdleGC requires IdleFlushNs > 0 (idle windows are defined by the flush threshold)")
	}
	if o.GCBudgetNs < 0 {
		return fmt.Errorf("replay: GCBudgetNs %d is negative (0 disables scheduled GC)", o.GCBudgetNs)
	}
	if o.GCBudgetNs > 0 && o.IdleFlushNs == 0 {
		return fmt.Errorf("replay: GCBudgetNs requires IdleFlushNs > 0 (idle windows are defined by the flush threshold)")
	}
	if o.GCBudgetNs > 0 && o.IdleGC {
		return fmt.Errorf("replay: GCBudgetNs and IdleGC are mutually exclusive (scheduled vs greedy idle GC)")
	}
	if o.QueueDepth < 0 {
		return fmt.Errorf("replay: QueueDepth %d is negative (0 keeps the open loop)", o.QueueDepth)
	}
	if o.CrashAtRequest < 0 {
		return fmt.Errorf("replay: CrashAtRequest %d is negative (0 disables the crash)", o.CrashAtRequest)
	}
	if o.DestageNs < 0 {
		return fmt.Errorf("replay: DestageNs %d is negative (0 disables destaging)", o.DestageNs)
	}
	if o.BackPressureDepth < 0 {
		return fmt.Errorf("replay: BackPressureDepth %d is negative (0 disables back-pressure)", o.BackPressureDepth)
	}
	var prev int64
	for i, b := range o.TenantBoundaries {
		if b <= prev {
			return fmt.Errorf("replay: tenant boundaries must be increasing: boundary %d is %d after %d", i, b, prev)
		}
		prev = b
	}
	return nil
}

// ApplyFaults copies the replay-level fields of a fault configuration
// (crash point, destage interval) into the options; the flash-level fields
// are consumed by ssd.New.
func (o *Options) ApplyFaults(cfg fault.Config) {
	if cfg.CrashAtRequest > 0 {
		o.CrashAtRequest = cfg.CrashAtRequest
	}
	if cfg.DestageNs > 0 {
		o.DestageNs = cfg.DestageNs
	}
}

// TenantMetrics is the per-tenant slice of a mixed-workload run.
type TenantMetrics struct {
	// FirstPage and LastPage delimit the tenant's address range.
	FirstPage, LastPage int64
	// PageHits / PageMisses count the tenant's cache outcomes.
	PageHits, PageMisses int64
	// Response summarizes the tenant's request response times.
	Response metrics.Summary
}

// HitRatio returns the tenant's page hit ratio.
func (tm *TenantMetrics) HitRatio() float64 {
	return metrics.Ratio(float64(tm.PageHits), float64(tm.PageHits+tm.PageMisses))
}

// Metrics aggregates one replay run.
type Metrics struct {
	// Trace and Policy identify the run.
	Trace, Policy string

	// Requests processed.
	Requests int
	// PageHits / PageMisses count page-level cache outcomes; the paper's
	// hit ratio is PageHits / (PageHits + PageMisses).
	PageHits, PageMisses int64
	// ReadPageHits and WritePageHits split PageHits by request type.
	ReadPageHits, WritePageHits int64

	// Response summarizes per-request response times in nanoseconds.
	Response metrics.Summary
	// ReadResponse / WriteResponse split Response by request type.
	ReadResponse, WriteResponse metrics.Summary
	// ResponseP50 / ResponseP99 / ResponseP999 estimate the median, 99th-
	// and 99.9th-percentile response times (P² streaming estimators):
	// whole-block flush bursts show up in the tail long before they move
	// the mean, and foreground GC pauses live almost entirely in P99.9.
	ResponseP50, ResponseP99, ResponseP999 *metrics.Quantile

	// EvictionBatch is the histogram of pages per eviction operation
	// (Fig. 10). Clean drops (CFLRU) are excluded: nothing was flushed.
	EvictionBatch *metrics.Hist
	// FlushedPages counts pages written to flash by evictions.
	FlushedPages int64
	// CleanDrops counts pages discarded without a flush.
	CleanDrops int64
	// IdleFlushedPages counts pages proactively flushed during idle gaps
	// (Options.IdleFlushNs); they are part of FlushedPages too.
	IdleFlushedPages int64
	// DestagedPages counts pages flushed by the periodic destager
	// (Options.DestageNs); they are part of FlushedPages too.
	DestagedPages int64
	// Crashed is true when Options.CrashAtRequest stopped the run;
	// CrashedAtRequest records where and LostDirtyPages how many dirty
	// pages the simulated power loss destroyed.
	Crashed          bool
	CrashedAtRequest int
	LostDirtyPages   int64
	// Degraded is true when the device entered read-only mode (reserve
	// blocks exhausted) and the replay stopped; DegradedAtRequest records
	// the request count at that point.
	Degraded          bool
	DegradedAtRequest int
	// IdleGCRuns counts background GC victim collections (Options.IdleGC,
	// or completed scheduler collections under Options.GCBudgetNs).
	IdleGCRuns int64
	// GCSched snapshots the preemptible GC scheduler's counters
	// (Options.GCBudgetNs or a pre-enabled device); all zero otherwise.
	GCSched ftl.GCSchedStats
	// BackPressureStalls counts admissions delayed by the destage backlog
	// bound (Options.BackPressureDepth); BackPressureStallNs is the total
	// simulated delay. Both zero with back-pressure off.
	BackPressureStalls  int64
	BackPressureStallNs int64
	// PrefetchedPages counts background readahead pages fetched from
	// flash (prefetching policies only).
	PrefetchedPages int64
	// BypassedPages counts large-write pages that skipped the buffer and
	// streamed straight to flash (admission-control policies only).
	BypassedPages int64
	// Tenants holds per-tenant metrics when Options.TenantBoundaries was
	// set (mixed workloads).
	Tenants []TenantMetrics
	// Energy is the run's flash energy breakdown plus DRAM traffic energy
	// (extension; representative per-op energies, see ssd.EnergyParams).
	Energy ssd.EnergyBreakdown
	// DRAMEnergyUJ is the cache-side energy (hits and insertions).
	DRAMEnergyUJ float64

	// Device is the SSD counter snapshot (Fig. 11's write count is
	// Device.FlashWrites).
	Device ssd.Counters
	// Endurance is the end-of-run wear and lifetime projection at the
	// default QLC P/E budget (extension experiment; the paper motivates
	// write buffering with endurance but does not quantify it).
	Endurance ssd.Endurance
	// Utilization is the channel/die occupancy over the trace duration
	// (extension: quantifies §4.2.4's parallelism argument).
	Utilization flash.Utilization

	// NodeBytes is the per-node metadata cost of the policy; MaxNodes and
	// MeanNodes track the list population (Fig. 12: space = bytes×nodes).
	NodeBytes int
	MaxNodes  int
	MeanNodes float64

	// ListSeries samples each internal list's page count every
	// SeriesInterval requests for OccupancyReporter policies (Fig. 13).
	ListSeries map[string]*metrics.Series

	// InsertBySize / HitBySize histogram page inserts and page hits by
	// the page count of the *write request that inserted the page*
	// (Fig. 2's CDFs).
	InsertBySize, HitBySize *metrics.Hist

	// LargeInserted counts page insertions from large write requests;
	// LargeHitBeforeEviction counts how many of those received at least
	// one hit before leaving the cache (Fig. 3).
	LargeInserted, LargeHitBeforeEviction int64

	// SmallThresholdPages is the small/large boundary used (resolved).
	SmallThresholdPages int
}

// HitRatio returns page hits over all page accesses.
func (m *Metrics) HitRatio() float64 {
	return metrics.Ratio(float64(m.PageHits), float64(m.PageHits+m.PageMisses))
}

// LargeHitFraction returns Fig. 3's statistic: the fraction of pages
// inserted by large requests that were re-accessed while cached.
func (m *Metrics) LargeHitFraction() float64 {
	return metrics.Ratio(float64(m.LargeHitBeforeEviction), float64(m.LargeInserted))
}

// MeanEvictionPages returns Fig. 10's statistic.
func (m *Metrics) MeanEvictionPages() float64 { return m.EvictionBatch.Mean() }

// SpaceOverheadBytes returns Fig. 12's statistic using peak population.
func (m *Metrics) SpaceOverheadBytes() int64 {
	return int64(m.NodeBytes) * int64(m.MaxNodes)
}

// Run replays a materialized trace against a policy and device. It is a
// thin wrapper over RunSource: the only thing it adds is the auto-derived
// small/large threshold, which needs the whole trace (footnote 1's mean
// request size).
func Run(tr *trace.Trace, pol cache.Policy, dev *ssd.Device, opts Options) (*Metrics, error) {
	if opts.SmallThresholdPages == 0 {
		opts.SmallThresholdPages = meanRequestPages(tr, dev.PageSize())
	}
	return RunSource(tr.Source(), pol, dev, opts)
}

// RunSource replays a streaming source against a policy and device in
// O(cache) memory: requests are consumed one at a time and never retained,
// so a multi-hundred-MB trace file replays without being materialized.
// Metrics are bit-identical to Run over the same request sequence.
func RunSource(src trace.Source, pol cache.Policy, dev *ssd.Device, opts Options) (*Metrics, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ps := dev.PageSize(); ps <= 0 {
		return nil, fmt.Errorf("replay: device page size %d must be positive", ps)
	}
	if opts.TrackPageFates && opts.SmallThresholdPages == 0 {
		return nil, fmt.Errorf("replay: TrackPageFates on a streaming source needs an explicit SmallThresholdPages (Run derives it from the materialized trace)")
	}

	m := &Metrics{
		Trace:               src.Name(),
		Policy:              pol.Name(),
		EvictionBatch:       metrics.NewHist(512),
		NodeBytes:           pol.NodeBytes(),
		ResponseP50:         metrics.NewQuantile(0.5),
		ResponseP99:         metrics.NewQuantile(0.99),
		ResponseP999:        metrics.NewQuantile(0.999),
		SmallThresholdPages: opts.SmallThresholdPages,
	}
	if opts.BackPressureDepth > 0 {
		dev.SetBackPressure(opts.BackPressureDepth)
	}
	if opts.GCBudgetNs > 0 && !dev.GCSchedEnabled() {
		dev.EnableGCScheduler(ftl.GCSchedConfig{Enabled: true})
	}
	eng := sim.New(src, pol, dev, sim.Config{
		WarmupRequests: opts.WarmupRequests,
		IdleFlushNs:    opts.IdleFlushNs,
		IdleGC:         opts.IdleGC,
		GCBudgetNs:     opts.GCBudgetNs,
		QueueDepth:     opts.QueueDepth,
		DestageNs:      opts.DestageNs,
	})

	// The measurement plane: the core metrics observer always runs; the
	// specialized observers attach only when their option asks for them,
	// so the hot path never pays for bookkeeping nobody requested.
	eng.Observe(&coreObserver{m: m})
	if opts.TrackPageFates {
		m.InsertBySize = metrics.NewHist(256)
		m.HitBySize = metrics.NewHist(256)
		eng.Observe(&fateObserver{m: m, fates: make(map[int64]pageFate, pol.CapacityPages())})
	}
	if n := len(opts.TenantBoundaries); n > 0 {
		m.Tenants = make([]TenantMetrics, n)
		var prev int64
		for i, b := range opts.TenantBoundaries {
			m.Tenants[i] = TenantMetrics{FirstPage: prev, LastPage: b}
			prev = b
		}
		eng.Observe(&tenantObserver{m: m})
	}
	if opts.SeriesInterval > 0 {
		if obs := newOccupancyObserver(m, pol, opts.SeriesInterval); obs != nil {
			eng.Observe(obs)
		}
	}
	if opts.CrashAtRequest > 0 {
		eng.Observe(&crashObserver{m: m, at: opts.CrashAtRequest})
	}
	// Caller-supplied observers run last, after the metric plane has folded
	// each event in, so anything they read through the engine is current.
	eng.Observe(opts.Observers...)

	if _, err := eng.Run(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return m, nil
}

// meanRequestPages computes the trace's mean request size in pages, the
// paper's small/large boundary.
func meanRequestPages(tr *trace.Trace, pageSize int64) int {
	if len(tr.Requests) == 0 {
		return 1
	}
	var total int64
	for _, r := range tr.Requests {
		_, n := r.PageSpan(pageSize)
		total += int64(n)
	}
	mean := int(total / int64(len(tr.Requests)))
	if mean < 1 {
		mean = 1
	}
	return mean
}
