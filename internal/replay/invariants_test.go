package replay

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestReplayInvariants attaches the cross-layer invariant watchdog to
// real replays: every paper policy, over open-loop, closed-loop and
// idle-flush configurations, on a workload long enough to force
// evictions. Any ordering or accounting violation in the engine pipeline
// fails here, whatever the metrics say.
func TestReplayInvariants(t *testing.T) {
	mkTrace := func() *trace.Trace {
		var reqs []trace.Request
		tm := int64(0)
		// Deterministic LCG mix of small/large reads and writes over a
		// footprint a 64-page cache must churn through.
		state := uint64(0x9e3779b97f4a7c15)
		next := func(n int64) int64 {
			state = state*6364136223846793005 + 1442695040888963407
			return int64(state>>33) % n
		}
		for i := 0; i < 400; i++ {
			tm += 200_000 + next(3_000_000)
			pages := 1 + next(10)
			reqs = append(reqs, trace.Request{
				Time:   tm,
				Write:  next(100) < 75,
				Offset: next(256) * 4096,
				Size:   pages * 4096,
			})
		}
		return &trace.Trace{Name: "invariants", Requests: reqs}
	}

	policies := map[string]func() cache.Policy{
		"req-block": func() cache.Policy { return core.New(64) },
		"lru":       func() cache.Policy { return cache.NewLRU(64) },
		"bplru":     func() cache.Policy { return cache.NewBPLRU(64, 8) },
		"fab":       func() cache.Policy { return cache.NewFAB(64, 8) },
	}
	configs := map[string]Options{
		"open-loop":   {},
		"closed-loop": {QueueDepth: 4},
		"idle-flush":  {IdleFlushNs: 1_000_000, IdleGC: true},
		"warmup":      {WarmupRequests: 100},
	}
	for pname, mk := range policies {
		for cname, opts := range configs {
			pname, cname, mk, opts := pname, cname, mk, opts
			t.Run(pname+"/"+cname, func(t *testing.T) {
				watchdog := &sim.InvariantObserver{}
				opts.Observers = []sim.Observer{watchdog}
				if _, err := Run(mkTrace(), mk(), testDevice(t), opts); err != nil {
					t.Fatal(err)
				}
				if err := watchdog.Err(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
