package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The MSR Cambridge block traces are CSV files with one request per line:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is a Windows filetime (100 ns ticks since 1601-01-01), Type is
// the literal string "Read" or "Write", Offset and Size are in bytes, and
// ResponseTime is in 100 ns ticks (ignored on read: we re-simulate it).

const filetimeTick = 100 // nanoseconds per Windows filetime tick

// MSROptions tune ReadMSRWith's tolerance for malformed input.
type MSROptions struct {
	// MaxSkipped is the malformed-line budget: up to that many bad lines
	// are skipped and counted (Trace.SkippedLines) instead of aborting the
	// parse. Zero is strict — the first bad line is an error, ReadMSR's
	// historical behavior. Negative is unlimited. Real trace archives
	// routinely carry a truncated last line or a stray header; a bounded
	// budget tolerates those without silently accepting a file in the
	// wrong format.
	MaxSkipped int
}

// ReadMSR parses an MSR Cambridge format trace strictly: timestamps are
// rebased so the first request arrives at time 0, malformed lines yield an
// error with the line number, empty lines are skipped.
func ReadMSR(r io.Reader, name string) (*Trace, error) {
	return ReadMSRWith(r, name, MSROptions{})
}

// ReadMSRWith is ReadMSR with an error budget for malformed lines. It
// materializes the whole trace; Scan/ScanMSRWith stream the same parse in
// constant memory for the replay engine's Source path.
func ReadMSRWith(r io.Reader, name string, opt MSROptions) (*Trace, error) {
	return Collect(ScanMSRWith(r, name, opt))
}

func parseMSRLine(line string) (Request, int64, error) {
	// Cut the first six fields by hand: the parser sits on the streaming
	// replay hot path, and strings.Split would allocate a slice per line.
	var fields [6]string
	rest := line
	n := 0
	for n < 5 {
		i := strings.IndexByte(rest, ',')
		if i < 0 {
			break
		}
		fields[n] = rest[:i]
		rest = rest[i+1:]
		n++
	}
	if n < 5 {
		return Request{}, 0, fmt.Errorf("expected at least 6 fields, got %d", n+1)
	}
	// The sixth field ends at the next comma (trailing fields like the
	// response time are ignored) or at the end of the line.
	if i := strings.IndexByte(rest, ','); i >= 0 {
		fields[5] = rest[:i]
	} else {
		fields[5] = rest
	}
	ts, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		return Request{}, 0, fmt.Errorf("bad timestamp %q: %w", fields[0], err)
	}
	var write bool
	switch op := strings.TrimSpace(fields[3]); {
	case strings.EqualFold(op, "write"), strings.EqualFold(op, "w"):
		write = true
	case strings.EqualFold(op, "read"), strings.EqualFold(op, "r"):
		write = false
	default:
		return Request{}, 0, fmt.Errorf("bad request type %q", fields[3])
	}
	offset, err := strconv.ParseInt(strings.TrimSpace(fields[4]), 10, 64)
	if err != nil {
		return Request{}, 0, fmt.Errorf("bad offset %q: %w", fields[4], err)
	}
	if offset < 0 {
		return Request{}, 0, fmt.Errorf("negative offset %d", offset)
	}
	size, err := strconv.ParseInt(strings.TrimSpace(fields[5]), 10, 64)
	if err != nil {
		return Request{}, 0, fmt.Errorf("bad size %q: %w", fields[5], err)
	}
	if size <= 0 {
		return Request{}, 0, fmt.Errorf("non-positive size %d", size)
	}
	return Request{Write: write, Offset: offset, Size: size}, ts, nil
}

// WriteMSR serializes a trace in MSR Cambridge format. The hostname column
// carries the trace name and the disk number is 0; response time is written
// as 0 (it is an output of simulation, not an input).
func WriteMSR(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	host := t.Name
	if host == "" {
		host = "synthetic"
	}
	for _, r := range t.Requests {
		op := "Read"
		if r.Write {
			op = "Write"
		}
		// Rebase to an arbitrary positive epoch so round-tripping keeps
		// relative times: ticks = ns / 100.
		_, err := fmt.Fprintf(bw, "%d,%s,0,%s,%d,%d,0\n",
			r.Time/filetimeTick+1, host, op, r.Offset, r.Size)
		if err != nil {
			return fmt.Errorf("trace: write %s: %w", t.Name, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush %s: %w", t.Name, err)
	}
	return nil
}
