// Package trace models block-level I/O traces: the request type every other
// package consumes, a reader/writer for the MSR Cambridge CSV format the
// paper's workloads come in, and the per-trace statistics reported in the
// paper's Table 2.
package trace

// Request is one host I/O request as recorded in a block trace.
//
// Offsets and sizes are in bytes, as in the raw traces; the cache and FTL
// operate on logical pages, so PageSpan converts using the device page size.
type Request struct {
	// Time is the arrival time in nanoseconds since the start of the trace.
	Time int64
	// Write is true for write requests, false for reads.
	Write bool
	// Offset is the starting byte address on the device.
	Offset int64
	// Size is the length in bytes. Always > 0 for a valid request.
	Size int64
}

// PageSpan returns the first logical page touched by the request and the
// number of pages it spans for the given page size. A request that is not
// page aligned still touches every page it overlaps, exactly as SSDsim
// expands sector ranges to flash pages.
func (r Request) PageSpan(pageSize int64) (first int64, count int) {
	if pageSize <= 0 {
		panic("trace: non-positive page size")
	}
	first = r.Offset / pageSize
	if r.Size <= 0 {
		return first, 0
	}
	last := (r.Offset + r.Size - 1) / pageSize
	return first, int(last - first + 1)
}

// Trace is an in-memory sequence of requests ordered by arrival time.
type Trace struct {
	// Name labels the workload (e.g. "hm_1").
	Name string
	// Requests are ordered by non-decreasing Time.
	Requests []Request
	// SkippedLines counts malformed input lines dropped by a lenient
	// parse (ReadMSRWith with a skip budget); zero for strict parses and
	// synthetic traces.
	SkippedLines int
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// Stats summarizes a trace the way the paper's Table 2 does.
type Stats struct {
	// Requests is the total number of requests.
	Requests int
	// Reads and Writes partition Requests.
	Reads, Writes int
	// WriteRatio is Writes / Requests.
	WriteRatio float64
	// MeanWriteBytes is the mean size of write requests in bytes.
	MeanWriteBytes float64
	// MeanReadBytes is the mean size of read requests in bytes.
	MeanReadBytes float64
	// FrequentRatio is the fraction of distinct page addresses that are
	// requested at least three times ("Frequent R" in Table 2).
	FrequentRatio float64
	// FrequentWriteRatio is the frequent ratio computed over written
	// addresses only: the fraction of distinct written pages requested at
	// least three times ("(Wr)" in Table 2).
	FrequentWriteRatio float64
	// DistinctPages is the footprint in distinct page addresses.
	DistinctPages int
	// TotalPages is the total page count across all requests.
	TotalPages int64
}

// ComputeStats scans the trace once and derives Table 2-style statistics
// using the given page size for address granularity.
func ComputeStats(t *Trace, pageSize int64) Stats {
	acc := newStatsAccum(pageSize)
	for _, r := range t.Requests {
		acc.add(r)
	}
	return acc.finish()
}

// ComputeStatsSource is ComputeStats over a streaming Source: one pass,
// O(distinct pages) memory, never the whole trace. cmd/traceinfo uses it
// to summarize multi-hundred-MB trace files without materializing them.
func ComputeStatsSource(src Source, pageSize int64) (Stats, error) {
	acc := newStatsAccum(pageSize)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		acc.add(r)
	}
	if err := src.Err(); err != nil {
		return Stats{}, err
	}
	return acc.finish(), nil
}

// pageInfo is the per-distinct-page state behind the frequent-address
// ratios: an access count and a written flag packed into one map value.
type pageInfo struct {
	count   int32
	written bool
}

// statsAccum folds requests into Stats one at a time. Memory is bounded by
// the footprint (one pageInfo per distinct page), not the trace length.
type statsAccum struct {
	pageSize              int64
	s                     Stats
	pages                 map[int64]pageInfo
	writeBytes, readBytes int64
}

func newStatsAccum(pageSize int64) *statsAccum {
	return &statsAccum{pageSize: pageSize, pages: make(map[int64]pageInfo)}
}

func (a *statsAccum) add(r Request) {
	a.s.Requests++
	if r.Write {
		a.s.Writes++
		a.writeBytes += r.Size
	} else {
		a.s.Reads++
		a.readBytes += r.Size
	}
	first, n := r.PageSpan(a.pageSize)
	a.s.TotalPages += int64(n)
	for p := first; p < first+int64(n); p++ {
		info := a.pages[p]
		info.count++
		if r.Write {
			info.written = true
		}
		a.pages[p] = info
	}
}

func (a *statsAccum) finish() Stats {
	s := a.s
	s.DistinctPages = len(a.pages)
	if s.Requests > 0 {
		s.WriteRatio = float64(s.Writes) / float64(s.Requests)
	}
	if s.Writes > 0 {
		s.MeanWriteBytes = float64(a.writeBytes) / float64(s.Writes)
	}
	if s.Reads > 0 {
		s.MeanReadBytes = float64(a.readBytes) / float64(s.Reads)
	}
	var frequent, written, frequentWritten int
	for _, info := range a.pages {
		if info.written {
			written++
		}
		if info.count >= 3 {
			frequent++
			if info.written {
				frequentWritten++
			}
		}
	}
	if len(a.pages) > 0 {
		s.FrequentRatio = float64(frequent) / float64(len(a.pages))
	}
	if written > 0 {
		s.FrequentWriteRatio = float64(frequentWritten) / float64(written)
	}
	return s
}
