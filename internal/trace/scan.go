package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Scanner streams an MSR Cambridge CSV trace one request at a time,
// holding O(1) state: the bufio window, the timestamp base, and the
// previous arrival for the monotonicity clamp. It implements Source, so a
// replay can consume a trace file of any length in constant memory.
//
// The parse semantics are exactly ReadMSRWith's — same rebasing to time
// zero, same out-of-order clamping, same malformed-line budget, same
// error text — and ReadMSRWith is implemented on top of Scanner, so the
// two can never drift apart.
type Scanner struct {
	name    string
	sc      *bufio.Scanner
	opt     MSROptions
	base    int64
	started bool  // first request seen: base is set
	prev    int64 // previous request's rebased time (monotonic clamp)
	lineNo  int
	skipped int
	err     error
	done    bool
}

// Scan returns a strict streaming scanner over an MSR Cambridge CSV
// stream: the streaming counterpart of ReadMSR.
func Scan(r io.Reader, name string) *Scanner {
	return ScanMSRWith(r, name, MSROptions{})
}

// ScanMSRWith is Scan with an error budget for malformed lines: the
// streaming counterpart of ReadMSRWith.
func ScanMSRWith(r io.Reader, name string, opt MSROptions) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Scanner{name: name, sc: sc, opt: opt}
}

// Name returns the trace name the scanner was built with.
func (s *Scanner) Name() string { return s.name }

// SkippedLines returns the malformed lines dropped so far under the
// MaxSkipped budget.
func (s *Scanner) SkippedLines() int { return s.skipped }

// Err returns the first parse or read error, or nil on clean EOF.
func (s *Scanner) Err() error { return s.err }

// Next parses lines until it produces the next request. It returns false
// at end of input or on the first error (see Err).
func (s *Scanner) Next() (Request, bool) {
	if s.done {
		return Request{}, false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		req, ts, err := parseMSRLine(line)
		if err != nil {
			if s.opt.MaxSkipped != 0 && (s.opt.MaxSkipped < 0 || s.skipped < s.opt.MaxSkipped) {
				s.skipped++
				continue
			}
			if s.opt.MaxSkipped != 0 {
				s.err = fmt.Errorf("trace: %s line %d: %w (%d malformed lines skipped, budget %d exhausted)",
					s.name, s.lineNo, err, s.skipped, s.opt.MaxSkipped)
			} else {
				s.err = fmt.Errorf("trace: %s line %d: %w", s.name, s.lineNo, err)
			}
			s.done = true
			return Request{}, false
		}
		if !s.started {
			s.started = true
			s.base = ts
		}
		req.Time = (ts - s.base) * filetimeTick
		if req.Time < s.prev {
			// Out-of-order (or pre-base) timestamp: clamp to the previous
			// arrival so the replayer's monotonic-arrival invariant holds.
			req.Time = s.prev
		}
		s.prev = req.Time
		return req, true
	}
	s.done = true
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("trace: %s: %w", s.name, err)
	}
	return Request{}, false
}
