package trace

import (
	"strings"
	"testing"
)

// FuzzParseTrace drives the lenient MSR parser (ReadMSRWith) with arbitrary
// input and skip budgets. Properties:
//
//   - it never panics;
//   - with a zero budget it behaves exactly like the strict ReadMSR;
//   - whenever the strict parse succeeds, every budget yields the same
//     requests and zero skipped lines (leniency must not change the parse
//     of well-formed input);
//   - with an unlimited budget a returned trace never contains a malformed
//     request, and the parse only fails on scanner-level errors (a line
//     longer than the buffer), never on field content.
func FuzzParseTrace(f *testing.F) {
	f.Add("128166372003061629,hm,1,Read,383496192,32768,4011\n", 0)
	f.Add("1,h,0,Write,0,4096,0\n2,h,0,Read,4096,512,9\n", 4)
	f.Add("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n1,h,0,Write,0,4096,0\n", 1)
	f.Add("1,h,0,Write,0,4096,0\nnot,a,trace\n2,h,0,Read,0,512,0\n", -1)
	f.Add("1,h,0,Write,0,4096,0\n3,h,0,trim,0,512,0\n", 1)
	f.Add("1,h,0,Write,-4,4096,0\n", -1)
	f.Add("1,h,0,Write,0,0,0\n", 2)
	f.Add("garbage\x00line\n9,h,0,Read,8192,512,0\n", -1)
	f.Add("", 0)
	f.Fuzz(func(t *testing.T, input string, budget int) {
		if budget > 1<<20 {
			budget = 1 << 20 // keep the loop bound sane; semantics unchanged
		}
		strict, strictErr := ReadMSR(strings.NewReader(input), "strict")
		lenient, lenientErr := ReadMSRWith(strings.NewReader(input), "lenient",
			MSROptions{MaxSkipped: budget})

		if budget == 0 {
			if (strictErr == nil) != (lenientErr == nil) {
				t.Fatalf("zero budget diverged from strict: %v vs %v", strictErr, lenientErr)
			}
		}
		if strictErr == nil && lenientErr == nil {
			if lenient.SkippedLines != 0 {
				t.Fatalf("skipped %d lines of input the strict parser accepts", lenient.SkippedLines)
			}
			if len(lenient.Requests) != len(strict.Requests) {
				t.Fatalf("lenient parsed %d requests, strict %d", len(lenient.Requests), len(strict.Requests))
			}
			for i := range strict.Requests {
				if strict.Requests[i] != lenient.Requests[i] {
					t.Fatalf("request %d differs: %+v vs %+v", i, strict.Requests[i], lenient.Requests[i])
				}
			}
		}
		if lenientErr == nil {
			for i, r := range lenient.Requests {
				if r.Size <= 0 || r.Offset < 0 {
					t.Fatalf("accepted malformed request %d: %+v", i, r)
				}
				if i > 0 && r.Time < lenient.Requests[i-1].Time {
					t.Fatalf("accepted non-monotone times at %d", i)
				}
			}
		}
		// Unlimited budget: only scanner errors (oversized lines) may
		// surface; any content-level failure must have been skipped.
		if budget < 0 && lenientErr != nil && !strings.Contains(lenientErr.Error(), "token too long") {
			t.Fatalf("unlimited budget still failed on content: %v", lenientErr)
		}
	})
}
