package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMSR drives the parser with arbitrary input: it must never panic,
// and anything it accepts must round-trip through WriteMSR into a trace
// with the same requests.
func FuzzReadMSR(f *testing.F) {
	f.Add("128166372003061629,hm,1,Read,383496192,32768,4011\n")
	f.Add("1,h,0,Write,0,4096,0\n2,h,0,Read,4096,512,9\n")
	f.Add("")
	f.Add("not,a,trace\n")
	f.Add("1,h,0,write,0,4096")
	f.Add("-5,h,0,Read,0,4096,0\n")
	f.Add("9223372036854775807,h,0,Write,1,1,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadMSR(strings.NewReader(input), "fuzz")
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for i, r := range tr.Requests {
			if r.Size <= 0 || r.Offset < 0 {
				t.Fatalf("accepted malformed request %d: %+v", i, r)
			}
			if i > 0 && r.Time < tr.Requests[i-1].Time {
				t.Fatalf("accepted non-monotone times at %d", i)
			}
		}
		// Round-trip: re-serialize and re-parse.
		var buf bytes.Buffer
		if err := WriteMSR(&buf, tr); err != nil {
			t.Fatalf("WriteMSR of accepted trace failed: %v", err)
		}
		tr2, err := ReadMSR(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round-trip length %d != %d", tr2.Len(), tr.Len())
		}
		for i := range tr.Requests {
			a, b := tr.Requests[i], tr2.Requests[i]
			if a.Write != b.Write || a.Offset != b.Offset || a.Size != b.Size {
				t.Fatalf("round-trip request %d mismatch: %+v vs %+v", i, a, b)
			}
		}
	})
}
