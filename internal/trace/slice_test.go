package trace

import "testing"

func sliceFixture() *Trace {
	t := &Trace{Name: "fix"}
	for i := int64(0); i < 10; i++ {
		t.Requests = append(t.Requests, Request{
			Time: i * 100, Write: i%2 == 0, Offset: i * 4096, Size: 4096,
		})
	}
	return t
}

func TestWindowRebasesTime(t *testing.T) {
	w := Window(sliceFixture(), 300, 700)
	if w.Len() != 4 {
		t.Fatalf("Len = %d, want 4", w.Len())
	}
	if w.Requests[0].Time != 0 || w.Requests[3].Time != 300 {
		t.Fatalf("rebase wrong: %d..%d", w.Requests[0].Time, w.Requests[3].Time)
	}
	if w.Requests[0].Offset != 3*4096 {
		t.Fatal("wrong requests selected")
	}
}

func TestWindowEmptyRange(t *testing.T) {
	if w := Window(sliceFixture(), 5000, 6000); w.Len() != 0 {
		t.Fatal("out-of-range window not empty")
	}
}

func TestPrefix(t *testing.T) {
	p := Prefix(sliceFixture(), 3)
	if p.Len() != 3 || p.Requests[2].Offset != 2*4096 {
		t.Fatalf("Prefix wrong: %+v", p.Requests)
	}
	if Prefix(sliceFixture(), 100).Len() != 10 {
		t.Fatal("overlong prefix not clamped")
	}
	if Prefix(sliceFixture(), -1).Len() != 0 {
		t.Fatal("negative prefix not clamped")
	}
	// Must not alias the source.
	src := sliceFixture()
	p = Prefix(src, 2)
	p.Requests[0].Offset = 999
	if src.Requests[0].Offset == 999 {
		t.Fatal("Prefix aliases the source")
	}
}

func TestSampleSystematic(t *testing.T) {
	s := Sample(sliceFixture(), 3)
	if s.Len() != 4 { // indices 0,3,6,9
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for i, want := range []int64{0, 3, 6, 9} {
		if s.Requests[i].Offset != want*4096 {
			t.Fatalf("sample[%d] = %+v", i, s.Requests[i])
		}
	}
	if Sample(sliceFixture(), 1).Len() != 10 {
		t.Fatal("k=1 must keep everything")
	}
}

func TestFilter(t *testing.T) {
	f := Filter(sliceFixture(), func(r Request) bool { return r.Write })
	if f.Len() != 5 {
		t.Fatalf("Len = %d, want 5 writes", f.Len())
	}
	for _, r := range f.Requests {
		if !r.Write {
			t.Fatal("non-write survived the filter")
		}
	}
}
