package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPageSpanAligned(t *testing.T) {
	r := Request{Offset: 8192, Size: 8192}
	first, n := r.PageSpan(4096)
	if first != 2 || n != 2 {
		t.Fatalf("PageSpan = (%d,%d), want (2,2)", first, n)
	}
}

func TestPageSpanUnaligned(t *testing.T) {
	// A 1-byte request crossing nothing touches one page.
	r := Request{Offset: 4095, Size: 1}
	if first, n := r.PageSpan(4096); first != 0 || n != 1 {
		t.Fatalf("PageSpan = (%d,%d), want (0,1)", first, n)
	}
	// 2 bytes straddling a boundary touch two pages.
	r = Request{Offset: 4095, Size: 2}
	if first, n := r.PageSpan(4096); first != 0 || n != 2 {
		t.Fatalf("PageSpan = (%d,%d), want (0,2)", first, n)
	}
}

func TestPageSpanZeroSize(t *testing.T) {
	r := Request{Offset: 100, Size: 0}
	if _, n := r.PageSpan(4096); n != 0 {
		t.Fatalf("zero-size request spans %d pages, want 0", n)
	}
}

func TestPageSpanPanicsOnBadPageSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for page size 0")
		}
	}()
	Request{}.PageSpan(0)
}

// Property: every page in [first, first+count) overlaps the byte range and
// the bytes at both ends fall inside the reported span.
func TestPageSpanCoversRangeProperty(t *testing.T) {
	f := func(off uint32, size uint16, shift uint8) bool {
		pageSize := int64(512) << (shift % 5) // 512..8192
		r := Request{Offset: int64(off), Size: int64(size%4096) + 1}
		first, n := r.PageSpan(pageSize)
		lo, hi := r.Offset, r.Offset+r.Size-1
		return first*pageSize <= lo && (first+int64(n))*pageSize > hi && n >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStatsTable2Style(t *testing.T) {
	// Page 0 is written 3 times (frequent, written), page 1 read 3 times
	// (frequent, not written), page 2 touched once.
	tr := &Trace{Name: "unit", Requests: []Request{
		{Time: 0, Write: true, Offset: 0, Size: 4096},
		{Time: 1, Write: true, Offset: 0, Size: 4096},
		{Time: 2, Write: true, Offset: 0, Size: 4096},
		{Time: 3, Write: false, Offset: 4096, Size: 4096},
		{Time: 4, Write: false, Offset: 4096, Size: 4096},
		{Time: 5, Write: false, Offset: 4096, Size: 4096},
		{Time: 6, Write: false, Offset: 8192, Size: 4096},
	}}
	s := ComputeStats(tr, 4096)
	if s.Requests != 7 || s.Writes != 3 || s.Reads != 4 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if math.Abs(s.WriteRatio-3.0/7.0) > 1e-9 {
		t.Fatalf("WriteRatio = %v", s.WriteRatio)
	}
	if s.MeanWriteBytes != 4096 || s.MeanReadBytes != 4096 {
		t.Fatalf("mean sizes wrong: %+v", s)
	}
	if s.DistinctPages != 3 {
		t.Fatalf("DistinctPages = %d, want 3", s.DistinctPages)
	}
	if math.Abs(s.FrequentRatio-2.0/3.0) > 1e-9 {
		t.Fatalf("FrequentRatio = %v, want 2/3", s.FrequentRatio)
	}
	// One written page (page 0), and it is frequent → ratio 1.
	if math.Abs(s.FrequentWriteRatio-1.0) > 1e-9 {
		t.Fatalf("FrequentWriteRatio = %v, want 1.0", s.FrequentWriteRatio)
	}
	if s.TotalPages != 7 {
		t.Fatalf("TotalPages = %d, want 7", s.TotalPages)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(&Trace{}, 4096)
	if s.Requests != 0 || s.WriteRatio != 0 || s.FrequentRatio != 0 {
		t.Fatalf("empty stats not zero: %+v", s)
	}
}

func TestReadMSRBasic(t *testing.T) {
	in := `128166372003061629,hm,1,Read,383496192,32768,4011
128166372016382155,hm,1,Write,2822144,4096,23011

128166372026382245,hm,1,write,2826240,8192,11000
`
	tr, err := ReadMSR(strings.NewReader(in), "hm_1")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (blank line skipped)", tr.Len())
	}
	if tr.Requests[0].Time != 0 {
		t.Fatalf("first request not rebased to 0: %d", tr.Requests[0].Time)
	}
	if tr.Requests[0].Write || !tr.Requests[1].Write || !tr.Requests[2].Write {
		t.Fatal("request types wrong")
	}
	wantNS := (int64(128166372016382155) - 128166372003061629) * 100
	if tr.Requests[1].Time != wantNS {
		t.Fatalf("rebased time = %d, want %d", tr.Requests[1].Time, wantNS)
	}
	if tr.Requests[1].Offset != 2822144 || tr.Requests[1].Size != 4096 {
		t.Fatal("offset/size wrong")
	}
}

func TestReadMSRRejectsMalformed(t *testing.T) {
	cases := []string{
		"notanumber,h,0,Read,0,4096,0",
		"1,h,0,Flush,0,4096,0",
		"1,h,0,Read,-5,4096,0",
		"1,h,0,Read,0,0,0",
		"1,h,0,Read,0",
	}
	for _, c := range cases {
		if _, err := ReadMSR(strings.NewReader(c), "bad"); err == nil {
			t.Errorf("line %q parsed without error", c)
		}
	}
}

func TestReadMSRClampsOutOfOrderTimestamps(t *testing.T) {
	in := "1000,h,0,Read,0,4096,0\n900,h,0,Read,4096,4096,0\n"
	tr, err := ReadMSR(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[1].Time != tr.Requests[0].Time {
		t.Fatalf("out-of-order time not clamped: %d", tr.Requests[1].Time)
	}
}

func TestMSRRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", Requests: []Request{
		{Time: 0, Write: true, Offset: 0, Size: 4096},
		{Time: 1_000_000, Write: false, Offset: 81920, Size: 16384},
		{Time: 2_000_000, Write: true, Offset: 40960, Size: 512},
	}}
	var buf bytes.Buffer
	if err := WriteMSR(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMSR(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round-trip length %d != %d", got.Len(), orig.Len())
	}
	for i := range orig.Requests {
		o, g := orig.Requests[i], got.Requests[i]
		if o.Write != g.Write || o.Offset != g.Offset || o.Size != g.Size {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, o, g)
		}
		// Times are preserved up to filetime tick resolution (100 ns).
		if g.Time != o.Time/100*100 {
			t.Fatalf("request %d time %d, want %d", i, g.Time, o.Time/100*100)
		}
	}
}
