package trace

import (
	"strings"
	"testing"
)

func TestReadSPCBasic(t *testing.T) {
	in := `0,100,4096,r,0.000000
0,108,8192,W,0.015000
1,0,4096,w,0.030000
`
	tr, err := ReadSPC(strings.NewReader(in), "fin1", 512)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Requests[0].Write || !tr.Requests[1].Write || !tr.Requests[2].Write {
		t.Fatal("opcodes wrong")
	}
	if tr.Requests[0].Offset != 100*512 || tr.Requests[0].Size != 4096 {
		t.Fatalf("request 0: %+v", tr.Requests[0])
	}
	// Timestamps: seconds → ns, rebased to 0.
	if tr.Requests[0].Time != 0 || tr.Requests[1].Time != 15_000_000 {
		t.Fatalf("times: %d %d", tr.Requests[0].Time, tr.Requests[1].Time)
	}
}

func TestReadSPCStacksASUs(t *testing.T) {
	// ASU 0 spans blocks [0, 124): lba 100 + ceil(8192/512)=16 → 116;
	// second line pushes it to 124. ASU 1's lba 0 must land at block 124.
	in := `0,100,4096,r,0
0,108,8192,w,0.5
1,0,4096,w,1.0
`
	tr, err := ReadSPC(strings.NewReader(in), "x", 512)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(124) * 512
	if tr.Requests[2].Offset != want {
		t.Fatalf("ASU 1 base offset = %d, want %d", tr.Requests[2].Offset, want)
	}
	// No overlap between ASU address ranges.
	if tr.Requests[1].Offset+tr.Requests[1].Size > want {
		t.Fatal("ASU 0 overlaps ASU 1")
	}
}

func TestReadSPCRejectsMalformed(t *testing.T) {
	cases := []string{
		"0,100,4096,r",          // too few fields
		"x,100,4096,r,0",        // bad asu
		"0,-1,4096,r,0",         // negative lba
		"0,100,0,r,0",           // zero size
		"0,100,4096,flush,0",    // bad opcode
		"0,100,4096,r,notatime", // bad timestamp
		"0,100,4096,r,-1",       // negative timestamp
	}
	for _, c := range cases {
		if _, err := ReadSPC(strings.NewReader(c), "bad", 512); err == nil {
			t.Errorf("line %q accepted", c)
		}
	}
	if _, err := ReadSPC(strings.NewReader(""), "x", 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestReadSPCClampsOutOfOrder(t *testing.T) {
	in := "0,0,512,r,1.0\n0,8,512,r,0.5\n"
	tr, err := ReadSPC(strings.NewReader(in), "x", 512)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[1].Time != tr.Requests[0].Time {
		t.Fatalf("out-of-order time not clamped: %d", tr.Requests[1].Time)
	}
}

func TestReadSPCEmptyAndBlankLines(t *testing.T) {
	tr, err := ReadSPC(strings.NewReader("\n\n"), "x", 512)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("blank input produced requests")
	}
}

func TestSPCRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", Requests: []Request{
		{Time: 0, Write: true, Offset: 512 * 100, Size: 4096},
		{Time: 1_500_000_000, Write: false, Offset: 512 * 200, Size: 8192},
	}}
	var buf strings.Builder
	if err := WriteSPC(&buf, orig, 512); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSPC(strings.NewReader(buf.String()), "rt", 512)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), orig.Len())
	}
	for i := range orig.Requests {
		o, g := orig.Requests[i], back.Requests[i]
		if o.Write != g.Write || o.Offset != g.Offset || o.Size != g.Size {
			t.Fatalf("request %d: %+v vs %+v", i, o, g)
		}
		// Times survive to nanosecond precision (%.9f seconds).
		if o.Time != g.Time {
			t.Fatalf("request %d time %d vs %d", i, o.Time, g.Time)
		}
	}
}

func TestWriteSPCRejectsBadBlockSize(t *testing.T) {
	if err := WriteSPC(&strings.Builder{}, &Trace{}, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}
