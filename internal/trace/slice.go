package trace

// Utilities for cutting traces down: time windows, request-count prefixes
// and deterministic subsampling. Real traces are often week-long; these
// are the standard knives for carving evaluation sections out of them.

// Window returns the requests with Time in [from, to), rebased so the
// window starts at time zero. The source trace is not modified.
func Window(t *Trace, from, to int64) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Requests {
		if r.Time < from || r.Time >= to {
			continue
		}
		r.Time -= from
		out.Requests = append(out.Requests, r)
	}
	return out
}

// Prefix returns the first n requests (or all of them if the trace is
// shorter). The returned trace shares no storage with the source.
func Prefix(t *Trace, n int) *Trace {
	if n > len(t.Requests) {
		n = len(t.Requests)
	}
	if n < 0 {
		n = 0
	}
	out := &Trace{Name: t.Name, Requests: make([]Request, n)}
	copy(out.Requests, t.Requests[:n])
	return out
}

// Sample keeps every k-th request (systematic sampling), preserving order
// and timestamps. k <= 1 returns a copy. Systematic sampling preserves
// arrival-rate shape better than random sampling and is deterministic.
//
// Caveat: any subsampling dilutes temporal locality — a page accessed
// twice may lose one of the two accesses — so hit ratios on a sampled
// trace underestimate the original's. Use Window or Prefix when locality
// must be preserved.
func Sample(t *Trace, k int) *Trace {
	if k <= 1 {
		return Prefix(t, len(t.Requests))
	}
	out := &Trace{Name: t.Name}
	for i := 0; i < len(t.Requests); i += k {
		out.Requests = append(out.Requests, t.Requests[i])
	}
	return out
}

// Filter returns the requests satisfying keep, preserving order and
// timestamps.
func Filter(t *Trace, keep func(Request) bool) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Requests {
		if keep(r) {
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}
