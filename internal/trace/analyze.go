package trace

import "sort"

// Analysis is the deep per-trace report behind cmd/traceinfo: everything
// Table 2 reports plus the size distributions and sequentiality measures
// that the synthetic workload generators are calibrated against.
type Analysis struct {
	// Stats is the Table 2 summary.
	Stats Stats
	// WriteSizePages / ReadSizePages are request-size histograms keyed in
	// pages: sorted (size, count) pairs.
	WriteSizePages, ReadSizePages []SizeBucket
	// SequentialWriteRatio is the fraction of write requests whose start
	// immediately follows some recent write's end (a 64-request window) —
	// the stream-detection view of sequentiality.
	SequentialWriteRatio float64
	// MeanWritePages / MeanReadPages are the mean request sizes in pages.
	MeanWritePages, MeanReadPages float64
	// DurationNs is the trace's time span.
	DurationNs int64
	// MeanGapNs is the mean interarrival gap.
	MeanGapNs int64
}

// SizeBucket is one request-size histogram entry.
type SizeBucket struct {
	Pages int
	Count int64
}

// Analyze computes the full report for a trace at the given page size.
func Analyze(t *Trace, pageSize int64) Analysis {
	an := newAnalyzer(pageSize)
	for _, r := range t.Requests {
		an.add(r)
	}
	return an.finish()
}

// AnalyzeSource is Analyze over a streaming Source: a single pass whose
// memory is bounded by the footprint and the size-histogram support, never
// the trace length.
func AnalyzeSource(src Source, pageSize int64) (Analysis, error) {
	an := newAnalyzer(pageSize)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		an.add(r)
	}
	if err := src.Err(); err != nil {
		return Analysis{}, err
	}
	return an.finish(), nil
}

// analyzer folds requests into an Analysis one at a time, sharing the
// statsAccum so the Table 2 numbers come from the same single pass.
type analyzer struct {
	pageSize   int64
	stats      *statsAccum
	writeSizes map[int]int64
	readSizes  map[int]int64
	// Recent write ends for sequentiality detection (a 64-request window).
	recentEnds          []int64
	seqWrites, writes   int
	wPages, rPages      int64
	total               int
	firstTime, lastTime int64
}

const seqWindow = 64

func newAnalyzer(pageSize int64) *analyzer {
	return &analyzer{
		pageSize:   pageSize,
		stats:      newStatsAccum(pageSize),
		writeSizes: map[int]int64{},
		readSizes:  map[int]int64{},
		recentEnds: make([]int64, 0, seqWindow),
	}
}

func (an *analyzer) add(r Request) {
	an.stats.add(r)
	if an.total == 0 {
		an.firstTime = r.Time
	}
	an.lastTime = r.Time
	an.total++
	_, n := r.PageSpan(an.pageSize)
	if r.Write {
		an.writes++
		an.wPages += int64(n)
		an.writeSizes[n]++
		for _, end := range an.recentEnds {
			if r.Offset == end {
				an.seqWrites++
				break
			}
		}
		if len(an.recentEnds) == seqWindow {
			copy(an.recentEnds, an.recentEnds[1:])
			an.recentEnds = an.recentEnds[:seqWindow-1]
		}
		an.recentEnds = append(an.recentEnds, r.Offset+r.Size)
	} else {
		an.rPages += int64(n)
		an.readSizes[n]++
	}
}

func (an *analyzer) finish() Analysis {
	a := Analysis{Stats: an.stats.finish()}
	a.WriteSizePages = sortBuckets(an.writeSizes)
	a.ReadSizePages = sortBuckets(an.readSizes)
	if an.writes > 0 {
		a.SequentialWriteRatio = float64(an.seqWrites) / float64(an.writes)
		a.MeanWritePages = float64(an.wPages) / float64(an.writes)
	}
	if reads := an.total - an.writes; reads > 0 {
		a.MeanReadPages = float64(an.rPages) / float64(reads)
	}
	if an.total > 1 {
		a.DurationNs = an.lastTime - an.firstTime
		a.MeanGapNs = a.DurationNs / int64(an.total-1)
	}
	return a
}

func sortBuckets(m map[int]int64) []SizeBucket {
	out := make([]SizeBucket, 0, len(m))
	for pages, count := range m {
		out = append(out, SizeBucket{Pages: pages, Count: count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pages < out[j].Pages })
	return out
}
