package trace

import "sort"

// Analysis is the deep per-trace report behind cmd/traceinfo: everything
// Table 2 reports plus the size distributions and sequentiality measures
// that the synthetic workload generators are calibrated against.
type Analysis struct {
	// Stats is the Table 2 summary.
	Stats Stats
	// WriteSizePages / ReadSizePages are request-size histograms keyed in
	// pages: sorted (size, count) pairs.
	WriteSizePages, ReadSizePages []SizeBucket
	// SequentialWriteRatio is the fraction of write requests whose start
	// immediately follows some recent write's end (a 64-request window) —
	// the stream-detection view of sequentiality.
	SequentialWriteRatio float64
	// MeanWritePages / MeanReadPages are the mean request sizes in pages.
	MeanWritePages, MeanReadPages float64
	// DurationNs is the trace's time span.
	DurationNs int64
	// MeanGapNs is the mean interarrival gap.
	MeanGapNs int64
}

// SizeBucket is one request-size histogram entry.
type SizeBucket struct {
	Pages int
	Count int64
}

// Analyze computes the full report for a trace at the given page size.
func Analyze(t *Trace, pageSize int64) Analysis {
	a := Analysis{Stats: ComputeStats(t, pageSize)}
	writeSizes := map[int]int64{}
	readSizes := map[int]int64{}
	// Recent write ends for sequentiality detection.
	const window = 64
	recentEnds := make([]int64, 0, window)
	var seqWrites, writes int
	var wPages, rPages int64
	for _, r := range t.Requests {
		_, n := r.PageSpan(pageSize)
		if r.Write {
			writes++
			wPages += int64(n)
			writeSizes[n]++
			for _, end := range recentEnds {
				if r.Offset == end {
					seqWrites++
					break
				}
			}
			if len(recentEnds) == window {
				copy(recentEnds, recentEnds[1:])
				recentEnds = recentEnds[:window-1]
			}
			recentEnds = append(recentEnds, r.Offset+r.Size)
		} else {
			rPages += int64(n)
			readSizes[n]++
		}
	}
	a.WriteSizePages = sortBuckets(writeSizes)
	a.ReadSizePages = sortBuckets(readSizes)
	if writes > 0 {
		a.SequentialWriteRatio = float64(seqWrites) / float64(writes)
		a.MeanWritePages = float64(wPages) / float64(writes)
	}
	if reads := len(t.Requests) - writes; reads > 0 {
		a.MeanReadPages = float64(rPages) / float64(reads)
	}
	if n := len(t.Requests); n > 1 {
		a.DurationNs = t.Requests[n-1].Time - t.Requests[0].Time
		a.MeanGapNs = a.DurationNs / int64(n-1)
	}
	return a
}

func sortBuckets(m map[int]int64) []SizeBucket {
	out := make([]SizeBucket, 0, len(m))
	for pages, count := range m {
		out = append(out, SizeBucket{Pages: pages, Count: count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pages < out[j].Pages })
	return out
}
