package trace

// Source is a pull iterator over trace requests: the streaming input the
// replay engine (internal/sim) consumes. A Source yields requests in
// non-decreasing Time order and is exhausted after Next first returns
// false; it is not resettable unless the concrete type says otherwise.
//
// Two families implement it: SliceSource wraps an already-materialized
// *Trace, and Scanner parses an MSR Cambridge CSV incrementally so a
// replay never holds more than one request in memory.
type Source interface {
	// Name labels the workload (Trace.Name for materialized traces, the
	// file name for scanned ones).
	Name() string
	// Next returns the next request. ok is false when the stream is
	// exhausted or failed; Err distinguishes the two.
	Next() (req Request, ok bool)
	// Err returns the first error the source hit, or nil on clean EOF.
	// Only meaningful after Next has returned ok=false.
	Err() error
}

// SkipCounter is implemented by lenient sources (a Scanner with a
// malformed-line budget) that drop input lines instead of failing.
type SkipCounter interface {
	// SkippedLines returns the number of malformed lines dropped so far.
	SkippedLines() int
}

// SliceSource adapts a materialized *Trace to the Source interface.
type SliceSource struct {
	t *Trace
	i int
}

// Source returns a fresh pull iterator over the trace. The iterator
// shares the trace's storage; the trace must not be mutated mid-iteration.
func (t *Trace) Source() *SliceSource { return &SliceSource{t: t} }

// Name returns the trace name.
func (s *SliceSource) Name() string { return s.t.Name }

// Next returns the next request in trace order.
func (s *SliceSource) Next() (Request, bool) {
	if s.i >= len(s.t.Requests) {
		return Request{}, false
	}
	r := s.t.Requests[s.i]
	s.i++
	return r, true
}

// Err always returns nil: a materialized trace cannot fail mid-iteration.
func (s *SliceSource) Err() error { return nil }

// SkippedLines reports the lenient-parse skip count recorded when the
// trace was materialized.
func (s *SliceSource) SkippedLines() int { return s.t.SkippedLines }

// Reset rewinds the iterator to the first request.
func (s *SliceSource) Reset() { s.i = 0 }

// Collect drains a source into a materialized Trace — the inverse of
// (*Trace).Source, useful when an algorithm genuinely needs random access
// (e.g. Mattson's stack algorithm sizes its tree from a first pass).
func Collect(src Source) (*Trace, error) {
	t := &Trace{Name: src.Name()}
	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		t.Requests = append(t.Requests, req)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	if sk, ok := src.(SkipCounter); ok {
		t.SkippedLines = sk.SkippedLines()
	}
	return t, nil
}
