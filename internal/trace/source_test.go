package trace

import (
	"strings"
	"testing"
)

func TestSliceSourceRoundTrip(t *testing.T) {
	tr := &Trace{Name: "rt", Requests: []Request{
		{Time: 0, Write: true, Offset: 0, Size: 4096},
		{Time: 100, Write: false, Offset: 8192, Size: 8192},
	}, SkippedLines: 3}
	src := tr.Source()
	if src.Name() != "rt" {
		t.Fatalf("Name = %q", src.Name())
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Requests) != 2 || got.SkippedLines != 3 {
		t.Fatalf("Collect round trip lost data: %+v", got)
	}
	for i := range got.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d diverged", i)
		}
	}
	// Exhausted; Reset rewinds.
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source yielded a request")
	}
	src.Reset()
	if r, ok := src.Next(); !ok || r != tr.Requests[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestCollectPropagatesScannerError(t *testing.T) {
	sc := Scan(strings.NewReader("bogus line\n"), "bad")
	if _, err := Collect(sc); err == nil {
		t.Fatal("Collect swallowed the scanner error")
	}
}

func TestAnalyzeSourceMatchesAnalyze(t *testing.T) {
	tr := &Trace{Name: "a", Requests: []Request{
		{Time: 0, Write: true, Offset: 0, Size: 4096},
		{Time: 1000, Write: true, Offset: 4096, Size: 8192}, // sequential
		{Time: 2000, Write: false, Offset: 0, Size: 4096},
		{Time: 5000, Write: true, Offset: 1 << 20, Size: 16384},
	}}
	want := Analyze(tr, 4096)
	got, err := AnalyzeSource(tr.Source(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats diverged:\n%+v\n%+v", got.Stats, want.Stats)
	}
	if got.SequentialWriteRatio != want.SequentialWriteRatio ||
		got.MeanWritePages != want.MeanWritePages ||
		got.MeanReadPages != want.MeanReadPages ||
		got.DurationNs != want.DurationNs || got.MeanGapNs != want.MeanGapNs {
		t.Fatalf("analysis diverged:\n%+v\n%+v", got, want)
	}
	if len(got.WriteSizePages) != len(want.WriteSizePages) {
		t.Fatal("size histograms diverged")
	}
}
