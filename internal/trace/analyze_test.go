package trace

import (
	"math"
	"testing"
)

func TestAnalyzeSizeHistograms(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Time: 0, Write: true, Offset: 0, Size: 4096},
		{Time: 1, Write: true, Offset: 8192, Size: 4096},
		{Time: 2, Write: true, Offset: 0, Size: 16384},
		{Time: 3, Write: false, Offset: 0, Size: 8192},
	}}
	a := Analyze(tr, 4096)
	if len(a.WriteSizePages) != 2 {
		t.Fatalf("write buckets = %v", a.WriteSizePages)
	}
	if a.WriteSizePages[0].Pages != 1 || a.WriteSizePages[0].Count != 2 {
		t.Fatalf("bucket[0] = %+v", a.WriteSizePages[0])
	}
	if a.WriteSizePages[1].Pages != 4 || a.WriteSizePages[1].Count != 1 {
		t.Fatalf("bucket[1] = %+v", a.WriteSizePages[1])
	}
	if len(a.ReadSizePages) != 1 || a.ReadSizePages[0].Pages != 2 {
		t.Fatalf("read buckets = %v", a.ReadSizePages)
	}
	if math.Abs(a.MeanWritePages-2.0) > 1e-9 {
		t.Fatalf("MeanWritePages = %v, want 2", a.MeanWritePages)
	}
	if a.MeanReadPages != 2 {
		t.Fatalf("MeanReadPages = %v", a.MeanReadPages)
	}
}

func TestAnalyzeSequentialDetection(t *testing.T) {
	// Three writes, each continuing the previous one, plus one random.
	tr := &Trace{Requests: []Request{
		{Time: 0, Write: true, Offset: 0, Size: 8192},
		{Time: 1, Write: true, Offset: 8192, Size: 8192},    // sequential
		{Time: 2, Write: true, Offset: 16384, Size: 4096},   // sequential
		{Time: 3, Write: true, Offset: 1 << 20, Size: 4096}, // random
	}}
	a := Analyze(tr, 4096)
	if math.Abs(a.SequentialWriteRatio-0.5) > 1e-9 {
		t.Fatalf("SequentialWriteRatio = %v, want 0.5", a.SequentialWriteRatio)
	}
}

func TestAnalyzeSequentialWindow(t *testing.T) {
	// A continuation arriving more than 64 writes later must not count.
	tr := &Trace{Requests: []Request{{Time: 0, Write: true, Offset: 0, Size: 4096}}}
	for i := int64(0); i < 70; i++ {
		tr.Requests = append(tr.Requests,
			Request{Time: 1 + i, Write: true, Offset: (100 + i*10) * 4096, Size: 4096})
	}
	tr.Requests = append(tr.Requests,
		Request{Time: 100, Write: true, Offset: 4096, Size: 4096}) // continues request 0
	a := Analyze(tr, 4096)
	if a.SequentialWriteRatio != 0 {
		t.Fatalf("stale continuation counted: %v", a.SequentialWriteRatio)
	}
}

func TestAnalyzeTiming(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Time: 0, Write: true, Offset: 0, Size: 4096},
		{Time: 1_000_000, Write: true, Offset: 4096, Size: 4096},
		{Time: 4_000_000, Write: true, Offset: 8192, Size: 4096},
	}}
	a := Analyze(tr, 4096)
	if a.DurationNs != 4_000_000 || a.MeanGapNs != 2_000_000 {
		t.Fatalf("duration/gap = %d/%d", a.DurationNs, a.MeanGapNs)
	}
}

func TestAnalyzeEmptyAndReadOnly(t *testing.T) {
	a := Analyze(&Trace{}, 4096)
	if a.MeanWritePages != 0 || a.SequentialWriteRatio != 0 || a.DurationNs != 0 {
		t.Fatalf("empty analysis not zero: %+v", a)
	}
	ro := &Trace{Requests: []Request{{Time: 0, Offset: 0, Size: 4096}}}
	a = Analyze(ro, 4096)
	if a.MeanReadPages != 1 || a.MeanWritePages != 0 {
		t.Fatalf("read-only analysis wrong: %+v", a)
	}
}
