package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The SPC-1 trace format (used by the public UMass Financial/WebSearch
// traces) is a CSV with one request per line:
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// ASU is the application storage unit, LBA the block address in units of
// blockSize bytes, Size in bytes, Opcode the letter r/R or w/W, and
// Timestamp in (fractional) seconds from the trace start.
//
// ASUs address independent logical volumes; ReadSPC folds them into one
// flat space by stacking each ASU above the previous one's highest
// address, which preserves all locality within an ASU and keeps ASUs
// disjoint. (Requests arrive timestamp-ordered in the public traces;
// out-of-order lines are clamped like ReadMSR does.)

// ReadSPC parses an SPC-1 format trace with the given block size (512 for
// the UMass traces).
func ReadSPC(r io.Reader, name string, blockSize int64) (*Trace, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("trace: SPC block size %d, need > 0", blockSize)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	type rawReq struct {
		asu  int
		lba  int64
		size int64
		wr   bool
		ns   int64
	}
	var raws []rawReq
	maxLBA := map[int]int64{} // per ASU: highest lba+blocks seen
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 5 {
			return nil, fmt.Errorf("trace: %s line %d: expected 5 fields, got %d", name, lineNo, len(fields))
		}
		asu, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || asu < 0 {
			return nil, fmt.Errorf("trace: %s line %d: bad ASU %q", name, lineNo, fields[0])
		}
		lba, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
		if err != nil || lba < 0 {
			return nil, fmt.Errorf("trace: %s line %d: bad LBA %q", name, lineNo, fields[1])
		}
		size, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("trace: %s line %d: bad size %q", name, lineNo, fields[2])
		}
		var wr bool
		switch strings.ToLower(strings.TrimSpace(fields[3])) {
		case "w":
			wr = true
		case "r":
			wr = false
		default:
			return nil, fmt.Errorf("trace: %s line %d: bad opcode %q", name, lineNo, fields[3])
		}
		sec, err := strconv.ParseFloat(strings.TrimSpace(fields[4]), 64)
		if err != nil || sec < 0 {
			return nil, fmt.Errorf("trace: %s line %d: bad timestamp %q", name, lineNo, fields[4])
		}
		raws = append(raws, rawReq{asu: asu, lba: lba, size: size, wr: wr, ns: int64(sec * 1e9)})
		blocks := (size + blockSize - 1) / blockSize
		if end := lba + blocks; end > maxLBA[asu] {
			maxLBA[asu] = end
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", name, err)
	}
	// Stack ASUs: base[asu] = sum of the spans of all lower-numbered ASUs.
	base := map[int]int64{}
	var cum int64
	for asu := 0; asu <= maxASU(maxLBA); asu++ {
		base[asu] = cum
		cum += maxLBA[asu]
	}
	t := &Trace{Name: name, Requests: make([]Request, 0, len(raws))}
	var t0 int64
	for i, rr := range raws {
		req := Request{
			Write:  rr.wr,
			Offset: (base[rr.asu] + rr.lba) * blockSize,
			Size:   rr.size,
		}
		if i == 0 {
			t0 = rr.ns
		}
		req.Time = rr.ns - t0
		if n := len(t.Requests); n > 0 && req.Time < t.Requests[n-1].Time {
			req.Time = t.Requests[n-1].Time
		}
		if req.Time < 0 {
			req.Time = 0
		}
		t.Requests = append(t.Requests, req)
	}
	return t, nil
}

// WriteSPC serializes a trace in SPC-1 format with a single ASU (0), the
// inverse of ReadSPC for single-volume traces. Offsets must be multiples
// of blockSize; others are rounded down, as SPC addresses are integral
// LBAs.
func WriteSPC(w io.Writer, t *Trace, blockSize int64) error {
	if blockSize <= 0 {
		return fmt.Errorf("trace: SPC block size %d, need > 0", blockSize)
	}
	bw := bufio.NewWriter(w)
	for _, r := range t.Requests {
		op := "r"
		if r.Write {
			op = "w"
		}
		_, err := fmt.Fprintf(bw, "0,%d,%d,%s,%.9f\n",
			r.Offset/blockSize, r.Size, op, float64(r.Time)/1e9)
		if err != nil {
			return fmt.Errorf("trace: write SPC %s: %w", t.Name, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush SPC %s: %w", t.Name, err)
	}
	return nil
}

func maxASU(m map[int]int64) int {
	max := 0
	for asu := range m {
		if asu > max {
			max = asu
		}
	}
	return max
}
