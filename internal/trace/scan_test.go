package trace

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// TestScannerMatchesReadMSR drives the scanner and the materializing
// reader over the same input — including blank lines, out-of-order
// timestamps and both op spellings — and demands identical requests.
func TestScannerMatchesReadMSR(t *testing.T) {
	input := strings.Join([]string{
		"128166372003061629,hm,0,Read,383496192,32768,313",
		"",
		"128166372016382155,hm,0,Write,2822144,4096,1138",
		"128166372005061629,hm,0,w,4096,8192,0", // out of order: clamped
		"  128166372026382155,hm,0,r,0,512,9  ",
		"128166372036382155,hm,0,Write,1048576,65536,3",
	}, "\n")

	want, err := ReadMSR(strings.NewReader(input), "t")
	if err != nil {
		t.Fatal(err)
	}
	sc := Scan(strings.NewReader(input), "t")
	var got []Request
	for {
		r, ok := sc.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Requests) {
		t.Fatalf("scanner yielded %d requests, reader %d", len(got), len(want.Requests))
	}
	for i := range got {
		if got[i] != want.Requests[i] {
			t.Fatalf("request %d: scanner %+v, reader %+v", i, got[i], want.Requests[i])
		}
	}
	// The clamp must have fired: request 2 arrived before request 1.
	if got[2].Time != got[1].Time {
		t.Fatalf("out-of-order request not clamped: %d vs %d", got[2].Time, got[1].Time)
	}
}

func TestScannerStrictStopsOnBadLine(t *testing.T) {
	input := "128166372003061629,hm,0,Read,0,4096,0\nnot,a,valid,line,at,all\n"
	sc := Scan(strings.NewReader(input), "bad")
	if _, ok := sc.Next(); !ok {
		t.Fatal("first (valid) line rejected")
	}
	if _, ok := sc.Next(); ok {
		t.Fatal("malformed line accepted in strict mode")
	}
	if err := sc.Err(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("Err = %v, want line-2 parse error", err)
	}
	// Exhausted scanners stay exhausted.
	if _, ok := sc.Next(); ok {
		t.Fatal("Next returned a request after an error")
	}
}

func TestScannerSkipBudget(t *testing.T) {
	input := "garbage\n128166372003061629,hm,0,Read,0,4096,0\nmore garbage\n" +
		"128166372013061629,hm,0,Write,4096,4096,0\n"
	sc := ScanMSRWith(strings.NewReader(input), "lenient", MSROptions{MaxSkipped: 2})
	n := 0
	for {
		if _, ok := sc.Next(); !ok {
			break
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2 || sc.SkippedLines() != 2 {
		t.Fatalf("parsed %d requests, skipped %d; want 2/2", n, sc.SkippedLines())
	}
}

func TestScannerSkipBudgetExhausted(t *testing.T) {
	input := "garbage\nworse garbage\n128166372003061629,hm,0,Read,0,4096,0\n"
	sc := ScanMSRWith(strings.NewReader(input), "lenient", MSROptions{MaxSkipped: 1})
	if _, ok := sc.Next(); ok {
		t.Fatal("budget-exhausted scanner yielded a request")
	}
	if err := sc.Err(); err == nil || !strings.Contains(err.Error(), "budget 1 exhausted") {
		t.Fatalf("Err = %v, want budget-exhausted error", err)
	}
}

// lineGen is an io.Reader that synthesizes an MSR CSV stream on the fly:
// totalLines requests, each padded with a long hostname field so the
// stream is hundreds of MB "on the wire" while the test never holds more
// than one chunk of it in memory.
type lineGen struct {
	totalLines int
	emitted    int
	buf        bytes.Buffer
	pad        string
}

func (g *lineGen) Read(p []byte) (int, error) {
	for g.buf.Len() < len(p) && g.emitted < g.totalLines {
		i := g.emitted
		op := "Read"
		if i%4 != 0 { // 75% writes
			op = "Write"
		}
		// 8 KB requests walking a 4096-page footprint, one per 100 µs.
		offset := int64(i%4096) * 4096
		fmt.Fprintf(&g.buf, "%d,%s,0,%s,%d,8192,0\n",
			128166372003061629+int64(i)*1000, g.pad, op, offset)
		g.emitted++
	}
	if g.buf.Len() == 0 {
		return 0, io.EOF
	}
	return g.buf.Read(p)
}

// TestScannerHugeSyntheticInput streams a ~320 MB-equivalent trace (one
// million ~330-byte lines) through the scanner-based stats path and checks
// the aggregates. The input is generated lazily by lineGen, so neither the
// CSV text nor the parsed requests are ever materialized: the test's
// memory stays O(footprint) while the logical input is multi-hundred-MB.
func TestScannerHugeSyntheticInput(t *testing.T) {
	const lines = 1_000_000
	gen := &lineGen{totalLines: lines, pad: strings.Repeat("h", 300)}
	sc := Scan(gen, "huge")
	s, err := ComputeStatsSource(sc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests != lines {
		t.Fatalf("Requests = %d, want %d", s.Requests, lines)
	}
	if s.Writes != lines*3/4 || s.Reads != lines/4 {
		t.Fatalf("split = %d writes / %d reads", s.Writes, s.Reads)
	}
	if s.MeanWriteBytes != 8192 || s.MeanReadBytes != 8192 {
		t.Fatalf("mean sizes = %v/%v, want 8192", s.MeanWriteBytes, s.MeanReadBytes)
	}
	// 8 KB requests at 4 KB pages touch 2 pages each over a 4096-page walk;
	// the last request at offset 4095*4096 spans pages 4095 and 4096.
	if s.DistinctPages != 4097 {
		t.Fatalf("DistinctPages = %d, want 4097", s.DistinctPages)
	}
	if s.TotalPages != lines*2 {
		t.Fatalf("TotalPages = %d, want %d", s.TotalPages, int64(lines)*2)
	}
	// Every page is touched far more than 3 times: fully frequent.
	if s.FrequentRatio != 1 || s.FrequentWriteRatio != 1 {
		t.Fatalf("frequent ratios = %v/%v, want 1/1", s.FrequentRatio, s.FrequentWriteRatio)
	}
}
