package ssd

import "testing"

func TestDeviceGeometryAccessors(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.PageSize() != 4096 {
		t.Fatalf("PageSize = %d", d.PageSize())
	}
	wantLogical := tinyParams().Flash.LogicalPages()
	if d.LogicalPages() != wantLogical {
		t.Fatalf("LogicalPages = %d, want %d", d.LogicalPages(), wantLogical)
	}
}

func TestDeviceTrim(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.FlushStriped(0, []int64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Trim([]int64{1}); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Out-of-range trim surfaces as an error.
	if err := d.Trim([]int64{d.LogicalPages()}); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
}

func TestDeviceUtilization(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.FlushStriped(0, []int64{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	u := d.Utilization(100_000_000)
	if u.MeanChannel <= 0 || u.MeanChip <= 0 {
		t.Fatalf("utilization empty after flush: %+v", u)
	}
	if u.MaxChannel < u.MeanChannel || u.MaxChip < u.MeanChip {
		t.Fatalf("max below mean: %+v", u)
	}
}

func TestDeviceFlushErrorsSurface(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	bad := []int64{d.LogicalPages() + 5}
	if _, err := d.FlushStriped(0, bad); err == nil {
		t.Fatal("striped flush of bad lpn accepted")
	}
	if _, err := d.FlushBlockBound(0, bad); err == nil {
		t.Fatal("block-bound flush of bad lpn accepted")
	}
	if _, err := d.ReadPages(0, bad); err == nil {
		t.Fatal("read of bad lpn accepted")
	}
}
