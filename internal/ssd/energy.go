package ssd

// Energy accounting — an extension metric: the paper's introduction lists
// power among the SSD advantages that DRAM buffering protects, and cache
// policies change the flash operation mix (programs, GC reads, erases),
// which dominates device energy. Constants are representative
// per-operation energies for MLC/TLC-class NAND from the SSD modeling
// literature; they are configurable because parts vary widely.
type EnergyParams struct {
	// ReadUJ is the energy of one page read (cell + transfer), in µJ.
	ReadUJ float64
	// ProgramUJ is the energy of one page program, in µJ.
	ProgramUJ float64
	// EraseUJ is the energy of one block erase, in µJ.
	EraseUJ float64
	// DRAMAccessUJ is the energy of one page moved through DRAM, in µJ.
	DRAMAccessUJ float64
}

// DefaultEnergyParams returns representative values: 25 µJ reads, 200 µJ
// programs, 1500 µJ erases, 2 µJ DRAM page accesses.
func DefaultEnergyParams() EnergyParams {
	return EnergyParams{ReadUJ: 25, ProgramUJ: 200, EraseUJ: 1500, DRAMAccessUJ: 2}
}

// EnergyBreakdown itemizes a run's energy in µJ.
type EnergyBreakdown struct {
	ReadsUJ    float64
	ProgramsUJ float64
	ErasesUJ   float64
	GCUJ       float64 // migrations: one read + one program each
	TotalUJ    float64
}

// Energy derives the device's flash energy from its operation counters.
// DRAM energy belongs to the cache layer and is accounted by the caller
// (the replayer knows hits and insertions).
func (d *Device) Energy(ep EnergyParams) EnergyBreakdown {
	c := d.Counters()
	var e EnergyBreakdown
	e.ReadsUJ = float64(c.FlashReads) * ep.ReadUJ
	e.ProgramsUJ = float64(c.FlashWrites) * ep.ProgramUJ
	e.GCUJ = float64(c.GCMigrations) * (ep.ReadUJ + ep.ProgramUJ)
	e.ErasesUJ = float64(c.Erases) * ep.EraseUJ
	e.TotalUJ = e.ReadsUJ + e.ProgramsUJ + e.GCUJ + e.ErasesUJ
	return e
}
