package ssd

import "testing"

func TestEnduranceFreshDevice(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	e := d.Endurance(0)
	if e.PELimit != DefaultPELimit {
		t.Fatalf("PELimit = %d, want default %d", e.PELimit, DefaultPELimit)
	}
	if e.LifeConsumed != 0 || e.Wear.TotalErases != 0 {
		t.Fatalf("fresh device shows wear: %+v", e)
	}
	if e.ProjectedHostPages != 0 {
		t.Fatal("projection requires host writes")
	}
}

func TestEnduranceTracksWear(t *testing.T) {
	p := tinyParams()
	p.Precondition = 0.8
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	lpns := make([]int64, 16)
	for i := range lpns {
		lpns[i] = int64(i)
	}
	now := int64(0)
	for round := 0; round < 80; round++ {
		bt, err := d.FlushStriped(now, lpns)
		if err != nil {
			t.Fatal(err)
		}
		now = bt.Durable
	}
	e := d.Endurance(100)
	if e.Wear.TotalErases == 0 {
		t.Fatal("no erases recorded after churn")
	}
	if e.LifeConsumed <= 0 {
		t.Fatalf("LifeConsumed = %v", e.LifeConsumed)
	}
	if e.ProjectedHostPages <= 0 {
		t.Fatalf("ProjectedHostPages = %d", e.ProjectedHostPages)
	}
	if e.WriteAmplification < 1 {
		t.Fatalf("WA = %v, want >= 1", e.WriteAmplification)
	}
	if e.Wear.MaxErase < e.Wear.MinErase || e.Wear.MeanErase <= 0 {
		t.Fatalf("wear stats inconsistent: %+v", e.Wear)
	}
}

func TestEnduranceCustomPELimit(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.FlushStriped(0, []int64{0}); err != nil {
		t.Fatal(err)
	}
	e := d.Endurance(1000)
	if e.PELimit != 1000 {
		t.Fatalf("PELimit = %d", e.PELimit)
	}
	// No erases yet: full life remaining, projection positive.
	if e.LifeConsumed != 0 || e.ProjectedHostPages <= 0 {
		t.Fatalf("endurance wrong: %+v", e)
	}
}
