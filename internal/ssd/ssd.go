// Package ssd presents the simulated solid-state drive as one device: the
// flash array and FTL behind a host-facing API, plus the DRAM service
// times for cache hits. The replayer drives a Device with the flash
// traffic the cache policy decides on (evicted batches, read misses) and
// uses the returned completion times to compute I/O response times.
package ssd

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/ftl"
)

// Params configures a simulated SSD.
type Params struct {
	// Flash is the array geometry and timing (Table 1).
	Flash flash.Params
	// DRAMAccess is the service time of one page moved to or from the
	// on-board DRAM cache, in nanoseconds. Cache hits cost only this.
	DRAMAccess int64
	// Precondition is the fraction of the logical space pre-mapped before
	// the trace starts, so GC sees an aged device.
	Precondition float64
	// Faults configures deterministic fault injection (internal/fault).
	// The zero value disables it and leaves the device bit-identical to a
	// fault-free build. The injector attaches after preconditioning, so
	// scripted operation ordinals count replay operations only.
	Faults fault.Config
	// GCSched configures the preemptible GC scheduler (internal/ftl
	// gcsched.go). The zero value keeps plain greedy GC, bit-identical to a
	// device without the scheduler. Enabled after preconditioning, so the
	// fill phase never paces.
	GCSched ftl.GCSchedConfig
}

// DefaultParams mirrors the paper's setup: Table 1 flash parameters, a
// 1 µs DRAM page access, and a device preconditioned to 50% utilization.
func DefaultParams() Params {
	return Params{
		Flash:        flash.DefaultParams(),
		DRAMAccess:   1_000,
		Precondition: 0.5,
	}
}

// ScaledParams is DefaultParams with a smaller flash array (see
// flash.ScaledParams); ratios and latencies are unchanged.
func ScaledParams(blockDivisor int) Params {
	p := DefaultParams()
	p.Flash = flash.ScaledParams(blockDivisor)
	return p
}

// Counters is a snapshot of the device's activity.
type Counters struct {
	// FlashWrites counts pages programmed for host flushes — the metric of
	// the paper's Fig. 11.
	FlashWrites int64
	// FlashReads counts pages read from flash for the host.
	FlashReads int64
	// GCMigrations counts valid-page copies performed by GC.
	GCMigrations int64
	// GCRuns counts GC victim collections.
	GCRuns int64
	// GCPauseNs is the cumulative die-busy time GC added to its victims'
	// chips — the foreground-visible pause total, accumulated with or
	// without telemetry attached.
	GCPauseNs int64
	// Erases counts block erases.
	Erases int64

	// Fault-plane counters; all zero on a fault-free device.

	// ProgramRetries counts writes re-issued after injected program
	// failures.
	ProgramRetries int64
	// RetiredBlocks counts blocks permanently retired.
	RetiredBlocks int64
	// InjectedProgramFails / InjectedEraseFails / GrownBadBlocks count the
	// faults the injector fired.
	InjectedProgramFails int64
	InjectedEraseFails   int64
	GrownBadBlocks       int64
	// DegradedEntries counts transitions into read-only mode.
	DegradedEntries int64
	// InvariantChecks counts post-recovery invariant suite runs.
	InvariantChecks int64
}

// TotalPrograms is every page program the flash saw (host + GC).
func (c Counters) TotalPrograms() int64 { return c.FlashWrites + c.GCMigrations }

// WriteAmplification is (host + GC programs) / host programs, or 0 when no
// host writes happened.
func (c Counters) WriteAmplification() float64 {
	if c.FlashWrites == 0 {
		return 0
	}
	return float64(c.TotalPrograms()) / float64(c.FlashWrites)
}

// Device is one simulated SSD. Not safe for concurrent use: trace replay is
// deterministic and single-threaded (the sharded engine gives every shard
// its own Device).
type Device struct {
	p       Params
	f       *ftl.FTL
	inj     *fault.Injector // nil on a fault-free device
	checker *fault.Checker  // nil unless Faults.CheckInvariants

	// Back-pressure plane (SetBackPressure): bpRing holds the durable
	// times of the last bpDepth flush batches; admission waits until the
	// batch bpDepth flushes ago is durable, bounding the destage backlog
	// the cache may pile onto the flash backend.
	bpRing    []int64
	bpPos     int
	bpStalls  int64
	bpStallNs int64
}

// New builds a device, preconditioning it per the params and attaching the
// fault plane (if configured) once the device is aged.
func New(p Params) (*Device, error) {
	if p.DRAMAccess < 0 {
		return nil, fmt.Errorf("ssd: negative DRAM access time")
	}
	f, err := ftl.New(p.Flash)
	if err != nil {
		return nil, err
	}
	if p.Precondition > 0 {
		if err := f.Precondition(p.Precondition); err != nil {
			return nil, err
		}
	}
	d := &Device{p: p, f: f}
	if p.GCSched.Enabled {
		f.EnableGCScheduler(p.GCSched)
	}
	if p.Faults.Enabled() {
		inj, err := fault.NewInjector(p.Faults)
		if err != nil {
			return nil, fmt.Errorf("ssd: %w", err)
		}
		// Aged-device seeding happens before the injector attaches, so the
		// wear history exists from the first replay operation but consumes
		// no fault-stream draws.
		f.Array().PreWear(p.Faults.Seed, p.Faults.PrewornErases, p.Faults.PrewornJitter)
		d.inj = inj
		f.EnableFaults(inj)
		if p.Faults.CheckInvariants {
			d.checker = fault.NewChecker(f)
			f.SetChecker(d.checker)
		}
	}
	return d, nil
}

// SetTap attaches a timing tap to the FTL's operation paths (nil
// detaches): page programs, reads, erases and GC collections report their
// simulated timings to it. Taps observe only — attaching one never changes
// a replay's metrics. The telemetry plane (internal/obs) implements it.
func (d *Device) SetTap(t ftl.Tap) { d.f.SetTap(t) }

// FaultsEnabled reports whether a fault injector is attached.
func (d *Device) FaultsEnabled() bool { return d.inj != nil }

// Degraded reports whether the device has entered read-only mode.
func (d *Device) Degraded() bool { return d.f.Degraded() }

// ForceReadOnly trips the device into read-only degraded mode immediately
// (ftl.ForceDegrade): writes fail with fault.ErrReadOnly, reads keep
// working. An operational fuse for the service layer and its tests.
func (d *Device) ForceReadOnly() { d.f.ForceDegrade() }

// FaultStats returns the injector's fault counters (zero without faults).
func (d *Device) FaultStats() fault.Stats {
	if d.inj == nil {
		return fault.Stats{}
	}
	return d.inj.Stats()
}

// InvariantChecker returns the attached checker, or nil.
func (d *Device) InvariantChecker() *fault.Checker { return d.checker }

// Params returns the device configuration.
func (d *Device) Params() Params { return d.p }

// LogicalPages returns the host-visible capacity in pages.
func (d *Device) LogicalPages() int64 { return d.f.LogicalPages() }

// PageSize returns the page size in bytes.
func (d *Device) PageSize() int64 { return int64(d.p.Flash.PageSize) }

// CacheAccess returns the completion time of touching n pages in DRAM
// starting at now — the cost of a cache hit or of landing write data in the
// buffer.
func (d *Device) CacheAccess(now int64, n int) int64 {
	return now + int64(n)*d.p.DRAMAccess
}

// SetBackPressure bounds the destage backlog between the cache and the
// flash backend to depth outstanding flush batches (MQSim's
// back_pressure_buffer_max_depth): once depth batches are in flight, the
// next admission (AdmitAt) waits for the oldest to become durable. Zero
// disables and is the default — a device without back-pressure admits at
// the caller's time unchanged, so existing replays are bit-identical.
func (d *Device) SetBackPressure(depth int) {
	if depth <= 0 {
		d.bpRing = nil
		return
	}
	d.bpRing = make([]int64, depth)
	d.bpPos = 0
}

// BackPressureDepth returns the configured backlog bound (0 = off).
func (d *Device) BackPressureDepth() int { return len(d.bpRing) }

// AdmitAt returns the earliest time at or after now a new request may be
// admitted under the back-pressure bound, accounting any wait as a stall.
// Without back-pressure configured it returns now unchanged.
func (d *Device) AdmitAt(now int64) int64 {
	if d.bpRing == nil {
		return now
	}
	if gate := d.bpRing[d.bpPos]; gate > now {
		d.bpStalls++
		d.bpStallNs += gate - now
		return gate
	}
	return now
}

// BackPressureStalls reports how many admissions waited on the backlog
// bound and for how long in total (simulated ns).
func (d *Device) BackPressureStalls() (stalls int64, stallNs int64) {
	return d.bpStalls, d.bpStallNs
}

// GCPauseNs returns the cumulative foreground-visible GC pause. It is a
// cheap field read (no Stats snapshot) so the engine can diff it around
// every dispatch for per-request GC-overlap attribution.
func (d *Device) GCPauseNs() int64 { return d.f.GCPauseNs() }

// noteFlush records one flush batch's durable time in the back-pressure
// ring. Every flush path calls it; a nil ring makes it a no-op.
func (d *Device) noteFlush(durable int64) {
	if d.bpRing == nil {
		return
	}
	d.bpRing[d.bpPos] = durable
	d.bpPos = (d.bpPos + 1) % len(d.bpRing)
}

// FlushStriped writes a batch of evicted pages using dynamic allocation
// across all channels. The returned timing separates when the buffer
// frames are free (Transferred — what an evicting host request waits for)
// from when the data is durable.
func (d *Device) FlushStriped(now int64, lpns []int64) (ftl.BatchTiming, error) {
	t, err := d.f.WriteStriped(now, lpns)
	if err != nil {
		return ftl.BatchTiming{}, fmt.Errorf("ssd: striped flush: %w", err)
	}
	d.noteFlush(t.Durable)
	return t, nil
}

// FlushBlockBound writes a batch onto a single plane (BPLRU's whole-block
// flush); see FlushStriped for the timing semantics.
func (d *Device) FlushBlockBound(now int64, lpns []int64) (ftl.BatchTiming, error) {
	t, err := d.f.WriteBlockBound(now, lpns)
	if err != nil {
		return ftl.BatchTiming{}, fmt.Errorf("ssd: block-bound flush: %w", err)
	}
	d.noteFlush(t.Durable)
	return t, nil
}

// ReadPages reads a batch of pages from flash, returning when the last one
// reaches the controller.
func (d *Device) ReadPages(now int64, lpns []int64) (int64, error) {
	done, err := d.f.Read(now, lpns)
	if err != nil {
		return 0, fmt.Errorf("ssd: read: %w", err)
	}
	return done, nil
}

// Counters snapshots the device activity.
func (d *Device) Counters() Counters {
	s := d.f.Stats()
	c := Counters{
		FlashWrites:     s.HostPrograms,
		FlashReads:      s.HostReads,
		GCMigrations:    s.GCMigrations,
		GCRuns:          s.GCRuns,
		GCPauseNs:       s.GCPauseNs,
		Erases:          s.Erases,
		ProgramRetries:  s.ProgramRetries,
		RetiredBlocks:   s.RetiredBlocks,
		DegradedEntries: s.DegradedEntries,
	}
	if d.inj != nil {
		fs := d.inj.Stats()
		c.InjectedProgramFails = fs.ProgramFails
		c.InjectedEraseFails = fs.EraseFails
		c.GrownBadBlocks = fs.GrownBad
	}
	if d.checker != nil {
		c.InvariantChecks = d.checker.Checks()
	}
	return c
}

// BackgroundGC runs opportunistic garbage collection during an idle
// window (up to maxVictims block collections), refilling free-block
// headroom before foreground writes would stall on it. Returns the victim
// count.
func (d *Device) BackgroundGC(now int64, maxVictims int) int {
	soft := int(float64(d.p.Flash.BlocksPerPlane)*d.p.Flash.GCThreshold) * 2
	return d.f.BackgroundGC(now, maxVictims, soft)
}

// EnableGCScheduler turns on (or reconfigures) the preemptible GC
// scheduler after construction — the budgeted evolution of BackgroundGC.
// Devices built with Params.GCSched.Enabled need no explicit call.
func (d *Device) EnableGCScheduler(cfg ftl.GCSchedConfig) {
	d.f.EnableGCScheduler(cfg)
}

// GCSchedEnabled reports whether the preemptible GC scheduler is on.
func (d *Device) GCSchedEnabled() bool { return d.f.GCSchedulerEnabled() }

// ScheduleGC grants the GC scheduler one budgeted slice of projected die
// time at now, resuming any preempted victim collection first. Returns the
// victim collections completed. A no-op (0) without the scheduler enabled.
func (d *Device) ScheduleGC(now, budgetNs int64) int {
	return d.f.ScheduleGC(now, budgetNs)
}

// GCSchedStats returns the scheduler's cumulative counters (all zero when
// the scheduler is disabled).
func (d *Device) GCSchedStats() ftl.GCSchedStats { return d.f.GCSchedStats() }

// GCJobInFlight reports whether a preempted GC victim collection is
// pending resume.
func (d *Device) GCJobInFlight() bool { return d.f.GCJobInFlight() }

// FlushOnChannel writes a batch onto one channel's planes (ECR's
// channel-affine flush); see FlushStriped for the timing semantics.
func (d *Device) FlushOnChannel(now int64, lpns []int64, channel int) (ftl.BatchTiming, error) {
	t, err := d.f.WriteOnChannel(now, lpns, channel)
	if err != nil {
		return ftl.BatchTiming{}, fmt.Errorf("ssd: channel flush: %w", err)
	}
	d.noteFlush(t.Durable)
	return t, nil
}

// Channels implements cache.DeviceView.
func (d *Device) Channels() int { return d.p.Flash.Channels }

// ChannelFreeAt implements cache.DeviceView: when the channel's bus frees.
func (d *Device) ChannelFreeAt(channel int) int64 {
	return d.f.Timeline().ChannelFree(channel)
}

// Trim discards logical pages (ATA TRIM / NVMe Deallocate): stale copies
// are invalidated so GC reclaims them without migration.
func (d *Device) Trim(lpns []int64) error {
	if err := d.f.Trim(lpns); err != nil {
		return fmt.Errorf("ssd: trim: %w", err)
	}
	return nil
}

// Utilization reports channel/die occupancy fractions over [0, horizon].
func (d *Device) Utilization(horizon int64) flash.Utilization {
	return d.f.Timeline().Utilization(horizon)
}

// CheckInvariants validates the FTL and array state (tests only).
func (d *Device) CheckInvariants() error { return d.f.CheckInvariants() }
