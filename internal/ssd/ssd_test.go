package ssd

import (
	"testing"

	"repro/internal/flash"
)

func tinyParams() Params {
	p := DefaultParams()
	p.Flash.Channels = 2
	p.Flash.ChipsPerChannel = 2
	p.Flash.BlocksPerPlane = 16
	p.Flash.PagesPerBlock = 8
	p.Flash.OverProvision = 0.25
	p.Precondition = 0
	return p
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.Flash.Channels != 8 || p.DRAMAccess <= 0 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	if p.Flash.PhysicalBytes() != 128<<30 {
		t.Fatal("default device is not 128 GiB")
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	p := tinyParams()
	p.DRAMAccess = -1
	if _, err := New(p); err == nil {
		t.Fatal("negative DRAM access accepted")
	}
	p = tinyParams()
	p.Flash.Channels = 0
	if _, err := New(p); err == nil {
		t.Fatal("invalid flash accepted")
	}
}

func TestCacheAccessTiming(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CacheAccess(100, 3); got != 100+3*d.Params().DRAMAccess {
		t.Fatalf("CacheAccess = %d", got)
	}
	if d.CacheAccess(100, 0) != 100 {
		t.Fatal("zero-page cache access should be free")
	}
}

func TestFlushAndReadRoundTrip(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	lpns := []int64{0, 1, 2, 3}
	bt, err := d.FlushStriped(0, lpns)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Transferred <= 0 || bt.Durable <= bt.Transferred {
		t.Fatalf("flush timing wrong: %+v", bt)
	}
	rdone, err := d.ReadPages(bt.Durable, lpns)
	if err != nil {
		t.Fatal(err)
	}
	if rdone <= bt.Durable {
		t.Fatal("read took no time")
	}
	c := d.Counters()
	if c.FlashWrites != 4 || c.FlashReads != 4 {
		t.Fatalf("counters wrong: %+v", c)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockBoundSlowerThanStriped(t *testing.T) {
	ds, _ := New(tinyParams())
	db, _ := New(tinyParams())
	lpns := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	sDone, err := ds.FlushStriped(0, lpns)
	if err != nil {
		t.Fatal(err)
	}
	bDone, err := db.FlushBlockBound(0, lpns)
	if err != nil {
		t.Fatal(err)
	}
	if bDone.Transferred <= sDone.Transferred {
		t.Fatalf("block-bound (%+v) not slower than striped (%+v)", bDone, sDone)
	}
}

func TestPreconditionAgesDevice(t *testing.T) {
	p := tinyParams()
	p.Precondition = 0.5
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Preconditioning must not count as host activity.
	if c := d.Counters(); c.FlashWrites != 0 {
		t.Fatalf("precondition counted as host writes: %+v", c)
	}
	// Overwriting a preconditioned page must invalidate the old copy.
	if _, err := d.FlushStriped(0, []int64{0}); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAmplification(t *testing.T) {
	c := Counters{FlashWrites: 100, GCMigrations: 25}
	if c.WriteAmplification() != 1.25 {
		t.Fatalf("WA = %v, want 1.25", c.WriteAmplification())
	}
	if (Counters{}).WriteAmplification() != 0 {
		t.Fatal("WA of idle device should be 0")
	}
	if c.TotalPrograms() != 125 {
		t.Fatal("TotalPrograms wrong")
	}
}

func TestGCUnderSustainedOverwrite(t *testing.T) {
	p := tinyParams()
	p.Precondition = 0.8
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	lpns := make([]int64, 16)
	for i := range lpns {
		lpns[i] = int64(i)
	}
	now := int64(0)
	for round := 0; round < 60; round++ {
		bt, err := d.FlushStriped(now, lpns)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		now = bt.Durable
	}
	c := d.Counters()
	if c.GCRuns == 0 {
		t.Fatalf("GC never ran on a preconditioned device: %+v", c)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScaledParams(t *testing.T) {
	p := ScaledParams(512)
	if p.Flash.BlocksPerPlane != flash.DefaultParams().BlocksPerPlane/512 {
		t.Fatalf("scaling wrong: %d", p.Flash.BlocksPerPlane)
	}
	if p.DRAMAccess != DefaultParams().DRAMAccess {
		t.Fatal("scaling changed DRAM timing")
	}
}

func TestBackPressureAdmitAt(t *testing.T) {
	p := ScaledParams(64)
	p.Precondition = 0
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Unconfigured: AdmitAt is the identity and counts nothing.
	if got := d.AdmitAt(123); got != 123 {
		t.Fatalf("AdmitAt without back-pressure = %d, want 123", got)
	}
	d.SetBackPressure(2)
	if d.BackPressureDepth() != 2 {
		t.Fatalf("BackPressureDepth = %d, want 2", d.BackPressureDepth())
	}
	// Two outstanding flush batches fill the ring; the next admission
	// waits for the older one's durable time.
	bt1, err := d.FlushStriped(0, []int64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.FlushStriped(0, []int64{4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	if got := d.AdmitAt(0); got != bt1.Durable {
		t.Fatalf("AdmitAt(0) = %d, want first batch durable %d", got, bt1.Durable)
	}
	stalls, stallNs := d.BackPressureStalls()
	if stalls != 1 || stallNs != bt1.Durable {
		t.Fatalf("stalls = %d/%dns, want 1/%d", stalls, stallNs, bt1.Durable)
	}
	// At or past the gate: no stall.
	if got := d.AdmitAt(bt1.Durable); got != bt1.Durable {
		t.Fatalf("AdmitAt(gate) = %d, want %d", got, bt1.Durable)
	}
	if stalls, _ := d.BackPressureStalls(); stalls != 1 {
		t.Fatalf("stall count moved to %d on a non-stalling admission", stalls)
	}
	// Disabling resets the plane.
	d.SetBackPressure(0)
	if d.BackPressureDepth() != 0 {
		t.Fatal("SetBackPressure(0) left a ring")
	}
	if got := d.AdmitAt(1); got != 1 {
		t.Fatalf("AdmitAt after disable = %d, want 1", got)
	}
}
