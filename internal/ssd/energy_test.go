package ssd

import (
	"math"
	"testing"
)

func TestEnergyOnFreshDevice(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	e := d.Energy(DefaultEnergyParams())
	if e.TotalUJ != 0 {
		t.Fatalf("fresh device energy %v", e.TotalUJ)
	}
}

func TestEnergyCountsOperations(t *testing.T) {
	d, err := New(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	lpns := []int64{0, 1, 2, 3}
	if _, err := d.FlushStriped(0, lpns); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadPages(0, lpns[:2]); err != nil {
		t.Fatal(err)
	}
	ep := DefaultEnergyParams()
	e := d.Energy(ep)
	if math.Abs(e.ProgramsUJ-4*ep.ProgramUJ) > 1e-9 {
		t.Fatalf("ProgramsUJ = %v", e.ProgramsUJ)
	}
	if math.Abs(e.ReadsUJ-2*ep.ReadUJ) > 1e-9 {
		t.Fatalf("ReadsUJ = %v", e.ReadsUJ)
	}
	if math.Abs(e.TotalUJ-(e.ReadsUJ+e.ProgramsUJ+e.GCUJ+e.ErasesUJ)) > 1e-9 {
		t.Fatal("total does not sum")
	}
}

func TestEnergyIncludesGC(t *testing.T) {
	p := tinyParams()
	p.Precondition = 0.8
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	lpns := make([]int64, 16)
	for i := range lpns {
		lpns[i] = int64(i)
	}
	now := int64(0)
	for round := 0; round < 80; round++ {
		bt, err := d.FlushStriped(now, lpns)
		if err != nil {
			t.Fatal(err)
		}
		now = bt.Durable
	}
	e := d.Energy(DefaultEnergyParams())
	c := d.Counters()
	if c.GCRuns > 0 && e.ErasesUJ <= 0 {
		t.Fatalf("erase energy missing: %+v (counters %+v)", e, c)
	}
	// A pure hot-spot overwrite leaves victims fully invalid, so GC may
	// migrate nothing; migration energy must track the counter exactly.
	ep := DefaultEnergyParams()
	if want := float64(c.GCMigrations) * (ep.ReadUJ + ep.ProgramUJ); e.GCUJ != want {
		t.Fatalf("GCUJ = %v, want %v", e.GCUJ, want)
	}
}
