package ssd

import "repro/internal/flash"

// Endurance projects device lifetime from the observed wear and write
// amplification — the quantity the paper's introduction says write
// buffering protects (high-density NAND endures only a few hundred P/E
// cycles; it quotes 500 for QLC).
type Endurance struct {
	// Wear is the erase-cycle distribution across blocks.
	Wear flash.Wear
	// PELimit is the per-block program/erase budget used for projection.
	PELimit int
	// LifeConsumed is MaxErase / PELimit: the fraction of the worst
	// block's budget already spent.
	LifeConsumed float64
	// ProjectedHostPages is how many further host page writes the device
	// can absorb before the mean block exhausts its budget, given the
	// observed write amplification. Zero when nothing has been written.
	ProjectedHostPages int64
	// WriteAmplification echoes the counter-derived WA used above.
	WriteAmplification float64
}

// DefaultPELimit is the QLC program/erase budget the paper quotes.
const DefaultPELimit = 500

// Endurance computes the projection for a given P/E budget (0 means
// DefaultPELimit).
func (d *Device) Endurance(peLimit int) Endurance {
	if peLimit <= 0 {
		peLimit = DefaultPELimit
	}
	c := d.Counters()
	w := d.f.Array().WearStats()
	e := Endurance{
		Wear:               w,
		PELimit:            peLimit,
		WriteAmplification: c.WriteAmplification(),
	}
	e.LifeConsumed = float64(w.MaxErase) / float64(peLimit)
	// Total programs the array can still absorb before the MEAN block hits
	// the budget, divided by WA, gives host pages remaining.
	if c.FlashWrites > 0 {
		pagesPerErase := float64(d.p.Flash.PagesPerBlock)
		remainingErases := (float64(peLimit) - w.MeanErase) * float64(d.p.Flash.Blocks())
		if remainingErases < 0 {
			remainingErases = 0
		}
		wa := e.WriteAmplification
		if wa < 1 {
			wa = 1
		}
		e.ProjectedHostPages = int64(remainingErases * pagesPerErase / wa)
	}
	return e
}
