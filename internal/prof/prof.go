// Package prof wires the standard runtime/pprof profile outputs into the
// repo's commands. Commands register the -cpuprofile/-memprofile flags,
// call Start after flag parsing and Stop before exiting; because the
// commands exit through os.Exit (which skips deferred calls), Stop is
// invoked explicitly on every path rather than deferred.
//
// The resulting files feed `go tool pprof` directly; docs/PERFORMANCE.md
// walks through the workflow.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered on a FlagSet.
type Flags struct {
	cpu *string
	mem *string

	cpuFile *os.File
}

// Register adds -cpuprofile and -memprofile to fs.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. It must run
// after flag parsing.
func (f *Flags) Start() error {
	if *f.cpu == "" {
		return nil
	}
	file, err := os.Create(*f.cpu)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("prof: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and writes the heap profile. It is safe
// to call when no profiling was requested, and must be called on every
// exit path (the commands exit via os.Exit, so a defer would be skipped).
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		f.cpuFile = nil
	}
	if *f.mem == "" {
		return nil
	}
	file, err := os.Create(*f.mem)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	defer file.Close()
	runtime.GC() // capture the steady-state live set, not transient garbage
	if err := pprof.Lookup("allocs").WriteTo(file, 0); err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	return nil
}
