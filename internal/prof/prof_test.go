package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// register builds a fresh flag set with the profile flags parsed to the
// given values.
func register(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRegisterAddsFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Register(fs)
	for _, name := range []string{"cpuprofile", "memprofile"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("flag -%s not registered", name)
		}
	}
}

// With no flags set, Start and Stop are no-ops and must not error.
func TestDisabledIsNoop(t *testing.T) {
	f := register(t)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUAndHeapProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	f := register(t, "-cpuprofile", cpu, "-memprofile", mem)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
	// Stop again: the CPU profile is already finished; only the heap
	// profile is rewritten. Must not error or double-stop.
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapProfileOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.out")
	f := register(t, "-memprofile", mem)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

func TestStartErrorOnUnwritablePath(t *testing.T) {
	f := register(t, "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"))
	if err := f.Start(); err == nil {
		t.Fatal("Start succeeded with an unwritable path")
	}
	// A failed Start leaves no profile running: Stop is still safe.
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStopErrorOnUnwritableHeapPath(t *testing.T) {
	f := register(t, "-memprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.out"))
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err == nil {
		t.Fatal("Stop succeeded with an unwritable heap path")
	}
}
