package flash

import (
	"fmt"

	"repro/internal/fault"
)

// PageState is the physical state of one flash page.
type PageState uint8

const (
	// PageFree means the page has been erased and may be programmed.
	PageFree PageState = iota
	// PageValid means the page holds live data.
	PageValid
	// PageInvalid means the page holds stale data awaiting erase.
	PageInvalid
)

// Array tracks the physical state of every page and block in the device.
// It enforces the NAND programming constraints: pages within a block are
// programmed strictly in order, and a block must be erased before any of
// its pages can be reused.
//
// Array is purely physical: it knows nothing about logical addresses. The
// FTL layers mapping, allocation and GC policy on top.
type Array struct {
	p Params

	pages      []PageState // indexed by PPN
	nextPage   []int32     // per block: next programmable in-block page
	validCount []int32     // per block: count of PageValid pages
	eraseCount []int32     // per block: erases performed (wear)
	progFails  []int32     // per block: program failures since last erase
	bad        []bool      // per block: permanently retired (grown bad)
	badCount   int

	inj *fault.Injector // nil = fault-free (the default)

	// Operation counters.
	programs int64
	reads    int64
	erases   int64
}

// NewArray allocates the physical state for the given geometry.
func NewArray(p Params) (*Array, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	blocks := p.Blocks()
	return &Array{
		p:          p,
		pages:      make([]PageState, p.PhysicalPages()),
		nextPage:   make([]int32, blocks),
		validCount: make([]int32, blocks),
		eraseCount: make([]int32, blocks),
		progFails:  make([]int32, blocks),
		bad:        make([]bool, blocks),
	}, nil
}

// SetInjector attaches a fault injector; nil detaches it. With no injector
// the array behaves exactly as a fault-free device.
func (a *Array) SetInjector(inj *fault.Injector) { a.inj = inj }

// IsBad reports whether a block has been retired (grown bad).
func (a *Array) IsBad(block int) bool { return a.bad[block] }

// BadBlocks returns the number of retired blocks.
func (a *Array) BadBlocks() int { return a.badCount }

// markBad retires a block permanently; it can no longer be programmed or
// erased.
func (a *Array) markBad(block int) {
	if !a.bad[block] {
		a.bad[block] = true
		a.badCount++
	}
}

// Params returns the geometry the array was built with.
func (a *Array) Params() Params { return a.p }

// State returns the state of a physical page.
func (a *Array) State(ppn int64) PageState { return a.pages[ppn] }

// ValidCount returns the number of valid pages in a block.
func (a *Array) ValidCount(block int) int { return int(a.validCount[block]) }

// EraseCount returns how many times a block has been erased.
func (a *Array) EraseCount(block int) int { return int(a.eraseCount[block]) }

// BlockFull reports whether a block has no programmable pages left.
func (a *Array) BlockFull(block int) bool {
	return int(a.nextPage[block]) >= a.p.PagesPerBlock
}

// FreePagesInBlock returns how many pages of the block remain programmable.
func (a *Array) FreePagesInBlock(block int) int {
	return a.p.PagesPerBlock - int(a.nextPage[block])
}

// Program programs the next sequential page of the given block, returning
// its PPN. It fails if the block is full or retired.
//
// With a fault injector attached, the program may fail with an error
// wrapping fault.ErrProgramFail. The failed page is consumed: NAND cannot
// re-program a page before an erase, so it is marked invalid (wasted) and
// the in-block frontier advances. The caller must write the data to a
// freshly allocated page.
func (a *Array) Program(block int) (int64, error) {
	if a.bad[block] {
		return 0, fmt.Errorf("flash: program on retired block %d", block)
	}
	np := a.nextPage[block]
	if int(np) >= a.p.PagesPerBlock {
		return 0, fmt.Errorf("flash: program on full block %d", block)
	}
	ppn := a.p.PPN(block, int(np))
	if a.pages[ppn] != PageFree {
		return 0, fmt.Errorf("flash: page %d of block %d not free", np, block)
	}
	if a.inj != nil && a.inj.ProgramFails(a.p.ChipOfBlock(block)) {
		a.pages[ppn] = PageInvalid
		a.nextPage[block] = np + 1
		a.progFails[block]++
		return 0, fmt.Errorf("flash: block %d page %d: %w", block, np, fault.ErrProgramFail)
	}
	a.pages[ppn] = PageValid
	a.nextPage[block] = np + 1
	a.validCount[block]++
	a.programs++
	return ppn, nil
}

// Read counts a page read. Reading a free page is an FTL bug.
func (a *Array) Read(ppn int64) error {
	if a.pages[ppn] == PageFree {
		return fmt.Errorf("flash: read of unprogrammed page %d", ppn)
	}
	a.reads++
	return nil
}

// Invalidate marks a valid page stale (its logical page was overwritten or
// trimmed).
func (a *Array) Invalidate(ppn int64) error {
	if a.pages[ppn] != PageValid {
		return fmt.Errorf("flash: invalidate of non-valid page %d (state %d)", ppn, a.pages[ppn])
	}
	a.pages[ppn] = PageInvalid
	a.validCount[a.p.BlockOfPPN(ppn)]--
	return nil
}

// Erase erases a block, returning its pages to the free state. Erasing a
// block that still holds valid pages is refused: the FTL must migrate them
// first.
//
// With a fault injector attached, two failure modes exist, both terminal
// for the block (it is marked bad and must be retired by the FTL):
//
//   - fault.ErrEraseFail: the erase itself failed; the pages keep their
//     stale contents.
//   - fault.ErrGrownBad: the erase completed but the block is retired by
//     wear detection — either an injected grown-bad draw or deterministic
//     retirement of a block that suffered a program failure since its last
//     erase (industry practice: program-fail blocks are retired once their
//     data has been moved off).
func (a *Array) Erase(block int) error {
	if a.bad[block] {
		return fmt.Errorf("flash: erase of retired block %d", block)
	}
	if a.validCount[block] > 0 {
		return fmt.Errorf("flash: erase of block %d with %d valid pages", block, a.validCount[block])
	}
	if a.inj != nil && a.inj.EraseFails(a.p.ChipOfBlock(block)) {
		a.markBad(block)
		return fmt.Errorf("flash: block %d: %w", block, fault.ErrEraseFail)
	}
	base := a.p.PPN(block, 0)
	for i := 0; i < a.p.PagesPerBlock; i++ {
		a.pages[base+int64(i)] = PageFree
	}
	a.nextPage[block] = 0
	a.eraseCount[block]++
	a.erases++
	if a.inj != nil {
		hadProgFail := a.progFails[block] > 0
		a.progFails[block] = 0
		// Draw unconditionally so the grown-bad stream advances once per
		// successful erase regardless of the block's program-fail history.
		grown := a.inj.GrownBad(a.p.ChipOfBlock(block))
		if hadProgFail || grown {
			a.markBad(block)
			return fmt.Errorf("flash: block %d: %w", block, fault.ErrGrownBad)
		}
	}
	return nil
}

// Programs returns the total page programs performed.
func (a *Array) Programs() int64 { return a.programs }

// Reads returns the total page reads performed.
func (a *Array) Reads() int64 { return a.reads }

// Erases returns the total block erases performed.
func (a *Array) Erases() int64 { return a.erases }

// CheckInvariants verifies the per-block valid counts and sequential-program
// frontier against the raw page states, and that retired blocks hold no
// valid data. Intended for tests and the fault checker.
func (a *Array) CheckInvariants() error {
	badSeen := 0
	for b := 0; b < a.p.Blocks(); b++ {
		if a.bad[b] {
			badSeen++
			if a.validCount[b] != 0 {
				return fmt.Errorf("flash: retired block %d still has %d valid pages", b, a.validCount[b])
			}
		}
		base := a.p.PPN(b, 0)
		valid := int32(0)
		frontier := int32(0)
		seenFree := false
		for i := 0; i < a.p.PagesPerBlock; i++ {
			switch a.pages[base+int64(i)] {
			case PageValid:
				valid++
				if seenFree {
					return fmt.Errorf("flash: block %d page %d programmed after free page", b, i)
				}
				frontier = int32(i) + 1
			case PageInvalid:
				if seenFree {
					return fmt.Errorf("flash: block %d page %d invalid after free page", b, i)
				}
				frontier = int32(i) + 1
			case PageFree:
				seenFree = true
			}
		}
		if valid != a.validCount[b] {
			return fmt.Errorf("flash: block %d validCount %d, recounted %d", b, a.validCount[b], valid)
		}
		if frontier != a.nextPage[b] {
			return fmt.Errorf("flash: block %d nextPage %d, recounted %d", b, a.nextPage[b], frontier)
		}
	}
	if badSeen != a.badCount {
		return fmt.Errorf("flash: badCount %d, recounted %d", a.badCount, badSeen)
	}
	return nil
}
