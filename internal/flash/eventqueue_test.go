package flash

// An independent event-driven re-implementation of the timing semantics,
// used purely to cross-validate Timeline: operations are expanded into
// resource phases, and each resource (channel bus, die, die-read port) is
// a FIFO that admits a phase at max(its free time, the phase's ready
// time). The algebraic Timeline computes the same schedule without a
// queue; the property test demands identical completion times for random
// operation sequences.

import (
	"testing"
	"testing/quick"
)

// evResource is a FIFO resource with a free time.
type evResource struct {
	free int64
}

// admit starts a phase when both the resource and the input are ready,
// occupying the resource for dur; returns the phase end.
func (r *evResource) admit(ready, dur int64) int64 {
	start := ready
	if r.free > start {
		start = r.free
	}
	end := start + dur
	r.free = end
	return end
}

// evDevice mirrors Timeline's semantics phase by phase.
type evDevice struct {
	p        Params
	channels []evResource
	dies     []evResource // program/erase backlog
	readers  []evResource // read port per die
}

func newEvDevice(p Params) *evDevice {
	return &evDevice{
		p:        p,
		channels: make([]evResource, p.Channels),
		dies:     make([]evResource, p.Chips()),
		readers:  make([]evResource, p.Chips()),
	}
}

func (d *evDevice) program(now int64, ch, chip int) (xfer, done int64) {
	// Phase 1: bus transfer into the cache register (channel only).
	xfer = d.channels[ch].admit(now, d.p.PageTransferTime())
	// Phase 2: cell program, serialized on the die.
	done = d.dies[chip].admit(xfer, d.p.ProgramLatency)
	return xfer, done
}

func (d *evDevice) read(now int64, ch, chip int) int64 {
	// Phase 1: cell read on the die's read port (suspends programs).
	ready := d.readers[chip].admit(now, d.p.ReadLatency)
	// Suspension pushes the program backlog out by the cell time.
	if d.dies[chip].free > ready-d.p.ReadLatency {
		d.dies[chip].free += d.p.ReadLatency
	}
	// Phase 2: bus transfer out.
	return d.channels[ch].admit(ready, d.p.PageTransferTime())
}

func (d *evDevice) erase(now int64, chip int) int64 {
	return d.dies[chip].admit(now, d.p.EraseLatency)
}

func (d *evDevice) copyback(now int64, chip int) int64 {
	return d.dies[chip].admit(now, d.p.ReadLatency+d.p.ProgramLatency)
}

// TestTimelineMatchesEventModel schedules random operation sequences on
// both models and compares every completion time.
func TestTimelineMatchesEventModel(t *testing.T) {
	p := tinyParams()
	f := func(ops []uint32) bool {
		tl := NewTimeline(p)
		ev := newEvDevice(p)
		now := int64(0)
		for _, op := range ops {
			now += int64(op % 100_000)
			ch := int(op>>8) % p.Channels
			chip := int(op>>16) % p.Chips()
			switch op % 4 {
			case 0:
				x1, d1 := tl.Program(now, ch, chip)
				x2, d2 := ev.program(now, ch, chip)
				if x1 != x2 || d1 != d2 {
					t.Logf("program @%d ch%d chip%d: (%d,%d) vs (%d,%d)", now, ch, chip, x1, d1, x2, d2)
					return false
				}
			case 1:
				d1 := tl.Read(now, ch, chip)
				d2 := ev.read(now, ch, chip)
				if d1 != d2 {
					t.Logf("read @%d ch%d chip%d: %d vs %d", now, ch, chip, d1, d2)
					return false
				}
			case 2:
				if tl.Erase(now, chip) != ev.erase(now, chip) {
					return false
				}
			case 3:
				if tl.Copyback(now, chip) != ev.copyback(now, chip) {
					return false
				}
			}
		}
		// Final resource states must agree too.
		for ch := 0; ch < p.Channels; ch++ {
			if tl.ChannelFree(ch) != ev.channels[ch].free {
				t.Logf("channel %d free: %d vs %d", ch, tl.ChannelFree(ch), ev.channels[ch].free)
				return false
			}
		}
		for c := 0; c < p.Chips(); c++ {
			if tl.ChipFree(c) != ev.dies[c].free {
				t.Logf("chip %d free: %d vs %d", c, tl.ChipFree(c), ev.dies[c].free)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
