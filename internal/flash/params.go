// Package flash simulates the NAND flash array inside an SSD: its geometry
// (channels, chips, planes, blocks, pages), the physical state machine of
// every page (free → valid → invalid → erased), and the timing of
// operations on the shared channel buses and chip dies.
//
// The model follows SSDsim's structure, the simulator the paper modified:
// page programs occupy the channel for the data transfer and the chip for
// transfer plus program time; reads occupy the chip for the cell read and
// then the channel for the transfer out; erases occupy only the chip. The
// parameters in DefaultParams mirror Table 1 of the paper.
package flash

import "fmt"

// Params describes the flash array geometry and timing.
type Params struct {
	// Geometry.
	Channels        int // independent channel buses
	ChipsPerChannel int // chips (dies) sharing one channel
	PlanesPerChip   int // planes per chip
	BlocksPerPlane  int // erase blocks per plane
	PagesPerBlock   int // program pages per block
	PageSize        int // bytes per page

	// Timing, in nanoseconds.
	ReadLatency     int64 // cell-to-register read
	ProgramLatency  int64 // register-to-cell program
	EraseLatency    int64 // block erase
	TransferPerByte int64 // channel transfer per byte

	// GCThreshold triggers garbage collection on a plane when its fraction
	// of free blocks drops below this value (Table 1: 10%).
	GCThreshold float64
	// OverProvision is the fraction of physical capacity hidden from the
	// host so GC always has headroom.
	OverProvision float64
}

// DefaultParams returns the paper's Table 1 configuration: a 128 GB device
// with 8 channels × 2 chips, 64 pages per 4 KB-page block, 0.075 ms reads,
// 2 ms programs, 15 ms erases, 10 ns/B transfers and a 10% GC threshold.
func DefaultParams() Params {
	return Params{
		Channels:        8,
		ChipsPerChannel: 2,
		PlanesPerChip:   1,
		BlocksPerPlane:  32768, // 8 ch × 2 chips × 32768 blocks × 64 pages × 4 KB = 128 GiB
		PagesPerBlock:   64,
		PageSize:        4096,
		ReadLatency:     75_000,     // 0.075 ms
		ProgramLatency:  2_000_000,  // 2 ms
		EraseLatency:    15_000_000, // 15 ms
		TransferPerByte: 10,
		GCThreshold:     0.10,
		OverProvision:   0.125,
	}
}

// ScaledParams returns DefaultParams with the per-plane block count reduced
// by the given factor, preserving every ratio that matters (channel/chip
// parallelism, pages per block, latencies, GC threshold). The experiment
// harness uses this so paper-shaped runs complete in seconds.
func ScaledParams(blockDivisor int) Params {
	p := DefaultParams()
	if blockDivisor > 1 {
		p.BlocksPerPlane /= blockDivisor
		if p.BlocksPerPlane < 8 {
			p.BlocksPerPlane = 8
		}
	}
	return p
}

// Validate reports whether the parameters describe a usable device.
func (p Params) Validate() error {
	switch {
	case p.Channels < 1:
		return fmt.Errorf("flash: Channels = %d, need >= 1", p.Channels)
	case p.ChipsPerChannel < 1:
		return fmt.Errorf("flash: ChipsPerChannel = %d, need >= 1", p.ChipsPerChannel)
	case p.PlanesPerChip < 1:
		return fmt.Errorf("flash: PlanesPerChip = %d, need >= 1", p.PlanesPerChip)
	case p.BlocksPerPlane < 2:
		return fmt.Errorf("flash: BlocksPerPlane = %d, need >= 2", p.BlocksPerPlane)
	case p.PagesPerBlock < 1:
		return fmt.Errorf("flash: PagesPerBlock = %d, need >= 1", p.PagesPerBlock)
	case p.PageSize < 1:
		return fmt.Errorf("flash: PageSize = %d, need >= 1", p.PageSize)
	case p.ReadLatency < 0 || p.ProgramLatency < 0 || p.EraseLatency < 0 || p.TransferPerByte < 0:
		return fmt.Errorf("flash: negative latency")
	case p.GCThreshold < 0 || p.GCThreshold >= 1:
		return fmt.Errorf("flash: GCThreshold = %v, need [0,1)", p.GCThreshold)
	case p.OverProvision < 0 || p.OverProvision >= 1:
		return fmt.Errorf("flash: OverProvision = %v, need [0,1)", p.OverProvision)
	}
	return nil
}

// Chips returns the total chip count.
func (p Params) Chips() int { return p.Channels * p.ChipsPerChannel }

// Planes returns the total plane count.
func (p Params) Planes() int { return p.Chips() * p.PlanesPerChip }

// Blocks returns the total physical block count.
func (p Params) Blocks() int { return p.Planes() * p.BlocksPerPlane }

// PhysicalPages returns the total physical page count.
func (p Params) PhysicalPages() int64 {
	return int64(p.Blocks()) * int64(p.PagesPerBlock)
}

// LogicalPages returns the page count exposed to the host after
// over-provisioning.
func (p Params) LogicalPages() int64 {
	return int64(float64(p.PhysicalPages()) * (1 - p.OverProvision))
}

// PhysicalBytes returns the raw capacity in bytes.
func (p Params) PhysicalBytes() int64 {
	return p.PhysicalPages() * int64(p.PageSize)
}

// PageTransferTime returns the channel occupancy of one page transfer.
func (p Params) PageTransferTime() int64 {
	return p.TransferPerByte * int64(p.PageSize)
}

// Addressing: a PPN (physical page number) encodes plane, block and page as
//
//	ppn = (plane*BlocksPerPlane + blockInPlane)*PagesPerBlock + pageInBlock
//
// and planes are numbered channel-major: plane = ((channel*ChipsPerChannel)
// + chip)*PlanesPerChip + planeInChip.

// PlaneOfBlock returns the plane index a physical block belongs to.
func (p Params) PlaneOfBlock(block int) int { return block / p.BlocksPerPlane }

// ChipOfBlock returns the global chip index a physical block belongs to.
func (p Params) ChipOfBlock(block int) int {
	return p.PlaneOfBlock(block) / p.PlanesPerChip
}

// ChannelOfBlock returns the channel a physical block belongs to.
func (p Params) ChannelOfBlock(block int) int {
	return p.ChipOfBlock(block) / p.ChipsPerChannel
}

// BlockOfPPN returns the physical block containing a PPN.
func (p Params) BlockOfPPN(ppn int64) int { return int(ppn / int64(p.PagesPerBlock)) }

// PageOfPPN returns the in-block page index of a PPN.
func (p Params) PageOfPPN(ppn int64) int { return int(ppn % int64(p.PagesPerBlock)) }

// ChannelOfPPN returns the channel servicing a PPN.
func (p Params) ChannelOfPPN(ppn int64) int { return p.ChannelOfBlock(p.BlockOfPPN(ppn)) }

// ChipOfPPN returns the global chip index servicing a PPN.
func (p Params) ChipOfPPN(ppn int64) int { return p.ChipOfBlock(p.BlockOfPPN(ppn)) }

// FirstBlockOfPlane returns the first physical block index of a plane.
func (p Params) FirstBlockOfPlane(plane int) int { return plane * p.BlocksPerPlane }

// PPN builds a physical page number from block and in-block page.
func (p Params) PPN(block, page int) int64 {
	return int64(block)*int64(p.PagesPerBlock) + int64(page)
}
