package flash

import (
	"testing"
	"testing/quick"
)

// tinyParams is a small geometry used across the flash tests: 2 channels ×
// 2 chips × 1 plane × 4 blocks × 4 pages.
func tinyParams() Params {
	p := DefaultParams()
	p.Channels = 2
	p.ChipsPerChannel = 2
	p.PlanesPerChip = 1
	p.BlocksPerPlane = 4
	p.PagesPerBlock = 4
	return p
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Channels != 8 || p.ChipsPerChannel != 2 || p.PagesPerBlock != 64 || p.PageSize != 4096 {
		t.Fatalf("geometry does not match Table 1: %+v", p)
	}
	if p.ReadLatency != 75_000 || p.ProgramLatency != 2_000_000 || p.EraseLatency != 15_000_000 {
		t.Fatalf("latencies do not match Table 1: %+v", p)
	}
	if p.TransferPerByte != 10 || p.GCThreshold != 0.10 {
		t.Fatalf("transfer/GC do not match Table 1: %+v", p)
	}
	if got := p.PhysicalBytes(); got != 128<<30 {
		t.Fatalf("physical capacity = %d bytes, want 128 GiB", got)
	}
	if p.PageTransferTime() != 40_960 {
		t.Fatalf("page transfer = %d ns, want 40960", p.PageTransferTime())
	}
}

func TestParamsValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Channels = 0 },
		func(p *Params) { p.ChipsPerChannel = 0 },
		func(p *Params) { p.PlanesPerChip = 0 },
		func(p *Params) { p.BlocksPerPlane = 1 },
		func(p *Params) { p.PagesPerBlock = 0 },
		func(p *Params) { p.PageSize = 0 },
		func(p *Params) { p.ReadLatency = -1 },
		func(p *Params) { p.GCThreshold = 1.0 },
		func(p *Params) { p.OverProvision = -0.1 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestScaledParamsKeepsRatios(t *testing.T) {
	p := ScaledParams(1024)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	d := DefaultParams()
	if p.Channels != d.Channels || p.PagesPerBlock != d.PagesPerBlock {
		t.Fatal("scaling changed parallelism or block shape")
	}
	if p.BlocksPerPlane != d.BlocksPerPlane/1024 {
		t.Fatalf("BlocksPerPlane = %d", p.BlocksPerPlane)
	}
	// Extreme divisor clamps to a usable floor rather than zero.
	p = ScaledParams(1 << 30)
	if p.BlocksPerPlane < 8 {
		t.Fatalf("clamp failed: %d", p.BlocksPerPlane)
	}
}

func TestAddressingRoundTrip(t *testing.T) {
	p := tinyParams()
	for block := 0; block < p.Blocks(); block++ {
		for page := 0; page < p.PagesPerBlock; page++ {
			ppn := p.PPN(block, page)
			if p.BlockOfPPN(ppn) != block || p.PageOfPPN(ppn) != page {
				t.Fatalf("round trip failed for block %d page %d", block, page)
			}
			if ch := p.ChannelOfPPN(ppn); ch != p.ChannelOfBlock(block) {
				t.Fatalf("channel mismatch for ppn %d: %d vs %d", ppn, ch, p.ChannelOfBlock(block))
			}
		}
	}
}

func TestAddressingChannelMajorLayout(t *testing.T) {
	p := tinyParams() // 2 ch × 2 chips × 1 plane × 4 blocks
	// Planes 0,1 belong to channel 0 (chips 0,1); planes 2,3 to channel 1.
	if p.ChannelOfBlock(p.FirstBlockOfPlane(0)) != 0 ||
		p.ChannelOfBlock(p.FirstBlockOfPlane(1)) != 0 ||
		p.ChannelOfBlock(p.FirstBlockOfPlane(2)) != 1 ||
		p.ChannelOfBlock(p.FirstBlockOfPlane(3)) != 1 {
		t.Fatal("channel-major plane layout broken")
	}
	if p.ChipOfBlock(p.FirstBlockOfPlane(1)) != 1 || p.ChipOfBlock(p.FirstBlockOfPlane(3)) != 3 {
		t.Fatal("chip indexing broken")
	}
}

func TestProgramSequentialWithinBlock(t *testing.T) {
	a, err := NewArray(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var ppns []int64
	for i := 0; i < 4; i++ {
		ppn, err := a.Program(0)
		if err != nil {
			t.Fatal(err)
		}
		ppns = append(ppns, ppn)
	}
	for i, ppn := range ppns {
		if int(ppn) != i {
			t.Fatalf("program order %v not sequential", ppns)
		}
	}
	if _, err := a.Program(0); err == nil {
		t.Fatal("programming a full block succeeded")
	}
	if a.Programs() != 4 {
		t.Fatalf("Programs = %d, want 4", a.Programs())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidateAndErase(t *testing.T) {
	a, _ := NewArray(tinyParams())
	ppn, _ := a.Program(1)
	if a.ValidCount(1) != 1 {
		t.Fatal("valid count after program wrong")
	}
	// Erase with a valid page must be refused.
	if err := a.Erase(1); err == nil {
		t.Fatal("erase of block with valid data succeeded")
	}
	if err := a.Invalidate(ppn); err != nil {
		t.Fatal(err)
	}
	// Double invalidate is an error.
	if err := a.Invalidate(ppn); err == nil {
		t.Fatal("double invalidate succeeded")
	}
	if err := a.Erase(1); err != nil {
		t.Fatal(err)
	}
	if a.EraseCount(1) != 1 || a.Erases() != 1 {
		t.Fatal("erase counters wrong")
	}
	// After erase the block is programmable again from page 0.
	ppn2, err := a.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Params().PageOfPPN(ppn2) != 0 {
		t.Fatal("erased block did not restart at page 0")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadStateChecks(t *testing.T) {
	a, _ := NewArray(tinyParams())
	if err := a.Read(0); err == nil {
		t.Fatal("read of unprogrammed page succeeded")
	}
	ppn, _ := a.Program(0)
	if err := a.Read(ppn); err != nil {
		t.Fatal(err)
	}
	if a.Reads() != 1 {
		t.Fatalf("Reads = %d, want 1", a.Reads())
	}
	// Reads of invalid (stale) pages are allowed: GC may relocate them? No —
	// but a read of an invalidated page is still physically possible.
	a.Invalidate(ppn)
	if err := a.Read(ppn); err != nil {
		t.Fatal("read of stale page should be physically possible")
	}
}

func TestTimelineProgramOccupancy(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	xfer, done := tl.Program(0, 0, 0)
	wantDone := p.PageTransferTime() + p.ProgramLatency
	if done != wantDone {
		t.Fatalf("program done = %d, want %d", done, wantDone)
	}
	if xfer != p.PageTransferTime() {
		t.Fatalf("transfer end = %d, want %d", xfer, p.PageTransferTime())
	}
	// Channel frees after transfer, chip after program.
	if tl.ChannelFree(0) != p.PageTransferTime() {
		t.Fatalf("channel free = %d, want %d", tl.ChannelFree(0), p.PageTransferTime())
	}
	if tl.ChipFree(0) != wantDone {
		t.Fatalf("chip free = %d", tl.ChipFree(0))
	}
}

// Two programs to different chips on the same channel pipeline on the bus:
// the second transfer waits only for the first transfer, not the program.
func TestTimelineChannelPipelining(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	_, d0 := tl.Program(0, 0, 0)
	_, d1 := tl.Program(0, 0, 1) // same channel, different chip
	want1 := 2*p.PageTransferTime() + p.ProgramLatency
	if d1 != want1 {
		t.Fatalf("second program done = %d, want %d", d1, want1)
	}
	if d1-d0 != p.PageTransferTime() {
		t.Fatalf("pipelining gap = %d, want one transfer", d1-d0)
	}
}

// Two programs to the same chip: the second transfer overlaps the first
// program (cache-program mode), but the program phases serialize on the
// die.
func TestTimelineChipSerialization(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	tl.Program(0, 0, 0)
	xfer1, d1 := tl.Program(0, 0, 0)
	if xfer1 != 2*p.PageTransferTime() {
		t.Fatalf("second transfer end = %d, want %d (channel-gated only)", xfer1, 2*p.PageTransferTime())
	}
	want := p.PageTransferTime() + 2*p.ProgramLatency
	if d1 != want {
		t.Fatalf("serialized program done = %d, want %d", d1, want)
	}
}

// Programs striped across distinct channels proceed fully in parallel —
// the effect batch eviction exploits (paper §4.2.4).
func TestTimelineChannelParallelism(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	_, d0 := tl.Program(0, 0, 0)
	_, d1 := tl.Program(0, 1, 2) // chip 2 is on channel 1
	if d0 != d1 {
		t.Fatalf("parallel programs differ: %d vs %d", d0, d1)
	}
}

func TestTimelineRead(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	done := tl.Read(0, 0, 0)
	want := p.ReadLatency + p.PageTransferTime()
	if done != want {
		t.Fatalf("read done = %d, want %d", done, want)
	}
}

func TestTimelineEraseAndCopyback(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	if done := tl.Erase(100, 0); done != 100+p.EraseLatency {
		t.Fatalf("erase done = %d", done)
	}
	if tl.ChannelFree(0) != 0 {
		t.Fatal("erase touched the channel")
	}
	done := tl.Copyback(0, 1)
	if done != p.ReadLatency+p.ProgramLatency {
		t.Fatalf("copyback done = %d", done)
	}
}

func TestNextIdleChannel(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	tl.Program(0, 0, 0)
	if tl.NextIdleChannel() != 1 {
		t.Fatal("idle channel selection wrong")
	}
}

// Property: completion times from a random schedule are always >= issue time
// and resource free times never decrease.
func TestTimelineMonotoneProperty(t *testing.T) {
	p := tinyParams()
	f := func(ops []uint16) bool {
		tl := NewTimeline(p)
		now := int64(0)
		prevChan := make([]int64, p.Channels)
		prevChip := make([]int64, p.Chips())
		for _, op := range ops {
			now += int64(op % 999)
			ch := int(op) % p.Channels
			chip := int(op) % p.Chips()
			var done int64
			switch op % 4 {
			case 0:
				_, done = tl.Program(now, ch, chip)
			case 1:
				done = tl.Read(now, ch, chip)
			case 2:
				done = tl.Erase(now, chip)
			case 3:
				done = tl.Copyback(now, chip)
			}
			if done < now {
				return false
			}
			for c := range prevChan {
				if tl.ChannelFree(c) < prevChan[c] {
					return false
				}
				prevChan[c] = tl.ChannelFree(c)
			}
			for c := range prevChip {
				if tl.ChipFree(c) < prevChip[c] {
					return false
				}
				prevChip[c] = tl.ChipFree(c)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
