package flash

import "math"

// Wear summarizes the erase-cycle distribution across the array's blocks.
// The paper's introduction motivates DRAM write buffering with SSD
// endurance — high-density cells survive only a few hundred program/erase
// cycles (QLC ≈ 500) — so the simulator reports how evenly a policy's
// flush traffic wears the flash.
type Wear struct {
	// MinErase / MaxErase / MeanErase describe the per-block erase counts.
	MinErase, MaxErase int
	MeanErase          float64
	// StdDev is the standard deviation of per-block erase counts; dynamic
	// wear leveling keeps it low.
	StdDev float64
	// TotalErases is the sum over all blocks.
	TotalErases int64
}

// PreWear seeds every block's erase count as if the device had already
// lived through a long service life — the "aged device" scenario. Each
// block receives erases plus a deterministic per-block jitter draw in
// [0, jitter] (splitmix64 of seed and the block number, so two arrays
// pre-worn with equal arguments age identically). Page states are
// untouched: the array is still empty, only its wear history changes, so
// every invariant holds before and after.
func (a *Array) PreWear(seed uint64, erases, jitter int) {
	if erases <= 0 && jitter <= 0 {
		return
	}
	if erases < 0 {
		erases = 0
	}
	for b := 0; b < a.p.Blocks(); b++ {
		e := erases
		if jitter > 0 {
			z := seed ^ (uint64(b)+1)*0x9e3779b97f4a7c15
			z += 0x9e3779b97f4a7c15
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			e += int(z % uint64(jitter+1))
		}
		a.eraseCount[b] = int32(e)
	}
}

// WearStats computes the current erase-count distribution.
func (a *Array) WearStats() Wear {
	blocks := a.p.Blocks()
	w := Wear{MinErase: int(^uint(0) >> 1)}
	var sum, sumSq float64
	for b := 0; b < blocks; b++ {
		e := int(a.eraseCount[b])
		if e < w.MinErase {
			w.MinErase = e
		}
		if e > w.MaxErase {
			w.MaxErase = e
		}
		sum += float64(e)
		sumSq += float64(e) * float64(e)
		w.TotalErases += int64(e)
	}
	if blocks > 0 {
		w.MeanErase = sum / float64(blocks)
		variance := sumSq/float64(blocks) - w.MeanErase*w.MeanErase
		if variance > 0 {
			w.StdDev = math.Sqrt(variance)
		}
	}
	if w.MinErase == int(^uint(0)>>1) {
		w.MinErase = 0
	}
	return w
}
