package flash

import "math"

// Wear summarizes the erase-cycle distribution across the array's blocks.
// The paper's introduction motivates DRAM write buffering with SSD
// endurance — high-density cells survive only a few hundred program/erase
// cycles (QLC ≈ 500) — so the simulator reports how evenly a policy's
// flush traffic wears the flash.
type Wear struct {
	// MinErase / MaxErase / MeanErase describe the per-block erase counts.
	MinErase, MaxErase int
	MeanErase          float64
	// StdDev is the standard deviation of per-block erase counts; dynamic
	// wear leveling keeps it low.
	StdDev float64
	// TotalErases is the sum over all blocks.
	TotalErases int64
}

// WearStats computes the current erase-count distribution.
func (a *Array) WearStats() Wear {
	blocks := a.p.Blocks()
	w := Wear{MinErase: int(^uint(0) >> 1)}
	var sum, sumSq float64
	for b := 0; b < blocks; b++ {
		e := int(a.eraseCount[b])
		if e < w.MinErase {
			w.MinErase = e
		}
		if e > w.MaxErase {
			w.MaxErase = e
		}
		sum += float64(e)
		sumSq += float64(e) * float64(e)
		w.TotalErases += int64(e)
	}
	if blocks > 0 {
		w.MeanErase = sum / float64(blocks)
		variance := sumSq/float64(blocks) - w.MeanErase*w.MeanErase
		if variance > 0 {
			w.StdDev = math.Sqrt(variance)
		}
	}
	if w.MinErase == int(^uint(0)>>1) {
		w.MinErase = 0
	}
	return w
}
