package flash

import "testing"

// Tests for the two timing-model refinements: cache-program transfer
// overlap and read suspend/resume (see DESIGN.md).

func TestReadPreemptsProgramBacklog(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	// Queue three programs on chip 0: die busy until ~Ttr+3·Tprog.
	for i := 0; i < 3; i++ {
		tl.Program(0, 0, 0)
	}
	busyUntil := tl.ChipFree(0)
	// A read issued now must NOT wait for the backlog.
	done := tl.Read(0, 0, 0)
	maxRead := p.ReadLatency + p.PageTransferTime() + 3*p.PageTransferTime()
	if done > maxRead {
		t.Fatalf("read done = %d, want <= %d (suspend/resume)", done, maxRead)
	}
	if done >= busyUntil {
		t.Fatalf("read (%d) served after the whole program backlog (%d)", done, busyUntil)
	}
	// The suspended backlog is pushed back by the read's cell time.
	if got := tl.ChipFree(0); got != busyUntil+p.ReadLatency {
		t.Fatalf("backlog end = %d, want %d (+ReadLatency)", got, busyUntil+p.ReadLatency)
	}
}

func TestReadOnIdleDieDoesNotInflateBacklog(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	tl.Read(0, 0, 0)
	if tl.ChipFree(0) != 0 {
		t.Fatalf("idle-die read created program backlog: %d", tl.ChipFree(0))
	}
}

func TestReadsSerializeOnSameDie(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	d0 := tl.Read(0, 0, 0)
	d1 := tl.Read(0, 0, 0)
	if d1 <= d0 {
		t.Fatal("reads on one die must serialize")
	}
	// Cell phases serialize; the second read's cell phase starts when the
	// first's ends.
	want := 2*p.ReadLatency + p.PageTransferTime()
	if d1 < want {
		t.Fatalf("second read done = %d, want >= %d", d1, want)
	}
}

func TestReadsOnDifferentDiesSameChannelShareBus(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	d0 := tl.Read(0, 0, 0)
	d1 := tl.Read(0, 0, 1) // other die, same channel
	if d1 != d0+p.PageTransferTime() {
		t.Fatalf("second read done = %d, want %d (bus serialization only)",
			d1, d0+p.PageTransferTime())
	}
}

func TestCacheProgramTransferOverlap(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	// Five programs to the same die: transfers are gated only by the
	// channel, programs pipeline on the die.
	var lastXfer, lastDone int64
	for i := 0; i < 5; i++ {
		lastXfer, lastDone = tl.Program(0, 0, 0)
	}
	if wantXfer := 5 * p.PageTransferTime(); lastXfer != wantXfer {
		t.Fatalf("5th transfer end = %d, want %d", lastXfer, wantXfer)
	}
	if wantDone := p.PageTransferTime() + 5*p.ProgramLatency; lastDone != wantDone {
		t.Fatalf("5th program done = %d, want %d", lastDone, wantDone)
	}
}

func TestProgramAfterEraseWaitsForDie(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	tl.Erase(0, 0)
	_, done := tl.Program(0, 0, 0)
	if done < p.EraseLatency+p.ProgramLatency {
		t.Fatalf("program done = %d, did not wait for the erase", done)
	}
}

func TestEraseSuspendForReads(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	tl.Erase(0, 0) // die busy 15 ms
	done := tl.Read(0, 0, 0)
	if done >= p.EraseLatency {
		t.Fatalf("read (%d) waited for the erase (%d)", done, p.EraseLatency)
	}
}
