package flash

import "testing"

func TestUtilizationZeroHorizon(t *testing.T) {
	tl := NewTimeline(tinyParams())
	u := tl.Utilization(0)
	if u.MeanChannel != 0 || u.ChannelImbalance != 0 {
		t.Fatalf("zero horizon must report zeros: %+v", u)
	}
}

func TestUtilizationAccountsOperations(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	tl.Program(0, 0, 0)
	tl.Read(0, 1, 2)
	tl.Erase(0, 1)
	tl.Copyback(0, 3)
	if got := tl.ChannelBusy(0); got != p.PageTransferTime() {
		t.Fatalf("channel 0 busy = %d, want one transfer", got)
	}
	if got := tl.ChannelBusy(1); got != p.PageTransferTime() {
		t.Fatalf("channel 1 busy = %d, want one read transfer", got)
	}
	if got := tl.ChipBusy(0); got != p.ProgramLatency {
		t.Fatalf("chip 0 busy = %d, want one program", got)
	}
	if got := tl.ChipBusy(1); got != p.EraseLatency {
		t.Fatalf("chip 1 busy = %d, want one erase", got)
	}
	if got := tl.ChipBusy(2); got != p.ReadLatency {
		t.Fatalf("chip 2 busy = %d, want one cell read", got)
	}
	if got := tl.ChipBusy(3); got != p.ReadLatency+p.ProgramLatency {
		t.Fatalf("chip 3 busy = %d, want one copyback", got)
	}
}

func TestUtilizationFractionsAndImbalance(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	// Three programs on channel 0, none on channel 1.
	tl.Program(0, 0, 0)
	tl.Program(0, 0, 0)
	tl.Program(0, 0, 1)
	horizon := 10 * p.PageTransferTime()
	u := tl.Utilization(horizon)
	wantMean := 3.0 * float64(p.PageTransferTime()) / float64(horizon) / 2 // 2 channels
	if diff := u.MeanChannel - wantMean; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("MeanChannel = %v, want %v", u.MeanChannel, wantMean)
	}
	if u.MaxChannel <= u.MeanChannel {
		t.Fatal("all traffic on one channel must show MaxChannel > MeanChannel")
	}
	if u.ChannelImbalance != 2.0 {
		t.Fatalf("imbalance = %v, want 2.0 (one of two channels used)", u.ChannelImbalance)
	}
	if u.MaxChip <= 0 || u.MeanChip <= 0 {
		t.Fatal("chip occupancy missing")
	}
}

func TestUtilizationBalancedTraffic(t *testing.T) {
	p := tinyParams()
	tl := NewTimeline(p)
	tl.Program(0, 0, 0)
	tl.Program(0, 1, 2)
	u := tl.Utilization(1_000_000)
	if u.ChannelImbalance != 1.0 {
		t.Fatalf("balanced traffic imbalance = %v, want 1.0", u.ChannelImbalance)
	}
}
