package flash

// Timeline models when the shared resources of the flash array — channel
// buses and chip dies — become free, and schedules operations against them.
//
// The model is the standard queuing abstraction used by SSDsim-class
// simulators: each resource has a "next free" time; an operation starts at
// the maximum of its issue time and the free times of the resources it
// needs, occupies them for its duration, and completes when its last stage
// finishes. This captures exactly the effect the paper measures in §4.2.2:
// a batch of page flushes striped over 8 channels completes roughly 8× as
// fast as the same batch serialized on one channel (BPLRU's block-bound
// flush).
type Timeline struct {
	p        Params
	chanFree []int64 // per channel: next time the bus is idle
	chipFree []int64 // per chip: end of the die's program/erase backlog
	readFree []int64 // per chip: next time the die can serve a read

	chanBusy []int64 // per channel: accumulated bus occupancy, ns
	chipBusy []int64 // per chip: accumulated die occupancy, ns
}

// NewTimeline returns an idle timeline for the geometry.
func NewTimeline(p Params) *Timeline {
	return &Timeline{
		p:        p,
		chanFree: make([]int64, p.Channels),
		chipFree: make([]int64, p.Chips()),
		readFree: make([]int64, p.Chips()),
		chanBusy: make([]int64, p.Channels),
		chipBusy: make([]int64, p.Chips()),
	}
}

// Program schedules a page program: the channel carries the data into the
// chip's cache register (transfer time), then the die programs it. Modern
// NAND's cache-program mode lets the next page's data transfer while the
// previous page is still programming, so the transfer waits only for the
// channel; the program phase serializes on the die. Returns the transfer
// end (when the controller's buffer frame is free) and the completion time
// (when the data is durable in the cell).
func (t *Timeline) Program(now int64, channel, chip int) (transferEnd, done int64) {
	start := max(now, t.chanFree[channel])
	transferEnd = start + t.p.PageTransferTime()
	progStart := max(transferEnd, t.chipFree[chip])
	done = progStart + t.p.ProgramLatency
	t.chanFree[channel] = transferEnd
	t.chipFree[chip] = done
	t.chanBusy[channel] += t.p.PageTransferTime()
	t.chipBusy[chip] += t.p.ProgramLatency
	return transferEnd, done
}

// Read schedules a page read: the die performs the cell read, then the
// channel transfers the data out. Returns the time the data reaches the
// controller.
//
// Reads have priority over the die's program/erase backlog via
// suspend/resume (standard in modern NAND controllers): a read does not
// wait for queued programs, it suspends them, and the backlog is pushed
// back by the read's cell time. Reads still serialize with other reads on
// the same die.
func (t *Timeline) Read(now int64, channel, chip int) int64 {
	cellStart := max(now, t.readFree[chip])
	ready := cellStart + t.p.ReadLatency
	transferStart := max(ready, t.chanFree[channel])
	done := transferStart + t.p.PageTransferTime()
	t.chanFree[channel] = done
	t.readFree[chip] = ready
	if t.chipFree[chip] > cellStart {
		// Suspended program/erase work resumes after the cell read.
		t.chipFree[chip] += t.p.ReadLatency
	}
	t.chanBusy[channel] += t.p.PageTransferTime()
	t.chipBusy[chip] += t.p.ReadLatency
	return done
}

// Erase schedules a block erase; only the die is occupied.
func (t *Timeline) Erase(now int64, chip int) int64 {
	start := max(now, t.chipFree[chip])
	done := start + t.p.EraseLatency
	t.chipFree[chip] = done
	t.chipBusy[chip] += t.p.EraseLatency
	return done
}

// Copyback schedules an in-chip valid-page migration (GC): cell read
// followed by program with no channel traffic.
func (t *Timeline) Copyback(now int64, chip int) int64 {
	start := max(now, t.chipFree[chip])
	done := start + t.p.ReadLatency + t.p.ProgramLatency
	t.chipFree[chip] = done
	t.chipBusy[chip] += t.p.ReadLatency + t.p.ProgramLatency
	return done
}

// ChannelFree returns when a channel next becomes idle.
func (t *Timeline) ChannelFree(channel int) int64 { return t.chanFree[channel] }

// ChipFree returns when a chip next becomes idle.
func (t *Timeline) ChipFree(chip int) int64 { return t.chipFree[chip] }

// NextIdleChannel returns the channel whose bus frees earliest, used for
// dynamic (striped) allocation.
func (t *Timeline) NextIdleChannel() int {
	best, bestAt := 0, t.chanFree[0]
	for ch := 1; ch < len(t.chanFree); ch++ {
		if t.chanFree[ch] < bestAt {
			best, bestAt = ch, t.chanFree[ch]
		}
	}
	return best
}

// Utilization reports how the simulated traffic used the device's
// parallel resources over a horizon (usually the trace duration): mean
// and peak channel-bus and die occupancy fractions, plus the imbalance
// between the busiest and the mean channel — the quantity behind the
// paper's §4.2.4 argument that striped batch evictions exploit channel
// parallelism while block-bound flushes serialize.
type Utilization struct {
	// MeanChannel / MaxChannel are bus busy fractions of the horizon.
	MeanChannel, MaxChannel float64
	// MeanChip / MaxChip are die busy fractions of the horizon.
	MeanChip, MaxChip float64
	// ChannelImbalance is MaxChannel / MeanChannel (1 = perfectly even),
	// or 0 with no traffic.
	ChannelImbalance float64
}

// Utilization computes occupancy fractions over [0, horizon].
func (t *Timeline) Utilization(horizon int64) Utilization {
	var u Utilization
	if horizon <= 0 {
		return u
	}
	var sum, max int64
	for _, b := range t.chanBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	u.MeanChannel = float64(sum) / float64(len(t.chanBusy)) / float64(horizon)
	u.MaxChannel = float64(max) / float64(horizon)
	if u.MeanChannel > 0 {
		u.ChannelImbalance = u.MaxChannel / u.MeanChannel
	}
	sum, max = 0, 0
	for _, b := range t.chipBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	u.MeanChip = float64(sum) / float64(len(t.chipBusy)) / float64(horizon)
	u.MaxChip = float64(max) / float64(horizon)
	return u
}

// ChannelBusy returns the accumulated bus occupancy of a channel (tests).
func (t *Timeline) ChannelBusy(channel int) int64 { return t.chanBusy[channel] }

// ChipBusy returns the accumulated die occupancy of a chip (tests).
func (t *Timeline) ChipBusy(chip int) int64 { return t.chipBusy[chip] }
