package flash

import "testing"

func TestArrayStateAccessors(t *testing.T) {
	a, err := NewArray(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.State(0) != PageFree {
		t.Fatal("fresh page not free")
	}
	if a.BlockFull(0) || a.FreePagesInBlock(0) != 4 {
		t.Fatal("fresh block accounting wrong")
	}
	for i := 0; i < 4; i++ {
		if _, err := a.Program(0); err != nil {
			t.Fatal(err)
		}
	}
	if !a.BlockFull(0) || a.FreePagesInBlock(0) != 0 {
		t.Fatal("full block accounting wrong")
	}
	if a.State(0) != PageValid {
		t.Fatal("programmed page not valid")
	}
	if err := a.Invalidate(0); err != nil {
		t.Fatal(err)
	}
	if a.State(0) != PageInvalid {
		t.Fatal("invalidated page state wrong")
	}
}

func TestNewArrayRejectsInvalidParams(t *testing.T) {
	p := tinyParams()
	p.Channels = 0
	if _, err := NewArray(p); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestParamsLogicalPages(t *testing.T) {
	p := tinyParams()
	p.OverProvision = 0.25
	if got := p.LogicalPages(); got != p.PhysicalPages()*3/4 {
		t.Fatalf("LogicalPages = %d, want 3/4 of %d", got, p.PhysicalPages())
	}
}

func TestParamsChipOfPPN(t *testing.T) {
	p := tinyParams()
	// Last PPN of the device lives on the last chip.
	last := p.PhysicalPages() - 1
	if p.ChipOfPPN(last) != p.Chips()-1 {
		t.Fatalf("ChipOfPPN(last) = %d, want %d", p.ChipOfPPN(last), p.Chips()-1)
	}
	if p.ChipOfPPN(0) != 0 {
		t.Fatal("ChipOfPPN(0) != 0")
	}
}

func TestWearStatsInPackage(t *testing.T) {
	a, _ := NewArray(tinyParams())
	for i := 0; i < 4; i++ {
		ppn, _ := a.Program(0)
		a.Invalidate(ppn)
	}
	if err := a.Erase(0); err != nil {
		t.Fatal(err)
	}
	w := a.WearStats()
	if w.TotalErases != 1 || w.MaxErase != 1 || w.MinErase != 0 {
		t.Fatalf("wear stats: %+v", w)
	}
	if w.MeanErase <= 0 || w.StdDev <= 0 {
		t.Fatalf("wear distribution: %+v", w)
	}
}
