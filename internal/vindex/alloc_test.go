package vindex

import (
	"math/rand"
	"testing"
)

// TestHeapSteadyStateAllocs pins the pooling contract: once the heap has
// been churned warm (entries pushed, invalidated, popped, compacted), a
// steady-state mix of operations allocates nothing — the same
// AllocsPerRun convention the cache policies enforce since PR 1.
func TestHeapSteadyStateAllocs(t *testing.T) {
	var h Heap[int]
	rng := rand.New(rand.NewSource(7))
	var tieSeq uint64
	handles := make([]Handle[int], 0, 4096)

	step := func() {
		op := rng.Intn(10)
		// Bound the live population so the warm slice/pool capacities are
		// the steady-state capacities: past the cap a push turns into an
		// invalidate.
		if op < 5 && len(handles) >= 2048 {
			op = 5
		}
		switch {
		case op < 5 || len(handles) == 0:
			tieSeq++
			handles = append(handles, h.Push(int64(rng.Intn(64)), tieSeq, int(tieSeq)))
		case op < 7:
			i := rng.Intn(len(handles))
			h.Invalidate(handles[i])
			handles[i] = handles[len(handles)-1]
			handles = handles[:len(handles)-1]
		case op < 9:
			i := rng.Intn(len(handles))
			tieSeq++
			handles[i] = h.Update(handles[i], int64(rng.Intn(64)), tieSeq, int(tieSeq))
		default:
			if _, ok := h.PopMin(); ok {
				// The popped entry's handle goes stale in place; dropping
				// it from the slice lazily keeps the step allocation-free.
				for i := range handles {
					if !handles[i].Valid() {
						handles[i] = handles[len(handles)-1]
						handles = handles[:len(handles)-1]
						break
					}
				}
			}
		}
	}

	// Warm up past every growth edge: slot array, pool, compaction.
	for i := 0; i < 50000; i++ {
		step()
	}

	allocs := testing.AllocsPerRun(5000, step)
	if allocs > 0.05 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}
