package vindex

import (
	"math/rand"
	"testing"
)

// naiveModel is the obviously-correct reference: a flat slice scanned in
// full for the minimum (score, tie) on every pop. The heap must agree
// with it on every operation.
type naiveItem struct {
	key Key
	id  int
}

type naiveModel struct {
	items []naiveItem
}

func (m *naiveModel) push(score int64, tie uint64, id int) {
	m.items = append(m.items, naiveItem{key: Key{Score: score, Tie: tie}, id: id})
}

func (m *naiveModel) remove(id int) bool {
	for i, it := range m.items {
		if it.id == id {
			m.items = append(m.items[:i], m.items[i+1:]...)
			return true
		}
	}
	return false
}

func (m *naiveModel) popMin() (int, bool) {
	if len(m.items) == 0 {
		return 0, false
	}
	best := 0
	for i := 1; i < len(m.items); i++ {
		if m.items[i].key.less(m.items[best].key) {
			best = i
		}
	}
	id := m.items[best].id
	m.items = append(m.items[:best], m.items[best+1:]...)
	return id, true
}

func (m *naiveModel) peekMin() (int, bool) {
	if len(m.items) == 0 {
		return 0, false
	}
	best := 0
	for i := 1; i < len(m.items); i++ {
		if m.items[i].key.less(m.items[best].key) {
			best = i
		}
	}
	return m.items[best].id, true
}

// TestHeapDifferential drives the heap and the naive model in lockstep
// through a long randomized op sequence (push / invalidate / update /
// pop / peek / reset) and requires identical answers throughout.
func TestHeapDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h Heap[int]
		var m naiveModel
		handles := map[int]Handle[int]{} // id -> live handle
		nextID := 0
		var tieSeq uint64

		liveIDs := func() []int {
			ids := make([]int, 0, len(handles))
			for id := range handles {
				ids = append(ids, id)
			}
			return ids
		}

		for step := 0; step < 5000; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // push
				score := int64(rng.Intn(16)) // narrow range to force score ties
				tieSeq++
				id := nextID
				nextID++
				handles[id] = h.Push(score, tieSeq, id)
				m.push(score, tieSeq, id)
			case op < 6: // invalidate a random live entry
				ids := liveIDs()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				if !h.Invalidate(handles[id]) {
					t.Fatalf("seed %d step %d: Invalidate(%d) reported no-op on a live handle", seed, step, id)
				}
				delete(handles, id)
				m.remove(id)
			case op < 8: // update a random live entry to a new key
				ids := liveIDs()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				score := int64(rng.Intn(16))
				tieSeq++
				handles[id] = h.Update(handles[id], score, tieSeq, id)
				m.remove(id)
				m.push(score, tieSeq, id)
			case op < 9: // pop
				got, gotOK := h.PopMin()
				want, wantOK := m.popMin()
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("seed %d step %d: PopMin = (%d,%v), naive = (%d,%v)", seed, step, got, gotOK, want, wantOK)
				}
				if gotOK {
					delete(handles, got)
				}
			default: // peek
				got, gotOK := h.PeekMin()
				want, wantOK := m.peekMin()
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("seed %d step %d: PeekMin = (%d,%v), naive = (%d,%v)", seed, step, got, gotOK, want, wantOK)
				}
			}
			if h.Len() != len(m.items) {
				t.Fatalf("seed %d step %d: Len = %d, naive = %d", seed, step, h.Len(), len(m.items))
			}
			// Occasional full reset exercises pooled recycling of live
			// and stale entries together.
			if step%1024 == 1023 {
				h.Reset()
				m.items = m.items[:0]
				for id := range handles {
					delete(handles, id)
				}
			}
		}

		// Drain: remaining pops must come out in exact naive order.
		for {
			got, gotOK := h.PopMin()
			want, wantOK := m.popMin()
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("seed %d drain: PopMin = (%d,%v), naive = (%d,%v)", seed, got, gotOK, want, wantOK)
			}
			if !gotOK {
				break
			}
		}
	}
}

// TestTieBreakInsertionOrder pins the ordering contract policies rely on:
// equal scores pop in ascending tie order, i.e. insertion order when the
// tie is a monotone sequence number.
func TestTieBreakInsertionOrder(t *testing.T) {
	var h Heap[string]
	h.Push(5, 1, "first")
	h.Push(5, 2, "second")
	h.Push(5, 3, "third")
	h.Push(4, 4, "smaller-later")

	want := []string{"smaller-later", "first", "second", "third"}
	for i, w := range want {
		got, ok := h.PopMin()
		if !ok || got != w {
			t.Fatalf("pop %d = (%q,%v), want %q", i, got, ok, w)
		}
	}
	if _, ok := h.PopMin(); ok {
		t.Fatalf("heap not empty after draining")
	}
}

// TestHandleGenerations pins the safety of retained handles: a handle
// whose entry has been invalidated, popped, or recycled into a new
// incarnation must be inert.
func TestHandleGenerations(t *testing.T) {
	var h Heap[int]

	// Zero handle: no-ops.
	var zero Handle[int]
	if zero.Valid() {
		t.Fatalf("zero handle reports Valid")
	}
	if h.Invalidate(zero) {
		t.Fatalf("Invalidate(zero) reported work done")
	}

	// Invalidate makes the handle stale; double-invalidate is a no-op.
	hd := h.Push(1, 1, 10)
	if !hd.Valid() {
		t.Fatalf("fresh handle not valid")
	}
	if !h.Invalidate(hd) {
		t.Fatalf("first Invalidate failed")
	}
	if hd.Valid() {
		t.Fatalf("handle still valid after Invalidate")
	}
	if h.Invalidate(hd) {
		t.Fatalf("second Invalidate reported work done")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after invalidating the only entry", h.Len())
	}

	// A handle into a popped-and-recycled entry must not affect the new
	// incarnation occupying the same pooled slot.
	hd = h.Push(1, 2, 20)
	if v, ok := h.PopMin(); !ok || v != 20 {
		t.Fatalf("PopMin = (%d,%v), want (20,true)", v, ok)
	}
	hd2 := h.Push(2, 3, 30) // reuses the pooled entry
	if hd.Valid() {
		t.Fatalf("stale handle valid after its entry was recycled")
	}
	if h.Invalidate(hd) {
		t.Fatalf("stale handle invalidated the recycled entry")
	}
	if v, ok := h.PopMin(); !ok || v != 30 {
		t.Fatalf("new incarnation lost: PopMin = (%d,%v), want (30,true)", v, ok)
	}
	_ = hd2
}

// TestCompaction forces the stale population far past the live one and
// checks the heap stays correct and bounded afterwards.
func TestCompaction(t *testing.T) {
	var h Heap[int]
	// Churn: push then immediately invalidate, far beyond compactSlack,
	// with a handful of survivors interleaved.
	var keep []Handle[int]
	for i := 0; i < 10*compactSlack; i++ {
		hd := h.Push(int64(i%7), uint64(i+1), i)
		if i%97 == 0 {
			keep = append(keep, hd)
			continue
		}
		h.Invalidate(hd)
	}
	if got, bound := len(h.slots), h.live+compactSlack+1; got > bound {
		t.Fatalf("slot array grew unbounded: %d slots for %d live (bound %d)", got, h.live, bound)
	}
	// Survivors must still pop in (score, tie) order.
	var last Key
	first := true
	n := 0
	for {
		v, ok := h.PeekMin()
		if !ok {
			break
		}
		v2, ok2 := h.PopMin()
		if !ok2 || v2 != v {
			t.Fatalf("PeekMin %d then PopMin (%d,%v) disagree", v, v2, ok2)
		}
		k := Key{Score: int64(v % 7), Tie: uint64(v + 1)}
		if !first && k.less(last) {
			t.Fatalf("out-of-order pop: %v after %v", k, last)
		}
		last, first = k, false
		n++
	}
	if n != len(keep) {
		t.Fatalf("popped %d survivors, want %d", n, len(keep))
	}
}

// TestCostMonotone checks the scan-cost counter only moves forward and
// charges work at pop time.
func TestCostMonotone(t *testing.T) {
	var h Heap[int]
	for i := 0; i < 256; i++ {
		h.Push(int64(256-i), uint64(i+1), i)
	}
	before := h.Cost()
	for i := 0; i < 256; i++ {
		if _, ok := h.PopMin(); !ok {
			t.Fatalf("premature empty at pop %d", i)
		}
		after := h.Cost()
		if after <= before {
			t.Fatalf("cost did not advance on pop %d: %d -> %d", i, before, after)
		}
		before = after
	}
}

func TestBestSelectors(t *testing.T) {
	cases := []struct {
		scores []int64
		want   int
	}{
		{nil, -1},
		{[]int64{}, -1},
		{[]int64{7}, 0},
		{[]int64{3, 1, 2}, 1},
		{[]int64{5, 5, 5}, 0},    // first wins ties
		{[]int64{9, 2, 2, 8}, 1}, // first of the tied pair
		{[]int64{-4, -4, -9}, 2},
	}
	for _, c := range cases {
		if got := Best(c.scores); got != c.want {
			t.Errorf("Best(%v) = %d, want %d", c.scores, got, c.want)
		}
	}
	fcases := []struct {
		scores []float64
		want   int
	}{
		{nil, -1},
		{[]float64{2.5}, 0},
		{[]float64{1.5, 1.5, 0.5}, 2},
		{[]float64{3.25, 3.25}, 0}, // first wins ties
	}
	for _, c := range fcases {
		if got := BestF(c.scores); got != c.want {
			t.Errorf("BestF(%v) = %d, want %d", c.scores, got, c.want)
		}
	}
}
