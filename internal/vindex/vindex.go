// Package vindex is the shared indexed victim-selection core: a lazy
// min-heap with generation-stamped, pooled entries, plus tiny
// fixed-candidate selectors for policies whose victim sets are small
// device constants.
//
// Every cache policy in this repository ultimately answers the same
// question at eviction time — "which resident item scores worst right
// now?" — but at GB-scale capacities the linear scans the paper's 16/64 MB
// evaluation could afford (FAB's full-group walk, PUD-LRU's PUD sweep, a
// naive min-frequency scan) turn O(n) per eviction. Heap indexes the
// policy-supplied score so victim selection is O(log n):
//
//   - Push inserts an entry under a (score, tie) key and returns a Handle.
//   - When an item's score changes, the policy calls Update: the old entry
//     is invalidated in place (its generation is bumped, the entry stays
//     in the heap) and a fresh entry is pushed. Nothing is ever removed
//     from the middle of the heap.
//   - PopMin sifts tournament-style toward the root and discards stale
//     (invalidated) entries as they surface, returning the first live
//     minimum. Stale entries therefore cost O(log n) once, at pop or
//     compaction time, instead of O(n) re-ordering at update time.
//
// Ordering is ascending (score, tie). Policies encode "largest wins" by
// negating the score and encode their documented tie-break contract
// (insertion order, bucket-entry order, recency rank) in the tie field —
// the heap itself is deterministic: equal (score, tie) pairs never occur
// in practice because ties carry a unique monotone sequence number.
//
// Entries are pooled per heap and recycled on pop/compaction, so a warm
// heap allocates nothing in steady state (enforced by the package's
// AllocsPerRun test, matching the PR 1 convention). Generations make
// retained Handles harmless: a Handle into a recycled entry no longer
// matches the entry's generation and Invalidate/Update on it is a no-op
// for the old incarnation.
package vindex

// Key is the heap ordering: ascending Score, ties broken by ascending
// Tie. Policies map their victim rule onto it (e.g. FAB: Score = -group
// size, Tie = group creation sequence, so the fullest, oldest group pops
// first).
type Key struct {
	Score int64
	Tie   uint64
}

// less is the tournament comparison.
func (k Key) less(o Key) bool {
	if k.Score != o.Score {
		return k.Score < o.Score
	}
	return k.Tie < o.Tie
}

// entry is one heap slot. Dead entries (invalidated, or superseded by an
// Update) stay in the slot array until they surface at the root or a
// compaction sweeps them out.
type entry[V any] struct {
	key  Key
	val  V
	gen  uint64 // bumped on invalidate and recycle; Handles pin a generation
	dead bool
	next *entry[V] // pool link
}

// Handle names one live heap entry. The zero Handle is valid and refers
// to nothing: Invalidate and Update on it are no-ops (so a policy's "no
// entry yet" state needs no special casing).
type Handle[V any] struct {
	e   *entry[V]
	gen uint64
}

// Valid reports whether the handle still names a live entry.
func (h Handle[V]) Valid() bool { return h.e != nil && h.e.gen == h.gen && !h.e.dead }

// Heap is the lazy min-heap. The zero value is an empty heap ready to
// use. Heap is not safe for concurrent use; every policy owns its own.
type Heap[V any] struct {
	slots []*entry[V]
	free  *entry[V]
	live  int
	stale int
	cost  int64
}

// compactSlack is the stale overhang tolerated before Invalidate triggers
// an in-place compaction. Rebuilding costs O(n) and is amortized against
// the >= live+compactSlack invalidations that created the garbage, so
// update-heavy workloads stay O(log n) amortized per operation while the
// slot array stays within a small constant factor of the live population.
const compactSlack = 64

// Len returns the number of live entries.
func (h *Heap[V]) Len() int { return h.live }

// Cost returns the cumulative victim-selection work counter: one unit per
// entry examined while popping or peeking (stale entries skipped plus the
// live minimum) and per level sifted. Policies difference it around an
// eviction to report per-eviction scan cost.
func (h *Heap[V]) Cost() int64 { return h.cost }

// Push inserts val under (score, tie) and returns its Handle.
func (h *Heap[V]) Push(score int64, tie uint64, val V) Handle[V] {
	e := h.free
	if e != nil {
		h.free = e.next
		e.next = nil
	} else {
		e = &entry[V]{}
	}
	e.key = Key{Score: score, Tie: tie}
	e.val = val
	e.dead = false
	h.slots = append(h.slots, e)
	h.siftUp(len(h.slots) - 1)
	h.live++
	return Handle[V]{e: e, gen: e.gen}
}

// Invalidate marks the handle's entry stale; it reports whether a live
// entry was actually invalidated. Stale or zero handles are no-ops. The
// entry's storage is reclaimed lazily, when it surfaces at the root or a
// compaction runs.
func (h *Heap[V]) Invalidate(hd Handle[V]) bool {
	if !hd.Valid() {
		return false
	}
	e := hd.e
	e.dead = true
	e.gen++
	var zero V
	e.val = zero
	h.live--
	h.stale++
	if h.stale > h.live+compactSlack {
		h.compact()
	}
	return true
}

// Update re-keys an item: the old entry (if any) is invalidated and a
// fresh one pushed. It returns the new Handle.
func (h *Heap[V]) Update(hd Handle[V], score int64, tie uint64, val V) Handle[V] {
	h.Invalidate(hd)
	return h.Push(score, tie, val)
}

// PopMin removes and returns the live minimum, skipping (and recycling)
// stale entries as they surface. ok is false when the heap is empty.
func (h *Heap[V]) PopMin() (val V, ok bool) {
	for len(h.slots) > 0 {
		root := h.slots[0]
		h.removeRoot()
		h.cost++
		if root.dead {
			h.stale--
			h.recycle(root)
			continue
		}
		h.live--
		val = root.val
		h.recycle(root)
		return val, true
	}
	var zero V
	return zero, false
}

// PeekMin returns the live minimum without removing it, discarding stale
// roots on the way. ok is false when the heap is empty.
func (h *Heap[V]) PeekMin() (val V, ok bool) {
	for len(h.slots) > 0 {
		root := h.slots[0]
		if !root.dead {
			h.cost++
			return root.val, true
		}
		h.removeRoot()
		h.cost++
		h.stale--
		h.recycle(root)
	}
	var zero V
	return zero, false
}

// Reset empties the heap, recycling every entry (live and stale) into the
// pool. Handles into the heap become stale.
func (h *Heap[V]) Reset() {
	for _, e := range h.slots {
		h.recycle(e)
	}
	h.slots = h.slots[:0]
	h.live, h.stale = 0, 0
}

// recycle returns an entry to the pool, bumping its generation so any
// retained Handle can never match the next incarnation.
func (h *Heap[V]) recycle(e *entry[V]) {
	e.gen++
	e.dead = false
	var zero V
	e.val = zero
	e.next = h.free
	h.free = e
}

// removeRoot detaches slot 0 and restores the heap property.
func (h *Heap[V]) removeRoot() {
	last := len(h.slots) - 1
	h.slots[0] = h.slots[last]
	h.slots[last] = nil
	h.slots = h.slots[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

// compact removes every stale entry in place and re-heapifies (Floyd's
// bottom-up build). Called from Invalidate once garbage exceeds the live
// population by compactSlack.
func (h *Heap[V]) compact() {
	kept := h.slots[:0]
	for _, e := range h.slots {
		if e.dead {
			h.stale--
			h.recycle(e)
			continue
		}
		kept = append(kept, e)
	}
	// Clear the tail so recycled pointers do not linger in the backing
	// array past the new length.
	for i := len(kept); i < len(h.slots); i++ {
		h.slots[i] = nil
	}
	h.slots = kept
	for i := len(h.slots)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *Heap[V]) siftUp(i int) {
	e := h.slots[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.key.less(h.slots[parent].key) {
			break
		}
		h.slots[i] = h.slots[parent]
		i = parent
	}
	h.slots[i] = e
}

func (h *Heap[V]) siftDown(i int) {
	e := h.slots[i]
	n := len(h.slots)
	for {
		// Tournament step: the smaller child advances.
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.slots[r].key.less(h.slots[child].key) {
			child = r
		}
		if !h.slots[child].key.less(e.key) {
			break
		}
		h.slots[i] = h.slots[child]
		h.cost++
		i = child
	}
	h.slots[i] = e
}

// Best returns the index of the smallest score, the first index winning
// ties (matching the "scan in candidate order, replace on strictly
// smaller" contract of the linear scans it replaces). It returns -1 for
// an empty slice. Policies whose candidate sets are small fixed
// populations — ECR's per-channel queues, Req-block's three list tails —
// select through Best so the tie-break contract lives in one place.
func Best(scores []int64) int {
	best := -1
	for i, s := range scores {
		if best < 0 || s < scores[best] {
			best = i
		}
	}
	return best
}

// BestF is Best for float64 scores (Req-block's Eq. 1 frequency).
func BestF(scores []float64) int {
	best := -1
	for i, s := range scores {
		if best < 0 || s < scores[best] {
			best = i
		}
	}
	return best
}
