package metrics

import (
	"fmt"
	"math"
	"strings"
)

// ASCII rendering for the CLI tools: sparklines for time series (Fig. 13's
// list occupancy) and simple line plots for curves (miss-ratio curves).

// sparkRunes are the eight-level block glyphs, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as one line of block glyphs, scaled to the
// series' own min..max. An empty series yields an empty string; a constant
// series renders at mid height.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range values {
		idx := len(sparkRunes) / 2
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// PlotXY renders (x, y) points as a fixed-size ASCII chart with axis
// labels: width×height characters of plot area plus a frame. Points are
// connected by vertical fill so monotone curves read as a line. NaN/Inf
// points are skipped.
func PlotXY(xs, ys []float64, width, height int, title string) string {
	if len(xs) != len(ys) || len(xs) == 0 || width < 8 || height < 3 {
		return ""
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := range xs {
		if badFloat(xs[i]) || badFloat(ys[i]) {
			continue
		}
		minX, maxX = math.Min(minX, xs[i]), math.Max(maxX, xs[i])
		minY, maxY = math.Min(minY, ys[i]), math.Max(maxY, ys[i])
	}
	if math.IsInf(minX, 1) {
		return ""
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int((y - minY) / (maxY - minY) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}
	for i := range xs {
		if badFloat(xs[i]) || badFloat(ys[i]) {
			continue
		}
		grid[row(ys[i])][col(xs[i])] = '*'
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3g ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.3g ", minY)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString("        +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	b.WriteString(fmt.Sprintf("        %-*.4g%*.4g\n", width/2, minX, width-width/2, maxX))
	return b.String()
}

func badFloat(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
