package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe(v)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	if !almostEq(s.Mean(), 2.5) {
		t.Fatalf("Mean = %v, want 2.5", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almostEq(s.Sum(), 10) {
		t.Fatalf("Sum = %v, want 10", s.Sum())
	}
	if !almostEq(s.Variance(), 1.25) { // population variance of 1..4
		t.Fatalf("Variance = %v, want 1.25", s.Variance())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary stats must be zero")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	// Bound inputs to a realistic range: quick generates values near
	// ±MaxFloat64 whose sums overflow, which is not a regime the simulator
	// ever operates in (latencies and counts).
	bound := func(v float64) float64 { return math.Mod(v, 1e9) }
	f := func(a, b []float64) bool {
		var left, right, all Summary
		for _, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			v = bound(v)
			left.Observe(v)
			all.Observe(v)
		}
		for _, v := range b {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			v = bound(v)
			right.Observe(v)
			all.Observe(v)
		}
		left.Merge(&right)
		if left.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return math.Abs(left.Mean()-all.Mean()) < 1e-6*scale &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistDenseAndSparse(t *testing.T) {
	h := NewHist(4)
	h.Observe(0)
	h.Observe(1)
	h.Observe(1)
	h.Add(100, 5) // beyond dense range -> sparse
	if h.Count(1) != 2 || h.Count(100) != 5 || h.Count(3) != 0 {
		t.Fatalf("counts wrong: %d %d %d", h.Count(1), h.Count(100), h.Count(3))
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	keys := h.Keys()
	want := []int{0, 1, 100}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestHistNegativeKeyClamped(t *testing.T) {
	h := NewHist(4)
	h.Observe(-5)
	if h.Count(0) != 1 {
		t.Fatal("negative key not clamped to 0")
	}
}

func TestHistMean(t *testing.T) {
	h := NewHist(8)
	h.Add(2, 3) // 6
	h.Add(10, 1)
	if !almostEq(h.Mean(), 16.0/4.0) {
		t.Fatalf("Mean = %v, want 4", h.Mean())
	}
}

func TestHistCDF(t *testing.T) {
	h := NewHist(8)
	h.Add(1, 1)
	h.Add(2, 1)
	h.Add(4, 2)
	cdf := h.CDF()
	if len(cdf) != 3 {
		t.Fatalf("CDF points = %d, want 3", len(cdf))
	}
	if cdf[0].Key != 1 || !almostEq(cdf[0].Fraction, 0.25) {
		t.Fatalf("cdf[0] = %+v", cdf[0])
	}
	if cdf[2].Key != 4 || !almostEq(cdf[2].Fraction, 1.0) {
		t.Fatalf("cdf[2] = %+v", cdf[2])
	}
	if !almostEq(h.FractionLE(2), 0.5) {
		t.Fatalf("FractionLE(2) = %v, want 0.5", h.FractionLE(2))
	}
	if !almostEq(h.FractionLE(0), 0) {
		t.Fatalf("FractionLE(0) = %v, want 0", h.FractionLE(0))
	}
}

func TestHistCDFEmpty(t *testing.T) {
	h := NewHist(4)
	if h.CDF() != nil {
		t.Fatal("empty histogram CDF should be nil")
	}
	if h.FractionLE(10) != 0 {
		t.Fatal("empty histogram FractionLE should be 0")
	}
}

// Property: CDF is non-decreasing and ends at 1.
func TestHistCDFMonotoneProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		h := NewHist(16)
		for _, k := range keys {
			h.Observe(int(k))
		}
		cdf := h.CDF()
		if len(keys) == 0 {
			return cdf == nil
		}
		prev := 0.0
		for _, p := range cdf {
			if p.Fraction < prev {
				return false
			}
			prev = p.Fraction
		}
		return almostEq(prev, 1.0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesTick(t *testing.T) {
	s := NewSeries(10)
	s.Tick(5, 1.0) // below first boundary: nothing
	if s.Len() != 0 {
		t.Fatalf("premature sample: %d", s.Len())
	}
	s.Tick(10, 2.0)
	if s.Len() != 1 || s.Samples[0] != 2.0 {
		t.Fatalf("first sample wrong: %v", s.Samples)
	}
	s.Tick(35, 3.0) // crosses 20 and 30 -> two samples of current value
	if s.Len() != 3 || s.Samples[2] != 3.0 {
		t.Fatalf("catch-up samples wrong: %v", s.Samples)
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
	if !almostEq(Ratio(3, 4), 0.75) {
		t.Fatal("Ratio wrong")
	}
	if Percent(0.5) != "50.0%" {
		t.Fatalf("Percent = %q", Percent(0.5))
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(4), NewHist(2)
	a.Add(1, 2)
	b.Add(1, 3)
	b.Add(100, 1) // sparse in b
	a.Merge(b)
	if a.Count(1) != 5 || a.Count(100) != 1 || a.Total() != 6 {
		t.Fatalf("merge wrong: %d/%d/%d", a.Count(1), a.Count(100), a.Total())
	}
	// Merging an empty histogram is a no-op.
	a.Merge(NewHist(4))
	if a.Total() != 6 {
		t.Fatal("empty merge changed totals")
	}
}
