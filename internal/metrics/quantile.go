package metrics

// Quantile estimates a single quantile of a stream in O(1) space with the
// P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// running minimum, maximum, the target quantile and the two midpoints;
// marker heights are adjusted with a piecewise-parabolic fit as
// observations arrive. The replayer uses it for response-time tails
// (P50/P99), where mean latency hides exactly the effects whole-block
// flushes cause.
type Quantile struct {
	p       float64
	n       int64
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired-position increments per observation
}

// NewQuantile returns an estimator for the p-quantile, p in (0,1).
func NewQuantile(p float64) *Quantile {
	if p <= 0 || p >= 1 {
		panic("metrics: quantile p must be in (0,1)")
	}
	q := &Quantile{p: p}
	q.pos = [5]float64{1, 2, 3, 4, 5}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// Observe adds one observation.
func (q *Quantile) Observe(v float64) {
	q.n++
	if q.n <= 5 {
		// Insertion sort into the initial marker heights.
		i := int(q.n) - 1
		q.heights[i] = v
		for ; i > 0 && q.heights[i-1] > q.heights[i]; i-- {
			q.heights[i-1], q.heights[i] = q.heights[i], q.heights[i-1]
		}
		return
	}
	// Locate the cell containing v and update extremes.
	var k int
	switch {
	case v < q.heights[0]:
		q.heights[0] = v
		k = 0
	case v < q.heights[1]:
		k = 0
	case v < q.heights[2]:
		k = 1
	case v < q.heights[3]:
		k = 2
	case v <= q.heights[4]:
		k = 3
	default:
		q.heights[4] = v
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}
	// Adjust the three middle markers.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			var dir float64 = 1
			if d < 0 {
				dir = -1
			}
			h := q.parabolic(i, dir)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, dir)
			}
			q.pos[i] += dir
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (q *Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback height prediction.
func (q *Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current estimate. With five or fewer observations it
// returns the exact order statistic.
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n <= 5 {
		idx := int(q.p * float64(q.n))
		if idx >= int(q.n) {
			idx = int(q.n) - 1
		}
		return q.heights[idx]
	}
	return q.heights[2]
}

// Count returns the number of observations.
func (q *Quantile) Count() int64 { return q.n }
