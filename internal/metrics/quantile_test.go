package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile computes the reference order statistic.
func exactQuantile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func TestQuantilePanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v accepted", p)
				}
			}()
			NewQuantile(p)
		}()
	}
}

func TestQuantileEmptyAndTiny(t *testing.T) {
	q := NewQuantile(0.5)
	if q.Value() != 0 || q.Count() != 0 {
		t.Fatal("empty estimator not zero")
	}
	q.Observe(7)
	if q.Value() != 7 {
		t.Fatalf("single value = %v", q.Value())
	}
	q.Observe(3)
	q.Observe(5)
	// Exact order statistics below 6 observations.
	if got := q.Value(); got != 5 { // p=0.5 of {3,5,7} → index 1
		t.Fatalf("3-sample median = %v, want 5", got)
	}
}

func TestQuantileUniformStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q := NewQuantile(p)
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
			q.Observe(xs[i])
		}
		want := exactQuantile(xs, p)
		got := q.Value()
		if rel := math.Abs(got-want) / 1000; rel > 0.02 {
			t.Errorf("p=%v: estimate %v vs exact %v (err %.3f of range)", p, got, want, rel)
		}
	}
}

func TestQuantileExponentialStream(t *testing.T) {
	// Heavy-tailed input, the shape of latency distributions.
	rng := rand.New(rand.NewSource(2))
	q50 := NewQuantile(0.5)
	q99 := NewQuantile(0.99)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
		q50.Observe(xs[i])
		q99.Observe(xs[i])
	}
	w50, w99 := exactQuantile(xs, 0.5), exactQuantile(xs, 0.99)
	if rel := math.Abs(q50.Value()-w50) / w50; rel > 0.05 {
		t.Errorf("P50 %v vs exact %v", q50.Value(), w50)
	}
	if rel := math.Abs(q99.Value()-w99) / w99; rel > 0.15 {
		t.Errorf("P99 %v vs exact %v", q99.Value(), w99)
	}
	if q50.Value() >= q99.Value() {
		t.Error("P50 >= P99")
	}
}

func TestQuantileSortedAndReversedStreams(t *testing.T) {
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(10000 - i) },
		"constant":   func(i int) float64 { return 42 },
	} {
		q := NewQuantile(0.9)
		var xs []float64
		for i := 0; i < 10000; i++ {
			v := gen(i)
			xs = append(xs, v)
			q.Observe(v)
		}
		want := exactQuantile(xs, 0.9)
		got := q.Value()
		span := exactQuantile(xs, 0.9999) - exactQuantile(xs, 0.0001)
		if span == 0 {
			if got != want {
				t.Errorf("%s: %v != %v", name, got, want)
			}
			continue
		}
		if math.Abs(got-want)/span > 0.05 {
			t.Errorf("%s: estimate %v vs exact %v", name, got, want)
		}
	}
}

func TestQuantileMonotoneAcrossP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := []float64{0.1, 0.5, 0.9, 0.99}
	qs := make([]*Quantile, len(ps))
	for i, p := range ps {
		qs[i] = NewQuantile(p)
	}
	for i := 0; i < 30000; i++ {
		v := rng.NormFloat64()*50 + 500
		for _, q := range qs {
			q.Observe(v)
		}
	}
	for i := 1; i < len(qs); i++ {
		if qs[i].Value() < qs[i-1].Value() {
			t.Errorf("quantile estimates not monotone: p=%v:%v < p=%v:%v",
				ps[i], qs[i].Value(), ps[i-1], qs[i-1].Value())
		}
	}
}
