// Package metrics provides the small statistics toolkit used throughout the
// simulator: streaming summaries, integer histograms, weighted CDFs and
// fixed-interval time series.
//
// Everything here is deterministic and allocation-conscious; the experiment
// harness relies on these types to regenerate the paper's figures (CDF plots
// in Fig. 2, bar charts in Figs. 8-12, and the time series in Fig. 13).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count / sum / min / max / mean / variance of a stream
// of float64 observations using Welford's online algorithm.
type Summary struct {
	n        int64
	mean, m2 float64
	sum      float64
	min, max float64
}

// Observe adds one observation.
func (s *Summary) Observe(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Sum returns the sum of observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds other into s, as if every observation of other had been
// observed by s as well.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
	s.sum += other.sum
}

// String formats the summary compactly, mostly for logs and examples.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f",
		s.n, s.Mean(), s.Min(), s.Max(), s.StdDev())
}

// Hist is an exact histogram over small non-negative integer keys (request
// sizes in pages, eviction batch sizes, ...). Keys beyond the preallocated
// range spill into a map.
type Hist struct {
	dense  []int64
	sparse map[int]int64
	total  int64
}

// NewHist returns a histogram with a dense fast path for keys < denseLimit.
func NewHist(denseLimit int) *Hist {
	if denseLimit < 1 {
		denseLimit = 1
	}
	return &Hist{dense: make([]int64, denseLimit)}
}

// Add increments the count of key by w. Negative keys are clamped to 0.
func (h *Hist) Add(key int, w int64) {
	if key < 0 {
		key = 0
	}
	if key < len(h.dense) {
		h.dense[key] += w
	} else {
		if h.sparse == nil {
			h.sparse = make(map[int]int64)
		}
		h.sparse[key] += w
	}
	h.total += w
}

// Observe is Add(key, 1).
func (h *Hist) Observe(key int) { h.Add(key, 1) }

// Count returns the weight recorded for key.
func (h *Hist) Count(key int) int64 {
	if key >= 0 && key < len(h.dense) {
		return h.dense[key]
	}
	return h.sparse[key]
}

// Total returns the total recorded weight.
func (h *Hist) Total() int64 { return h.total }

// Keys returns all keys with non-zero weight, ascending.
func (h *Hist) Keys() []int {
	var keys []int
	for k, v := range h.dense {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	for k, v := range h.sparse {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

// Mean returns the weighted mean key.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for k, v := range h.dense {
		sum += float64(k) * float64(v)
	}
	for k, v := range h.sparse {
		sum += float64(k) * float64(v)
	}
	return sum / float64(h.total)
}

// CDF returns cumulative fractions at each key, ascending: the i-th point is
// (key, fraction of weight at keys ≤ key). Returns nil for an empty
// histogram.
func (h *Hist) CDF() []CDFPoint {
	keys := h.Keys()
	if len(keys) == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, len(keys))
	var cum int64
	for _, k := range keys {
		cum += h.Count(k)
		out = append(out, CDFPoint{Key: k, Fraction: float64(cum) / float64(h.total)})
	}
	return out
}

// FractionLE returns the fraction of weight at keys ≤ k.
func (h *Hist) FractionLE(k int) float64 {
	if h.total == 0 {
		return 0
	}
	var cum int64
	for i, v := range h.dense {
		if i > k {
			break
		}
		cum += v
	}
	for key, v := range h.sparse {
		if key <= k {
			cum += v
		}
	}
	return float64(cum) / float64(h.total)
}

// CDFPoint is one point of a cumulative distribution: the fraction of total
// weight at keys less than or equal to Key.
type CDFPoint struct {
	Key      int
	Fraction float64
}

// Series is a fixed-interval time series of float64 samples (Fig. 13 logs
// list occupancy once every 10,000 requests).
type Series struct {
	Interval int64 // sample spacing in the caller's unit (e.g. requests)
	Samples  []float64
}

// NewSeries returns a series sampled every interval units.
func NewSeries(interval int64) *Series {
	if interval < 1 {
		interval = 1
	}
	return &Series{Interval: interval}
}

// Tick records v if pos crosses the next sampling boundary; pos is a
// monotonically non-decreasing position (request index, simulated time...).
func (s *Series) Tick(pos int64, v float64) {
	for int64(len(s.Samples)+1)*s.Interval <= pos {
		s.Samples = append(s.Samples, v)
	}
}

// Len returns the number of samples taken so far.
func (s *Series) Len() int { return len(s.Samples) }

// Ratio returns a/b, or 0 when b == 0. It exists because nearly every
// reported metric in the paper is a normalized ratio.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Percent formats a ratio as a percentage string with one decimal.
func Percent(r float64) string { return fmt.Sprintf("%.1f%%", r*100) }

// Merge folds another histogram into h (replication aggregation).
func (h *Hist) Merge(other *Hist) {
	for k, v := range other.dense {
		if v != 0 {
			h.Add(k, v)
		}
	}
	for k, v := range other.sparse {
		if v != 0 {
			h.Add(k, v)
		}
	}
}
