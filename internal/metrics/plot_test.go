package metrics

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty series must render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("length = %d runes", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("scaling wrong: %q", s)
	}
	// Monotone input → monotone glyph levels.
	prev := -1
	for _, r := range runes {
		level := strings.IndexRune(string(sparkRunes), r)
		if level < prev {
			t.Fatalf("not monotone: %q", s)
		}
		prev = level
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	s := []rune(Sparkline([]float64{5, 5, 5}))
	if len(s) != 3 || s[0] != s[1] || s[1] != s[2] {
		t.Fatalf("constant series uneven: %q", string(s))
	}
}

func TestPlotXYBasics(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 4, 9, 16}
	out := PlotXY(xs, ys, 20, 6, "parabola")
	if !strings.Contains(out, "parabola") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no points plotted")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + x labels
	if len(lines) != 1+6+2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Max y label on the top row, min on the bottom plot row.
	if !strings.Contains(lines[1], "16") {
		t.Fatalf("max label missing: %q", lines[1])
	}
}

func TestPlotXYDegenerateInputs(t *testing.T) {
	if PlotXY(nil, nil, 20, 6, "") != "" {
		t.Fatal("empty input must render empty")
	}
	if PlotXY([]float64{1}, []float64{1, 2}, 20, 6, "") != "" {
		t.Fatal("mismatched lengths must render empty")
	}
	if PlotXY([]float64{1}, []float64{1}, 2, 6, "") != "" {
		t.Fatal("tiny width must render empty")
	}
	// All-NaN input.
	if PlotXY([]float64{math.NaN()}, []float64{math.NaN()}, 20, 6, "") != "" {
		t.Fatal("NaN-only input must render empty")
	}
	// Single valid point must not panic and must plot.
	out := PlotXY([]float64{1, math.NaN()}, []float64{2, math.NaN()}, 20, 6, "")
	if !strings.Contains(out, "*") {
		t.Fatal("single point lost")
	}
}

func TestPlotXYConstantY(t *testing.T) {
	out := PlotXY([]float64{0, 1, 2}, []float64{5, 5, 5}, 16, 4, "")
	if !strings.Contains(out, "*") {
		t.Fatal("constant series lost")
	}
}
