package metrics

import (
	"strings"
	"testing"
)

func TestBarChartBasics(t *testing.T) {
	groups := []BarGroup{
		{Label: "t1", Values: map[string]float64{"A": 1.0, "B": 0.5}},
		{Label: "t2", Values: map[string]float64{"A": 0.25, "B": 1.0}},
	}
	out := BarChart("chart", groups, []string{"A", "B"}, 20)
	if !strings.Contains(out, "chart") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 2 groups × 2 series + 1 blank separator
	if len(lines) != 1+4+1 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// The max value (1.0) fills the full width; 0.5 fills half.
	full := strings.Count(lines[1], "█")
	half := strings.Count(lines[2], "█")
	if full != 20 || half != 10 {
		t.Fatalf("bar lengths %d/%d, want 20/10", full, half)
	}
	if !strings.Contains(lines[1], "1.000") || !strings.Contains(lines[2], "0.500") {
		t.Fatal("values missing")
	}
}

func TestBarChartDegenerate(t *testing.T) {
	if BarChart("x", nil, []string{"A"}, 20) != "" {
		t.Fatal("no groups must render empty")
	}
	if BarChart("x", []BarGroup{{Label: "g"}}, nil, 20) != "" {
		t.Fatal("no series must render empty")
	}
	if BarChart("x", []BarGroup{{Label: "g"}}, []string{"A"}, 2) != "" {
		t.Fatal("tiny width must render empty")
	}
	// All-zero values must not divide by zero.
	out := BarChart("", []BarGroup{{Label: "g", Values: map[string]float64{"A": 0}}}, []string{"A"}, 10)
	if !strings.Contains(out, "0.000") {
		t.Fatalf("zero chart: %q", out)
	}
}

func TestBarChartMissingSeriesValue(t *testing.T) {
	groups := []BarGroup{{Label: "g", Values: map[string]float64{"A": 1}}}
	out := BarChart("", groups, []string{"A", "B"}, 10)
	if !strings.Contains(out, "B") {
		t.Fatal("missing series not rendered")
	}
}
