package metrics

import (
	"fmt"
	"strings"
)

// BarGroup is one labeled group of bars (e.g. a trace) in a grouped bar
// chart (the shape of the paper's Figs. 8-12).
type BarGroup struct {
	// Label names the group.
	Label string
	// Values maps series name → value.
	Values map[string]float64
}

// BarChart renders horizontal grouped bars: every group shows one bar per
// series, all scaled to the global maximum. Width is the bar area in
// characters.
func BarChart(title string, groups []BarGroup, series []string, width int) string {
	if len(groups) == 0 || len(series) == 0 || width < 4 {
		return ""
	}
	var max float64
	for _, g := range groups {
		for _, s := range series {
			if v := g.Values[s]; v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	labelW, seriesW := 0, 0
	for _, g := range groups {
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
	}
	for _, s := range series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for gi, g := range groups {
		if gi > 0 {
			b.WriteByte('\n')
		}
		for si, s := range series {
			label := g.Label
			if si > 0 {
				label = ""
			}
			v := g.Values[s]
			n := int(v / max * float64(width))
			if n < 0 {
				n = 0
			}
			if n > width {
				n = width
			}
			fmt.Fprintf(&b, "%-*s  %-*s |%s%s %.3f\n",
				labelW, label, seriesW, s,
				strings.Repeat("█", n), strings.Repeat(" ", width-n), v)
		}
	}
	return b.String()
}
