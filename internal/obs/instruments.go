package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The instruments below share three properties the rest of the package
// depends on:
//
//   - Nil-safe: every method on a nil receiver is a no-op (reads return
//     zero), so call sites never guard "is telemetry enabled".
//   - Atomic: the engine goroutine writes while HTTP scrape goroutines
//     read; neither side takes a lock.
//   - Allocation-free: updates touch only pre-sized fixed storage.

// Counter is a monotonically increasing accumulator.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set jumps the counter to an absolute cumulative value. It exists for
// mirroring counters the device already accumulates (ssd.Counters
// snapshots); treat such instruments as externally owned and never mix
// Set with Add.
func (c *Counter) Set(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FGauge is an instantaneous float64 value (hit ratios, fractions).
type FGauge struct{ v atomic.Uint64 }

// Set stores the current value.
func (g *FGauge) Set(f float64) {
	if g != nil {
		g.v.Store(math.Float64bits(f))
	}
}

// Value returns the current value.
func (g *FGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// histBuckets is the fixed bucket count of Hist. Bucket i counts
// observations v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1); the
// last bucket additionally absorbs everything larger than 2^62, so any
// int64 maps to exactly one bucket.
const histBuckets = 64

// Hist is a fixed-bucket log2 histogram. Powers of two cover the whole
// int64 range in 64 buckets, which keeps Observe a two-instruction index
// computation and the memory footprint constant — no dynamic bucket maps,
// no allocation, ever. The ~2x relative bucket width is plenty for latency
// and size distributions whose interesting structure spans decades.
// There is deliberately no separate observation counter: the count is the
// sum of the buckets, computed at read time. Reads are rare (scrapes,
// progress lines); Observe is the hot path and stays at two atomic adds.
type Hist struct {
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf returns the bucket index for v: ceil(log2(v)) clamped to the
// bucket range, i.e. the smallest i with v <= 2^i.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value. Negative values clamp into bucket 0 (they
// arise only from defensive call sites; the simulator's clocks are
// monotonic).
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations (the sum of the buckets).
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value, or 0 with no observations.
func (h *Hist) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Bucket returns the count in bucket i (not cumulative).
func (h *Hist) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= histBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1): the
// upper edge of the bucket holding that rank. Exact to within one bucket
// (a factor of two); good enough for progress lines and eyeballing tails.
func (h *Hist) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum > rank {
			switch {
			case i == 0:
				return 1
			case i == histBuckets-1:
				return math.MaxInt64 // overflow bucket has no finite edge
			default:
				return 1 << uint(i)
			}
		}
	}
	return math.MaxInt64
}
