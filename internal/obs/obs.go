// Package obs is the run-scoped telemetry plane: live observability over
// the streaming simulation engine, layered on as sim.Observer
// implementations and ftl.Tap timing taps without touching the hot loop.
//
// The paper's evaluation is post-hoc — every number in internal/replay and
// internal/experiments summarizes a finished run. This package serves the
// complementary live view a production-scale engine needs: per-phase
// latency and size distributions (cache lookup, flash program/read/erase,
// GC pauses, eviction batches, destage drains), counters and gauges (hit
// ratio, occupancy, queue depth, fault injections, retired blocks,
// degraded-mode transitions), a Prometheus-text /metrics endpoint with
// /healthz and /debug/pprof, a periodic NDJSON progress line for headless
// runs, and deterministic sampled request tracing that records why a
// policy kept or evicted a block.
//
// Design rules, enforced by the alloc and passivity tests:
//
//   - Observation is passive. Attaching any instrument leaves replay
//     metrics bit-identical — instruments read events and device state,
//     never mutate them.
//   - The hot path stays allocation-free. Instruments are fixed-bucket
//     log2 histograms and atomic counters; the unsampled tracer path and
//     the disabled (nil) path cost one branch.
//   - Exposition is race-safe. The engine is single-threaded, but /metrics
//     is served concurrently; every instrument is atomic, so a scrape
//     mid-request reads a consistent-enough snapshot without locks.
//
// docs/OBSERVABILITY.md catalogs the instruments, the exposition formats
// and the trace-span schema.
package obs
