package obs

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// A sharded replay with per-shard instrument sets must agree with the
// merged metrics in aggregate: shard request counts sum to the global
// processed count, shard flash writes sum to the aggregated device
// counters, and every shard's family shows up in the exposition.
func TestShardTelemetry(t *testing.T) {
	const shards = 4
	tel := New()
	spec := replay.ShardSpec{
		Shards:             shards,
		Sharing:            sim.SharingEqual,
		TotalCapacityPages: 256,
		NewPolicy:          func(_, capPages int) cache.Policy { return cache.NewLRU(capPages) },
		NewDevice: func(int) (*ssd.Device, error) {
			p := ssd.DefaultParams()
			p.Flash.BlocksPerPlane = 512
			p.Flash.PagesPerBlock = 16
			p.Precondition = 0
			return ssd.New(p)
		},
		TenantRegionPages: 8,
		ShardObservers:    tel.ShardObservers(shards),
	}
	opts := replay.Options{
		WarmupRequests: 50,
		Observers:      []sim.Observer{tel.Observer()},
	}
	m, err := replay.RunSharded(churnTrace(800).Source(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(tel.Shards) != shards {
		t.Fatalf("Telemetry.Shards has %d sets, want %d", len(tel.Shards), shards)
	}
	var reqs, writes, flushed int64
	active := 0
	for _, s := range tel.Shards {
		reqs += s.Requests.Value()
		writes += s.FlashWrites.Value()
		flushed += s.FlushedPages.Value()
		if s.Requests.Value() > 0 {
			active++
			if s.ReqLatency.Count() != s.Requests.Value() {
				t.Fatalf("shard latency count %d != requests %d", s.ReqLatency.Count(), s.Requests.Value())
			}
			if s.Capacity.Value() == 0 {
				t.Fatal("active shard never refreshed its capacity gauge")
			}
		}
	}
	if active < 2 {
		t.Fatalf("only %d shards saw traffic; trace/routing too narrow for the test", active)
	}
	if reqs != int64(m.Requests) {
		t.Fatalf("shard requests sum to %d, merged metrics say %d", reqs, m.Requests)
	}
	if writes != m.Device.FlashWrites {
		t.Fatalf("shard flash writes sum to %d, aggregated counters say %d", writes, m.Device.FlashWrites)
	}
	if flushed == 0 {
		t.Fatal("no shard flushed anything through a 256-page cache")
	}
	if got := tel.Requests.Value(); got != int64(m.Requests) {
		t.Fatalf("merged Requests = %d, metrics say %d", got, m.Requests)
	}

	var sb strings.Builder
	if err := tel.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < shards; k++ {
		if !strings.Contains(sb.String(), fmt.Sprintf("ssdsim_shard%d_requests_total", k)) {
			t.Fatalf("exposition missing shard %d instruments", k)
		}
	}
}

// A nil Telemetry's shard hook must be attachable and inert.
func TestShardObserversNilTelemetry(t *testing.T) {
	var tel *Telemetry
	hook := tel.ShardObservers(4)
	if obs := hook(0, nil); len(obs) != 0 {
		t.Fatalf("nil telemetry returned %d shard observers", len(obs))
	}
}
