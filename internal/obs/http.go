package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the live exposition mux for this Telemetry:
//
//	/metrics       Prometheus text exposition of the whole catalog
//	/healthz       200 {"status":"ok"} while healthy,
//	               503 {"status":"degraded"} once the device goes read-only
//	/debug/pprof/  the standard Go profiling endpoints
//	/              a plain-text index of the above
//
// The handler is safe to serve while the engine runs: every instrument is
// atomic and the registry is immutable after New.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.Registry().WritePrometheus(w) // write errors mean the scraper hung up
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if t.Healthy() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"degraded"}`)
	})
	// net/http/pprof registers on DefaultServeMux at import; wire its
	// handlers onto this mux explicitly so the default mux stays clean.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "ssdsim telemetry\n\n/metrics\n/healthz\n/debug/pprof/\n")
	})
	return mux
}

// Server is a live telemetry listener with its bound address.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (e.g. "127.0.0.1:9090", or ":0" for an ephemeral port)
// and serves h on it in a background goroutine. The returned Server
// reports the actual bound address and shuts the listener down on Close.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // always ErrServerClosed after Close
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
