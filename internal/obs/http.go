package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// HealthSource supplies live service state for /healthz beyond the
// device-degraded bit: the current overload-ladder rung and the admission
// queue depth. The service front-end (internal/serve) implements it;
// replay commands leave it unset and keep the plain ok/degraded report.
type HealthSource interface {
	// HealthStatus returns the overload state ("ok", "queueing",
	// "shedding", "rejecting", "read-only", "draining"), whether the
	// service is still accepting work, and the queued request count.
	HealthStatus() (status string, serving bool, queueDepth int64)
}

// healthSources guards the per-Telemetry health source without growing the
// Telemetry struct's hot fields; /healthz reads are rare.
var healthSources sync.Map // *Telemetry → HealthSource

// SetHealthSource attaches a HealthSource consulted by /healthz. Safe to
// call while the handler is serving; a nil source detaches.
func (t *Telemetry) SetHealthSource(hs HealthSource) {
	if t == nil {
		return
	}
	if hs == nil {
		healthSources.Delete(t)
		return
	}
	healthSources.Store(t, hs)
}

// healthSource returns the attached source, or nil.
func (t *Telemetry) healthSource() HealthSource {
	if t == nil {
		return nil
	}
	if hs, ok := healthSources.Load(t); ok {
		return hs.(HealthSource)
	}
	return nil
}

// flightRecorders guards the per-Telemetry flight recorder, mirroring the
// healthSources pattern; /debug/flightrec reads are rare.
var flightRecorders sync.Map // *Telemetry → *FlightRecorder

// SetFlightRecorder attaches the flight recorder served on
// /debug/flightrec. Safe to call while the handler is serving; a nil
// recorder detaches.
func (t *Telemetry) SetFlightRecorder(fr *FlightRecorder) {
	if t == nil {
		return
	}
	if fr == nil {
		flightRecorders.Delete(t)
		return
	}
	flightRecorders.Store(t, fr)
}

// flightRecorder returns the attached recorder, or nil.
func (t *Telemetry) flightRecorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	if fr, ok := flightRecorders.Load(t); ok {
		return fr.(*FlightRecorder)
	}
	return nil
}

// Handler returns the live exposition mux for this Telemetry:
//
//	/metrics       Prometheus text exposition of the whole catalog
//	/healthz       200 {"status":"ok"} while healthy,
//	               503 {"status":"degraded"} once the device goes read-only
//	/debug/flightrec  NDJSON snapshot of the attached flight recorder
//	                  (404 until SetFlightRecorder is called)
//	/debug/pprof/  the standard Go profiling endpoints
//	/              a plain-text index of the above
//
// The handler is safe to serve while the engine runs: every instrument is
// atomic and the registry is immutable after New.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.Registry().WritePrometheus(w) // write errors mean the scraper hung up
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A service front-end reports its overload-ladder state and queue
		// depth; replay runs keep the plain ok/degraded contract.
		if hs := t.healthSource(); hs != nil {
			status, serving, depth := hs.HealthStatus()
			if serving {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			fmt.Fprintf(w, "{\"status\":%q,\"queue_depth\":%d}\n", status, depth)
			return
		}
		if t.Healthy() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"degraded"}`)
	})
	mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, r *http.Request) {
		fr := t.flightRecorder()
		if fr == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = fr.WriteSnapshot(w) // write errors mean the client hung up
	})
	// net/http/pprof registers on DefaultServeMux at import; wire its
	// handlers onto this mux explicitly so the default mux stays clean.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "ssdsim telemetry\n\n/metrics\n/healthz\n/debug/flightrec\n/debug/pprof/\n")
	})
	return mux
}

// Server is a live telemetry listener with its bound address.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (e.g. "127.0.0.1:9090", or ":0" for an ephemeral port)
// and serves h on it in a background goroutine. The returned Server
// reports the actual bound address and shuts the listener down on Close.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // always ErrServerClosed after Close
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
