package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/replay"
	"repro/internal/sim"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	tel := New()
	tel.Requests.Set(42)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"ssdsim_requests_total 42",
		"# TYPE ssdsim_request_latency_ns histogram",
		"# TYPE ssdsim_gc_pause_ns histogram",
		"# TYPE ssdsim_hit_ratio gauge",
		"ssdsim_degraded 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, srv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz healthy = %d %q", code, body)
	}
	tel.Degraded.Set(1)
	code, body = get(t, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("/healthz degraded = %d %q", code, body)
	}

	if code, _ = get(t, srv.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, body = get(t, srv.URL+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, _ = get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d", code)
	}
}

// hookObserver runs fn once, when the processed count reaches at.
type hookObserver struct {
	sim.NopObserver
	at    int
	fn    func(processed int)
	fired bool
}

func (h *hookObserver) OnResult(_ *sim.Engine, ev *sim.ResultEvent) {
	if !h.fired && ev.Processed >= h.at {
		h.fired = true
		h.fn(ev.Processed)
	}
}

// The issue's integration criterion: scrape /metrics while a replay is in
// flight and see live counts, then watch /healthz flip to degraded on an
// injected-fault run.
func TestLiveExpositionDuringReplay(t *testing.T) {
	tel := New()
	srv, err := Serve("127.0.0.1:0", tel.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Phase 1: healthy run, scraped mid-flight at request 100. The
	// telemetry observer is registered before the hook, so by the time the
	// hook fires the catalog already reflects this request.
	var midBody string
	var midAt int
	hook := &hookObserver{at: 100, fn: func(processed int) {
		midAt = processed
		_, midBody = get(t, base+"/metrics")
		if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
			t.Errorf("healthz not ok mid-run: %d", code)
		}
	}}
	dev := testDevice(t)
	dev.SetTap(tel)
	_, err = replay.Run(testTrace(t), cache.NewLRU(1024), dev, replay.Options{
		Observers: []sim.Observer{tel.Observer(), hook},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hook.fired {
		t.Fatal("mid-run scrape never fired")
	}
	if want := fmt.Sprintf("ssdsim_requests_total %d", midAt); !strings.Contains(midBody, want) {
		t.Fatalf("mid-run scrape missing %q", want)
	}
	for _, want := range []string{
		"ssdsim_cache_occupancy_pages",
		"ssdsim_flash_program_ns_count",
		"ssdsim_request_latency_ns_bucket",
	} {
		if !strings.Contains(midBody, want) {
			t.Errorf("mid-run scrape missing %q", want)
		}
	}

	// Phase 2: a degrading run under the same telemetry flips /healthz.
	cfg := fault.Config{EraseFailProb: 1, ReserveBlocks: 1, CheckInvariants: true}
	ddev := degradingDevice(t, cfg)
	ddev.SetTap(tel)
	var opts replay.Options
	opts.ApplyFaults(cfg)
	opts.Observers = []sim.Observer{tel.Observer()}
	m, err := replay.Run(churnTrace(400), cache.NewLRU(64), ddev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Degraded {
		t.Fatal("fault run never degraded")
	}
	code, body := get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("healthz after degradation = %d %q", code, body)
	}
	_, metrics := get(t, base+"/metrics")
	if !strings.Contains(metrics, "ssdsim_degraded 1") {
		t.Fatal("degraded gauge not exposed")
	}
}
