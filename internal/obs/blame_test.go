package obs

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// Powers of two are the bucket edges themselves: 2^i must land in bucket
// i (upper edge inclusive), and 2^i + 1 must spill into bucket i+1. The
// blame matrix, quantile mapping, and Prometheus exposition all assume
// this alignment, so it is pinned across the whole representable range.
func TestHistPowerOfTwoBoundaries(t *testing.T) {
	for i := 1; i < histBuckets-1; i++ {
		edge := int64(1) << uint(i)
		if got := bucketOf(edge); got != i {
			t.Errorf("bucketOf(2^%d) = %d, want %d", i, got, i)
		}
		if got := bucketOf(edge + 1); got != i+1 {
			t.Errorf("bucketOf(2^%d+1) = %d, want %d", i, got, i+1)
		}
	}
	// The bottom bucket holds everything <= 1, including the degenerate
	// inputs; the top bucket absorbs the unrepresentable tail.
	if bucketOf(0) != 0 || bucketOf(1) != 0 || bucketOf(-1) != 0 {
		t.Error("values <= 1 must land in bucket 0")
	}
	if got := bucketOf(math.MaxInt64); got != histBuckets-1 {
		t.Errorf("bucketOf(MaxInt64) = %d, want %d", got, histBuckets-1)
	}
}

// A histogram whose observations all share one bucket must answer every
// quantile with that bucket's upper edge — there is no sub-bucket
// resolution to interpolate, and pretending otherwise would fabricate
// precision the log2 layout does not have.
func TestHistSingleBucketQuantile(t *testing.T) {
	h := &Hist{}
	for _, v := range []int64{513, 700, 1000, 1024} { // all in bucket 10 (edge 1024)
		h.Observe(v)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 1024 {
			t.Fatalf("Quantile(%v) = %d, want 1024", q, got)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
}

// The blame instruments follow the same nil contract as every other obs
// instrument: a nil *BlameSet and a zero-value BlameSet (nil interior
// instruments) both absorb observations without panicking, and the
// report paths render the empty state instead of failing.
func TestBlameSetNilSafe(t *testing.T) {
	bl := &sim.Blame{GCPauseNs: 5, ScanCost: 3}
	bl.Ns[sim.BlameCache] = 100

	var nilSet *BlameSet
	nilSet.Observe(100, bl)
	nilSet.Observe(0, nil)
	if nilSet.Count() != 0 {
		t.Fatal("nil BlameSet.Count != 0")
	}
	if rows := nilSet.BlameTable(0.5, 0.99); rows != nil {
		t.Fatalf("nil BlameSet.BlameTable = %v, want nil", rows)
	}
	var sb strings.Builder
	if err := nilSet.WriteBlameTable(&sb, 0.5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no requests") {
		t.Fatalf("nil WriteBlameTable output %q", sb.String())
	}

	// Zero value: the cells matrix works, the interior *Hist/*Counter
	// instruments are nil and must no-op individually.
	zero := &BlameSet{}
	zero.Observe(100, bl)
	zero.Observe(100, nil) // nil span is ignored, not counted
	if zero.Count() != 1 {
		t.Fatalf("zero-value BlameSet.Count = %d, want 1", zero.Count())
	}
	rows := zero.BlameTable(0.5)
	if len(rows) != 1 || rows[0].CauseNs[sim.BlameCache] != 100 {
		t.Fatalf("zero-value BlameTable rows = %+v", rows)
	}
}

// A registered BlameSet's table rows must decompose exactly: the
// per-cause means sum to the row's mean response time because the
// engine's partition is exact — any drift here means double counting.
func TestBlameTableRowsSumExactly(t *testing.T) {
	tel := New()
	b := tel.Blame
	for i := int64(1); i <= 64; i++ {
		var bl sim.Blame
		bl.Ns[sim.BlameQueue] = i
		bl.Ns[sim.BlameCache] = 2 * i
		bl.Ns[sim.BlameEvict] = 7
		b.Observe(bl.Total(), &bl)
	}
	if b.Count() != 64 {
		t.Fatalf("Count = %d", b.Count())
	}
	for _, r := range b.BlameTable(0.5, 0.99, 1) {
		var sum float64
		for c := 0; c < sim.NumBlameCauses; c++ {
			sum += r.CauseNs[c]
		}
		if math.Abs(sum-r.MeanNs) > 1e-9 {
			t.Fatalf("P%g: cause means sum %v != mean %v", r.Quantile*100, sum, r.MeanNs)
		}
		if r.Count == 0 {
			t.Fatalf("P%g: empty bucket selected", r.Quantile*100)
		}
	}
	// Dominant tallies cover every request exactly once.
	var doms int64
	for c := 0; c < sim.NumBlameCauses; c++ {
		doms += b.Dominant[c].Value()
	}
	if doms != 64 {
		t.Fatalf("dominant total = %d, want 64", doms)
	}
}
