package obs

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Tracer samples 1-in-Rate requests deterministically and writes one
// NDJSON span line per lifecycle step of each sampled request:
//
//	admit     the request enters the cache stage
//	list      a cache list transition it caused (IRL/SRL/DRL moves,
//	          downgraded-merge absorptions) — requires a policy that
//	          implements cache.TransitionSource
//	evict     a victim batch flushed (or dropped) on its request path
//	done      the cache decision and completion time
//	run_done  one footer line with run totals
//
// Sampling is a pure function of (Seed, request index) — splitmix64 over
// the index, keep when the hash is divisible by Rate — so two runs of the
// same trace with the same seed and rate sample the same requests, and all
// timestamps are simulated nanoseconds. The output is therefore
// byte-identical across runs: diffable, cacheable, assertable in tests.
//
// The unsampled path costs one hash and one branch per request and never
// allocates, preserving the engine's zero-alloc guarantee.
type Tracer struct {
	w    *bufio.Writer
	seed uint64
	rate uint64

	sampled  bool
	reqIndex int
	nSampled int64
	err      error
}

var (
	_ sim.Observer         = (*Tracer)(nil)
	_ cache.TransitionSink = (*Tracer)(nil)
)

// NewTracer builds a Tracer writing spans to w, keeping one request in
// Rate (rate <= 0 disables sampling entirely; rate 1 keeps every request).
func NewTracer(w io.Writer, rate int, seed uint64) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w), seed: seed}
	if rate > 0 {
		t.rate = uint64(rate)
	}
	return t
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality 64-bit mix with no state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports whether request index i is in the sample.
func (t *Tracer) Sampled(i int) bool {
	return t.rate > 0 && splitmix64(t.seed^uint64(i))%t.rate == 0
}

// SampledCount returns how many requests were sampled so far.
func (t *Tracer) SampledCount() int64 { return t.nSampled }

// Err returns the first write error, if any.
func (t *Tracer) Err() error { return t.err }

// Close flushes buffered spans and returns the first write error.
func (t *Tracer) Close() error {
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// printf appends one span line, latching the first write error.
func (t *Tracer) printf(format string, args ...any) {
	if _, err := fmt.Fprintf(t.w, format, args...); err != nil && t.err == nil {
		t.err = err
	}
}

// OnRequest implements sim.Observer: decides the sample and opens the span.
func (t *Tracer) OnRequest(e *sim.Engine, ev *sim.RequestEvent) {
	t.sampled = t.Sampled(ev.Index)
	if !t.sampled {
		return
	}
	t.nSampled++
	t.reqIndex = ev.Index
	kind := "read"
	if ev.Write {
		kind = "write"
	}
	t.printf(`{"ev":"admit","req":%d,"t":%d,"arrival":%d,"op":%q,"lpn":%d,"pages":%d,"warm":%t}`+"\n",
		ev.Index, ev.Issue, ev.Arrival, kind, ev.LPN, ev.Pages, ev.Warm)
}

// OnListTransition implements cache.TransitionSink: list moves the policy
// reports while the sampled request is being served. Transitions caused by
// idle flushing or destaging between requests are skipped (no open span).
func (t *Tracer) OnListTransition(tr cache.ListTransition) {
	if !t.sampled {
		return
	}
	t.printf(`{"ev":"list","req":%d,"lpn":%d,"pages":%d,"from":%q,"to":%q}`+"\n",
		t.reqIndex, tr.LPN, tr.Pages, tr.From, tr.To)
}

// OnEviction implements sim.Observer: victim batches dispatched while the
// sampled request's span is open (i.e. on its request path).
func (t *Tracer) OnEviction(e *sim.Engine, ev *sim.EvictionEvent) {
	if !t.sampled || len(ev.LPNs) == 0 {
		return
	}
	lo, hi := ev.LPNs[0], ev.LPNs[0]
	for _, lpn := range ev.LPNs[1:] {
		if lpn < lo {
			lo = lpn
		}
		if lpn > hi {
			hi = lpn
		}
	}
	t.printf(`{"ev":"evict","req":%d,"t":%d,"kind":%q,"pages":%d,"lpn_min":%d,"lpn_max":%d}`+"\n",
		t.reqIndex, ev.Time, ev.Kind, len(ev.LPNs), lo, hi)
}

// OnResult implements sim.Observer: closes the span with the cache
// decision and the flash dispatch outcome.
func (t *Tracer) OnResult(e *sim.Engine, ev *sim.ResultEvent) {
	if !t.sampled {
		return
	}
	t.sampled = false
	res := ev.Res
	t.printf(`{"ev":"done","req":%d,"t":%d,"latency_ns":%d,"hits":%d,"misses":%d,"inserted":%d,`+
		`"read_miss_pages":%d,"evict_batches":%d,"bypass_pages":%d,"prefetched_pages":%d,"nodes":%d}`+"\n",
		ev.Req.Index, ev.Completion, ev.Completion-ev.Req.Issue,
		res.Hits, res.Misses, res.Inserted,
		len(res.ReadMisses), len(res.Evictions), len(res.Bypass), ev.Prefetched, ev.NodeCount)
}

// OnDone implements sim.Observer: writes the footer and flushes.
func (t *Tracer) OnDone(e *sim.Engine, ev *sim.DoneEvent) {
	t.printf(`{"ev":"run_done","processed":%d,"sampled":%d,"degraded":%t}`+"\n",
		ev.Processed, t.nSampled, ev.Degraded)
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
}
