package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/sim"
)

// perfettoEvent mirrors the exporter's event shape for decoding.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

// runExport replays the test workload through a TraceExport and returns
// the raw bytes.
func runExport(t *testing.T, rate int, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	exp := NewTraceExport(&buf, rate, seed)
	_, err := replay.Run(testTrace(t), core.New(1024), testDevice(t), replay.Options{
		Observers: []sim.Observer{exp},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The export must be one valid JSON document in Chrome trace-event form,
// deterministic for a fixed seed and rate, with every blame child slice
// tiling its parent request slice exactly.
func TestTraceExportDeterministicAndNested(t *testing.T) {
	a := runExport(t, 16, 7)
	if !bytes.Equal(a, runExport(t, 16, 7)) {
		t.Fatal("same seed and rate produced different exports")
	}
	if bytes.Equal(a, runExport(t, 16, 8)) {
		t.Fatal("different seed produced an identical export")
	}

	var doc struct {
		DisplayTimeUnit string          `json:"displayTimeUnit"`
		TraceEvents     []perfettoEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var requests, blames int
	var parent *perfettoEvent
	var childEnd float64
	const eps = 0.0005 // half the 3-decimal µs resolution
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		switch {
		case ev.Ph == "M":
			continue
		case ev.Cat == "request":
			// The previous parent must have been tiled completely.
			if parent != nil && math.Abs(childEnd-(parent.Ts+parent.Dur)) > eps {
				t.Fatalf("%s: children end at %v, parent ends at %v",
					parent.Name, childEnd, parent.Ts+parent.Dur)
			}
			requests++
			parent = ev
			childEnd = ev.Ts
			if ev.Args["dominant"] == nil || ev.Args["index"] == nil {
				t.Fatalf("request slice missing args: %+v", ev)
			}
		case ev.Cat == "blame":
			blames++
			if parent == nil {
				t.Fatalf("blame slice %q before any request slice", ev.Name)
			}
			if ev.Tid != parent.Tid {
				t.Fatalf("blame slice on tid %d, parent on %d", ev.Tid, parent.Tid)
			}
			// Children are sequential: each starts where the last ended.
			if math.Abs(ev.Ts-childEnd) > eps {
				t.Fatalf("%s: child starts at %v, previous ended at %v", ev.Name, ev.Ts, childEnd)
			}
			childEnd = ev.Ts + ev.Dur
		default:
			t.Fatalf("unexpected event %+v", ev)
		}
	}
	if parent != nil && math.Abs(childEnd-(parent.Ts+parent.Dur)) > eps {
		t.Fatalf("last parent not tiled: children end %v, parent ends %v",
			childEnd, parent.Ts+parent.Dur)
	}
	if requests == 0 || blames == 0 {
		t.Fatalf("export has %d request and %d blame slices", requests, blames)
	}
}

// Rate 0 disables sampling: the export is a valid empty document.
func TestTraceExportRateZero(t *testing.T) {
	var doc struct {
		TraceEvents []perfettoEvent `json:"traceEvents"`
	}
	out := runExport(t, 0, 1)
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("rate-0 export invalid: %v\n%s", err, out)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			t.Fatalf("rate-0 export contains slice %+v", ev)
		}
	}
}
