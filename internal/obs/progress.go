package obs

import (
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
)

// Progress is a sim.Observer that emits one NDJSON snapshot line every
// Every processed requests (and a final "done" line), giving headless and
// batch runs a cheap live pulse: throughput, hit ratio, occupancy, GC
// activity, degraded state. Lines are self-contained JSON objects, one per
// line, so they survive interleaving with other stderr output and feed
// straight into jq or a log shipper.
//
// Progress reads wall-clock time for the reqs/s rate, so its output is
// not run-deterministic — which is fine, because it never feeds back into
// the simulation and is not part of any replay metric.
type Progress struct {
	sim.NopObserver
	w     io.Writer
	every int

	now          func() time.Time // injectable for tests
	start        time.Time
	lastWall     time.Time
	lastEmitted  int
	hits, misses int64
}

var _ sim.Observer = (*Progress)(nil)

// NewProgress builds a Progress writing to w every n processed requests.
// n <= 0 disables periodic lines; the final "done" line is always written.
func NewProgress(w io.Writer, n int) *Progress {
	return &Progress{w: w, every: n, now: time.Now}
}

// OnResult implements sim.Observer.
func (p *Progress) OnResult(e *sim.Engine, ev *sim.ResultEvent) {
	if p.start.IsZero() {
		p.start = p.now()
		p.lastWall = p.start
	}
	if ev.Req.Warm {
		p.hits += int64(ev.Res.Hits)
		p.misses += int64(ev.Res.Misses)
	}
	if p.every <= 0 || ev.Processed%p.every != 0 {
		return
	}
	wall := p.now()
	var rate float64
	if dt := wall.Sub(p.lastWall).Seconds(); dt > 0 {
		rate = float64(ev.Processed-p.lastEmitted) / dt
	}
	p.lastWall = wall
	p.lastEmitted = ev.Processed
	p.emit(e, "progress", ev.Processed, ev.Completion, rate, false)
}

// OnDone implements sim.Observer. It also rewinds the reporter's clock
// state so one Progress can be reused across a sequence of replays (the
// experiments grid shares a single reporter over every cell).
func (p *Progress) OnDone(e *sim.Engine, ev *sim.DoneEvent) {
	if p.start.IsZero() {
		p.start = p.now()
	}
	var rate float64
	if dt := p.now().Sub(p.start).Seconds(); dt > 0 {
		rate = float64(ev.Processed) / dt
	}
	var horizon int64
	if ev.HasRequests {
		horizon = ev.LastArrival
	}
	p.emit(e, "done", ev.Processed, horizon, rate, ev.Degraded)
	p.start = time.Time{}
	p.lastWall = time.Time{}
	p.lastEmitted = 0
}

// emit writes one snapshot line. Allocation here is fine: emission is
// periodic (every N requests), not per-request.
func (p *Progress) emit(e *sim.Engine, event string, processed int, simNs int64, rate float64, degraded bool) {
	hitRatio := 0.0
	if p.hits+p.misses > 0 {
		hitRatio = float64(p.hits) / float64(p.hits+p.misses)
	}
	var occ, capacity, nodes int64
	if pol := e.Policy(); pol != nil {
		occ, capacity, nodes = int64(pol.Len()), int64(pol.CapacityPages()), int64(pol.NodeCount())
	}
	var gcRuns, gcMigrations, flashWrites int64
	if dev := e.Device(); dev != nil {
		c := dev.Counters()
		gcRuns, gcMigrations, flashWrites = c.GCRuns, c.GCMigrations, c.FlashWrites
		degraded = degraded || dev.Degraded()
	}
	fmt.Fprintf(p.w,
		`{"event":%q,"processed":%d,"sim_ns":%d,"reqs_per_sec":%.1f,"hit_ratio":%.4f,`+
			`"occupancy_pages":%d,"capacity_pages":%d,"policy_nodes":%d,`+
			`"gc_runs":%d,"gc_migrations":%d,"flash_writes":%d,"degraded":%t}`+"\n",
		event, processed, simNs, rate, hitRatio,
		occ, capacity, nodes, gcRuns, gcMigrations, flashWrites, degraded)
}
