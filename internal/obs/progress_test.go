package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/replay"
	"repro/internal/sim"
)

func TestProgressEmitsSnapshots(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, 100)
	// Deterministic fake clock: one millisecond per call.
	var ticks int64
	p.now = func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Millisecond))
	}
	m, err := replay.Run(testTrace(t), cache.NewLRU(1024), testDevice(t), replay.Options{
		Observers: []sim.Observer{p},
	})
	if err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if want := m.Requests/100 + 1; len(lines) != want {
		t.Fatalf("lines = %d, want %d (%d requests / every 100, plus done)", len(lines), want, m.Requests)
	}
	var last struct {
		Event       string  `json:"event"`
		Processed   int     `json:"processed"`
		HitRatio    float64 `json:"hit_ratio"`
		ReqsPerSec  float64 `json:"reqs_per_sec"`
		Occupancy   int64   `json:"occupancy_pages"`
		FlashWrites int64   `json:"flash_writes"`
		Degraded    bool    `json:"degraded"`
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSON line %d: %q", i, line)
		}
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != "done" || last.Processed != m.Requests {
		t.Fatalf("final line = %+v, want done/%d", last, m.Requests)
	}
	if last.FlashWrites != m.Device.FlashWrites {
		t.Fatalf("flash_writes = %d, metrics say %d", last.FlashWrites, m.Device.FlashWrites)
	}
	if last.ReqsPerSec <= 0 {
		t.Fatal("done line has no throughput")
	}
	if last.Degraded {
		t.Fatal("healthy run reported degraded")
	}

	var first struct {
		Event     string `json:"event"`
		Processed int    `json:"processed"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Event != "progress" || first.Processed != 100 {
		t.Fatalf("first line = %+v, want progress/100", first)
	}
}

func TestProgressDisabledPeriodics(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, 0)
	_, err := replay.Run(testTrace(t), cache.NewLRU(1024), testDevice(t), replay.Options{
		Observers: []sim.Observer{p},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := strings.TrimRight(buf.String(), "\n")
	if strings.Count(out, "\n") != 0 || !strings.Contains(out, `"event":"done"`) {
		t.Fatalf("every=0 must emit only the done line, got %q", out)
	}
}
