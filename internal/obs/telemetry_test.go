package obs

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testDevice builds the small geometry the replay tests use: enough
// logical space for the workload footprints, tiny blocks so GC is cheap.
func testDevice(t *testing.T) *ssd.Device {
	t.Helper()
	p := ssd.DefaultParams()
	p.Flash.BlocksPerPlane = 512
	p.Flash.PagesPerBlock = 16
	p.Precondition = 0
	d, err := ssd.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// testTrace generates a small deterministic workload with enough writes
// to force evictions through a 1024-page cache.
func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := workload.Generate(workload.TS0(), workload.Options{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// degradingDevice builds the tiny fault-prone geometry the replay fault
// tests use: two reserve blocks' worth of headroom so erase failures
// exhaust the device within a few hundred requests.
func degradingDevice(t *testing.T, cfg fault.Config) *ssd.Device {
	t.Helper()
	p := ssd.DefaultParams()
	p.Flash.Channels = 2
	p.Flash.ChipsPerChannel = 2
	p.Flash.BlocksPerPlane = 16
	p.Flash.PagesPerBlock = 8
	p.Flash.OverProvision = 0.25
	p.Flash.GCThreshold = 0.25
	p.Precondition = 0
	p.Faults = cfg
	d, err := ssd.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// churnTrace writes the same 256 pages over and over, forcing GC.
func churnTrace(n int) *trace.Trace {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		page := int64(i*8) % 256
		reqs[i] = trace.Request{Time: int64(i) * 1_000_000, Write: true, Offset: page * 4096, Size: 8 * 4096}
	}
	return &trace.Trace{Name: "churn", Requests: reqs}
}

// fullStack returns a Telemetry plus every optional consumer wired up,
// ready to attach to one replay.
func fullStack(w io.Writer) (*Telemetry, *Tracer, *Progress) {
	tel := New()
	tracer := NewTracer(w, 64, 1)
	progress := NewProgress(io.Discard, 5000)
	return tel, tracer, progress
}

// Attaching the whole telemetry plane — observer, flash tap, tracer,
// progress reporter — must leave replay metrics bit-identical to a bare
// run: observation is passive (issue acceptance criterion).
func TestTelemetryIsPassive(t *testing.T) {
	tr := testTrace(t)
	opts := replay.Options{
		TrackPageFates:      true,
		SmallThresholdPages: 4,
		SeriesInterval:      500,
		WarmupRequests:      100,
		IdleFlushNs:         2_000_000,
		DestageNs:           50_000_000,
	}

	plain, err := replay.Run(tr, core.New(1024), testDevice(t), opts)
	if err != nil {
		t.Fatal(err)
	}

	tel, tracer, progress := fullStack(io.Discard)
	dev := testDevice(t)
	dev.SetTap(tel)
	pol := core.New(1024)
	pol.SetTransitionSink(tracer)
	instrumented := opts
	instrumented.Observers = []sim.Observer{tel.Observer(), tracer, progress}
	got, err := replay.Run(tr, pol, dev, instrumented)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, got) {
		t.Fatal("telemetry perturbed replay metrics; observation must be passive")
	}
	if tracer.SampledCount() == 0 {
		t.Fatal("tracer sampled nothing at rate 64")
	}
}

// One instrumented replay must populate every plane of the catalog
// consistently with the replay's own metrics.
func TestTelemetryCatalogAgreesWithMetrics(t *testing.T) {
	tr := testTrace(t)
	tel := New()
	dev := testDevice(t)
	dev.SetTap(tel)
	m, err := replay.Run(tr, cache.NewLRU(1024), dev, replay.Options{
		WarmupRequests: 100,
		Observers:      []sim.Observer{tel.Observer()},
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := tel.Requests.Value(); got != int64(m.Requests) {
		t.Fatalf("Requests = %d, metrics say %d", got, m.Requests)
	}
	if got := tel.PageHits.Value(); got != m.PageHits {
		t.Fatalf("PageHits = %d, metrics say %d", got, m.PageHits)
	}
	if got := tel.PageMisses.Value(); got != m.PageMisses {
		t.Fatalf("PageMisses = %d, metrics say %d", got, m.PageMisses)
	}
	if got, want := tel.HitRatio.Value(), m.HitRatio(); got != want {
		t.Fatalf("HitRatio = %v, metrics say %v", got, want)
	}
	if got := tel.FlashWrites.Value(); got != m.Device.FlashWrites {
		t.Fatalf("FlashWrites = %d, metrics say %d", got, m.Device.FlashWrites)
	}
	if tel.ReqLatency.Count() != int64(m.Requests) {
		t.Fatalf("ReqLatency count = %d, want %d", tel.ReqLatency.Count(), m.Requests)
	}
	if tel.ProgramNs.Count() == 0 {
		t.Fatal("flash tap saw no programs despite flash writes")
	}
	if tel.EvictionBatch.Count() == 0 || tel.FlushedPages.Value() == 0 {
		t.Fatal("eviction plane never populated")
	}
	if tel.Occupancy.Value() == 0 || tel.Capacity.Value() != 1024 {
		t.Fatalf("occupancy plane wrong: occ=%d cap=%d", tel.Occupancy.Value(), tel.Capacity.Value())
	}
	if tel.RunsDone.Value() != 1 {
		t.Fatalf("RunsDone = %d", tel.RunsDone.Value())
	}
	if !tel.Healthy() {
		t.Fatal("healthy run reported degraded")
	}
}

// A run that drives the device into read-only mode must flip the health
// plane: Degraded gauge, transition counter, Healthy().
func TestTelemetryDegradedHealth(t *testing.T) {
	cfg := fault.Config{EraseFailProb: 1, ReserveBlocks: 1, CheckInvariants: true}
	dev := degradingDevice(t, cfg)
	tel := New()
	dev.SetTap(tel)
	var opts replay.Options
	opts.ApplyFaults(cfg)
	opts.Observers = []sim.Observer{tel.Observer()}
	m, err := replay.Run(churnTrace(400), cache.NewLRU(64), dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Degraded {
		t.Fatal("device never degraded with efail=1")
	}
	if tel.Healthy() {
		t.Fatal("degraded device still reports healthy")
	}
	if tel.Degraded.Value() != 1 {
		t.Fatal("Degraded gauge not set")
	}
	if tel.DegradedTrans.Value() == 0 {
		t.Fatal("degraded transition counter never mirrored")
	}
}
