package obs

import (
	"fmt"

	"repro/internal/sim"
)

// ShardSet is the per-shard instrument subset a sharded run exposes next
// to the global catalog: enough to see each partition's load, hit ratio,
// occupancy and back-pressure without the cost of mirroring the full
// catalog N times. Instrument names carry an ssdsim_shard<k>_ prefix (the
// registry is label-free by design, so the shard index lives in the name).
type ShardSet struct {
	Requests     *Counter
	PageHits     *Counter
	PageMisses   *Counter
	HitRatio     *FGauge
	Occupancy    *Gauge
	Capacity     *Gauge
	FlushedPages *Counter
	ReqLatency   *Hist
	FlashWrites  *Counter
	BPStalls     *Counter
	BPStallNs    *Counter
}

// ShardObservers registers a ShardSet per shard and returns the attachment
// hook for replay.ShardSpec.ShardObservers / sim.ShardConfig.ShardObservers.
// Each returned observer runs on its shard's goroutine and writes only its
// own set (instruments are atomic, so scrapes race safely with updates).
//
// Call it once per Telemetry — the shard instruments register immediately,
// and a second registration of the same names panics, like any duplicate.
// On a nil Telemetry the hook returns no observers, so wiring stays
// unconditional. Shard engines run with warmth rewritten downstream, so
// unlike the global catalog the per-shard hit counters include the warmup
// window.
func (t *Telemetry) ShardObservers(shards int) func(shard int, eng *sim.Engine) []sim.Observer {
	if t == nil {
		return func(int, *sim.Engine) []sim.Observer { return nil }
	}
	sets := make([]*ShardSet, shards)
	t.Shards = sets
	r := t.reg
	for k := 0; k < shards; k++ {
		p := fmt.Sprintf("ssdsim_shard%d_", k)
		sets[k] = &ShardSet{
			Requests:     r.Counter(p+"requests_total", "Requests this shard processed (includes warmup)."),
			PageHits:     r.Counter(p+"page_hits_total", "Page hits in this shard's cache partition."),
			PageMisses:   r.Counter(p+"page_misses_total", "Page misses in this shard's cache partition."),
			HitRatio:     r.FGauge(p+"hit_ratio", "Cumulative page hit ratio of this shard (0..1)."),
			Occupancy:    r.Gauge(p+"cache_occupancy_pages", "Pages resident in this shard's partition."),
			Capacity:     r.Gauge(p+"cache_capacity_pages", "This shard's policy capacity (full capacity under SHARED)."),
			FlushedPages: r.Counter(p+"flushed_pages_total", "Dirty pages this shard evicted to its device."),
			ReqLatency:   r.Hist(p+"request_latency_ns", "Per-request response time on this shard, simulated ns."),
			FlashWrites:  r.Counter(p+"flash_writes_total", "Pages programmed on this shard's device for host flushes."),
			BPStalls:     r.Counter(p+"backpressure_stalls_total", "Admissions this shard's device stalled on destage backlog."),
			BPStallNs:    r.Counter(p+"backpressure_stall_ns_total", "Total simulated ns spent in back-pressure stalls."),
		}
	}
	return func(shard int, eng *sim.Engine) []sim.Observer {
		return []sim.Observer{&shardObserver{set: sets[shard]}}
	}
}

// shardObserver folds one shard engine's events into its ShardSet. It runs
// on the shard goroutine with a real (non-nil) engine, so it can read the
// shard's policy and device directly — the shard-local mirror of
// engineObserver, throttled the same way.
type shardObserver struct {
	set  *ShardSet
	tick uint64
}

var _ sim.Observer = (*shardObserver)(nil)

// OnRequest implements sim.Observer.
func (o *shardObserver) OnRequest(e *sim.Engine, ev *sim.RequestEvent) {}

// OnEviction implements sim.Observer.
func (o *shardObserver) OnEviction(e *sim.Engine, ev *sim.EvictionEvent) {
	if ev.Kind != sim.EvictClean {
		o.set.FlushedPages.Add(int64(len(ev.LPNs)))
	}
}

// OnResult implements sim.Observer.
func (o *shardObserver) OnResult(e *sim.Engine, ev *sim.ResultEvent) {
	s := o.set
	s.Requests.Set(int64(ev.Processed))
	s.PageHits.Add(int64(ev.Res.Hits))
	s.PageMisses.Add(int64(ev.Res.Misses))
	s.ReqLatency.Observe(ev.Completion - ev.Req.Issue)
	o.tick++
	if o.tick%syncEvery == 0 {
		o.refresh(e)
	}
}

// refresh recomputes the shard's derived gauges and device mirrors.
func (o *shardObserver) refresh(e *sim.Engine) {
	s := o.set
	if hits, misses := s.PageHits.Value(), s.PageMisses.Value(); hits+misses > 0 {
		s.HitRatio.Set(float64(hits) / float64(hits+misses))
	}
	if pol := e.Policy(); pol != nil {
		s.Occupancy.Set(int64(pol.Len()))
		s.Capacity.Set(int64(pol.CapacityPages()))
	}
	if dev := e.Device(); dev != nil {
		s.FlashWrites.Set(dev.Counters().FlashWrites)
		stalls, stallNs := dev.BackPressureStalls()
		s.BPStalls.Set(stalls)
		s.BPStallNs.Set(stallNs)
	}
}

// OnDone implements sim.Observer: one exact final pass.
func (o *shardObserver) OnDone(e *sim.Engine, ev *sim.DoneEvent) {
	o.set.Requests.Set(int64(ev.Processed))
	o.refresh(e)
}
