package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/sim"
)

// runTraced replays the test workload with a fresh tracer and returns the
// NDJSON it produced.
func runTraced(t *testing.T, rate int, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	tracer := NewTracer(&buf, rate, seed)
	pol := core.New(1024)
	pol.SetTransitionSink(tracer)
	_, err := replay.Run(testTrace(t), pol, testDevice(t), replay.Options{
		Observers: []sim.Observer{tracer},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Two runs with the same trace, seed and rate must produce byte-identical
// span streams (issue acceptance criterion), and every line must be valid
// JSON.
func TestTracerDeterministic(t *testing.T) {
	a := runTraced(t, 64, 7)
	b := runTraced(t, 64, 7)
	if len(a) == 0 {
		t.Fatal("tracer produced no output at rate 64")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and rate produced different span streams")
	}
	other := runTraced(t, 64, 8)
	if bytes.Equal(a, other) {
		t.Fatal("different seed produced an identical sample — sampler ignores the seed")
	}

	lines := strings.Split(strings.TrimRight(string(a), "\n"), "\n")
	kinds := map[string]int{}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSON line: %q", line)
		}
		var span struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatal(err)
		}
		kinds[span.Ev]++
	}
	if kinds["admit"] == 0 || kinds["done"] == 0 {
		t.Fatalf("span stream missing lifecycle events: %v", kinds)
	}
	if kinds["admit"] != kinds["done"] {
		t.Fatalf("unbalanced spans: %d admits, %d dones", kinds["admit"], kinds["done"])
	}
	if kinds["list"] == 0 {
		t.Fatalf("no list transitions recorded through the req-block sink: %v", kinds)
	}
	if kinds["run_done"] != 1 {
		t.Fatalf("footer lines = %d", kinds["run_done"])
	}
	if lines[len(lines)-1][:len(`{"ev":"run_done"`)] != `{"ev":"run_done"` {
		t.Fatal("footer is not the last line")
	}
}

// Rate 1 samples every request; rate 0 disables sampling but still writes
// the footer.
func TestTracerRateEdges(t *testing.T) {
	all := runTraced(t, 1, 3)
	admits := bytes.Count(all, []byte(`{"ev":"admit"`))
	var footer struct {
		Processed int64 `json:"processed"`
		Sampled   int64 `json:"sampled"`
	}
	lines := strings.Split(strings.TrimRight(string(all), "\n"), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &footer); err != nil {
		t.Fatal(err)
	}
	if int64(admits) != footer.Sampled || footer.Sampled != footer.Processed {
		t.Fatalf("rate 1: admits=%d sampled=%d processed=%d", admits, footer.Sampled, footer.Processed)
	}

	off := runTraced(t, 0, 3)
	if got := strings.TrimRight(string(off), "\n"); strings.Count(got, "\n") != 0 || !strings.Contains(got, `"run_done"`) {
		t.Fatalf("rate 0 must emit only the footer, got %q", got)
	}
}

// errWriter fails every write.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestTracerLatchesWriteError(t *testing.T) {
	tr := NewTracer(errWriter{}, 1, 0)
	tr.OnRequest(nil, &sim.RequestEvent{Index: 0})
	tr.OnDone(nil, &sim.DoneEvent{})
	if tr.Err() == nil || tr.Close() == nil {
		t.Fatal("write error not latched")
	}
}

func TestSamplerIsPureFunction(t *testing.T) {
	tr1 := NewTracer(bytes.NewBuffer(nil), 128, 99)
	tr2 := NewTracer(bytes.NewBuffer(nil), 128, 99)
	n := 0
	for i := 0; i < 100000; i++ {
		if tr1.Sampled(i) != tr2.Sampled(i) {
			t.Fatal("sampler not deterministic")
		}
		if tr1.Sampled(i) {
			n++
		}
	}
	// 1-in-128 over 100k indices: expect ~781, allow a wide band.
	if n < 500 || n > 1100 {
		t.Fatalf("sample count %d implausible for rate 128", n)
	}
}
