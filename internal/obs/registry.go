package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// instrumentKind discriminates the union inside family.
type instrumentKind uint8

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindFGauge
	kindHist
)

// family is one registered instrument plus its exposition metadata.
type family struct {
	name, help string
	kind       instrumentKind
	c          *Counter
	g          *Gauge
	f          *FGauge
	h          *Hist
}

// Registry holds named instruments and renders them in the Prometheus
// text exposition format. Registration happens once at construction time
// (Telemetry registers its whole catalog in New); after that the registry
// is read-only, so exposition needs no locking beyond the instruments'
// own atomics. Names are exposed sorted, giving scrapes a stable order
// regardless of registration order.
type Registry struct {
	fams []family
}

// register appends one family, panicking on a duplicate name — duplicate
// registration is a programming error, not a runtime condition.
func (r *Registry) register(f family) {
	for _, have := range r.fams {
		if have.name == f.name {
			panic("obs: duplicate instrument " + f.name)
		}
	}
	r.fams = append(r.fams, f)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(family{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a new integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(family{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// FGauge registers and returns a new float gauge.
func (r *Registry) FGauge(name, help string) *FGauge {
	g := &FGauge{}
	r.register(family{name: name, help: help, kind: kindFGauge, f: g})
	return g
}

// Hist registers and returns a new log2 histogram.
func (r *Registry) Hist(name, help string) *Hist {
	h := &Hist{}
	r.register(family{name: name, help: help, kind: kindHist, h: h})
	return h
}

// WritePrometheus renders every registered instrument in the Prometheus
// text format (version 0.0.4), sorted by name. Counters and gauges render
// as single samples; histograms render cumulative _bucket series with
// power-of-two le edges up to the highest populated bucket, then +Inf,
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	fams := make([]family, len(r.fams))
	copy(fams, r.fams)
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", f.name, f.name, f.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", f.name, f.name, f.g.Value())
		case kindFGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %g\n", f.name, f.name, f.f.Value())
		case kindHist:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", f.name)
			writeHist(bw, f.name, f.h)
		}
	}
	return bw.Flush()
}

// writeHist renders one histogram family. The per-bucket counts are read
// exactly once; because the engine may be updating concurrently, the
// cumulative series and the total are both rebuilt from that single read
// so the exposition is internally monotonic.
func writeHist(w io.Writer, name string, h *Hist) {
	last := 0
	var counts [histBuckets]int64
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.Bucket(i)
		if counts[i] > 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		if i == histBuckets-1 {
			break // the overflow bucket has no finite le edge
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, int64(1)<<uint(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}
