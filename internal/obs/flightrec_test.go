package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/ftl"
)

// Snapshot returns records in global publication order regardless of
// which shard's ring they landed in.
func TestFlightRecorderOrdering(t *testing.T) {
	fr := NewFlightRecorder(3, 16, "")
	for i := int64(0); i < 10; i++ {
		fr.Record(int(i%3), FlightRequest, i*100, i, 0, 0)
	}
	recs := fr.Snapshot()
	if len(recs) != 10 {
		t.Fatalf("snapshot has %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Seq != int64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, i+1)
		}
		if r.A != int64(i) || r.Shard != i%3 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// The ring keeps only the newest size records per shard; older ones are
// overwritten, newest last.
func TestFlightRecorderWraps(t *testing.T) {
	fr := NewFlightRecorder(1, 8, "")
	for i := int64(0); i < 20; i++ {
		fr.Record(0, FlightResult, i, i, 0, 0)
	}
	recs := fr.Snapshot()
	if len(recs) != 8 {
		t.Fatalf("snapshot has %d records, want 8", len(recs))
	}
	if recs[0].A != 12 || recs[7].A != 19 {
		t.Fatalf("wrapped ring holds [%d..%d], want [12..19]", recs[0].A, recs[7].A)
	}
}

// Out-of-range shards clamp instead of panicking, and a nil recorder
// absorbs every call.
func TestFlightRecorderDefensive(t *testing.T) {
	fr := NewFlightRecorder(1, 8, "")
	fr.Record(-5, FlightGC, 1, 0, 0, 0)
	fr.Record(99, FlightGC, 2, 0, 0, 0)
	if got := len(fr.Snapshot()); got != 2 {
		t.Fatalf("clamped records = %d, want 2", got)
	}

	var nilFR *FlightRecorder
	nilFR.Record(0, FlightGC, 0, 0, 0, 0)
	if nilFR.Snapshot() != nil || nilFR.Trigger("x", 0, 0) != "" || nilFR.Shards() != 0 || nilFR.DumpCount() != 0 {
		t.Fatal("nil FlightRecorder is not a no-op")
	}
	nilFR.Observer(0).OnDone(nil, nil)
	if tap := nilFR.Tap(0); tap != nil {
		t.Fatal("nil recorder Tap should be a nil interface")
	}
}

// Trigger writes one NDJSON dump per anomaly: a trigger header line then
// the ring snapshot, every line valid JSON.
func TestFlightRecorderTriggerDump(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(2, 16, dir)
	fr.Record(0, FlightRequest, 100, 7, 4, 1)
	fr.Record(1, FlightDeadlineMiss, 200, 3, 50, 0)
	path := fr.Trigger("deadline-queued", 1, 200)
	if path == "" {
		t.Fatal("trigger produced no dump")
	}
	if filepath.Base(path) != "flightrec-000-deadline-queued.ndjson" {
		t.Fatalf("dump name %q", filepath.Base(path))
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("dump line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if lines[0]["trigger"] != "deadline-queued" {
		t.Fatalf("header = %v", lines[0])
	}
	// Header + the two records + the trigger's own ring record.
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want 4", len(lines))
	}
	if lines[2]["kind"] != "deadline_miss" || lines[3]["kind"] != "trigger" {
		t.Fatalf("dump tail kinds = %v, %v", lines[2]["kind"], lines[3]["kind"])
	}
}

// Past the dump cap, triggers still record into the ring but write no
// more files — a flapping anomaly must not fill the disk.
func TestFlightRecorderDumpCap(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(1, 256, dir)
	var files int
	for i := 0; i < maxFlightDumps+5; i++ {
		if fr.Trigger(fmt.Sprintf("t%d", i), 0, int64(i)) != "" {
			files++
		}
	}
	if files != maxFlightDumps {
		t.Fatalf("wrote %d dump files, want %d", files, maxFlightDumps)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != maxFlightDumps {
		t.Fatalf("dir has %d files, want %d", len(ents), maxFlightDumps)
	}
	if fr.DumpCount() != int64(maxFlightDumps+5) {
		t.Fatalf("DumpCount = %d", fr.DumpCount())
	}
}

// Concurrent writers and snapshot readers must be race-free (run under
// -race) and never surface a torn record: every observed record is
// internally consistent.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(4, 64, "")
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(shard int) {
			defer writers.Done()
			for i := int64(0); i < 5000; i++ {
				// Payload words all carry i so a torn record is detectable.
				fr.Record(shard, FlightResult, i, i, i, i)
			}
		}(w)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range fr.Snapshot() {
				if r.T != r.A || r.A != r.B || r.B != r.C {
					t.Errorf("torn record surfaced: %+v", r)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if len(fr.Snapshot()) != 4*64 {
		t.Fatalf("final snapshot %d records, want %d", len(fr.Snapshot()), 4*64)
	}
}

// countTap counts calls for MultiTap fan-out assertions.
type countTap struct{ program, gc int }

func (c *countTap) TapProgram(issue, done int64) { c.program++ }
func (c *countTap) TapRead(issue, done int64)    {}
func (c *countTap) TapErase(issue, done int64)   {}
func (c *countTap) TapGC(pause int64, pages int) { c.gc++ }

// MultiTap drops nil and typed-nil taps, unwraps a single survivor, and
// tees to all survivors otherwise.
func TestMultiTap(t *testing.T) {
	if MultiTap() != nil || MultiTap(nil, (*Telemetry)(nil), (*flightTap)(nil)) != nil {
		t.Fatal("all-nil MultiTap should be nil")
	}
	a := &countTap{}
	if got := MultiTap(nil, a, (*Telemetry)(nil)); got != ftl.Tap(a) {
		t.Fatal("single survivor should be returned unwrapped")
	}
	b := &countTap{}
	tee := MultiTap(a, b)
	tee.TapProgram(0, 1)
	tee.TapGC(5, 2)
	if a.program != 1 || b.program != 1 || a.gc != 1 || b.gc != 1 {
		t.Fatalf("tee did not fan out: a=%+v b=%+v", a, b)
	}
}

// The recorder's HTTP endpoint serves the snapshot once registered, and
// 404s when no recorder is attached.
func TestFlightRecorderHTTP(t *testing.T) {
	tel := New()
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()
	if code, _ := get(t, srv.URL+"/debug/flightrec"); code != 404 {
		t.Fatalf("unattached /debug/flightrec = %d, want 404", code)
	}
	fr := NewFlightRecorder(1, 8, "")
	fr.Record(0, FlightRequest, 1, 2, 3, 4)
	tel.SetFlightRecorder(fr)
	code, body := get(t, srv.URL+"/debug/flightrec")
	if code != 200 {
		t.Fatalf("/debug/flightrec = %d, want 200", code)
	}
	if !strings.Contains(body, `"kind":"request"`) {
		t.Fatalf("snapshot body %q", body)
	}
}
