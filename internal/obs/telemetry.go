package obs

import (
	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Telemetry is the run-scoped instrument catalog: one value carries every
// histogram, counter and gauge the telemetry plane exposes, pre-registered
// in a Registry so /metrics can render them. Wire it into a run in three
// places, all optional and all passive:
//
//	tel := obs.New()
//	dev.SetTap(tel)                  // flash timing taps (program/read/erase/GC)
//	opts.Observers = append(opts.Observers, tel.Observer())
//	srv, _ := obs.Serve(addr, tel.Handler())
//
// A nil *Telemetry is valid everywhere: every method no-ops, so call sites
// need no enabled/disabled branches.
type Telemetry struct {
	reg *Registry

	// Request plane — updated once per request by the engine observer.
	Requests     *Counter
	PageHits     *Counter
	PageMisses   *Counter
	ReadMisses   *Counter
	HitRatio     *FGauge
	ReqLatency   *Hist
	CacheLookup  *Hist
	Bypassed     *Counter
	Prefetched   *Counter
	PolicyNodes  *Gauge
	Occupancy    *Gauge
	Capacity     *Gauge
	OccupancyPct *FGauge
	Inflight     *Gauge
	SimTime      *Gauge

	// Eviction plane — updated per victim batch.
	EvictionBatch *Hist
	FlushedPages  *Counter
	CleanDrops    *Counter
	IdleFlushed   *Counter
	Destaged      *Counter
	DestageNs     *Hist
	VictimScan    *Hist

	// Flash plane — updated by the ftl.Tap methods.
	ProgramNs   *Hist
	ReadNs      *Hist
	EraseNs     *Hist
	GCPauseNs   *Hist
	GCPagesHist *Hist

	// GC scheduler plane — preempt/resume arrive through the TapGCSched
	// extension; the tier/pacing counters are mirrored from
	// ftl.GCSchedStats alongside the device counters.
	GCPreempts      *Counter
	GCResumes       *Counter
	GCVictimsIdle   *Counter
	GCVictimsBg     *Counter
	GCVictimsMand   *Counter
	GCPacedSteps    *Counter
	GCJobsAbandoned *Counter
	GCCostDeferred  *Counter

	// Device counters, mirrored from ssd.Counters once per request (the
	// device owns the truth; these use Counter.Set).
	FlashWrites    *Counter
	FlashReads     *Counter
	GCMigrations   *Counter
	GCRuns         *Counter
	Erases         *Counter
	ProgramRetries *Counter
	RetiredBlocks  *Counter
	InjProgram     *Counter
	InjErase       *Counter
	GrownBad       *Counter
	DegradedTrans  *Counter
	InvChecks      *Counter

	// Attribution plane — per-request blame spans folded at OnResult.
	Blame        *BlameSet
	GCPauseTotal *Counter

	// Health plane.
	Degraded *Gauge
	RunsDone *Counter

	// Shards holds the per-shard instrument sets after ShardObservers has
	// been called; nil on unsharded runs.
	Shards []*ShardSet
}

var (
	_ ftl.Tap        = (*Telemetry)(nil)
	_ ftl.TapGCSched = (*Telemetry)(nil)
)

// New builds a Telemetry with its full catalog registered. Instrument
// names carry the ssdsim_ prefix; latency units are simulated nanoseconds.
func New() *Telemetry {
	r := &Registry{}
	t := &Telemetry{reg: r}

	t.Requests = r.Counter("ssdsim_requests_total", "Requests fully processed (dispatched and timed).")
	t.PageHits = r.Counter("ssdsim_page_hits_total", "Warm-phase page hits in the data cache.")
	t.PageMisses = r.Counter("ssdsim_page_misses_total", "Warm-phase page misses in the data cache.")
	t.ReadMisses = r.Counter("ssdsim_read_miss_pages_total", "Pages fetched from flash on read misses.")
	t.HitRatio = r.FGauge("ssdsim_hit_ratio", "Cumulative warm-phase page hit ratio (0..1).")
	t.ReqLatency = r.Hist("ssdsim_request_latency_ns", "Per-request response time, issue to completion, simulated ns.")
	t.CacheLookup = r.Hist("ssdsim_cache_lookup_ns", "Per-request DRAM cache service time (hits plus inserts), simulated ns.")
	t.Bypassed = r.Counter("ssdsim_bypassed_pages_total", "Pages written straight to flash, bypassing the cache.")
	t.Prefetched = r.Counter("ssdsim_prefetched_pages_total", "Readahead pages issued to the device.")
	t.PolicyNodes = r.Gauge("ssdsim_policy_nodes", "Policy list-node population (metadata footprint proxy).")
	t.Occupancy = r.Gauge("ssdsim_cache_occupancy_pages", "Pages currently resident in the data cache.")
	t.Capacity = r.Gauge("ssdsim_cache_capacity_pages", "Configured data-cache capacity in pages.")
	t.OccupancyPct = r.FGauge("ssdsim_cache_occupancy_ratio", "Occupancy divided by capacity (0..1).")
	t.Inflight = r.Gauge("ssdsim_inflight_requests", "Closed-loop requests in flight (0 in open-loop replay).")
	t.SimTime = r.Gauge("ssdsim_time_ns", "Simulated clock at the last observed event, ns.")

	t.EvictionBatch = r.Hist("ssdsim_eviction_batch_pages", "Victim batch size in pages, flushed batches only.")
	t.FlushedPages = r.Counter("ssdsim_flushed_pages_total", "Dirty pages evicted to flash, all engine stages.")
	t.CleanDrops = r.Counter("ssdsim_clean_drop_pages_total", "Clean victim pages dropped without a flash write.")
	t.IdleFlushed = r.Counter("ssdsim_idle_flushed_pages_total", "Pages flushed by the idle-window flusher.")
	t.Destaged = r.Counter("ssdsim_destaged_pages_total", "Pages drained by the periodic destager.")
	t.DestageNs = r.Hist("ssdsim_destage_ns", "Idle-flush and destage drain latency, hand-off to durable, simulated ns.")
	t.VictimScan = r.Hist("ssdsim_victim_scan_cost", "Victim-selection work per eviction batch: heap entries sifted/skipped (indexed) or nodes walked (linear scan).")

	t.ProgramNs = r.Hist("ssdsim_flash_program_ns", "Flash page program latency, issue to die-free, simulated ns.")
	t.ReadNs = r.Hist("ssdsim_flash_read_ns", "Flash page read latency, issue to data transferred, simulated ns.")
	t.EraseNs = r.Hist("ssdsim_flash_erase_ns", "Flash block erase latency, simulated ns.")
	t.GCPauseNs = r.Hist("ssdsim_gc_pause_ns", "GC die-busy extension on the victim chip per collection, simulated ns.")
	t.GCPagesHist = r.Hist("ssdsim_gc_pages_moved", "Valid pages migrated per GC collection.")

	t.GCPreempts = r.Counter("ssdsim_gc_preempts_total", "Scheduled-GC jobs preempted mid-victim (budget exhausted or slice ended).")
	t.GCResumes = r.Counter("ssdsim_gc_resumes_total", "Scheduled-GC jobs resumed from a preempted state.")
	t.GCVictimsIdle = r.Counter("ssdsim_gc_victims_idle_total", "GC victims opened in the idle-only urgency tier.")
	t.GCVictimsBg = r.Counter("ssdsim_gc_victims_background_total", "GC victims opened in the background-paced urgency tier.")
	t.GCVictimsMand = r.Counter("ssdsim_gc_victims_mandatory_total", "GC victims collected in the mandatory tier (greedy, on the write path).")
	t.GCPacedSteps = r.Counter("ssdsim_gc_paced_steps_total", "Copy steps piggybacked on host programs by background pacing.")
	t.GCJobsAbandoned = r.Counter("ssdsim_gc_jobs_abandoned_total", "Scheduled-GC jobs abandoned (destination allocation failed mid-job).")
	t.GCCostDeferred = r.Counter("ssdsim_gc_cost_deferred_total", "Idle slices that declined every candidate on projected pause cost.")

	t.FlashWrites = r.Counter("ssdsim_flash_writes_total", "Pages programmed for host flushes (Fig. 11 metric).")
	t.FlashReads = r.Counter("ssdsim_flash_reads_total", "Pages read from flash for the host.")
	t.GCMigrations = r.Counter("ssdsim_gc_migrations_total", "Valid-page copies performed by garbage collection.")
	t.GCRuns = r.Counter("ssdsim_gc_runs_total", "Garbage-collection victim collections.")
	t.Erases = r.Counter("ssdsim_erases_total", "Block erases.")
	t.ProgramRetries = r.Counter("ssdsim_program_retries_total", "Writes re-issued after injected program failures.")
	t.RetiredBlocks = r.Counter("ssdsim_retired_blocks_total", "Blocks permanently retired.")
	t.InjProgram = r.Counter("ssdsim_fault_program_fails_total", "Injected program failures.")
	t.InjErase = r.Counter("ssdsim_fault_erase_fails_total", "Injected erase failures.")
	t.GrownBad = r.Counter("ssdsim_fault_grown_bad_total", "Injected grown-bad-block events.")
	t.DegradedTrans = r.Counter("ssdsim_degraded_transitions_total", "Transitions into read-only degraded mode.")
	t.InvChecks = r.Counter("ssdsim_invariant_checks_total", "Post-recovery invariant suite runs.")

	t.Blame = newBlameSet(r)
	t.GCPauseTotal = r.Counter("ssdsim_gc_pause_total_ns", "Cumulative foreground-visible GC pause, mirrored from the device, simulated ns.")

	t.Degraded = r.Gauge("ssdsim_degraded", "1 while the device is in read-only degraded mode.")
	t.RunsDone = r.Counter("ssdsim_runs_completed_total", "Replays finished under this telemetry value.")
	return t
}

// Registry exposes the underlying registry (nil-safe) for exposition.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Observer returns the sim.Observer that folds engine events into the
// catalog. On a nil Telemetry it returns a no-op observer, so callers can
// unconditionally append it.
func (t *Telemetry) Observer() sim.Observer {
	if t == nil {
		return sim.NopObserver{}
	}
	return &engineObserver{t: t}
}

// TapProgram implements ftl.Tap: one page program, issue to die-free.
func (t *Telemetry) TapProgram(issue, done int64) {
	if t != nil {
		t.ProgramNs.Observe(done - issue)
	}
}

// TapRead implements ftl.Tap: one page read, issue to data transferred.
func (t *Telemetry) TapRead(issue, done int64) {
	if t != nil {
		t.ReadNs.Observe(done - issue)
	}
}

// TapErase implements ftl.Tap: one block erase.
func (t *Telemetry) TapErase(issue, done int64) {
	if t != nil {
		t.EraseNs.Observe(done - issue)
	}
}

// TapGC implements ftl.Tap: one completed collection — the die-busy
// extension it cost on the victim chip, and the valid pages it moved.
func (t *Telemetry) TapGC(pause int64, pagesMoved int) {
	if t != nil {
		t.GCPauseNs.Observe(pause)
		t.GCPagesHist.Observe(int64(pagesMoved))
	}
}

// TapGCPreempt implements ftl.TapGCSched: a scheduled collection was
// preempted mid-victim with pagesMoved copies done so far.
func (t *Telemetry) TapGCPreempt(now int64, pagesMoved int) {
	if t != nil {
		t.GCPreempts.Inc()
	}
}

// TapGCResume implements ftl.TapGCSched: a preempted collection picked
// back up.
func (t *Telemetry) TapGCResume(now int64, pagesMoved int) {
	if t != nil {
		t.GCResumes.Inc()
	}
}

// syncDevice mirrors the device's counter block and degraded flag into
// the catalog. Called every syncEvery-th request and once at run end.
func (t *Telemetry) syncDevice(dev *ssd.Device) {
	if dev == nil {
		return
	}
	c := dev.Counters()
	g := dev.GCSchedStats()
	t.GCVictimsIdle.Set(g.VictimsIdle)
	t.GCVictimsBg.Set(g.VictimsBackground)
	t.GCVictimsMand.Set(g.VictimsMandatory)
	t.GCPacedSteps.Set(g.PacedSteps)
	t.GCJobsAbandoned.Set(g.JobsAbandoned)
	t.GCCostDeferred.Set(g.CostDeferred)
	t.FlashWrites.Set(c.FlashWrites)
	t.FlashReads.Set(c.FlashReads)
	t.GCMigrations.Set(c.GCMigrations)
	t.GCRuns.Set(c.GCRuns)
	t.Erases.Set(c.Erases)
	t.ProgramRetries.Set(c.ProgramRetries)
	t.RetiredBlocks.Set(c.RetiredBlocks)
	t.InjProgram.Set(c.InjectedProgramFails)
	t.InjErase.Set(c.InjectedEraseFails)
	t.GrownBad.Set(c.GrownBadBlocks)
	t.DegradedTrans.Set(c.DegradedEntries)
	t.InvChecks.Set(c.InvariantChecks)
	t.GCPauseTotal.Set(c.GCPauseNs)
	if dev.Degraded() {
		t.Degraded.Set(1)
	} else {
		t.Degraded.Set(0)
	}
}

// Healthy reports the health-endpoint condition: false once the device
// has entered degraded read-only mode.
func (t *Telemetry) Healthy() bool {
	if t == nil {
		return true
	}
	return t.Degraded.Value() == 0
}

// engineObserver folds engine events into the Telemetry catalog. It is a
// read-only consumer: it copies numbers out of events and device state and
// never mutates either, so attaching it leaves replay metrics
// bit-identical. Every update is an atomic store or add — no allocation.
//
// tick throttles the derived-gauge refresh and the device-counter mirror;
// nodes carries the last NodeCount to the throttled refresh. They live on
// the observer (not the Telemetry) so each attachment has its own — the
// observer itself is single-goroutine (one engine, or the sharded merge).
type engineObserver struct {
	t     *Telemetry
	tick  uint64
	nodes int64
}

var _ sim.Observer = (*engineObserver)(nil)

// OnRequest implements sim.Observer. The request plane is folded in at
// OnResult, where the outcome is known.
func (o *engineObserver) OnRequest(e *sim.Engine, ev *sim.RequestEvent) {}

// OnEviction implements sim.Observer.
func (o *engineObserver) OnEviction(e *sim.Engine, ev *sim.EvictionEvent) {
	t := o.t
	n := int64(len(ev.LPNs))
	// Scan cost precedes the clean-drop return: selecting a clean victim
	// is victim-selection work all the same. Zero deltas (policies that
	// report no scan work, or trailing batches of a multi-eviction Access)
	// are skipped so the histogram reflects actual selection passes.
	if ev.ScanCost > 0 {
		t.VictimScan.Observe(ev.ScanCost)
	}
	switch ev.Kind {
	case sim.EvictClean:
		t.CleanDrops.Add(n)
		return
	case sim.EvictIdle:
		t.IdleFlushed.Add(n)
	case sim.EvictDestage:
		t.Destaged.Add(n)
	}
	t.EvictionBatch.Observe(n)
	t.FlushedPages.Add(n)
	// Idle and destage batches carry device timing; request-path batches
	// are emitted before their flush and leave Durable zero.
	if ev.Durable > 0 {
		t.DestageNs.Observe(ev.Durable - ev.Time)
	}
}

// OnResult implements sim.Observer.
func (o *engineObserver) OnResult(e *sim.Engine, ev *sim.ResultEvent) {
	t := o.t
	res := ev.Res
	t.Requests.Set(int64(ev.Processed))
	if ev.Req.Warm {
		t.PageHits.Add(int64(res.Hits))
		t.PageMisses.Add(int64(res.Misses))
	}
	t.ReadMisses.Add(int64(len(res.ReadMisses)))
	t.Bypassed.Add(int64(len(res.Bypass)))
	t.Prefetched.Add(int64(ev.Prefetched))
	t.ReqLatency.Observe(ev.Completion - ev.Req.Issue)
	t.Blame.Observe(ev.Completion-ev.Req.Arrival, &ev.Blame)
	if dev := e.Device(); dev != nil {
		t.CacheLookup.Observe(int64(res.Hits+res.Inserted) * dev.Params().DRAMAccess)
	}
	o.nodes = int64(ev.NodeCount)
	// Derived gauges and the mirrored device counters cost extra loads,
	// divisions and a struct copy, so they refresh every syncEvery-th
	// request rather than every request — mid-run /metrics may lag by up
	// to syncEvery-1 requests, and OnDone does a final exact pass.
	o.tick++
	if o.tick%syncEvery == 0 {
		o.refresh(e, ev.Completion)
		t.syncDevice(e.Device())
	}
}

// syncEvery is the throttle on derived-gauge and device-mirror refreshes.
const syncEvery = 64

// refresh recomputes the derived gauges from current engine state. All
// engine reads are nil-safe: on the merged stream of a sharded run (nil
// engine) the policy- and device-derived gauges simply keep their last
// values (per-shard observers own them there).
func (o *engineObserver) refresh(e *sim.Engine, now int64) {
	t := o.t
	if hits, misses := t.PageHits.Value(), t.PageMisses.Value(); hits+misses > 0 {
		t.HitRatio.Set(float64(hits) / float64(hits+misses))
	}
	t.PolicyNodes.Set(o.nodes)
	t.SimTime.Set(now)
	if pol := e.Policy(); pol != nil {
		occ, capacity := int64(pol.Len()), int64(pol.CapacityPages())
		t.Occupancy.Set(occ)
		t.Capacity.Set(capacity)
		if capacity > 0 {
			t.OccupancyPct.Set(float64(occ) / float64(capacity))
		}
	}
	t.Inflight.Set(int64(e.Inflight(now)))
}

// OnDone implements sim.Observer.
func (o *engineObserver) OnDone(e *sim.Engine, ev *sim.DoneEvent) {
	t := o.t
	t.Requests.Set(int64(ev.Processed))
	t.RunsDone.Inc()
	o.refresh(e, ev.LastArrival)
	t.Inflight.Set(0) // the run has drained
	t.syncDevice(e.Device())
	if ev.Degraded {
		t.Degraded.Set(1)
	}
}
