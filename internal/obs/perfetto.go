package obs

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/sim"
)

// TraceExport writes sampled requests as Chrome trace-event JSON — the
// format Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
// Each sampled request becomes a complete ("X") slice on its shard's
// track, with nested child slices per nonzero blame cause laid out
// chronologically, so opening the file shows exactly where each slow
// request's time went.
//
// Sampling is the Tracer's: a pure function of (Seed, request index), so
// the same seed and rate produce byte-identical files across runs —
// diffable and assertable in tests. Timestamps are simulated nanoseconds
// rendered as fractional microseconds (the trace-event unit).
//
// On a single engine every request lands on track "shard 0". On the
// sharded merged stream, OnResult sees a nil engine and defers emission to
// OnShardResult (sim.ShardAware), which carries the owning shard.
type TraceExport struct {
	w    *bufio.Writer
	seed uint64
	rate uint64

	named map[int]bool // shard tracks already given a thread_name
	await bool         // sampled result pending its OnShardResult
	n     int64        // sampled requests emitted
	err   error
}

var (
	_ sim.Observer   = (*TraceExport)(nil)
	_ sim.ShardAware = (*TraceExport)(nil)
)

// NewTraceExport builds an exporter writing to w, keeping one request in
// rate (rate <= 0 disables sampling; rate 1 keeps every request). The
// header and process metadata are written immediately.
func NewTraceExport(w io.Writer, rate int, seed uint64) *TraceExport {
	t := &TraceExport{w: bufio.NewWriter(w), seed: seed, named: make(map[int]bool)}
	if rate > 0 {
		t.rate = uint64(rate)
	}
	t.printf(`{"displayTimeUnit":"ns","traceEvents":[` + "\n")
	t.printf(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"ssdsim"}}`)
	return t
}

// Sampled reports whether request index i is in the sample.
func (t *TraceExport) Sampled(i int) bool {
	return t.rate > 0 && splitmix64(t.seed^uint64(i))%t.rate == 0
}

// SampledCount returns how many requests were exported so far.
func (t *TraceExport) SampledCount() int64 { return t.n }

// Err returns the first write error, if any.
func (t *TraceExport) Err() error { return t.err }

// printf appends trace text, latching the first write error.
func (t *TraceExport) printf(format string, args ...any) {
	if _, err := fmt.Fprintf(t.w, format, args...); err != nil && t.err == nil {
		t.err = err
	}
}

// event starts one more event object (the leading ",\n" separator — the
// header already wrote the first event).
func (t *TraceExport) event() { t.printf(",\n") }

// OnRequest implements sim.Observer (emission happens at OnResult, when
// the blame partition is complete).
func (t *TraceExport) OnRequest(e *sim.Engine, ev *sim.RequestEvent) {}

// OnEviction implements sim.Observer.
func (t *TraceExport) OnEviction(e *sim.Engine, ev *sim.EvictionEvent) {}

// OnResult implements sim.Observer: emits the sampled request's slice
// tree. The unsampled path is one hash and one branch, no allocation.
func (t *TraceExport) OnResult(e *sim.Engine, ev *sim.ResultEvent) {
	if !t.Sampled(ev.Req.Index) {
		return
	}
	if e == nil {
		// Merged sharded stream: the shard arrives in OnShardResult,
		// which the merger calls right after this.
		t.await = true
		return
	}
	t.emit(0, ev)
}

// OnShardResult implements sim.ShardAware: emission point on the merged
// stream, with the owning shard's track.
func (t *TraceExport) OnShardResult(shard int, _ []int, ev *sim.ResultEvent) {
	if !t.await {
		return
	}
	t.await = false
	t.emit(shard, ev)
}

// OnDone implements sim.Observer: flushes buffered events (the JSON
// footer is written by Close, so multi-run attachments stay valid).
func (t *TraceExport) OnDone(e *sim.Engine, ev *sim.DoneEvent) {
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
}

// Close writes the JSON footer and flushes; the file is a complete
// trace-event document afterwards.
func (t *TraceExport) Close() error {
	t.printf("\n]}\n")
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// emit writes the request's parent slice plus one child slice per nonzero
// blame cause. The children tile [arrival, completion) in phase order —
// the partition is exact, so the layout has no gaps or overlaps.
func (t *TraceExport) emit(shard int, ev *sim.ResultEvent) {
	t.n++
	tid := shard + 1
	if !t.named[shard] {
		t.named[shard] = true
		t.event()
		t.printf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"shard %d"}}`, tid, shard)
	}
	op := "read"
	if ev.Req.Write {
		op = "write"
	}
	total := ev.Blame.Total()
	res := ev.Res
	t.event()
	t.printf(`{"name":"req %d %s","cat":"request","ph":"X","pid":1,"tid":%d,"ts":%d.%03d,"dur":%d.%03d,`+
		`"args":{"index":%d,"lpn":%d,"pages":%d,"hits":%d,"misses":%d,"dominant":%q,"gc_overlap_ns":%d,"scan_cost":%d}}`,
		ev.Req.Index, op, tid,
		ev.Req.Arrival/1000, ev.Req.Arrival%1000, total/1000, total%1000,
		ev.Req.Index, ev.Req.LPN, ev.Req.Pages, res.Hits, res.Misses,
		ev.Blame.Dominant().String(), ev.Blame.GCPauseNs, ev.Blame.ScanCost)
	start := ev.Req.Arrival
	for c := 0; c < sim.NumBlameCauses; c++ {
		dur := ev.Blame.Ns[c]
		if dur <= 0 {
			continue
		}
		t.event()
		t.printf(`{"name":%q,"cat":"blame","ph":"X","pid":1,"tid":%d,"ts":%d.%03d,"dur":%d.%03d,"args":{"index":%d}}`,
			sim.BlameCause(c).String(), tid,
			start/1000, start%1000, dur/1000, dur%1000, ev.Req.Index)
		start += dur
	}
}
