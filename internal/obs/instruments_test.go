package obs

import (
	"math"
	"testing"
)

// Every instrument must be a safe no-op on a nil receiver: the disabled
// telemetry path relies on it.
func TestInstrumentsNilSafe(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	c.Set(9)
	if c.Value() != 0 {
		t.Fatal("nil Counter.Value != 0")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("nil Gauge.Value != 0")
	}
	var f *FGauge
	f.Set(0.5)
	if f.Value() != 0 {
		t.Fatal("nil FGauge.Value != 0")
	}
	var h *Hist
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Bucket(0) != 0 {
		t.Fatal("nil Hist is not a zero no-op")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	c := &Counter{}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d, want 5", c.Value())
	}
	c.Set(100)
	if c.Value() != 100 {
		t.Fatalf("Counter after Set = %d", c.Value())
	}
	g := &Gauge{}
	g.Set(-3)
	if g.Value() != -3 {
		t.Fatalf("Gauge = %d", g.Value())
	}
	f := &FGauge{}
	f.Set(0.25)
	if f.Value() != 0.25 {
		t.Fatalf("FGauge = %v", f.Value())
	}
}

// bucketOf must place v in the smallest bucket whose upper edge 2^i
// satisfies v <= 2^i.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {1024, 10}, {1025, 11},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestHistObserveAndStats(t *testing.T) {
	h := &Hist{}
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 1106 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if got := h.Mean(); got != 1106.0/5 {
		t.Fatalf("Mean = %v", got)
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(2) != 1 {
		t.Fatal("small buckets misplaced")
	}
	// Median of {1,2,3,100,1000}: rank 2 lands on value 3, bucket edge 4.
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("Quantile(0.5) = %d, want 4", got)
	}
	if got := h.Quantile(1.0); got != 1024 {
		t.Fatalf("Quantile(1.0) = %d, want 1024", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %d, want 1", got)
	}
}

func TestHistOverflowBucket(t *testing.T) {
	h := &Hist{}
	h.Observe(math.MaxInt64)
	if h.Bucket(histBuckets-1) != 1 {
		t.Fatal("MaxInt64 not in overflow bucket")
	}
	if got := h.Quantile(0.5); got != math.MaxInt64 {
		t.Fatalf("overflow quantile = %d", got)
	}
}

// Instrument updates are the per-event hot path; none may allocate.
func TestInstrumentAllocs(t *testing.T) {
	c := &Counter{}
	g := &Gauge{}
	f := &FGauge{}
	h := &Hist{}
	if got := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(2)
		f.Set(0.5)
		h.Observe(12345)
	}); got > 0 {
		t.Fatalf("instrument update allocs = %v, want 0", got)
	}
}
