package obs

import (
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := &Registry{}
	c := r.Counter("z_requests_total", "Requests.")
	g := r.Gauge("a_depth", "Depth.")
	f := r.FGauge("m_ratio", "Ratio.")
	h := r.Hist("h_latency_ns", "Latency.")

	c.Add(7)
	g.Set(-2)
	f.Set(0.5)
	h.Observe(1) // bucket 0
	h.Observe(3) // bucket 2
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP z_requests_total Requests.\n# TYPE z_requests_total counter\nz_requests_total 7\n",
		"# TYPE a_depth gauge\na_depth -2\n",
		"# TYPE m_ratio gauge\nm_ratio 0.5\n",
		"# TYPE h_latency_ns histogram\n",
		`h_latency_ns_bucket{le="1"} 1` + "\n",
		`h_latency_ns_bucket{le="2"} 1` + "\n",
		`h_latency_ns_bucket{le="4"} 3` + "\n",
		`h_latency_ns_bucket{le="+Inf"} 3` + "\n",
		"h_latency_ns_sum 7\n",
		"h_latency_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}

	// Families render sorted by name regardless of registration order.
	if ia, iz := strings.Index(out, "a_depth"), strings.Index(out, "z_requests_total"); ia > iz {
		t.Fatal("families not sorted by name")
	}
	// Buckets past the highest populated one are elided.
	if strings.Contains(out, `le="8"`) {
		t.Fatal("empty trailing bucket rendered")
	}
}

func TestRegistryEmptyHist(t *testing.T) {
	r := &Registry{}
	r.Hist("empty_ns", "Never observed.")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `empty_ns_bucket{le="1"} 0`) ||
		!strings.Contains(out, `empty_ns_bucket{le="+Inf"} 0`) ||
		!strings.Contains(out, "empty_ns_count 0") {
		t.Fatalf("empty histogram exposition wrong:\n%s", out)
	}
}

func TestRegistryNil(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatal("nil registry must write nothing")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := &Registry{}
	r.Counter("dup", "x")
	r.Counter("dup", "y")
}
