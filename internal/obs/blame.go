package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/sim"
)

// BlameSet aggregates the engine's per-request blame spans (sim.Blame)
// into per-cause histograms, dominant-cause counters, and a fixed latency
// bucket × cause matrix that answers "what fraction of P99.9 is GC pause
// vs. back-pressure vs. queueing". Like every obs instrument it is
// nil-safe, atomic, and allocation-free on the observe path: the matrix is
// pre-sized (histBuckets × NumBlameCauses atomics), so folding a request
// is a handful of atomic adds.
type BlameSet struct {
	// Cause[c] is the distribution of nonzero time charged to cause c.
	Cause [sim.NumBlameCauses]*Hist
	// Dominant[c] counts requests whose largest share was cause c.
	Dominant [sim.NumBlameCauses]*Counter
	// GCOverlap is the distribution of foreground GC pause accumulated
	// while a request dispatched (overlaps the flash causes; reported
	// alongside the partition, not inside it).
	GCOverlap *Hist
	// ScanWork is the distribution of nonzero victim-scan work charged to
	// a request's evictions.
	ScanWork *Hist

	// cells[b] aggregates the requests whose total response time fell in
	// log2 bucket b (same bucketing as Hist): request count, per-cause
	// nanosecond totals, and per-cause dominant counts. Per-bucket cause
	// means sum exactly to the per-bucket mean response time because the
	// engine's partition is exact.
	cells [histBuckets]blameCell
}

type blameCell struct {
	count    atomic.Int64
	ns       [sim.NumBlameCauses]atomic.Int64
	dominant [sim.NumBlameCauses]atomic.Int64
}

// newBlameSet registers the blame instruments in the catalog registry.
func newBlameSet(r *Registry) *BlameSet {
	b := &BlameSet{}
	for c := 0; c < sim.NumBlameCauses; c++ {
		name := sim.BlameCause(c).String()
		b.Cause[c] = r.Hist("ssdsim_blame_"+name+"_ns",
			"Response time attributed to the "+name+" cause, nonzero shares only, simulated ns.")
		b.Dominant[c] = r.Counter("ssdsim_blame_dominant_"+name+"_total",
			"Requests whose largest blame share was the "+name+" cause.")
	}
	b.GCOverlap = r.Hist("ssdsim_blame_gc_overlap_ns",
		"Foreground GC pause accumulated while a request dispatched (overlaps flash causes), simulated ns.")
	b.ScanWork = r.Hist("ssdsim_blame_scan_cost",
		"Victim-scan work charged to a request's evictions, nonzero only.")
	return b
}

// Observe folds one request's blame span. total must be the request's
// response time (Completion - arrival), which equals bl.Total() by the
// engine's construction; it is passed in because the caller already has it.
func (b *BlameSet) Observe(total int64, bl *sim.Blame) {
	if b == nil || bl == nil {
		return
	}
	dom := bl.Dominant()
	b.Dominant[dom].Inc()
	if bl.GCPauseNs > 0 {
		b.GCOverlap.Observe(bl.GCPauseNs)
	}
	if bl.ScanCost > 0 {
		b.ScanWork.Observe(bl.ScanCost)
	}
	cell := &b.cells[bucketOf(total)]
	cell.count.Add(1)
	cell.dominant[dom].Add(1)
	for c := 0; c < sim.NumBlameCauses; c++ {
		if v := bl.Ns[c]; v != 0 {
			b.Cause[c].Observe(v)
			cell.ns[c].Add(v)
		}
	}
}

// Count returns the number of requests folded into the matrix.
func (b *BlameSet) Count() int64 {
	if b == nil {
		return 0
	}
	var n int64
	for i := range b.cells {
		n += b.cells[i].count.Load()
	}
	return n
}

// BlameRow is one quantile's decomposition from BlameTable.
type BlameRow struct {
	// Quantile is the requested rank (0..1).
	Quantile float64
	// Bucket is the log2 latency bucket holding that rank; UpperNs its
	// upper edge (the same edge Hist.Quantile reports).
	Bucket  int
	UpperNs int64
	// Count is the number of requests in the bucket; MeanNs their mean
	// response time; CauseNs[c] the mean time charged to cause c. The
	// CauseNs entries sum exactly to MeanNs.
	Count   int64
	MeanNs  float64
	CauseNs [sim.NumBlameCauses]float64
	// Dominant is the cause that most often had the largest share among
	// the bucket's requests; DominantShare its fraction of the bucket.
	Dominant      sim.BlameCause
	DominantShare float64
}

// BlameTable decomposes each requested quantile of the response-time
// distribution into per-cause means over that quantile's latency bucket.
// Quantiles map to buckets exactly as Hist.Quantile maps ranks, so the
// rows line up with the ssdsim_request_latency_ns histogram.
func (b *BlameSet) BlameTable(qs ...float64) []BlameRow {
	if b == nil || len(qs) == 0 {
		return nil
	}
	total := b.Count()
	if total == 0 {
		return nil
	}
	rows := make([]BlameRow, 0, len(qs))
	for _, q := range qs {
		rank := int64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var cum int64
		bucket := histBuckets - 1
		for i := 0; i < histBuckets; i++ {
			cum += b.cells[i].count.Load()
			if cum > rank {
				bucket = i
				break
			}
		}
		cell := &b.cells[bucket]
		row := BlameRow{Quantile: q, Bucket: bucket, Count: cell.count.Load()}
		switch {
		case bucket == 0:
			row.UpperNs = 1
		case bucket == histBuckets-1:
			row.UpperNs = math.MaxInt64
		default:
			row.UpperNs = 1 << uint(bucket)
		}
		if row.Count > 0 {
			var sum int64
			for c := 0; c < sim.NumBlameCauses; c++ {
				ns := cell.ns[c].Load()
				sum += ns
				row.CauseNs[c] = float64(ns) / float64(row.Count)
			}
			row.MeanNs = float64(sum) / float64(row.Count)
			best, bestN := sim.BlameQueue, int64(-1)
			for c := 0; c < sim.NumBlameCauses; c++ {
				if n := cell.dominant[c].Load(); n > bestN {
					best, bestN = sim.BlameCause(c), n
				}
			}
			row.Dominant = best
			row.DominantShare = float64(bestN) / float64(row.Count)
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteBlameTable renders BlameTable(qs...) as an aligned text table: one
// row per quantile, one column per cause (mean ns), plus the bucket's
// request count, mean response time, and most-frequent dominant cause.
func (b *BlameSet) WriteBlameTable(w io.Writer, qs ...float64) error {
	rows := b.BlameTable(qs...)
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "blame: no requests observed")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %10s %14s", "blame", "requests", "mean_ns"); err != nil {
		return err
	}
	for c := 0; c < sim.NumBlameCauses; c++ {
		if _, err := fmt.Fprintf(w, " %12s", sim.BlameCause(c).String()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, " %14s\n", "dominant"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "P%-7s %10d %14.0f", trimQuantile(r.Quantile), r.Count, r.MeanNs); err != nil {
			return err
		}
		for c := 0; c < sim.NumBlameCauses; c++ {
			if _, err := fmt.Fprintf(w, " %12.0f", r.CauseNs[c]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " %8s %4.0f%%\n", r.Dominant, 100*r.DominantShare); err != nil {
			return err
		}
	}
	return nil
}

// trimQuantile renders 0.999 as "99.9", 0.5 as "50".
func trimQuantile(q float64) string {
	s := fmt.Sprintf("%g", q*100)
	return s
}
