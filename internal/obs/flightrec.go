package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/ftl"
	"repro/internal/sim"
)

// FlightKind tags one flight-recorder record.
type FlightKind int64

const (
	// FlightRequest: a request entered the cache stage (a=lpn, b=pages,
	// c=1 for writes).
	FlightRequest FlightKind = iota + 1
	// FlightResult: a request completed (a=index, b=response ns,
	// c=dominant blame cause).
	FlightResult
	// FlightEviction: a victim batch dispatched (a=pages, b=eviction
	// kind, c=scan cost).
	FlightEviction
	// FlightGC: a collection finished (a=pause ns, b=pages moved).
	FlightGC
	// FlightErase: a block erase (a=issue, b=done).
	FlightErase
	// FlightDeadlineMiss: a served request expired (a=index, b=overrun ns).
	FlightDeadlineMiss
	// FlightRungChange: the overload ladder moved (a=old rung, b=new rung).
	FlightRungChange
	// FlightDegraded: entry into degraded/read-only mode.
	FlightDegraded
	// FlightInvariant: an invariant or run failure.
	FlightInvariant
	// FlightTrigger: the anomaly that caused a dump (a=dump ordinal).
	FlightTrigger
	// FlightGCPreempt: a scheduled collection preempted mid-victim
	// (a=pages moved so far).
	FlightGCPreempt
	// FlightGCResume: a preempted collection picked back up (a=pages
	// moved so far).
	FlightGCResume
)

// flightKindNames maps kinds to stable dump identifiers.
var flightKindNames = map[FlightKind]string{
	FlightRequest:      "request",
	FlightResult:       "result",
	FlightEviction:     "eviction",
	FlightGC:           "gc",
	FlightErase:        "erase",
	FlightDeadlineMiss: "deadline_miss",
	FlightRungChange:   "rung_change",
	FlightDegraded:     "degraded",
	FlightInvariant:    "invariant",
	FlightTrigger:      "trigger",
	FlightGCPreempt:    "gc_preempt",
	FlightGCResume:     "gc_resume",
}

// String returns the kind's stable name.
func (k FlightKind) String() string {
	if s, ok := flightKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// flightWords is the fixed per-record word count: seq (written last),
// kind, time, and three payload words.
const flightWords = 6

// maxFlightDumps bounds the dump files one recorder writes; past the cap,
// triggers still record into the rings but stop producing files (a flapping
// anomaly must not fill the disk).
const maxFlightDumps = 32

// FlightRecord is one decoded ring record.
type FlightRecord struct {
	Seq   int64
	Shard int
	Kind  FlightKind
	T     int64
	A     int64
	B     int64
	C     int64
}

// FlightRecorder keeps a fixed-size lock-free ring of recent events per
// shard and dumps them to NDJSON files on anomaly triggers. Writers claim
// a slot with one atomic add and publish the record by storing its global
// sequence number last; readers detect and skip torn records by re-reading
// the sequence word, so recording never blocks and never allocates —
// cheap enough to leave on in production runs.
//
// A nil *FlightRecorder is valid everywhere: Record, Trigger, Observer and
// Tap all no-op, so call sites need no enabled/disabled branches.
type FlightRecorder struct {
	rings  [][]atomic.Int64 // shard → ring of size*flightWords words
	cursor []atomic.Int64   // shard → next slot ordinal (padded apart by slice layout)
	mask   int64            // size-1 (size is a power of two)
	seq    atomic.Int64     // global publication order across shards
	dumps  atomic.Int64     // dump files written (ordinal + cap)
	dir    string           // dump directory ("" = dumps disabled)
}

// NewFlightRecorder builds a recorder with one ring per shard, each
// holding size records (rounded up to a power of two; <= 0 means the 4096
// default). dir receives the NDJSON dump files; "" disables dumping while
// keeping the rings recording (Snapshot and the HTTP endpoint still work).
func NewFlightRecorder(shards, size int, dir string) *FlightRecorder {
	if shards < 1 {
		shards = 1
	}
	if size <= 0 {
		size = 4096
	}
	n := 1
	for n < size {
		n <<= 1
	}
	f := &FlightRecorder{
		rings:  make([][]atomic.Int64, shards),
		cursor: make([]atomic.Int64, shards),
		mask:   int64(n - 1),
		dir:    dir,
	}
	for k := range f.rings {
		f.rings[k] = make([]atomic.Int64, n*flightWords)
	}
	return f
}

// Shards returns the per-shard ring count (0 on nil).
func (f *FlightRecorder) Shards() int {
	if f == nil {
		return 0
	}
	return len(f.rings)
}

// Record appends one event to shard's ring. Out-of-range shards clamp to
// ring 0 so a defensive caller can never index out of bounds.
func (f *FlightRecorder) Record(shard int, kind FlightKind, t, a, b, c int64) {
	if f == nil {
		return
	}
	if shard < 0 || shard >= len(f.rings) {
		shard = 0
	}
	ring := f.rings[shard]
	slot := (f.cursor[shard].Add(1) - 1) & f.mask
	w := ring[slot*flightWords : slot*flightWords+flightWords]
	seq := f.seq.Add(1)
	// Invalidate, fill payload, publish: a reader that sees the old or
	// zero sequence discards the slot, so a half-written record is never
	// observed as valid.
	w[0].Store(0)
	w[1].Store(int64(kind))
	w[2].Store(t)
	w[3].Store(a)
	w[4].Store(b)
	w[5].Store(c)
	w[0].Store(seq)
}

// Snapshot decodes every valid record across all rings, ordered by global
// sequence (oldest first). Torn or empty slots are skipped.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	var recs []FlightRecord
	for shard, ring := range f.rings {
		slots := (f.mask + 1)
		for s := int64(0); s < slots; s++ {
			w := ring[s*flightWords : s*flightWords+flightWords]
			s1 := w[0].Load()
			if s1 == 0 {
				continue
			}
			rec := FlightRecord{
				Seq: s1, Shard: shard, Kind: FlightKind(w[1].Load()),
				T: w[2].Load(), A: w[3].Load(), B: w[4].Load(), C: w[5].Load(),
			}
			if w[0].Load() != s1 {
				continue // overwritten while reading
			}
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs
}

// WriteSnapshot renders the current rings as NDJSON, one record per line,
// oldest first.
func (f *FlightRecorder) WriteSnapshot(w io.Writer) error {
	for _, r := range f.Snapshot() {
		if _, err := fmt.Fprintf(w,
			`{"seq":%d,"shard":%d,"kind":%q,"t":%d,"a":%d,"b":%d,"c":%d}`+"\n",
			r.Seq, r.Shard, r.Kind, r.T, r.A, r.B, r.C); err != nil {
			return err
		}
	}
	return nil
}

// Trigger records the anomaly and dumps the rings to a fresh NDJSON file
// flightrec-<ordinal>-<reason>.ndjson in the recorder's directory. It
// returns the dump path, or "" when dumping is disabled, the dump cap is
// reached, or the write failed (triggers must never take the service
// down). Safe from any goroutine; concurrent triggers write distinct
// files.
func (f *FlightRecorder) Trigger(reason string, shard int, t int64) string {
	if f == nil {
		return ""
	}
	ord := f.dumps.Add(1) - 1
	f.Record(shard, FlightTrigger, t, ord, 0, 0)
	if f.dir == "" || ord >= maxFlightDumps {
		return ""
	}
	path := filepath.Join(f.dir, fmt.Sprintf("flightrec-%03d-%s.ndjson", ord, reason))
	file, err := os.Create(path)
	if err != nil {
		return ""
	}
	defer file.Close()
	if _, err := fmt.Fprintf(file, `{"trigger":%q,"shard":%d,"t":%d}`+"\n", reason, shard, t); err != nil {
		return ""
	}
	if err := f.WriteSnapshot(file); err != nil {
		return ""
	}
	return path
}

// DumpCount returns how many triggers have fired (including ones past the
// file cap).
func (f *FlightRecorder) DumpCount() int64 {
	if f == nil {
		return 0
	}
	return f.dumps.Load()
}

// Observer returns a sim.Observer recording shard's engine events into
// the ring: requests, results, evictions, and a degraded-run trigger at
// OnDone. Nil-safe (returns a no-op observer).
func (f *FlightRecorder) Observer(shard int) sim.Observer {
	if f == nil {
		return sim.NopObserver{}
	}
	return &flightObserver{f: f, shard: shard}
}

type flightObserver struct {
	f     *FlightRecorder
	shard int
}

func (o *flightObserver) OnRequest(_ *sim.Engine, ev *sim.RequestEvent) {
	var wr int64
	if ev.Write {
		wr = 1
	}
	o.f.Record(o.shard, FlightRequest, ev.Issue, ev.LPN, int64(ev.Pages), wr)
}

func (o *flightObserver) OnEviction(_ *sim.Engine, ev *sim.EvictionEvent) {
	o.f.Record(o.shard, FlightEviction, ev.Time, int64(len(ev.LPNs)), int64(ev.Kind), ev.ScanCost)
}

func (o *flightObserver) OnResult(_ *sim.Engine, ev *sim.ResultEvent) {
	o.f.Record(o.shard, FlightResult, ev.Completion,
		int64(ev.Req.Index), ev.Completion-ev.Req.Arrival, int64(ev.Blame.Dominant()))
}

func (o *flightObserver) OnDone(_ *sim.Engine, ev *sim.DoneEvent) {
	if ev.Degraded {
		o.f.Record(o.shard, FlightDegraded, ev.LastArrival, 0, 0, 0)
		o.f.Trigger("degraded", o.shard, ev.LastArrival)
	}
}

// Tap returns an ftl.Tap recording shard's GC collections and erases into
// the ring (programs and reads are far too frequent for a forensic ring
// and already have histograms). Nil-safe.
func (f *FlightRecorder) Tap(shard int) ftl.Tap {
	if f == nil {
		return nil
	}
	return &flightTap{f: f, shard: shard}
}

type flightTap struct {
	f     *FlightRecorder
	shard int
}

func (t *flightTap) TapProgram(issue, done int64) {}
func (t *flightTap) TapRead(issue, done int64)    {}
func (t *flightTap) TapErase(issue, done int64) {
	t.f.Record(t.shard, FlightErase, issue, issue, done, 0)
}
func (t *flightTap) TapGC(pause int64, pagesMoved int) {
	t.f.Record(t.shard, FlightGC, 0, pause, int64(pagesMoved), 0)
}
func (t *flightTap) TapGCPreempt(now int64, pagesMoved int) {
	t.f.Record(t.shard, FlightGCPreempt, now, int64(pagesMoved), 0, 0)
}
func (t *flightTap) TapGCResume(now int64, pagesMoved int) {
	t.f.Record(t.shard, FlightGCResume, now, int64(pagesMoved), 0, 0)
}

// MultiTap tees ftl.Tap calls to every non-nil tap; nil when none remain,
// and the single tap itself when only one does (no indirection cost).
func MultiTap(taps ...ftl.Tap) ftl.Tap {
	live := make([]ftl.Tap, 0, len(taps))
	for _, t := range taps {
		switch v := t.(type) {
		case nil:
			continue
		case *Telemetry:
			if v == nil {
				continue
			}
		case *flightTap:
			if v == nil {
				continue
			}
		}
		live = append(live, t)
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTap(live)
}

type multiTap []ftl.Tap

func (m multiTap) TapProgram(issue, done int64) {
	for _, t := range m {
		t.TapProgram(issue, done)
	}
}
func (m multiTap) TapRead(issue, done int64) {
	for _, t := range m {
		t.TapRead(issue, done)
	}
}
func (m multiTap) TapErase(issue, done int64) {
	for _, t := range m {
		t.TapErase(issue, done)
	}
}
func (m multiTap) TapGC(pause int64, pagesMoved int) {
	for _, t := range m {
		t.TapGC(pause, pagesMoved)
	}
}

// multiTap also satisfies ftl.TapGCSched, forwarding to whichever members
// implement the extension — so a telemetry+flight-recorder tee loses
// neither side's preempt/resume stream.
func (m multiTap) TapGCPreempt(now int64, pagesMoved int) {
	for _, t := range m {
		if s, ok := t.(ftl.TapGCSched); ok {
			s.TapGCPreempt(now, pagesMoved)
		}
	}
}
func (m multiTap) TapGCResume(now int64, pagesMoved int) {
	for _, t := range m {
		if s, ok := t.(ftl.TapGCSched); ok {
			s.TapGCResume(now, pagesMoved)
		}
	}
}
