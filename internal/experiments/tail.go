package experiments

import "fmt"

// TailRow is one trace's tail-latency comparison — an extension experiment:
// the paper reports mean response time only (Fig. 8), but batch-eviction
// policies differ most in the tail, where a request that triggers a flush
// pays the whole batch's transfer serialization.
type TailRow struct {
	Trace   string
	CacheMB int
	// P50Ms / P99Ms map policy → estimated percentile in milliseconds.
	P50Ms, P99Ms map[string]float64
}

// TailLatency derives the tail comparison from a grid run at the given
// cache size (0 = middle configured size).
func (g *GridResult) TailLatency(cacheMB int) []TailRow {
	if cacheMB == 0 {
		cacheMB = g.CacheMBs[len(g.CacheMBs)/2]
	}
	var rows []TailRow
	for _, tr := range g.Traces {
		row := TailRow{
			Trace: tr, CacheMB: cacheMB,
			P50Ms: map[string]float64{}, P99Ms: map[string]float64{},
		}
		for _, pol := range g.Policies {
			if m := g.Find(tr, pol, cacheMB); m != nil {
				row.P50Ms[pol] = m.ResponseP50.Value() / 1e6
				row.P99Ms[pol] = m.ResponseP99.Value() / 1e6
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTailLatency renders the tail-latency extension table.
func RenderTailLatency(rows []TailRow, policies []string) string {
	if len(rows) == 0 {
		return ""
	}
	header := []string{"Trace", "Pct"}
	header = append(header, policies...)
	var out [][]string
	for _, row := range rows {
		p50 := []string{row.Trace, "P50 ms"}
		p99 := []string{row.Trace, "P99 ms"}
		for _, pol := range policies {
			p50 = append(p50, fmt.Sprintf("%.3f", row.P50Ms[pol]))
			p99 = append(p99, fmt.Sprintf("%.3f", row.P99Ms[pol]))
		}
		out = append(out, p50, p99)
	}
	return renderTable(
		fmt.Sprintf("Extension: response-time percentiles (%dMB cache)", rows[0].CacheMB),
		header, out)
}
