package experiments

import (
	"strings"
	"testing"
)

// Renderer unit tests with synthetic rows: every table must include its
// headers, align its data, and tolerate missing policies.

func TestRenderTableAlignment(t *testing.T) {
	out := renderTable("T", []string{"A", "LongHeader"}, [][]string{
		{"x", "1"},
		{"yyyy", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5 (title+header+sep+2 rows): %v", len(lines), lines)
	}
	if lines[0] != "T" {
		t.Fatalf("title = %q", lines[0])
	}
	// All data lines padded to equal width per column.
	if !strings.HasPrefix(lines[2], "----") {
		t.Fatalf("separator missing: %q", lines[2])
	}
}

func TestRenderFigure8SyntheticRows(t *testing.T) {
	rows := []Figure8Row{{
		Trace: "t1", CacheMB: 16, LRUMeanMs: 1.5,
		Normalized: map[string]float64{"LRU": 1, "Req-block": 0.8},
	}}
	out := RenderFigure8(rows, []string{"LRU", "Req-block"})
	for _, want := range []string{"t1", "16MB", "1.50", "0.800", "Req-block"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure9SyntheticRows(t *testing.T) {
	rows := []Figure9Row{{
		Trace: "t1", CacheMB: 32, ReqBlockHitRatio: 0.42,
		Normalized: map[string]float64{"LRU": 0.9},
	}}
	out := RenderFigure9(rows, []string{"LRU"})
	if !strings.Contains(out, "0.420") || !strings.Contains(out, "0.900") {
		t.Fatalf("render wrong:\n%s", out)
	}
}

func TestRenderFigure10And11Empty(t *testing.T) {
	if RenderFigure10(nil, nil) != "" || RenderFigure11(nil, nil) != "" {
		t.Fatal("empty rows must render empty")
	}
}

func TestRenderFigure12SyntheticRows(t *testing.T) {
	rows := []Figure12Row{{Policy: "X", CacheMB: 16, MeanKB: 12.34, PercentOfCache: 0.07}}
	out := RenderFigure12(rows)
	if !strings.Contains(out, "12.3 KB") || !strings.Contains(out, "0.07%") {
		t.Fatalf("render wrong:\n%s", out)
	}
}

func TestRenderFigure13SyntheticRows(t *testing.T) {
	rows := []Figure13Row{{
		Trace: "t1", CacheMB: 32,
		Series:    map[string][]float64{"IRL": {1, 2}, "SRL": {3}, "DRL": {}},
		MeanShare: map[string]float64{"IRL": 0.5, "SRL": 0.4, "DRL": 0.1},
	}}
	out := RenderFigure13(rows)
	for _, want := range []string{"50.0%", "40.0%", "10.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if RenderFigure13(nil) != "" {
		t.Fatal("empty rows must render empty")
	}
}

func TestRenderEnduranceSyntheticRows(t *testing.T) {
	rows := []EnduranceRow{{
		Trace: "t1", CacheMB: 16,
		WriteAmp:   map[string]float64{"LRU": 1.25},
		Erases:     map[string]int64{"LRU": 42},
		WearStdDev: map[string]float64{"LRU": 0.5},
	}}
	out := RenderEndurance(rows, []string{"LRU"})
	if !strings.Contains(out, "1.250") || !strings.Contains(out, "42") {
		t.Fatalf("render wrong:\n%s", out)
	}
}

func TestRenderTailLatencySyntheticRows(t *testing.T) {
	rows := []TailRow{{
		Trace: "t1", CacheMB: 16,
		P50Ms: map[string]float64{"LRU": 0.004},
		P99Ms: map[string]float64{"LRU": 1.234},
	}}
	out := RenderTailLatency(rows, []string{"LRU"})
	if !strings.Contains(out, "0.004") || !strings.Contains(out, "1.234") {
		t.Fatalf("render wrong:\n%s", out)
	}
}

func TestRenderFigure7Empty(t *testing.T) {
	if RenderFigure7(nil) != "" {
		t.Fatal("empty δ sweep must render empty")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := sortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sortedKeys = %v", got)
	}
}

func TestGridFindMiss(t *testing.T) {
	g := &GridResult{}
	if g.Find("x", "y", 16) != nil {
		t.Fatal("Find on empty grid returned a cell")
	}
}

func TestFigure7BestDelta(t *testing.T) {
	row := Figure7Row{
		Deltas:       []int{1, 3, 5},
		HitRatioNorm: []float64{1.0, 1.05, 1.02},
		ResponseNorm: []float64{1.0, 0.99, 0.98},
	}
	if row.BestDelta() != 3 {
		t.Fatalf("BestDelta = %d, want 3", row.BestDelta())
	}
	out := RenderFigure7([]Figure7Row{row})
	if !strings.Contains(out, "best δ") {
		t.Fatalf("summary column missing:\n%s", out)
	}
}

func TestSummarizeAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is seconds-long")
	}
	cfg := testConfig()
	cfg.Traces = []string{"src1_2", "proj_0"}
	cfg.CacheSizesMB = []int{16}
	r := NewRunner(cfg)
	g, err := r.RunGrid()
	if err != nil {
		t.Fatal(err)
	}
	s := g.Summarize()
	if s.Cells != 2 || len(s.Baselines) != 3 {
		t.Fatalf("summary shape: %+v", s)
	}
	// Req-block beats LRU on these traces, on average.
	if s.HitImprovement["LRU"] <= 0 {
		t.Errorf("hit improvement over LRU %v, want > 0", s.HitImprovement["LRU"])
	}
	if s.RespReduction["Req-block"] != 0 { // not a baseline
		t.Error("Req-block compared against itself")
	}
	out := RenderSummary(s)
	if !strings.Contains(out, "LRU") || !strings.Contains(out, "(paper)") {
		t.Fatalf("render: %s", out)
	}
}
