package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/replay"
)

// Figure7Row is one trace's δ sensitivity: hit ratio and response time per
// δ, normalized to δ = 1, with a 32 MB cache (§4.2.1).
type Figure7Row struct {
	Trace string
	// Deltas are the evaluated δ values.
	Deltas []int
	// HitRatioNorm[i] is hit ratio at Deltas[i] / hit ratio at δ=1.
	HitRatioNorm []float64
	// ResponseNorm[i] is mean response at Deltas[i] / response at δ=1.
	ResponseNorm []float64
}

// Figure7 sweeps Req-block's δ parameter (1..8 by default) with a 32 MB
// cache and reports results normalized to δ=1, as the paper does. The
// (trace, δ) cells are independent replays and run on a worker pool.
func (r *Runner) Figure7(deltas []int) ([]Figure7Row, error) {
	if len(deltas) == 0 {
		deltas = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	const cacheMB = 32
	profiles := r.Profiles()
	// Pre-generate traces: the Runner cache is not synchronized.
	for _, p := range profiles {
		if _, err := r.Trace(p.Name); err != nil {
			return nil, err
		}
	}
	type cell struct {
		hit, resp float64
		err       error
	}
	cells := make([][]cell, len(profiles))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for pi, p := range profiles {
		cells[pi] = make([]cell, len(deltas))
		for di, d := range deltas {
			wg.Add(1)
			go func(pi, di int, name string, delta int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				f := cache.Factory{Name: "Req-block", New: func(c int) cache.Policy {
					return core.NewConfig(c, core.Config{Delta: delta, Merge: true, Recency: true})
				}}
				m, err := r.Replay(name, f, cacheMB, replay.Options{})
				if err != nil {
					cells[pi][di].err = fmt.Errorf("figure7 %s δ=%d: %w", name, delta, err)
					return
				}
				cells[pi][di] = cell{hit: m.HitRatio(), resp: m.Response.Mean()}
			}(pi, di, p.Name, d)
		}
	}
	wg.Wait()
	var out []Figure7Row
	for pi, p := range profiles {
		row := Figure7Row{Trace: p.Name, Deltas: deltas}
		baseHit, baseResp := cells[pi][0].hit, cells[pi][0].resp
		for _, c := range cells[pi] {
			if c.err != nil {
				return nil, c.err
			}
			if baseHit > 0 {
				row.HitRatioNorm = append(row.HitRatioNorm, c.hit/baseHit)
			} else {
				row.HitRatioNorm = append(row.HitRatioNorm, 0)
			}
			if baseResp > 0 {
				row.ResponseNorm = append(row.ResponseNorm, c.resp/baseResp)
			} else {
				row.ResponseNorm = append(row.ResponseNorm, 0)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// BestDelta returns the δ with the highest hit ratio (ties → smaller δ,
// cheaper metadata).
func (r Figure7Row) BestDelta() int {
	best, bestHit := r.Deltas[0], r.HitRatioNorm[0]
	for i, d := range r.Deltas {
		if r.HitRatioNorm[i] > bestHit {
			best, bestHit = d, r.HitRatioNorm[i]
		}
	}
	return best
}

// RenderFigure7 renders the δ sweep.
func RenderFigure7(rows []Figure7Row) string {
	if len(rows) == 0 {
		return ""
	}
	header := []string{"Trace", "Metric"}
	for _, d := range rows[0].Deltas {
		header = append(header, fmt.Sprintf("δ=%d", d))
	}
	header = append(header, "best δ")
	var out [][]string
	for _, row := range rows {
		hit := []string{row.Trace, "hit ratio"}
		resp := []string{row.Trace, "resp time"}
		for i := range row.Deltas {
			hit = append(hit, fmt.Sprintf("%.3f", row.HitRatioNorm[i]))
			resp = append(resp, fmt.Sprintf("%.3f", row.ResponseNorm[i]))
		}
		hit = append(hit, fmt.Sprintf("%d", row.BestDelta()))
		resp = append(resp, "")
		out = append(out, hit, resp)
	}
	return renderTable("Figure 7: δ sensitivity with 32MB cache (normalized to δ=1)", header, out)
}
