package experiments

import (
	"fmt"

	"repro/internal/mrc"
)

// MRCRow is one trace's exact LRU miss-ratio curve at the configured cache
// sweep — a provisioning extension: the paper evaluates three cache sizes;
// the curve shows the whole tradeoff and where extra DRAM stops paying.
type MRCRow struct {
	Trace string
	// HitRatios maps cache size (MB) → exact LRU hit ratio.
	HitRatios map[int]float64
	// WorkingSetMB is the capacity reaching 99% of the max hit ratio.
	WorkingSetMB float64
	// ColdMissRatio is the compulsory miss floor.
	ColdMissRatio float64
}

// MRC computes the curves for every configured trace.
func (r *Runner) MRC() ([]MRCRow, error) {
	var rows []MRCRow
	for _, p := range r.Profiles() {
		tr, err := r.Trace(p.Name)
		if err != nil {
			return nil, err
		}
		curve, err := mrc.Compute(tr, mrc.Options{WriteBuffer: true})
		if err != nil {
			return nil, fmt.Errorf("mrc %s: %w", p.Name, err)
		}
		row := MRCRow{Trace: p.Name, HitRatios: map[int]float64{}}
		for _, mb := range r.cfg.CacheSizesMB {
			row.HitRatios[mb] = curve.HitRatio(mb * PagesPerMB)
		}
		row.WorkingSetMB = float64(curve.WorkingSet(0.99)) / PagesPerMB
		if curve.Total > 0 {
			row.ColdMissRatio = float64(curve.ColdMisses) / float64(curve.Total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderMRC renders the provisioning table.
func RenderMRC(rows []MRCRow, cacheMBs []int) string {
	header := []string{"Trace"}
	for _, mb := range cacheMBs {
		header = append(header, fmt.Sprintf("LRU hit @%dMB", mb))
	}
	header = append(header, "Working set", "Cold misses")
	var out [][]string
	for _, row := range rows {
		cells := []string{row.Trace}
		for _, mb := range cacheMBs {
			cells = append(cells, fmt.Sprintf("%.3f", row.HitRatios[mb]))
		}
		cells = append(cells,
			fmt.Sprintf("%.1f MB", row.WorkingSetMB),
			fmt.Sprintf("%.1f%%", row.ColdMissRatio*100))
		out = append(out, cells)
	}
	return renderTable("Extension: exact LRU miss-ratio curves (Mattson stack algorithm)",
		header, out)
}
