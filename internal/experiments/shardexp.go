package experiments

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// ShardingRow is one cell of the sharded-scaling experiment: one shard
// count under one sharing mode, replayed with the Req-block policy.
type ShardingRow struct {
	Trace       string
	Shards      int
	Sharing     string
	HitRatio    float64
	MeanRespMs  float64
	FlashWrites int64
	BPStalls    int64
	WallMs      float64
	// PagesPerSec is replay throughput: trace pages over wall-clock time.
	PagesPerSec float64
	// Speedup is PagesPerSec over the Shards=1 row of the same mode.
	Speedup float64
}

// Sharding sweeps shard counts × sharing modes over one trace with the
// Req-block policy, reporting behavioral metrics plus wall-clock replay
// throughput. Simulated results are deterministic per cell; the wall-clock
// columns measure this host and vary run to run.
func (r *Runner) Sharding(traceName string, cacheMB int, counts []int, modes []sim.SharingMode) ([]ShardingRow, error) {
	t, err := r.Trace(traceName)
	if err != nil {
		return nil, err
	}
	params := ssd.ScaledParams(r.cfg.DeviceDivisor)
	pageSize := int64(params.Flash.PageSize)
	var tracePages int64
	for _, req := range t.Requests {
		_, n := req.PageSpan(pageSize)
		tracePages += int64(n)
	}

	delta := r.cfg.Delta
	var rows []ShardingRow
	for _, mode := range modes {
		base := 0.0
		for _, n := range counts {
			spec := replay.ShardSpec{
				Shards:             n,
				Sharing:            mode,
				TotalCapacityPages: cacheMB * PagesPerMB,
				NewPolicy: func(_, capPages int) cache.Policy {
					return core.NewConfig(capPages, core.Config{Delta: delta, Merge: true, Recency: true})
				},
				NewDevice: func(int) (*ssd.Device, error) { return r.Device() },
			}
			opts := replay.Options{
				QueueDepth:        r.cfg.QueueDepth,
				BackPressureDepth: r.cfg.BackPressureDepth,
				Observers:         r.cfg.Observers,
			}
			opts.ApplyFaults(r.cfg.Faults)
			start := time.Now()
			m, err := replay.RunShardedTrace(t, pageSize, spec, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: sharding %s n=%d %s: %w", traceName, n, mode, err)
			}
			wall := time.Since(start)
			row := ShardingRow{
				Trace:       traceName,
				Shards:      n,
				Sharing:     mode.String(),
				HitRatio:    m.HitRatio(),
				MeanRespMs:  m.Response.Mean() / 1e6,
				FlashWrites: m.Device.FlashWrites,
				BPStalls:    m.BackPressureStalls,
				WallMs:      float64(wall.Nanoseconds()) / 1e6,
			}
			if s := wall.Seconds(); s > 0 {
				row.PagesPerSec = float64(tracePages) / s
			}
			if n == 1 || base == 0 {
				base = row.PagesPerSec
			}
			if base > 0 {
				row.Speedup = row.PagesPerSec / base
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderSharding renders the sharded-scaling sweep as a text table.
func RenderSharding(rows []ShardingRow) string {
	header := []string{"trace", "shards", "sharing", "hit ratio", "mean ms", "flash writes", "bp stalls", "wall ms", "pages/s", "speedup"}
	body := make([][]string, len(rows))
	for i, row := range rows {
		body[i] = []string{
			row.Trace,
			fmt.Sprintf("%d", row.Shards),
			row.Sharing,
			fmt.Sprintf("%.4f", row.HitRatio),
			fmt.Sprintf("%.3f", row.MeanRespMs),
			fmt.Sprintf("%d", row.FlashWrites),
			fmt.Sprintf("%d", row.BPStalls),
			fmt.Sprintf("%.1f", row.WallMs),
			fmt.Sprintf("%.0f", row.PagesPerSec),
			fmt.Sprintf("%.2fx", row.Speedup),
		}
	}
	return renderTable("Sharded scaling (Req-block; simulated metrics deterministic, wall-clock host-dependent)", header, body)
}
