package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/replay"
)

// Figure2Result holds, for one trace, the CDFs of page inserts and page
// hits as a function of the inserting write request's size — the paper's
// motivation experiment, run with a 16 MB LRU cache.
type Figure2Result struct {
	Trace     string
	InsertCDF []metrics.CDFPoint // fraction of inserted pages from requests ≤ size
	HitCDF    []metrics.CDFPoint // fraction of hits on pages from requests ≤ size
	// SmallThresholdPages is the trace's mean request size (footnote 1).
	SmallThresholdPages int
	// SmallInsertShare / SmallHitShare evaluate both CDFs at the
	// threshold: the paper's headline is hits ≈ 80% while inserts ≈ 20%.
	SmallInsertShare, SmallHitShare float64
}

// Figure2 reproduces Fig. 2: replay each trace through a 16 MB LRU cache
// and histogram page inserts and hits by inserting-request size.
func (r *Runner) Figure2() ([]Figure2Result, error) {
	lru := cache.Factory{Name: "LRU", New: func(c int) cache.Policy { return cache.NewLRU(c) }}
	var out []Figure2Result
	for _, p := range r.Profiles() {
		m, err := r.Replay(p.Name, lru, 16, replay.Options{TrackPageFates: true})
		if err != nil {
			return nil, err
		}
		res := Figure2Result{
			Trace:               p.Name,
			InsertCDF:           m.InsertBySize.CDF(),
			HitCDF:              m.HitBySize.CDF(),
			SmallThresholdPages: m.SmallThresholdPages,
			SmallInsertShare:    m.InsertBySize.FractionLE(m.SmallThresholdPages),
			SmallHitShare:       m.HitBySize.FractionLE(m.SmallThresholdPages),
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderFigure2 renders the CDF evaluation at the small/large threshold.
func RenderFigure2(results []Figure2Result) string {
	rows := make([][]string, 0, len(results))
	for _, res := range results {
		rows = append(rows, []string{
			res.Trace,
			fmt.Sprintf("%d pages", res.SmallThresholdPages),
			metrics.Percent(res.SmallInsertShare),
			metrics.Percent(res.SmallHitShare),
		})
	}
	return renderTable("Figure 2: share of page inserts vs page hits from small requests (16MB LRU)",
		[]string{"Trace", "Small ≤", "Insert share", "Hit share"}, rows)
}

// Figure3Result is one trace's large-request hit statistic.
type Figure3Result struct {
	Trace string
	// LargeHitFraction is the fraction of pages inserted by large write
	// requests that were re-accessed before eviction (paper: 22.0-37.2%).
	LargeHitFraction float64
	LargeInserted    int64
}

// Figure3 reproduces Fig. 3 with the same 16 MB LRU configuration.
func (r *Runner) Figure3() ([]Figure3Result, error) {
	lru := cache.Factory{Name: "LRU", New: func(c int) cache.Policy { return cache.NewLRU(c) }}
	var out []Figure3Result
	for _, p := range r.Profiles() {
		m, err := r.Replay(p.Name, lru, 16, replay.Options{TrackPageFates: true})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure3Result{
			Trace:            p.Name,
			LargeHitFraction: m.LargeHitFraction(),
			LargeInserted:    m.LargeInserted,
		})
	}
	return out, nil
}

// RenderFigure3 renders the large-request hit fractions.
func RenderFigure3(results []Figure3Result) string {
	rows := make([][]string, 0, len(results))
	for _, res := range results {
		rows = append(rows, []string{
			res.Trace,
			fmt.Sprint(res.LargeInserted),
			metrics.Percent(res.LargeHitFraction),
		})
	}
	return renderTable("Figure 3: large-request pages re-accessed while cached (16MB LRU; paper: 22.0%-37.2%)",
		[]string{"Trace", "Large pages inserted", "Hit fraction"}, rows)
}
