package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/replay"
	"repro/internal/ssd"
)

// Aged-device scenario: a device that has already spent most of its P/E
// budget before the trace starts. Blocks are pre-worn near retirement
// (flash.Array.PreWear via fault.Config.PrewornErases) and the grown-defect
// rate is elevated, so wear detection retires a realistic population of
// blocks mid-replay — the regime where GC scheduling, retirement
// accounting and the read-only degradation path all earn their keep.

// AgedPrewornErases is the preset per-block erase seed: 90% of the QLC
// P/E budget the paper quotes (ssd.DefaultPELimit).
const AgedPrewornErases = ssd.DefaultPELimit * 9 / 10

// AgedPrewornJitter spreads the preset wear across blocks.
const AgedPrewornJitter = ssd.DefaultPELimit / 10

// AgedGrownBadProb is the preset elevated grown-defect rate per erase.
const AgedGrownBadProb = 2e-3

// AgedFaults merges the aged-device preset into a base fault config:
// pre-worn blocks, an elevated grown-defect rate, and the invariant
// checker. Fields the base already sets are kept, so an explicit -faults
// spec always wins over the preset.
func AgedFaults(base fault.Config) fault.Config {
	c := base
	if c.PrewornErases == 0 {
		c.PrewornErases = AgedPrewornErases
	}
	if c.PrewornJitter == 0 {
		c.PrewornJitter = AgedPrewornJitter
	}
	if c.GrownBadProb == 0 {
		c.GrownBadProb = AgedGrownBadProb
	}
	c.CheckInvariants = true
	return c
}

// AgedRow is one policy's outcome on the aged device.
type AgedRow struct {
	Trace           string
	Policy          string
	RetiredBlocks   int64
	GrownBad        int64
	EraseFails      int64
	Degraded        bool
	LifeConsumed    float64
	MeanResponseMs  float64
	P99Ms           float64
	InvariantChecks int64
}

// AgedDevice replays one trace across the paper's policies on the aged
// device and reports retirement accounting, degradation and latency per
// policy. The runner's fault config seeds the preset (AgedFaults), so an
// explicit Faults.Seed picks the defect sequence deterministically.
func (r *Runner) AgedDevice(traceName string, cacheMB int) ([]AgedRow, error) {
	t, err := r.Trace(traceName)
	if err != nil {
		return nil, err
	}
	fcfg := AgedFaults(r.cfg.Faults)
	var rows []AgedRow
	for _, factory := range r.PaperPolicies() {
		p := ssd.ScaledParams(r.cfg.DeviceDivisor)
		// Age the logical space too: GC must actually run for retirement
		// to matter, so default to a nearly full device.
		p.Precondition = 0.9
		if r.cfg.DevicePrecondition > 0 {
			p.Precondition = r.cfg.DevicePrecondition
		}
		p.Faults = fcfg
		dev, err := ssd.New(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: aged device: %w", err)
		}
		if r.cfg.Tap != nil {
			dev.SetTap(r.cfg.Tap)
		}
		var opts replay.Options
		opts.ApplyFaults(fcfg)
		opts.BackPressureDepth = r.cfg.BackPressureDepth
		opts.Observers = append(opts.Observers, r.cfg.Observers...)
		m, err := replay.Run(t, factory.New(cacheMB*PagesPerMB), dev, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AgedRow{
			Trace:           traceName,
			Policy:          factory.Name,
			RetiredBlocks:   m.Device.RetiredBlocks,
			GrownBad:        m.Device.GrownBadBlocks,
			EraseFails:      m.Device.InjectedEraseFails,
			Degraded:        m.Degraded,
			LifeConsumed:    m.Endurance.LifeConsumed,
			MeanResponseMs:  m.Response.Mean() / 1e6,
			P99Ms:           m.ResponseP99.Value() / 1e6,
			InvariantChecks: m.Device.InvariantChecks,
		})
	}
	return rows, nil
}

// RenderAged renders the aged-device table.
func RenderAged(rows []AgedRow) string {
	header := []string{"Trace", "Policy", "Retired", "GrownBad", "EraseFails", "Degraded", "Life", "Mean ms", "P99 ms", "InvChecks"}
	var data [][]string
	for _, row := range rows {
		data = append(data, []string{
			row.Trace,
			row.Policy,
			fmt.Sprintf("%d", row.RetiredBlocks),
			fmt.Sprintf("%d", row.GrownBad),
			fmt.Sprintf("%d", row.EraseFails),
			fmt.Sprintf("%v", row.Degraded),
			fmt.Sprintf("%.2f", row.LifeConsumed),
			fmt.Sprintf("%.3f", row.MeanResponseMs),
			fmt.Sprintf("%.3f", row.P99Ms),
			fmt.Sprintf("%d", row.InvariantChecks),
		})
	}
	return renderTable("Aged device (pre-worn blocks, elevated grown defects)", header, data)
}
