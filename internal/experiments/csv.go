package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CSV exports for plotting pipelines. Each function returns rows (header
// first); WriteCSV serializes them.

// CSVFigure8 renders the grid's absolute mean response times (ms).
func (g *GridResult) CSVFigure8() [][]string {
	rows := [][]string{append([]string{"trace", "cache_mb"}, g.Policies...)}
	for _, tr := range g.Traces {
		for _, mb := range g.CacheMBs {
			row := []string{tr, strconv.Itoa(mb)}
			for _, pol := range g.Policies {
				m := g.Find(tr, pol, mb)
				if m == nil {
					row = append(row, "")
					continue
				}
				row = append(row, strconv.FormatFloat(m.Response.Mean()/1e6, 'f', 6, 64))
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// CSVFigure9 renders the grid's absolute hit ratios.
func (g *GridResult) CSVFigure9() [][]string {
	rows := [][]string{append([]string{"trace", "cache_mb"}, g.Policies...)}
	for _, tr := range g.Traces {
		for _, mb := range g.CacheMBs {
			row := []string{tr, strconv.Itoa(mb)}
			for _, pol := range g.Policies {
				m := g.Find(tr, pol, mb)
				if m == nil {
					row = append(row, "")
					continue
				}
				row = append(row, strconv.FormatFloat(m.HitRatio(), 'f', 6, 64))
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// CSVFigure13 renders one trace's IRL/SRL/DRL occupancy series.
func CSVFigure13(row Figure13Row) [][]string {
	rows := [][]string{{"sample", "IRL", "SRL", "DRL"}}
	n := len(row.Series["IRL"])
	for i := 0; i < n; i++ {
		r := []string{strconv.Itoa(i)}
		for _, list := range []string{"IRL", "SRL", "DRL"} {
			s := row.Series[list]
			if i < len(s) {
				r = append(r, strconv.FormatFloat(s[i], 'f', 0, 64))
			} else {
				r = append(r, "0")
			}
		}
		rows = append(rows, r)
	}
	return rows
}

// WriteCSV writes comma-joined rows to dir/name, creating dir as needed.
// Cells containing commas, quotes or newlines are quoted per RFC 4180;
// the exporters above only emit plain tokens, but user-supplied trace
// names flow through.
func WriteCSV(dir, name string, rows [][]string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func csvEscape(cell string) string {
	if !strings.ContainsAny(cell, ",\"\n") {
		return cell
	}
	return fmt.Sprintf("%q", cell)
}
