// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment returns a structured result plus a
// rendered text table whose rows mirror what the paper plots; EXPERIMENTS.md
// records the measured output next to the paper's reported numbers.
//
// The default configuration runs the paper's grid — six workloads × four
// policies (LRU, BPLRU, VBBMS, Req-block) × three cache sizes (16/32/64 MB)
// — on a geometry-preserving scaled device (see flash.ScaledParams) with
// workloads scaled to 1/50 of the original trace lengths. Pass a Config
// with Scale=1 and DeviceDivisor=1 for a paper-scale run.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes the experiment harness.
type Config struct {
	// Scale multiplies the workload profiles' request counts (profiles are
	// already 1/10 of the original traces; the default 0.2 yields 1/50).
	Scale float64
	// DeviceDivisor shrinks the flash array geometry-preservingly.
	DeviceDivisor int
	// DevicePrecondition is the fraction of logical space pre-mapped
	// before replay (0 = the ssd default of 0.5). Endurance runs want
	// 0.9+ so garbage collection actually fires.
	DevicePrecondition float64
	// CacheSizesMB are the evaluated data-cache sizes (Table 1: 16/32/64).
	CacheSizesMB []int
	// Delta is Req-block's small-request bound (§4.2.1 selects 5).
	Delta int
	// SeriesInterval is the Fig. 13 sampling interval in requests.
	SeriesInterval int64
	// IncludeExtras adds the related-work policies (FIFO, LFU, CFLRU, FAB)
	// to the grid beyond the paper's four.
	IncludeExtras bool
	// Traces restricts the workload set (nil = all six).
	Traces []string
	// SeedOffset perturbs every workload's generator seed, producing a
	// different instance of the same statistical workload (replications).
	SeedOffset int64
	// QueueDepth switches the grid to closed-loop replay (see
	// replay.Options.QueueDepth). Zero keeps the paper's open loop.
	QueueDepth int
	// BackPressureDepth bounds every device's destage backlog (see
	// replay.Options.BackPressureDepth). Zero keeps admissions unthrottled
	// and the grid bit-identical to earlier revisions.
	BackPressureDepth int
	// Faults enables deterministic fault injection on every device the
	// grid builds (see internal/fault). The zero value keeps the grid
	// fault-free and bit-identical to earlier revisions.
	Faults fault.Config
	// Observers attaches extra measurement observers to every replay the
	// runner performs (telemetry, progress — see replay.Options.Observers).
	// Observers accumulate across the whole grid: cmd/experiments uses this
	// to serve live /metrics over a multi-cell run.
	Observers []sim.Observer
	// Tap attaches a flash timing tap to every device the runner builds
	// (GC pause and program/read/erase histograms — see ftl.Tap).
	Tap ftl.Tap
}

// DefaultConfig returns the configuration used throughout EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Scale:          0.2,
		DeviceDivisor:  16,
		CacheSizesMB:   []int{16, 32, 64},
		Delta:          core.DefaultDelta,
		SeriesInterval: 10000,
	}
}

// PagesPerMB is the page count of one MiB of 4 KB pages.
const PagesPerMB = 256

// Runner caches generated traces across experiments for one Config.
type Runner struct {
	cfg    Config
	traces map[string]*trace.Trace
	stats  map[string]trace.Stats
}

// NewRunner builds a Runner; zero-valued Config fields take defaults.
func NewRunner(cfg Config) *Runner {
	def := DefaultConfig()
	if cfg.Scale <= 0 {
		cfg.Scale = def.Scale
	}
	if cfg.DeviceDivisor < 1 {
		cfg.DeviceDivisor = def.DeviceDivisor
	}
	if len(cfg.CacheSizesMB) == 0 {
		cfg.CacheSizesMB = def.CacheSizesMB
	}
	if cfg.Delta < 1 {
		cfg.Delta = def.Delta
	}
	if cfg.SeriesInterval <= 0 {
		cfg.SeriesInterval = def.SeriesInterval
	}
	return &Runner{
		cfg:    cfg,
		traces: make(map[string]*trace.Trace),
		stats:  make(map[string]trace.Stats),
	}
}

// Config returns the resolved configuration.
func (r *Runner) Config() Config { return r.cfg }

// Profiles returns the workload profiles in evaluation order, honoring any
// Traces restriction.
func (r *Runner) Profiles() []workload.Profile {
	all := workload.All()
	if len(r.cfg.Traces) == 0 {
		return all
	}
	var out []workload.Profile
	for _, name := range r.cfg.Traces {
		if p, ok := workload.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// Trace returns (generating and caching) the synthetic trace for a profile.
func (r *Runner) Trace(name string) (*trace.Trace, error) {
	if t, ok := r.traces[name]; ok {
		return t, nil
	}
	p, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown trace %q", name)
	}
	t, err := workload.Generate(p, workload.Options{Scale: r.cfg.Scale, SeedOffset: r.cfg.SeedOffset})
	if err != nil {
		return nil, err
	}
	r.traces[name] = t
	return t, nil
}

// TraceStats returns cached Table 2 statistics for a trace.
func (r *Runner) TraceStats(name string) (trace.Stats, error) {
	if s, ok := r.stats[name]; ok {
		return s, nil
	}
	t, err := r.Trace(name)
	if err != nil {
		return trace.Stats{}, err
	}
	s := trace.ComputeStats(t, 4096)
	r.stats[name] = s
	return s, nil
}

// Device builds a fresh simulated SSD for one replay. Every device gets the
// same fault configuration (and so the same injected-fault sequence for the
// same operation stream), keeping grid cells comparable.
func (r *Runner) Device() (*ssd.Device, error) {
	p := ssd.ScaledParams(r.cfg.DeviceDivisor)
	if r.cfg.DevicePrecondition > 0 {
		p.Precondition = r.cfg.DevicePrecondition
	}
	p.Faults = r.cfg.Faults
	dev, err := ssd.New(p)
	if err != nil {
		return nil, err
	}
	if r.cfg.Tap != nil {
		dev.SetTap(r.cfg.Tap)
	}
	return dev, nil
}

// PaperPolicies returns the paper's four-policy comparison set, ordered as
// the figures plot them.
func (r *Runner) PaperPolicies() []cache.Factory {
	pagesPerBlock := ssd.ScaledParams(r.cfg.DeviceDivisor).Flash.PagesPerBlock
	delta := r.cfg.Delta
	fs := []cache.Factory{
		{Name: "LRU", New: func(c int) cache.Policy { return cache.NewLRU(c) }},
		{Name: "BPLRU", New: func(c int) cache.Policy { return cache.NewBPLRU(c, pagesPerBlock) }},
		{Name: "VBBMS", New: func(c int) cache.Policy { return cache.NewVBBMS(c) }},
		{Name: "Req-block", New: func(c int) cache.Policy {
			return core.NewConfig(c, core.Config{Delta: delta, Merge: true, Recency: true})
		}},
	}
	if r.cfg.IncludeExtras {
		fs = append(fs,
			cache.Factory{Name: "FIFO", New: func(c int) cache.Policy { return cache.NewFIFO(c) }},
			cache.Factory{Name: "LFU", New: func(c int) cache.Policy { return cache.NewLFU(c) }},
			cache.Factory{Name: "CFLRU", New: func(c int) cache.Policy { return cache.NewCFLRU(c) }},
			cache.Factory{Name: "FAB", New: func(c int) cache.Policy { return cache.NewFAB(c, pagesPerBlock) }},
			cache.Factory{Name: "PUD-LRU", New: func(c int) cache.Policy { return cache.NewPUDLRU(c, pagesPerBlock) }},
			cache.Factory{Name: "ECR", New: func(c int) cache.Policy {
				return cache.NewECR(c, ssd.ScaledParams(r.cfg.DeviceDivisor).Flash.Channels)
			}},
			cache.Factory{Name: "RB-adaptive", New: func(c int) cache.Policy {
				return core.NewAdaptive(c, 0)
			}},
		)
	}
	return fs
}

// Replay runs one (trace, policy, cacheMB) cell.
func (r *Runner) Replay(traceName string, factory cache.Factory, cacheMB int, opts replay.Options) (*replay.Metrics, error) {
	t, err := r.Trace(traceName)
	if err != nil {
		return nil, err
	}
	dev, err := r.Device()
	if err != nil {
		return nil, err
	}
	pol := factory.New(cacheMB * PagesPerMB)
	opts.ApplyFaults(r.cfg.Faults)
	if opts.BackPressureDepth == 0 {
		opts.BackPressureDepth = r.cfg.BackPressureDepth
	}
	opts.Observers = append(opts.Observers, r.cfg.Observers...)
	return replay.Run(t, pol, dev, opts)
}

// renderTable renders an aligned text table: header row then data rows.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// sortedKeys returns the sorted keys of a string map (deterministic render).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
