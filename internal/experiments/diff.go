package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Delta is one metric's change between two reports.
type Delta struct {
	// Key identifies the metric ("fig9 src1_2 16MB Req-block", ...).
	Key string
	// Old and New are the two values.
	Old, New float64
}

// Rel returns the relative change (new−old)/old, or +Inf when old is 0 and
// new is not.
func (d Delta) Rel() float64 {
	if d.Old == 0 {
		if d.New == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (d.New - d.Old) / d.Old
}

// DiffReports compares the headline per-cell metrics of two reports —
// Fig. 8 normalized response times and Fig. 9 hit ratios — and returns
// every metric whose relative change exceeds threshold, sorted by
// magnitude. It is the regression gate for policy or simulator changes:
// run `cmd/experiments -json` before and after, then diff.
func DiffReports(old, new *Report, threshold float64) []Delta {
	var out []Delta
	check := func(key string, o, n float64) {
		d := Delta{Key: key, Old: o, New: n}
		if r := math.Abs(d.Rel()); r > threshold {
			out = append(out, d)
		}
	}
	// Fig. 8: normalized response per cell.
	oldRows := index8(old.Figure8)
	for _, row := range new.Figure8 {
		prev, ok := oldRows[fmt.Sprintf("%s/%d", row.Trace, row.CacheMB)]
		if !ok {
			continue
		}
		for pol, v := range row.Normalized {
			check(fmt.Sprintf("fig8 %s %dMB %s", row.Trace, row.CacheMB, pol),
				prev.Normalized[pol], v)
		}
	}
	// Fig. 9: absolute Req-block hit ratio + normalized per policy.
	oldRows9 := index9(old.Figure9)
	for _, row := range new.Figure9 {
		prev, ok := oldRows9[fmt.Sprintf("%s/%d", row.Trace, row.CacheMB)]
		if !ok {
			continue
		}
		check(fmt.Sprintf("fig9 %s %dMB Req-block-abs", row.Trace, row.CacheMB),
			prev.ReqBlockHitRatio, row.ReqBlockHitRatio)
		for pol, v := range row.Normalized {
			check(fmt.Sprintf("fig9 %s %dMB %s", row.Trace, row.CacheMB, pol),
				prev.Normalized[pol], v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := math.Abs(out[i].Rel()), math.Abs(out[j].Rel())
		if ri != rj {
			return ri > rj
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// RenderDiff formats deltas for the terminal.
func RenderDiff(deltas []Delta) string {
	if len(deltas) == 0 {
		return "no metric moved beyond the threshold\n"
	}
	var b strings.Builder
	for _, d := range deltas {
		fmt.Fprintf(&b, "%-40s %8.4f -> %8.4f  (%+.1f%%)\n", d.Key, d.Old, d.New, d.Rel()*100)
	}
	return b.String()
}

func index8(rows []Figure8Row) map[string]Figure8Row {
	m := make(map[string]Figure8Row, len(rows))
	for _, r := range rows {
		m[fmt.Sprintf("%s/%d", r.Trace, r.CacheMB)] = r
	}
	return m
}

func index9(rows []Figure9Row) map[string]Figure9Row {
	m := make(map[string]Figure9Row, len(rows))
	for _, r := range rows {
		m[fmt.Sprintf("%s/%d", r.Trace, r.CacheMB)] = r
	}
	return m
}
