package experiments

import (
	"strings"
	"testing"
)

// testConfig runs the harness at a small scale so `go test` stays fast;
// shape assertions hold at this scale (the full-scale numbers are produced
// by cmd/experiments and recorded in EXPERIMENTS.md).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	return cfg
}

func TestRunnerDefaults(t *testing.T) {
	r := NewRunner(Config{})
	cfg := r.Config()
	if cfg.Scale != 0.2 || cfg.DeviceDivisor != 16 || len(cfg.CacheSizesMB) != 3 || cfg.Delta != 5 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestRunnerTraceCaching(t *testing.T) {
	r := NewRunner(testConfig())
	a, err := r.Trace("ts_0")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Trace("ts_0")
	if a != b {
		t.Fatal("trace not cached")
	}
	if _, err := r.Trace("bogus"); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestRunnerTraceRestriction(t *testing.T) {
	cfg := testConfig()
	cfg.Traces = []string{"ts_0", "hm_1"}
	r := NewRunner(cfg)
	ps := r.Profiles()
	if len(ps) != 2 || ps[0].Name != "ts_0" || ps[1].Name != "hm_1" {
		t.Fatalf("restriction failed: %v", ps)
	}
}

func TestTable1Renders(t *testing.T) {
	r := NewRunner(testConfig())
	out := r.Table1()
	for _, want := range []string{"128 GiB", "Page level", "2 ms", "15 ms", "10%", "16/32/64MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2MatchesProfiles(t *testing.T) {
	cfg := testConfig()
	cfg.Traces = []string{"ts_0", "src1_2"}
	r := NewRunner(cfg)
	rows, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Requests == 0 || row.WriteRatio == 0 {
			t.Fatalf("empty stats: %+v", row)
		}
		// Write ratio within 5 points of the paper's.
		if d := row.WriteRatio - row.PaperWriteRatio; d > 0.05 || d < -0.05 {
			t.Errorf("%s write ratio %.3f vs paper %.3f", row.Trace, row.WriteRatio, row.PaperWriteRatio)
		}
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "ts_0") || !strings.Contains(out, "src1_2") {
		t.Fatal("render missing traces")
	}
}

// TestFigure2Shape: the motivation result — small requests contribute a far
// larger share of hits than of inserts.
func TestFigure2Shape(t *testing.T) {
	cfg := testConfig()
	cfg.Traces = []string{"src1_2", "proj_0"}
	r := NewRunner(cfg)
	results, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.SmallHitShare <= res.SmallInsertShare {
			t.Errorf("%s: hit share %.2f ≤ insert share %.2f — motivation shape missing",
				res.Trace, res.SmallHitShare, res.SmallInsertShare)
		}
		if res.SmallHitShare < 0.5 {
			t.Errorf("%s: small-request hit share only %.2f", res.Trace, res.SmallHitShare)
		}
	}
	if out := RenderFigure2(results); !strings.Contains(out, "src1_2") {
		t.Fatal("render broken")
	}
}

// TestFigure3Shape: only a minority of large-request pages get re-accessed.
func TestFigure3Shape(t *testing.T) {
	cfg := testConfig()
	cfg.Traces = []string{"src1_2", "proj_0", "lun_1"}
	r := NewRunner(cfg)
	results, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.LargeInserted == 0 {
			t.Fatalf("%s: no large pages tracked", res.Trace)
		}
		if res.LargeHitFraction > 0.5 {
			t.Errorf("%s: large-page hit fraction %.2f — should be a minority",
				res.Trace, res.LargeHitFraction)
		}
	}
	if out := RenderFigure3(results); len(out) == 0 {
		t.Fatal("render broken")
	}
}

// TestGridShapes runs the full (restricted) grid and checks the paper's
// headline orderings.
func TestGridShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("grid replay is seconds-long")
	}
	cfg := testConfig()
	cfg.Traces = []string{"src1_2", "ts_0", "proj_0"}
	cfg.CacheSizesMB = []int{16, 32}
	r := NewRunner(cfg)
	g, err := r.RunGrid()
	if err != nil {
		t.Fatal(err)
	}

	// Fig. 9 shape: Req-block achieves the best hit ratio on average, and
	// beats LRU clearly on the mixed small/large traces.
	var lruSum, rbSum float64
	var n int
	for _, row := range g.Figure9() {
		lruSum += row.Normalized["LRU"]
		rbSum += row.Normalized["Req-block"]
		n++
	}
	if n == 0 {
		t.Fatal("no Figure 9 rows")
	}
	if lruSum/float64(n) >= 1.0 {
		t.Errorf("LRU mean normalized hit ratio %.3f — Req-block should lead", lruSum/float64(n))
	}

	// Fig. 8 shape: Req-block's mean normalized response beats LRU (< 1).
	var respSum float64
	n = 0
	for _, row := range g.Figure8() {
		respSum += row.Normalized["Req-block"]
		n++
	}
	if respSum/float64(n) >= 1.0 {
		t.Errorf("Req-block mean normalized response %.3f ≥ 1 — should beat LRU", respSum/float64(n))
	}

	// Fig. 10 shape: LRU evicts single pages; BPLRU the largest batches;
	// Req-block in between BPLRU and VBBMS.
	for _, row := range g.Figure10(16) {
		if row.MeanPages["LRU"] != 1 {
			t.Errorf("%s: LRU eviction batch %.2f, want 1", row.Trace, row.MeanPages["LRU"])
		}
		if row.MeanPages["BPLRU"] < row.MeanPages["Req-block"] {
			t.Errorf("%s: BPLRU batch %.1f < Req-block %.1f", row.Trace,
				row.MeanPages["BPLRU"], row.MeanPages["Req-block"])
		}
		if row.MeanPages["Req-block"] < row.MeanPages["VBBMS"] {
			t.Errorf("%s: Req-block batch %.1f < VBBMS %.1f", row.Trace,
				row.MeanPages["Req-block"], row.MeanPages["VBBMS"])
		}
	}

	// Fig. 11 shape: Req-block does not write more than LRU on average.
	var lruW, rbW int64
	for _, row := range g.Figure11(16) {
		lruW += row.Writes["LRU"]
		rbW += row.Writes["Req-block"]
	}
	if rbW > lruW {
		t.Errorf("Req-block flash writes %d > LRU %d", rbW, lruW)
	}

	// Fig. 12 shape: all metadata overheads are below 2%% of the cache.
	for _, row := range g.Figure12() {
		if row.PercentOfCache > 2.0 {
			t.Errorf("%s@%dMB: space overhead %.2f%% of cache", row.Policy, row.CacheMB, row.PercentOfCache)
		}
	}

	// Fig. 13 shape: DRL holds a small share; SRL+IRL dominate.
	for _, row := range g.Figure13(0) {
		if row.MeanShare["DRL"] > 0.4 {
			t.Errorf("%s: DRL share %.2f — paper says DRL stays small", row.Trace, row.MeanShare["DRL"])
		}
	}

	// Renders must not be empty.
	for _, s := range []string{
		RenderFigure8(g.Figure8(), g.Policies),
		RenderFigure9(g.Figure9(), g.Policies),
		RenderFigure10(g.Figure10(0), g.Policies),
		RenderFigure11(g.Figure11(0), g.Policies),
		RenderFigure12(g.Figure12()),
		RenderFigure13(g.Figure13(0)),
	} {
		if len(s) == 0 {
			t.Fatal("empty render")
		}
	}
}

// TestEnduranceExtension: on a nearly full device GC fires and the
// endurance table reports write amplification > 1 with consistent erases.
func TestEnduranceExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("grid replay is seconds-long")
	}
	cfg := testConfig()
	cfg.Traces = []string{"proj_0"}
	cfg.CacheSizesMB = []int{16}
	cfg.DevicePrecondition = 0.95
	cfg.DeviceDivisor = 64
	r := NewRunner(cfg)
	g, err := r.RunGrid()
	if err != nil {
		t.Fatal(err)
	}
	rows := g.EnduranceTable(16)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	for _, pol := range g.Policies {
		if row.WriteAmp[pol] < 1 {
			t.Errorf("%s: WA %.3f < 1", pol, row.WriteAmp[pol])
		}
		if row.WriteAmp[pol] > 1.01 && row.Erases[pol] == 0 {
			t.Errorf("%s: WA %.3f but no erases", pol, row.WriteAmp[pol])
		}
	}
	if out := RenderEndurance(rows, g.Policies); len(out) == 0 {
		t.Fatal("empty render")
	}
}

// TestFigure7Shape: δ=5 should not be worse than δ=1 for hit ratio on the
// mixed traces (the paper's reason for choosing it).
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep is seconds-long")
	}
	cfg := testConfig()
	cfg.Traces = []string{"src1_2"}
	r := NewRunner(cfg)
	rows, err := r.Figure7([]int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].HitRatioNorm) != 3 {
		t.Fatalf("rows malformed: %+v", rows)
	}
	if rows[0].HitRatioNorm[0] != 1.0 {
		t.Fatal("normalization broken")
	}
	if rows[0].HitRatioNorm[2] < 0.95 {
		t.Errorf("δ=5 hit ratio %.3f of δ=1 — should be competitive", rows[0].HitRatioNorm[2])
	}
	if out := RenderFigure7(rows); !strings.Contains(out, "δ=5") {
		t.Fatal("render broken")
	}
}
