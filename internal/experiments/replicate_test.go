package experiments

import (
	"strings"
	"testing"
)

func TestReplicatedGridAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated grid is seconds-long")
	}
	cfg := testConfig()
	cfg.Traces = []string{"ts_0"}
	cfg.CacheSizesMB = []int{16}
	cells, err := ReplicatedGrid(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // 1 trace × 1 cache × 4 policies
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Seeds != 3 {
			t.Fatalf("%s: seeds = %d", c.Policy, c.Seeds)
		}
		if c.HitMean <= 0 || c.HitMean > 1 {
			t.Fatalf("%s: hit mean %v", c.Policy, c.HitMean)
		}
		if c.HitStd < 0 || c.RespStd < 0 {
			t.Fatalf("%s: negative std", c.Policy)
		}
		// Different seeds produce different workload instances, so some
		// variance must exist (deterministic per seed, varying across).
		if c.HitStd == 0 && c.RespStd == 0 {
			t.Fatalf("%s: zero variance across distinct seeds", c.Policy)
		}
	}
	out := RenderReplicated(cells)
	if !strings.Contains(out, "±") || !strings.Contains(out, "ts_0") {
		t.Fatalf("render: %s", out)
	}
}

func TestReplicatedGridSingleSeedNoVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is seconds-long")
	}
	cfg := testConfig()
	cfg.Traces = []string{"ts_0"}
	cfg.CacheSizesMB = []int{16}
	cells, err := ReplicatedGrid(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.HitStd != 0 || c.Seeds != 1 {
			t.Fatalf("single seed must have zero std: %+v", c)
		}
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 6})
	if m != 4 {
		t.Fatalf("mean = %v", m)
	}
	if s != 2 { // sample std of {2,4,6}
		t.Fatalf("std = %v", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty input")
	}
	if _, s := meanStd([]float64{5}); s != 0 {
		t.Fatal("single sample std must be 0")
	}
}
