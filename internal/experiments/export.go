package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report bundles every experiment's structured results for machine
// consumption (plotting scripts, regression tracking). Fields are nil when
// the corresponding experiment was not run.
type Report struct {
	// Config echoes the harness configuration that produced the report.
	Config Config `json:"config"`

	Table2  []Table2Row      `json:"table2,omitempty"`
	Figure2 []Figure2Result  `json:"figure2,omitempty"`
	Figure3 []Figure3Result  `json:"figure3,omitempty"`
	Figure7 []Figure7Row     `json:"figure7,omitempty"`
	MRC     []MRCRow         `json:"mrc,omitempty"`
	Figure8 []Figure8Row     `json:"figure8,omitempty"`
	Figure9 []Figure9Row     `json:"figure9,omitempty"`
	Fig10   []Figure10Row    `json:"figure10,omitempty"`
	Fig11   []Figure11Row    `json:"figure11,omitempty"`
	Fig12   []Figure12Row    `json:"figure12,omitempty"`
	Fig13   []Figure13Row    `json:"figure13,omitempty"`
	Endur   []EnduranceRow   `json:"endurance,omitempty"`
	Tail    []TailRow        `json:"tail,omitempty"`
	Par     []ParallelismRow `json:"parallelism,omitempty"`
}

// BuildReport runs every experiment (reusing one grid) and assembles the
// full structured report.
func (r *Runner) BuildReport() (*Report, error) {
	rep := &Report{Config: r.cfg}
	var err error
	if rep.Table2, err = r.Table2(); err != nil {
		return nil, fmt.Errorf("report: table2: %w", err)
	}
	if rep.Figure2, err = r.Figure2(); err != nil {
		return nil, fmt.Errorf("report: figure2: %w", err)
	}
	if rep.Figure3, err = r.Figure3(); err != nil {
		return nil, fmt.Errorf("report: figure3: %w", err)
	}
	if rep.Figure7, err = r.Figure7(nil); err != nil {
		return nil, fmt.Errorf("report: figure7: %w", err)
	}
	if rep.MRC, err = r.MRC(); err != nil {
		return nil, fmt.Errorf("report: mrc: %w", err)
	}
	g, err := r.RunGrid()
	if err != nil {
		return nil, fmt.Errorf("report: grid: %w", err)
	}
	rep.Figure8 = g.Figure8()
	rep.Figure9 = g.Figure9()
	rep.Fig10 = g.Figure10(0)
	rep.Fig11 = g.Figure11(0)
	rep.Fig12 = g.Figure12()
	rep.Fig13 = g.Figure13(0)
	rep.Endur = g.EnduranceTable(0)
	rep.Tail = g.TailLatency(0)
	rep.Par = g.Parallelism(0)
	return rep, nil
}

// WriteJSON serializes the report, indented.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("report: encode: %w", err)
	}
	return nil
}

// ReadReport parses a serialized report (regression-diff tooling).
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return &rep, nil
}
