package experiments

import "fmt"

// Summary condenses the grid into the headline numbers the paper states in
// its abstract and §4.2: average response-time reduction and hit-ratio
// improvement of Req-block over each baseline, and how many grid cells
// Req-block wins. This is the quantitative form of EXPERIMENTS.md's
// scoreboard, computed rather than transcribed.
type Summary struct {
	// Baselines lists the compared policies (everything except Req-block).
	Baselines []string
	// RespReduction maps baseline → mean fractional response-time
	// reduction achieved by Req-block (positive = Req-block faster),
	// averaged over all (trace, cache) cells.
	RespReduction map[string]float64
	// HitImprovement maps baseline → mean fractional hit-ratio
	// improvement of Req-block over the baseline.
	HitImprovement map[string]float64
	// CellsWonResp / CellsWonHit map baseline → cells where Req-block is
	// strictly better, out of Cells.
	CellsWonResp, CellsWonHit map[string]int
	// Cells is the number of (trace, cache) cells compared.
	Cells int
}

// Summarize computes the scoreboard from a grid run.
func (g *GridResult) Summarize() Summary {
	s := Summary{
		RespReduction:  map[string]float64{},
		HitImprovement: map[string]float64{},
		CellsWonResp:   map[string]int{},
		CellsWonHit:    map[string]int{},
	}
	for _, pol := range g.Policies {
		if pol != "Req-block" {
			s.Baselines = append(s.Baselines, pol)
		}
	}
	for _, tr := range g.Traces {
		for _, mb := range g.CacheMBs {
			rb := g.Find(tr, "Req-block", mb)
			if rb == nil {
				continue
			}
			s.Cells++
			for _, pol := range s.Baselines {
				m := g.Find(tr, pol, mb)
				if m == nil {
					continue
				}
				if base := m.Response.Mean(); base > 0 {
					red := 1 - rb.Response.Mean()/base
					s.RespReduction[pol] += red
					if red > 0 {
						s.CellsWonResp[pol]++
					}
				}
				if base := m.HitRatio(); base > 0 {
					imp := rb.HitRatio()/base - 1
					s.HitImprovement[pol] += imp
					if imp > 0 {
						s.CellsWonHit[pol]++
					}
				}
			}
		}
	}
	if s.Cells > 0 {
		for _, pol := range s.Baselines {
			s.RespReduction[pol] /= float64(s.Cells)
			s.HitImprovement[pol] /= float64(s.Cells)
		}
	}
	return s
}

// RenderSummary renders the scoreboard with the paper's reported averages
// alongside, where it states them (§4.2.2: response −23.8/−11.3/−7.7% vs
// LRU/BPLRU/VBBMS; §4.2.3: hits +42.9/+23.6/+4.1%).
func RenderSummary(s Summary) string {
	paperResp := map[string]float64{"LRU": 0.238, "BPLRU": 0.113, "VBBMS": 0.077}
	paperHit := map[string]float64{"LRU": 0.429, "BPLRU": 0.236, "VBBMS": 0.041}
	var out [][]string
	for _, pol := range s.Baselines {
		respPaper, hitPaper := "—", "—"
		if v, ok := paperResp[pol]; ok {
			respPaper = fmt.Sprintf("%.1f%%", v*100)
		}
		if v, ok := paperHit[pol]; ok {
			hitPaper = fmt.Sprintf("%.1f%%", v*100)
		}
		out = append(out, []string{
			pol,
			fmt.Sprintf("%.1f%%", s.RespReduction[pol]*100),
			respPaper,
			fmt.Sprintf("%d/%d", s.CellsWonResp[pol], s.Cells),
			fmt.Sprintf("%.1f%%", s.HitImprovement[pol]*100),
			hitPaper,
			fmt.Sprintf("%d/%d", s.CellsWonHit[pol], s.Cells),
		})
	}
	return renderTable("Summary: Req-block vs baselines — measured (paper)",
		[]string{"Baseline", "resp −", "(paper)", "cells", "hits +", "(paper)", "cells"}, out)
}
