package experiments

import "fmt"

// ParallelismRow quantifies §4.2.4's argument per policy: how evenly the
// flush traffic spreads over the channel buses. Striped batch evictions
// should be near-balanced (imbalance ≈ 1); BPLRU's block-bound flushes
// rotate between channels but serialize within each flush.
type ParallelismRow struct {
	Trace   string
	CacheMB int
	// MeanChannelPct maps policy → mean bus occupancy (% of trace time).
	MeanChannelPct map[string]float64
	// Imbalance maps policy → busiest/mean channel occupancy.
	Imbalance map[string]float64
	// MaxChipPct maps policy → busiest die occupancy (% of trace time).
	MaxChipPct map[string]float64
}

// Parallelism derives the utilization comparison from a grid run at the
// given cache size (0 = middle configured size).
func (g *GridResult) Parallelism(cacheMB int) []ParallelismRow {
	if cacheMB == 0 {
		cacheMB = g.CacheMBs[len(g.CacheMBs)/2]
	}
	var rows []ParallelismRow
	for _, tr := range g.Traces {
		row := ParallelismRow{
			Trace: tr, CacheMB: cacheMB,
			MeanChannelPct: map[string]float64{},
			Imbalance:      map[string]float64{},
			MaxChipPct:     map[string]float64{},
		}
		for _, pol := range g.Policies {
			if m := g.Find(tr, pol, cacheMB); m != nil {
				row.MeanChannelPct[pol] = m.Utilization.MeanChannel * 100
				row.Imbalance[pol] = m.Utilization.ChannelImbalance
				row.MaxChipPct[pol] = m.Utilization.MaxChip * 100
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderParallelism renders the utilization extension table.
func RenderParallelism(rows []ParallelismRow, policies []string) string {
	if len(rows) == 0 {
		return ""
	}
	header := []string{"Trace", "Metric"}
	header = append(header, policies...)
	var out [][]string
	for _, row := range rows {
		mean := []string{row.Trace, "chan busy %"}
		imb := []string{row.Trace, "imbalance"}
		chip := []string{row.Trace, "max die %"}
		for _, pol := range policies {
			mean = append(mean, fmt.Sprintf("%.2f", row.MeanChannelPct[pol]))
			imb = append(imb, fmt.Sprintf("%.2f", row.Imbalance[pol]))
			chip = append(chip, fmt.Sprintf("%.2f", row.MaxChipPct[pol]))
		}
		out = append(out, mean, imb, chip)
	}
	return renderTable(
		fmt.Sprintf("Extension: channel/die utilization (%dMB cache)", rows[0].CacheMB),
		header, out)
}
