package experiments

import (
	"math"
	"strings"
	"testing"
)

func sampleReport(hit float64) *Report {
	return &Report{
		Figure8: []Figure8Row{{
			Trace: "t1", CacheMB: 16,
			Normalized: map[string]float64{"LRU": 1.0, "Req-block": 0.9},
		}},
		Figure9: []Figure9Row{{
			Trace: "t1", CacheMB: 16, ReqBlockHitRatio: hit,
			Normalized: map[string]float64{"LRU": 0.95},
		}},
	}
}

func TestDiffReportsNoChange(t *testing.T) {
	a, b := sampleReport(0.4), sampleReport(0.4)
	if ds := DiffReports(a, b, 0.01); len(ds) != 0 {
		t.Fatalf("identical reports diff: %v", ds)
	}
	if !strings.Contains(RenderDiff(nil), "no metric moved") {
		t.Fatal("empty render wrong")
	}
}

func TestDiffReportsDetectsRegression(t *testing.T) {
	old, new := sampleReport(0.4), sampleReport(0.3) // −25% hit ratio
	ds := DiffReports(old, new, 0.05)
	if len(ds) != 1 {
		t.Fatalf("deltas = %v", ds)
	}
	d := ds[0]
	if !strings.Contains(d.Key, "Req-block-abs") {
		t.Fatalf("key = %q", d.Key)
	}
	if math.Abs(d.Rel()+0.25) > 1e-9 {
		t.Fatalf("Rel = %v, want -0.25", d.Rel())
	}
	out := RenderDiff(ds)
	if !strings.Contains(out, "-25.0%") {
		t.Fatalf("render: %s", out)
	}
}

func TestDiffReportsSortsByMagnitude(t *testing.T) {
	old := sampleReport(0.4)
	new := sampleReport(0.4)
	new.Figure8[0].Normalized = map[string]float64{"LRU": 1.5, "Req-block": 0.99}
	ds := DiffReports(old, new, 0.01)
	if len(ds) != 2 {
		t.Fatalf("deltas = %d", len(ds))
	}
	if !strings.Contains(ds[0].Key, "LRU") {
		t.Fatalf("largest delta not first: %v", ds)
	}
}

func TestDeltaRelZeroOld(t *testing.T) {
	if !math.IsInf((Delta{Old: 0, New: 1}).Rel(), 1) {
		t.Fatal("0→x must be +Inf")
	}
	if (Delta{Old: 0, New: 0}).Rel() != 0 {
		t.Fatal("0→0 must be 0")
	}
}

func TestDiffReportsIgnoresMissingCells(t *testing.T) {
	old := sampleReport(0.4)
	new := sampleReport(0.4)
	new.Figure9 = append(new.Figure9, Figure9Row{
		Trace: "new-trace", CacheMB: 64, ReqBlockHitRatio: 0.9,
		Normalized: map[string]float64{"LRU": 1},
	})
	if ds := DiffReports(old, new, 0.01); len(ds) != 0 {
		t.Fatalf("new cells should not diff against nothing: %v", ds)
	}
}
