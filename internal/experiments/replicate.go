package experiments

import (
	"fmt"
	"math"
)

// ReplicatedCell aggregates one (trace, policy, cacheMB) cell over several
// workload seeds: the paper reports single runs; replication across
// generator seeds shows how much of each gap is signal.
type ReplicatedCell struct {
	Trace   string
	Policy  string
	CacheMB int
	// HitMean/HitStd summarize the absolute hit ratio across seeds.
	HitMean, HitStd float64
	// RespMean/RespStd summarize the mean response time (ms).
	RespMean, RespStd float64
	// Seeds is the replication count.
	Seeds int
}

// ReplicatedGrid runs the evaluation grid once per seed offset and
// aggregates. Each replication regenerates every trace with a different
// generator seed; devices and policies are fresh per cell as always.
func ReplicatedGrid(cfg Config, seeds int) ([]ReplicatedCell, error) {
	if seeds < 1 {
		seeds = 1
	}
	type acc struct {
		hits, resps []float64
	}
	accs := map[string]*acc{}
	var order []string
	var meta map[string]ReplicatedCell = map[string]ReplicatedCell{}
	for s := 0; s < seeds; s++ {
		c := cfg
		c.SeedOffset = int64(s) * 104729 // distinct workload instances
		r := NewRunner(c)
		g, err := r.RunGrid()
		if err != nil {
			return nil, fmt.Errorf("replication %d: %w", s, err)
		}
		for i := range g.Cells {
			cell := &g.Cells[i]
			key := fmt.Sprintf("%s/%s/%d", cell.Trace, cell.Policy, cell.CacheMB)
			a, ok := accs[key]
			if !ok {
				a = &acc{}
				accs[key] = a
				order = append(order, key)
				meta[key] = ReplicatedCell{
					Trace: cell.Trace, Policy: cell.Policy, CacheMB: cell.CacheMB,
				}
			}
			a.hits = append(a.hits, cell.M.HitRatio())
			a.resps = append(a.resps, cell.M.Response.Mean()/1e6)
		}
	}
	out := make([]ReplicatedCell, 0, len(order))
	for _, key := range order {
		a := accs[key]
		rc := meta[key]
		rc.Seeds = len(a.hits)
		rc.HitMean, rc.HitStd = meanStd(a.hits)
		rc.RespMean, rc.RespStd = meanStd(a.resps)
		out = append(out, rc)
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// RenderReplicated renders the aggregated grid.
func RenderReplicated(cells []ReplicatedCell) string {
	var out [][]string
	for _, c := range cells {
		out = append(out, []string{
			c.Trace, fmt.Sprintf("%dMB", c.CacheMB), c.Policy,
			fmt.Sprintf("%.3f ± %.3f", c.HitMean, c.HitStd),
			fmt.Sprintf("%.3f ± %.3f", c.RespMean, c.RespStd),
			fmt.Sprint(c.Seeds),
		})
	}
	return renderTable("Replicated grid: hit ratio and mean response (ms) across workload seeds",
		[]string{"Trace", "Cache", "Policy", "Hit ratio", "Resp ms", "Seeds"}, out)
}
