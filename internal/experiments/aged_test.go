package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
)

// TestAgedFaultsPreset pins the preset-merge semantics: zero fields take
// the aged defaults, explicit fields always win, and the invariant
// checker is always armed.
func TestAgedFaultsPreset(t *testing.T) {
	c := AgedFaults(fault.Config{})
	if c.PrewornErases != AgedPrewornErases || c.PrewornJitter != AgedPrewornJitter {
		t.Fatalf("preset wear not applied: %+v", c)
	}
	if c.GrownBadProb != AgedGrownBadProb || !c.CheckInvariants {
		t.Fatalf("preset defects not applied: %+v", c)
	}
	base := fault.Config{Seed: 9, PrewornErases: 123, GrownBadProb: 0.5}
	c = AgedFaults(base)
	if c.PrewornErases != 123 || c.GrownBadProb != 0.5 || c.Seed != 9 {
		t.Fatalf("explicit base fields overridden: %+v", c)
	}
	if c.PrewornJitter != AgedPrewornJitter {
		t.Fatalf("unset base field not filled: %+v", c)
	}
}

// TestAgedDeviceSeedTable replays the aged-device scenario across a seed
// table: every replay must complete with the cross-layer invariant suite
// engaged (and silent), retirement accounting must be internally
// consistent, and the same seed must reproduce the same rows bit for bit.
func TestAgedDeviceSeedTable(t *testing.T) {
	if testing.Short() {
		t.Skip("aged replay battery is seconds-long")
	}
	run := func(seed uint64) []AgedRow {
		t.Helper()
		cfg := testConfig()
		cfg.Traces = []string{"src1_2"}
		cfg.DeviceDivisor = 64        // tiny device: GC from the first requests
		cfg.DevicePrecondition = 0.98 // almost no free headroom, erases guaranteed
		cfg.Faults = fault.Config{Seed: seed, GrownBadProb: 0.05}
		rows, err := NewRunner(cfg).AgedDevice("src1_2", 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return rows
	}
	for _, seed := range []uint64{1, 7, 42} {
		rows := run(seed)
		if len(rows) == 0 {
			t.Fatalf("seed %d: no rows", seed)
		}
		sawRetirement := false
		for _, row := range rows {
			// The invariant checker is part of the preset and must have
			// actually run (recoveries and end-of-replay both trigger it);
			// a violation would have failed the replay with an error.
			if row.InvariantChecks == 0 {
				t.Errorf("seed %d %s: invariant suite never ran", seed, row.Policy)
			}
			// Retirement accounting: with only grown-bad defects armed,
			// every retired block traces back to a grown-bad detection.
			if row.EraseFails != 0 {
				t.Errorf("seed %d %s: %d erase fails with none configured", seed, row.Policy, row.EraseFails)
			}
			if row.RetiredBlocks != row.GrownBad {
				t.Errorf("seed %d %s: retired %d != grown-bad %d",
					seed, row.Policy, row.RetiredBlocks, row.GrownBad)
			}
			if row.RetiredBlocks > 0 {
				sawRetirement = true
			}
			// Pre-worn blocks start at ~90% of the P/E budget, so life
			// consumption must report deep wear, not a fresh device.
			if row.LifeConsumed < 0.8 {
				t.Errorf("seed %d %s: life consumed %.2f on a pre-worn device",
					seed, row.Policy, row.LifeConsumed)
			}
			if row.MeanResponseMs <= 0 {
				t.Errorf("seed %d %s: empty replay (mean %.3f ms)", seed, row.Policy, row.MeanResponseMs)
			}
		}
		if !sawRetirement {
			t.Errorf("seed %d: no policy retired a single block — aging had no effect", seed)
		}
		// Same seed, same battery: the whole table must reproduce exactly.
		if again := run(seed); !reflect.DeepEqual(rows, again) {
			t.Errorf("seed %d: aged replay not deterministic:\n%+v\n%+v", seed, rows, again)
		}
	}
	if out := RenderAged(run(1)); !strings.Contains(out, "src1_2") || !strings.Contains(out, "Retired") {
		t.Fatal("aged render broken")
	}
}
