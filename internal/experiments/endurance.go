package experiments

import "fmt"

// EnduranceRow is one trace's endurance comparison across policies — an
// extension experiment: the paper motivates DRAM write buffering with SSD
// lifetime (§1: QLC endures ~500 P/E cycles) but never quantifies it. This
// table does, using the simulator's wear tracking.
type EnduranceRow struct {
	Trace   string
	CacheMB int
	// WriteAmp maps policy → write amplification (host+GC programs / host).
	WriteAmp map[string]float64
	// Erases maps policy → total block erases.
	Erases map[string]int64
	// WearStdDev maps policy → per-block erase-count standard deviation.
	WearStdDev map[string]float64
	// EnergyMJ maps policy → total flash+DRAM energy in millijoules.
	EnergyMJ map[string]float64
}

// EnduranceTable derives the endurance comparison from a grid run at the
// given cache size (0 = middle configured size).
func (g *GridResult) EnduranceTable(cacheMB int) []EnduranceRow {
	if cacheMB == 0 {
		cacheMB = g.CacheMBs[len(g.CacheMBs)/2]
	}
	var rows []EnduranceRow
	for _, tr := range g.Traces {
		row := EnduranceRow{
			Trace: tr, CacheMB: cacheMB,
			WriteAmp:   map[string]float64{},
			Erases:     map[string]int64{},
			WearStdDev: map[string]float64{},
			EnergyMJ:   map[string]float64{},
		}
		for _, pol := range g.Policies {
			if m := g.Find(tr, pol, cacheMB); m != nil {
				row.WriteAmp[pol] = m.Device.WriteAmplification()
				row.Erases[pol] = m.Device.Erases
				row.WearStdDev[pol] = m.Endurance.Wear.StdDev
				row.EnergyMJ[pol] = (m.Energy.TotalUJ + m.DRAMEnergyUJ) / 1000
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderEndurance renders the endurance extension table.
func RenderEndurance(rows []EnduranceRow, policies []string) string {
	if len(rows) == 0 {
		return ""
	}
	header := []string{"Trace", "Metric"}
	header = append(header, policies...)
	var out [][]string
	for _, row := range rows {
		wa := []string{row.Trace, "write amp"}
		er := []string{row.Trace, "erases"}
		en := []string{row.Trace, "energy mJ"}
		for _, pol := range policies {
			wa = append(wa, fmt.Sprintf("%.3f", row.WriteAmp[pol]))
			er = append(er, fmt.Sprint(row.Erases[pol]))
			en = append(en, fmt.Sprintf("%.1f", row.EnergyMJ[pol]))
		}
		out = append(out, wa, er, en)
	}
	return renderTable(
		fmt.Sprintf("Extension: endurance — write amplification, erases, energy (%dMB cache)", rows[0].CacheMB),
		header, out)
}
