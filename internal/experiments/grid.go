package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/metrics"
	"repro/internal/replay"
)

// Cell is one (trace, policy, cache size) replay of the evaluation grid.
type Cell struct {
	Trace   string
	Policy  string
	CacheMB int
	M       *replay.Metrics
}

// GridResult holds the full evaluation grid behind Figs. 8-13.
type GridResult struct {
	Cells    []Cell
	Policies []string // plot order
	CacheMBs []int
	Traces   []string
}

// RunGrid replays every trace × policy × cache-size combination once, with
// the instrumentation all the grid figures need. Cells are independent
// simulations (each gets a fresh device and policy over a shared read-only
// trace), so they run on a worker pool sized to the machine; results are
// deterministic and ordered regardless of scheduling.
func (r *Runner) RunGrid() (*GridResult, error) {
	g := &GridResult{CacheMBs: r.cfg.CacheSizesMB}
	factories := r.PaperPolicies()
	for _, f := range factories {
		g.Policies = append(g.Policies, f.Name)
	}
	// Generate (and cache) every trace up front: the Runner's trace cache
	// is not synchronized, and workers only read afterwards.
	for _, p := range r.Profiles() {
		g.Traces = append(g.Traces, p.Name)
		if _, err := r.Trace(p.Name); err != nil {
			return nil, err
		}
	}
	type job struct {
		trace   string
		factory int
		cacheMB int
	}
	var jobs []job
	for _, tr := range g.Traces {
		for _, mb := range r.cfg.CacheSizesMB {
			for fi := range factories {
				jobs = append(jobs, job{trace: tr, factory: fi, cacheMB: mb})
			}
		}
	}
	g.Cells = make([]Cell, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f := factories[j.factory]
			m, err := r.Replay(j.trace, f, j.cacheMB, replay.Options{
				SeriesInterval: r.cfg.SeriesInterval,
				QueueDepth:     r.cfg.QueueDepth,
			})
			if err != nil {
				errs[i] = fmt.Errorf("grid %s/%s/%dMB: %w", j.trace, f.Name, j.cacheMB, err)
				return
			}
			g.Cells[i] = Cell{Trace: j.trace, Policy: f.Name, CacheMB: j.cacheMB, M: m}
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Find returns the metrics of one cell, or nil.
func (g *GridResult) Find(traceName, policy string, cacheMB int) *replay.Metrics {
	for i := range g.Cells {
		c := &g.Cells[i]
		if c.Trace == traceName && c.Policy == policy && c.CacheMB == cacheMB {
			return c.M
		}
	}
	return nil
}

// Figure8Row is one (trace, cache size) row of normalized response times.
type Figure8Row struct {
	Trace   string
	CacheMB int
	// LRUMeanMs is the absolute LRU mean response in milliseconds (the
	// paper prints these under the X axis).
	LRUMeanMs float64
	// Normalized maps policy → mean response / LRU mean response.
	Normalized map[string]float64
}

// Figure8 derives the normalized I/O response times (Fig. 8).
func (g *GridResult) Figure8() []Figure8Row {
	var rows []Figure8Row
	for _, tr := range g.Traces {
		for _, mb := range g.CacheMBs {
			lru := g.Find(tr, "LRU", mb)
			if lru == nil {
				continue
			}
			base := lru.Response.Mean()
			row := Figure8Row{
				Trace: tr, CacheMB: mb,
				LRUMeanMs:  base / 1e6,
				Normalized: map[string]float64{},
			}
			for _, pol := range g.Policies {
				if m := g.Find(tr, pol, mb); m != nil && base > 0 {
					row.Normalized[pol] = m.Response.Mean() / base
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderFigure8 renders Fig. 8 rows.
func RenderFigure8(rows []Figure8Row, policies []string) string {
	header := append([]string{"Trace", "Cache", "LRU ms"}, policies...)
	var out [][]string
	for _, row := range rows {
		cells := []string{row.Trace, fmt.Sprintf("%dMB", row.CacheMB), fmt.Sprintf("%.2f", row.LRUMeanMs)}
		for _, pol := range policies {
			cells = append(cells, fmt.Sprintf("%.3f", row.Normalized[pol]))
		}
		out = append(out, cells)
	}
	return renderTable("Figure 8: I/O response time normalized to LRU (lower is better)", header, out)
}

// Figure9Row is one (trace, cache size) row of normalized hit ratios.
type Figure9Row struct {
	Trace   string
	CacheMB int
	// ReqBlockHitRatio is the absolute Req-block hit ratio (the paper
	// prints these under the X axis).
	ReqBlockHitRatio float64
	// Normalized maps policy → hit ratio / Req-block hit ratio.
	Normalized map[string]float64
}

// Figure9 derives normalized cache hit ratios (Fig. 9).
func (g *GridResult) Figure9() []Figure9Row {
	var rows []Figure9Row
	for _, tr := range g.Traces {
		for _, mb := range g.CacheMBs {
			rb := g.Find(tr, "Req-block", mb)
			if rb == nil {
				continue
			}
			base := rb.HitRatio()
			row := Figure9Row{
				Trace: tr, CacheMB: mb,
				ReqBlockHitRatio: base,
				Normalized:       map[string]float64{},
			}
			for _, pol := range g.Policies {
				if m := g.Find(tr, pol, mb); m != nil && base > 0 {
					row.Normalized[pol] = m.HitRatio() / base
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderFigure9 renders Fig. 9 rows.
func RenderFigure9(rows []Figure9Row, policies []string) string {
	header := append([]string{"Trace", "Cache", "Req-block hit"}, policies...)
	var out [][]string
	for _, row := range rows {
		cells := []string{row.Trace, fmt.Sprintf("%dMB", row.CacheMB), fmt.Sprintf("%.3f", row.ReqBlockHitRatio)}
		for _, pol := range policies {
			cells = append(cells, fmt.Sprintf("%.3f", row.Normalized[pol]))
		}
		out = append(out, cells)
	}
	return renderTable("Figure 9: cache hit ratio normalized to Req-block (higher is better)", header, out)
}

// Figure10Row is one trace's mean eviction batch size per policy (at the
// middle cache size, as the paper plots one bar per trace).
type Figure10Row struct {
	Trace     string
	CacheMB   int
	MeanPages map[string]float64
}

// Figure10 derives mean pages per eviction (Fig. 10) at the given cache
// size (0 = middle configured size).
func (g *GridResult) Figure10(cacheMB int) []Figure10Row {
	if cacheMB == 0 {
		cacheMB = g.CacheMBs[len(g.CacheMBs)/2]
	}
	var rows []Figure10Row
	for _, tr := range g.Traces {
		row := Figure10Row{Trace: tr, CacheMB: cacheMB, MeanPages: map[string]float64{}}
		for _, pol := range g.Policies {
			if m := g.Find(tr, pol, cacheMB); m != nil {
				row.MeanPages[pol] = m.MeanEvictionPages()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFigure10 renders Fig. 10 rows.
func RenderFigure10(rows []Figure10Row, policies []string) string {
	if len(rows) == 0 {
		return ""
	}
	header := append([]string{"Trace"}, policies...)
	var out [][]string
	for _, row := range rows {
		cells := []string{row.Trace}
		for _, pol := range policies {
			cells = append(cells, fmt.Sprintf("%.1f", row.MeanPages[pol]))
		}
		out = append(out, cells)
	}
	return renderTable(fmt.Sprintf("Figure 10: mean pages per eviction (%dMB cache)", rows[0].CacheMB),
		header, out)
}

// Figure11Row is one trace's flash write counts per policy.
type Figure11Row struct {
	Trace   string
	CacheMB int
	Writes  map[string]int64
}

// Figure11 derives flash write counts (Fig. 11) at the given cache size
// (0 = middle configured size).
func (g *GridResult) Figure11(cacheMB int) []Figure11Row {
	if cacheMB == 0 {
		cacheMB = g.CacheMBs[len(g.CacheMBs)/2]
	}
	var rows []Figure11Row
	for _, tr := range g.Traces {
		row := Figure11Row{Trace: tr, CacheMB: cacheMB, Writes: map[string]int64{}}
		for _, pol := range g.Policies {
			if m := g.Find(tr, pol, cacheMB); m != nil {
				row.Writes[pol] = m.Device.FlashWrites
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFigure11 renders Fig. 11 rows.
func RenderFigure11(rows []Figure11Row, policies []string) string {
	if len(rows) == 0 {
		return ""
	}
	header := append([]string{"Trace"}, policies...)
	var out [][]string
	for _, row := range rows {
		cells := []string{row.Trace}
		for _, pol := range policies {
			cells = append(cells, fmt.Sprint(row.Writes[pol]))
		}
		out = append(out, cells)
	}
	return renderTable(fmt.Sprintf("Figure 11: write count to flash memory (%dMB cache)", rows[0].CacheMB),
		header, out)
}

// Figure12Row is the metadata space overhead of one policy at one cache
// size, averaged across traces.
type Figure12Row struct {
	Policy  string
	CacheMB int
	// MeanKB is the average metadata footprint (node bytes × peak nodes)
	// across traces, in KiB.
	MeanKB float64
	// PercentOfCache is MeanKB relative to the cache size.
	PercentOfCache float64
}

// Figure12 derives the space overhead (Fig. 12).
func (g *GridResult) Figure12() []Figure12Row {
	var rows []Figure12Row
	for _, pol := range g.Policies {
		for _, mb := range g.CacheMBs {
			var sum float64
			var n int
			for _, tr := range g.Traces {
				if m := g.Find(tr, pol, mb); m != nil {
					sum += float64(m.SpaceOverheadBytes())
					n++
				}
			}
			if n == 0 {
				continue
			}
			meanBytes := sum / float64(n)
			rows = append(rows, Figure12Row{
				Policy:         pol,
				CacheMB:        mb,
				MeanKB:         meanBytes / 1024,
				PercentOfCache: meanBytes / float64(mb*1024*1024) * 100,
			})
		}
	}
	return rows
}

// RenderFigure12 renders Fig. 12 rows.
func RenderFigure12(rows []Figure12Row) string {
	var out [][]string
	for _, row := range rows {
		out = append(out, []string{
			row.Policy,
			fmt.Sprintf("%dMB", row.CacheMB),
			fmt.Sprintf("%.1f KB", row.MeanKB),
			fmt.Sprintf("%.2f%%", row.PercentOfCache),
		})
	}
	return renderTable("Figure 12: metadata space overhead (mean across traces)",
		[]string{"Policy", "Cache", "Space", "% of cache"}, out)
}

// Figure13Row is the occupancy time series of Req-block's three lists for
// one trace.
type Figure13Row struct {
	Trace   string
	CacheMB int
	// Series maps list name (IRL/SRL/DRL) → page counts sampled every
	// SeriesInterval requests.
	Series map[string][]float64
	// MeanShare maps list name → its average share of buffered pages.
	MeanShare map[string]float64
}

// Figure13 extracts Req-block's list occupancy series (Fig. 13) at the
// given cache size (0 = middle configured size).
func (g *GridResult) Figure13(cacheMB int) []Figure13Row {
	if cacheMB == 0 {
		cacheMB = g.CacheMBs[len(g.CacheMBs)/2]
	}
	var rows []Figure13Row
	for _, tr := range g.Traces {
		m := g.Find(tr, "Req-block", cacheMB)
		if m == nil || m.ListSeries == nil {
			continue
		}
		row := Figure13Row{Trace: tr, CacheMB: cacheMB, Series: map[string][]float64{}, MeanShare: map[string]float64{}}
		totals := map[string]float64{}
		var grand float64
		for name, s := range m.ListSeries {
			row.Series[name] = s.Samples
			for _, v := range s.Samples {
				totals[name] += v
				grand += v
			}
		}
		for name, t := range totals {
			if grand > 0 {
				row.MeanShare[name] = t / grand
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFigure13 renders the mean list shares (the series themselves go to
// CSV via cmd/experiments -csv).
func RenderFigure13(rows []Figure13Row) string {
	if len(rows) == 0 {
		return ""
	}
	var out [][]string
	for _, row := range rows {
		out = append(out, []string{
			row.Trace,
			metrics2pct(row.MeanShare["IRL"]),
			metrics2pct(row.MeanShare["SRL"]),
			metrics2pct(row.MeanShare["DRL"]),
			fmt.Sprint(len(row.Series["IRL"])),
			metrics.Sparkline(row.Series["SRL"]),
		})
	}
	return renderTable(fmt.Sprintf("Figure 13: mean share of cached pages per Req-block list (%dMB cache)", rows[0].CacheMB),
		[]string{"Trace", "IRL", "SRL", "DRL", "Samples", "SRL trend"}, out)
}

func metrics2pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
