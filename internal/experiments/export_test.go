package experiments

import (
	"bytes"
	"testing"
)

func TestBuildReportAndJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is seconds-long")
	}
	cfg := testConfig()
	cfg.Traces = []string{"ts_0"}
	cfg.CacheSizesMB = []int{16}
	r := NewRunner(cfg)
	rep, err := r.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table2) != 1 || len(rep.Figure8) != 1 || len(rep.Figure9) != 1 {
		t.Fatalf("report incomplete: %d/%d/%d", len(rep.Table2), len(rep.Figure8), len(rep.Figure9))
	}
	if len(rep.Figure7) != 1 || len(rep.MRC) != 1 || len(rep.Tail) != 1 {
		t.Fatal("extension sections missing")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config.Scale != rep.Config.Scale {
		t.Fatal("config lost in round trip")
	}
	if len(back.Figure9) != 1 || back.Figure9[0].Trace != "ts_0" {
		t.Fatal("figure 9 lost in round trip")
	}
	if back.Figure9[0].Normalized["Req-block"] != 1.0 {
		t.Fatal("normalized map lost in round trip")
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestReportFullyDeterministic: two complete report builds (parallel grid
// included) must serialize to byte-identical JSON.
func TestReportFullyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full reports are seconds-long")
	}
	cfg := testConfig()
	cfg.Traces = []string{"ts_0"}
	cfg.CacheSizesMB = []int{16}
	build := func() string {
		r := NewRunner(cfg)
		rep, err := r.BuildReport()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatal("report JSON differs between identical runs")
	}
}
