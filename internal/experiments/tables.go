package experiments

import (
	"fmt"

	"repro/internal/ssd"
)

// Table1 renders the experimental settings of the paper's Table 1 as
// resolved by this configuration (both the paper-scale values and the
// scaled device actually simulated).
func (r *Runner) Table1() string {
	full := ssd.DefaultParams().Flash
	scaled := ssd.ScaledParams(r.cfg.DeviceDivisor).Flash
	rows := [][]string{
		{"Capacity", fmt.Sprintf("%d GiB", full.PhysicalBytes()>>30), fmt.Sprintf("%d GiB", scaled.PhysicalBytes()>>30)},
		{"Channel Size", fmt.Sprint(full.Channels), fmt.Sprint(scaled.Channels)},
		{"Chip Size", fmt.Sprint(full.ChipsPerChannel), fmt.Sprint(scaled.ChipsPerChannel)},
		{"Page per block", fmt.Sprint(full.PagesPerBlock), fmt.Sprint(scaled.PagesPerBlock)},
		{"Page Size", fmt.Sprintf("%d KB", full.PageSize/1024), fmt.Sprintf("%d KB", scaled.PageSize/1024)},
		{"FTL Scheme", "Page level", "Page level"},
		{"Read latency", fmt.Sprintf("%.3f ms", float64(full.ReadLatency)/1e6), fmt.Sprintf("%.3f ms", float64(scaled.ReadLatency)/1e6)},
		{"Write latency", fmt.Sprintf("%g ms", float64(full.ProgramLatency)/1e6), fmt.Sprintf("%g ms", float64(scaled.ProgramLatency)/1e6)},
		{"Erase latency", fmt.Sprintf("%g ms", float64(full.EraseLatency)/1e6), fmt.Sprintf("%g ms", float64(scaled.EraseLatency)/1e6)},
		{"Transfer (Byte)", fmt.Sprintf("%d ns", full.TransferPerByte), fmt.Sprintf("%d ns", scaled.TransferPerByte)},
		{"GC Threshold", fmt.Sprintf("%.0f%%", full.GCThreshold*100), fmt.Sprintf("%.0f%%", scaled.GCThreshold*100)},
		{"DRAM Cache", cacheSizesLabel(r.cfg.CacheSizesMB), cacheSizesLabel(r.cfg.CacheSizesMB)},
	}
	return renderTable("Table 1: SSDsim experimental settings (paper scale vs simulated scale)",
		[]string{"Parameter", "Paper", "Simulated"}, rows)
}

func cacheSizesLabel(sizes []int) string {
	s := ""
	for i, mb := range sizes {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprint(mb)
	}
	return s + "MB"
}

// Table2Row is one workload's statistics alongside the paper's values.
type Table2Row struct {
	Trace string
	// Measured statistics of the synthetic trace.
	Requests           int
	WriteRatio         float64
	MeanWriteKB        float64
	FrequentRatio      float64
	FrequentWriteRatio float64
	// Paper-reported values for the original trace.
	PaperWriteRatio    float64
	PaperMeanWriteKB   float64
	PaperFrequentRatio float64
	PaperFrequentWrite float64
}

// paperTable2 holds the values printed in the paper's Table 2.
var paperTable2 = map[string][4]float64{
	// write ratio, mean write KB, frequent ratio, frequent write ratio
	"hm_1":   {0.047, 20.0, 0.461, 0.839},
	"lun_1":  {0.332, 18.6, 0.124, 0.128},
	"usr_0":  {0.596, 10.3, 0.529, 0.329},
	"src1_2": {0.746, 32.5, 0.796, 0.391},
	"ts_0":   {0.824, 8.0, 0.430, 0.581},
	"proj_0": {0.875, 40.9, 0.625, 0.599},
}

// Table2 computes the synthetic-trace statistics mirroring Table 2.
func (r *Runner) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, p := range r.Profiles() {
		s, err := r.TraceStats(p.Name)
		if err != nil {
			return nil, err
		}
		paper := paperTable2[p.Name]
		rows = append(rows, Table2Row{
			Trace:              p.Name,
			Requests:           s.Requests,
			WriteRatio:         s.WriteRatio,
			MeanWriteKB:        s.MeanWriteBytes / 1024,
			FrequentRatio:      s.FrequentRatio,
			FrequentWriteRatio: s.FrequentWriteRatio,
			PaperWriteRatio:    paper[0],
			PaperMeanWriteKB:   paper[1],
			PaperFrequentRatio: paper[2],
			PaperFrequentWrite: paper[3],
		})
	}
	return rows, nil
}

// RenderTable2 renders Table2 rows with paper values side by side.
func RenderTable2(rows []Table2Row) string {
	out := make([][]string, 0, len(rows))
	for _, row := range rows {
		out = append(out, []string{
			row.Trace,
			fmt.Sprint(row.Requests),
			fmt.Sprintf("%.1f%% (%.1f%%)", row.WriteRatio*100, row.PaperWriteRatio*100),
			fmt.Sprintf("%.1fKB (%.1fKB)", row.MeanWriteKB, row.PaperMeanWriteKB),
			fmt.Sprintf("%.1f%% (%.1f%%)", row.FrequentRatio*100, row.PaperFrequentRatio*100),
			fmt.Sprintf("%.1f%% (%.1f%%)", row.FrequentWriteRatio*100, row.PaperFrequentWrite*100),
		})
	}
	return renderTable("Table 2: trace specifications — measured (paper)",
		[]string{"Trace", "Req #", "Wr Ratio", "Wr Size", "Frequent R", "(Wr)"}, out)
}
