package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	rows := [][]string{{"a", "b"}, {"1", "x,y"}, {"2", `q"uote`}}
	path, err := WriteCSV(dir, "out.csv", rows)
	if err != nil {
		t.Fatal(err)
	}
	if path != filepath.Join(dir, "out.csv") {
		t.Fatalf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "a,b\n") {
		t.Fatalf("header missing: %q", got)
	}
	if !strings.Contains(got, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %q", got)
	}
	if !strings.Contains(got, `"q\"uote"`) {
		t.Fatalf("quote cell not escaped: %q", got)
	}
}

func TestCSVFigure13(t *testing.T) {
	row := Figure13Row{
		Trace: "t",
		Series: map[string][]float64{
			"IRL": {10, 20}, "SRL": {1}, "DRL": {},
		},
	}
	rows := CSVFigure13(row)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][1] != "10" || rows[1][2] != "1" || rows[1][3] != "0" {
		t.Fatalf("row 1 = %v", rows[1])
	}
	if rows[2][2] != "0" { // SRL shorter than IRL pads with zero
		t.Fatalf("row 2 = %v", rows[2])
	}
}

func TestCSVGridExports(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is seconds-long")
	}
	cfg := testConfig()
	cfg.Traces = []string{"ts_0"}
	cfg.CacheSizesMB = []int{16}
	r := NewRunner(cfg)
	g, err := r.RunGrid()
	if err != nil {
		t.Fatal(err)
	}
	f8, f9 := g.CSVFigure8(), g.CSVFigure9()
	if len(f8) != 2 || len(f9) != 2 { // header + one row
		t.Fatalf("rows: %d/%d", len(f8), len(f9))
	}
	if f8[0][0] != "trace" || len(f8[1]) != 2+len(g.Policies) {
		t.Fatalf("fig8 shape: %v", f8)
	}
	// Values parse as floats in (0, 1] for hit ratios.
	for i := 2; i < len(f9[1]); i++ {
		if f9[1][i] == "" {
			t.Fatalf("empty cell in %v", f9[1])
		}
	}
}
