package sim

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// testDevice builds a small but realistic device for engine tests.
func testDevice(t *testing.T) *ssd.Device {
	t.Helper()
	p := ssd.DefaultParams()
	p.Flash.BlocksPerPlane = 512 // 114688 logical pages
	p.Flash.PagesPerBlock = 16
	p.Precondition = 0
	d, err := ssd.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func req(tm int64, wr bool, page, pages int64) trace.Request {
	return trace.Request{Time: tm, Write: wr, Offset: page * 4096, Size: pages * 4096}
}

// recorder copies every event it sees (events are reused across calls).
type recorder struct {
	requests  []RequestEvent
	results   []ResultEvent
	evictions []EvictionEvent
	done      DoneEvent
	doneCalls int
	stopAt    int // processed count to stop the engine at; 0 disables
}

func (r *recorder) OnRequest(_ *Engine, ev *RequestEvent) {
	r.requests = append(r.requests, *ev)
}

func (r *recorder) OnEviction(_ *Engine, ev *EvictionEvent) {
	cp := *ev
	cp.LPNs = append([]int64(nil), ev.LPNs...)
	r.evictions = append(r.evictions, cp)
}

func (r *recorder) OnResult(e *Engine, ev *ResultEvent) {
	r.results = append(r.results, *ev)
	if r.stopAt > 0 && ev.Processed >= r.stopAt {
		e.Stop()
	}
}

func (r *recorder) OnDone(_ *Engine, ev *DoneEvent) {
	r.done = *ev
	r.doneCalls++
}

func TestEngineEventStream(t *testing.T) {
	tr := &trace.Trace{Name: "ev", Requests: []trace.Request{
		req(0, true, 0, 2),
		req(1_000_000, true, 0, 2),   // hit
		req(2_000_000, false, 50, 1), // read miss
		req(3_000_000, true, 100, 4),
	}}
	rec := &recorder{}
	eng := New(tr.Source(), cache.NewLRU(4096), testDevice(t), Config{WarmupRequests: 1})
	eng.Observe(rec)
	done, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if done.Processed != 4 || !done.HasRequests {
		t.Fatalf("done = %+v", done)
	}
	if done.FirstArrival != 0 || done.LastArrival != 3_000_000 {
		t.Fatalf("arrival span = [%d, %d]", done.FirstArrival, done.LastArrival)
	}
	if len(rec.requests) != 4 || len(rec.results) != 4 {
		t.Fatalf("saw %d requests, %d results", len(rec.requests), len(rec.results))
	}
	if rec.doneCalls != 1 {
		t.Fatalf("OnDone fired %d times", rec.doneCalls)
	}
	// Warmup marking: request 0 cold, the rest warm.
	if rec.requests[0].Warm || !rec.requests[1].Warm {
		t.Fatal("warmup marking wrong")
	}
	// Field plumbing on the read miss.
	r2 := rec.requests[2]
	if r2.Index != 2 || r2.Write || r2.LPN != 50 || r2.Pages != 1 || r2.Arrival != 2_000_000 {
		t.Fatalf("request 2 = %+v", r2)
	}
	for i, res := range rec.results {
		if res.Processed != i+1 {
			t.Fatalf("result %d Processed = %d", i, res.Processed)
		}
		if res.Completion < rec.requests[i].Issue {
			t.Fatalf("result %d completes before issue", i)
		}
	}
}

func TestEngineEmitsEvictions(t *testing.T) {
	// A 64-page cache fed 32 8-page writes must evict.
	reqs := make([]trace.Request, 32)
	for i := range reqs {
		reqs[i] = req(int64(i)*1_000_000, true, int64(i*8), 8)
	}
	tr := &trace.Trace{Name: "evict", Requests: reqs}
	rec := &recorder{}
	eng := New(tr.Source(), cache.NewLRU(64), testDevice(t), Config{})
	eng.Observe(rec)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.evictions) == 0 {
		t.Fatal("no eviction events from an overflowing cache")
	}
	var pages int
	for _, ev := range rec.evictions {
		if ev.Kind != EvictRequest {
			t.Fatalf("unexpected eviction kind %d", ev.Kind)
		}
		pages += len(ev.LPNs)
	}
	if pages < 32*8-64 {
		t.Fatalf("evicted %d pages, want at least %d", pages, 32*8-64)
	}
}

func TestEngineObserverStopDrainsHorizon(t *testing.T) {
	reqs := make([]trace.Request, 10)
	for i := range reqs {
		reqs[i] = req(int64(i)*1_000_000, true, int64(i), 1)
	}
	tr := &trace.Trace{Name: "stop", Requests: reqs}
	rec := &recorder{stopAt: 3}
	eng := New(tr.Source(), cache.NewLRU(4096), testDevice(t), Config{})
	eng.Observe(rec)
	done, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !done.Stopped || done.Processed != 3 {
		t.Fatalf("done = %+v, want stopped at 3", done)
	}
	// The horizon still spans the whole source: the engine drains the
	// remaining requests (parse-only) after the stop.
	if done.LastArrival != 9_000_000 {
		t.Fatalf("LastArrival = %d, want 9000000 (full-source horizon)", done.LastArrival)
	}
	if len(rec.results) != 3 {
		t.Fatalf("results after stop: %d", len(rec.results))
	}
}

func TestEngineSkipsZeroPageRequests(t *testing.T) {
	tr := &trace.Trace{Name: "zero", Requests: []trace.Request{
		req(0, true, 0, 1),
		{Time: 1_000_000, Write: true, Offset: 4096, Size: 0}, // zero pages
		req(2_000_000, true, 2, 1),
	}}
	rec := &recorder{}
	eng := New(tr.Source(), cache.NewLRU(4096), testDevice(t), Config{})
	eng.Observe(rec)
	done, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if done.Processed != 2 || len(rec.requests) != 2 {
		t.Fatalf("processed %d, saw %d request events; want 2/2", done.Processed, len(rec.requests))
	}
	// The skipped entry still consumes a source ordinal.
	if rec.requests[1].Index != 2 {
		t.Fatalf("second request Index = %d, want 2", rec.requests[1].Index)
	}
}

func TestEngineRejectsOutOfRangeRequest(t *testing.T) {
	tr := &trace.Trace{Name: "oob", Requests: []trace.Request{
		req(0, true, 1<<40, 1),
	}}
	eng := New(tr.Source(), cache.NewLRU(4096), testDevice(t), Config{})
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "beyond device") {
		t.Fatalf("err = %v, want beyond-device error", err)
	}
}

func TestEnginePropagatesSourceError(t *testing.T) {
	input := "128166372003061629,hm,0,Write,0,4096,0\nnot a line\n"
	eng := New(trace.Scan(strings.NewReader(input), "bad"), cache.NewLRU(4096), testDevice(t), Config{})
	rec := &recorder{}
	eng.Observe(rec)
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want scanner parse error", err)
	}
}
