package sim

import "testing"

func TestShardQuota(t *testing.T) {
	cases := []struct {
		mode               SharingMode
		total, shards, k   int
		wantCap, wantQuota int
	}{
		{SharingEqual, 1024, 4, 0, 256, 0},
		{SharingEqual, 1026, 4, 0, 257, 0}, // remainder goes to low shards
		{SharingEqual, 1026, 4, 1, 257, 0},
		{SharingEqual, 1026, 4, 2, 256, 0},
		{SharingShared, 1024, 4, 0, 1024, 256},
		{SharingShared, 1024, 1, 0, 1024, 1024},
		{SharingEqual, 1024, 1, 0, 1024, 0},
	}
	for _, tc := range cases {
		gotCap, gotQuota := ShardQuota(tc.mode, tc.total, tc.shards, tc.k)
		if gotCap != tc.wantCap || gotQuota != tc.wantQuota {
			t.Errorf("ShardQuota(%v, %d, %d, %d) = (%d, %d), want (%d, %d)",
				tc.mode, tc.total, tc.shards, tc.k, gotCap, gotQuota, tc.wantCap, tc.wantQuota)
		}
	}
	// EQUAL slices must sum to the total.
	sum := 0
	for k := 0; k < 7; k++ {
		c, _ := ShardQuota(SharingEqual, 1000, 7, k)
		sum += c
	}
	if sum != 1000 {
		t.Errorf("EQUAL slices sum to %d, want 1000", sum)
	}
}

func TestParseSharing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SharingMode
	}{{"shared", SharingShared}, {"equal", SharingEqual}} {
		got, err := ParseSharing(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSharing(%q) = (%v, %v), want (%v, nil)", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseSharing("both"); err == nil {
		t.Error("ParseSharing accepted an unknown mode")
	}
}

func TestShardOfRouting(t *testing.T) {
	// Tenant boundaries: tenant t covers [b_{t-1}, b_t) and maps to
	// t mod shards; pages past the last boundary take the next index.
	s := &ShardedEngine{cfg: ShardConfig{
		Shards:            2,
		TenantBoundaries:  []int64{100, 200, 300},
		TenantRegionPages: 64,
	}}
	cases := []struct {
		lpn  int64
		want int
	}{{0, 0}, {99, 0}, {100, 1}, {199, 1}, {200, 0}, {299, 0}, {300, 1}, {1000, 1}}
	for _, tc := range cases {
		if got := s.shardOf(tc.lpn); got != tc.want {
			t.Errorf("shardOf(%d) = %d, want %d", tc.lpn, got, tc.want)
		}
	}

	// Hash routing: deterministic, and spreads distinct regions across
	// all shards.
	h := &ShardedEngine{cfg: ShardConfig{Shards: 4, TenantRegionPages: 64}}
	seen := map[int]bool{}
	for region := int64(0); region < 64; region++ {
		k := h.shardOf(region * 64)
		if k != h.shardOf(region*64+63) {
			t.Fatalf("region %d split across shards", region)
		}
		if k < 0 || k >= 4 {
			t.Fatalf("shardOf out of range: %d", k)
		}
		seen[k] = true
	}
	if len(seen) != 4 {
		t.Errorf("hash routing used %d of 4 shards over 64 regions", len(seen))
	}
}
