package sim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// resultFunc adapts a closure into a results-only Observer.
type resultFunc func(*ResultEvent)

func (resultFunc) OnRequest(*Engine, *RequestEvent)      {}
func (resultFunc) OnEviction(*Engine, *EvictionEvent)    {}
func (f resultFunc) OnResult(_ *Engine, ev *ResultEvent) { f(ev) }
func (resultFunc) OnDone(*Engine, *DoneEvent)            {}

// blameTrace builds a workload that exercises every blame cause: a dense
// closed-loop write burst into a tiny cache (queue wait + eviction work +
// destage back-pressure) with interleaved cold reads (read-miss flash
// time) and an oversized bypass write.
func blameTrace() *trace.Trace {
	reqs := make([]trace.Request, 0, 260)
	tm := int64(0)
	for i := 0; i < 120; i++ {
		reqs = append(reqs, req(tm, true, int64(i*8)%4096, 8))
		tm += 500 // far denser than flash program time: queues build
		if i%10 == 3 {
			reqs = append(reqs, req(tm, false, int64(5000+i*4), 2))
			tm += 500
		}
	}
	// A request larger than the whole cache takes the bypass path.
	reqs = append(reqs, req(tm+1000, true, 8192, 600))
	return &trace.Trace{Name: "blame", Requests: reqs}
}

// Every result's blame partition must sum exactly to its response time —
// the attribution is a decomposition, not an estimate. This must hold
// under the closed loop, destage back-pressure, evictions, read misses,
// and the bypass path all at once.
func TestBlameSumsToResponseExactly(t *testing.T) {
	dev := testDevice(t)
	dev.SetBackPressure(2)
	// ResultEvent.Req points at reusable storage, so the partition is
	// checked at event time, not from saved copies.
	var seen [NumBlameCauses]bool
	var results int
	check := resultFunc(func(ev *ResultEvent) {
		results++
		if got, want := ev.Blame.Total(), ev.Completion-ev.Req.Arrival; got != want {
			t.Fatalf("request %d: blame total %d != response %d (blame %+v)",
				ev.Req.Index, got, want, ev.Blame)
		}
		for c := range ev.Blame.Ns {
			if ev.Blame.Ns[c] < 0 {
				t.Fatalf("request %d: negative %s blame %d", ev.Req.Index, BlameCause(c), ev.Blame.Ns[c])
			}
			seen[c] = seen[c] || ev.Blame.Ns[c] > 0
		}
		if ev.Blame.GCPauseNs < 0 || ev.Blame.ScanCost < 0 {
			t.Fatalf("request %d: negative side-channel blame %+v", ev.Req.Index, ev.Blame)
		}
	})
	// The bypass wrapper sends the oversized write down the write-around
	// path so BlameBypass has something to attribute.
	eng := New(blameTrace().Source(), cache.NewBypass(cache.NewLRU(512), 256), dev,
		Config{QueueDepth: 4, DestageNs: 200_000})
	eng.Observe(check)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if results == 0 {
		t.Fatal("no results observed")
	}
	// The workload is built to light up every cause; a cause that never
	// fires means its instrumentation point was lost.
	for c, ok := range seen {
		if !ok {
			t.Errorf("cause %s never attributed any time", BlameCause(c))
		}
	}
	// Back-pressure must actually have engaged for the stall assertion to
	// mean anything.
	if stalls, _ := dev.BackPressureStalls(); stalls == 0 {
		t.Fatal("workload did not engage back-pressure; stall blame untested")
	}
}

// Dominant picks the largest share, first cause winning ties.
func TestBlameDominant(t *testing.T) {
	var b Blame
	if b.Dominant() != BlameQueue {
		t.Fatalf("zero blame dominant = %s, want queue (first wins ties)", b.Dominant())
	}
	b.Ns[BlameRead] = 7
	b.Ns[BlameCache] = 7 // tie: earlier cause wins
	if b.Dominant() != BlameCache {
		t.Fatalf("tie dominant = %s, want cache", b.Dominant())
	}
	b.Ns[BlameStall] = 8
	if b.Dominant() != BlameStall {
		t.Fatalf("dominant = %s, want stall", b.Dominant())
	}
	if b.Total() != 22 {
		t.Fatalf("Total = %d", b.Total())
	}
}

// shardBlameSink collects per-request blame from the merged stream and,
// via ShardAware, the per-shard callbacks — both must carry the same
// partition (the relay deep-copies results across the shard boundary).
type shardBlameSink struct {
	NopObserver
	merged  map[int]Blame
	byShard map[int]Blame
	resp    map[int]int64
}

func (s *shardBlameSink) OnResult(_ *Engine, ev *ResultEvent) {
	s.merged[ev.Req.Index] = ev.Blame
	s.resp[ev.Req.Index] = ev.Completion - ev.Req.Arrival
}

func (s *shardBlameSink) OnShardResult(_ int, _ []int, ev *ResultEvent) {
	s.byShard[ev.Req.Index] = ev.Blame
}

// A single-shard sharded run must reproduce the unsharded engine's blame
// spans bit for bit: the relay's copy, the merger's rebuild, and the
// ShardAware fan-out all preserve the partition.
func TestShardedBlameSurvivesRelay(t *testing.T) {
	mk := func() (*shardBlameSink, func() (DoneEvent, error)) {
		sink := &shardBlameSink{
			merged:  map[int]Blame{},
			byShard: map[int]Blame{},
			resp:    map[int]int64{},
		}
		eng, err := NewSharded(blameTrace().Source(), ShardConfig{
			Shards: 1, Sharing: SharingShared, TotalCapacityPages: 512,
			NewPolicy: func(_, n int) cache.Policy { return cache.NewLRU(n) },
			NewDevice: func(int) (*ssd.Device, error) {
				p := ssd.DefaultParams()
				p.Flash.BlocksPerPlane = 512
				p.Flash.PagesPerBlock = 16
				p.Precondition = 0
				return ssd.New(p)
			},
			BackPressureDepth: 2,
			Engine:            Config{QueueDepth: 4, DestageNs: 200_000},
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Observe(sink)
		return sink, eng.Run
	}
	sink, run := mk()
	if _, err := run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.merged) == 0 || len(sink.merged) != len(sink.byShard) {
		t.Fatalf("merged %d results, per-shard %d", len(sink.merged), len(sink.byShard))
	}

	// Reference: the unsharded engine on an identical device.
	ref := map[int]Blame{}
	dev := testDevice(t)
	dev.SetBackPressure(2)
	ueng := New(blameTrace().Source(), cache.NewLRU(512), dev,
		Config{QueueDepth: 4, DestageNs: 200_000})
	ueng.Observe(resultFunc(func(ev *ResultEvent) { ref[ev.Req.Index] = ev.Blame }))
	if _, err := ueng.Run(); err != nil {
		t.Fatal(err)
	}

	if len(ref) != len(sink.merged) {
		t.Fatalf("unsharded %d results, sharded %d", len(ref), len(sink.merged))
	}
	for idx, want := range ref {
		if got := sink.merged[idx]; got != want {
			t.Fatalf("request %d: merged blame %+v != unsharded %+v", idx, got, want)
		}
		if got := sink.byShard[idx]; got != want {
			t.Fatalf("request %d: per-shard blame %+v != unsharded %+v", idx, got, want)
		}
		if total, resp := want.Total(), sink.resp[idx]; total != resp {
			t.Fatalf("request %d: merged blame total %d != merged response %d", idx, total, resp)
		}
	}
}
