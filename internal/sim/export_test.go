package sim

import "repro/internal/trace"

// Test-only hooks. External test packages (package sim_test) can import
// instrument packages such as internal/obs without an import cycle, and
// these let them drive the engine's per-request step directly — the
// telemetry-enabled allocation guard needs exactly that.

// Begin exposes begin for step-driven tests.
func (e *Engine) Begin() { e.begin() }

// Step exposes processRequest for step-driven tests.
func (e *Engine) Step(i int, req trace.Request, pageSize int64) error {
	return e.processRequest(i, req, pageSize)
}
