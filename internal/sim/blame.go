package sim

// Blame attribution: every request's response time is partitioned into an
// exact per-cause breakdown as the engine processes it. The causes are
// measured as deltas of the running completion time at each phase boundary,
// so by construction they sum to Completion - Arrival with zero error —
// there is no sampling, estimation, or post-hoc reconstruction involved.
// The breakdown rides on ResultEvent by value (no allocation) and is
// deterministic in simulated time.

// BlameCause identifies one phase a request's latency is attributed to.
type BlameCause uint8

const (
	// BlameQueue is closed-loop admission queueing: time between the
	// request's arrival and its issue slot opening in the engine's
	// outstanding-window ring. Zero in open-loop (unwindowed) runs.
	BlameQueue BlameCause = iota
	// BlameStall is destage back-pressure: the wait imposed by
	// ssd.Device.AdmitAt when the flush backlog bound is reached.
	BlameStall
	// BlameCache is DRAM time: the per-page cache access cost for hits
	// and newly inserted pages.
	BlameCache
	// BlameEvict is eviction work on the critical path: padding reads,
	// flash programs, and channel waits for victims flushed to make room
	// for this request, to the extent they extend its completion.
	BlameEvict
	// BlameBypass is flash program time for pages written around the
	// cache (write-through of requests larger than the cache).
	BlameBypass
	// BlameRead is flash read time for read misses.
	BlameRead

	// NumBlameCauses bounds the per-cause arrays.
	NumBlameCauses = int(BlameRead) + 1
)

// blameNames are stable wire/metric identifiers, ordered by BlameCause.
var blameNames = [NumBlameCauses]string{
	"queue", "stall", "cache", "evict", "bypass", "read",
}

// String returns the cause's stable lower-case name.
func (c BlameCause) String() string {
	if int(c) < NumBlameCauses {
		return blameNames[c]
	}
	return "unknown"
}

// Blame is one request's per-cause latency breakdown in simulated ns.
type Blame struct {
	// Ns[c] is the time attributed to cause c. The entries sum exactly to
	// the request's response time (Completion - arrival Time).
	Ns [NumBlameCauses]int64
	// GCPauseNs is the foreground GC pause accumulated device-wide while
	// this request dispatched. It overlaps the flash-time causes rather
	// than adding to them, so it is reported alongside the partition, not
	// inside it.
	GCPauseNs int64
	// ScanCost is the victim-scan work (entries examined) eviction spent
	// on behalf of this request.
	ScanCost int64
}

// Total returns the sum of the per-cause entries — exactly the request's
// response time.
func (b *Blame) Total() int64 {
	var t int64
	for _, v := range b.Ns {
		t += v
	}
	return t
}

// Dominant returns the cause with the largest share (first wins on ties).
func (b *Blame) Dominant() BlameCause {
	best := BlameQueue
	for c := 1; c < NumBlameCauses; c++ {
		if b.Ns[c] > b.Ns[best] {
			best = BlameCause(c)
		}
	}
	return best
}
