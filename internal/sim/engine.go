// Package sim is the streaming replay engine: it pulls requests from a
// trace.Source one at a time, steps the cache policy, dispatches the
// resulting flash work on the simulated device's timeline, and computes
// per-request completion times — in O(cache) memory, independent of trace
// length.
//
// The engine simulates; it does not measure. Every metric — hit ratios,
// response summaries, eviction histograms, page fates, tenant splits,
// occupancy series, crash-loss accounting — lives in Observer
// implementations registered on the engine (internal/replay assembles the
// paper's full metric set this way). The per-request pipeline is:
//
//	source → idle/destage stage → cache step → device dispatch → completion
//	            │OnEviction           │OnRequest   │OnEviction      │OnResult
//
// followed by one OnDone when the source is exhausted or an observer (or
// device degradation) stops the run.
//
// Determinism: given the same source, policy, device and config, the
// engine performs the identical operation sequence as the materialized
// replay loop it replaced, so all metrics are bit-identical (enforced by
// the equivalence tests in internal/replay).
package sim

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Config tunes the engine's simulation behavior. Measurement knobs (fates,
// series intervals, tenants) are observer concerns and live in
// replay.Options.
type Config struct {
	// WarmupRequests marks the first N requests cold (RequestEvent.Warm
	// is false): they drive the cache and device but observers exclude
	// them from steady-state metrics.
	WarmupRequests int
	// IdleFlushNs enables proactive eviction (cache.IdleEvictor policies)
	// during arrival gaps of at least this many nanoseconds. Zero
	// disables.
	IdleFlushNs int64
	// IdleGC additionally runs one background GC collection per idle
	// window (requires IdleFlushNs > 0).
	IdleGC bool
	// GCBudgetNs, when positive, grants the device's preemptible GC
	// scheduler a budgeted slice in each idle window instead of the
	// IdleGC whole-victim collection: the idle flusher drains dirty data
	// first, then the remainder of the window (capped at this budget) goes
	// to ssd.Device.ScheduleGC. Requires IdleFlushNs > 0 and a device with
	// the scheduler enabled; mutually exclusive with IdleGC. Zero keeps
	// the legacy path bit-identical.
	GCBudgetNs int64
	// QueueDepth switches from open-loop to closed-loop issue: request i
	// issues at max(arrival_i, completion_{i-QueueDepth}). Zero keeps the
	// open loop.
	QueueDepth int
	// DestageNs drains victim batches every DestageNs of simulated time,
	// bounding the dirty data a crash can lose. Zero disables.
	DestageNs int64
	// SoftQuotaPages, when positive, drains victim batches (IdleEvictor
	// policies) after any request that leaves more than this many pages
	// buffered. The sharded engine uses it for SHARED-mode partitions: a
	// shard may borrow past its slice of the global capacity, but the
	// overflow is destaged right away, so the borrow stays transient.
	// Zero disables.
	SoftQuotaPages int
}

// Engine replays one source against one policy and device. Build it with
// New, register observers with Observe, then call Run once.
type Engine struct {
	src trace.Source
	pol cache.Policy
	dev *ssd.Device
	cfg Config
	obs []Observer

	// Reusable event storage: one instance per event type, overwritten
	// per emission so the hot path never allocates.
	reqEv RequestEvent
	resEv ResultEvent
	evEv  EvictionEvent
	res   cache.Result
	blame Blame // per-request attribution, reset at each processRequest

	idler     cache.IdleEvictor
	scanRep   cache.VictimScanReporter
	lastScan  int64 // scanRep counter at the previous eviction emission
	logical   int64
	window    []int64 // closed-loop completion ring, len == QueueDepth
	windowPos int

	processed   int
	nextDestage int64
	stopped     bool // engine-internal stop (degradation)
	stop        bool // observer-requested stop (crash harness)

	degraded   bool
	degradedAt int
	idleGCRuns int64
}

// New builds an engine. The source is consumed exactly once by Run.
func New(src trace.Source, pol cache.Policy, dev *ssd.Device, cfg Config) *Engine {
	return &Engine{src: src, pol: pol, dev: dev, cfg: cfg}
}

// Observe registers observers; they receive events in registration order.
func (e *Engine) Observe(obs ...Observer) {
	e.obs = append(e.obs, obs...)
}

// Stop ends the run after the current request: the engine emits no
// further request events and proceeds to OnDone. The crash harness calls
// it from OnResult when the simulated power loss point is reached.
// Nil-safe (a no-op on the merged stream of a sharded run, where no
// single engine is addressable).
func (e *Engine) Stop() {
	if e != nil {
		e.stop = true
	}
}

// Policy returns the policy under simulation (for observers that inspect
// policy state, e.g. the crash harness counting dirty pages). Nil-safe:
// merged-stream observers in a sharded run receive a nil engine, because
// no single engine's live state is race-free to read from the merger.
func (e *Engine) Policy() cache.Policy {
	if e == nil {
		return nil
	}
	return e.pol
}

// Device returns the device under simulation (nil-safe, see Policy).
func (e *Engine) Device() *ssd.Device {
	if e == nil {
		return nil
	}
	return e.dev
}

// degrade records a read-only-mode stop. The run ends gracefully instead
// of failing: degradation is an outcome the fault experiments report, not
// an error.
func (e *Engine) degrade(err error) bool {
	if !errors.Is(err, fault.ErrReadOnly) {
		return false
	}
	if !e.degraded {
		e.degraded = true
		e.degradedAt = e.processed
	}
	return true
}

func (e *Engine) emitEviction(kind EvictionKind, at int64, lpns []int64) {
	e.emitEvictionTimed(kind, at, lpns, 0, 0)
}

// emitEvictionTimed additionally reports the batch's device timing for
// stages that flush before emitting (idle and destage drains).
func (e *Engine) emitEvictionTimed(kind EvictionKind, at int64, lpns []int64, transferred, durable int64) {
	var scanCost int64
	if e.scanRep != nil {
		total := e.scanRep.VictimScanCost()
		scanCost = total - e.lastScan
		e.lastScan = total
	}
	e.evEv = EvictionEvent{Kind: kind, Time: at, LPNs: lpns, Transferred: transferred, Durable: durable, ScanCost: scanCost}
	for _, o := range e.obs {
		o.OnEviction(e, &e.evEv)
	}
}

// VictimScanCost returns the policy's cumulative victim-selection work
// counter, 0 when the policy does not report one (see
// cache.VictimScanReporter). Observers use it to relate total selection
// work to eviction counts; the per-batch delta rides on EvictionEvent.
func (e *Engine) VictimScanCost() int64 {
	if e.scanRep == nil {
		return 0
	}
	return e.scanRep.VictimScanCost()
}

// Inflight returns how many closed-loop window slots hold completions
// later than t — the outstanding request count at time t. Always 0 in
// open-loop mode (no window is kept). Observers use it as a live queue
// depth gauge.
func (e *Engine) Inflight(t int64) int {
	if e == nil {
		return 0
	}
	n := 0
	for _, freeAt := range e.window {
		if freeAt > t {
			n++
		}
	}
	return n
}

// Run consumes the source and returns the run summary. It may be called
// once per engine.
func (e *Engine) Run() (DoneEvent, error) {
	e.begin()
	pageSize := e.dev.PageSize()

	var done DoneEvent
	var prevArrival int64
	for i := 0; ; i++ {
		req, ok := e.src.Next()
		if !ok {
			break
		}
		if !done.HasRequests {
			done.HasRequests = true
			done.FirstArrival = req.Time
		}
		done.LastArrival = req.Time

		// Idle stage: background GC and proactive eviction in the arrival
		// gap before this request, then any pending destage ticks.
		if e.cfg.GCBudgetNs > 0 && e.cfg.IdleFlushNs > 0 && i > 0 &&
			req.Time-prevArrival >= e.cfg.IdleFlushNs {
			// Scheduled mode: the idle flusher drains dirty data first, then
			// the rest of the window — capped at the configured budget — is
			// granted to the preemptible GC scheduler, which preempts itself
			// cleanly before the next arrival.
			idleAt := prevArrival
			if e.idler != nil {
				var err error
				if idleAt, err = e.idleFlush(prevArrival, req.Time); err != nil {
					return done, err
				}
			}
			if !e.stopped {
				budget := min(e.cfg.GCBudgetNs, req.Time-idleAt)
				if n := e.dev.ScheduleGC(idleAt, budget); n > 0 {
					e.idleGCRuns += int64(n)
				}
			}
		} else {
			if e.cfg.IdleFlushNs > 0 && e.cfg.IdleGC && i > 0 &&
				req.Time-prevArrival >= e.cfg.IdleFlushNs {
				// One block collection per idle window keeps background GC
				// from monopolizing the dies right before the next burst.
				if n := e.dev.BackgroundGC(prevArrival, 1); n > 0 {
					e.idleGCRuns += int64(n)
				}
			}
			if e.cfg.IdleFlushNs > 0 && e.idler != nil && i > 0 {
				if _, err := e.idleFlush(prevArrival, req.Time); err != nil {
					return done, err
				}
			}
		}
		if e.cfg.DestageNs > 0 && e.idler != nil && !e.stopped {
			if err := e.destage(req.Time); err != nil {
				return done, err
			}
		}
		if e.stopped {
			break
		}
		prevArrival = req.Time

		if err := e.processRequest(i, req, pageSize); err != nil {
			return done, err
		}
		if e.stopped || e.stop {
			break
		}
	}
	// Horizon drain: an early stop still defines the trace time span over
	// the whole source (open-loop utilization covers the trace duration),
	// so consume the remainder for its last arrival — parse-only, O(1).
	for {
		req, ok := e.src.Next()
		if !ok {
			break
		}
		if !done.HasRequests {
			done.HasRequests = true
			done.FirstArrival = req.Time
		}
		done.LastArrival = req.Time
	}
	if err := e.src.Err(); err != nil {
		return done, err
	}
	// A device that entered read-only mode during background work (idle
	// GC) without a subsequent write failing still reports as degraded.
	if e.dev.Degraded() && !e.degraded {
		e.degraded = true
		e.degradedAt = e.processed
	}
	// End-of-replay invariant sweep (fault.Config.CheckInvariants); runs
	// before OnDone so the final check is included in the counter snapshot
	// observers take there.
	if c := e.dev.InvariantChecker(); c != nil {
		if err := c.Check(); err != nil {
			return done, fmt.Errorf("sim: %s end-of-replay invariants: %w", e.src.Name(), err)
		}
	}
	done.Processed = e.processed
	done.Degraded = e.degraded
	done.DegradedAtRequest = e.degradedAt
	done.Stopped = e.stop
	done.IdleGCRuns = e.idleGCRuns
	for _, o := range e.obs {
		o.OnDone(e, &done)
	}
	return done, nil
}

// begin wires the engine to its policy and device: attach DeviceAware
// policies, resolve the idle evictor, and size the closed-loop window.
// Run calls it once; the in-package alloc test calls it directly to drive
// processRequest in isolation.
func (e *Engine) begin() {
	if da, ok := e.pol.(cache.DeviceAware); ok {
		da.AttachDevice(e.dev)
	}
	e.idler, _ = e.pol.(cache.IdleEvictor)
	e.scanRep, _ = e.pol.(cache.VictimScanReporter)
	if e.scanRep != nil {
		e.lastScan = e.scanRep.VictimScanCost()
	}
	e.logical = e.dev.LogicalPages()
	if e.cfg.QueueDepth > 0 {
		e.window = make([]int64, e.cfg.QueueDepth)
	}
}

// idleFlush drains victim batches during the idle gap [prevArrival,
// arrival), as many as fit before the next arrival. It returns the time
// the flusher reached, so the scheduled-GC stage knows how much of the
// window remains.
func (e *Engine) idleFlush(prevArrival, arrival int64) (int64, error) {
	idleAt := prevArrival
	for arrival-idleAt >= e.cfg.IdleFlushNs {
		ev, ok := e.idler.EvictIdle(idleAt)
		if !ok || len(ev.LPNs) == 0 {
			break
		}
		bt, err := e.dev.FlushStriped(idleAt, ev.LPNs)
		if err != nil {
			if e.degrade(err) {
				e.stopped = true
				break
			}
			return idleAt, fmt.Errorf("sim: %s idle flush: %w", e.src.Name(), err)
		}
		e.emitEvictionTimed(EvictIdle, idleAt, ev.LPNs, bt.Transferred, bt.Durable)
		idleAt = bt.Transferred
	}
	return idleAt, nil
}

// destage runs every periodic destage tick due before arrival, draining
// victim batches at each tick.
func (e *Engine) destage(arrival int64) error {
	if e.nextDestage == 0 {
		e.nextDestage = arrival + e.cfg.DestageNs
	}
	for arrival >= e.nextDestage && !e.stopped {
		tick := e.nextDestage
		e.nextDestage += e.cfg.DestageNs
		for {
			ev, ok := e.idler.EvictIdle(tick)
			if !ok || len(ev.LPNs) == 0 {
				break
			}
			bt, err := e.dev.FlushStriped(tick, ev.LPNs)
			if err != nil {
				if e.degrade(err) {
					e.stopped = true
					break
				}
				return fmt.Errorf("sim: %s destage: %w", e.src.Name(), err)
			}
			e.emitEvictionTimed(EvictDestage, tick, ev.LPNs, bt.Transferred, bt.Durable)
		}
	}
	return nil
}

// processRequest is the cache-step and device-dispatch stages for one
// request: issue-time resolution, policy access, flash dispatch,
// completion, and the OnRequest/OnResult events around them.
func (e *Engine) processRequest(i int, req trace.Request, pageSize int64) error {
	first, pages := req.PageSpan(pageSize)
	if pages == 0 {
		return nil
	}
	if first+int64(pages) > e.logical {
		return fmt.Errorf("sim: %s request %d beyond device: lpn %d+%d > %d",
			e.src.Name(), i, first, pages, e.logical)
	}
	// Issue time: the trace arrival, or — in closed-loop mode — when a
	// queue slot frees up (the completion of the request QueueDepth
	// places back), whichever is later.
	now := req.Time
	if e.window != nil {
		if freeAt := e.window[e.windowPos]; freeAt > now {
			now = freeAt
		}
	}
	issue := now
	// Back-pressure admission: when the device's destage backlog is at its
	// configured depth, the request waits for the oldest outstanding flush
	// batch to become durable. The stall happens after issue, so it counts
	// toward the request's response time (the host already submitted; the
	// device pushed back). A no-op (returns now) unless the device has
	// back-pressure configured.
	now = e.dev.AdmitAt(now)
	e.reqEv = RequestEvent{
		Index: i, Arrival: req.Time, Issue: issue,
		Write: req.Write, LPN: first, Pages: pages,
		Warm: i >= e.cfg.WarmupRequests,
	}
	for _, o := range e.obs {
		o.OnRequest(e, &e.reqEv)
	}

	creq := cache.Request{Time: now, Write: req.Write, LPN: first, Pages: pages}
	e.res = e.pol.Access(creq)
	completion := e.dev.CacheAccess(now, e.res.Hits+e.res.Inserted)

	// Blame attribution: each phase boundary charges its delta of the
	// running completion time to one cause, so the entries sum exactly to
	// Completion - Arrival. Dispatch charges Evict/Bypass/Read itself.
	e.blame = Blame{}
	e.blame.Ns[BlameQueue] = issue - req.Time
	e.blame.Ns[BlameStall] = now - issue
	e.blame.Ns[BlameCache] = completion - now
	gc0 := e.dev.GCPauseNs()
	var scan0 int64
	if e.scanRep != nil {
		scan0 = e.scanRep.VictimScanCost()
	}

	completion, prefetched, err := e.dispatch(now, completion)
	if err != nil || e.stopped {
		return err
	}
	e.blame.GCPauseNs = e.dev.GCPauseNs() - gc0
	if e.scanRep != nil {
		e.blame.ScanCost = e.scanRep.VictimScanCost() - scan0
	}

	if e.window != nil {
		e.window[e.windowPos] = completion
		e.windowPos = (e.windowPos + 1) % len(e.window)
	}
	e.processed++
	e.resEv = ResultEvent{
		Req: &e.reqEv, Res: &e.res,
		Completion: completion, Prefetched: prefetched,
		Processed: e.processed, NodeCount: e.pol.NodeCount(),
		Blame: e.blame,
	}
	for _, o := range e.obs {
		o.OnResult(e, &e.resEv)
	}
	if e.cfg.SoftQuotaPages > 0 && e.idler != nil && e.pol.Len() > e.cfg.SoftQuotaPages {
		return e.quotaDrain(completion)
	}
	return nil
}

// quotaDrain destages the pages buffered beyond Config.SoftQuotaPages
// (SHARED-mode sharding: borrowed capacity is pushed back out right away).
// The policy keeps victim choice; the drain stops as soon as the quota is
// met again or the policy declines to nominate a victim.
func (e *Engine) quotaDrain(now int64) error {
	for e.pol.Len() > e.cfg.SoftQuotaPages {
		ev, ok := e.idler.EvictIdle(now)
		if !ok || len(ev.LPNs) == 0 {
			break
		}
		bt, err := e.dev.FlushStriped(now, ev.LPNs)
		if err != nil {
			if e.degrade(err) {
				e.stopped = true
				return nil
			}
			return fmt.Errorf("sim: %s quota drain: %w", e.src.Name(), err)
		}
		e.emitEvictionTimed(EvictQuota, now, ev.LPNs, bt.Transferred, bt.Durable)
	}
	return nil
}

// dispatch turns the cache decision into device work: eviction flushes
// (the request waits for the victims' channel transfers — the cell
// programs continue asynchronously on the dies), bypass streams, read
// misses, and background prefetches. It returns the request's completion
// time and the prefetch count actually issued.
func (e *Engine) dispatch(now, completion int64) (int64, int, error) {
	// Evictions: flush victims; the request waits for durability.
	mark := completion
	for i := range e.res.Evictions {
		ev := &e.res.Evictions[i]
		if ev.CleanDrop {
			e.emitEviction(EvictClean, now, ev.LPNs)
			continue
		}
		// Emitted before the flush: a batch the device degrades on is
		// still a batch the policy evicted (its pages stay un-finalized
		// in the fate table, exactly as the pre-engine replay counted).
		e.emitEviction(EvictRequest, now, ev.LPNs)
		flushAt := now
		if len(ev.PaddingReads) > 0 {
			padDone, err := e.dev.ReadPages(now, ev.PaddingReads)
			if err != nil {
				return 0, 0, fmt.Errorf("sim: %s padding: %w", e.src.Name(), err)
			}
			flushAt = padDone
		}
		var bt ftl.BatchTiming
		var err error
		switch {
		case ev.BlockBound:
			bt, err = e.dev.FlushBlockBound(flushAt, ev.LPNs)
		case ev.HasChannelHint:
			bt, err = e.dev.FlushOnChannel(flushAt, ev.LPNs, ev.Channel)
		default:
			bt, err = e.dev.FlushStriped(flushAt, ev.LPNs)
		}
		if err != nil {
			if e.degrade(err) {
				e.stopped = true
				return completion, 0, nil
			}
			return 0, 0, fmt.Errorf("sim: %s flush: %w", e.src.Name(), err)
		}
		// The request waits until the victims' frames are free (their
		// transfers finish); the programs continue on the dies and delay
		// later operations through the timeline.
		if bt.Transferred > completion {
			completion = bt.Transferred
		}
	}
	e.blame.Ns[BlameEvict] += completion - mark

	// Bypassed large-write pages stream straight to flash; the request
	// blocks on their transfers like an eviction flush.
	mark = completion
	if len(e.res.Bypass) > 0 {
		bt, err := e.dev.FlushStriped(now, e.res.Bypass)
		if err != nil {
			if e.degrade(err) {
				e.stopped = true
				return completion, 0, nil
			}
			return 0, 0, fmt.Errorf("sim: %s bypass: %w", e.src.Name(), err)
		}
		if bt.Transferred > completion {
			completion = bt.Transferred
		}
	}
	e.blame.Ns[BlameBypass] += completion - mark

	// Read misses fetch from flash.
	mark = completion
	if len(e.res.ReadMisses) > 0 {
		done, err := e.dev.ReadPages(now, e.res.ReadMisses)
		if err != nil {
			return 0, 0, fmt.Errorf("sim: %s read: %w", e.src.Name(), err)
		}
		if done > completion {
			completion = done
		}
	}
	e.blame.Ns[BlameRead] += completion - mark

	// Background prefetches load the device but never block the
	// triggering request. Readahead past the end of the logical space is
	// clipped (the policy cannot know the device size).
	prefetched := 0
	if len(e.res.Prefetches) > 0 {
		pf := e.res.Prefetches[:0]
		for _, lpn := range e.res.Prefetches {
			if lpn < e.logical {
				pf = append(pf, lpn)
			}
		}
		if len(pf) > 0 {
			if _, err := e.dev.ReadPages(now, pf); err != nil {
				return 0, 0, fmt.Errorf("sim: %s prefetch: %w", e.src.Name(), err)
			}
			prefetched = len(pf)
		}
	}
	return completion, prefetched, nil
}
