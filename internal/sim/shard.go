// Sharded replay: the multi-core unlock. A splitter goroutine routes each
// trace request to one of N shard engines by tenant (explicit boundaries
// or an LBA-derived hash); every shard runs the ordinary single-threaded
// Engine on its own goroutine with its own policy instance and device, and
// a relay observer copies the shard's events — tagged with the request's
// global source ordinal — into batches. A single merger then performs a
// deterministic sequence-number min-merge across the shard streams and
// dispatches the merged events to the registered observers in exactly the
// order a single engine would have produced them. Determinism therefore
// never depends on goroutine scheduling: event contents are computed by
// the (deterministic) shard simulations and the merge order is a pure
// function of the ordinals.
//
// Flow-control shape (and why it cannot deadlock): shard input queues are
// unbounded deques with one global soft bound the splitter waits on, and
// every watermarkEvery ordinals the splitter flushes all pending request
// batches and sends each shard a watermark ("no future requests for you
// below this ordinal"). Watermarks travel through the shard's source into
// its event stream, so the merger always learns a lower bound for a quiet
// shard's next event instead of blocking on it forever. The splitter only
// ever waits on the soft bound — and it watermarks everyone first — so
// every cycle through splitter → shard → merger has a consumable minimum.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// SharingMode selects how the sharded engine divides the global buffer
// capacity among shards (MQSim's sharing modes).
type SharingMode uint8

const (
	// SharingShared gives every shard the full global capacity with a
	// per-shard soft quota of capacity/N: a shard may transiently borrow
	// past its slice, but the engine destages the overflow immediately
	// (Config.SoftQuotaPages), so the global footprint stays bounded.
	SharingShared SharingMode = iota
	// SharingEqual hard-partitions the capacity into N equal slices
	// (MQSim's EQUAL_PARTITIONING).
	SharingEqual
)

// String names the mode as the CLI flags spell it.
func (m SharingMode) String() string {
	if m == SharingEqual {
		return "equal"
	}
	return "shared"
}

// ParseSharing parses a CLI sharing-mode name.
func ParseSharing(s string) (SharingMode, error) {
	switch s {
	case "shared":
		return SharingShared, nil
	case "equal":
		return SharingEqual, nil
	}
	return SharingShared, fmt.Errorf("sim: unknown sharing mode %q (want shared or equal)", s)
}

// ShardQuota returns one shard's policy capacity and soft quota under a
// sharing mode. EQUAL returns a hard capacity/N slice (remainder pages go
// to the low shards) and no quota; SHARED returns the full capacity plus a
// capacity/N soft quota.
func ShardQuota(mode SharingMode, totalPages, shards, shard int) (capacityPages, softQuota int) {
	share := totalPages / shards
	if shard < totalPages%shards {
		share++
	}
	if mode == SharingEqual {
		return share, 0
	}
	return totalPages, share
}

// ShardConfig configures a sharded run.
type ShardConfig struct {
	// Shards is the partition count, >= 1.
	Shards int
	// Sharing selects SHARED or EQUAL_PARTITIONING capacity division.
	Sharing SharingMode
	// TotalCapacityPages is the global buffer capacity divided per Sharing.
	TotalCapacityPages int
	// NewPolicy builds shard k's policy instance with its capacity slice.
	NewPolicy func(shard, capacityPages int) cache.Policy
	// NewDevice builds shard k's device. Each shard owns a full device
	// (the Device type is single-threaded); this models allocating each
	// partition its own backend slice.
	NewDevice func(shard int) (*ssd.Device, error)
	// TenantBoundaries, when set, routes requests to shards by tenant:
	// tenant t owns pages [boundary_{t-1}, boundary_t) and maps to shard
	// t mod Shards. Empty boundaries fall back to hashing the request's
	// TenantRegionPages-sized region, spreading unlabeled traces evenly.
	TenantBoundaries []int64
	// TenantRegionPages sizes the hash regions used without explicit
	// boundaries. Zero defaults to 4096 pages (16 MiB at 4 KiB pages).
	TenantRegionPages int64
	// BackPressureDepth bounds each shard device's destage backlog
	// (ssd.Device.SetBackPressure). Zero disables.
	BackPressureDepth int
	// Engine is the per-shard engine config. WarmupRequests counts global
	// source ordinals (the relay rewrites warmth), and SoftQuotaPages is
	// overwritten per the sharing mode.
	Engine Config
	// StopAfterRequests, when positive, stops routing after that many
	// non-empty requests reached shards — the sharded form of the crash
	// harness's Stop (a global power-loss point must cut the request
	// stream at one ordinal, not per-shard).
	StopAfterRequests int
	// CaptureOccupancy samples each OccupancySampler policy's list sizes
	// at every result and carries the sample to ShardAware observers.
	CaptureOccupancy bool
	// ShardObservers, when set, returns extra observers attached directly
	// to shard k's engine (e.g. per-shard telemetry). They run on the
	// shard's goroutine and see the shard-local event stream.
	ShardObservers func(shard int, eng *Engine) []Observer
}

// ShardAware is implemented by merged-stream observers that want each
// result's shard provenance and (when ShardConfig.CaptureOccupancy is set)
// the policy's occupancy sample at that result. The merger calls it right
// after the observer's OnResult. The occupancy slice is only valid during
// the call.
type ShardAware interface {
	OnShardResult(shard int, occupancy []int, ev *ResultEvent)
}

const (
	defaultTenantRegionPages = 4096
	reqBatchLen              = 256  // requests per splitter→shard batch
	eventBatchLen            = 256  // events per shard→merger batch
	watermarkEvery           = 1024 // ordinals between splitter watermark rounds
	outChanCap               = 8    // event batches buffered per shard
	backlogPerShard          = 8192 // soft bound on queued requests, per shard
)

// splitmix64 is the finalizer of Vigna's SplitMix64 generator — a cheap,
// well-distributed 64-bit mix for region→shard routing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RouteLPN maps a request's first page to a shard using the same routing
// the splitter applies: explicit tenant boundaries when present (tenant t
// maps to shard t mod shards), otherwise the splitmix64 hash of the LPN's
// regionPages-sized address region. Exported so front-ends (the service
// layer) route exactly like a sharded replay would; regionPages <= 0
// selects the default region size.
func RouteLPN(lpn int64, boundaries []int64, regionPages int64, shards int) int {
	if len(boundaries) > 0 {
		t := sort.Search(len(boundaries), func(i int) bool { return lpn < boundaries[i] })
		return t % shards
	}
	if regionPages <= 0 {
		regionPages = defaultTenantRegionPages
	}
	return int(splitmix64(uint64(lpn/regionPages)) % uint64(shards))
}

// seqReq is one routed request with its global source ordinal.
type seqReq struct {
	req trace.Request
	seq int64
}

// reqBatch is one splitter→shard message: a run of requests, or a bare
// watermark promising that every future request for this shard has a
// larger ordinal.
type reqBatch struct {
	reqs      []seqReq
	watermark int64
}

// shardQueue is an unbounded FIFO of request batches. Unbounded is what
// makes the splitter's sends non-blocking (the deadlock-freedom argument
// above); the global backlog soft bound keeps memory finite.
type shardQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	batches []reqBatch
	head    int
	closed  bool
}

func newShardQueue() *shardQueue {
	q := &shardQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *shardQueue) push(b reqBatch) {
	q.mu.Lock()
	q.batches = append(q.batches, b)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks until a batch is available or the queue is closed and empty.
func (q *shardQueue) pop() (reqBatch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.batches) && !q.closed {
		q.cond.Wait()
	}
	if q.head >= len(q.batches) {
		return reqBatch{}, false
	}
	b := q.batches[q.head]
	q.batches[q.head] = reqBatch{}
	q.head++
	if q.head == len(q.batches) {
		q.batches = q.batches[:0]
		q.head = 0
	}
	return b, true
}

// backlog is the global soft bound on splitter-queued requests.
type backlog struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	limit int
}

func newBacklog(limit int) *backlog {
	b := &backlog{limit: limit}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *backlog) add(n int) {
	b.mu.Lock()
	b.n += n
	b.mu.Unlock()
}

func (b *backlog) sub(n int) {
	b.mu.Lock()
	b.n -= n
	b.mu.Unlock()
	b.cond.Broadcast()
}

// waitBelow blocks while the backlog is at or above the limit. The
// splitter calls it only after watermarking every shard, so the pipeline
// can always drain while it waits.
func (b *backlog) waitBelow() {
	b.mu.Lock()
	for b.n >= b.limit {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// shardSource adapts a shard's queue to trace.Source for its engine. seq
// tracks the ordinal of the request most recently yielded — the relay tags
// every event the engine emits between Next calls with it, which is exact
// because the engine fully processes one request before pulling the next.
type shardSource struct {
	name  string
	q     *shardQueue
	bl    *backlog
	relay *shardRelay
	cur   reqBatch
	pos   int
	seq   int64
}

func (s *shardSource) Name() string { return s.name }
func (s *shardSource) Err() error   { return nil }

func (s *shardSource) Next() (trace.Request, bool) {
	for {
		if s.pos < len(s.cur.reqs) {
			r := s.cur.reqs[s.pos]
			s.pos++
			s.seq = r.seq
			return r.req, true
		}
		b, ok := s.q.pop()
		if !ok {
			return trace.Request{}, false
		}
		if n := len(b.reqs); n > 0 {
			s.bl.sub(n)
		}
		if b.watermark > 0 {
			s.relay.watermark(b.watermark)
		}
		s.cur, s.pos = b, 0
	}
}

// shardEvent kinds inside an eventBatch.
type shardEventKind uint8

const (
	sevRequest shardEventKind = iota
	sevEviction
	sevResult
	sevWatermark
)

// shardEvent is one relayed engine event (or a watermark), tagged with the
// owning request's global ordinal. Slice fields point into the batch's
// arenas.
type shardEvent struct {
	kind shardEventKind
	seq  int64

	req RequestEvent // sevRequest, sevResult (already ordinal-rewritten)

	// sevResult
	res        cache.Result
	completion int64
	prefetched int
	nodeCount  int
	blame      Blame
	occ        []int

	// sevEviction
	evKind      EvictionKind
	evTime      int64
	lpns        []int64
	transferred int64
	durable     int64
	scanCost    int64
}

// eventBatch is one shard→merger message. The arenas back the events'
// slice fields so relaying a batch costs a handful of allocations total,
// not one per event; batches recycle through a free list.
type eventBatch struct {
	ev   []shardEvent
	lpns []int64
	evs  []cache.Eviction
	occ  []int
}

func (b *eventBatch) reset() {
	b.ev = b.ev[:0]
	b.lpns = b.lpns[:0]
	b.evs = b.evs[:0]
	b.occ = b.occ[:0]
}

// carveLPNs appends src to the LPN arena and returns the capacity-clipped
// window holding the copy. Later arena growth may reallocate the backing
// array, but the window keeps pointing at the old one — the same trick
// cache.ResultBuffers uses.
func (b *eventBatch) carveLPNs(src []int64) []int64 {
	if len(src) == 0 {
		return nil
	}
	mark := len(b.lpns)
	b.lpns = append(b.lpns, src...)
	return b.lpns[mark:len(b.lpns):len(b.lpns)]
}

// shardRelay is the observer attached first on every shard engine: it
// copies each event into the current batch, rewriting Index/Warm to the
// request's global ordinal, and ships full batches to the merger.
type shardRelay struct {
	src     *shardSource
	sampler cache.OccupancySampler // nil unless capturing occupancy
	out     chan *eventBatch
	free    chan *eventBatch
	cur     *eventBatch
	warmup  int // global warmup threshold (ordinals)
}

func (r *shardRelay) batch() *eventBatch {
	if r.cur == nil {
		select {
		case b := <-r.free:
			r.cur = b
		default:
			r.cur = &eventBatch{ev: make([]shardEvent, 0, eventBatchLen)}
		}
	}
	return r.cur
}

func (r *shardRelay) flush() {
	if r.cur != nil && len(r.cur.ev) > 0 {
		r.out <- r.cur
		r.cur = nil
	}
}

func (r *shardRelay) maybeFlush() {
	if r.cur != nil && len(r.cur.ev) >= eventBatchLen {
		r.flush()
	}
}

// watermark forwards a splitter watermark downstream. It must flush so the
// merger sees it promptly — that visibility is the liveness guarantee.
func (r *shardRelay) watermark(seq int64) {
	b := r.batch()
	b.ev = append(b.ev, shardEvent{kind: sevWatermark, seq: seq})
	r.flush()
}

// rewrite returns ev with Index/Warm recomputed from the global ordinal,
// so merged streams are indistinguishable from a single engine's.
func (r *shardRelay) rewrite(ev *RequestEvent) RequestEvent {
	req := *ev
	req.Index = int(r.src.seq)
	req.Warm = req.Index >= r.warmup
	return req
}

func (r *shardRelay) OnRequest(_ *Engine, ev *RequestEvent) {
	b := r.batch()
	b.ev = append(b.ev, shardEvent{kind: sevRequest, seq: r.src.seq, req: r.rewrite(ev)})
	r.maybeFlush()
}

func (r *shardRelay) OnEviction(_ *Engine, ev *EvictionEvent) {
	b := r.batch()
	b.ev = append(b.ev, shardEvent{
		kind: sevEviction, seq: r.src.seq,
		evKind: ev.Kind, evTime: ev.Time, lpns: b.carveLPNs(ev.LPNs),
		transferred: ev.Transferred, durable: ev.Durable, scanCost: ev.ScanCost,
	})
	r.maybeFlush()
}

func (r *shardRelay) OnResult(_ *Engine, ev *ResultEvent) {
	b := r.batch()
	rec := shardEvent{
		kind: sevResult, seq: r.src.seq,
		req:        r.rewrite(ev.Req),
		completion: ev.Completion,
		prefetched: ev.Prefetched,
		nodeCount:  ev.NodeCount,
		blame:      ev.Blame,
	}
	// Deep-copy the result: its slices alias policy buffers that the next
	// Access overwrites, and the merger reads them on another goroutine.
	res := *ev.Res
	res.ReadMisses = b.carveLPNs(res.ReadMisses)
	res.Prefetches = b.carveLPNs(res.Prefetches)
	res.Bypass = b.carveLPNs(res.Bypass)
	if n := len(res.Evictions); n > 0 {
		mark := len(b.evs)
		for i := range res.Evictions {
			src := res.Evictions[i]
			src.LPNs = b.carveLPNs(src.LPNs)
			src.PaddingReads = b.carveLPNs(src.PaddingReads)
			b.evs = append(b.evs, src)
		}
		res.Evictions = b.evs[mark:len(b.evs):len(b.evs)]
	}
	rec.res = res
	if r.sampler != nil {
		mark := len(b.occ)
		b.occ = r.sampler.AppendOccupancy(b.occ)
		rec.occ = b.occ[mark:len(b.occ):len(b.occ)]
	}
	b.ev = append(b.ev, rec)
	r.maybeFlush()
}

func (r *shardRelay) OnDone(_ *Engine, _ *DoneEvent) { r.flush() }

// ShardedEngine replays one source across N shard engines and re-merges
// their event streams deterministically. Build with NewSharded, register
// merged-stream observers with Observe, then call Run once.
type ShardedEngine struct {
	src trace.Source
	cfg ShardConfig
	obs []Observer

	pols    []cache.Policy
	devs    []*ssd.Device
	engines []*Engine
	relays  []*shardRelay
	queues  []*shardQueue
	bl      *backlog
	dones   []DoneEvent

	stoppedFeed bool // StopAfterRequests tripped
}

// NewSharded validates the config and builds every shard's policy, device
// and engine (accessible via ShardPolicies/ShardDevices before Run — the
// replay layer needs them to assemble observers).
func NewSharded(src trace.Source, cfg ShardConfig) (*ShardedEngine, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("sim: shards %d, need >= 1", cfg.Shards)
	}
	if cfg.NewPolicy == nil || cfg.NewDevice == nil {
		return nil, fmt.Errorf("sim: sharded config needs NewPolicy and NewDevice")
	}
	if cfg.TotalCapacityPages < cfg.Shards {
		return nil, fmt.Errorf("sim: capacity %d pages across %d shards leaves empty shards",
			cfg.TotalCapacityPages, cfg.Shards)
	}
	if cfg.BackPressureDepth < 0 {
		return nil, fmt.Errorf("sim: back-pressure depth %d is negative (0 disables)", cfg.BackPressureDepth)
	}
	if cfg.StopAfterRequests < 0 {
		return nil, fmt.Errorf("sim: stop-after %d is negative (0 disables)", cfg.StopAfterRequests)
	}
	if cfg.TenantRegionPages < 0 {
		return nil, fmt.Errorf("sim: tenant region %d pages is negative (0 selects the default)", cfg.TenantRegionPages)
	}
	// Region hashing and explicit boundaries are competing routing schemes;
	// configuring both means one of them is silently dead — reject instead.
	if cfg.TenantRegionPages > 0 && len(cfg.TenantBoundaries) > 0 {
		return nil, fmt.Errorf("sim: tenant region pages (%d) conflicts with explicit tenant boundaries (%d): boundaries route, regions would be ignored",
			cfg.TenantRegionPages, len(cfg.TenantBoundaries))
	}
	if cfg.TenantRegionPages == 0 {
		cfg.TenantRegionPages = defaultTenantRegionPages
	}
	if !sort.SliceIsSorted(cfg.TenantBoundaries, func(i, j int) bool {
		return cfg.TenantBoundaries[i] < cfg.TenantBoundaries[j]
	}) {
		return nil, fmt.Errorf("sim: tenant boundaries must be sorted")
	}

	s := &ShardedEngine{
		src: src, cfg: cfg,
		pols:    make([]cache.Policy, cfg.Shards),
		devs:    make([]*ssd.Device, cfg.Shards),
		engines: make([]*Engine, cfg.Shards),
		relays:  make([]*shardRelay, cfg.Shards),
		queues:  make([]*shardQueue, cfg.Shards),
		dones:   make([]DoneEvent, cfg.Shards),
		bl:      newBacklog(cfg.Shards * backlogPerShard),
	}
	for k := 0; k < cfg.Shards; k++ {
		capPages, quota := ShardQuota(cfg.Sharing, cfg.TotalCapacityPages, cfg.Shards, k)
		pol := cfg.NewPolicy(k, capPages)
		if pol == nil {
			return nil, fmt.Errorf("sim: NewPolicy returned nil for shard %d", k)
		}
		dev, err := cfg.NewDevice(k)
		if err != nil {
			return nil, fmt.Errorf("sim: shard %d device: %w", k, err)
		}
		if cfg.BackPressureDepth > 0 {
			dev.SetBackPressure(cfg.BackPressureDepth)
		}
		ecfg := cfg.Engine
		// Warmth is an ordinal property of the global stream; the relay
		// rewrites it, so the shard engine itself never marks cold.
		ecfg.WarmupRequests = 0
		ecfg.SoftQuotaPages = 0
		if cfg.Sharing == SharingShared {
			ecfg.SoftQuotaPages = quota
		}
		relay := &shardRelay{
			out:    make(chan *eventBatch, outChanCap),
			free:   make(chan *eventBatch, outChanCap+2),
			warmup: cfg.Engine.WarmupRequests,
		}
		if cfg.CaptureOccupancy {
			relay.sampler, _ = pol.(cache.OccupancySampler)
		}
		srcK := &shardSource{name: src.Name(), q: newShardQueue(), bl: s.bl, relay: relay}
		relay.src = srcK
		eng := New(srcK, pol, dev, ecfg)
		eng.Observe(relay)
		if cfg.ShardObservers != nil {
			eng.Observe(cfg.ShardObservers(k, eng)...)
		}
		s.pols[k], s.devs[k], s.engines[k] = pol, dev, eng
		s.relays[k], s.queues[k] = relay, srcK.q
	}
	return s, nil
}

// Observe registers merged-stream observers; they receive the merged
// events in registration order, with a nil *Engine (no single engine's
// live state is race-free to read from the merger).
func (s *ShardedEngine) Observe(obs ...Observer) { s.obs = append(s.obs, obs...) }

// ShardPolicies returns each shard's policy instance. Only read them
// before Run or after it returns.
func (s *ShardedEngine) ShardPolicies() []cache.Policy { return s.pols }

// ShardDevices returns each shard's device (same access rule).
func (s *ShardedEngine) ShardDevices() []*ssd.Device { return s.devs }

// ShardDones returns each shard engine's run summary, valid after Run.
func (s *ShardedEngine) ShardDones() []DoneEvent { return s.dones }

// StoppedFeeding reports whether StopAfterRequests cut the stream.
func (s *ShardedEngine) StoppedFeeding() bool { return s.stoppedFeed }

// shardOf routes a request's first page to a shard.
func (s *ShardedEngine) shardOf(lpn int64) int {
	return RouteLPN(lpn, s.cfg.TenantBoundaries, s.cfg.TenantRegionPages, s.cfg.Shards)
}

// splitResult is what the splitter goroutine reports back.
type splitResult struct {
	hasRequests  bool
	firstArrival int64
	lastArrival  int64
	err          error
}

// split routes the source across the shard queues. It runs on its own
// goroutine and owns the source.
func (s *ShardedEngine) split(res *splitResult) {
	n := s.cfg.Shards
	pageSize := s.devs[0].PageSize()
	pending := make([][]seqReq, n)
	closed := false
	closeAll := func() {
		if closed {
			return
		}
		closed = true
		for k := 0; k < n; k++ {
			if len(pending[k]) > 0 {
				s.bl.add(len(pending[k]))
				s.queues[k].push(reqBatch{reqs: pending[k]})
				pending[k] = nil
			}
			s.queues[k].close()
		}
	}
	defer closeAll()

	fed := 0
	for i := int64(0); ; i++ {
		req, ok := s.src.Next()
		if !ok {
			break
		}
		if !res.hasRequests {
			res.hasRequests = true
			res.firstArrival = req.Time
		}
		res.lastArrival = req.Time
		if closed {
			continue // post-crash horizon drain: arrivals only
		}

		first, pages := req.PageSpan(pageSize)
		k := s.shardOf(first)
		pending[k] = append(pending[k], seqReq{req: req, seq: i})
		if len(pending[k]) >= reqBatchLen {
			s.bl.add(len(pending[k]))
			s.queues[k].push(reqBatch{reqs: pending[k]})
			pending[k] = nil
		}
		if pages > 0 {
			fed++
			if s.cfg.StopAfterRequests > 0 && fed >= s.cfg.StopAfterRequests {
				// Global power-loss point: deliver everything routed so
				// far (including this request) and cut the stream.
				s.stoppedFeed = true
				closeAll()
				continue
			}
		}
		if i%watermarkEvery == watermarkEvery-1 {
			for k := 0; k < n; k++ {
				if len(pending[k]) > 0 {
					s.bl.add(len(pending[k]))
					s.queues[k].push(reqBatch{reqs: pending[k]})
					pending[k] = nil
				} else {
					s.queues[k].push(reqBatch{watermark: i + 1})
				}
			}
			// Wait (if at the soft bound) only after every shard has
			// fresh progress information — the no-deadlock invariant.
			s.bl.waitBelow()
		}
	}
	res.err = s.src.Err()
}

// Run replays the source across the shards and returns the merged run
// summary. It may be called once per ShardedEngine.
func (s *ShardedEngine) Run() (DoneEvent, error) {
	n := s.cfg.Shards

	var split splitResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.split(&split)
	}()

	errs := make([]error, n)
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s.dones[k], errs[k] = s.engines[k].Run()
			// On an engine error the queue may still hold batches the
			// splitter accounted to the backlog; drain them so the
			// splitter's soft-bound wait can always make progress.
			for {
				b, ok := s.queues[k].pop()
				if !ok {
					break
				}
				if len(b.reqs) > 0 {
					s.bl.sub(len(b.reqs))
				}
			}
			s.relays[k].flush()
			close(s.relays[k].out)
		}(k)
	}

	processed := s.merge()
	wg.Wait()

	// Deterministic error priority: shards by index, then the source.
	for k := 0; k < n; k++ {
		if errs[k] != nil {
			return DoneEvent{}, fmt.Errorf("sim: shard %d: %w", k, errs[k])
		}
	}
	if split.err != nil {
		return DoneEvent{}, split.err
	}

	done := DoneEvent{
		Processed:    processed,
		HasRequests:  split.hasRequests,
		FirstArrival: split.firstArrival,
		LastArrival:  split.lastArrival,
		Stopped:      s.stoppedFeed,
	}
	for k := 0; k < n; k++ {
		d := s.dones[k]
		done.IdleGCRuns += d.IdleGCRuns
		if d.Stopped {
			done.Stopped = true
		}
		if d.Degraded {
			done.Degraded = true
			// Shard-local processed count at degradation; under sharding
			// this is a per-shard ordinal, so report the largest.
			if d.DegradedAtRequest > done.DegradedAtRequest {
				done.DegradedAtRequest = d.DegradedAtRequest
			}
		}
	}
	for _, o := range s.obs {
		o.OnDone(nil, &done)
	}
	return done, nil
}

// merge is the deterministic sequence-number min-merge: it repeatedly
// dispatches the event with the smallest global ordinal across all shard
// streams. Runs on the caller's goroutine and returns the merged processed
// count.
func (s *ShardedEngine) merge() int {
	n := s.cfg.Shards
	type head struct {
		b *eventBatch
		i int
	}
	hs := make([]head, n)
	open := make([]bool, n)
	for k := range open {
		open[k] = true
	}
	// Per-shard node counts fold into one global population, as a single
	// engine over one policy would have reported.
	nodes := make([]int, n)
	nodeSum := 0
	processed := 0

	shardAware := make([]ShardAware, 0, len(s.obs))
	for _, o := range s.obs {
		if sa, ok := o.(ShardAware); ok {
			shardAware = append(shardAware, sa)
		}
	}

	// Reusable dispatch events, mirroring the single engine's zero-alloc
	// emission contract.
	var reqEv RequestEvent
	var evEv EvictionEvent
	var resEv ResultEvent

	recycle := func(k int, b *eventBatch) {
		b.reset()
		select {
		case s.relays[k].free <- b:
		default:
		}
	}
	// ensure blocks until shard k has a head event or its stream closed.
	ensure := func(k int) bool {
		h := &hs[k]
		for {
			if h.b != nil && h.i < len(h.b.ev) {
				return true
			}
			if h.b != nil {
				recycle(k, h.b)
				h.b = nil
			}
			b, ok := <-s.relays[k].out
			if !ok {
				open[k] = false
				return false
			}
			h.b, h.i = b, 0
		}
	}

	for {
		best := -1
		bestSeq := int64(math.MaxInt64)
		for k := 0; k < n; k++ {
			if !open[k] || !ensure(k) {
				continue
			}
			if seq := hs[k].b.ev[hs[k].i].seq; seq < bestSeq {
				best, bestSeq = k, seq
			}
		}
		if best == -1 {
			break
		}
		rec := &hs[best].b.ev[hs[best].i]
		hs[best].i++
		switch rec.kind {
		case sevWatermark:
			// Progress marker only; produces no observer calls.
		case sevRequest:
			reqEv = rec.req
			for _, o := range s.obs {
				o.OnRequest(nil, &reqEv)
			}
		case sevEviction:
			evEv = EvictionEvent{
				Kind: rec.evKind, Time: rec.evTime, LPNs: rec.lpns,
				Transferred: rec.transferred, Durable: rec.durable,
				ScanCost: rec.scanCost,
			}
			for _, o := range s.obs {
				o.OnEviction(nil, &evEv)
			}
		case sevResult:
			processed++
			nodeSum += rec.nodeCount - nodes[best]
			nodes[best] = rec.nodeCount
			reqEv = rec.req
			resEv = ResultEvent{
				Req: &reqEv, Res: &rec.res,
				Completion: rec.completion, Prefetched: rec.prefetched,
				Processed: processed, NodeCount: nodeSum,
				Blame: rec.blame,
			}
			for _, o := range s.obs {
				o.OnResult(nil, &resEv)
			}
			for _, sa := range shardAware {
				sa.OnShardResult(best, rec.occ, &resEv)
			}
		}
	}
	return processed
}
