package sim

import (
	"strings"
	"testing"

	"repro/internal/cache"
)

// The watchdog is exercised end-to-end (attached to real replays across
// policies and configurations) in internal/replay's invariants test; here
// each violation class is synthesized directly so we know the observer
// actually catches what it claims to.

func TestInvariantObserverCleanRun(t *testing.T) {
	var o InvariantObserver
	req := RequestEvent{Index: 0, Arrival: 10, Issue: 10, Write: true, LPN: 0, Pages: 2}
	o.OnRequest(nil, &req)
	o.OnEviction(nil, &EvictionEvent{Kind: EvictRequest, Time: 10, LPNs: []int64{7}})
	o.OnResult(nil, &ResultEvent{Req: &req, Res: &cache.Result{Hits: 0, Misses: 2}, Completion: 12, Processed: 1})
	req2 := RequestEvent{Index: 1, Arrival: 20, Issue: 25, Write: false, LPN: 4, Pages: 1}
	o.OnRequest(nil, &req2)
	o.OnResult(nil, &ResultEvent{Req: &req2, Res: &cache.Result{Hits: 1}, Completion: 25, Processed: 2})
	o.OnDone(nil, &DoneEvent{Processed: 2})
	if err := o.Err(); err != nil {
		t.Fatalf("clean event stream flagged: %v", err)
	}
}

func TestInvariantObserverViolations(t *testing.T) {
	base := func() (*InvariantObserver, *RequestEvent) {
		o := &InvariantObserver{}
		req := &RequestEvent{Index: 0, Arrival: 100, Issue: 100, Write: true, LPN: 0, Pages: 1}
		o.OnRequest(nil, req)
		return o, req
	}
	cases := []struct {
		name string
		want string
		run  func(o *InvariantObserver, req *RequestEvent)
	}{
		{"arrival goes backwards", "before previous arrival", func(o *InvariantObserver, _ *RequestEvent) {
			o.OnRequest(nil, &RequestEvent{Index: 1, Arrival: 50, Issue: 50, Pages: 1})
		}},
		{"issue before arrival", "before its arrival", func(o *InvariantObserver, _ *RequestEvent) {
			o.OnRequest(nil, &RequestEvent{Index: 1, Arrival: 200, Issue: 150, Pages: 1})
		}},
		{"completion before issue", "before its issue", func(o *InvariantObserver, req *RequestEvent) {
			o.OnResult(nil, &ResultEvent{Req: req, Res: &cache.Result{Misses: 1}, Completion: 90, Processed: 1})
		}},
		{"processed counter skips", "processed counter", func(o *InvariantObserver, req *RequestEvent) {
			o.OnResult(nil, &ResultEvent{Req: req, Res: &cache.Result{Misses: 1}, Completion: 100, Processed: 2})
		}},
		{"hits plus misses off", "hits+misses", func(o *InvariantObserver, req *RequestEvent) {
			o.OnResult(nil, &ResultEvent{Req: req, Res: &cache.Result{Hits: 2}, Completion: 100, Processed: 1})
		}},
		{"empty eviction", "empty", func(o *InvariantObserver, _ *RequestEvent) {
			o.OnEviction(nil, &EvictionEvent{Kind: EvictRequest, Time: 100})
		}},
		{"destage time backwards", "before previous one", func(o *InvariantObserver, _ *RequestEvent) {
			o.OnEviction(nil, &EvictionEvent{Kind: EvictDestage, Time: 100, LPNs: []int64{1}})
			o.OnEviction(nil, &EvictionEvent{Kind: EvictDestage, Time: 90, LPNs: []int64{2}})
		}},
		{"done count mismatch", "saw 1 results", func(o *InvariantObserver, req *RequestEvent) {
			o.OnResult(nil, &ResultEvent{Req: req, Res: &cache.Result{Misses: 1}, Completion: 100, Processed: 1})
			o.OnDone(nil, &DoneEvent{Processed: 5})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, req := base()
			tc.run(o, req)
			err := o.Err()
			if err == nil {
				t.Fatalf("violation not caught")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("wrong violation: got %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestInvariantObserverKeepsFirstError pins that later violations cannot
// mask the original one.
func TestInvariantObserverKeepsFirstError(t *testing.T) {
	o := &InvariantObserver{}
	o.OnRequest(nil, &RequestEvent{Index: 0, Arrival: -5, Issue: -5, Pages: 1})
	first := o.Err()
	if first == nil {
		t.Fatal("negative arrival not caught")
	}
	o.OnEviction(nil, &EvictionEvent{Kind: EvictRequest, Time: 0})
	if o.Err() != first {
		t.Fatalf("first error overwritten: %v", o.Err())
	}
	// Idle flushes are exempt from dispatch monotonicity by design.
	o2 := &InvariantObserver{}
	o2.OnEviction(nil, &EvictionEvent{Kind: EvictIdle, Time: 100, LPNs: []int64{1}})
	o2.OnEviction(nil, &EvictionEvent{Kind: EvictIdle, Time: 50, LPNs: []int64{2}})
	if err := o2.Err(); err != nil {
		t.Fatalf("idle flushes wrongly held to monotonic dispatch: %v", err)
	}
}
