package sim

import (
	"fmt"
	"testing"
)

// recordingObserver logs every hook call with its own tag.
type recordingObserver struct {
	tag string
	log *[]string
}

func (r recordingObserver) OnRequest(*Engine, *RequestEvent) {
	*r.log = append(*r.log, r.tag+":request")
}
func (r recordingObserver) OnEviction(*Engine, *EvictionEvent) {
	*r.log = append(*r.log, r.tag+":eviction")
}
func (r recordingObserver) OnResult(*Engine, *ResultEvent) {
	*r.log = append(*r.log, r.tag+":result")
}
func (r recordingObserver) OnDone(*Engine, *DoneEvent) {
	*r.log = append(*r.log, r.tag+":done")
}

// Observers must deliver every event to every element in registration
// order, including through nesting.
func TestObserversFanOut(t *testing.T) {
	var log []string
	inner := Observers{recordingObserver{"b", &log}, recordingObserver{"c", &log}}
	os := Observers{recordingObserver{"a", &log}, inner}

	os.OnRequest(nil, &RequestEvent{})
	os.OnEviction(nil, &EvictionEvent{})
	os.OnResult(nil, &ResultEvent{})
	os.OnDone(nil, &DoneEvent{})

	want := []string{
		"a:request", "b:request", "c:request",
		"a:eviction", "b:eviction", "c:eviction",
		"a:result", "b:result", "c:result",
		"a:done", "b:done", "c:done",
	}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("fan-out order:\ngot  %v\nwant %v", log, want)
	}
}

// A nil Observers value must be a usable no-op observer.
func TestObserversNilSafe(t *testing.T) {
	var os Observers
	os.OnRequest(nil, &RequestEvent{})
	os.OnEviction(nil, &EvictionEvent{})
	os.OnResult(nil, &ResultEvent{})
	os.OnDone(nil, &DoneEvent{})
}

// countingObserver only increments a counter — the fan-out loop's own cost
// is what the alloc guard below measures.
type countingObserver struct{ n *int }

func (c countingObserver) OnRequest(*Engine, *RequestEvent)   { *c.n++ }
func (c countingObserver) OnEviction(*Engine, *EvictionEvent) { *c.n++ }
func (c countingObserver) OnResult(*Engine, *ResultEvent)     { *c.n++ }
func (c countingObserver) OnDone(*Engine, *DoneEvent)         { *c.n++ }

// The fan-out loop itself must not allocate: the engine's zero-alloc
// guarantee extends through composed observer stacks.
func TestObserversFanOutAllocs(t *testing.T) {
	n := 0
	os := Observers{countingObserver{&n}, countingObserver{&n}}
	ev := &RequestEvent{}
	if got := testing.AllocsPerRun(1000, func() {
		os.OnRequest(nil, ev)
	}); got > 0 {
		t.Fatalf("Observers fan-out allocs/event = %v, want 0", got)
	}
	if n == 0 {
		t.Fatal("observers never ran")
	}
}
