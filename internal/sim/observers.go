package sim

// Observers fans every engine event out to each element in order. It lets
// callers compose observer stacks — replay's metric observers plus a
// command's telemetry observers — as one value instead of hand-rolled
// chaining, and it is itself an Observer, so stacks nest.
//
// The fan-out loop allocates nothing; a nil or empty Observers is a valid
// no-op observer.
type Observers []Observer

var _ Observer = Observers(nil)

// OnRequest implements Observer.
func (os Observers) OnRequest(e *Engine, ev *RequestEvent) {
	for _, o := range os {
		o.OnRequest(e, ev)
	}
}

// OnEviction implements Observer.
func (os Observers) OnEviction(e *Engine, ev *EvictionEvent) {
	for _, o := range os {
		o.OnEviction(e, ev)
	}
}

// OnResult implements Observer.
func (os Observers) OnResult(e *Engine, ev *ResultEvent) {
	for _, o := range os {
		o.OnResult(e, ev)
	}
}

// OnDone implements Observer.
func (os Observers) OnDone(e *Engine, ev *DoneEvent) {
	for _, o := range os {
		o.OnDone(e, ev)
	}
}
