package sim

import "fmt"

// InvariantObserver is a cross-layer watchdog attachable to any engine
// run (replay.Options.Observers accepts it): it checks the ordering and
// accounting properties every correct run must satisfy, regardless of
// policy, trace or configuration.
//
//   - request arrivals are non-decreasing and never negative;
//   - a request is never issued before it arrives (closed-loop queuing
//     only delays), and never completes before it was issued;
//   - the processed counter increments by exactly one per result;
//   - eviction batches are non-empty and the request, clean-drop and
//     destage stages dispatch them at non-decreasing times (idle flushes
//     are exempt: their dispatch is stamped with device frame-free times,
//     which may step back across idle windows);
//   - the final DoneEvent's processed count matches the results seen.
//
// The first violation is captured and kept (later events are still
// checked but cannot overwrite it); Err returns it. The observer
// allocates only on failure, so it is safe to attach to the zero-alloc
// replay path — including under `go test -race` runs of the full grids.
type InvariantObserver struct {
	NopObserver

	err error

	started      bool
	lastArrival  int64
	lastEviction [4]int64 // per EvictionKind, dispatch-time high-water mark
	haveEviction [4]bool
	results      int
	done         bool
}

// fail records the first violation.
func (o *InvariantObserver) fail(format string, args ...any) {
	if o.err == nil {
		o.err = fmt.Errorf("sim invariant: "+format, args...)
	}
}

// Err returns the first violation observed, or nil.
func (o *InvariantObserver) Err() error { return o.err }

// OnRequest implements Observer.
func (o *InvariantObserver) OnRequest(e *Engine, ev *RequestEvent) {
	if ev.Pages < 1 || ev.LPN < 0 {
		o.fail("request %d malformed: lpn %d, %d pages", ev.Index, ev.LPN, ev.Pages)
	}
	if ev.Arrival < 0 {
		o.fail("request %d arrives at negative time %d", ev.Index, ev.Arrival)
	}
	if o.started && ev.Arrival < o.lastArrival {
		o.fail("request %d arrival %d before previous arrival %d", ev.Index, ev.Arrival, o.lastArrival)
	}
	o.started, o.lastArrival = true, ev.Arrival
	if ev.Issue < ev.Arrival {
		o.fail("request %d issued at %d before its arrival %d", ev.Index, ev.Issue, ev.Arrival)
	}
}

// OnEviction implements Observer.
func (o *InvariantObserver) OnEviction(e *Engine, ev *EvictionEvent) {
	if len(ev.LPNs) == 0 {
		o.fail("empty %s eviction batch at %d", ev.Kind, ev.Time)
	}
	k := int(ev.Kind)
	if k >= len(o.lastEviction) {
		o.fail("unknown eviction kind %d", k)
		return
	}
	if ev.Kind != EvictIdle {
		if o.haveEviction[k] && ev.Time < o.lastEviction[k] {
			o.fail("%s eviction at %d before previous one at %d", ev.Kind, ev.Time, o.lastEviction[k])
		}
		o.haveEviction[k], o.lastEviction[k] = true, ev.Time
	}
	if ev.Durable != 0 && ev.Durable < ev.Transferred {
		o.fail("%s eviction durable at %d before transfer finished at %d", ev.Kind, ev.Durable, ev.Transferred)
	}
}

// OnResult implements Observer.
func (o *InvariantObserver) OnResult(e *Engine, ev *ResultEvent) {
	if ev.Completion < ev.Req.Issue {
		o.fail("request %d completes at %d before its issue %d", ev.Req.Index, ev.Completion, ev.Req.Issue)
	}
	o.results++
	if ev.Processed != o.results {
		o.fail("processed counter %d after %d results", ev.Processed, o.results)
	}
	if ev.NodeCount < 0 {
		o.fail("negative node count %d", ev.NodeCount)
	}
	if got, want := ev.Res.Hits+ev.Res.Misses, ev.Req.Pages; got != want {
		o.fail("request %d: hits+misses = %d, %d pages", ev.Req.Index, got, want)
	}
}

// OnDone implements Observer.
func (o *InvariantObserver) OnDone(e *Engine, ev *DoneEvent) {
	if o.done {
		o.fail("OnDone fired twice")
	}
	o.done = true
	if ev.Processed != o.results {
		o.fail("done reports %d processed, saw %d results", ev.Processed, o.results)
	}
}
