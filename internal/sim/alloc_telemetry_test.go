package sim_test

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// The engine must stay at ~0 allocations per request with the FULL
// telemetry plane attached: histogram/counter observer, flash timing tap,
// an (unsampled) request tracer and a progress reporter. This is the
// telemetry-enabled companion of TestEngineStepSteadyStateAllocs, which
// pins the disabled baseline; together they guarantee observability is
// free when off and allocation-free when on. It lives in package sim_test
// because internal/obs imports internal/sim.
func TestEngineStepAllocsWithTelemetry(t *testing.T) {
	p := ssd.DefaultParams()
	p.Flash.BlocksPerPlane = 512
	p.Flash.PagesPerBlock = 16
	p.Precondition = 0
	dev, err := ssd.New(p)
	if err != nil {
		t.Fatal(err)
	}

	const steps = 33000
	tel := obs.New()
	dev.SetTap(tel)
	tracer := obs.NewTracer(io.Discard, 1<<30, 42)
	for i := 0; i < steps+2100; i++ {
		if tracer.Sampled(i) {
			t.Fatalf("index %d sampled at rate 2^30; pick another seed", i)
		}
	}
	progress := obs.NewProgress(io.Discard, 0)

	eng := sim.New(nil, cache.NewLRU(4096), dev, sim.Config{QueueDepth: 16})
	eng.Observe(tel.Observer(), tracer, progress)
	eng.Begin()

	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	i := 0
	step := func() {
		now += 1000
		r := trace.Request{
			Time:   now,
			Write:  rng.Intn(10) < 7,
			Offset: int64(rng.Intn(20000)) * 4096,
			Size:   int64(1+rng.Intn(12)) * 4096,
		}
		if err := eng.Step(i, r, 4096); err != nil {
			t.Fatal(err)
		}
		i++
	}
	for n := 0; n < steps; n++ {
		step()
	}
	if got := testing.AllocsPerRun(2000, step); got > 0.05 {
		t.Fatalf("telemetry-enabled steady-state allocs/req = %v, want ~0", got)
	}
	if tel.Requests.Value() == 0 || tel.ReqLatency.Count() == 0 {
		t.Fatal("telemetry observer never folded a request")
	}
	if tel.ProgramNs.Count() == 0 {
		t.Fatal("flash tap never saw a program")
	}
}
