package sim

import "repro/internal/cache"

// RequestEvent describes one trace request at the moment it is issued to
// the cache stage: after the streaming source produced it, after its page
// span was computed, and after the closed-loop window (if any) delayed it.
type RequestEvent struct {
	// Index is the request's 0-based ordinal in the source, counting
	// every source entry (including zero-page requests the engine skips).
	Index int
	// Arrival is the trace arrival time in nanoseconds.
	Arrival int64
	// Issue is the time the request actually enters the cache: Arrival,
	// or later when a closed-loop queue slot had to free up.
	Issue int64
	// Write is true for writes.
	Write bool
	// LPN is the first logical page and Pages the span length.
	LPN   int64
	Pages int
	// Warm is false while the request falls inside the configured warmup
	// window; observers exclude cold requests from steady-state metrics.
	Warm bool
}

// ResultEvent describes one fully dispatched request: the cache decision
// plus the device completion time.
type ResultEvent struct {
	// Req is the request this result belongs to.
	Req *RequestEvent
	// Res is the cache's decision. Its slices alias policy-owned buffers
	// and are only valid during the observer call.
	Res *cache.Result
	// Completion is the absolute time the request completed: cache time,
	// plus eviction transfers, bypass transfers and read-miss fetches.
	Completion int64
	// Prefetched counts background readahead pages actually issued to the
	// device (after clipping to the logical space).
	Prefetched int
	// Processed is the number of requests fully processed so far,
	// including this one.
	Processed int
	// NodeCount is the policy's list-node population after this request.
	NodeCount int
	// Blame is the request's exact per-cause latency partition; its
	// entries sum to Completion minus the request's arrival Time.
	Blame Blame
}

// EvictionKind says which engine stage flushed (or dropped) a batch.
type EvictionKind uint8

const (
	// EvictRequest is a batch flushed to make room on the request path.
	EvictRequest EvictionKind = iota
	// EvictClean is a batch dropped without a flash write (clean victims).
	EvictClean
	// EvictIdle is a batch proactively flushed during an idle window.
	EvictIdle
	// EvictDestage is a batch drained by the periodic destager.
	EvictDestage
	// EvictQuota is a batch drained because the cache exceeded its soft
	// quota (Config.SoftQuotaPages — SHARED-mode sharding pushback).
	EvictQuota
)

// String names the stage for logs and trace spans.
func (k EvictionKind) String() string {
	switch k {
	case EvictRequest:
		return "request"
	case EvictClean:
		return "clean"
	case EvictIdle:
		return "idle"
	case EvictDestage:
		return "destage"
	case EvictQuota:
		return "quota"
	}
	return "unknown"
}

// EvictionEvent describes one victim batch leaving the cache. For
// EvictClean nothing was written to flash.
type EvictionEvent struct {
	// Kind is the engine stage that produced the batch.
	Kind EvictionKind
	// Time is the simulated time the batch was handed to the device.
	Time int64
	// LPNs are the victim pages. The slice aliases a policy-owned buffer
	// and is only valid during the observer call.
	LPNs []int64
	// Transferred and Durable carry the batch's device timing when it is
	// known at emission: idle flushes and destage drains report when their
	// frames freed and when the data became durable. Request-path batches
	// are emitted before the flush (fate accounting needs the pre-flush
	// order) and clean drops never touch flash — both leave these zero.
	Transferred, Durable int64
	// ScanCost is the victim-selection work the policy performed since the
	// previous emitted batch (heap entries sifted/skipped in indexed mode,
	// nodes walked in the linear reference mode), taken as the delta of the
	// policy's cache.VictimScanReporter counter. When one Access triggers
	// several batches the whole Access's selection work lands on the first;
	// 0 for policies that do not report scan work.
	ScanCost int64
}

// DoneEvent summarizes a finished run.
type DoneEvent struct {
	// Processed is the number of requests fully processed.
	Processed int
	// HasRequests is true when the source yielded at least one request;
	// FirstArrival/LastArrival then hold the source's time span (the whole
	// source, even when an observer stopped the replay early — open-loop
	// utilization is defined over the trace horizon).
	HasRequests               bool
	FirstArrival, LastArrival int64
	// Degraded is true when the device entered read-only mode and the
	// engine stopped; DegradedAtRequest is the processed count at that
	// point.
	Degraded          bool
	DegradedAtRequest int
	// Stopped is true when an observer ended the run early via Stop.
	Stopped bool
	// IdleGCRuns counts background-GC block collections triggered during
	// idle windows (Config.IdleGC).
	IdleGCRuns int64
}

// Observer receives engine events. Implementations accumulate metrics —
// the engine itself measures nothing beyond what it needs to simulate.
// Hot-path rules: events (and the slices inside them) are reused across
// calls, so observers must copy anything they retain, and must not
// allocate per event if the zero-alloc replay guarantee matters to them.
type Observer interface {
	// OnRequest fires once per non-empty request, before the cache sees
	// it. The idle/destage stage may fire OnEviction calls before it.
	OnRequest(e *Engine, ev *RequestEvent)
	// OnEviction fires once per victim batch, in dispatch order.
	OnEviction(e *Engine, ev *EvictionEvent)
	// OnResult fires once per request after its completion time is known.
	OnResult(e *Engine, ev *ResultEvent)
	// OnDone fires once, after the source is exhausted or the run stopped.
	OnDone(e *Engine, ev *DoneEvent)
}

// NopObserver is an Observer that ignores every event; embed it to
// implement only the hooks you need.
type NopObserver struct{}

func (NopObserver) OnRequest(*Engine, *RequestEvent)   {}
func (NopObserver) OnEviction(*Engine, *EvictionEvent) {}
func (NopObserver) OnResult(*Engine, *ResultEvent)     {}
func (NopObserver) OnDone(*Engine, *DoneEvent)         {}
