package sim

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// The engine's per-request step must not allocate once the policy's pools
// and the device timeline are warm: events are reused structs, eviction
// dispatch consumes policy-owned buffers, and observer emission is an
// interface loop. This guards the zero-alloc replay guarantee (PR 1) at
// the engine layer — the budget is a ceiling for incompressible map-bucket
// churn in the policy's LPN index, far below one allocation per request.
func TestEngineStepSteadyStateAllocs(t *testing.T) {
	eng := New(nil, cache.NewLRU(4096), testDevice(t), Config{QueueDepth: 16})
	eng.Observe(NopObserver{}, NopObserver{})
	eng.begin()

	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	i := 0
	step := func() {
		now += 1000
		r := trace.Request{
			Time:   now,
			Write:  rng.Intn(10) < 7,
			Offset: int64(rng.Intn(20000)) * 4096,
			Size:   int64(1+rng.Intn(12)) * 4096,
		}
		if err := eng.processRequest(i, r, 4096); err != nil {
			t.Fatal(err)
		}
		i++
	}
	// Warm up: fill the cache several times over so the node pools and
	// result buffers reach their high-water marks.
	for n := 0; n < 30000; n++ {
		step()
	}
	if got := testing.AllocsPerRun(2000, step); got > 0.05 {
		t.Fatalf("engine steady-state allocs/req = %v, want ~0", got)
	}
}
