package oracle

import "testing"

// tinyOracleFTL mirrors the differential geometry: 4 planes × 8 blocks ×
// 4 pages = 128 physical, 96 logical, GC floor 2.
func tinyOracleFTL() *FTL { return NewFTL(4, 8, 4, 96, 2) }

// TestOracleFTLGCPreservesContents hammers overwrites until GC has run
// many times, then checks the content-stamp invariant: every live page
// still resolves to its last host write.
func TestOracleFTLGCPreservesContents(t *testing.T) {
	f := tinyOracleFTL()
	stamp := uint64(0)
	write := func(lpns ...int64) {
		t.Helper()
		stamps := make([]uint64, len(lpns))
		for i := range stamps {
			stamp++
			stamps[i] = stamp
		}
		if err := f.WriteStriped(lpns, stamps); err != nil {
			t.Fatalf("write %v: %v", lpns, err)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("after write %v: %v", lpns, err)
		}
	}
	// Fill the logical space, then overwrite a hot subset far past the
	// physical capacity so garbage collection must migrate cold pages.
	for lpn := int64(0); lpn < 96; lpn++ {
		write(lpn)
	}
	for round := 0; round < 40; round++ {
		for lpn := int64(0); lpn < 16; lpn++ {
			write(lpn)
		}
	}
	for lpn := int64(0); lpn < 96; lpn++ {
		if !f.Mapped(lpn) {
			t.Fatalf("lpn %d lost after GC churn", lpn)
		}
	}
}

// TestOracleFTLBlockBoundAndTrim covers the block-bound write path and
// trim semantics.
func TestOracleFTLBlockBoundAndTrim(t *testing.T) {
	f := tinyOracleFTL()
	lpns := []int64{8, 9, 10, 11}
	if err := f.WriteBlockBound(lpns, []uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	for _, lpn := range lpns {
		if !f.Mapped(lpn) {
			t.Fatalf("lpn %d unmapped after block-bound write", lpn)
		}
	}
	f.Trim(lpns[:2])
	f.Trim(lpns[:2]) // trimming twice is a no-op
	if f.Mapped(8) || f.Mapped(9) || !f.Mapped(10) {
		t.Fatalf("trim state wrong: %v %v %v", f.Mapped(8), f.Mapped(9), f.Mapped(10))
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOracleFTLRejectsOutOfRange pins the error path.
func TestOracleFTLRejectsOutOfRange(t *testing.T) {
	f := tinyOracleFTL()
	if err := f.WriteStriped([]int64{96}, []uint64{1}); err == nil {
		t.Fatal("write past logical space succeeded")
	}
	if err := f.WriteStriped([]int64{-1}, []uint64{1}); err == nil {
		t.Fatal("negative lpn write succeeded")
	}
}
