package oracle

import "fmt"

// Page states in the oracle FTL's flat physical view.
const (
	pageFree = iota
	pageValid
	pageInvalid
)

// FTL is a naive page-map flash translation layer with greedy garbage
// collection: maps and slices, no timing, no pooling, and — unlike the
// fast FTL, which only tracks page states — a content shadow. Every host
// write stores a stamp per page, GC migrations carry stamps along, and
// CheckInvariants demands that every live logical page still resolves to
// the stamp of its last host write: "GC preserves live page contents" as
// an executable property rather than an argument.
//
// The differential runner feeds the same flush batches to this oracle and
// to the fast ftl.FTL, then diffs the externally visible mapping — which
// logical pages are live — plus both sides' invariant suites. Physical
// placement is allocation policy, not contract, so it is deliberately not
// diffed: the oracle allocates round-robin with no wear leveling, the
// simplest policy that exercises GC.
type FTL struct {
	planes         int
	blocksPerPlane int
	pagesPerBlock  int
	logical        int64

	mapping map[int64]int64  // lpn -> ppn
	owner   map[int64]int64  // ppn -> lpn, the injectivity witness
	state   []uint8          // per ppn
	content map[int64]uint64 // lpn -> stamp of its last host write
	stored  map[int64]uint64 // ppn -> stamp physically held

	free    [][]int // per plane: erased blocks, consumed lowest-first
	active  []int   // per plane: block accepting programs, -1 if none
	fill    []int   // per block: next free page index
	gcLow   int     // free-block floor per plane that triggers GC
	striped int     // round-robin plane cursor for striped batches
	bound   int     // round-robin plane cursor for block-bound batches
}

// NewFTL builds an oracle FTL over the given geometry. gcLow is the
// per-plane free-block floor below which greedy GC runs.
func NewFTL(planes, blocksPerPlane, pagesPerBlock int, logical int64, gcLow int) *FTL {
	if planes < 1 || blocksPerPlane < 2 || pagesPerBlock < 1 {
		panic(fmt.Sprintf("oracle: bad FTL geometry %d/%d/%d", planes, blocksPerPlane, pagesPerBlock))
	}
	totalBlocks := planes * blocksPerPlane
	if logical <= 0 || logical > int64(totalBlocks*pagesPerBlock) {
		panic(fmt.Sprintf("oracle: logical %d out of range", logical))
	}
	if gcLow < 1 {
		gcLow = 1
	}
	f := &FTL{
		planes:         planes,
		blocksPerPlane: blocksPerPlane,
		pagesPerBlock:  pagesPerBlock,
		logical:        logical,
		mapping:        make(map[int64]int64),
		owner:          make(map[int64]int64),
		state:          make([]uint8, totalBlocks*pagesPerBlock),
		content:        make(map[int64]uint64),
		stored:         make(map[int64]uint64),
		free:           make([][]int, planes),
		active:         make([]int, planes),
		fill:           make([]int, totalBlocks),
		gcLow:          gcLow,
	}
	for pl := 0; pl < planes; pl++ {
		for b := 0; b < blocksPerPlane; b++ {
			f.free[pl] = append(f.free[pl], pl*blocksPerPlane+b)
		}
		f.active[pl] = -1
	}
	return f
}

// LogicalPages returns the host-visible page count.
func (f *FTL) LogicalPages() int64 { return f.logical }

// Mapped reports whether a logical page is live.
func (f *FTL) Mapped(lpn int64) bool {
	_, ok := f.mapping[lpn]
	return ok
}

// planeOfBlock returns the plane a block belongs to.
func (f *FTL) planeOfBlock(block int) int { return block / f.blocksPerPlane }

// ppn composes a physical page number.
func (f *FTL) ppn(block, page int) int64 { return int64(block*f.pagesPerBlock + page) }

// validCount counts the valid pages of a block.
func (f *FTL) validCount(block int) int {
	n := 0
	base := f.ppn(block, 0)
	for i := 0; i < f.pagesPerBlock; i++ {
		if f.state[base+int64(i)] == pageValid {
			n++
		}
	}
	return n
}

// blockFull reports whether a block has no free pages left.
func (f *FTL) blockFull(block int) bool { return f.fill[block] >= f.pagesPerBlock }

// WriteStriped writes a batch round-robin across planes, stamping each
// page. Stamps parallel lpns one to one.
func (f *FTL) WriteStriped(lpns []int64, stamps []uint64) error {
	for i, lpn := range lpns {
		if err := f.writeOne(lpn, stamps[i], f.striped); err != nil {
			return err
		}
		f.striped = (f.striped + 1) % f.planes
	}
	return nil
}

// WriteBlockBound writes a whole batch onto one plane, advancing the
// plane per batch — the oracle view of BPLRU/FAB block-bound flushes.
func (f *FTL) WriteBlockBound(lpns []int64, stamps []uint64) error {
	if len(lpns) == 0 {
		return nil
	}
	plane := f.bound
	f.bound = (f.bound + 1) % f.planes
	for i, lpn := range lpns {
		if err := f.writeOne(lpn, stamps[i], plane); err != nil {
			return err
		}
	}
	return nil
}

// Trim discards logical pages; trimming an unmapped page is a no-op.
func (f *FTL) Trim(lpns []int64) {
	for _, lpn := range lpns {
		ppn, ok := f.mapping[lpn]
		if !ok {
			continue
		}
		f.state[ppn] = pageInvalid
		delete(f.mapping, lpn)
		delete(f.owner, ppn)
		delete(f.stored, ppn)
		delete(f.content, lpn)
	}
}

// writeOne maps one host page onto the preferred plane, falling back to
// the plane with the most free pages when it is exhausted.
func (f *FTL) writeOne(lpn int64, stamp uint64, plane int) error {
	if lpn < 0 || lpn >= f.logical {
		return fmt.Errorf("oracle: lpn %d out of range [0,%d)", lpn, f.logical)
	}
	f.maybeGC(plane)
	ppn, ok := f.alloc(plane)
	if !ok {
		fallback := f.richestPlane()
		f.maybeGC(fallback)
		ppn, ok = f.alloc(fallback)
		if !ok {
			return fmt.Errorf("oracle: planes %d and %d out of free blocks", plane, fallback)
		}
	}
	if old, mapped := f.mapping[lpn]; mapped {
		f.state[old] = pageInvalid
		delete(f.owner, old)
		delete(f.stored, old)
	}
	f.mapping[lpn] = ppn
	f.owner[ppn] = lpn
	f.content[lpn] = stamp
	f.stored[ppn] = stamp
	return nil
}

// alloc programs the next page of the plane's active block, opening the
// lowest-numbered free block when needed. It never triggers GC itself, so
// the GC migration path can use it without recursing.
func (f *FTL) alloc(plane int) (int64, bool) {
	a := f.active[plane]
	if a < 0 || f.blockFull(a) {
		if len(f.free[plane]) == 0 {
			return 0, false
		}
		a = f.free[plane][0]
		f.free[plane] = f.free[plane][1:]
		f.active[plane] = a
	}
	ppn := f.ppn(a, f.fill[a])
	f.fill[a]++
	f.state[ppn] = pageValid
	return ppn, true
}

// richestPlane returns the plane with the most allocatable pages.
func (f *FTL) richestPlane() int {
	best, bestFree := 0, -1
	for pl := 0; pl < f.planes; pl++ {
		freePages := len(f.free[pl]) * f.pagesPerBlock
		if a := f.active[pl]; a >= 0 {
			freePages += f.pagesPerBlock - f.fill[a]
		}
		if freePages > bestFree {
			best, bestFree = pl, freePages
		}
	}
	return best
}

// maybeGC runs greedy collection rounds until the plane's free pool is
// back above the floor or no victim can make progress.
func (f *FTL) maybeGC(plane int) {
	for len(f.free[plane]) < f.gcLow {
		if !f.gcOnce(plane) {
			break
		}
	}
}

// gcOnce picks the full, non-active block with the fewest valid pages on
// the plane (lowest block number on ties), migrates its valid pages —
// stamps included — and erases it.
func (f *FTL) gcOnce(plane int) bool {
	first := plane * f.blocksPerPlane
	victim, best := -1, f.pagesPerBlock+1
	for b := first; b < first+f.blocksPerPlane; b++ {
		if b == f.active[plane] || !f.blockFull(b) {
			continue
		}
		if v := f.validCount(b); v < best {
			victim, best = b, v
		}
	}
	if victim < 0 || best >= f.pagesPerBlock {
		return false // nothing reclaimable
	}
	base := f.ppn(victim, 0)
	for i := 0; i < f.pagesPerBlock; i++ {
		ppn := base + int64(i)
		if f.state[ppn] != pageValid {
			continue
		}
		lpn := f.owner[ppn]
		stamp := f.stored[ppn]
		newPPN, ok := f.alloc(plane)
		if !ok {
			// The plane has no room for survivors; undo nothing — the
			// victim stays intact and the caller's loop stops.
			return false
		}
		f.state[ppn] = pageInvalid
		delete(f.owner, ppn)
		delete(f.stored, ppn)
		f.mapping[lpn] = newPPN
		f.owner[newPPN] = lpn
		f.stored[newPPN] = stamp
	}
	// Erase: every page back to free.
	for i := 0; i < f.pagesPerBlock; i++ {
		f.state[base+int64(i)] = pageFree
	}
	f.fill[victim] = 0
	f.free[plane] = append(f.free[plane], victim)
	return true
}

// CheckInvariants validates the executable-paper properties of the FTL:
// the logical→physical mapping is injective (owner is its inverse), every
// mapped page is physically valid, free-listed blocks are fully erased,
// and — the GC-correctness property — every live logical page still
// stores the stamp of its last host write.
func (f *FTL) CheckInvariants() error {
	if len(f.mapping) != len(f.owner) {
		return fmt.Errorf("oracle: %d mapped lpns but %d owned ppns", len(f.mapping), len(f.owner))
	}
	for lpn, ppn := range f.mapping {
		if f.state[ppn] != pageValid {
			return fmt.Errorf("oracle: lpn %d maps to non-valid ppn %d", lpn, ppn)
		}
		if back, ok := f.owner[ppn]; !ok || back != lpn {
			return fmt.Errorf("oracle: owner[%d] = %d, want %d (injectivity broken)", ppn, back, lpn)
		}
		if f.stored[ppn] != f.content[lpn] {
			return fmt.Errorf("oracle: lpn %d holds stamp %d, last write was %d (GC lost contents)",
				lpn, f.stored[ppn], f.content[lpn])
		}
	}
	valid := 0
	for ppn := range f.state {
		if f.state[ppn] == pageValid {
			valid++
		}
	}
	if valid != len(f.mapping) {
		return fmt.Errorf("oracle: %d valid pages but %d mapped lpns", valid, len(f.mapping))
	}
	for pl := 0; pl < f.planes; pl++ {
		for _, b := range f.free[pl] {
			if f.planeOfBlock(b) != pl {
				return fmt.Errorf("oracle: plane %d free list holds foreign block %d", pl, b)
			}
			if f.fill[b] != 0 {
				return fmt.Errorf("oracle: free-listed block %d has fill %d", b, f.fill[b])
			}
		}
	}
	return nil
}
