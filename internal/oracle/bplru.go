package oracle

import (
	"fmt"
	"sort"

	"repro/internal/cache"
)

// obBlock is one logical block in the BPLRU oracle's block-level LRU.
type obBlock struct {
	blockID int64
	pages   []int64 // buffered lpns, kept sorted ascending
	// sequential/nextSeq implement LRU compensation: a block written
	// fully in order from in-block page 0 moves to the tail.
	sequential bool
	nextSeq    int
}

func (b *obBlock) has(lpn int64) bool {
	for _, p := range b.pages {
		if p == lpn {
			return true
		}
	}
	return false
}

func (b *obBlock) add(lpn int64) {
	b.pages = append(b.pages, lpn)
	sort.Slice(b.pages, func(i, j int) bool { return b.pages[i] < b.pages[j] })
}

// BPLRU is the paper-literal block-padding LRU of Kim & Ahn (FAST'08):
// an LRU list of logical blocks (head = most recently written), whole-tail
// eviction onto one physical block, LRU compensation for sequential
// streams, and optional page padding.
type BPLRU struct {
	capacity      int
	pagesPerBlock int64
	padding       bool
	order         []*obBlock // index 0 = most recently written
}

// NewBPLRU builds the oracle; padding mirrors NewBPLRUWithPadding.
func NewBPLRU(capacityPages, pagesPerBlock int, padding bool) *BPLRU {
	cache.ValidateCapacity(capacityPages)
	if pagesPerBlock < 1 {
		panic("oracle: BPLRU pagesPerBlock must be >= 1")
	}
	return &BPLRU{capacity: capacityPages, pagesPerBlock: int64(pagesPerBlock), padding: padding}
}

// Name implements Policy.
func (c *BPLRU) Name() string { return "BPLRU" }

// Len implements Policy.
func (c *BPLRU) Len() int {
	n := 0
	for _, b := range c.order {
		n += len(b.pages)
	}
	return n
}

// NodeCount implements Policy: one node per block.
func (c *BPLRU) NodeCount() int { return len(c.order) }

// findBlock returns the block with the given ID and its position, or
// (nil, -1).
func (c *BPLRU) findBlock(blockID int64) (*obBlock, int) {
	for i, b := range c.order {
		if b.blockID == blockID {
			return b, i
		}
	}
	return nil, -1
}

// Access implements Policy. Reads are served when present but never
// reorder the list: BPLRU manages RAM purely as a write buffer.
func (c *BPLRU) Access(req cache.Request) Result {
	cache.CheckRequest(req)
	var res Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		blockID := lpn / c.pagesPerBlock
		b, _ := c.findBlock(blockID)
		if b != nil && b.has(lpn) {
			res.Hits++
			if req.Write {
				c.noteWrite(b, lpn)
			}
		} else {
			res.Misses++
			if req.Write {
				for c.Len() >= c.capacity {
					res.Evictions = append(res.Evictions, c.evictTail())
				}
				// The block may have been evicted while making room.
				b, _ = c.findBlock(blockID)
				if b == nil {
					b = &obBlock{blockID: blockID, sequential: true}
					c.order = append([]*obBlock{b}, c.order...)
				}
				b.add(lpn)
				res.Inserted++
				c.noteWrite(b, lpn)
			} else {
				res.ReadMisses = append(res.ReadMisses, lpn)
			}
		}
		lpn++
	}
	return res
}

// noteWrite applies BPLRU's list adjustment after a write: to the head
// normally, to the tail once the block has been written fully
// sequentially (LRU compensation).
func (c *BPLRU) noteWrite(b *obBlock, lpn int64) {
	idx := int(lpn % c.pagesPerBlock)
	if b.sequential {
		if idx == b.nextSeq {
			b.nextSeq++
		} else {
			b.sequential = false
		}
	}
	_, at := c.findBlock(b.blockID)
	c.order = append(c.order[:at], c.order[at+1:]...)
	if b.sequential && b.nextSeq == int(c.pagesPerBlock) {
		c.order = append(c.order, b) // fully sequential: prefer for eviction
		return
	}
	c.order = append([]*obBlock{b}, c.order...)
}

// evictTail flushes the least recently written block onto one physical
// block, optionally padded to a full block with flash reads first.
func (c *BPLRU) evictTail() Eviction {
	last := len(c.order) - 1
	if last < 0 {
		panic("oracle: BPLRU evict on empty buffer")
	}
	b := c.order[last]
	c.order = c.order[:last]
	if !c.padding {
		return Eviction{LPNs: append([]int64(nil), b.pages...), BlockBound: true}
	}
	base := b.blockID * c.pagesPerBlock
	all := make([]int64, 0, c.pagesPerBlock)
	var padReads []int64
	for off := int64(0); off < c.pagesPerBlock; off++ {
		all = append(all, base+off)
		if !b.has(base + off) {
			padReads = append(padReads, base+off)
		}
	}
	return Eviction{LPNs: all, BlockBound: true, PaddingReads: padReads}
}

// EvictIdle implements Policy with the fast implementation's gating.
func (c *BPLRU) EvictIdle(now int64) (Eviction, bool) {
	if c.Len() <= c.capacity/2 {
		return Eviction{}, false
	}
	return c.evictTail(), true
}

// CheckInvariants validates occupancy, block-local page alignment and
// uniqueness.
func (c *BPLRU) CheckInvariants() error {
	if n := c.Len(); n > c.capacity {
		return fmt.Errorf("oracle: BPLRU holds %d pages, capacity %d", n, c.capacity)
	}
	seenBlock := make(map[int64]bool, len(c.order))
	for _, b := range c.order {
		if seenBlock[b.blockID] {
			return fmt.Errorf("oracle: BPLRU block %d listed twice", b.blockID)
		}
		seenBlock[b.blockID] = true
		seen := make(map[int64]bool, len(b.pages))
		for _, p := range b.pages {
			if p/c.pagesPerBlock != b.blockID {
				return fmt.Errorf("oracle: BPLRU lpn %d in block %d", p, b.blockID)
			}
			if seen[p] {
				return fmt.Errorf("oracle: BPLRU lpn %d buffered twice", p)
			}
			seen[p] = true
		}
	}
	return nil
}
