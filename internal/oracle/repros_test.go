package oracle

import (
	"os"
	"path/filepath"
	"testing"
)

// TestReproCorpus replays every minimized spec committed under
// testdata/repros. Specs with a Mutation set are the mutation smoke
// corpus and must still diverge (they document what each seeded bug
// looks like when caught); clean specs are regressions from past
// campaigns and must pass forever.
func TestReproCorpus(t *testing.T) {
	specs, err := LoadRepros(filepath.Join("testdata", "repros"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("testdata/repros is empty; the corpus should ship with the repo")
	}
	for name, spec := range specs {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			d := Run(spec)
			if spec.Mutation != MutNone {
				if d == nil {
					t.Fatalf("mutation repro no longer diverges — was the mutation removed?")
				}
				return
			}
			if d != nil {
				t.Fatalf("regression: %v", d)
			}
		})
	}
}

// TestSaveLoadRoundTrip pins the corpus serialization format.
func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := Generate(3, "bplru", 24)
	path, err := SaveRepro(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Saving the same spec again must not overwrite the first file.
	path2, err := SaveRepro(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if path == path2 {
		t.Fatalf("second save overwrote %s", path)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Policy != spec.Policy || got.CapacityPages != spec.CapacityPages ||
		len(got.Requests) != len(spec.Requests) {
		t.Fatalf("round trip mangled the spec: %+v vs %+v", got, spec)
	}
	for i := range got.Requests {
		if got.Requests[i] != spec.Requests[i] {
			t.Fatalf("request %d mangled: %+v vs %+v", i, got.Requests[i], spec.Requests[i])
		}
	}
	all, err := LoadRepros(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("LoadRepros found %d specs, want 2", len(all))
	}
	if _, err := LoadRepros(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("missing corpus dir should be empty, got %v", err)
	}
	// A malformed file must fail loudly, not silently skip.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRepros(dir); err == nil {
		t.Fatal("malformed corpus file loaded without error")
	}
}
