package oracle

import "repro/internal/cache"

// shrinkBudget caps the number of differential runs one Shrink spends.
// Minimization is best-effort: the result is always a failing spec, just
// not always a global minimum.
const shrinkBudget = 4000

// Shrink minimizes a failing Spec by delta debugging: it repeatedly
// removes request chunks (ddmin-style, halving the chunk size), then
// simplifies the survivors — shrinking page counts, pulling LPNs toward
// zero, renumbering times, halving the capacity and dropping the idle
// probe — keeping every candidate that still diverges. Any divergence
// counts, not just the original kind: the goal is the smallest workload
// that tells the two implementations apart.
//
// Shrink returns the minimized spec and its divergence. If the input
// does not fail, it is returned unchanged with a nil divergence.
func Shrink(spec Spec) (Spec, *Divergence) {
	bestD := Run(spec)
	if bestD == nil {
		return spec, nil
	}
	best := spec
	budget := shrinkBudget
	try := func(cand Spec) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if d := Run(cand); d != nil {
			best, bestD = cand, d
			return true
		}
		return false
	}

	for pass := 0; pass < 8 && budget > 0; pass++ {
		changed := false
		if shrinkRequests(&best, try) {
			changed = true
		}
		if shrinkFields(&best, try) {
			changed = true
		}
		if !changed {
			break
		}
	}
	return best, bestD
}

// shrinkRequests runs the ddmin chunk-removal loop over best.Requests.
func shrinkRequests(best *Spec, try func(Spec) bool) bool {
	changed := false
	chunk := len(best.Requests) / 2
	if chunk < 1 {
		chunk = 1
	}
	for chunk >= 1 {
		removed := false
		for start := 0; start+chunk <= len(best.Requests); {
			if try(removeRange(*best, start, chunk)) {
				removed, changed = true, true
				// best now lacks the chunk; retry the same start index.
			} else {
				start += chunk
			}
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(best.Requests) {
			chunk = len(best.Requests)
		}
	}
	return changed
}

// shrinkFields simplifies the surviving requests and configuration.
func shrinkFields(best *Spec, try func(Spec) bool) bool {
	changed := false
	// Smaller requests: halve, then decrement, each page count.
	for i := range best.Requests {
		for best.Requests[i].Pages > 1 {
			smaller := best.Requests[i].Pages / 2
			if !try(withRequest(*best, i, func(r *cache.Request) { r.Pages = smaller })) {
				break
			}
			changed = true
		}
		for best.Requests[i].Pages > 1 {
			if !try(withRequest(*best, i, func(r *cache.Request) { r.Pages-- })) {
				break
			}
			changed = true
		}
	}
	// Smaller addresses: pull each LPN toward zero.
	for i := range best.Requests {
		for best.Requests[i].LPN > 0 {
			half := best.Requests[i].LPN / 2
			if !try(withRequest(*best, i, func(r *cache.Request) { r.LPN = half })) {
				break
			}
			changed = true
		}
		for best.Requests[i].LPN > 0 {
			if !try(withRequest(*best, i, func(r *cache.Request) { r.LPN-- })) {
				break
			}
			changed = true
		}
	}
	// Canonical times: 1, 2, 3, … keeps the repro readable when timing
	// does not matter; individual gaps stay only when the bug needs them.
	renumbered := *best
	renumbered.Requests = append([]cache.Request(nil), best.Requests...)
	for i := range renumbered.Requests {
		renumbered.Requests[i].Time = int64(i + 1)
	}
	if try(renumbered) {
		changed = true
	}
	// Simpler configuration: no idle probe, smaller capacity, writes only.
	if best.IdleEvery != 0 {
		cand := *best
		cand.IdleEvery = 0
		if try(cand) {
			changed = true
		}
	}
	for best.CapacityPages > 1 {
		cand := *best
		cand.CapacityPages = best.CapacityPages / 2
		if !try(cand) {
			break
		}
		changed = true
	}
	for i := range best.Requests {
		if !best.Requests[i].Write {
			if try(withRequest(*best, i, func(r *cache.Request) { r.Write = true })) {
				changed = true
			}
		}
	}
	return changed
}

// removeRange returns a copy of s without requests [start, start+n).
func removeRange(s Spec, start, n int) Spec {
	c := s
	c.Requests = make([]cache.Request, 0, len(s.Requests)-n)
	c.Requests = append(c.Requests, s.Requests[:start]...)
	c.Requests = append(c.Requests, s.Requests[start+n:]...)
	return c
}

// withRequest returns a copy of s with one request edited.
func withRequest(s Spec, i int, edit func(*cache.Request)) Spec {
	c := s
	c.Requests = append([]cache.Request(nil), s.Requests...)
	edit(&c.Requests[i])
	return c
}
