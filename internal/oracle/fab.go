package oracle

import (
	"fmt"
	"sort"

	"repro/internal/cache"
)

// ofGroup clusters the buffered pages of one logical flash block.
type ofGroup struct {
	blockID int64
	pages   []int64 // kept sorted ascending
}

func (g *ofGroup) has(lpn int64) bool {
	for _, p := range g.pages {
		if p == lpn {
			return true
		}
	}
	return false
}

// FAB is the paper-literal flash-aware buffer of Jo et al. (TCE'06):
// pages grouped by logical block, whole-group eviction of the group
// holding the most pages, recency ignored. Groups sit in insertion order
// with the newest at index 0; ties between equally full groups go to the
// oldest (largest index), matching the fast implementation's
// tail-to-head strictly-greater scan.
type FAB struct {
	capacity      int
	pagesPerBlock int64
	order         []*ofGroup // index 0 = most recently created
}

// NewFAB builds the oracle.
func NewFAB(capacityPages, pagesPerBlock int) *FAB {
	cache.ValidateCapacity(capacityPages)
	if pagesPerBlock < 1 {
		panic("oracle: FAB pagesPerBlock must be >= 1")
	}
	return &FAB{capacity: capacityPages, pagesPerBlock: int64(pagesPerBlock)}
}

// Name implements Policy.
func (c *FAB) Name() string { return "FAB" }

// Len implements Policy.
func (c *FAB) Len() int {
	n := 0
	for _, g := range c.order {
		n += len(g.pages)
	}
	return n
}

// NodeCount implements Policy: one node per group.
func (c *FAB) NodeCount() int { return len(c.order) }

// findGroup returns the group for a block ID, or nil.
func (c *FAB) findGroup(blockID int64) *ofGroup {
	for _, g := range c.order {
		if g.blockID == blockID {
			return g
		}
	}
	return nil
}

// Access implements Policy. Hits neither reorder nor count anything
// beyond the hit itself — FAB ignores recency entirely.
func (c *FAB) Access(req cache.Request) Result {
	cache.CheckRequest(req)
	var res Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		blockID := lpn / c.pagesPerBlock
		g := c.findGroup(blockID)
		if g != nil && g.has(lpn) {
			res.Hits++
		} else {
			res.Misses++
			if req.Write {
				for c.Len() >= c.capacity {
					res.Evictions = append(res.Evictions, c.evictLargest())
				}
				// The group may have been evicted while making room.
				g = c.findGroup(blockID)
				if g == nil {
					g = &ofGroup{blockID: blockID}
					c.order = append([]*ofGroup{g}, c.order...)
				}
				g.pages = append(g.pages, lpn)
				sort.Slice(g.pages, func(i, j int) bool { return g.pages[i] < g.pages[j] })
				res.Inserted++
			} else {
				res.ReadMisses = append(res.ReadMisses, lpn)
			}
		}
		lpn++
	}
	return res
}

// evictLargest flushes the fullest group; ties prefer the oldest (the
// entry nearest the list tail).
func (c *FAB) evictLargest() Eviction {
	victim := -1
	best := 0
	// Scan oldest to newest with strictly-greater, so the oldest of the
	// fullest groups wins — the same choice the fast FAB makes scanning
	// its list from the tail.
	for i := len(c.order) - 1; i >= 0; i-- {
		if l := len(c.order[i].pages); l > best {
			best, victim = l, i
		}
	}
	if victim < 0 {
		panic("oracle: FAB evict on empty buffer")
	}
	g := c.order[victim]
	c.order = append(c.order[:victim], c.order[victim+1:]...)
	return Eviction{LPNs: append([]int64(nil), g.pages...), BlockBound: true}
}

// EvictIdle implements Policy with the fast implementation's gating.
func (c *FAB) EvictIdle(now int64) (Eviction, bool) {
	if c.Len() <= c.capacity/2 {
		return Eviction{}, false
	}
	return c.evictLargest(), true
}

// CheckInvariants validates occupancy, grouping and uniqueness.
func (c *FAB) CheckInvariants() error {
	if n := c.Len(); n > c.capacity {
		return fmt.Errorf("oracle: FAB holds %d pages, capacity %d", n, c.capacity)
	}
	seenGroup := make(map[int64]bool, len(c.order))
	seen := make(map[int64]bool)
	for _, g := range c.order {
		if seenGroup[g.blockID] {
			return fmt.Errorf("oracle: FAB group %d listed twice", g.blockID)
		}
		seenGroup[g.blockID] = true
		for _, p := range g.pages {
			if p/c.pagesPerBlock != g.blockID {
				return fmt.Errorf("oracle: FAB lpn %d in group %d", p, g.blockID)
			}
			if seen[p] {
				return fmt.Errorf("oracle: FAB lpn %d buffered twice", p)
			}
			seen[p] = true
		}
	}
	return nil
}
