package oracle

import (
	"fmt"

	"repro/internal/cache"
)

// runVindex replays a ModeVindex Spec through two instances of the SAME
// fast policy — one with the default indexed (heap-backed) victim
// selection, one switched to the paper-literal linear reference scan via
// cache.LinearScanSelector — and returns the first divergence. The two
// selectors are required to be bit-identical on every externally visible
// decision: per-request hit/miss/insert counts, read-miss pages, eviction
// batches (victim sets, ordering, block binding), idle-destage decisions,
// occupancy conservation, node counts, and any invariant suite the policy
// ships. Scan-cost counters are deliberately NOT diffed: they measure the
// selection mechanisms, which differ by design.
func runVindex(spec Spec) *Divergence {
	idx := buildVindexPolicy(&spec)
	lin := buildVindexPolicy(&spec)
	// Both modes are forced explicitly: defaults differ per policy (VBBMS
	// ships linear because its victim is an O(1) tail pop either way).
	idx.(cache.LinearScanSelector).SetLinearVictimScan(false)
	lin.(cache.LinearScanSelector).SetLinearVictimScan(true)
	idxIdle, _ := idx.(cache.IdleEvictor)
	linIdle, _ := lin.(cache.IdleEvictor)
	diverge := func(step int, kind, detail string) *Divergence {
		return &Divergence{Spec: spec, Step: step, Kind: kind, Detail: detail}
	}

	for i, req := range spec.Requests {
		prevLen := lin.Len()
		idxRes := idx.Access(req)
		linRes := lin.Access(req)
		// Compare immediately: each result's slices alias its own
		// instance's buffers, overwritten by that instance's next call.
		if d := diffModeResults(idxRes, linRes); d != "" {
			return diverge(i, "result", d)
		}
		evicted := 0
		for _, ev := range linRes.Evictions {
			evicted += len(ev.LPNs) - len(ev.PaddingReads)
		}
		if want := prevLen + linRes.Inserted - evicted; idx.Len() != want || lin.Len() != want {
			return diverge(i, "conservation", fmt.Sprintf(
				"page conservation: had %d, +%d inserted, -%d evicted, want %d; indexed holds %d, linear holds %d",
				prevLen, linRes.Inserted, evicted, want, idx.Len(), lin.Len()))
		}
		if f, o := idx.NodeCount(), lin.NodeCount(); f != o {
			return diverge(i, "membership", fmt.Sprintf("node count: indexed %d, linear %d", f, o))
		}
		if d := checkModeInvariants(idx, lin); d != "" {
			return diverge(i, "invariant", d)
		}

		if spec.IdleEvery > 0 && idxIdle != nil && (i+1)%spec.IdleEvery == 0 {
			now := req.Time + 1
			idxEv, idxOK := idxIdle.EvictIdle(now)
			linEv, linOK := linIdle.EvictIdle(now)
			if idxOK != linOK {
				return diverge(i, "idle", fmt.Sprintf("EvictIdle fired: indexed %v, linear %v", idxOK, linOK))
			}
			if idxOK {
				if d := diffEvictions(0, cacheToOracleEviction(idxEv), cacheToOracleEviction(linEv)); d != "" {
					return diverge(i, "idle", d)
				}
			}
			if f, o := idx.Len(), lin.Len(); f != o {
				return diverge(i, "idle", fmt.Sprintf("post-idle occupancy: indexed %d, linear %d", f, o))
			}
		}
	}

	if f, o := idx.Len(), lin.Len(); f != o {
		return diverge(-1, "membership", fmt.Sprintf("final occupancy: indexed %d, linear %d", f, o))
	}
	if f, o := idx.NodeCount(), lin.NodeCount(); f != o {
		return diverge(-1, "membership", fmt.Sprintf("final node count: indexed %d, linear %d", f, o))
	}
	if d := checkModeInvariants(idx, lin); d != "" {
		return diverge(-1, "invariant", d)
	}
	return nil
}

// buildVindexPolicy constructs one side of the vindex differential from a
// validated ModeVindex Spec.
func buildVindexPolicy(s *Spec) cache.Policy {
	switch s.Policy {
	case "fab":
		return cache.NewFAB(s.CapacityPages, s.PagesPerBlock)
	case "lfu":
		return cache.NewLFU(s.CapacityPages)
	case "vbbms":
		return cache.NewVBBMS(s.CapacityPages)
	case "pud-lru":
		return cache.NewPUDLRU(s.CapacityPages, s.PagesPerBlock)
	}
	panic("oracle: buildVindexPolicy on unvalidated spec")
}

// diffModeResults compares every externally visible field of one Access
// across the two selection modes.
func diffModeResults(f, o cache.Result) string {
	if f.Hits != o.Hits || f.Misses != o.Misses || f.Inserted != o.Inserted {
		return fmt.Sprintf("counts: indexed hits/misses/inserted %d/%d/%d, linear %d/%d/%d",
			f.Hits, f.Misses, f.Inserted, o.Hits, o.Misses, o.Inserted)
	}
	if d := diffLPNs("read misses", f.ReadMisses, o.ReadMisses); d != "" {
		return d
	}
	if len(f.Evictions) != len(o.Evictions) {
		return fmt.Sprintf("eviction batches: indexed %d, linear %d", len(f.Evictions), len(o.Evictions))
	}
	for bi := range f.Evictions {
		if d := diffEvictions(bi, cacheToOracleEviction(f.Evictions[bi]), cacheToOracleEviction(o.Evictions[bi])); d != "" {
			return d
		}
	}
	return ""
}

// checkModeInvariants runs the policy's self-check on both instances
// when it ships one (both sides are the same type, so both or neither).
func checkModeInvariants(idx, lin cache.Policy) string {
	if ck, ok := idx.(interface{ CheckInvariants() error }); ok {
		if err := ck.CheckInvariants(); err != nil {
			return "indexed: " + err.Error()
		}
	}
	if ck, ok := lin.(interface{ CheckInvariants() error }); ok {
		if err := ck.CheckInvariants(); err != nil {
			return "linear: " + err.Error()
		}
	}
	return ""
}
