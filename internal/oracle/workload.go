package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
)

// Policies lists the four paper policies the differential runner covers.
var Policies = []string{"req-block", "lru", "bplru", "fab"}

// ModeVindex selects the vindex differential: the SAME fast policy built
// twice, once with the indexed (heap-backed) victim selection and once
// with the paper-literal linear reference scan, replayed in lockstep.
// Any disagreement means the index broke victim-choice semantics.
const ModeVindex = "vindex"

// VictimPolicies lists the policies with a switchable linear victim scan
// (cache.LinearScanSelector) — the ModeVindex policy set. ECR and
// Req-block route through stateless vindex argmin selectors instead of a
// heap, so they have no second implementation to diff against.
var VictimPolicies = []string{"fab", "lfu", "vbbms", "pud-lru"}

// Spec is one fully self-contained differential workload: policy,
// configuration and request stream. A Spec determines a run completely,
// so a saved Spec replays bit-identically — the repro corpus under
// testdata/repros is a directory of these, serialized as JSON.
type Spec struct {
	// Seed is the generator seed the spec came from (informational once
	// the requests are materialized).
	Seed int64 `json:"seed"`
	// Mode selects the differential: empty for the classic fast-vs-oracle
	// run, ModeVindex for the indexed-vs-linear victim-selection run.
	Mode string `json:"mode,omitempty"`
	// Policy is one of Policies (classic mode) or VictimPolicies
	// (ModeVindex).
	Policy string `json:"policy"`
	// CapacityPages is the write-buffer capacity.
	CapacityPages int `json:"capacity_pages"`
	// Delta, Merge, Recency configure Req-block (ignored by the others).
	Delta   int  `json:"delta,omitempty"`
	Merge   bool `json:"merge,omitempty"`
	Recency bool `json:"recency,omitempty"`
	// PagesPerBlock configures BPLRU/FAB grouping (ignored by the others).
	PagesPerBlock int `json:"pages_per_block,omitempty"`
	// Padding selects the padded BPLRU variant.
	Padding bool `json:"padding,omitempty"`
	// IdleEvery, when positive, probes EvictIdle on both sides after
	// every IdleEvery-th request — the destage-order diff.
	IdleEvery int `json:"idle_every,omitempty"`
	// Mutation arms a seeded bug in the oracle (mutation smoke test).
	Mutation Mutation `json:"mutation,omitempty"`
	// Requests is the request stream, times non-decreasing.
	Requests []cache.Request `json:"requests"`
}

// Validate rejects specs the runner cannot replay.
func (s *Spec) Validate() error {
	switch s.Mode {
	case "":
		switch s.Policy {
		case "req-block", "lru", "bplru", "fab":
		default:
			return fmt.Errorf("oracle: unknown policy %q", s.Policy)
		}
	case ModeVindex:
		switch s.Policy {
		case "fab", "lfu", "vbbms", "pud-lru":
		default:
			return fmt.Errorf("oracle: unknown vindex policy %q", s.Policy)
		}
		if s.Mutation != MutNone {
			return fmt.Errorf("oracle: mutations target the oracle, not the vindex differential")
		}
	case ModeGCSched:
		switch s.Policy {
		case "striped", "bound", "mixed", "trim-mix":
		default:
			return fmt.Errorf("oracle: unknown gcsched flavor %q", s.Policy)
		}
		if s.Mutation != MutNone {
			return fmt.Errorf("oracle: mutations target the oracle, not the gcsched differential")
		}
	default:
		return fmt.Errorf("oracle: unknown mode %q", s.Mode)
	}
	if s.CapacityPages < 1 {
		return fmt.Errorf("oracle: capacity %d, need >= 1", s.CapacityPages)
	}
	if s.Policy == "req-block" && s.Delta < 1 {
		return fmt.Errorf("oracle: delta %d, need >= 1", s.Delta)
	}
	if (s.Policy == "bplru" || s.Policy == "fab" || s.Policy == "pud-lru") && s.PagesPerBlock < 1 {
		return fmt.Errorf("oracle: pages per block %d, need >= 1", s.PagesPerBlock)
	}
	for i, r := range s.Requests {
		if r.Pages < 1 || r.LPN < 0 {
			return fmt.Errorf("oracle: request %d malformed (%+v)", i, r)
		}
		if i > 0 && r.Time < s.Requests[i-1].Time {
			return fmt.Errorf("oracle: request %d time goes backwards", i)
		}
	}
	return nil
}

// MaxLPN returns one past the highest page any request touches.
func (s *Spec) MaxLPN() int64 {
	var m int64
	for _, r := range s.Requests {
		if end := r.LPN + int64(r.Pages); end > m {
			m = end
		}
	}
	return m
}

// ftlLogicalPages is the logical size of the differential FTL pair (the
// fast side uses the tiny geometry in diff.go). Generated workloads stay
// inside it so every eviction batch can be flushed.
const ftlLogicalPages = 96

// maxGenPages bounds generated request sizes: large enough to exceed any
// generated δ (so splits happen), small enough that mid-size caches see
// real eviction pressure.
const maxGenPages = 12

// Generate derives a deterministic randomized workload from a seed. All
// tunables — capacity, δ, merge/recency ablations, block size, the
// read/write mix, spatial locality and the idle-probe cadence — come from
// the seed, so a campaign over a seed range sweeps the configuration
// space too. The same (seed, policy, n) always yields the same Spec.
func Generate(seed int64, policy string, n int) Spec {
	rng := rand.New(rand.NewSource(seed))
	s := Spec{
		Seed:          seed,
		Policy:        policy,
		CapacityPages: 12 + rng.Intn(53), // 12..64 pages
		Delta:         1 + rng.Intn(7),   // δ in 1..7, straddling request sizes
		Merge:         rng.Intn(4) != 0,  // ablations appear but rarely
		Recency:       rng.Intn(4) != 0,
		PagesPerBlock: []int{2, 4, 8}[rng.Intn(3)],
		Padding:       rng.Intn(8) == 0,
	}
	if rng.Intn(2) == 0 {
		s.IdleEvery = 13 + rng.Intn(25)
	}
	// The LPN range sets the reuse rate: a touch above capacity keeps the
	// buffer full and hit-rich, a few multiples makes eviction churn
	// dominate. Block-aligned so relabeling metamorphics can shift it.
	lpnRange := int64(s.CapacityPages * (1 + rng.Intn(3)))
	lpnRange -= lpnRange % int64(s.PagesPerBlock)
	if lpnRange < int64(s.PagesPerBlock) {
		lpnRange = int64(s.PagesPerBlock)
	}
	if lpnRange > ftlLogicalPages-maxGenPages {
		lpnRange = ftlLogicalPages - maxGenPages
	}
	writePct := 60 + rng.Intn(36) // 60..95 percent writes
	now := int64(0)
	s.Requests = make([]cache.Request, 0, n)
	for i := 0; i < n; i++ {
		now += 1 + int64(rng.Intn(5000))
		pages := 1 + rng.Intn(maxGenPages)
		if int64(pages) > lpnRange {
			pages = int(lpnRange)
		}
		s.Requests = append(s.Requests, cache.Request{
			Time:  now,
			Write: rng.Intn(100) < writePct,
			LPN:   rng.Int63n(lpnRange - int64(pages) + 1),
			Pages: pages,
		})
	}
	return s
}

// GenerateVindex derives a deterministic randomized ModeVindex workload.
// No FTL rides along in this mode, so capacities and address ranges run
// larger than Generate's: enough churn that the heaps see thousands of
// push/invalidate/pop cycles, compaction, and pooled-node reuse, while
// ties stay common (the address range is a small multiple of capacity).
func GenerateVindex(seed int64, policy string, n int) Spec {
	rng := rand.New(rand.NewSource(seed))
	s := Spec{
		Seed:          seed,
		Mode:          ModeVindex,
		Policy:        policy,
		CapacityPages: 16 + rng.Intn(113), // 16..128 pages
		PagesPerBlock: []int{2, 4, 8}[rng.Intn(3)],
	}
	if rng.Intn(2) == 0 {
		// Probed only for policies that implement IdleEvictor (FAB).
		s.IdleEvery = 13 + rng.Intn(25)
	}
	lpnRange := int64(s.CapacityPages * (1 + rng.Intn(4)))
	lpnRange -= lpnRange % int64(s.PagesPerBlock)
	if lpnRange < int64(s.PagesPerBlock) {
		lpnRange = int64(s.PagesPerBlock)
	}
	writePct := 60 + rng.Intn(36) // 60..95 percent writes
	now := int64(0)
	s.Requests = make([]cache.Request, 0, n)
	for i := 0; i < n; i++ {
		now += 1 + int64(rng.Intn(5000))
		pages := 1 + rng.Intn(maxGenPages)
		if int64(pages) > lpnRange {
			pages = int(lpnRange)
		}
		s.Requests = append(s.Requests, cache.Request{
			Time:  now,
			Write: rng.Intn(100) < writePct,
			LPN:   rng.Int63n(lpnRange - int64(pages) + 1),
			Pages: pages,
		})
	}
	return s
}
