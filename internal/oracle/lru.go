package oracle

import (
	"fmt"

	"repro/internal/cache"
)

// LRU is the paper-literal page-granularity least-recently-used write
// buffer: a single slice ordered most-recent-first, one page per entry.
// Hits move the page to the front; eviction flushes the last page, one
// single-page batch per victim, exactly as the fast implementation
// reports them.
type LRU struct {
	capacity int
	order    []int64 // index 0 = most recently used
}

// NewLRU builds the oracle.
func NewLRU(capacityPages int) *LRU {
	cache.ValidateCapacity(capacityPages)
	return &LRU{capacity: capacityPages}
}

// Name implements Policy.
func (c *LRU) Name() string { return "LRU" }

// Len implements Policy.
func (c *LRU) Len() int { return len(c.order) }

// NodeCount implements Policy: one node per page.
func (c *LRU) NodeCount() int { return len(c.order) }

// indexOf returns the position of a page, or -1.
func (c *LRU) indexOf(lpn int64) int {
	for i, p := range c.order {
		if p == lpn {
			return i
		}
	}
	return -1
}

// Access implements Policy, walking the request page by page.
func (c *LRU) Access(req cache.Request) Result {
	cache.CheckRequest(req)
	var res Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		if at := c.indexOf(lpn); at >= 0 {
			res.Hits++
			// Move to front (reads reorder too, matching the fast LRU).
			c.order = append(c.order[:at], c.order[at+1:]...)
			c.order = append([]int64{lpn}, c.order...)
		} else {
			res.Misses++
			if req.Write {
				for len(c.order) >= c.capacity {
					res.Evictions = append(res.Evictions, c.evictTail())
				}
				c.order = append([]int64{lpn}, c.order...)
				res.Inserted++
			} else {
				res.ReadMisses = append(res.ReadMisses, lpn)
			}
		}
		lpn++
	}
	return res
}

// evictTail flushes the least recently used page as its own batch.
func (c *LRU) evictTail() Eviction {
	last := len(c.order) - 1
	victim := c.order[last]
	c.order = c.order[:last]
	return Eviction{LPNs: []int64{victim}}
}

// EvictIdle implements Policy with the fast implementation's gating.
func (c *LRU) EvictIdle(now int64) (Eviction, bool) {
	if len(c.order) <= c.capacity/2 {
		return Eviction{}, false
	}
	return c.evictTail(), true
}

// CheckInvariants validates occupancy and uniqueness.
func (c *LRU) CheckInvariants() error {
	if len(c.order) > c.capacity {
		return fmt.Errorf("oracle: LRU holds %d pages, capacity %d", len(c.order), c.capacity)
	}
	seen := make(map[int64]bool, len(c.order))
	for _, p := range c.order {
		if seen[p] {
			return fmt.Errorf("oracle: LRU holds lpn %d twice", p)
		}
		seen[p] = true
	}
	return nil
}
