package oracle

import (
	"testing"

	"repro/internal/cache"
)

// TestDifferentialCampaign is the headline check: 64 seeds × 4 policies
// of generated workloads through the fast implementations and the
// oracles in lockstep, zero divergences allowed. This is the same grid
// `ssdcheck -quick` runs from make check.
func TestDifferentialCampaign(t *testing.T) {
	seeds := 64
	if testing.Short() {
		seeds = 8
	}
	res := RunCampaign(CampaignConfig{
		Seeds:    seeds,
		Requests: 192,
		Logf:     t.Logf,
	})
	if res.Failed() {
		t.Fatalf("%s: %v", res.Summary(), res.Divergences[0])
	}
	if want := seeds * len(Policies); res.Runs != want {
		t.Fatalf("campaign ran %d workloads, want %d", res.Runs, want)
	}
}

// TestRunSingleSpecs exercises the runner on tiny hand-written specs so a
// campaign regression localizes to a policy quickly.
func TestRunSingleSpecs(t *testing.T) {
	reqs := []cache.Request{
		{Time: 1, Write: true, LPN: 0, Pages: 8},
		{Time: 2, Write: true, LPN: 4, Pages: 2},
		{Time: 3, Write: false, LPN: 0, Pages: 6},
		{Time: 4, Write: true, LPN: 10, Pages: 7},
		{Time: 5, Write: true, LPN: 0, Pages: 3},
		{Time: 6, Write: true, LPN: 16, Pages: 8},
		{Time: 7, Write: true, LPN: 3, Pages: 1},
	}
	for _, spec := range []Spec{
		{Policy: "req-block", CapacityPages: 12, Delta: 3, Merge: true, Recency: true, Requests: reqs},
		{Policy: "req-block", CapacityPages: 12, Delta: 3, Requests: reqs},
		{Policy: "lru", CapacityPages: 12, Requests: reqs},
		{Policy: "bplru", CapacityPages: 12, PagesPerBlock: 4, Requests: reqs},
		{Policy: "bplru", CapacityPages: 12, PagesPerBlock: 4, Padding: true, Requests: reqs},
		{Policy: "fab", CapacityPages: 12, PagesPerBlock: 4, Requests: reqs},
	} {
		if d := Run(spec); d != nil {
			t.Errorf("policy %s (padding=%v merge=%v): %v", spec.Policy, spec.Padding, spec.Merge, d)
		}
	}
}

// TestGenerateDeterministic pins the generator contract the repro corpus
// relies on: same inputs, same workload.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, "req-block", 50)
	b := Generate(42, "req-block", 50)
	if a.CapacityPages != b.CapacityPages || a.Delta != b.Delta || len(a.Requests) != len(b.Requests) {
		t.Fatalf("generator not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
}
