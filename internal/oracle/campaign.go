package oracle

import "fmt"

// CampaignConfig drives a batch of differential runs: a seed range
// crossed with a policy list, one generated workload each.
type CampaignConfig struct {
	// SeedStart and Seeds delimit the seed range [SeedStart, SeedStart+Seeds).
	SeedStart int64
	Seeds     int
	// Mode selects the differential per run: empty for fast-vs-oracle,
	// ModeVindex for indexed-vs-linear victim selection.
	Mode string
	// Policies defaults to all four paper policies (classic mode) or all
	// four VictimPolicies (ModeVindex).
	Policies []string
	// Requests is the workload length per run (default 192).
	Requests int
	// Mutation arms a seeded oracle bug in every run (smoke testing the
	// harness itself; only Req-block runs are affected).
	Mutation Mutation
	// Shrink minimizes every divergence before reporting it.
	Shrink bool
	// MaxFailures stops the campaign early once this many divergences
	// were collected (default 1; shrinking is expensive).
	MaxFailures int
	// Logf, when set, receives one line per failure and per progress
	// milestone.
	Logf func(format string, args ...any)
}

// CampaignResult summarizes a finished campaign.
type CampaignResult struct {
	Runs        int
	Divergences []*Divergence
}

// Failed reports whether any run diverged.
func (r CampaignResult) Failed() bool { return len(r.Divergences) > 0 }

// RunCampaign executes the configured seed × policy grid and returns
// every (optionally minimized) divergence found.
func RunCampaign(cfg CampaignConfig) CampaignResult {
	if len(cfg.Policies) == 0 {
		switch cfg.Mode {
		case ModeVindex:
			cfg.Policies = VictimPolicies
		case ModeGCSched:
			cfg.Policies = GCSchedFlavors
		default:
			cfg.Policies = Policies
		}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 192
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var res CampaignResult
	for s := int64(0); s < int64(cfg.Seeds); s++ {
		for _, pol := range cfg.Policies {
			var spec Spec
			switch cfg.Mode {
			case ModeVindex:
				spec = GenerateVindex(cfg.SeedStart+s, pol, cfg.Requests)
			case ModeGCSched:
				spec = GenerateGCSched(cfg.SeedStart+s, pol, cfg.Requests)
			default:
				spec = Generate(cfg.SeedStart+s, pol, cfg.Requests)
				spec.Mutation = cfg.Mutation
			}
			res.Runs++
			d := Run(spec)
			if d == nil {
				continue
			}
			logf("seed %d policy %s: %v", spec.Seed, pol, d)
			if cfg.Shrink {
				shrunk, sd := Shrink(spec)
				if sd != nil {
					d = sd
					logf("seed %d policy %s: shrunk to %d requests: %v",
						spec.Seed, pol, len(shrunk.Requests), sd)
				}
			}
			res.Divergences = append(res.Divergences, d)
			if len(res.Divergences) >= cfg.MaxFailures {
				return res
			}
		}
	}
	return res
}

// String implements fmt.Stringer.
func (d *Divergence) String() string { return d.Error() }

// Summary renders a short human-readable campaign outcome.
func (r CampaignResult) Summary() string {
	if !r.Failed() {
		return fmt.Sprintf("ok: %d differential runs, zero divergences", r.Runs)
	}
	return fmt.Sprintf("FAIL: %d of %d differential runs diverged", len(r.Divergences), r.Runs)
}
