package oracle

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
)

// TestVindexCampaignClean is the in-tree slice of the CI gate: a seed
// range crossed with all four switchable-scan policies, indexed victim
// selection versus the linear reference scan, zero divergences expected.
func TestVindexCampaignClean(t *testing.T) {
	res := RunCampaign(CampaignConfig{
		Seeds:    16,
		Mode:     ModeVindex,
		Requests: 192,
		Logf:     t.Logf,
	})
	if res.Failed() {
		t.Fatalf("vindex differential diverged: %v", res.Divergences[0])
	}
	if want := 16 * len(VictimPolicies); res.Runs != want {
		t.Fatalf("ran %d differentials, want %d", res.Runs, want)
	}
}

// TestVindexValidate pins the mode-specific spec validation.
func TestVindexValidate(t *testing.T) {
	base := GenerateVindex(1, "lfu", 8)
	if err := base.Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"unknown mode", func(s *Spec) { s.Mode = "warp" }, "unknown mode"},
		{"oracle-only policy", func(s *Spec) { s.Policy = "req-block" }, "unknown vindex policy"},
		{"mutation in vindex mode", func(s *Spec) { s.Mutation = MutDeltaOffByOne }, "mutations target the oracle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.edit(&spec)
			err := spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestGenerateVindexDeterministic pins replayability: the same
// (seed, policy, n) must always yield the same Spec.
func TestGenerateVindexDeterministic(t *testing.T) {
	for _, pol := range VictimPolicies {
		a := GenerateVindex(42, pol, 64)
		b := GenerateVindex(42, pol, 64)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("policy %s: generation is not deterministic", pol)
		}
		if a.Mode != ModeVindex {
			t.Fatalf("policy %s: generated mode %q", pol, a.Mode)
		}
	}
}

// TestVindexReproRoundTrip pins the corpus serialization of vindex specs:
// the mode survives the JSON round trip (a spec silently losing its mode
// would replay the wrong differential) and the filename carries it.
func TestVindexReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := GenerateVindex(5, "vbbms", 24)
	path, err := SaveRepro(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(path); !strings.HasPrefix(base, "vindex-vbbms-") {
		t.Fatalf("repro filename %q does not carry the mode", base)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ModeVindex || got.Policy != spec.Policy || len(got.Requests) != len(spec.Requests) {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if d := Run(got); d != nil {
		t.Fatalf("reloaded spec diverges: %v", d)
	}
}

// TestDiffModeResults gives the vindex result comparator teeth: every
// externally visible field difference must be reported, and equal results
// must not be.
func TestDiffModeResults(t *testing.T) {
	mk := func() cache.Result {
		return cache.Result{
			Hits: 2, Misses: 1, Inserted: 1,
			ReadMisses: []int64{7},
			Evictions:  []cache.Eviction{{LPNs: []int64{3, 4}, BlockBound: true}},
		}
	}
	if d := diffModeResults(mk(), mk()); d != "" {
		t.Fatalf("equal results reported as diverged: %s", d)
	}
	cases := []struct {
		name string
		edit func(*cache.Result)
	}{
		{"hits", func(r *cache.Result) { r.Hits++ }},
		{"inserted", func(r *cache.Result) { r.Inserted-- }},
		{"read misses", func(r *cache.Result) { r.ReadMisses = []int64{8} }},
		{"batch count", func(r *cache.Result) { r.Evictions = r.Evictions[:0] }},
		{"victim order", func(r *cache.Result) { r.Evictions[0].LPNs = []int64{4, 3} }},
		{"block binding", func(r *cache.Result) { r.Evictions[0].BlockBound = false }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := mk(), mk()
			tc.edit(&b)
			if diffModeResults(a, b) == "" {
				t.Fatal("difference not detected")
			}
		})
	}
}
