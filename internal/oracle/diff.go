package oracle

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/ftl"
)

// Divergence is the first observed disagreement between the fast
// implementation and the oracle on one Spec. Step is the request index
// the disagreement surfaced at (-1 for end-of-run checks); Kind names the
// diffed surface ("result", "transitions", "idle", "membership",
// "conservation", "invariant", "ftl").
type Divergence struct {
	Spec   Spec
	Step   int
	Kind   string
	Detail string
}

// Error implements error.
func (d *Divergence) Error() string {
	return fmt.Sprintf("divergence [%s] at step %d (policy %s, seed %d): %s",
		d.Kind, d.Step, d.Spec.Policy, d.Spec.Seed, d.Detail)
}

// recorder buffers list-transition annotations for diffing.
type recorder struct {
	trs []cache.ListTransition
}

func (r *recorder) OnListTransition(tr cache.ListTransition) { r.trs = append(r.trs, tr) }

// pair holds the two sides of one differential run.
type pair struct {
	fast cache.Policy
	ora  Policy
	// Typed handles for the Req-block membership diff; nil otherwise.
	fastRB *core.ReqBlock
	oraRB  *ReqBlock
	// Transition streams; attached only for Req-block.
	fastTr, oraTr *recorder
}

// buildPair constructs both sides from a validated Spec.
func buildPair(s *Spec) pair {
	switch s.Policy {
	case "req-block":
		f := core.NewConfig(s.CapacityPages, core.Config{Delta: s.Delta, Merge: s.Merge, Recency: s.Recency})
		o := NewReqBlock(s.CapacityPages, ReqBlockConfig{
			Delta: s.Delta, Merge: s.Merge, Recency: s.Recency, Mutation: s.Mutation,
		})
		p := pair{fast: f, ora: o, fastRB: f, oraRB: o, fastTr: &recorder{}, oraTr: &recorder{}}
		f.SetTransitionSink(p.fastTr)
		o.SetTransitionSink(p.oraTr)
		return p
	case "lru":
		return pair{fast: cache.NewLRU(s.CapacityPages), ora: NewLRU(s.CapacityPages)}
	case "bplru":
		var f cache.Policy
		if s.Padding {
			f = cache.NewBPLRUWithPadding(s.CapacityPages, s.PagesPerBlock)
		} else {
			f = cache.NewBPLRU(s.CapacityPages, s.PagesPerBlock)
		}
		return pair{fast: f, ora: NewBPLRU(s.CapacityPages, s.PagesPerBlock, s.Padding)}
	case "fab":
		return pair{fast: cache.NewFAB(s.CapacityPages, s.PagesPerBlock), ora: NewFAB(s.CapacityPages, s.PagesPerBlock)}
	}
	panic("oracle: buildPair on unvalidated spec")
}

// ftlPair is the differential FTL sink: every eviction batch is flushed
// through both the fast FTL (tiny 4-plane geometry, 96 logical pages) and
// the naive oracle FTL over the same geometry. Physical placement is
// policy, not contract, so only the live logical set is diffed — plus
// both sides' full invariant suites, which is where the oracle's
// content-stamp check ("GC never loses a live page") bites.
type ftlPair struct {
	fast  *ftl.FTL
	ora   *FTL
	stamp uint64
}

// diffFTLGeometry is the shared tiny geometry: 2 channels × 2 chips ×
// 1 plane × 8 blocks × 4 pages = 128 physical pages, 96 logical after
// 25% over-provisioning, GC floor 2 blocks/plane — small enough that
// campaigns hammer the GC path constantly.
func diffFTLGeometry() flash.Params {
	p := flash.DefaultParams()
	p.Channels, p.ChipsPerChannel, p.PlanesPerChip = 2, 2, 1
	p.BlocksPerPlane, p.PagesPerBlock = 8, 4
	p.OverProvision = 0.25
	p.GCThreshold = 0.25
	return p
}

func newFTLPair() (*ftlPair, error) {
	params := diffFTLGeometry()
	f, err := ftl.New(params)
	if err != nil {
		return nil, err
	}
	return &ftlPair{
		fast: f,
		ora:  NewFTL(params.Planes(), params.BlocksPerPlane, params.PagesPerBlock, params.LogicalPages(), 2),
	}, nil
}

// flush feeds one eviction batch to both FTLs, stamping every page.
func (fp *ftlPair) flush(now int64, ev Eviction) error {
	if len(ev.LPNs) == 0 {
		return nil
	}
	stamps := make([]uint64, len(ev.LPNs))
	for i := range stamps {
		fp.stamp++
		stamps[i] = fp.stamp
	}
	lpns := append([]int64(nil), ev.LPNs...)
	var fastErr, oraErr error
	if ev.BlockBound {
		_, fastErr = fp.fast.WriteBlockBound(now, lpns)
		oraErr = fp.ora.WriteBlockBound(lpns, stamps)
	} else {
		_, fastErr = fp.fast.WriteStriped(now, lpns)
		oraErr = fp.ora.WriteStriped(lpns, stamps)
	}
	if fastErr != nil {
		return fmt.Errorf("fast ftl: %w", fastErr)
	}
	if oraErr != nil {
		return fmt.Errorf("oracle ftl: %w", oraErr)
	}
	return nil
}

// mappedDiff compares the live logical sets of both FTLs.
func (fp *ftlPair) mappedDiff() string {
	for lpn := int64(0); lpn < fp.ora.LogicalPages(); lpn++ {
		if f, o := fp.fast.Mapped(lpn), fp.ora.Mapped(lpn); f != o {
			return fmt.Sprintf("lpn %d: fast mapped=%v, oracle mapped=%v", lpn, f, o)
		}
	}
	return ""
}

// membershipEvery sets the cadence of the deep state diffs (per-page list
// membership, per-list occupancy gauges, FTL mapped sets). They are
// linear scans, so they run periodically rather than per request; the
// final diff always runs.
const membershipEvery = 16

// Run replays a Spec through the fast implementation and the oracle in
// lockstep and returns the first divergence, or nil when the two agree on
// every externally visible decision: per-request hit/miss/insert counts,
// read-miss pages, eviction batches (victim sets, ordering, block
// binding, padding reads), idle-destage decisions, list-transition
// annotations, per-list membership, cache occupancy conservation, FTL
// mapped sets, and both sides' invariant suites.
func Run(spec Spec) *Divergence {
	if err := spec.Validate(); err != nil {
		return &Divergence{Spec: spec, Step: -1, Kind: "spec", Detail: err.Error()}
	}
	if spec.Mode == ModeVindex {
		// Indexed-vs-linear victim selection; Shrink, SaveRepro and the
		// repro corpus reuse this dispatch untouched.
		return runVindex(spec)
	}
	if spec.Mode == ModeGCSched {
		// Scheduled-vs-greedy GC over the lockstep FTL triple; same
		// mode-agnostic dispatch for Shrink and the repro corpus.
		return runGCSched(spec)
	}
	p := buildPair(&spec)
	fp, err := newFTLPair()
	if err != nil {
		return &Divergence{Spec: spec, Step: -1, Kind: "ftl", Detail: err.Error()}
	}
	maxLPN := spec.MaxLPN()
	diverge := func(step int, kind, detail string) *Divergence {
		return &Divergence{Spec: spec, Step: step, Kind: kind, Detail: detail}
	}

	for i, req := range spec.Requests {
		prevLen := p.ora.Len()
		fastRes := p.fast.Access(req)
		oraRes := p.ora.Access(req)
		// Compare immediately: the fast result's slices alias policy-owned
		// buffers that the next Access/EvictIdle call overwrites.
		if d := diffResults(fastRes, oraRes); d != "" {
			return diverge(i, "result", d)
		}
		if p.fastTr != nil {
			if d := diffTransitions(p.fastTr, p.oraTr); d != "" {
				return diverge(i, "transitions", d)
			}
		}
		evicted := 0
		for _, ev := range oraRes.Evictions {
			evicted += len(ev.LPNs) - len(ev.PaddingReads)
			if err := fp.flush(req.Time, ev); err != nil {
				return diverge(i, "ftl", err.Error())
			}
		}
		if want := prevLen + oraRes.Inserted - evicted; p.ora.Len() != want || p.fast.Len() != want {
			return diverge(i, "conservation", fmt.Sprintf(
				"page conservation: had %d, +%d inserted, -%d evicted, want %d; fast holds %d, oracle holds %d",
				prevLen, oraRes.Inserted, evicted, want, p.fast.Len(), p.ora.Len()))
		}
		if f, o := p.fast.NodeCount(), p.ora.NodeCount(); f != o {
			return diverge(i, "membership", fmt.Sprintf("node count: fast %d, oracle %d", f, o))
		}
		if d := checkInvariants(p); d != "" {
			return diverge(i, "invariant", d)
		}

		if spec.IdleEvery > 0 && (i+1)%spec.IdleEvery == 0 {
			now := req.Time + 1
			fastEv, fastOK := p.fast.(cache.IdleEvictor).EvictIdle(now)
			oraEv, oraOK := p.ora.EvictIdle(now)
			if fastOK != oraOK {
				return diverge(i, "idle", fmt.Sprintf("EvictIdle fired: fast %v, oracle %v", fastOK, oraOK))
			}
			if fastOK {
				if d := diffEvictions(0, cacheToOracleEviction(fastEv), oraEv); d != "" {
					return diverge(i, "idle", d)
				}
				if err := fp.flush(now, oraEv); err != nil {
					return diverge(i, "ftl", err.Error())
				}
			}
			if p.fastTr != nil {
				if d := diffTransitions(p.fastTr, p.oraTr); d != "" {
					return diverge(i, "transitions", d)
				}
			}
			if f, o := p.fast.Len(), p.ora.Len(); f != o {
				return diverge(i, "idle", fmt.Sprintf("post-idle occupancy: fast %d, oracle %d", f, o))
			}
		}

		if (i+1)%membershipEvery == 0 {
			if d := deepDiff(p, fp, maxLPN); d != "" {
				return diverge(i, "membership", d)
			}
		}
	}

	if d := deepDiff(p, fp, maxLPN); d != "" {
		return diverge(-1, "membership", d)
	}
	if err := fp.fast.CheckInvariants(); err != nil {
		return diverge(-1, "invariant", "fast ftl: "+err.Error())
	}
	if err := fp.ora.CheckInvariants(); err != nil {
		return diverge(-1, "invariant", "oracle ftl: "+err.Error())
	}
	return nil
}

// cacheToOracleEviction converts the fast eviction shape for diffing.
func cacheToOracleEviction(ev cache.Eviction) Eviction {
	return Eviction{LPNs: ev.LPNs, BlockBound: ev.BlockBound, PaddingReads: ev.PaddingReads}
}

// diffResults compares every externally visible field of one Access.
func diffResults(f cache.Result, o Result) string {
	if f.Hits != o.Hits || f.Misses != o.Misses || f.Inserted != o.Inserted {
		return fmt.Sprintf("counts: fast hits/misses/inserted %d/%d/%d, oracle %d/%d/%d",
			f.Hits, f.Misses, f.Inserted, o.Hits, o.Misses, o.Inserted)
	}
	if d := diffLPNs("read misses", f.ReadMisses, o.ReadMisses); d != "" {
		return d
	}
	if len(f.Evictions) != len(o.Evictions) {
		return fmt.Sprintf("eviction batches: fast %d, oracle %d", len(f.Evictions), len(o.Evictions))
	}
	for bi := range f.Evictions {
		if d := diffEvictions(bi, cacheToOracleEviction(f.Evictions[bi]), o.Evictions[bi]); d != "" {
			return d
		}
	}
	return ""
}

// diffEvictions compares one eviction batch field by field.
func diffEvictions(batch int, f, o Eviction) string {
	if d := diffLPNs(fmt.Sprintf("eviction %d victims", batch), f.LPNs, o.LPNs); d != "" {
		return d
	}
	if f.BlockBound != o.BlockBound {
		return fmt.Sprintf("eviction %d block-bound: fast %v, oracle %v", batch, f.BlockBound, o.BlockBound)
	}
	return diffLPNs(fmt.Sprintf("eviction %d padding reads", batch), f.PaddingReads, o.PaddingReads)
}

// diffLPNs compares two LPN sequences order-sensitively (both sides emit
// deterministic orders by construction).
func diffLPNs(what string, f, o []int64) string {
	if len(f) != len(o) {
		return fmt.Sprintf("%s: fast %v, oracle %v", what, f, o)
	}
	for i := range f {
		if f[i] != o[i] {
			return fmt.Sprintf("%s: fast %v, oracle %v", what, f, o)
		}
	}
	return ""
}

// diffTransitions compares the buffered annotation streams and drains
// both recorders.
func diffTransitions(f, o *recorder) string {
	defer func() { f.trs, o.trs = f.trs[:0], o.trs[:0] }()
	if len(f.trs) != len(o.trs) {
		return fmt.Sprintf("transition count: fast %v, oracle %v", fmtTrs(f.trs), fmtTrs(o.trs))
	}
	for i := range f.trs {
		if f.trs[i] != o.trs[i] {
			return fmt.Sprintf("transition %d: fast %+v, oracle %+v", i, f.trs[i], o.trs[i])
		}
	}
	return ""
}

func fmtTrs(trs []cache.ListTransition) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, tr := range trs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d×%d:%s→%s", tr.LPN, tr.Pages, tr.From, tr.To)
	}
	b.WriteByte(']')
	return b.String()
}

// checkInvariants runs both sides' self-checks; the fast side's is
// optional per policy.
func checkInvariants(p pair) string {
	if ck, ok := p.fast.(interface{ CheckInvariants() error }); ok {
		if err := ck.CheckInvariants(); err != nil {
			return "fast: " + err.Error()
		}
	}
	if err := p.ora.CheckInvariants(); err != nil {
		return "oracle: " + err.Error()
	}
	return ""
}

// deepDiff runs the linear-scan state comparisons: cache occupancy,
// Req-block per-page list membership and per-list gauges, and the FTL
// mapped sets.
func deepDiff(p pair, fp *ftlPair, maxLPN int64) string {
	if f, o := p.fast.Len(), p.ora.Len(); f != o {
		return fmt.Sprintf("occupancy: fast %d, oracle %d", f, o)
	}
	if p.fastRB != nil {
		for lpn := int64(0); lpn < maxLPN; lpn++ {
			if f, o := p.fastRB.WhereIs(lpn), p.oraRB.WhereIs(lpn); f != o {
				return fmt.Sprintf("membership of lpn %d: fast %q, oracle %q", lpn, f, o)
			}
		}
		fl, ol := p.fastRB.ListPages(), p.oraRB.ListPages()
		for _, name := range listNames {
			if fl[name] != ol[name] {
				return fmt.Sprintf("%s pages: fast %d, oracle %d", name, fl[name], ol[name])
			}
		}
	}
	return fp.mappedDiff()
}
