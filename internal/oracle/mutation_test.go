package oracle

import "testing"

// TestMutationsCaughtAndShrunk proves the harness has teeth: each seeded
// oracle bug must (a) be detected by the differential runner within a
// small seed scan, and (b) shrink to a repro of at most 20 requests that
// still diverges. A harness that cannot catch its own planted bugs
// proves nothing when it reports zero divergences.
func TestMutationsCaughtAndShrunk(t *testing.T) {
	const maxSeeds = 64
	const maxRepro = 20
	for _, mut := range Mutations {
		mut := mut
		t.Run(string(mut), func(t *testing.T) {
			var failing *Spec
			for seed := int64(0); seed < maxSeeds; seed++ {
				spec := Generate(seed, "req-block", 192)
				spec.Mutation = mut
				if Run(spec) != nil {
					failing = &spec
					break
				}
			}
			if failing == nil {
				t.Fatalf("mutation %s survived %d seeds of 192 requests — harness has no teeth", mut, maxSeeds)
			}
			shrunk, d := Shrink(*failing)
			if d == nil {
				t.Fatalf("mutation %s: shrinker lost the failure", mut)
			}
			if got := len(shrunk.Requests); got > maxRepro {
				t.Fatalf("mutation %s: shrunk repro still has %d requests, want <= %d", mut, got, maxRepro)
			}
			if Run(shrunk) == nil {
				t.Fatalf("mutation %s: minimized spec no longer diverges", mut)
			}
			t.Logf("mutation %s: caught at seed %d, shrunk %d -> %d requests (%s)",
				mut, failing.Seed, len(failing.Requests), len(shrunk.Requests), d.Kind)
		})
	}
}

// TestShrinkPreservesPassing pins the shrinker's contract on a green
// input: returned unchanged with a nil divergence.
func TestShrinkPreservesPassing(t *testing.T) {
	spec := Generate(7, "req-block", 64)
	out, d := Shrink(spec)
	if d != nil {
		t.Fatalf("unexpected divergence on clean spec: %v", d)
	}
	if len(out.Requests) != len(spec.Requests) {
		t.Fatalf("shrinker modified a passing spec")
	}
}
