package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/ftl"
)

// ModeGCSched selects the GC-scheduling differential: THREE FTLs over the
// same tiny geometry replayed in lockstep on one write/trim stream —
//
//   - a fast FTL with plain greedy GC (the paper-literal baseline),
//   - a fast FTL with the preemptible scheduler enabled, driven by
//     budgeted idle slices whose budgets come deterministically from the
//     spec seed (so jobs are preempted at every possible boundary across
//     a campaign),
//   - the naive oracle FTL, which stamps page contents ("GC never loses
//     a live page").
//
// Physical placement is policy, not contract: the three are required to
// agree on the live logical set at every checkpoint and to pass their
// full invariant suites even while a scheduled job is parked mid-victim.
// A budgeted slice on the greedy side must also be a strict no-op — the
// bit-identical-when-disabled guarantee.
const ModeGCSched = "gcsched"

// GCSchedFlavors are the write-stream shapes the gcsched differential
// sweeps (the Spec.Policy values of ModeGCSched): pure striped writes,
// pure block-bound writes, an alternating mix, and a mix with trims —
// each stresses a different allocator/GC interaction.
var GCSchedFlavors = []string{"striped", "bound", "mixed", "trim-mix"}

// gcschedMaxBudgetNs bounds the per-probe idle budget: a touch above one
// worst-case collection on the tiny geometry (3 copies + erase ≈ 21 ms),
// so the seed-derived budgets cover everything from "preempt before the
// first copy" to "finish with room to spare".
const gcschedMaxBudgetNs = 30_000_000

// runGCSched replays a ModeGCSched Spec through the greedy/scheduled/
// oracle triple and returns the first divergence.
func runGCSched(spec Spec) *Divergence {
	params := diffFTLGeometry()
	greedy, err := ftl.New(params)
	if err != nil {
		return &Divergence{Spec: spec, Step: -1, Kind: "ftl", Detail: err.Error()}
	}
	sched, err := ftl.New(params)
	if err != nil {
		return &Divergence{Spec: spec, Step: -1, Kind: "ftl", Detail: err.Error()}
	}
	sched.EnableGCScheduler(ftl.GCSchedConfig{Enabled: true})
	ora := NewFTL(params.Planes(), params.BlocksPerPlane, params.PagesPerBlock, params.LogicalPages(), 2)
	diverge := func(step int, kind, detail string) *Divergence {
		return &Divergence{Spec: spec, Step: step, Kind: kind, Detail: detail}
	}

	// Budget stream: splitmix64 of the seed, independent of math/rand so a
	// saved repro replays bit-identically across Go versions.
	budgetState := uint64(spec.Seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	nextBudget := func() int64 {
		budgetState += 0x9e3779b97f4a7c15
		z := budgetState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return int64(z % (gcschedMaxBudgetNs + 1))
	}

	var stamp uint64
	var now int64
	for i, req := range spec.Requests {
		now = req.Time
		lpns := make([]int64, req.Pages)
		for k := range lpns {
			lpns[k] = req.LPN + int64(k)
		}
		if !req.Write {
			// Trim on all three sides (reads don't change FTL state).
			if err := greedy.Trim(lpns); err != nil {
				return diverge(i, "ftl", "greedy trim: "+err.Error())
			}
			if err := sched.Trim(lpns); err != nil {
				return diverge(i, "ftl", "scheduled trim: "+err.Error())
			}
			ora.Trim(lpns)
		} else {
			stamps := make([]uint64, len(lpns))
			for k := range stamps {
				stamp++
				stamps[k] = stamp
			}
			bound := false
			switch spec.Policy {
			case "bound":
				bound = true
			case "mixed", "trim-mix":
				bound = i%2 == 1
			}
			var gErr, sErr, oErr error
			if bound {
				_, gErr = greedy.WriteBlockBound(now, lpns)
				_, sErr = sched.WriteBlockBound(now, lpns)
				oErr = ora.WriteBlockBound(lpns, stamps)
			} else {
				_, gErr = greedy.WriteStriped(now, lpns)
				_, sErr = sched.WriteStriped(now, lpns)
				oErr = ora.WriteStriped(lpns, stamps)
			}
			if gErr != nil {
				return diverge(i, "ftl", "greedy ftl: "+gErr.Error())
			}
			if sErr != nil {
				return diverge(i, "ftl", "scheduled ftl: "+sErr.Error())
			}
			if oErr != nil {
				return diverge(i, "ftl", "oracle ftl: "+oErr.Error())
			}
		}

		if spec.IdleEvery > 0 && (i+1)%spec.IdleEvery == 0 {
			budget := nextBudget()
			sched.ScheduleGC(now+1, budget)
			// The greedy side has no scheduler: a budgeted slice must be a
			// strict no-op there (the disabled contract).
			if n := greedy.ScheduleGC(now+1, budget); n != 0 {
				return diverge(i, "sched", fmt.Sprintf(
					"ScheduleGC on a scheduler-less FTL collected %d victims", n))
			}
			// Mid-job state must satisfy the full invariant suite: the
			// parked victim stays off the free list and keeps legal flags.
			if err := sched.CheckInvariants(); err != nil {
				return diverge(i, "invariant", "scheduled ftl mid-job: "+err.Error())
			}
			if d := diffGCSchedMapped(greedy, sched, ora); d != "" {
				return diverge(i, "mapping", d)
			}
		}

		if (i+1)%membershipEvery == 0 {
			if d := checkGCSchedState(greedy, sched, ora); d != "" {
				return diverge(i, "invariant", d)
			}
			if d := diffGCSchedMapped(greedy, sched, ora); d != "" {
				return diverge(i, "mapping", d)
			}
		}
	}

	// Drain any job still parked mid-victim; completion must not change
	// the logical state either. A full-budget slice always finishes at
	// least one step, but it may also START a fresh idle-tier victim with
	// leftover budget and preempt it — so the bound is the total
	// reclaimable work on the device (every block fully collected), not
	// one victim's step count.
	maxSlices := params.Planes() * params.BlocksPerPlane * (params.PagesPerBlock + 2)
	for drained := 0; sched.GCJobInFlight(); drained++ {
		if drained > maxSlices {
			return diverge(-1, "sched", "GC job refuses to drain")
		}
		now++
		sched.ScheduleGC(now, gcschedMaxBudgetNs)
	}
	if d := checkGCSchedState(greedy, sched, ora); d != "" {
		return diverge(-1, "invariant", d)
	}
	if d := diffGCSchedMapped(greedy, sched, ora); d != "" {
		return diverge(-1, "mapping", d)
	}
	return nil
}

// diffGCSchedMapped compares the live logical sets of the triple. The
// oracle's stamp bookkeeping (checked by its invariant suite) extends the
// mapping agreement to content: a page all three agree is live holds the
// bytes its last write put there.
func diffGCSchedMapped(greedy, sched *ftl.FTL, ora *FTL) string {
	for lpn := int64(0); lpn < ora.LogicalPages(); lpn++ {
		g, s, o := greedy.Mapped(lpn), sched.Mapped(lpn), ora.Mapped(lpn)
		if g != s || s != o {
			return fmt.Sprintf("lpn %d: greedy mapped=%v, scheduled mapped=%v, oracle mapped=%v", lpn, g, s, o)
		}
	}
	return ""
}

// checkGCSchedState runs all three invariant suites.
func checkGCSchedState(greedy, sched *ftl.FTL, ora *FTL) string {
	if err := greedy.CheckInvariants(); err != nil {
		return "greedy ftl: " + err.Error()
	}
	if err := sched.CheckInvariants(); err != nil {
		return "scheduled ftl: " + err.Error()
	}
	if err := ora.CheckInvariants(); err != nil {
		return "oracle ftl: " + err.Error()
	}
	return ""
}

// GenerateGCSched derives a deterministic randomized ModeGCSched workload.
// The stream is write-heavy (trim-mix adds trims), stays inside the tiny
// FTL's logical space, and always probes idle slices — the probes are the
// point of the mode.
func GenerateGCSched(seed int64, flavor string, n int) Spec {
	rng := rand.New(rand.NewSource(seed))
	s := Spec{
		Seed:          seed,
		Mode:          ModeGCSched,
		Policy:        flavor,
		CapacityPages: 16, // unused by the mode; satisfies spec validation
		PagesPerBlock: 4,
		IdleEvery:     5 + rng.Intn(20),
	}
	writePct := 100
	if flavor == "trim-mix" {
		writePct = 70 + rng.Intn(21) // 70..90 percent writes, rest trims
	}
	// The live set stays well under the logical space (as the cache bounds
	// it to in classic mode): block-bound batches skew pages onto single
	// planes, and a near-full naive FTL can wedge on per-plane imbalance
	// the real allocator's cross-plane fallback would absorb.
	lpnRange := int64(64 - maxGenPages)
	now := int64(0)
	s.Requests = make([]cache.Request, 0, n)
	for i := 0; i < n; i++ {
		now += 1 + int64(rng.Intn(5000))
		pages := 1 + rng.Intn(maxGenPages)
		s.Requests = append(s.Requests, cache.Request{
			Time:  now,
			Write: rng.Intn(100) < writePct,
			LPN:   rng.Int63n(lpnRange - int64(pages) + 1),
			Pages: pages,
		})
	}
	return s
}
