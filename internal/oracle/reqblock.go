package oracle

import (
	"fmt"
	"sort"

	"repro/internal/cache"
)

// ReqBlockConfig carries the Req-block tunables, mirroring the fast
// implementation's configuration surface (δ, downgraded merging, the
// recency term of Eq. 1) plus an optional seeded bug for the mutation
// smoke test.
type ReqBlockConfig struct {
	Delta    int
	Merge    bool
	Recency  bool
	Mutation Mutation
}

// rbBlock is one request block: the pages of one write request (or the
// split pages one request hit out of large blocks). Pages are kept
// head-first — index 0 is the most recently added page — matching the
// intrusive page list of the fast implementation, whose head page labels
// whole-block transitions.
type rbBlock struct {
	reqID      uint64
	pages      []int64
	accessCnt  int64
	insertTime int64
	// origin links a split block back to the IRL block it was divided
	// from; downgraded merging re-unites the two at eviction if the
	// origin still sits in IRL.
	origin *rbBlock
}

// headLPN returns the page-list head (most recently added page).
func (b *rbBlock) headLPN() int64 { return b.pages[0] }

// removePage deletes one page from the block, keeping order.
func (b *rbBlock) removePage(lpn int64) {
	for i, p := range b.pages {
		if p == lpn {
			b.pages = append(b.pages[:i], b.pages[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("oracle: removePage(%d) not in block", lpn))
}

// ReqBlock is the paper-literal Req-block write buffer: Algorithm 1 with
// plain slices and linear scans. Lists hold their head at index 0.
type ReqBlock struct {
	capacity int
	cfg      ReqBlockConfig
	irl      []*rbBlock
	srl      []*rbBlock
	drl      []*rbBlock
	nextReq  uint64
	sink     cache.TransitionSink
}

var listNames = [3]string{"IRL", "SRL", "DRL"}

// NewReqBlock builds the oracle with an explicit configuration.
func NewReqBlock(capacityPages int, cfg ReqBlockConfig) *ReqBlock {
	cache.ValidateCapacity(capacityPages)
	if cfg.Delta < 1 {
		panic(fmt.Sprintf("oracle: delta %d, need >= 1", cfg.Delta))
	}
	return &ReqBlock{capacity: capacityPages, cfg: cfg}
}

// Name implements Policy.
func (c *ReqBlock) Name() string { return "Req-block" }

// SetTransitionSink mirrors cache.TransitionSource: the sink receives one
// annotation per list transition, in the same order and with the same
// fields as the fast implementation emits them.
func (c *ReqBlock) SetTransitionSink(s cache.TransitionSink) { c.sink = s }

// lists returns the three lists in IRL, SRL, DRL order.
func (c *ReqBlock) lists() [3]*[]*rbBlock {
	return [3]*[]*rbBlock{&c.irl, &c.srl, &c.drl}
}

// Len implements Policy by recounting every list.
func (c *ReqBlock) Len() int {
	n := 0
	for _, l := range c.lists() {
		for _, b := range *l {
			n += len(b.pages)
		}
	}
	return n
}

// NodeCount implements Policy.
func (c *ReqBlock) NodeCount() int {
	return len(c.irl) + len(c.srl) + len(c.drl)
}

// find returns the block holding a page and its list index (0 IRL, 1 SRL,
// 2 DRL), or (nil, -1).
func (c *ReqBlock) find(lpn int64) (*rbBlock, int) {
	for li, l := range c.lists() {
		for _, b := range *l {
			for _, p := range b.pages {
				if p == lpn {
					return b, li
				}
			}
		}
	}
	return nil, -1
}

// WhereIs returns "IRL", "SRL", "DRL" or "" for a page, diffed against
// the fast implementation's WhereIs.
func (c *ReqBlock) WhereIs(lpn int64) string {
	if _, li := c.find(lpn); li >= 0 {
		return listNames[li]
	}
	return ""
}

// ListPages returns the buffered pages per list, diffed against the fast
// implementation's occupancy gauges.
func (c *ReqBlock) ListPages() map[string]int {
	out := make(map[string]int, 3)
	for li, l := range c.lists() {
		n := 0
		for _, b := range *l {
			n += len(b.pages)
		}
		out[listNames[li]] = n
	}
	return out
}

// removeBlock deletes a block from a list.
func removeBlock(l []*rbBlock, b *rbBlock) []*rbBlock {
	for i, x := range l {
		if x == b {
			return append(l[:i], l[i+1:]...)
		}
	}
	panic("oracle: removeBlock: block not in list")
}

// pushHead prepends a block.
func pushHead(l []*rbBlock, b *rbBlock) []*rbBlock {
	return append([]*rbBlock{b}, l...)
}

// emit sends one transition annotation when a sink is attached.
func (c *ReqBlock) emit(lpn int64, pages int, from, to string) {
	if c.sink != nil {
		c.sink.OnListTransition(cache.ListTransition{LPN: lpn, Pages: pages, From: from, To: to})
	}
}

// small applies the δ test (Algorithm 1 line 20), honoring the seeded
// off-by-one mutation.
func (c *ReqBlock) small(b *rbBlock) bool {
	if c.cfg.Mutation == MutDeltaOffByOne {
		return len(b.pages) < c.cfg.Delta
	}
	return len(b.pages) <= c.cfg.Delta
}

// freq computes Eq. 1: AccessCnt / (PageNum × (Tcur − Tinsert)), with the
// age clamped to one nanosecond and optionally disabled (ablation),
// exactly as the fast implementation computes it — identical float
// expression order, so tie behavior matches bit for bit.
func (c *ReqBlock) freq(b *rbBlock, now int64) float64 {
	age := now - b.insertTime
	if !c.cfg.Recency {
		age = 1
	} else if age < 1 {
		age = 1
	}
	if c.cfg.Mutation == MutFreqDenominator {
		return float64(b.accessCnt) / float64(age)
	}
	return float64(b.accessCnt) / (float64(len(b.pages)) * float64(age))
}

// Access implements Policy, following Algorithm 1's main routine page by
// page: hits sift blocks (small → SRL head, large → split into the DRL),
// missed write pages join the request's IRL head block, evicting the
// minimum-Freq tail block whenever the buffer is full.
func (c *ReqBlock) Access(req cache.Request) Result {
	cache.CheckRequest(req)
	c.nextReq++
	reqID := c.nextReq
	var res Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		if blk, li := c.find(lpn); blk != nil {
			res.Hits++
			c.onHit(blk, li, lpn, reqID, req.Time)
		} else {
			res.Misses++
			if req.Write {
				for c.Len() >= c.capacity {
					res.Evictions = append(res.Evictions, c.evict(req.Time))
				}
				c.insertNew(lpn, reqID, req.Time)
				res.Inserted++
			} else {
				res.ReadMisses = append(res.ReadMisses, lpn)
			}
		}
		lpn++
	}
	return res
}

// onHit applies Algorithm 1 lines 19-28 to one hit page.
func (c *ReqBlock) onHit(blk *rbBlock, li int, lpn int64, reqID uint64, now int64) {
	blk.accessCnt++
	if c.small(blk) {
		if c.cfg.Mutation == MutSkipSRLPromotion {
			return
		}
		// Small block: upgrade to the SRL head. Moving within the SRL
		// reorders silently; crossing lists is announced.
		if li == 1 {
			c.srl = removeBlock(c.srl, blk)
			c.srl = pushHead(c.srl, blk)
			return
		}
		c.emit(blk.headLPN(), len(blk.pages), listNames[li], "SRL")
		if li == 0 {
			c.irl = removeBlock(c.irl, blk)
		} else {
			c.drl = removeBlock(c.drl, blk)
		}
		c.srl = pushHead(c.srl, blk)
		return
	}
	// Large block: divide. The hit page moves into the DRL head block of
	// the current request, created on first use with an origin link back
	// to the IRL block the data descends from.
	var dst *rbBlock
	if len(c.drl) > 0 && c.drl[0].reqID == reqID {
		dst = c.drl[0]
	} else {
		origin := blk
		if li != 0 {
			origin = blk.origin
		}
		dst = &rbBlock{reqID: reqID, accessCnt: 1, insertTime: now, origin: origin}
		c.drl = pushHead(c.drl, dst)
	}
	if dst == blk {
		return // the page already sits in the current request's DRL block
	}
	c.emit(lpn, 1, listNames[li], "DRL")
	blk.removePage(lpn)
	dst.pages = append([]int64{lpn}, dst.pages...)
	if len(blk.pages) == 0 {
		switch li {
		case 0:
			c.irl = removeBlock(c.irl, blk)
		case 1:
			c.srl = removeBlock(c.srl, blk)
		default:
			c.drl = removeBlock(c.drl, blk)
		}
	}
}

// insertNew adds a missed write page to the current request's IRL head
// block, creating the block when the head belongs to another request.
func (c *ReqBlock) insertNew(lpn int64, reqID uint64, now int64) {
	var blk *rbBlock
	if len(c.irl) > 0 && c.irl[0].reqID == reqID {
		blk = c.irl[0]
	} else {
		blk = &rbBlock{reqID: reqID, accessCnt: 1, insertTime: now}
		c.irl = pushHead(c.irl, blk)
	}
	blk.pages = append([]int64{lpn}, blk.pages...)
}

// evict implements get_victim plus the flush: the minimum-Freq tail block
// across the three lists is evicted; a split victim is first merged with
// its original block if that block still sits in IRL (downgraded
// merging), and the union is flushed as one sorted batch.
func (c *ReqBlock) evict(now int64) Eviction {
	// Candidate order matches the fast implementation: IRL, DRL, SRL
	// tails, strict less-than, so ties keep the earlier candidate.
	type cand struct {
		blk *rbBlock
		li  int
	}
	var cands []cand
	if n := len(c.irl); n > 0 {
		cands = append(cands, cand{c.irl[n-1], 0})
	}
	if n := len(c.drl); n > 0 {
		cands = append(cands, cand{c.drl[n-1], 2})
	}
	if n := len(c.srl); n > 0 {
		cands = append(cands, cand{c.srl[n-1], 1})
	}
	if len(cands) == 0 {
		panic("oracle: evict on empty cache")
	}
	victim := cands[0]
	best := c.freq(victim.blk, now)
	for _, cd := range cands[1:] {
		if f := c.freq(cd.blk, now); f < best {
			victim, best = cd, f
		}
	}

	out := append([]int64(nil), victim.blk.pages...)
	switch victim.li {
	case 0:
		c.irl = removeBlock(c.irl, victim.blk)
	case 1:
		c.srl = removeBlock(c.srl, victim.blk)
	default:
		c.drl = removeBlock(c.drl, victim.blk)
	}
	if c.cfg.Merge && victim.li == 2 && victim.blk.origin != nil {
		for _, b := range c.irl {
			if b == victim.blk.origin {
				c.emit(b.headLPN(), len(b.pages), "IRL", "merge")
				out = append(out, b.pages...)
				c.irl = removeBlock(c.irl, b)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return Eviction{LPNs: out}
}

// EvictIdle implements Policy with the fast implementation's gating: only
// when the buffer is more than half full.
func (c *ReqBlock) EvictIdle(now int64) (Eviction, bool) {
	if c.Len() <= c.capacity/2 {
		return Eviction{}, false
	}
	return c.evict(now), true
}

// CheckInvariants validates the oracle's own bookkeeping: no page in two
// blocks, no empty block on any list, occupancy within capacity.
func (c *ReqBlock) CheckInvariants() error {
	seen := make(map[int64]bool)
	total := 0
	for li, l := range c.lists() {
		for _, b := range *l {
			if len(b.pages) == 0 {
				return fmt.Errorf("oracle: empty block left in %s", listNames[li])
			}
			for _, p := range b.pages {
				if seen[p] {
					return fmt.Errorf("oracle: lpn %d buffered twice", p)
				}
				seen[p] = true
				total++
			}
		}
	}
	if total > c.capacity {
		return fmt.Errorf("oracle: %d pages buffered, capacity %d", total, c.capacity)
	}
	return nil
}
