// Package oracle holds paper-literal, clarity-over-speed reference
// implementations of the cache policies and the FTL, plus a differential
// runner that replays the same randomized workload through the optimized
// implementations (internal/cache, internal/core, internal/ftl) and these
// oracles in lockstep, diffing every externally visible decision.
//
// Every golden test in this repository was generated from the optimized
// code itself, so a shared misreading of the paper would survive them. The
// oracles are a second, independent derivation of the same spec: plain
// slices, linear scans, no pooling, no shared code with the fast paths
// beyond the request/transition types in internal/cache. When both
// derivations agree on hits, eviction victim sets, destage order, list
// membership and the final FTL mapping across randomized campaigns, a
// shared misreading becomes much less likely — the discipline behind
// differential validation of storage-policy simulators (see
// docs/TESTING.md for the workflow).
//
// The package deliberately trades speed for obviousness: everything is
// O(cache size) per page where the fast implementations are O(1). Oracles
// are for tests and cmd/ssdcheck campaigns, never for the replay hot path.
package oracle

import "repro/internal/cache"

// Eviction is one victim batch flushed by an oracle policy, mirroring
// cache.Eviction's externally visible fields.
type Eviction struct {
	// LPNs are the flushed pages, in the same canonical order the fast
	// implementation produces (ascending for batch policies, single page
	// for LRU).
	LPNs []int64
	// BlockBound marks batches that must land on one physical block
	// (BPLRU, FAB).
	BlockBound bool
	// PaddingReads are the flash reads a padded BPLRU flush performs
	// first; nil when padding is off or nothing was missing.
	PaddingReads []int64
}

// Result mirrors the externally visible fields of cache.Result for one
// request.
type Result struct {
	Hits, Misses, Inserted int
	ReadMisses             []int64
	Evictions              []Eviction
}

// Policy is the oracle-side policy contract: the same decision surface as
// cache.Policy plus a self-check hook. All four paper policies implement
// it.
type Policy interface {
	// Name identifies the policy, matching the fast implementation.
	Name() string
	// Access processes one request and returns its effects.
	Access(req cache.Request) Result
	// EvictIdle nominates one idle/destage victim batch, with the same
	// more-than-half-full gating as the fast implementations.
	EvictIdle(now int64) (Eviction, bool)
	// Len returns the buffered page count.
	Len() int
	// NodeCount returns the list-node (block) count, diffed against the
	// fast implementation's NodeCount.
	NodeCount() int
	// CheckInvariants validates the oracle's own bookkeeping: occupancy
	// within capacity, no page buffered twice.
	CheckInvariants() error
}

// Mutation selects a deliberately seeded bug in the Req-block oracle. The
// mutation smoke test (and `ssdcheck -mutation`) proves the differential
// harness has teeth: each mutant must be caught by the runner and shrunk
// to a tiny repro. An empty mutation is the correct oracle.
type Mutation string

const (
	// MutNone is the correct oracle.
	MutNone Mutation = ""
	// MutDeltaOffByOne flips the small-block test at the δ boundary from
	// PageNum ≤ δ to PageNum < δ: blocks of exactly δ pages are wrongly
	// treated as large and split on hits.
	MutDeltaOffByOne Mutation = "delta-off-by-one"
	// MutFreqDenominator drops the PageNum factor from Eq. 1, scoring
	// victims by AccessCnt / (Tcur − Tinsert) instead of
	// AccessCnt / (PageNum × (Tcur − Tinsert)).
	MutFreqDenominator Mutation = "freq-denominator"
	// MutSkipSRLPromotion never promotes hit small blocks to the SRL
	// head; they keep their position (and list) unchanged.
	MutSkipSRLPromotion Mutation = "skip-srl-promotion"
)

// Mutations lists the seeded bugs the mutation smoke test must catch.
var Mutations = []Mutation{MutDeltaOffByOne, MutFreqDenominator, MutSkipSRLPromotion}
