package oracle

import (
	"fmt"
	"testing"

	"repro/internal/cache"
)

// Metamorphic properties: transformations of a workload with a provable
// effect on the output. Unlike the differential tests they need no second
// implementation — the fast implementation is checked against itself
// under the transformation, so a bug shared by oracle and fast code can
// still surface here.

// fastTrace replays a spec's requests through the fast implementation
// only and records the decision stream with all slices copied.
type fastTrace struct {
	hits, misses, inserted int
	evictions              [][]int64 // one sorted-or-canonical batch per eviction
	dirtyEvicted           int       // pages flushed from cache (padding excluded)
}

func runFast(t *testing.T, spec Spec) fastTrace {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	p := buildPair(&spec)
	var out fastTrace
	for _, req := range spec.Requests {
		res := p.fast.Access(req)
		out.hits += res.Hits
		out.misses += res.Misses
		out.inserted += res.Inserted
		for _, ev := range res.Evictions {
			out.evictions = append(out.evictions, append([]int64(nil), ev.LPNs...))
			out.dirtyEvicted += len(ev.LPNs) - len(ev.PaddingReads)
		}
	}
	return out
}

func metamorphicSpecs(seed int64, n int) []Spec {
	reqs := Generate(seed, "", n).Requests // one shared request stream
	mk := func(policy string, padding bool) Spec {
		return Spec{
			Policy: policy, CapacityPages: 24, Delta: 4, Merge: true, Recency: true,
			PagesPerBlock: 4, Padding: padding, Requests: reqs,
		}
	}
	return []Spec{
		mk("req-block", false),
		mk("lru", false),
		mk("bplru", false),
		mk("bplru", true),
		mk("fab", false),
	}
}

// TestMetamorphicRelabeling: adding a constant block-aligned offset to
// every LPN is a pure renaming — the hit/miss/insert stream must be
// identical and every eviction batch must be the original batch shifted
// by the same offset. Block alignment matters: BPLRU and FAB group by
// lpn/PagesPerBlock and BPLRU's LRU compensation looks at lpn%PagesPerBlock,
// both invariant only under multiples of the block size.
func TestMetamorphicRelabeling(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, spec := range metamorphicSpecs(seed, 120) {
			const shift = 3 * 4 // 3 blocks of PagesPerBlock=4
			shifted := spec
			shifted.Requests = append([]cache.Request(nil), spec.Requests...)
			for i := range shifted.Requests {
				shifted.Requests[i].LPN += shift
			}
			base := runFast(t, spec)
			moved := runFast(t, shifted)
			name := fmt.Sprintf("seed %d policy %s padding=%v", seed, spec.Policy, spec.Padding)
			if base.hits != moved.hits || base.misses != moved.misses || base.inserted != moved.inserted {
				t.Fatalf("%s: relabeling changed decisions: %d/%d/%d vs %d/%d/%d", name,
					base.hits, base.misses, base.inserted, moved.hits, moved.misses, moved.inserted)
			}
			if len(base.evictions) != len(moved.evictions) {
				t.Fatalf("%s: relabeling changed eviction count: %d vs %d", name,
					len(base.evictions), len(moved.evictions))
			}
			for bi := range base.evictions {
				if len(base.evictions[bi]) != len(moved.evictions[bi]) {
					t.Fatalf("%s: eviction %d size differs", name, bi)
				}
				for pi := range base.evictions[bi] {
					if base.evictions[bi][pi]+shift != moved.evictions[bi][pi] {
						t.Fatalf("%s: eviction %d page %d: %d vs %d (want +%d)", name, bi, pi,
							base.evictions[bi][pi], moved.evictions[bi][pi], shift)
					}
				}
			}
		}
	}
}

// TestMetamorphicReadOnlyTail: appending read requests to a workload can
// never change what was already flushed, and reads alone never flush —
// so the dirty-eviction count must be exactly the original's.
func TestMetamorphicReadOnlyTail(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, spec := range metamorphicSpecs(seed, 120) {
			extended := spec
			extended.Requests = append([]cache.Request(nil), spec.Requests...)
			last := spec.Requests[len(spec.Requests)-1]
			// Duplicate the final quarter of the workload as reads.
			for _, r := range spec.Requests[len(spec.Requests)*3/4:] {
				last.Time++
				extended.Requests = append(extended.Requests, cache.Request{
					Time: last.Time, Write: false, LPN: r.LPN, Pages: r.Pages,
				})
			}
			base := runFast(t, spec)
			ext := runFast(t, extended)
			name := fmt.Sprintf("seed %d policy %s padding=%v", seed, spec.Policy, spec.Padding)
			if base.dirtyEvicted != ext.dirtyEvicted {
				t.Fatalf("%s: read-only tail changed dirty evictions: %d vs %d", name,
					base.dirtyEvicted, ext.dirtyEvicted)
			}
			if len(base.evictions) != len(ext.evictions) {
				t.Fatalf("%s: read-only tail changed eviction batches: %d vs %d", name,
					len(base.evictions), len(ext.evictions))
			}
		}
	}
}

// TestMetamorphicCapacityMonotonicity: growing the buffer 16→32→64 pages
// must not lose hits for LRU — the classic stack property: an LRU cache's
// contents are always a prefix of a larger LRU cache's. The block- and
// request-granularity policies have no stack property (whole-block
// eviction can flush a page a smaller cache would have kept — the
// block-level analog of Belady's anomaly), so for them the check is a
// spot check: monotonicity must hold for the clear majority of seeds,
// catastrophic inversions fail.
func TestMetamorphicCapacityMonotonicity(t *testing.T) {
	type hitCounts struct{ c16, c32, c64 int }
	count := func(spec Spec, capacity int) int {
		s := spec
		s.CapacityPages = capacity
		return runFast(t, s).hits
	}
	const seeds = 8
	for _, tmpl := range metamorphicSpecs(0, 0) {
		tmpl := tmpl
		violations := 0
		for seed := int64(0); seed < seeds; seed++ {
			spec := tmpl
			spec.Requests = Generate(seed, "", 160).Requests
			h := hitCounts{count(spec, 16), count(spec, 32), count(spec, 64)}
			if tmpl.Policy == "lru" {
				if h.c16 > h.c32 || h.c32 > h.c64 {
					t.Fatalf("LRU stack property violated at seed %d: hits %d/%d/%d", seed, h.c16, h.c32, h.c64)
				}
				continue
			}
			if h.c16 > h.c32 || h.c32 > h.c64 {
				violations++
				t.Logf("policy %s padding=%v seed %d: non-monotonic hits %d/%d/%d (allowed exception)",
					tmpl.Policy, tmpl.Padding, seed, h.c16, h.c32, h.c64)
			}
		}
		if violations > seeds/4 {
			t.Fatalf("policy %s padding=%v: %d of %d seeds non-monotonic in capacity — beyond the documented exception rate",
				tmpl.Policy, tmpl.Padding, violations, seeds)
		}
	}
}
