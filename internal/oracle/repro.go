package oracle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Repro persistence: a minimized failing Spec is saved as pretty-printed
// JSON under a corpus directory (testdata/repros in this repo). Ordinary
// `go test` replays every file there through Run, so once a divergence is
// minimized and committed it is a permanent regression test.

// SaveRepro writes a spec into dir, creating it if needed. The filename
// is derived from the policy, seed and request count; an existing file
// with the same name is never overwritten — a numeric suffix is added.
// It returns the path written.
func SaveRepro(dir string, spec Spec) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	base := fmt.Sprintf("%s-seed%d-%dreq", spec.Policy, spec.Seed, len(spec.Requests))
	if spec.Mode != "" {
		base = spec.Mode + "-" + base
	}
	if spec.Mutation != MutNone {
		base += "-" + string(spec.Mutation)
	}
	for n := 0; ; n++ {
		name := base + ".json"
		if n > 0 {
			name = fmt.Sprintf("%s-%d.json", base, n)
		}
		path := filepath.Join(dir, name)
		if _, err := os.Stat(path); err == nil {
			continue
		}
		return path, os.WriteFile(path, data, 0o644)
	}
}

// LoadRepro reads one saved spec.
func LoadRepro(path string) (Spec, error) {
	var spec Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("%s: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// LoadRepros reads every *.json spec in dir, sorted by name. A missing
// directory is an empty corpus, not an error.
func LoadRepros(dir string) (map[string]Spec, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]Spec)
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		spec, err := LoadRepro(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out[name] = spec
	}
	return out, nil
}
