package oracle

import "testing"

// TestGCSchedCampaign sweeps the gcsched differential across 64 seeds and
// all four stream flavors: scheduled GC must preserve the live logical
// set and every invariant (including mid-job states) against both the
// greedy fast FTL and the stamped oracle.
func TestGCSchedCampaign(t *testing.T) {
	res := RunCampaign(CampaignConfig{
		Seeds:    64,
		Mode:     ModeGCSched,
		Requests: 192,
		Logf:     t.Logf,
	})
	if res.Failed() {
		t.Fatalf("%s", res.Summary())
	}
	if want := 64 * len(GCSchedFlavors); res.Runs != want {
		t.Fatalf("campaign ran %d specs, want %d", res.Runs, want)
	}
}

// TestGCSchedSpecValidation pins the ModeGCSched validation arm.
func TestGCSchedSpecValidation(t *testing.T) {
	s := GenerateGCSched(1, "striped", 16)
	if err := s.Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	s.Policy = "lru"
	if err := s.Validate(); err == nil {
		t.Fatal("non-flavor policy accepted in gcsched mode")
	}
	s.Policy = "mixed"
	s.Mutation = MutDeltaOffByOne
	if err := s.Validate(); err == nil {
		t.Fatal("mutation accepted in gcsched mode")
	}
}

// TestGCSchedGenerateDeterministic pins that the same seed yields the
// same spec — the property the repro corpus rests on.
func TestGCSchedGenerateDeterministic(t *testing.T) {
	a := GenerateGCSched(7, "trim-mix", 64)
	b := GenerateGCSched(7, "trim-mix", 64)
	if len(a.Requests) != len(b.Requests) || a.IdleEvery != b.IdleEvery {
		t.Fatal("same seed produced different specs")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between identical generations", i)
		}
	}
}

// TestGCSchedShrink pins that the ddmin shrinker accepts gcsched specs:
// shrinking a passing spec is a no-op that must not panic or corrupt it.
func TestGCSchedShrink(t *testing.T) {
	spec := GenerateGCSched(3, "mixed", 96)
	if d := Run(spec); d != nil {
		t.Fatalf("seed spec unexpectedly diverges: %v", d)
	}
	// Corrupt nothing; Shrink on a passing spec returns no divergence.
	if _, sd := Shrink(spec); sd != nil {
		t.Fatalf("shrink invented a divergence: %v", sd)
	}
}
