package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestOursFindsModuleGoroutine pins the stack filter: a goroutine parked
// inside this module shows up, and disappears once released.
func TestOursFindsModuleGoroutine(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go park(release, done)
	defer func() { close(release); <-done }()

	deadline := time.Now().Add(2 * time.Second)
	for {
		g := ours()
		if containsPark(g) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("parked module goroutine never seen:\n%s", Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCheckPassesWhenClean runs the guard on a test that leaks nothing.
func TestCheckPassesWhenClean(t *testing.T) {
	Check(t)
	release := make(chan struct{})
	done := make(chan struct{})
	go park(release, done)
	close(release)
	<-done
}

func park(release, done chan struct{}) {
	<-release
	close(done)
}

func containsPark(gs []string) bool {
	for _, g := range gs {
		if strings.Contains(g, "leakcheck.park") {
			return true
		}
	}
	return false
}
