// Package leakcheck is a dependency-free goroutine-leak assertion for
// tests, in the spirit of go.uber.org/goleak: snapshot the goroutines that
// belong to this module at test start, and fail the test if any of them
// (or new ones) are still alive at cleanup after a grace period.
//
// The guard keys on stack frames mentioning the module path, so runtime,
// testing, and net/http background goroutines never count. It is meant to
// wrap the concurrent machinery in this repo — the sharded replay's
// splitter/relay/merger pipeline and the serve package's shard workers —
// and runs under -race in `make check` (see the race-sharded target).
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix identifies goroutines owned by this repository: any frame
// in the goroutine's stack that begins with "repro/" marks it ours.
const modulePrefix = "repro/"

// Check registers a cleanup that fails t if goroutines created inside this
// module outlive the test. Call it first in the test; goroutines already
// running at that point (e.g. a shared telemetry server started by an
// earlier test) are grandfathered in via the baseline count.
func Check(t testing.TB) {
	t.Helper()
	baseline := ours()
	t.Cleanup(func() {
		// Workers and mergers unwind asynchronously after channels close;
		// give them a grace period before declaring a leak.
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = ours()
			if len(leaked) <= len(baseline) || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if len(leaked) > len(baseline) {
			t.Errorf("leakcheck: %d module goroutines leaked (baseline %d):\n%s",
				len(leaked)-len(baseline), len(baseline), strings.Join(leaked, "\n---\n"))
		}
	})
}

// ours returns the stacks of live goroutines with at least one frame in
// this module, excluding the caller's own goroutine.
func ours() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // first entry is the calling goroutine
		}
		if !strings.Contains(g, modulePrefix) {
			continue
		}
		// Parked-forever helpers owned by the runtime/testing plumbing can
		// mention module frames via created-by lines only after exit; keep
		// the filter simple — a module frame anywhere counts.
		out = append(out, g)
	}
	return out
}

// Snapshot returns a human-readable dump of the module's goroutines, for
// debugging a failed Check.
func Snapshot() string {
	g := ours()
	return fmt.Sprintf("%d module goroutines:\n%s", len(g), strings.Join(g, "\n---\n"))
}
