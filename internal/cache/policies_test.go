package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allFactories returns every baseline policy at a given capacity.
func allFactories() []Factory {
	return []Factory{
		{Name: "LRU", New: func(c int) Policy { return NewLRU(c) }},
		{Name: "FIFO", New: func(c int) Policy { return NewFIFO(c) }},
		{Name: "LFU", New: func(c int) Policy { return NewLFU(c) }},
		{Name: "CFLRU", New: func(c int) Policy { return NewCFLRU(c) }},
		{Name: "CFLRU-wo", New: func(c int) Policy { return NewCFLRUWriteOnly(c) }},
		{Name: "FAB", New: func(c int) Policy { return NewFAB(c, 8) }},
		{Name: "BPLRU", New: func(c int) Policy { return NewBPLRU(c, 8) }},
		{Name: "BPLRU-pad", New: func(c int) Policy { return NewBPLRUWithPadding(c, 8) }},
		{Name: "VBBMS", New: func(c int) Policy { return NewVBBMS(c) }},
		{Name: "PUD-LRU", New: func(c int) Policy { return NewPUDLRU(c, 8) }},
		{Name: "ECR", New: func(c int) Policy { return NewECR(c, 4) }},
	}
}

// TestPoliciesSharedInvariants drives every policy with a random workload
// and checks the universal contracts:
//   - Len() never exceeds CapacityPages().
//   - Hits+Misses == request pages.
//   - Write requests never produce ReadMisses; reads never Insert.
//   - Evicted batches only contain pages that were actually buffered, and
//     an evicted page is no longer counted (model cross-check).
func TestPoliciesSharedInvariants(t *testing.T) {
	for _, f := range allFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				p := f.New(32)
				resident := map[int64]bool{} // model of buffered pages
				now := int64(0)
				for i := 0; i < 400; i++ {
					now += int64(rng.Intn(1000)) + 1
					req := Request{
						Time:  now,
						Write: rng.Intn(100) < 70,
						LPN:   rng.Int63n(256),
						Pages: 1 + rng.Intn(12),
					}
					res := p.Access(req)
					if res.Hits+res.Misses != req.Pages {
						t.Logf("%s: hits %d + misses %d != pages %d", f.Name, res.Hits, res.Misses, req.Pages)
						return false
					}
					if req.Write && len(res.ReadMisses) != 0 {
						t.Logf("%s: write produced read misses", f.Name)
						return false
					}
					if !req.Write && res.Inserted != 0 && f.Name != "CFLRU" {
						t.Logf("%s: read inserted pages", f.Name)
						return false
					}
					for _, ev := range res.Evictions {
						for _, lpn := range ev.LPNs {
							// A legitimate eviction is a page the model saw,
							// a page of the in-flight request (inserted and
							// evicted within this same Access), or a padding
							// page BPLRU reads from flash.
							inFlight := lpn >= req.LPN && lpn < req.LPN+int64(req.Pages)
							if !resident[lpn] && !inFlight && !contains(ev.PaddingReads, lpn) {
								t.Logf("%s: evicted non-resident page %d", f.Name, lpn)
								return false
							}
							delete(resident, lpn)
						}
					}
					// Sync the model with this request's residency changes.
					lpn := req.LPN
					for j := 0; j < req.Pages; j++ {
						if has(p, lpn) {
							resident[lpn] = true
						} else {
							delete(resident, lpn)
						}
						lpn++
					}
					if p.Len() > p.CapacityPages() {
						t.Logf("%s: len %d > capacity %d", f.Name, p.Len(), p.CapacityPages())
						return false
					}
					if p.Len() != len(resident) {
						t.Logf("%s: len %d != model %d at op %d", f.Name, p.Len(), len(resident), i)
						return false
					}
					if p.NodeCount() < 0 || p.NodeBytes() <= 0 {
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// has dispatches to the policy-specific Contains helper.
func has(p Policy, lpn int64) bool {
	switch c := p.(type) {
	case *LRU:
		return c.Contains(lpn)
	case *LFU:
		return c.Contains(lpn)
	case *CFLRU:
		return c.Contains(lpn)
	case *BPLRU:
		return c.Contains(lpn)
	case *VBBMS:
		return c.Contains(lpn)
	case *PUDLRU:
		return c.Contains(lpn)
	case *ECR:
		return c.Contains(lpn)
	case *FAB:
		g, ok := c.groups[lpn/c.pagesPerBlock]
		return ok && g.Value.pages.has(lpn)
	default:
		return false
	}
}

func contains(s []int64, v int64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestPoliciesDeterminism: the same request stream must produce identical
// results on two fresh instances (policies are pure state machines).
func TestPoliciesDeterminism(t *testing.T) {
	for _, f := range allFactories() {
		rng := rand.New(rand.NewSource(42))
		reqs := make([]Request, 300)
		now := int64(0)
		for i := range reqs {
			now += int64(rng.Intn(500)) + 1
			reqs[i] = Request{
				Time:  now,
				Write: rng.Intn(10) < 7,
				LPN:   rng.Int63n(200),
				Pages: 1 + rng.Intn(10),
			}
		}
		a, b := f.New(64), f.New(64)
		for i, req := range reqs {
			ra, rb := a.Access(req), b.Access(req)
			if ra.Hits != rb.Hits || ra.Misses != rb.Misses || len(ra.Evictions) != len(rb.Evictions) {
				t.Fatalf("%s: nondeterministic at request %d", f.Name, i)
			}
			for j := range ra.Evictions {
				ea, eb := ra.Evictions[j], rb.Evictions[j]
				if len(ea.LPNs) != len(eb.LPNs) {
					t.Fatalf("%s: eviction batch sizes differ at request %d", f.Name, i)
				}
				for k := range ea.LPNs {
					if ea.LPNs[k] != eb.LPNs[k] {
						t.Fatalf("%s: eviction contents differ at request %d", f.Name, i)
					}
				}
			}
		}
	}
}
