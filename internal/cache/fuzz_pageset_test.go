package cache

import (
	"sort"
	"testing"
)

// FuzzPageSet drives the block-policy page bitmap against a map model:
// arbitrary interleavings of reset/add/has/len/appendLPNs must behave
// exactly like a set, with enumeration in ascending order. The bitmap
// under-pins every block-granularity eviction transcript, so a missed
// bit or a mis-ordered enumeration would silently corrupt FAB/BPLRU
// victim batches.
func FuzzPageSet(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0x80, 5})
	f.Add([]byte{0x90, 0x01, 0x02, 0x90})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const span = 64 + 7 // straddles a word boundary on purpose
		var s pageSet
		base := int64(128)
		s.reset(base, span)
		model := make(map[int64]bool)
		for _, op := range ops {
			switch {
			case op&0x80 != 0:
				// Re-target the set at a new aligned base; the model resets
				// with it. Exercises word-storage reuse.
				base = int64(op&0x7f) * span
				s.reset(base, span)
				model = make(map[int64]bool)
			default:
				lpn := base + int64(op)%span
				s.add(lpn)
				model[lpn] = true
			}
			// Full cross-check after every op: len, membership, order.
			if s.len() != len(model) {
				t.Fatalf("len = %d, model has %d", s.len(), len(model))
			}
			for off := int64(0); off < span; off++ {
				lpn := base + off
				if s.has(lpn) != model[lpn] {
					t.Fatalf("has(%d) = %v, model says %v", lpn, s.has(lpn), model[lpn])
				}
			}
			got := s.appendLPNs(nil)
			want := make([]int64, 0, len(model))
			for lpn := range model {
				want = append(want, lpn)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("appendLPNs = %v, want %v", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("appendLPNs = %v, want %v (ascending)", got, want)
				}
			}
		}
		// appendLPNs must append, not clobber.
		prefix := []int64{-1, -2}
		out := s.appendLPNs(prefix)
		if out[0] != -1 || out[1] != -2 || len(out) != 2+s.len() {
			t.Fatalf("appendLPNs clobbered its destination: %v", out)
		}
	})
}
