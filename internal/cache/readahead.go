package cache

import "repro/internal/list"

// raEntry is one page of the read cache.
type raEntry struct {
	lpn        int64
	prefetched bool // brought in by readahead, not yet demanded
}

// ReadAhead composes any write-buffer policy with a small sequential
// readahead read cache, in the spirit of the pattern-based prefetching
// work the paper builds on (Li et al., ACM TOS'22, its citation [12]):
// the DRAM holds the write buffer plus a read region that absorbs
// repeated reads and prefetches ahead of detected sequential read
// streams.
//
// Semantics:
//
//   - Writes go to the inner write buffer untouched; any read-cache copy
//     of a written page is dropped (the buffer now holds newer data).
//   - A read hits the write buffer first, then the read cache.
//   - A read miss is fetched from flash and cached in the read region.
//   - A read that continues one of the recently seen streams triggers a
//     background prefetch of the next PrefetchDepth pages; prefetched
//     pages do not block the triggering request.
//
// The read region is managed by LRU and evicts silently (clean data).
type ReadAhead struct {
	inner Policy

	readCap       int
	prefetchDepth int
	pages         map[int64]*list.Node[raEntry]
	order         list.List[raEntry] // head = most recent

	// streams holds the end LPNs of recent read runs for sequential
	// detection.
	streams [4]int64

	// Stats.
	readHits     int64 // hits served by the read region
	prefetchHits int64 // first demand hits on prefetched pages
	prefetched   int64 // pages prefetched
}

// NewReadAhead wraps inner with a read cache of readPages pages that
// prefetches prefetchDepth pages ahead of sequential read streams.
func NewReadAhead(inner Policy, readPages, prefetchDepth int) *ReadAhead {
	ValidateCapacity(readPages)
	if prefetchDepth < 0 {
		prefetchDepth = 0
	}
	return &ReadAhead{
		inner:         inner,
		readCap:       readPages,
		prefetchDepth: prefetchDepth,
		pages:         make(map[int64]*list.Node[raEntry], readPages),
	}
}

// Name implements Policy.
func (c *ReadAhead) Name() string { return c.inner.Name() + "+RA" }

// Len implements Policy: write-buffer pages plus read-region pages.
func (c *ReadAhead) Len() int { return c.inner.Len() + len(c.pages) }

// CapacityPages implements Policy.
func (c *ReadAhead) CapacityPages() int { return c.inner.CapacityPages() + c.readCap }

// NodeBytes implements Policy (the read region uses LRU-sized nodes; the
// dominant metadata is the inner policy's).
func (c *ReadAhead) NodeBytes() int { return c.inner.NodeBytes() }

// NodeCount implements Policy.
func (c *ReadAhead) NodeCount() int { return c.inner.NodeCount() + c.order.Len() }

// ReadRegionLen returns the pages held by the read cache (tests).
func (c *ReadAhead) ReadRegionLen() int { return len(c.pages) }

// VictimScanCost forwards the inner policy's victim-selection work
// counter, 0 when the inner policy does not report one.
func (c *ReadAhead) VictimScanCost() int64 {
	if r, ok := c.inner.(VictimScanReporter); ok {
		return r.VictimScanCost()
	}
	return 0
}

// Stats returns (read-region hits, prefetch first-hits, pages prefetched).
func (c *ReadAhead) Stats() (readHits, prefetchHits, prefetched int64) {
	return c.readHits, c.prefetchHits, c.prefetched
}

// Access implements Policy.
func (c *ReadAhead) Access(req Request) Result {
	CheckRequest(req)
	if req.Write {
		// Drop stale read-cache copies, then delegate.
		lpn := req.LPN
		for i := 0; i < req.Pages; i++ {
			if n, ok := c.pages[lpn]; ok {
				c.order.Remove(n)
				delete(c.pages, lpn)
			}
			lpn++
		}
		return c.inner.Access(req)
	}
	// Read: write buffer first (per page), then the read region.
	res := c.inner.Access(req)
	// The inner policy reported misses for pages it does not hold; the
	// read region may still satisfy them. Filtering in place keeps the
	// slice aliased to the inner policy's buffer (no allocation) while
	// preserving its validity contract: it is consumed before the inner
	// policy's next Access.
	stillMissing := res.ReadMisses[:0]
	for _, lpn := range res.ReadMisses {
		if n, ok := c.pages[lpn]; ok {
			res.Hits++
			res.Misses--
			c.readHits++
			if n.Value.prefetched {
				c.prefetchHits++
				n.Value.prefetched = false
			}
			c.order.MoveToHead(n)
		} else {
			stillMissing = append(stillMissing, lpn)
			c.insertRead(lpn, false)
		}
	}
	if len(stillMissing) == 0 {
		stillMissing = nil
	}
	res.ReadMisses = stillMissing
	// Sequential stream detection and readahead.
	if c.prefetchDepth > 0 {
		if c.continuesStream(req.LPN) {
			next := req.LPN + int64(req.Pages)
			for i := 0; i < c.prefetchDepth; i++ {
				lpn := next + int64(i)
				if _, ok := c.pages[lpn]; ok {
					continue
				}
				res.Prefetches = append(res.Prefetches, lpn)
				c.insertRead(lpn, true)
				c.prefetched++
			}
		}
		c.noteStream(req.LPN + int64(req.Pages))
	}
	return res
}

// insertRead adds a page to the read region, silently evicting its LRU
// tail when full.
func (c *ReadAhead) insertRead(lpn int64, prefetched bool) {
	if n, ok := c.pages[lpn]; ok {
		c.order.MoveToHead(n)
		return
	}
	for len(c.pages) >= c.readCap {
		tail := c.order.PopTail()
		delete(c.pages, tail.Value.lpn)
	}
	n := &list.Node[raEntry]{Value: raEntry{lpn: lpn, prefetched: prefetched}}
	c.order.PushHead(n)
	c.pages[lpn] = n
}

// continuesStream reports whether a read starting at lpn continues one of
// the recent read runs.
func (c *ReadAhead) continuesStream(lpn int64) bool {
	for _, end := range c.streams {
		if end != 0 && lpn == end {
			return true
		}
	}
	return false
}

// noteStream records a read run's end, displacing the oldest slot.
func (c *ReadAhead) noteStream(end int64) {
	copy(c.streams[:], c.streams[1:])
	c.streams[len(c.streams)-1] = end
}

var _ Policy = (*ReadAhead)(nil)
