package cache

import (
	"fmt"
	"strings"
	"testing"
)

// Golden-sequence tests: a fixed request stream drives each policy and the
// exact eviction transcript is compared against a recorded expectation.
// These lock the replacement behavior down to the page — any change to a
// policy's ordering rules shows up as a diff here.

// goldenStream is a small scripted workload with rewrites, reads and a
// stream of one-touch data.
func goldenStream() []Request {
	var reqs []Request
	add := func(wr bool, lpn int64, pages int) {
		reqs = append(reqs, Request{
			Time:  int64(len(reqs)) * 1000,
			Write: wr, LPN: lpn, Pages: pages,
		})
	}
	add(true, 0, 2)   // hot pair
	add(true, 100, 4) // cold batch
	add(true, 0, 2)   // rewrite hot
	add(true, 200, 3) // cold batch
	add(false, 1, 1)  // read hit
	add(true, 300, 4) // overflow begins (capacity 12)
	add(true, 400, 2)
	add(false, 0, 2) // read hot again
	add(true, 500, 4)
	return reqs
}

// transcript renders the eviction history compactly: one token per
// eviction op listing its pages.
func transcript(p Policy, reqs []Request) string {
	var b strings.Builder
	for _, req := range reqs {
		res := p.Access(req)
		for _, ev := range res.Evictions {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			if ev.CleanDrop {
				b.WriteByte('~')
			}
			for i, lpn := range ev.LPNs {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprint(&b, lpn)
			}
		}
	}
	return b.String()
}

func TestGoldenEvictionTranscripts(t *testing.T) {
	cases := []struct {
		name   string
		policy Policy
		want   string
	}{
		// Capacity 12 pages everywhere; block-granularity policies use
		// 4-page blocks.
		{"LRU", NewLRU(12),
			// 0,1 rewritten at t=2 and page 1 read at t=4, so the cold
			// batches go in insertion order: 100..103, then 200..202.
			"100 101 102 103 200 201 202"},
		{"FIFO", NewFIFO(12),
			// Pure insertion order: the hot pair goes first despite reuse.
			"0 1 100 101 102 103 200"},
		{"BPLRU", NewBPLRU(12, 4),
			// Block LRU evicts block 100..103 first; block 300..303 was
			// written fully sequentially, so LRU compensation parks it at
			// the tail and it goes next — before the older blocks.
			"100,101,102,103 300,301,302,303"},
		{"VBBMS", NewVBBMS(12),
			// Every request here is ≤ 4 pages < the 5-page sequential
			// bound, so all traffic shares the 7-page random region and
			// evictions are 3-page-aligned virtual blocks (or fragments).
			"100,101 102,103 200 201,202 0,1 300,301,302"},
		{"PUD-LRU", NewPUDLRU(12, 4),
			// Largest predicted update distance first: the cold 100-block
			// ties the hot 0-block but sits nearer the tail; the hot pair
			// ages out next because it was never updated after t=2.
			"100,101,102,103 0,1 200,201,202"},
		{"LFU", NewLFU(12),
			// The hot pair reaches count 3+; everything else sits in the
			// frequency-1 bucket and leaves LRU-within-bucket.
			"100 101 102 103 200 201 202"},
		{"CFLRU", NewCFLRU(12),
			// All buffered pages are dirty (the reads hit), so CFLRU
			// behaves as plain LRU here.
			"100 101 102 103 200 201 202"},
		{"ECR", NewECR(12, 4),
			// No device view: fallback round-robin over the four channel
			// lists, evicting each channel's LRU page in turn.
			"100 101 102 103 200 201 202"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := transcript(tc.policy, goldenStream())
			if got != tc.want {
				t.Fatalf("eviction transcript changed:\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}

// TestGoldenListOrderLRU locks the internal recency order, not only the
// evictions.
func TestGoldenListOrderLRU(t *testing.T) {
	c := NewLRU(12)
	for _, req := range goldenStream()[:5] {
		c.Access(req)
	}
	var order []int64
	for n := c.order.Head(); n != nil; n = n.Next() {
		order = append(order, n.Value.lpn)
	}
	// Only page 1 was read at t=4, so it alone moved ahead of the t=3
	// batch; page 0 still sits at its t=2 rewrite position.
	want := []int64{1, 202, 201, 200, 0, 103, 102, 101, 100}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
