package cache

import "repro/internal/list"

// lruEntry is the payload of one page node in the LRU/FIFO lists.
type lruEntry struct {
	lpn int64
}

// LRU is the classic page-granularity least-recently-used write buffer: any
// page hit moves the page to the head; eviction flushes the single tail
// page. It is the paper's primary baseline.
type LRU struct {
	capacity  int
	pages     map[int64]*list.Node[lruEntry]
	order     list.List[lruEntry]
	moveOnHit bool // false turns this into FIFO
	name      string
	buf       ResultBuffers
	free      []*list.Node[lruEntry] // recycled nodes; steady state allocates none
}

// NewLRU returns a page-level LRU buffer with the given capacity in pages.
func NewLRU(capacityPages int) *LRU {
	ValidateCapacity(capacityPages)
	return &LRU{
		capacity:  capacityPages,
		pages:     make(map[int64]*list.Node[lruEntry], capacityPages),
		moveOnHit: true,
		name:      "LRU",
	}
}

// NewFIFO returns a page-level first-in-first-out buffer: hits do not
// reorder, eviction flushes the oldest inserted page.
func NewFIFO(capacityPages int) *LRU {
	l := NewLRU(capacityPages)
	l.moveOnHit = false
	l.name = "FIFO"
	return l
}

// Name implements Policy.
func (c *LRU) Name() string { return c.name }

// Len implements Policy.
func (c *LRU) Len() int { return len(c.pages) }

// CapacityPages implements Policy.
func (c *LRU) CapacityPages() int { return c.capacity }

// NodeBytes implements Policy: the paper's Fig. 12 charges 12 bytes per
// page node for LRU-class lists.
func (c *LRU) NodeBytes() int { return 12 }

// NodeCount implements Policy.
func (c *LRU) NodeCount() int { return c.order.Len() }

// Access implements Policy, walking the request page by page exactly like
// the paper's Algorithm 1 main loop.
func (c *LRU) Access(req Request) Result {
	CheckRequest(req)
	c.buf.Reset()
	var res Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		if n, ok := c.pages[lpn]; ok {
			res.Hits++
			if c.moveOnHit {
				c.order.MoveToHead(n)
			}
		} else {
			res.Misses++
			if req.Write {
				for len(c.pages) >= c.capacity {
					c.buf.Evictions = append(c.buf.Evictions, c.evictOne())
				}
				n := c.newNode(lpn)
				c.order.PushHead(n)
				c.pages[lpn] = n
				res.Inserted++
			} else {
				c.buf.Reads = append(c.buf.Reads, lpn)
			}
		}
		lpn++
	}
	c.buf.Finish(&res)
	return res
}

// newNode takes a node from the free stack, or allocates one.
func (c *LRU) newNode(lpn int64) *list.Node[lruEntry] {
	if len(c.free) > 0 {
		n := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		n.Value.lpn = lpn
		return n
	}
	return &list.Node[lruEntry]{Value: lruEntry{lpn: lpn}}
}

// evictOne flushes the tail page and recycles its node.
func (c *LRU) evictOne() Eviction {
	n := c.order.PopTail()
	if n == nil {
		panic("cache: LRU evict on empty list")
	}
	delete(c.pages, n.Value.lpn)
	mark := c.buf.Mark()
	c.buf.LPNs = append(c.buf.LPNs, n.Value.lpn)
	c.free = append(c.free, n)
	return Eviction{LPNs: c.buf.Carve(mark)}
}

// Contains reports whether a page is buffered (tests).
func (c *LRU) Contains(lpn int64) bool {
	_, ok := c.pages[lpn]
	return ok
}

// EvictIdle implements cache.IdleEvictor: during idle time the LRU tail
// page is flushed, as long as the buffer is more than half full.
func (c *LRU) EvictIdle(now int64) (Eviction, bool) {
	if len(c.pages) <= c.capacity/2 {
		return Eviction{}, false
	}
	c.buf.Reset()
	return c.evictOne(), true
}
