package cache

import "repro/internal/list"

// lruEntry is the payload of one page node in the LRU/FIFO lists.
type lruEntry struct {
	lpn int64
}

// LRU is the classic page-granularity least-recently-used write buffer: any
// page hit moves the page to the head; eviction flushes the single tail
// page. It is the paper's primary baseline.
type LRU struct {
	capacity  int
	pages     map[int64]*list.Node[lruEntry]
	order     list.List[lruEntry]
	moveOnHit bool // false turns this into FIFO
	name      string
}

// NewLRU returns a page-level LRU buffer with the given capacity in pages.
func NewLRU(capacityPages int) *LRU {
	ValidateCapacity(capacityPages)
	return &LRU{
		capacity:  capacityPages,
		pages:     make(map[int64]*list.Node[lruEntry], capacityPages),
		moveOnHit: true,
		name:      "LRU",
	}
}

// NewFIFO returns a page-level first-in-first-out buffer: hits do not
// reorder, eviction flushes the oldest inserted page.
func NewFIFO(capacityPages int) *LRU {
	l := NewLRU(capacityPages)
	l.moveOnHit = false
	l.name = "FIFO"
	return l
}

// Name implements Policy.
func (c *LRU) Name() string { return c.name }

// Len implements Policy.
func (c *LRU) Len() int { return len(c.pages) }

// CapacityPages implements Policy.
func (c *LRU) CapacityPages() int { return c.capacity }

// NodeBytes implements Policy: the paper's Fig. 12 charges 12 bytes per
// page node for LRU-class lists.
func (c *LRU) NodeBytes() int { return 12 }

// NodeCount implements Policy.
func (c *LRU) NodeCount() int { return c.order.Len() }

// Access implements Policy, walking the request page by page exactly like
// the paper's Algorithm 1 main loop.
func (c *LRU) Access(req Request) Result {
	CheckRequest(req)
	var res Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		if n, ok := c.pages[lpn]; ok {
			res.Hits++
			if c.moveOnHit {
				c.order.MoveToHead(n)
			}
		} else {
			res.Misses++
			if req.Write {
				for len(c.pages) >= c.capacity {
					res.Evictions = append(res.Evictions, c.evictOne())
				}
				n := &list.Node[lruEntry]{Value: lruEntry{lpn: lpn}}
				c.order.PushHead(n)
				c.pages[lpn] = n
				res.Inserted++
			} else {
				res.ReadMisses = append(res.ReadMisses, lpn)
			}
		}
		lpn++
	}
	return res
}

// evictOne flushes the tail page.
func (c *LRU) evictOne() Eviction {
	n := c.order.PopTail()
	if n == nil {
		panic("cache: LRU evict on empty list")
	}
	delete(c.pages, n.Value.lpn)
	return Eviction{LPNs: []int64{n.Value.lpn}}
}

// Contains reports whether a page is buffered (tests).
func (c *LRU) Contains(lpn int64) bool {
	_, ok := c.pages[lpn]
	return ok
}

// EvictIdle implements cache.IdleEvictor: during idle time the LRU tail
// page is flushed, as long as the buffer is more than half full.
func (c *LRU) EvictIdle(now int64) (Eviction, bool) {
	if len(c.pages) <= c.capacity/2 {
		return Eviction{}, false
	}
	return c.evictOne(), true
}
