package cache

import "testing"

func wr(tm int64, lpn int64, pages int) Request {
	return Request{Time: tm, Write: true, LPN: lpn, Pages: pages}
}

func rd(tm int64, lpn int64, pages int) Request {
	return Request{Time: tm, Write: false, LPN: lpn, Pages: pages}
}

func TestBPLRUEvictIdle(t *testing.T) {
	c := NewBPLRU(8, 4)
	c.Access(wr(0, 0, 3)) // block 0: 3 pages
	c.Access(wr(1, 4, 3)) // block 1: 3 pages, more recent
	if c.Len() != 6 {
		t.Fatalf("Len = %d", c.Len())
	}
	ev, ok := c.EvictIdle(2)
	if !ok || !ev.BlockBound {
		t.Fatalf("EvictIdle = %+v, %v; want a block-bound batch", ev, ok)
	}
	// The least recently written block (block 0) goes first.
	if len(ev.LPNs) != 3 || ev.LPNs[0]/4 != 0 {
		t.Fatalf("victim batch %v, want block 0's pages", ev.LPNs)
	}
	if c.Len() != 3 {
		t.Fatalf("Len after idle eviction = %d", c.Len())
	}
	// At or below half capacity the policy keeps the rest.
	if _, ok := c.EvictIdle(3); ok {
		t.Fatal("EvictIdle flushed a half-empty buffer")
	}
}

func TestFABEvictIdle(t *testing.T) {
	c := NewFAB(8, 4)
	c.Access(wr(0, 0, 2)) // block 0: 2 pages
	c.Access(wr(1, 4, 4)) // block 1: 4 pages — FAB's victim
	ev, ok := c.EvictIdle(2)
	if !ok || !ev.BlockBound {
		t.Fatalf("EvictIdle = %+v, %v", ev, ok)
	}
	if len(ev.LPNs) != 4 || ev.LPNs[0]/4 != 1 {
		t.Fatalf("victim batch %v, want the fullest group (block 1)", ev.LPNs)
	}
	if _, ok := c.EvictIdle(3); ok {
		t.Fatal("EvictIdle flushed a half-empty buffer")
	}
}

func TestCFLRUDirtyPages(t *testing.T) {
	c := NewCFLRU(16)
	c.Access(wr(0, 0, 3)) // 3 dirty
	c.Access(rd(1, 10, 4))
	c.Access(rd(2, 20, 2)) // 6 clean
	if got := c.DirtyPages(); got != 3 {
		t.Fatalf("DirtyPages = %d, want 3", got)
	}
	if c.Len() != 9 {
		t.Fatalf("Len = %d, want 9", c.Len())
	}
	// A write hit on a clean page dirties it.
	c.Access(wr(3, 10, 1))
	if got := c.DirtyPages(); got != 4 {
		t.Fatalf("DirtyPages after write hit = %d, want 4", got)
	}
}
