package cache

import (
	"math/rand"
	"testing"
)

// steadyStateAllocs drives a policy through a warmup phase (filling it past
// capacity so evictions and pooling reach steady state), then measures the
// allocations of one further batch of mixed traffic with AllocsPerRun.
func steadyStateAllocs(t *testing.T, p Policy) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	step := func() {
		now += 1000
		req := Request{
			Time:  now,
			Write: rng.Intn(10) < 7,
			LPN:   int64(rng.Intn(20000)),
			Pages: 1 + rng.Intn(12),
		}
		res := p.Access(req)
		// Consume the result like the replayer does, within its validity
		// window (before the next Access).
		for _, ev := range res.Evictions {
			_ = ev.LPNs[0]
		}
	}
	// Warm up: enough traffic to fill the cache several times over, so the
	// node pools and result buffers reach their high-water marks.
	for i := 0; i < 30000; i++ {
		step()
	}
	return testing.AllocsPerRun(2000, step)
}

// The request path must not allocate once pools and buffers are warm: page
// membership lives in reusable bitmaps or pooled nodes, and eviction
// batches are carved from policy-owned buffers. The budgets below are
// ceilings for incompressible residue (map-bucket churn on the LPN index),
// far below the seed's multiple allocations per request.
func TestLRUSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewLRU(4096)); got > 0.05 {
		t.Fatalf("LRU steady-state allocs/req = %v, want ~0", got)
	}
}

func TestVBBMSSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewVBBMS(4096)); got > 0.05 {
		t.Fatalf("VBBMS steady-state allocs/req = %v, want ~0", got)
	}
}

func TestBPLRUSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewBPLRU(4096, 64)); got > 0.05 {
		t.Fatalf("BPLRU steady-state allocs/req = %v, want ~0", got)
	}
}
