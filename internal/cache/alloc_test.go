package cache

import (
	"math/rand"
	"testing"
)

// steadyStateAllocs drives a policy through a warmup phase (filling it past
// capacity so evictions and pooling reach steady state), then measures the
// allocations of one further batch of mixed traffic with AllocsPerRun.
func steadyStateAllocs(t *testing.T, p Policy) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	step := func() {
		now += 1000
		req := Request{
			Time:  now,
			Write: rng.Intn(10) < 7,
			LPN:   int64(rng.Intn(20000)),
			Pages: 1 + rng.Intn(12),
		}
		res := p.Access(req)
		// Consume the result like the replayer does, within its validity
		// window (before the next Access).
		for _, ev := range res.Evictions {
			_ = ev.LPNs[0]
		}
	}
	// Warm up: enough traffic to fill the cache several times over, so the
	// node pools and result buffers reach their high-water marks.
	for i := 0; i < 30000; i++ {
		step()
	}
	return testing.AllocsPerRun(2000, step)
}

// The request path must not allocate once pools and buffers are warm: page
// membership lives in reusable bitmaps or pooled nodes, and eviction
// batches are carved from policy-owned buffers. The budgets below are
// ceilings for incompressible residue (map-bucket churn on the LPN index),
// far below the seed's multiple allocations per request.
func TestLRUSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewLRU(4096)); got > 0.05 {
		t.Fatalf("LRU steady-state allocs/req = %v, want ~0", got)
	}
}

func TestVBBMSSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewVBBMS(4096)); got > 0.05 {
		t.Fatalf("VBBMS steady-state allocs/req = %v, want ~0", got)
	}
}

func TestBPLRUSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewBPLRU(4096, 64)); got > 0.05 {
		t.Fatalf("BPLRU steady-state allocs/req = %v, want ~0", got)
	}
}

func TestFABSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewFAB(4096, 64)); got > 0.05 {
		t.Fatalf("FAB steady-state allocs/req = %v, want ~0", got)
	}
}

func TestLFUSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewLFU(4096)); got > 0.05 {
		t.Fatalf("LFU steady-state allocs/req = %v, want ~0", got)
	}
}

func TestPUDLRUSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewPUDLRU(4096, 64)); got > 0.05 {
		t.Fatalf("PUD-LRU steady-state allocs/req = %v, want ~0", got)
	}
}

func TestECRSteadyStateAllocs(t *testing.T) {
	if got := steadyStateAllocs(t, NewECR(4096, 8)); got > 0.05 {
		t.Fatalf("ECR steady-state allocs/req = %v, want ~0", got)
	}
}

// The linear reference scans must stay zero-alloc too: the capacity
// benchmarks difference the two modes, and an allocating baseline would
// fold GC time into the comparison. Capacities run smaller here — the
// scans are O(n) per eviction by design, and the alloc count does not
// depend on n.
func TestLinearScanSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		name string
		pol  Policy
	}{
		{"FAB", NewFAB(1024, 64)},
		{"LFU", NewLFU(1024)},
		{"VBBMS", NewVBBMS(1024)},
		{"PUD-LRU", NewPUDLRU(1024, 64)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.pol.(LinearScanSelector).SetLinearVictimScan(true)
			if got := steadyStateAllocs(t, tc.pol); got > 0.05 {
				t.Fatalf("%s linear-scan steady-state allocs/req = %v, want ~0", tc.name, got)
			}
		})
	}
}
