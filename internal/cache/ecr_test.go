package cache

import "testing"

// fakeView is a scripted DeviceView.
type fakeView struct {
	free []int64
}

func (v *fakeView) Channels() int              { return len(v.free) }
func (v *fakeView) ChannelFreeAt(ch int) int64 { return v.free[ch] }

func TestECRStaticChannelAffinity(t *testing.T) {
	c := NewECR(8, 4)
	c.Access(w(0, 0, 1)) // lpn 0 → channel 0
	c.Access(w(1, 5, 1)) // lpn 5 → channel 1
	if c.order[0].Len() != 1 || c.order[1].Len() != 1 {
		t.Fatal("channel lists wrong")
	}
}

func TestECRPicksLeastBusyChannel(t *testing.T) {
	c := NewECR(3, 2)
	c.AttachDevice(&fakeView{free: []int64{1_000_000, 0}}) // channel 0 busy
	c.Access(w(0, 0, 1))                                   // ch 0
	c.Access(w(1, 1, 1))                                   // ch 1
	c.Access(w(2, 2, 1))                                   // ch 0
	res := c.Access(w(3, 4, 1))
	ev := res.Evictions[0]
	// Channel 1 frees first, so its (only) page 1 is the victim.
	if len(ev.LPNs) != 1 || ev.LPNs[0] != 1 {
		t.Fatalf("evicted %v, want [1] from the idle channel", ev.LPNs)
	}
	if !ev.HasChannelHint || ev.Channel != 1 {
		t.Fatalf("channel hint wrong: %+v", ev)
	}
}

func TestECRSkipsEmptyChannels(t *testing.T) {
	c := NewECR(2, 4)
	c.AttachDevice(&fakeView{free: []int64{0, 0, 0, 0}}) // all idle
	c.Access(w(0, 1, 1))                                 // ch 1
	c.Access(w(1, 5, 1))                                 // ch 1
	res := c.Access(w(2, 9, 1))
	// Only channel 1 holds pages; the victim must come from it even
	// though channels 0/2/3 are "freer".
	if got := res.Evictions[0]; got.Channel != 1 || got.LPNs[0] != 1 {
		t.Fatalf("eviction %+v, want LRU of channel 1", got)
	}
}

func TestECRWithinChannelIsLRU(t *testing.T) {
	c := NewECR(3, 1) // single channel: pure LRU
	c.AttachDevice(&fakeView{free: []int64{0}})
	c.Access(w(0, 0, 1))
	c.Access(w(1, 1, 1))
	c.Access(w(2, 2, 1))
	c.Access(w(3, 0, 1)) // touch 0
	res := c.Access(w(4, 3, 1))
	if got := res.Evictions[0].LPNs; got[0] != 1 {
		t.Fatalf("evicted %v, want [1] (LRU)", got)
	}
}

func TestECRFallbackWithoutView(t *testing.T) {
	c := NewECR(2, 2)
	c.Access(w(0, 0, 1))
	c.Access(w(1, 1, 1))
	res := c.Access(w(2, 2, 1)) // must evict without panicking
	if len(res.Evictions) != 1 || !res.Evictions[0].HasChannelHint {
		t.Fatalf("fallback eviction wrong: %+v", res.Evictions)
	}
}

func TestECRReadPath(t *testing.T) {
	c := NewECR(8, 4)
	c.Access(w(0, 0, 1))
	res := c.Access(r(1, 0, 2))
	if res.Hits != 1 || len(res.ReadMisses) != 1 {
		t.Fatalf("read path: %+v", res)
	}
	if c.Len() != 1 {
		t.Fatal("read inserted")
	}
}
