package cache

import "testing"

func newRA(readPages, depth int) *ReadAhead {
	return NewReadAhead(NewLRU(32), readPages, depth)
}

func TestReadAheadCachesReadMisses(t *testing.T) {
	c := newRA(8, 0)
	res := c.Access(r(0, 10, 2))
	if res.Misses != 2 || len(res.ReadMisses) != 2 {
		t.Fatalf("first read: %+v", res)
	}
	res = c.Access(r(1, 10, 2))
	if res.Hits != 2 || len(res.ReadMisses) != 0 {
		t.Fatalf("repeat read should hit the read region: %+v", res)
	}
	readHits, _, _ := c.Stats()
	if readHits != 2 {
		t.Fatalf("readHits = %d", readHits)
	}
}

func TestReadAheadWriteBufferHasPriority(t *testing.T) {
	c := newRA(8, 0)
	c.Access(w(0, 5, 1))        // write buffer holds page 5
	res := c.Access(r(1, 5, 1)) // must hit the write buffer, not miss
	if res.Hits != 1 {
		t.Fatalf("write-buffer hit lost: %+v", res)
	}
	if c.ReadRegionLen() != 0 {
		t.Fatal("write-buffer hit should not populate the read region")
	}
}

func TestReadAheadSequentialPrefetch(t *testing.T) {
	c := newRA(32, 4)
	c.Access(r(0, 100, 2)) // establishes stream ending at 102
	res := c.Access(r(1, 102, 2))
	if len(res.Prefetches) != 4 {
		t.Fatalf("prefetches = %v, want 4 pages", res.Prefetches)
	}
	if res.Prefetches[0] != 104 || res.Prefetches[3] != 107 {
		t.Fatalf("prefetch range = %v, want [104..107]", res.Prefetches)
	}
	// The prefetched pages now hit without flash reads.
	res = c.Access(r(2, 104, 2))
	if res.Hits != 2 || len(res.ReadMisses) != 0 {
		t.Fatalf("prefetched pages missed: %+v", res)
	}
	_, pfHits, pfTotal := c.Stats()
	// The read of 104..105 itself continues the stream and prefetches
	// 108,109 (106,107 are already cached): 4 + 2 prefetched in total.
	if pfHits != 2 || pfTotal != 6 {
		t.Fatalf("prefetch stats = %d/%d, want 2/6", pfHits, pfTotal)
	}
}

func TestReadAheadRandomReadsNoPrefetch(t *testing.T) {
	c := newRA(32, 4)
	c.Access(r(0, 100, 2))
	res := c.Access(r(1, 500, 2)) // unrelated address
	if len(res.Prefetches) != 0 {
		t.Fatalf("random read triggered prefetch: %v", res.Prefetches)
	}
}

func TestReadAheadWriteInvalidatesReadCopy(t *testing.T) {
	c := newRA(8, 0)
	c.Access(r(0, 7, 1)) // cached in read region
	if c.ReadRegionLen() != 1 {
		t.Fatal("setup failed")
	}
	c.Access(w(1, 7, 1)) // write supersedes
	if c.ReadRegionLen() != 0 {
		t.Fatal("stale read copy kept after write")
	}
	// Read now hits the write buffer.
	res := c.Access(r(2, 7, 1))
	if res.Hits != 1 {
		t.Fatalf("read after write: %+v", res)
	}
}

func TestReadAheadRegionCapacity(t *testing.T) {
	c := newRA(4, 0)
	for i := int64(0); i < 10; i++ {
		c.Access(r(i, i*100, 1))
	}
	if c.ReadRegionLen() != 4 {
		t.Fatalf("read region = %d pages, want 4", c.ReadRegionLen())
	}
	// Oldest entries evicted silently: re-reading page 0 misses again.
	res := c.Access(r(100, 0, 1))
	if res.Hits != 0 {
		t.Fatal("evicted read page still hit")
	}
}

func TestReadAheadDelegatesWritesUntouched(t *testing.T) {
	inner := NewLRU(2)
	c := NewReadAhead(inner, 4, 2)
	res := c.Access(w(0, 0, 3)) // overflows the inner buffer → evictions
	if res.Inserted != 3 || len(res.Evictions) == 0 {
		t.Fatalf("inner write semantics lost: %+v", res)
	}
	if c.Name() != "LRU+RA" {
		t.Fatalf("name = %q", c.Name())
	}
	if c.CapacityPages() != 6 || c.NodeBytes() != inner.NodeBytes() {
		t.Fatal("capacity/node accounting wrong")
	}
}

func TestReadAheadPrefetchDeduplicates(t *testing.T) {
	c := newRA(32, 4)
	c.Access(r(0, 100, 2))
	c.Access(r(1, 102, 2)) // prefetches 104..107
	res := c.Access(r(2, 104, 2))
	// 106,107 already cached; prefetch of 106..109 must only add 108,109.
	for _, lpn := range res.Prefetches {
		if lpn < 108 {
			t.Fatalf("re-prefetched cached page %d", lpn)
		}
	}
}
