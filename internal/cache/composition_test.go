package cache

import (
	"math/rand"
	"testing"
)

// Wrapper composition: admission control around readahead around a base
// policy must preserve every contract.

func TestBypassOverReadAheadComposition(t *testing.T) {
	inner := NewLRU(32)
	ra := NewReadAhead(inner, 16, 4)
	c := NewBypass(ra, 4)

	// Small write → through both wrappers into LRU.
	res := c.Access(w(0, 0, 2))
	if res.Inserted != 2 || inner.Len() != 2 {
		t.Fatalf("small write lost in composition: %+v", res)
	}
	// Large write → bypassed, nothing buffered.
	res = c.Access(w(1, 100, 8))
	if len(res.Bypass) != 8 || inner.Len() != 2 {
		t.Fatalf("large write not bypassed: %+v", res)
	}
	// Sequential reads → readahead still fires through the bypass.
	c.Access(r(2, 500, 2))
	res = c.Access(r(3, 502, 2))
	if len(res.Prefetches) == 0 {
		t.Fatal("readahead lost under bypass")
	}
	// Name chains.
	if c.Name() != "LRU+RA+bypass" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestCompositionRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inner := NewLRU(24)
	c := NewBypass(NewReadAhead(inner, 8, 2), 6)
	for i := 0; i < 3000; i++ {
		req := Request{
			Time:  int64(i) * 1000,
			Write: rng.Intn(10) < 6,
			LPN:   rng.Int63n(300),
			Pages: 1 + rng.Intn(12),
		}
		res := c.Access(req)
		if res.Hits+res.Misses != req.Pages {
			t.Fatalf("op %d: hits %d + misses %d != %d", i, res.Hits, res.Misses, req.Pages)
		}
		if c.Len() > c.CapacityPages() {
			t.Fatalf("op %d: capacity exceeded", i)
		}
		for _, lpn := range res.Bypass {
			if lpn < req.LPN || lpn >= req.LPN+int64(req.Pages) {
				t.Fatalf("op %d: bypass page %d outside request", i, lpn)
			}
		}
	}
}

func TestAllWrappersAroundEveryBase(t *testing.T) {
	bases := []func() Policy{
		func() Policy { return NewLRU(16) },
		func() Policy { return NewVBBMS(16) },
		func() Policy { return NewBPLRU(16, 4) },
	}
	rng := rand.New(rand.NewSource(31))
	for _, mk := range bases {
		c := NewBypass(NewReadAhead(mk(), 8, 2), 6)
		for i := 0; i < 500; i++ {
			req := Request{
				Time:  int64(i) * 1000,
				Write: rng.Intn(10) < 7,
				LPN:   rng.Int63n(200),
				Pages: 1 + rng.Intn(10),
			}
			res := c.Access(req)
			if res.Hits+res.Misses != req.Pages {
				t.Fatalf("%s: accounting broken", c.Name())
			}
		}
	}
}
