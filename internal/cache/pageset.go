package cache

import "math/bits"

// pageSet is a fixed-span bitmap of logical pages starting at base. The
// block-granularity policies (FAB, BPLRU, PUD-LRU, VBBMS) previously kept a
// map[int64]bool per block; a block only ever holds pages from one aligned
// span of pagesPerBlock (or vbSize) pages, so a bitmap answers the same
// membership questions without hashing and — crucially for the replay hot
// path — without allocating per insert. Enumeration yields ascending LPNs,
// which is exactly the order the old code produced by sorting, so eviction
// transcripts stay bit-identical.
type pageSet struct {
	base  int64
	words []uint64
	count int
}

// reset re-targets the set at an aligned span [base, base+span), clearing
// any previous contents. The word storage is reused across blocks, so a
// pooled block's set stops allocating once it has grown to the geometry's
// span.
func (s *pageSet) reset(base int64, span int64) {
	s.base = base
	s.count = 0
	nw := int((span + 63) / 64)
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
		return
	}
	s.words = s.words[:nw]
	for i := range s.words {
		s.words[i] = 0
	}
}

// len returns the number of member pages.
func (s *pageSet) len() int { return s.count }

// has reports membership of a page inside the span.
func (s *pageSet) has(lpn int64) bool {
	off := uint64(lpn - s.base)
	return s.words[off>>6]&(1<<(off&63)) != 0
}

// add inserts a page; adding a member again is a no-op.
func (s *pageSet) add(lpn int64) {
	off := uint64(lpn - s.base)
	bit := uint64(1) << (off & 63)
	if s.words[off>>6]&bit == 0 {
		s.words[off>>6] |= bit
		s.count++
	}
}

// appendLPNs appends the member pages to dst in ascending order.
func (s *pageSet) appendLPNs(dst []int64) []int64 {
	for wi, w := range s.words {
		wordBase := s.base + int64(wi)<<6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wordBase+int64(b))
			w &^= 1 << uint(b)
		}
	}
	return dst
}
