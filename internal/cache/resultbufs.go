package cache

// ResultBuffers holds the slices a policy hands out through Result, reused
// across Access calls so the steady-state request path allocates nothing.
// Every policy embeds one and resets it at the top of Access (and of
// EvictIdle); the Result returned by those calls therefore aliases these
// buffers and is only valid until the policy's next call — the contract
// documented on Result.
//
// Eviction LPN batches are carved out of the single backing LPNs slice with
// full-slice expressions, so a batch keeps its contents even when later
// appends grow (and reallocate) the backing array.
type ResultBuffers struct {
	// Evictions backs Result.Evictions.
	Evictions []Eviction
	// LPNs backs the per-eviction LPN batches (and BPLRU's padding reads).
	LPNs []int64
	// Reads backs Result.ReadMisses.
	Reads []int64
}

// Reset empties the buffers, keeping their storage.
func (b *ResultBuffers) Reset() {
	b.Evictions = b.Evictions[:0]
	b.LPNs = b.LPNs[:0]
	b.Reads = b.Reads[:0]
}

// Mark returns the current LPN high-water mark; pass it to Carve after
// appending a batch.
func (b *ResultBuffers) Mark() int { return len(b.LPNs) }

// Carve returns the LPNs appended since mark as a capacity-clamped window:
// later appends to the backing buffer can never write into it.
func (b *ResultBuffers) Carve(mark int) []int64 {
	return b.LPNs[mark:len(b.LPNs):len(b.LPNs)]
}

// Finish copies the populated buffers into a Result. Empty buffers leave
// the Result's slices nil, matching the pre-buffer behavior.
func (b *ResultBuffers) Finish(res *Result) {
	if len(b.Evictions) > 0 {
		res.Evictions = b.Evictions
	}
	if len(b.Reads) > 0 {
		res.ReadMisses = b.Reads
	}
}
