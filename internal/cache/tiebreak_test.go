package cache

import "testing"

// The FAB and LFU tie-break rules are paper-visible contracts, not
// implementation accidents: FAB breaks equal-size ties toward the oldest
// group (the tail-ward strict-> scan of the paper's linear walk), LFU
// breaks equal-frequency ties toward the entry least recently inserted
// OR promoted (the frequency-bucket tail). The tables below construct
// deliberate ties and pin the winner in BOTH selection modes — the
// indexed heap and the linear reference scan — so the vindex refactor
// can never drift the contract in either.

type tieCase struct {
	name string
	mk   func() Policy
	// script runs first; the final request must trigger exactly one
	// eviction batch with these victims.
	script []Request
	final  Request
	want   []int64
}

func runTieCases(t *testing.T, cases []tieCase) {
	t.Helper()
	for _, tc := range cases {
		for _, mode := range []string{"indexed", "linear"} {
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				p := tc.mk()
				p.(LinearScanSelector).SetLinearVictimScan(mode == "linear")
				for _, req := range tc.script {
					p.Access(req)
				}
				res := p.Access(tc.final)
				if len(res.Evictions) != 1 {
					t.Fatalf("eviction batches: %+v, want exactly 1", res.Evictions)
				}
				got := res.Evictions[0].LPNs
				if len(got) != len(tc.want) {
					t.Fatalf("evicted %v, want %v", got, tc.want)
				}
				for i := range tc.want {
					if got[i] != tc.want[i] {
						t.Fatalf("evicted %v, want %v", got, tc.want)
					}
				}
			})
		}
	}
}

func TestFABTieBreakContract(t *testing.T) {
	runTieCases(t, []tieCase{
		{
			// Two full-size ties; creation order decides.
			name:   "size tie, oldest group wins",
			mk:     func() Policy { return NewFAB(4, 2) },
			script: []Request{w(0, 0, 2), w(1, 2, 2)},
			final:  w(2, 8, 1),
			want:   []int64{0, 1},
		},
		{
			// The tie forms incrementally: both groups grow to 3 pages
			// across interleaved writes, so the index must track every
			// size change, not just the insert-time size.
			name: "tie formed by later growth, oldest creation wins",
			mk:   func() Policy { return NewFAB(8, 4) },
			script: []Request{
				w(0, 0, 2), w(1, 4, 2), // block 0: {0,1}, block 1: {4,5}
				w(2, 2, 1), w(3, 6, 1), // both grow to 3
				w(4, 8, 2), // block 2: 2 pages; buffer now full at 8
			},
			final: w(5, 12, 1),
			want:  []int64{0, 1, 2},
		},
		{
			// A strictly larger group wins regardless of age.
			name:   "strictly larger newer group beats older smaller",
			mk:     func() Policy { return NewFAB(5, 4) },
			script: []Request{w(0, 0, 2), w(1, 4, 3)},
			final:  w(2, 8, 1),
			want:   []int64{4, 5, 6},
		},
	})
}

func TestLFUTieBreakContract(t *testing.T) {
	runTieCases(t, []tieCase{
		{
			// Both pages at frequency 1: insertion order decides.
			name:   "freq tie, oldest insertion wins",
			mk:     func() Policy { return NewLFU(2) },
			script: []Request{w(0, 1, 1), w(1, 2, 1)},
			final:  w(2, 3, 1),
			want:   []int64{1},
		},
		{
			// Promotion re-stamps recency within the new frequency class:
			// page 2 reaches frequency 2 before page 1 does, so on the tie
			// page 2 is the older entry and is evicted — even though page 1
			// was inserted first.
			name:   "promotion re-stamps the tie order",
			mk:     func() Policy { return NewLFU(2) },
			script: []Request{w(0, 1, 1), w(1, 2, 1), w(2, 2, 1), w(3, 1, 1)},
			final:  w(4, 3, 1),
			want:   []int64{2},
		},
		{
			// Frequency dominates: a hot page never loses to colder ones,
			// and the remaining freq-1 tie falls back to insertion order.
			name:   "lower frequency beats recency, then age breaks the tie",
			mk:     func() Policy { return NewLFU(3) },
			script: []Request{w(0, 1, 1), w(1, 2, 1), w(2, 2, 1), w(3, 2, 1), w(4, 3, 1)},
			final:  w(5, 4, 1),
			want:   []int64{1},
		},
	})
}
