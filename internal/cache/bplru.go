package cache

import "repro/internal/list"

// bplruBlock is one logical-block node in BPLRU's block-level LRU list.
type bplruBlock struct {
	blockID int64
	pages   pageSet // buffered (dirty) lpns of this block
	// sequential tracks whether every insert so far continued an in-order
	// run from in-block page 0; used for LRU compensation.
	sequential bool
	nextSeq    int // next in-block index that keeps the run sequential
}

// BPLRU is the block-padding LRU of Kim & Ahn (FAST'08): the buffer is an
// LRU list of logical blocks; any write to a block moves the whole block to
// the head; eviction flushes the tail block onto a single physical block
// (block-bound — the trait that costs it channel parallelism in the paper's
// §4.2.2). Two refinements from the original are modeled:
//
//   - LRU compensation: a block written fully sequentially is moved to the
//     tail, since streaming writes are unlikely to be rewritten.
//   - Page padding: optionally, eviction reads the block's missing pages
//     from flash and programs the full block. The paper's Fig. 11 write
//     counts indicate its comparison ran without padding (BPLRU writes
//     fewer pages than LRU there), so padding defaults to off; see
//     NewBPLRUWithPadding and the ablation bench.
type BPLRU struct {
	capacity      int
	pagesPerBlock int64
	padding       bool
	pageCount     int
	blocks        map[int64]*list.Node[*bplruBlock]
	order         list.List[*bplruBlock] // head = most recently written
	buf           ResultBuffers
	free          []*list.Node[*bplruBlock] // recycled block nodes
}

// NewBPLRU returns a BPLRU buffer with logical blocks of pagesPerBlock
// pages and padding disabled.
func NewBPLRU(capacityPages, pagesPerBlock int) *BPLRU {
	ValidateCapacity(capacityPages)
	if pagesPerBlock < 1 {
		panic("cache: BPLRU pagesPerBlock must be >= 1")
	}
	return &BPLRU{
		capacity:      capacityPages,
		pagesPerBlock: int64(pagesPerBlock),
		blocks:        make(map[int64]*list.Node[*bplruBlock]),
	}
}

// NewBPLRUWithPadding returns the original full-block-padding variant.
func NewBPLRUWithPadding(capacityPages, pagesPerBlock int) *BPLRU {
	b := NewBPLRU(capacityPages, pagesPerBlock)
	b.padding = true
	return b
}

// Name implements Policy.
func (c *BPLRU) Name() string { return "BPLRU" }

// Len implements Policy.
func (c *BPLRU) Len() int { return c.pageCount }

// CapacityPages implements Policy.
func (c *BPLRU) CapacityPages() int { return c.capacity }

// NodeBytes implements Policy: the paper's Fig. 12 charges 24 bytes per
// block node.
func (c *BPLRU) NodeBytes() int { return 24 }

// NodeCount implements Policy.
func (c *BPLRU) NodeCount() int { return c.order.Len() }

// Access implements Policy. Reads are served from the buffer when present
// but do not reorder the list: BPLRU manages RAM purely as a write buffer.
func (c *BPLRU) Access(req Request) Result {
	CheckRequest(req)
	c.buf.Reset()
	var res Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		blockID := lpn / c.pagesPerBlock
		n, ok := c.blocks[blockID]
		if ok && n.Value.pages.has(lpn) {
			res.Hits++
			if req.Write {
				c.noteWrite(n, lpn)
			}
		} else {
			res.Misses++
			if req.Write {
				for c.pageCount >= c.capacity {
					c.buf.Evictions = append(c.buf.Evictions, c.evictTail())
				}
				n, ok = c.blocks[blockID] // may have been evicted making room
				if !ok {
					n = c.newBlock(blockID)
					c.order.PushHead(n)
					c.blocks[blockID] = n
				}
				n.Value.pages.add(lpn)
				c.pageCount++
				res.Inserted++
				c.noteWrite(n, lpn)
			} else {
				c.buf.Reads = append(c.buf.Reads, lpn)
			}
		}
		lpn++
	}
	c.buf.Finish(&res)
	return res
}

// newBlock takes a block node from the free stack (keeping its bitmap
// storage), or allocates one.
func (c *BPLRU) newBlock(blockID int64) *list.Node[*bplruBlock] {
	var n *list.Node[*bplruBlock]
	if len(c.free) > 0 {
		n = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	} else {
		n = &list.Node[*bplruBlock]{Value: &bplruBlock{}}
	}
	b := n.Value
	b.blockID = blockID
	b.pages.reset(blockID*c.pagesPerBlock, c.pagesPerBlock)
	b.sequential = true
	b.nextSeq = 0
	return n
}

// noteWrite applies BPLRU's list adjustment after a write touches a block:
// move to head normally, or to the tail once the block has been written
// fully sequentially (LRU compensation).
func (c *BPLRU) noteWrite(n *list.Node[*bplruBlock], lpn int64) {
	b := n.Value
	idx := int(lpn % c.pagesPerBlock)
	if b.sequential {
		if idx == b.nextSeq {
			b.nextSeq++
		} else {
			b.sequential = false
		}
	}
	if b.sequential && b.nextSeq == int(c.pagesPerBlock) {
		// Fully sequentially written: prefer it for eviction.
		c.order.MoveToTail(n)
		return
	}
	c.order.MoveToHead(n)
}

// evictTail flushes the least recently written block onto one physical
// block, optionally padding it to a full block with flash reads.
func (c *BPLRU) evictTail() Eviction {
	n := c.order.PopTail()
	if n == nil {
		panic("cache: BPLRU evict on empty buffer")
	}
	b := n.Value
	delete(c.blocks, b.blockID)
	c.pageCount -= b.pages.len()
	c.free = append(c.free, n)

	if !c.padding {
		mark := c.buf.Mark()
		c.buf.LPNs = b.pages.appendLPNs(c.buf.LPNs)
		return Eviction{LPNs: c.buf.Carve(mark), BlockBound: true}
	}
	// Padding: program the whole block; absent pages are first read.
	base := b.blockID * c.pagesPerBlock
	mark := c.buf.Mark()
	for off := int64(0); off < c.pagesPerBlock; off++ {
		c.buf.LPNs = append(c.buf.LPNs, base+off)
	}
	all := c.buf.Carve(mark)
	mark = c.buf.Mark()
	for off := int64(0); off < c.pagesPerBlock; off++ {
		if !b.pages.has(base + off) {
			c.buf.LPNs = append(c.buf.LPNs, base+off)
		}
	}
	var padReads []int64
	if w := c.buf.Carve(mark); len(w) > 0 {
		padReads = w
	}
	return Eviction{LPNs: all, BlockBound: true, PaddingReads: padReads}
}

// Contains reports whether a page is buffered (tests).
func (c *BPLRU) Contains(lpn int64) bool {
	n, ok := c.blocks[lpn/c.pagesPerBlock]
	return ok && n.Value.pages.has(lpn)
}

// EvictIdle implements cache.IdleEvictor: during idle time (or a periodic
// destage tick) the least recently written block is flushed, as long as
// the buffer is more than half full — the same threshold LRU uses.
func (c *BPLRU) EvictIdle(now int64) (Eviction, bool) {
	if c.pageCount <= c.capacity/2 {
		return Eviction{}, false
	}
	c.buf.Reset()
	return c.evictTail(), true
}
