package cache

import (
	"repro/internal/list"
	"repro/internal/vindex"
)

// vbbmsBlock is one virtual block: an aligned group of consecutive pages in
// one of the two regions. seq is the block's recency rank — re-stamped on
// every promotion in the LRU region, insertion-only in the FIFO region —
// so the region's victim (its order-list tail) is exactly the minimum-seq
// block, which is what the victim index stores.
type vbbmsBlock struct {
	vbID  int64
	pages pageSet
	seq   uint64
	hd    vindex.Handle[*list.Node[*vbbmsBlock]]
}

// vbbmsRegion is one of VBBMS's two sub-caches.
type vbbmsRegion struct {
	capacity  int   // pages
	vbSize    int64 // virtual-block size in pages
	lru       bool  // true: hits move blocks to head; false: FIFO
	pageCount int
	blocks    map[int64]*list.Node[*vbbmsBlock]
	order     list.List[*vbbmsBlock]
	free      []*list.Node[*vbbmsBlock] // recycled virtual-block nodes
	heap      vindex.Heap[*list.Node[*vbbmsBlock]]
	seq       uint64
}

// VBBMS is the virtual-block buffer management strategy of Du et al.
// (TCE'19), configured as the paper's §4.1 describes: the cache splits 3:2
// into a random-request region and a sequential-request region; virtual
// blocks are 3 pages in the random region (managed by LRU) and 4 pages in
// the sequential region (managed by FIFO). Evictions flush one virtual
// block, striped across channels.
type VBBMS struct {
	capacity   int
	seqMin     int // requests with at least this many pages are sequential
	random     vbbmsRegion
	sequential vbbmsRegion
	// home remembers which region holds each buffered page, so a page
	// re-written by a differently classified request still hits.
	home map[int64]*vbbmsRegion
	buf  ResultBuffers

	linear   bool
	scanCost int64
}

// NewVBBMS returns a VBBMS buffer with the paper's configuration: a 3:2
// random:sequential split, 3- and 4-page virtual blocks, and requests of
// five or more pages classified as sequential (matching Req-block's small
// request bound δ=5 so the two schemes draw the line identically).
func NewVBBMS(capacityPages int) *VBBMS {
	return NewVBBMSConfig(capacityPages, 3, 2, 3, 4, 5)
}

// NewVBBMSConfig returns a VBBMS buffer with an explicit randomShare:
// seqShare capacity split, per-region virtual block sizes, and the minimum
// request size (pages) classified as sequential.
func NewVBBMSConfig(capacityPages, randomShare, seqShare, randVB, seqVB, seqMin int) *VBBMS {
	ValidateCapacity(capacityPages)
	if randomShare < 1 || seqShare < 1 || randVB < 1 || seqVB < 1 || seqMin < 1 {
		panic("cache: VBBMS config values must be >= 1")
	}
	randCap := capacityPages * randomShare / (randomShare + seqShare)
	if randCap < 1 {
		randCap = 1
	}
	seqCap := capacityPages - randCap
	if seqCap < 1 {
		seqCap = 1
		randCap = capacityPages - seqCap
	}
	return &VBBMS{
		capacity: capacityPages,
		seqMin:   seqMin,
		// VBBMS's victim is always the region's order-list tail, so the
		// linear "scan" is an O(1) tail pop — the default. The heap index
		// stays selectable (SetLinearVictimScan(false)) for the oracle's
		// indexed-vs-linear equivalence check, but buys nothing here.
		linear: true,
		random: vbbmsRegion{
			capacity: randCap,
			vbSize:   int64(randVB),
			lru:      true,
			blocks:   make(map[int64]*list.Node[*vbbmsBlock]),
		},
		sequential: vbbmsRegion{
			capacity: seqCap,
			vbSize:   int64(seqVB),
			lru:      false,
			blocks:   make(map[int64]*list.Node[*vbbmsBlock]),
		},
		home: make(map[int64]*vbbmsRegion, capacityPages),
	}
}

var (
	_ Policy             = (*VBBMS)(nil)
	_ OccupancySampler   = (*VBBMS)(nil)
	_ VictimScanReporter = (*VBBMS)(nil)
	_ LinearScanSelector = (*VBBMS)(nil)
)

// VictimScanCost implements VictimScanReporter.
func (c *VBBMS) VictimScanCost() int64 { return c.scanCost }

// SetLinearVictimScan implements LinearScanSelector.
func (c *VBBMS) SetLinearVictimScan(enable bool) {
	if c.Len() > 0 {
		panic("cache: VBBMS victim-scan mode must be set before use")
	}
	c.linear = enable
}

// Name implements Policy.
func (c *VBBMS) Name() string { return "VBBMS" }

// Len implements Policy.
func (c *VBBMS) Len() int { return c.random.pageCount + c.sequential.pageCount }

// CapacityPages implements Policy.
func (c *VBBMS) CapacityPages() int { return c.capacity }

// NodeBytes implements Policy: the paper charges virtual blocks the same
// 24 bytes as blocks.
func (c *VBBMS) NodeBytes() int { return 24 }

// NodeCount implements Policy.
func (c *VBBMS) NodeCount() int { return c.random.order.Len() + c.sequential.order.Len() }

// ListPages implements OccupancyReporter.
func (c *VBBMS) ListPages() map[string]int {
	return map[string]int{
		"random":     c.random.pageCount,
		"sequential": c.sequential.pageCount,
	}
}

// vbbmsListNames is the fixed OccupancyNames order, shared by all instances.
var vbbmsListNames = []string{"random", "sequential"}

// OccupancyNames implements OccupancySampler.
func (c *VBBMS) OccupancyNames() []string { return vbbmsListNames }

// AppendOccupancy implements OccupancySampler.
func (c *VBBMS) AppendOccupancy(dst []int) []int {
	return append(dst, c.random.pageCount, c.sequential.pageCount)
}

// Access implements Policy.
func (c *VBBMS) Access(req Request) Result {
	CheckRequest(req)
	c.buf.Reset()
	var res Result
	target := &c.random
	if req.Pages >= c.seqMin {
		target = &c.sequential
	}
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		if region, ok := c.home[lpn]; ok {
			res.Hits++
			c.touch(region, lpn)
		} else {
			res.Misses++
			if req.Write {
				for target.pageCount >= target.capacity {
					c.buf.Evictions = append(c.buf.Evictions, c.evictFrom(target))
				}
				c.insert(target, lpn)
				c.home[lpn] = target
				res.Inserted++
			} else {
				c.buf.Reads = append(c.buf.Reads, lpn)
			}
		}
		lpn++
	}
	c.buf.Finish(&res)
	return res
}

// touch applies the region's hit rule: LRU regions promote the virtual
// block; the FIFO region leaves order untouched.
func (c *VBBMS) touch(r *vbbmsRegion, lpn int64) {
	if !r.lru {
		return
	}
	if n, ok := r.blocks[lpn/r.vbSize]; ok {
		r.order.MoveToHead(n)
		if !c.linear {
			r.seq++
			n.Value.seq = r.seq
			n.Value.hd = r.heap.Update(n.Value.hd, int64(r.seq), 0, n)
		}
	}
}

// insert adds a page to its (aligned) virtual block, creating the block at
// the head when absent.
func (c *VBBMS) insert(r *vbbmsRegion, lpn int64) {
	vbID := lpn / r.vbSize
	n, ok := r.blocks[vbID]
	if !ok {
		if len(r.free) > 0 {
			n = r.free[len(r.free)-1]
			r.free = r.free[:len(r.free)-1]
		} else {
			n = &list.Node[*vbbmsBlock]{Value: &vbbmsBlock{}}
		}
		vb := n.Value
		vb.vbID = vbID
		vb.pages.reset(vbID*r.vbSize, r.vbSize)
		r.seq++
		vb.seq = r.seq
		vb.hd = vindex.Handle[*list.Node[*vbbmsBlock]]{}
		if !c.linear {
			vb.hd = r.heap.Push(int64(vb.seq), 0, n)
		}
		r.order.PushHead(n)
		r.blocks[vbID] = n
	}
	n.Value.pages.add(lpn)
	r.pageCount++
}

// evictFrom flushes the region's tail virtual block (LRU victim in the
// random region, oldest in the sequential region). The indexed path pops
// the minimum recency rank, which is the same block.
func (c *VBBMS) evictFrom(r *vbbmsRegion) Eviction {
	var n *list.Node[*vbbmsBlock]
	if c.linear {
		c.scanCost++
		n = r.order.PopTail()
	} else {
		before := r.heap.Cost()
		v, ok := r.heap.PopMin()
		c.scanCost += r.heap.Cost() - before
		if ok {
			n = v
			r.order.Remove(n)
		}
	}
	if n == nil {
		panic("cache: VBBMS evict on empty region")
	}
	vb := n.Value
	delete(r.blocks, vb.vbID)
	mark := c.buf.Mark()
	c.buf.LPNs = vb.pages.appendLPNs(c.buf.LPNs)
	lpns := c.buf.Carve(mark)
	for _, lpn := range lpns {
		delete(c.home, lpn)
	}
	r.pageCount -= len(lpns)
	r.free = append(r.free, n)
	return Eviction{LPNs: lpns}
}

// Contains reports whether a page is buffered (tests).
func (c *VBBMS) Contains(lpn int64) bool {
	_, ok := c.home[lpn]
	return ok
}

// RegionOf returns "random", "sequential" or "" for a page (tests).
func (c *VBBMS) RegionOf(lpn int64) string {
	switch c.home[lpn] {
	case &c.random:
		return "random"
	case &c.sequential:
		return "sequential"
	default:
		return ""
	}
}
