package cache

import "testing"

// w and r build single-shot requests for tests.
func w(time, lpn int64, pages int) Request {
	return Request{Time: time, Write: true, LPN: lpn, Pages: pages}
}

func r(time, lpn int64, pages int) Request {
	return Request{Time: time, Write: false, LPN: lpn, Pages: pages}
}

// evictedLPNs flattens all eviction batches of a result.
func evictedLPNs(res Result) []int64 {
	var out []int64
	for _, ev := range res.Evictions {
		out = append(out, ev.LPNs...)
	}
	return out
}

func TestLRUWriteMissInserts(t *testing.T) {
	c := NewLRU(4)
	res := c.Access(w(0, 10, 2))
	if res.Hits != 0 || res.Misses != 2 || res.Inserted != 2 {
		t.Fatalf("result = %+v", res)
	}
	if c.Len() != 2 || !c.Contains(10) || !c.Contains(11) {
		t.Fatal("pages not inserted")
	}
}

func TestLRUWriteHitNoReinsert(t *testing.T) {
	c := NewLRU(4)
	c.Access(w(0, 10, 2))
	res := c.Access(w(1, 10, 2))
	if res.Hits != 2 || res.Inserted != 0 {
		t.Fatalf("result = %+v", res)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU(3)
	c.Access(w(0, 1, 1))
	c.Access(w(1, 2, 1))
	c.Access(w(2, 3, 1))
	c.Access(w(3, 1, 1)) // touch 1: order now 1,3,2
	res := c.Access(w(4, 4, 1))
	if got := evictedLPNs(res); len(got) != 1 || got[0] != 2 {
		t.Fatalf("evicted %v, want [2]", got)
	}
	if c.Contains(2) || !c.Contains(1) || !c.Contains(3) || !c.Contains(4) {
		t.Fatal("cache contents wrong after eviction")
	}
}

func TestLRUReadHitRefreshesRecency(t *testing.T) {
	c := NewLRU(2)
	c.Access(w(0, 1, 1))
	c.Access(w(1, 2, 1))
	c.Access(r(2, 1, 1)) // read hit moves 1 to head
	res := c.Access(w(3, 3, 1))
	if got := evictedLPNs(res); len(got) != 1 || got[0] != 2 {
		t.Fatalf("evicted %v, want [2]", got)
	}
}

func TestLRUReadMissDoesNotInsert(t *testing.T) {
	c := NewLRU(4)
	res := c.Access(r(0, 7, 2))
	if res.Hits != 0 || res.Misses != 2 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.ReadMisses) != 2 || res.ReadMisses[0] != 7 || res.ReadMisses[1] != 8 {
		t.Fatalf("ReadMisses = %v", res.ReadMisses)
	}
	if c.Len() != 0 {
		t.Fatal("read miss inserted pages into a write buffer")
	}
}

func TestLRUEvictionsAreSinglePages(t *testing.T) {
	c := NewLRU(2)
	c.Access(w(0, 0, 2))
	res := c.Access(w(1, 10, 2))
	if len(res.Evictions) != 2 {
		t.Fatalf("evictions = %d, want 2", len(res.Evictions))
	}
	for _, ev := range res.Evictions {
		if len(ev.LPNs) != 1 || ev.BlockBound || ev.CleanDrop {
			t.Fatalf("LRU eviction malformed: %+v", ev)
		}
	}
}

func TestLRURequestLargerThanCache(t *testing.T) {
	c := NewLRU(4)
	res := c.Access(w(0, 0, 10))
	if res.Inserted != 10 {
		t.Fatalf("Inserted = %d", res.Inserted)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want full capacity", c.Len())
	}
	// The last 4 pages of the request must be resident.
	for lpn := int64(6); lpn < 10; lpn++ {
		if !c.Contains(lpn) {
			t.Fatalf("tail page %d missing", lpn)
		}
	}
}

func TestLRUNodeAccounting(t *testing.T) {
	c := NewLRU(8)
	c.Access(w(0, 0, 5))
	if c.NodeCount() != 5 || c.NodeBytes() != 12 {
		t.Fatalf("nodes = %d × %dB", c.NodeCount(), c.NodeBytes())
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	c := NewFIFO(2)
	c.Access(w(0, 1, 1))
	c.Access(w(1, 2, 1))
	c.Access(w(2, 1, 1)) // hit on 1 must NOT refresh it
	res := c.Access(w(3, 3, 1))
	if got := evictedLPNs(res); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FIFO evicted %v, want [1] (oldest insert)", got)
	}
	if c.Name() != "FIFO" {
		t.Fatal("name wrong")
	}
}

func TestPolicyPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { NewLRU(0) },
		func() { NewLRU(4).Access(Request{Write: true, LPN: 0, Pages: 0}) },
		func() { NewLRU(4).Access(Request{Write: true, LPN: -1, Pages: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
