package cache

import "testing"

func TestCFLRUPrefersCleanVictim(t *testing.T) {
	c := NewCFLRUWindow(4, 4, true)
	c.Access(w(0, 1, 1))  // dirty
	c.Access(r(1, 10, 1)) // miss -> inserted clean
	c.Access(w(2, 2, 1))  // dirty
	c.Access(w(3, 3, 1))  // dirty; cache now full
	res := c.Access(w(4, 4, 1))
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions = %+v", res.Evictions)
	}
	ev := res.Evictions[0]
	if !ev.CleanDrop || ev.LPNs[0] != 10 {
		t.Fatalf("expected clean drop of 10, got %+v", ev)
	}
}

func TestCFLRUWindowLimitsCleanSearch(t *testing.T) {
	// Window of 1: only the very tail is scanned. Tail is dirty, so the
	// clean page further up must survive and the dirty tail is flushed.
	c := NewCFLRUWindow(3, 1, true)
	c.Access(r(0, 10, 1)) // clean
	c.Access(w(1, 1, 1))  // dirty — becomes MRU
	c.Access(w(2, 2, 1))
	// LRU order head->tail: 2,1,10. Tail is clean 10 → window 1 sees it.
	res := c.Access(w(3, 3, 1))
	if !res.Evictions[0].CleanDrop {
		t.Fatalf("tail clean page not dropped: %+v", res.Evictions[0])
	}
	// Now tail is dirty (1): a further insert must flush dirty.
	c2 := NewCFLRUWindow(3, 1, true)
	c2.Access(w(0, 1, 1))
	c2.Access(r(1, 10, 1))
	c2.Access(w(2, 2, 1))
	// order: 2,10,1 — tail 1 dirty, window 1 stops there.
	res = c2.Access(w(3, 3, 1))
	ev := res.Evictions[0]
	if ev.CleanDrop || ev.LPNs[0] != 1 {
		t.Fatalf("expected dirty flush of 1, got %+v", ev)
	}
}

func TestCFLRUWriteHitDirtiesCleanPage(t *testing.T) {
	c := NewCFLRU(4)
	c.Access(r(0, 5, 1))
	if c.Dirty(5) {
		t.Fatal("read-inserted page should be clean")
	}
	res := c.Access(w(1, 5, 1))
	if res.Hits != 1 {
		t.Fatalf("write on cached clean page should hit: %+v", res)
	}
	if !c.Dirty(5) {
		t.Fatal("write hit did not dirty the page")
	}
}

func TestCFLRUWriteOnlyVariantSkipsReadInsert(t *testing.T) {
	c := NewCFLRUWriteOnly(4)
	res := c.Access(r(0, 5, 2))
	if len(res.ReadMisses) != 2 || c.Len() != 0 {
		t.Fatalf("write-only CFLRU inserted reads: %+v len=%d", res, c.Len())
	}
}

func TestCFLRUReadInsertCanEvict(t *testing.T) {
	c := NewCFLRUWindow(2, 2, true)
	c.Access(w(0, 1, 1))
	c.Access(w(1, 2, 1))
	res := c.Access(r(2, 3, 1))
	if len(res.Evictions) != 1 {
		t.Fatalf("read insert did not evict: %+v", res)
	}
	if !c.Contains(3) {
		t.Fatal("read-missed page not inserted")
	}
}

func TestCFLRUAllDirtyFallsBackToLRU(t *testing.T) {
	c := NewCFLRU(2)
	c.Access(w(0, 1, 1))
	c.Access(w(1, 2, 1))
	res := c.Access(w(2, 3, 1))
	ev := res.Evictions[0]
	if ev.CleanDrop || ev.LPNs[0] != 1 {
		t.Fatalf("expected dirty LRU flush of 1, got %+v", ev)
	}
}

func TestCFLRUWindowClamping(t *testing.T) {
	c := NewCFLRUWindow(4, 100, true)
	if c.window != 4 {
		t.Fatalf("window not clamped: %d", c.window)
	}
	c = NewCFLRUWindow(4, 0, true)
	if c.window != 1 {
		t.Fatalf("window floor wrong: %d", c.window)
	}
}
