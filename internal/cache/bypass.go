package cache

// Bypass is an admission-control wrapper: write requests larger than
// MaxPages skip the buffer entirely and stream straight to flash. It is
// the blunt version of the paper's Observation 2 — pages of large write
// requests are rarely re-accessed, so why spend buffer space (and a later
// eviction) on them at all? Req-block answers with request blocks and
// priorities; Bypass answers by not admitting them, at the cost of losing
// the (rare) hits large data would have produced and of making
// overwrite-after-bypass writes always miss.
type Bypass struct {
	inner Policy
	// MaxPages is the largest write admitted into the buffer.
	maxPages int
	bypassed int64
}

// NewBypass wraps inner so that writes larger than maxPages pages go
// straight to flash.
func NewBypass(inner Policy, maxPages int) *Bypass {
	if maxPages < 1 {
		panic("cache: Bypass maxPages must be >= 1")
	}
	return &Bypass{inner: inner, maxPages: maxPages}
}

// Name implements Policy.
func (c *Bypass) Name() string { return c.inner.Name() + "+bypass" }

// Len implements Policy.
func (c *Bypass) Len() int { return c.inner.Len() }

// CapacityPages implements Policy.
func (c *Bypass) CapacityPages() int { return c.inner.CapacityPages() }

// NodeBytes implements Policy.
func (c *Bypass) NodeBytes() int { return c.inner.NodeBytes() }

// NodeCount implements Policy.
func (c *Bypass) NodeCount() int { return c.inner.NodeCount() }

// BypassedPages returns how many write pages skipped the buffer.
func (c *Bypass) BypassedPages() int64 { return c.bypassed }

// VictimScanCost forwards the inner policy's victim-selection work
// counter, 0 when the inner policy does not report one.
func (c *Bypass) VictimScanCost() int64 {
	if r, ok := c.inner.(VictimScanReporter); ok {
		return r.VictimScanCost()
	}
	return 0
}

// Access implements Policy.
func (c *Bypass) Access(req Request) Result {
	CheckRequest(req)
	if !req.Write || req.Pages <= c.maxPages {
		return c.inner.Access(req)
	}
	// Large write: pages already buffered must still be refreshed (the
	// buffer would otherwise serve stale data to later reads), so probe
	// them as a write hit; the rest stream to flash.
	var res Result
	lpn := req.LPN
	for i := 0; i < req.Pages; i++ {
		probe := Request{Time: req.Time, Write: true, LPN: lpn, Pages: 1}
		if r := c.probeResident(lpn); r {
			// Refresh in place via the inner policy (counts as its hit).
			inner := c.inner.Access(probe)
			res.Hits += inner.Hits
			res.Misses += inner.Misses
			// The inner Result's eviction batches alias buffers the inner
			// policy reuses on its next Access; this loop calls it once per
			// page, so batches accumulated across probes must be copied.
			for _, ev := range inner.Evictions {
				ev.LPNs = append([]int64(nil), ev.LPNs...)
				if len(ev.PaddingReads) > 0 {
					ev.PaddingReads = append([]int64(nil), ev.PaddingReads...)
				}
				res.Evictions = append(res.Evictions, ev)
			}
			res.Inserted += inner.Inserted
		} else {
			res.Misses++
			res.Bypass = append(res.Bypass, lpn)
			c.bypassed++
		}
		lpn++
	}
	return res
}

// probeResident asks the inner policy whether a page is buffered, without
// mutating it. The Policy interface has no lookup method by design (Access
// is the only mutation point), so Bypass relies on the concrete helpers
// the policies expose; unknown implementations are treated as not
// resident, which only costs a duplicate flash write.
func (c *Bypass) probeResident(lpn int64) bool {
	type container interface{ Contains(int64) bool }
	if p, ok := c.inner.(container); ok {
		return p.Contains(lpn)
	}
	return false
}

var _ Policy = (*Bypass)(nil)
