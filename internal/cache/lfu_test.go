package cache

import "testing"

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(3)
	c.Access(w(0, 1, 1))
	c.Access(w(1, 2, 1))
	c.Access(w(2, 3, 1))
	c.Access(w(3, 1, 1)) // freq(1)=2
	c.Access(w(4, 3, 1)) // freq(3)=2
	res := c.Access(w(5, 4, 1))
	if got := evictedLPNs(res); len(got) != 1 || got[0] != 2 {
		t.Fatalf("evicted %v, want [2]", got)
	}
}

func TestLFUTieBreaksLRU(t *testing.T) {
	c := NewLFU(2)
	c.Access(w(0, 1, 1))
	c.Access(w(1, 2, 1))
	// Both freq 1; page 1 is older in the freq-1 bucket.
	res := c.Access(w(2, 3, 1))
	if got := evictedLPNs(res); len(got) != 1 || got[0] != 1 {
		t.Fatalf("evicted %v, want [1]", got)
	}
}

func TestLFUFrequencyTracking(t *testing.T) {
	c := NewLFU(4)
	c.Access(w(0, 9, 1))
	c.Access(r(1, 9, 1))
	c.Access(w(2, 9, 1))
	if f := c.Freq(9); f != 3 {
		t.Fatalf("Freq = %d, want 3", f)
	}
	if c.Freq(1234) != 0 {
		t.Fatal("absent page should report freq 0")
	}
}

func TestLFUReadMissesBypass(t *testing.T) {
	c := NewLFU(4)
	res := c.Access(r(0, 5, 3))
	if len(res.ReadMisses) != 3 || c.Len() != 0 {
		t.Fatalf("read misses mishandled: %+v len=%d", res, c.Len())
	}
}

func TestLFUBucketChurn(t *testing.T) {
	// Drive a page through many promotions and ensure structure holds.
	c := NewLFU(2)
	c.Access(w(0, 1, 1))
	for i := 0; i < 50; i++ {
		c.Access(w(int64(i+1), 1, 1))
	}
	if c.Freq(1) != 51 {
		t.Fatalf("Freq = %d, want 51", c.Freq(1))
	}
	c.Access(w(100, 2, 1))
	c.Access(w(101, 3, 1)) // must evict page 2 (freq 1), never page 1
	if !c.Contains(1) {
		t.Fatal("hot page evicted")
	}
	if c.Contains(2) {
		t.Fatal("cold page survived")
	}
}
