package cache

import "testing"

func TestFABGroupsByBlock(t *testing.T) {
	c := NewFAB(16, 4)
	c.Access(w(0, 0, 2)) // block 0
	c.Access(w(1, 5, 1)) // block 1
	c.Access(w(2, 2, 1)) // block 0 again
	if c.NodeCount() != 2 {
		t.Fatalf("groups = %d, want 2", c.NodeCount())
	}
	if c.Len() != 4 {
		t.Fatalf("pages = %d, want 4", c.Len())
	}
}

func TestFABEvictsLargestGroup(t *testing.T) {
	c := NewFAB(4, 4)
	c.Access(w(0, 0, 3)) // block 0: 3 pages
	c.Access(w(1, 4, 1)) // block 1: 1 page
	res := c.Access(w(2, 8, 1))
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions: %+v", res.Evictions)
	}
	ev := res.Evictions[0]
	if len(ev.LPNs) != 3 || ev.LPNs[0] != 0 || ev.LPNs[2] != 2 {
		t.Fatalf("evicted %v, want block 0's pages", ev.LPNs)
	}
	if !ev.BlockBound {
		t.Fatal("FAB flush should be block-bound")
	}
}

func TestFABTieBreaksOldest(t *testing.T) {
	c := NewFAB(4, 4)
	c.Access(w(0, 0, 2)) // block 0, older
	c.Access(w(1, 4, 2)) // block 1, newer
	res := c.Access(w(2, 8, 1))
	if got := res.Evictions[0].LPNs; got[0] != 0 {
		t.Fatalf("tie evicted %v, want oldest group (block 0)", got)
	}
}

func TestFABHitDoesNotDuplicate(t *testing.T) {
	c := NewFAB(8, 4)
	c.Access(w(0, 0, 2))
	res := c.Access(w(1, 0, 2))
	if res.Hits != 2 || c.Len() != 2 {
		t.Fatalf("rewrite duplicated pages: %+v len=%d", res, c.Len())
	}
}

func TestFABReadPath(t *testing.T) {
	c := NewFAB(8, 4)
	c.Access(w(0, 0, 1))
	res := c.Access(r(1, 0, 2))
	if res.Hits != 1 || len(res.ReadMisses) != 1 || res.ReadMisses[0] != 1 {
		t.Fatalf("read path wrong: %+v", res)
	}
}

func TestPageSetAscendingEnumeration(t *testing.T) {
	// Eviction batches must come out in ascending LPN order regardless of
	// insertion order (the determinism contract the old sort provided).
	var s pageSet
	s.reset(64, 128)
	for _, lpn := range []int64{100, 64, 191, 77, 100} {
		s.add(lpn)
	}
	if s.len() != 4 {
		t.Fatalf("len = %d, want 4 (add must be idempotent)", s.len())
	}
	got := s.appendLPNs(nil)
	want := []int64{64, 77, 100, 191}
	if len(got) != len(want) {
		t.Fatalf("enumerated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("enumerated %v, want %v", got, want)
		}
	}
	if s.has(65) || !s.has(191) {
		t.Fatal("membership probe wrong")
	}
}
